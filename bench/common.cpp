#include "common.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <iostream>

#include "alloc/pool_alloc.hpp"
#include "alloc/thread_cache_alloc.hpp"
#include "bench_util/runner.hpp"
#include "bench_util/table.hpp"
#include "bench_util/workloads.hpp"
#include "core/atom.hpp"
#include "model/sim.hpp"
#include "persist/treap.hpp"
#include "reclaim/epoch.hpp"
#include "seq/seq_treap.hpp"
#include "util/rng.hpp"

namespace pathcopy::bench {
namespace {

using T = persist::Treap<std::int64_t, std::int64_t>;
using Smr = reclaim::EpochReclaimer;
using Alloc = alloc::ThreadCache;
using Uc = core::Atom<T, Smr, Alloc>;

constexpr std::uint64_t kSeed = 0xbe9cULL;

// ---------- real-thread measurement ----------

// Sequential baselines: one thread, mutable treap, plain new/delete (the
// closest C++ analogue of the paper's Java "Seq Treap").

double seq_batch_ops_per_sec(const BatchKeys& keys, int duration_ms) {
  seq::SeqTreap<std::int64_t, std::int64_t> treap;
  for (const auto k : keys.initial) treap.insert(k, k);
  const auto& mine = keys.per_thread.front();
  std::uint64_t ops = 0;
  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + std::chrono::milliseconds(duration_ms);
  for (;;) {
    for (const auto k : mine) {
      treap.insert(k, k);
      ++ops;
    }
    for (const auto k : mine) {
      treap.erase(k);
      ++ops;
    }
    if (std::chrono::steady_clock::now() >= deadline) break;
  }
  const double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  return static_cast<double>(ops) / secs;
}

double seq_random_ops_per_sec(const std::vector<std::int64_t>& initial,
                              std::int64_t lo, std::int64_t hi,
                              int duration_ms) {
  seq::SeqTreap<std::int64_t, std::int64_t> treap;
  for (const auto k : initial) treap.insert(k, k);
  util::Xoshiro256 rng(kSeed);
  std::uint64_t ops = 0;
  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + std::chrono::milliseconds(duration_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    for (int i = 0; i < 512; ++i) {  // check the clock in chunks
      const std::int64_t k = rng.range(lo, hi);
      if (rng.chance(1, 2)) {
        treap.insert(k, k);
      } else {
        treap.erase(k);
      }
      ++ops;
    }
  }
  const double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  return static_cast<double>(ops) / secs;
}

// UC harness: pre-fills once (seed_sorted: one path-copying install for
// the whole initial set, not one per key), then runs each trial with P
// workers.

struct UcFixture {
  explicit UcFixture(const std::vector<std::int64_t>& initial)
      : atom(smr, pool) {
    alloc::ThreadCache cache(pool);
    Uc::Ctx ctx(smr, cache);
    auto sorted = initial;
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
    std::vector<std::pair<std::int64_t, std::int64_t>> items;
    items.reserve(sorted.size());
    for (const auto k : sorted) items.emplace_back(k, k);
    atom.seed_sorted(ctx, items.begin(), items.end());
  }

  alloc::PoolBackend pool;
  Smr smr;
  Uc atom;
};

double uc_batch_ops_per_sec(UcFixture& fx, const BatchKeys& keys,
                            std::size_t procs, int duration_ms) {
  const auto run = run_timed(
      procs, std::chrono::milliseconds(duration_ms),
      [&](std::size_t tid, const std::atomic<bool>& stop) -> std::uint64_t {
        alloc::ThreadCache cache(fx.pool);
        Uc::Ctx ctx(fx.smr, cache);
        const auto& mine = keys.per_thread[tid];
        std::uint64_t ops = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          for (const auto k : mine) {
            fx.atom.update(ctx, [k](T t, auto& b) { return t.insert(b, k, k); });
            ++ops;
          }
          for (const auto k : mine) {
            fx.atom.update(ctx, [k](T t, auto& b) { return t.erase(b, k); });
            ++ops;
          }
        }
        return ops;
      });
  return run.ops_per_sec();
}

double uc_random_ops_per_sec(UcFixture& fx, std::int64_t lo, std::int64_t hi,
                             std::size_t procs, int duration_ms) {
  const auto run = run_timed(
      procs, std::chrono::milliseconds(duration_ms),
      [&](std::size_t tid, const std::atomic<bool>& stop) -> std::uint64_t {
        alloc::ThreadCache cache(fx.pool);
        Uc::Ctx ctx(fx.smr, cache);
        util::Xoshiro256 rng(kSeed ^ (tid * 0x9e3779b97f4a7c15ULL));
        std::uint64_t ops = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          const std::int64_t k = rng.range(lo, hi);
          if (rng.chance(1, 2)) {
            fx.atom.update(ctx, [k](T t, auto& b) { return t.insert(b, k, k); });
          } else {
            fx.atom.update(ctx, [k](T t, auto& b) { return t.erase(b, k); });
          }
          ++ops;
        }
        return ops;
      });
  return run.ops_per_sec();
}

// ---------- simulated measurement ----------

model::SimConfig sim_config(const TableBenchConfig& cfg, std::size_t procs,
                            double noop_fraction) {
  model::SimConfig sim;
  sim.num_leaves = cfg.sim_leaves;
  sim.cache_lines = cfg.sim_cache_lines;
  sim.miss_cost = cfg.sim_miss_cost;
  sim.processes = procs;
  sim.ops = cfg.sim_ops;
  sim.noop_fraction = noop_fraction;
  sim.alloc_ticks_per_node = cfg.sim_alloc_ticks;
  sim.alloc_refill_batch = cfg.sim_alloc_batch;
  sim.alloc_contention_ticks = cfg.sim_alloc_contention;
  sim.seed = kSeed;
  return sim;
}

}  // namespace

int run_table_bench(TableBenchConfig cfg, int argc, char** argv) {
  bool run_real = true;
  bool run_sim = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      cfg.initial_keys = 100000;
      cfg.batch_keys_per_thread = 4096;
      cfg.trials = 1;
      cfg.duration_ms = 120;
      cfg.sim_ops = 4000;
      cfg.sim_leaves = 1 << 17;
      cfg.sim_cache_lines = 1 << 12;
    } else if (std::strcmp(argv[i], "--sim-only") == 0) {
      run_real = false;
    } else if (std::strcmp(argv[i], "--real-only") == 0) {
      run_sim = false;
    } else if (std::strcmp(argv[i], "--trials") == 0 && i + 1 < argc) {
      cfg.trials = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--duration-ms") == 0 && i + 1 < argc) {
      cfg.duration_ms = std::atoi(argv[++i]);
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--quick] [--sim-only] [--real-only] [--trials N]"
                   " [--duration-ms N]\n";
      return 2;
    }
  }

  std::cout << "### " << cfg.title << "\n\n";

  // ---- paper reference ----
  {
    SpeedupTable t;
    t.title = "paper (published)";
    t.process_counts = cfg.procs;
    t.rows.push_back({"Batch", cfg.paper_batch_seq, cfg.paper_batch});
    t.rows.push_back({"Random", cfg.paper_random_seq, cfg.paper_random});
    print_table(std::cout, t);
    std::cout << "\n";
  }

  // ---- real threads on this host ----
  if (run_real) {
    const std::size_t max_procs =
        *std::max_element(cfg.procs.begin(), cfg.procs.end());
    const auto batch_keys = make_batch_keys(cfg.initial_keys, max_procs,
                                            cfg.batch_keys_per_thread, kSeed);
    RandomWorkloadConfig rnd;
    rnd.initial_inserts = cfg.initial_keys;
    rnd.lo = -static_cast<std::int64_t>(cfg.initial_keys);
    rnd.hi = static_cast<std::int64_t>(cfg.initial_keys);
    const auto random_initial = make_random_initial(rnd, kSeed);

    const auto seq_batch = run_trials(cfg.trials, [&] {
                             return seq_batch_ops_per_sec(batch_keys, cfg.duration_ms);
                           }).mean;
    const auto seq_random =
        run_trials(cfg.trials, [&] {
          return seq_random_ops_per_sec(random_initial, rnd.lo, rnd.hi,
                                        cfg.duration_ms);
        }).mean;

    SpeedupRow batch_row{"Batch", seq_batch, {}};
    SpeedupRow random_row{"Random", seq_random, {}};
    {
      UcFixture fx(batch_keys.initial);
      for (const auto p : cfg.procs) {
        const auto ops = run_trials(cfg.trials, [&] {
                           return uc_batch_ops_per_sec(fx, batch_keys, p,
                                                       cfg.duration_ms);
                         }).mean;
        batch_row.speedups.push_back(ops / seq_batch);
      }
    }
    {
      UcFixture fx(random_initial);
      for (const auto p : cfg.procs) {
        const auto ops = run_trials(cfg.trials, [&] {
                           return uc_random_ops_per_sec(fx, rnd.lo, rnd.hi, p,
                                                        cfg.duration_ms);
                         }).mean;
        random_row.speedups.push_back(ops / seq_random);
      }
    }
    SpeedupTable t;
    t.title = "measured (real threads, " +
              std::to_string(hardware_threads()) + " hw thread(s) on this host)";
    t.process_counts = cfg.procs;
    t.rows.push_back(batch_row);
    t.rows.push_back(random_row);
    print_table(std::cout, t);
    std::cout << "\n";
  }

  // ---- simulated paper machine ----
  if (run_sim) {
    const auto seq_batch = model::run_seq_sim(sim_config(cfg, 1, 0.0));
    const auto seq_random = model::run_seq_sim(sim_config(cfg, 1, 0.5));
    SpeedupRow batch_row{"Batch", seq_batch.throughput() * 1e6, {}};
    SpeedupRow random_row{"Random", seq_random.throughput() * 1e6, {}};
    for (const auto p : cfg.procs) {
      const auto conc = model::run_protocol_sim(sim_config(cfg, p, 0.0));
      batch_row.speedups.push_back(conc.throughput() / seq_batch.throughput());
    }
    for (const auto p : cfg.procs) {
      const auto conc = model::run_protocol_sim(sim_config(cfg, p, 0.5));
      random_row.speedups.push_back(conc.throughput() / seq_random.throughput());
    }
    SpeedupTable t;
    t.title = "simulated (private-cache model: R=" +
              std::to_string(cfg.sim_miss_cost) +
              ", M=" + std::to_string(cfg.sim_cache_lines) + ", alloc " +
              std::to_string(cfg.sim_alloc_ticks) + "+" +
              std::to_string(cfg.sim_alloc_contention) +
              "P ticks per " + std::to_string(cfg.sim_alloc_batch) +
              "-node refill; Seq column is ops/Mtick)";
    t.process_counts = cfg.procs;
    t.rows.push_back(batch_row);
    t.rows.push_back(random_row);
    print_table(std::cout, t);
    std::cout << "\n";
  }
  return 0;
}

}  // namespace pathcopy::bench
