// Experiment E11 — read-fraction sweep (§2's "read-only operations scale
// extremely well").
//
// The paper's §2 predicts perfect read-side scaling (readers share an
// immutable version, no coordination) and the surprising part is that
// even the 0%-read column scales. This bench sweeps the read fraction
// from pure-write to pure-read:
//   * real threads: UC treap, mixed contains/insert/erase at each ratio
//     (time-shared on this host — recorded as-is);
//   * simulator: reads complete without a CAS, which is exactly the
//     model's noop path, so the noop_fraction knob doubles as the read
//     ratio with per-process private caches.
// Expected shape: speedup grows monotonically with the read fraction, and
// the pure-read column scales ~linearly in P while pure-write saturates
// near the paper's Ω(log N) bound.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <utility>
#include <vector>

#include "alloc/pool_alloc.hpp"
#include "alloc/thread_cache_alloc.hpp"
#include "bench_util/runner.hpp"
#include "core/atom.hpp"
#include "model/sim.hpp"
#include "persist/treap.hpp"
#include "reclaim/epoch.hpp"
#include "util/rng.hpp"

namespace {

using namespace pathcopy;
using Treap = persist::Treap<std::int64_t, std::int64_t>;

constexpr std::int64_t kKeyRange = 1 << 16;

double run_real(std::size_t procs, unsigned read_pct, int duration_ms) {
  alloc::PoolBackend pool;
  reclaim::EpochReclaimer smr;
  core::Atom<Treap, reclaim::EpochReclaimer, alloc::ThreadCache> atom(smr,
                                                                      pool);
  {
    // Pre-fill to ~half the key range so reads hit roughly half the time.
    // seed_sorted: one path-copying install for the whole set instead of
    // one root-to-leaf copy per initial key.
    alloc::ThreadCache cache(pool);
    core::Atom<Treap, reclaim::EpochReclaimer, alloc::ThreadCache>::Ctx ctx(
        smr, cache);
    util::Xoshiro256 rng(99);
    std::vector<std::int64_t> keys;
    keys.reserve(kKeyRange / 2);
    for (std::int64_t i = 0; i < kKeyRange / 2; ++i) {
      keys.push_back(rng.range(0, kKeyRange));
    }
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    std::vector<std::pair<std::int64_t, std::int64_t>> items;
    items.reserve(keys.size());
    for (const auto k : keys) items.emplace_back(k, k);
    atom.seed_sorted(ctx, items.begin(), items.end());
  }
  const auto run = bench::run_timed(
      procs, std::chrono::milliseconds(duration_ms),
      [&](std::size_t tid, const std::atomic<bool>& stop) -> std::uint64_t {
        alloc::ThreadCache cache(pool);
        core::Atom<Treap, reclaim::EpochReclaimer, alloc::ThreadCache>::Ctx
            ctx(smr, cache);
        util::Xoshiro256 rng(tid * 7919 + 13);
        std::uint64_t ops = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          const std::int64_t k = rng.range(0, kKeyRange);
          if (rng.below(100) < read_pct) {
            atom.read(ctx, [k](Treap t) { return t.contains(k); });
          } else if (rng.chance(1, 2)) {
            atom.update(ctx,
                        [k](Treap t, auto& b) { return t.insert(b, k, k); });
          } else {
            atom.update(ctx, [k](Treap t, auto& b) { return t.erase(b, k); });
          }
          ++ops;
        }
        return ops;
      });
  return run.ops_per_sec();
}

double run_sim(std::size_t procs, unsigned read_pct) {
  model::SimConfig cfg;
  cfg.num_leaves = 1 << 18;
  cfg.cache_lines = 1 << 13;
  cfg.miss_cost = 100;
  cfg.processes = procs;
  cfg.ops = 12000;
  cfg.noop_fraction = read_pct / 100.0;
  cfg.seed = 42;
  return model::run_protocol_sim(cfg).throughput() * 1e6;  // ops/Mtick
}

}  // namespace

int main(int argc, char** argv) {
  int duration_ms = 200;
  std::vector<std::size_t> procs{1, 2, 4, 8, 16};
  bool sim_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      duration_ms = 80;
      procs = {1, 4};
    }
    if (std::strcmp(argv[i], "--sim-only") == 0) sim_only = true;
  }
  const std::vector<unsigned> mixes{0, 50, 90, 100};

  std::printf("### E11: read-fraction sweep (S2 read-scaling claim)\n\n");

  std::printf("== simulated (ops/Mtick; private-cache model, reads = no-CAS "
              "traversals) ==\n");
  std::printf("%-10s", "read%");
  for (const auto p : procs) std::printf("  %8zup", p);
  std::printf("   scaling 1p->%zup\n", procs.back());
  for (const unsigned mix : mixes) {
    std::printf("%-10u", mix);
    double first = 0, last = 0;
    for (const auto p : procs) {
      const double t = run_sim(p, mix);
      if (p == procs.front()) first = t;
      last = t;
      std::printf("  %9.0f", t);
    }
    std::printf("   %5.2fx\n", first == 0 ? 0.0 : last / first);
  }

  if (!sim_only) {
    std::printf("\n== measured (real threads, ops/s; %zu hw thread(s) — "
                "oversubscribed columns time-share) ==\n",
                bench::hardware_threads());
    std::printf("%-10s", "read%");
    for (const auto p : procs) std::printf("  %8zup", p);
    std::printf("\n");
    for (const unsigned mix : mixes) {
      std::printf("%-10u", mix);
      for (const auto p : procs) {
        std::printf("  %9.0f", run_real(p, mix, duration_ms));
      }
      std::printf("\n");
    }
  }

  std::printf("\nexpected shape: throughput rises with read%% at every P; "
              "pure reads scale near-linearly in P (no serialization), "
              "pure writes saturate at the paper's bound.\n");
  return 0;
}
