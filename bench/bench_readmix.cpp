// Experiment E11 — read-fraction sweep — plus the PR 10 batched read
// path (--multiget).
//
// The paper's §2 predicts perfect read-side scaling (readers share an
// immutable version, no coordination). The default mode keeps the E11
// sweep: read fraction from pure-write to pure-read, real threads and
// the private-cache simulator (reads are the model's no-CAS path).
//
// --multiget benchmarks the read-side mirror of the write batch:
//   * Probe path (part A): a 1M-key Atom treap probed per-key
//     (find-per-read, one pin each) vs get_sorted_batch sweeps at
//     B ∈ {8, 64} × locality ∈ {uniform, hot-256 contiguous window}.
//     The sweep shares descent prefixes and pins once per batch, so the
//     hot window is the regime where it pays hardest.
//   * Read coalescing (part B): a 4-shard store with an executor and
//     oversubscribed clients issuing multi_get probes; backed-up lanes
//     make one worker wake absorb several read tickets into one merged
//     sweep (mean read tickets/wake > 1 is the contract CI gates).
//
// --json PATH writes the machine-readable rows (the checked-in
// BENCH_readmix_multiget.json artifact, per-key baseline included);
// --assert-read-coalesce exits 1 unless read tickets/wake > 1 in the
// async cell AND the hot-256 B=64 sweep beats per-key reads >= 1.3x.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <set>
#include <span>
#include <utility>
#include <vector>

#include "alloc/pool_alloc.hpp"
#include "alloc/thread_cache_alloc.hpp"
#include "bench_util/batch_stats.hpp"
#include "bench_util/runner.hpp"
#include "core/atom.hpp"
#include "core/combining.hpp"
#include "model/sim.hpp"
#include "persist/treap.hpp"
#include "reclaim/epoch.hpp"
#include "store/executor.hpp"
#include "store/router.hpp"
#include "store/shard_stats.hpp"
#include "store/sharded_map.hpp"
#include "util/rng.hpp"

namespace {

using namespace pathcopy;
using Treap = persist::Treap<std::int64_t, std::int64_t>;
using Epoch = reclaim::EpochReclaimer;
using ProbeAtom = core::Atom<Treap, Epoch, alloc::ThreadCache>;

constexpr std::int64_t kKeyRange = 1 << 16;

// ---------------------------------------------------------------------
// E11: the read-fraction sweep (default mode, unchanged shape).
// ---------------------------------------------------------------------

double run_real(std::size_t procs, unsigned read_pct, int duration_ms) {
  alloc::PoolBackend pool;
  reclaim::EpochReclaimer smr;
  core::Atom<Treap, reclaim::EpochReclaimer, alloc::ThreadCache> atom(smr,
                                                                      pool);
  {
    // Pre-fill to ~half the key range so reads hit roughly half the time.
    // seed_sorted: one path-copying install for the whole set instead of
    // one root-to-leaf copy per initial key.
    alloc::ThreadCache cache(pool);
    core::Atom<Treap, reclaim::EpochReclaimer, alloc::ThreadCache>::Ctx ctx(
        smr, cache);
    util::Xoshiro256 rng(99);
    std::vector<std::int64_t> keys;
    keys.reserve(kKeyRange / 2);
    for (std::int64_t i = 0; i < kKeyRange / 2; ++i) {
      keys.push_back(rng.range(0, kKeyRange));
    }
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    std::vector<std::pair<std::int64_t, std::int64_t>> items;
    items.reserve(keys.size());
    for (const auto k : keys) items.emplace_back(k, k);
    atom.seed_sorted(ctx, items.begin(), items.end());
  }
  const auto run = bench::run_timed(
      procs, std::chrono::milliseconds(duration_ms),
      [&](std::size_t tid, const std::atomic<bool>& stop) -> std::uint64_t {
        alloc::ThreadCache cache(pool);
        core::Atom<Treap, reclaim::EpochReclaimer, alloc::ThreadCache>::Ctx
            ctx(smr, cache);
        util::Xoshiro256 rng(tid * 7919 + 13);
        std::uint64_t ops = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          const std::int64_t k = rng.range(0, kKeyRange);
          if (rng.below(100) < read_pct) {
            atom.read(ctx, [k](Treap t) { return t.contains(k); });
          } else if (rng.chance(1, 2)) {
            atom.update(ctx,
                        [k](Treap t, auto& b) { return t.insert(b, k, k); });
          } else {
            atom.update(ctx, [k](Treap t, auto& b) { return t.erase(b, k); });
          }
          ++ops;
        }
        return ops;
      });
  return run.ops_per_sec();
}

double run_sim(std::size_t procs, unsigned read_pct) {
  model::SimConfig cfg;
  cfg.num_leaves = 1 << 18;
  cfg.cache_lines = 1 << 13;
  cfg.miss_cost = 100;
  cfg.processes = procs;
  cfg.ops = 12000;
  cfg.noop_fraction = read_pct / 100.0;
  cfg.seed = 42;
  return model::run_protocol_sim(cfg).throughput() * 1e6;  // ops/Mtick
}

// ---------------------------------------------------------------------
// Part A: the probe path. One pinned 1M-key treap, probed per-key vs by
// sorted sweep. Key space is the even keys in [0, 2*kProbeKeys) so odd
// probes exercise the absent-key path too.
// ---------------------------------------------------------------------

constexpr std::size_t kProbeKeys = std::size_t{1} << 20;  // 1M resident keys
constexpr std::size_t kBatchPool = 256;  // pre-generated probe sets
constexpr std::int64_t kHotWindow = 256;  // resident keys per hot window

struct ProbeCell {
  double perkey_keys_per_sec = 0;
  double multiget_keys_per_sec = 0;
  double ratio = 0;
  double perkey_ns = 0;    // per-op baseline, ns per key
  double multiget_ns = 0;  // ns per key through the sweep
  double saved_share = 0;  // nodes saved / per-key counterfactual
};

/// Pre-generates kBatchPool sorted-unique probe key sets of size `batch`.
/// hot: each set lives inside one random 256-resident-key contiguous
/// window (the hot-256 locality); uniform: anywhere in the key space.
std::vector<std::vector<std::int64_t>> make_probe_sets(unsigned batch,
                                                       bool hot,
                                                       std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  const std::int64_t space = static_cast<std::int64_t>(2 * kProbeKeys);
  std::vector<std::vector<std::int64_t>> sets;
  sets.reserve(kBatchPool);
  for (std::size_t s = 0; s < kBatchPool; ++s) {
    std::set<std::int64_t> keys;
    if (hot) {
      const std::int64_t base =
          2 * rng.range(0, static_cast<std::int64_t>(kProbeKeys) - kHotWindow);
      while (keys.size() < batch) {
        keys.insert(base + rng.range(0, 2 * kHotWindow - 1));
      }
    } else {
      while (keys.size() < batch) {
        keys.insert(rng.range(0, space - 1));
      }
    }
    sets.emplace_back(keys.begin(), keys.end());
  }
  return sets;
}

ProbeCell run_probe_cell(ProbeAtom& atom, reclaim::EpochReclaimer& smr,
                         alloc::PoolBackend& pool, unsigned batch, bool hot,
                         int duration_ms) {
  const auto sets = make_probe_sets(batch, hot, batch * 31 + (hot ? 7 : 1));
  ProbeCell cell;

  // Per-key baseline: the same key sets, one pinned read per key.
  const auto perkey = bench::run_timed(
      1, std::chrono::milliseconds(duration_ms),
      [&](std::size_t, const std::atomic<bool>& stop) -> std::uint64_t {
        alloc::ThreadCache cache(pool);
        ProbeAtom::Ctx ctx(smr, cache);
        std::uint64_t keys = 0;
        std::size_t s = 0;
        std::uint64_t hits = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          for (const std::int64_t k : sets[s]) {
            hits += atom.read(
                ctx, [k](Treap t) { return t.find(k) != nullptr; });
          }
          keys += sets[s].size();
          s = (s + 1) % sets.size();
        }
        return keys + (hits & 1);  // keep the reads observable
      });
  cell.perkey_keys_per_sec = perkey.ops_per_sec();

  // The sweep: same key sets, one pin + one descent-sharing probe each.
  bench::OpStatsAccumulator acc;
  const auto mget = bench::run_timed(
      1, std::chrono::milliseconds(duration_ms),
      [&](std::size_t, const std::atomic<bool>& stop) -> std::uint64_t {
        alloc::ThreadCache cache(pool);
        ProbeAtom::Ctx ctx(smr, cache);
        std::vector<ProbeAtom::ReadOutcome> out(batch);
        std::uint64_t keys = 0;
        std::size_t s = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          out.clear();
          out.resize(sets[s].size());
          atom.multi_get(ctx, std::span<const std::int64_t>(sets[s]),
                         std::span<ProbeAtom::ReadOutcome>(out));
          keys += sets[s].size();
          s = (s + 1) % sets.size();
        }
        acc.add(ctx.stats);
        return keys;
      });
  cell.multiget_keys_per_sec = mget.ops_per_sec();
  cell.ratio = cell.perkey_keys_per_sec == 0
                   ? 0
                   : cell.multiget_keys_per_sec / cell.perkey_keys_per_sec;
  cell.perkey_ns = cell.perkey_keys_per_sec == 0
                       ? 0
                       : 1e9 / cell.perkey_keys_per_sec;
  cell.multiget_ns = cell.multiget_keys_per_sec == 0
                         ? 0
                         : 1e9 / cell.multiget_keys_per_sec;
  const core::OpStats st = acc.snapshot();
  const std::uint64_t counterfactual =
      st.probe_nodes_visited + st.probe_nodes_saved;
  cell.saved_share = counterfactual == 0
                         ? 0
                         : static_cast<double>(st.probe_nodes_saved) /
                               static_cast<double>(counterfactual);
  return cell;
}

// ---------------------------------------------------------------------
// Part B: cross-ticket read coalescing. Oversubscribed clients push
// multi_get tickets (plus a write trickle) through a 4-shard executor;
// backed-up lanes let one wake k-way-merge several tickets' key sets
// into one mega-probe against one pinned root.
// ---------------------------------------------------------------------

struct CoalesceCell {
  double keys_per_sec = 0;
  double tickets_per_wake = 0;
  core::OpStats total;
};

CoalesceCell run_coalesce_cell(int duration_ms, std::size_t clients,
                               bool print_board) {
  using Uc = core::CombiningAtom<Treap, Epoch, alloc::ThreadCache>;
  using Router = store::RangeRouter<std::int64_t>;
  using Map = store::ShardedMap<Uc, Router>;
  constexpr std::size_t kShards = 4;
  constexpr std::size_t kResident = std::size_t{1} << 15;
  constexpr unsigned kProbeBatch = 16;

  alloc::PoolBackend pool;
  alloc::ThreadCache root_cache(pool);
  const std::int64_t space = static_cast<std::int64_t>(2 * kResident);
  Map map(kShards, root_cache, Router::uniform(0, space, kShards));
  store::ShardExecutor<Uc> exec(map,
                                [&pool] { return alloc::ThreadCache(pool); });
  {
    typename Map::Session seeder(map, root_cache);
    std::vector<std::pair<std::int64_t, std::int64_t>> items;
    items.reserve(kResident);
    for (std::size_t i = 0; i < kResident; ++i) {
      items.emplace_back(static_cast<std::int64_t>(2 * i),
                         static_cast<std::int64_t>(i));
    }
    seeder.seed_sorted(items.begin(), items.end());
  }

  store::ShardStatsBoard board(kShards);
  const auto run = bench::run_timed(
      clients, std::chrono::milliseconds(duration_ms),
      [&](std::size_t tid, const std::atomic<bool>& stop) -> std::uint64_t {
        alloc::ThreadCache cache(pool);
        typename Map::Session sess(map, cache);
        util::Xoshiro256 rng(tid * 104729 + 17);
        using Req = typename Map::BatchRequest;
        using K = typename Map::OpKind;
        std::vector<std::int64_t> keys(kProbeBatch);
        std::vector<typename Map::ReadOutcome> out(kProbeBatch);
        std::vector<Req> reqs(8, Req{K::kInsert, 0, 0});
        const auto wout = std::make_unique<bool[]>(reqs.size());
        std::uint64_t probed = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          if (rng.below(10) < 9) {  // 90% probe tickets
            for (auto& k : keys) k = rng.range(0, space - 1);
            out.clear();
            out.resize(keys.size());
            sess.multi_get(std::span<const std::int64_t>(keys),
                           std::span<typename Map::ReadOutcome>(out));
            probed += keys.size();
          } else {  // 10% write churn keeps installs interleaving
            for (auto& r : reqs) {
              const std::int64_t k = rng.range(0, space - 1);
              r = rng.chance(1, 2) ? Req{K::kInsert, k, k}
                                   : Req{K::kErase, k, std::nullopt};
            }
            sess.execute_batch(reqs,
                               std::span<bool>(wout.get(), reqs.size()));
          }
        }
        sess.fold_into(board);
        return probed;
      });
  exec.stop();
  exec.fold_into(board);
  board.set_elapsed_seconds(run.seconds);

  CoalesceCell cell;
  cell.keys_per_sec = run.ops_per_sec();
  cell.total = board.total();
  cell.tickets_per_wake = cell.total.read_tickets_per_wake();
  if (print_board) {
    std::printf("\nper-shard board (%zu clients, %zu shards):\n", clients,
                kShards);
    board.print(stdout);
    bench::print_read_stats(stdout, cell.total);
  }
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  int duration_ms = 200;
  int probe_ms = 400;
  std::vector<std::size_t> procs{1, 2, 4, 8, 16};
  std::size_t clients = 6;
  bool sim_only = false;
  bool multiget = false;
  bool assert_coalesce = false;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      duration_ms = 80;
      probe_ms = 150;
      procs = {1, 4};
    } else if (std::strcmp(argv[i], "--sim-only") == 0) {
      sim_only = true;
    } else if (std::strcmp(argv[i], "--multiget") == 0) {
      multiget = true;
    } else if (std::strcmp(argv[i], "--assert-read-coalesce") == 0) {
      assert_coalesce = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_readmix [--quick] [--sim-only] [--multiget]"
                   " [--json PATH] [--assert-read-coalesce]\n");
      return 2;
    }
  }

  if (multiget) {
    std::printf("### batched read path: sorted multi-get sweeps & read "
                "coalescing\n\n");
    std::printf("== probe path: %zu resident keys (even), per-key reads vs "
                "one-pin sorted sweeps ==\n",
                kProbeKeys);

    alloc::PoolBackend pool;
    reclaim::EpochReclaimer smr;
    ProbeAtom atom(smr, pool);
    {
      alloc::ThreadCache cache(pool);
      ProbeAtom::Ctx ctx(smr, cache);
      std::vector<std::pair<std::int64_t, std::int64_t>> items;
      items.reserve(kProbeKeys);
      for (std::size_t i = 0; i < kProbeKeys; ++i) {
        items.emplace_back(static_cast<std::int64_t>(2 * i),
                           static_cast<std::int64_t>(i));
      }
      atom.seed_sorted(ctx, items.begin(), items.end());
    }

    struct Row {
      const char* locality;
      bool hot;
      unsigned batch;
      ProbeCell cell;
    };
    std::vector<Row> rows{{"uniform", false, 8, {}},
                          {"uniform", false, 64, {}},
                          {"hot256", true, 8, {}},
                          {"hot256", true, 64, {}}};
    std::printf("%-9s  %5s  %12s  %12s  %7s  %9s  %9s  %7s\n", "locality",
                "B", "perkey k/s", "mget k/s", "ratio", "perkey-ns",
                "mget-ns", "saved%");
    for (auto& r : rows) {
      r.cell = run_probe_cell(atom, smr, pool, r.batch, r.hot, probe_ms);
      std::printf("%-9s  %5u  %12.0f  %12.0f  %6.2fx  %9.1f  %9.1f  %6.1f%%\n",
                  r.locality, r.batch, r.cell.perkey_keys_per_sec,
                  r.cell.multiget_keys_per_sec, r.cell.ratio, r.cell.perkey_ns,
                  r.cell.multiget_ns, 100.0 * r.cell.saved_share);
    }

    std::printf("\n== read coalescing: %zu clients over 4 executor-backed "
                "shards, 90%% probe tickets ==\n",
                clients);
    const CoalesceCell co = run_coalesce_cell(duration_ms, clients, true);
    std::printf("\ncoalescing: %.2f read tickets per merged sweep "
                "(%.0f probe keys/s)\n",
                co.tickets_per_wake, co.keys_per_sec);

    if (json_path != nullptr) {
      std::FILE* f = std::fopen(json_path, "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot open %s for writing\n", json_path);
        return 2;
      }
      std::fprintf(f, "[\n");
      std::fprintf(f,
                   "  {\"row\": \"meta\", \"bench\": \"bench_readmix\", "
                   "\"mode\": \"multiget\", \"resident_keys\": %zu, "
                   "\"probe_ms\": %d, \"cell_ms\": %d, \"clients\": %zu, "
                   "\"hw_threads\": %zu}",
                   kProbeKeys, probe_ms, duration_ms, clients,
                   bench::hardware_threads());
      for (const auto& r : rows) {
        std::fprintf(
            f,
            ",\n  {\"row\": \"probe\", \"locality\": \"%s\", \"batch\": %u, "
            "\"perkey_keys_per_sec\": %.0f, \"multiget_keys_per_sec\": %.0f, "
            "\"ratio\": %.3f, \"perkey_ns_per_key\": %.1f, "
            "\"multiget_ns_per_key\": %.1f, \"nodes_saved_share\": %.4f}",
            r.locality, r.batch, r.cell.perkey_keys_per_sec,
            r.cell.multiget_keys_per_sec, r.cell.ratio, r.cell.perkey_ns,
            r.cell.multiget_ns, r.cell.saved_share);
      }
      std::fprintf(
          f,
          ",\n  {\"row\": \"coalesce\", \"read_tickets_per_wake\": %.3f, "
          "\"read_sweeps\": %llu, \"read_tickets\": %llu, "
          "\"probe_keys_per_sec\": %.0f, \"mean_probe_batch\": %.2f}",
          co.tickets_per_wake,
          static_cast<unsigned long long>(co.total.exec_read_sweeps),
          static_cast<unsigned long long>(co.total.exec_read_tasks),
          co.keys_per_sec, co.total.mean_read_batch());
      std::fprintf(f, "\n]\n");
      std::fclose(f);
      std::printf("json rows written to %s\n", json_path);
    }

    if (assert_coalesce) {
      const ProbeCell& hot64 = rows[3].cell;
      bool ok = true;
      if (co.tickets_per_wake <= 1.0) {
        std::fprintf(stderr,
                     "read-coalesce assert FAILED: %.2f read tickets/wake "
                     "(need > 1)\n",
                     co.tickets_per_wake);
        ok = false;
      }
      if (hot64.ratio < 1.3) {
        std::fprintf(stderr,
                     "read-coalesce assert FAILED: hot-256 B=64 sweep only "
                     "%.2fx per-key reads (need >= 1.3)\n",
                     hot64.ratio);
        ok = false;
      }
      if (!ok) return 1;
      std::printf("read-coalesce assert: ok (%.2f tickets/wake, hot-64 "
                  "%.2fx)\n",
                  co.tickets_per_wake, hot64.ratio);
    }
    return 0;
  }

  const std::vector<unsigned> mixes{0, 50, 90, 100};

  std::printf("### E11: read-fraction sweep (S2 read-scaling claim)\n\n");

  std::printf("== simulated (ops/Mtick; private-cache model, reads = no-CAS "
              "traversals) ==\n");
  std::printf("%-10s", "read%");
  for (const auto p : procs) std::printf("  %8zup", p);
  std::printf("   scaling 1p->%zup\n", procs.back());
  for (const unsigned mix : mixes) {
    std::printf("%-10u", mix);
    double first = 0, last = 0;
    for (const auto p : procs) {
      const double t = run_sim(p, mix);
      if (p == procs.front()) first = t;
      last = t;
      std::printf("  %9.0f", t);
    }
    std::printf("   %5.2fx\n", first == 0 ? 0.0 : last / first);
  }

  if (!sim_only) {
    std::printf("\n== measured (real threads, ops/s; %zu hw thread(s) — "
                "oversubscribed columns time-share) ==\n",
                bench::hardware_threads());
    std::printf("%-10s", "read%");
    for (const auto p : procs) std::printf("  %8zup", p);
    std::printf("\n");
    for (const unsigned mix : mixes) {
      std::printf("%-10u", mix);
      for (const auto p : procs) {
        std::printf("  %9.0f", run_real(p, mix, duration_ms));
      }
      std::printf("\n");
    }
  }

  std::printf("\nexpected shape: throughput rises with read%% at every P; "
              "pure reads scale near-linearly in P (no serialization), "
              "pure writes saturate at the paper's bound.\n");
  return 0;
}
