// Experiment E3 — the paper's Table 2 (AMD EPYC 7662, 64 cores).
//
//   Workload  Seq Treap  UC 1p   UC 8p   UC 16p  UC 32p  UC 63p
//   Batch     459 580    0.96x   1.70x   1.91x   1.55x   1.02x
//   Random    396 898    1.36x   3.63x   2.41x   2.81x   2.30x
//
// Shape to reproduce: the strongest mid-range speedups of the three
// machines, then a pronounced collapse toward 1x at 63 processes — the
// paper's "bottleneck ... in Java memory allocator" observation, modeled
// by a serialized per-node allocation cost.
#include "common.hpp"

int main(int argc, char** argv) {
  pathcopy::bench::TableBenchConfig cfg;
  cfg.title = "E3: Table 2 — AMD EPYC 7662 (64 cores)";
  cfg.procs = {1, 8, 16, 32, 63};
  cfg.paper_batch_seq = 459580;
  cfg.paper_random_seq = 396898;
  cfg.paper_batch = {0.96, 1.70, 1.91, 1.55, 1.02};
  cfg.paper_random = {1.36, 3.63, 2.41, 2.81, 2.30};
  // Allocator contention calibrated so the Batch peak lands around 16-32
  // processes and 63 processes fall back to ~1x, as in the paper.
  cfg.sim_alloc_ticks = 10;
  cfg.sim_alloc_batch = 32;
  cfg.sim_alloc_contention = 4;
  return pathcopy::bench::run_table_bench(cfg, argc, argv);
}
