// Experiment E4 — the §3 worked example and Fig. 1's structural sharing.
//
// Part 1 replays the paper's example exactly: the 8-leaf external tree
// {10,20,30,40,50,60,70} (keyed as in Fig. 1), process P inserts 5 and
// process Q inserts 75. We count uncached loads for the sequential
// execution (one cache) and the concurrent execution (private caches, Q
// retries after P's CAS), reproducing the "7 vs 5 serialized loads"
// arithmetic of §3.
//
// Part 2 quantifies Fig. 1's sharing claim at scale: after one update to a
// tree of N keys, the new version shares all but O(log N) nodes with the
// old version, for all three tree structures.
#include <cstdint>
#include <cstdio>
#include <unordered_set>
#include <vector>

#include "alloc/arena_alloc.hpp"
#include "core/builder.hpp"
#include "persist/avl.hpp"
#include "persist/external_bst.hpp"
#include "persist/treap.hpp"
#include "util/rng.hpp"

namespace {

using pathcopy::core::Builder;
using Arena = pathcopy::alloc::Arena;
using Bst = pathcopy::persist::ExternalBst<std::int64_t, std::int64_t>;

// Minimal hand-shaped internal BST for the §3 example. The paper's Fig. 1
// tree is the chain-shaped 7-node BST {40; 30-20-10 down the left spine,
// 50-60-70 down the right}, so both insert paths are exactly 4 nodes.
// Insert copies the search path once (pure path copying, no rebalancing),
// matching the paper's load arithmetic exactly.
struct MiniNode {
  std::int64_t key;
  const MiniNode* left;
  const MiniNode* right;
};

class MiniBst {
 public:
  const MiniNode* root = nullptr;

  std::vector<const MiniNode*> path_to(std::int64_t k) const {
    std::vector<const MiniNode*> p;
    const MiniNode* n = root;
    while (n != nullptr) {
      p.push_back(n);
      n = k < n->key ? n->left : n->right;
    }
    return p;
  }

  MiniBst insert(std::vector<MiniNode>& pool, std::int64_t k) const {
    return MiniBst{insert_rec(pool, root, k)};
  }

 private:
  static const MiniNode* insert_rec(std::vector<MiniNode>& pool,
                                    const MiniNode* n, std::int64_t k) {
    if (n == nullptr) {
      pool.push_back(MiniNode{k, nullptr, nullptr});
      return &pool.back();
    }
    if (k < n->key) {
      pool.push_back(MiniNode{n->key, insert_rec(pool, n->left, k), n->right});
    } else {
      pool.push_back(MiniNode{n->key, n->left, insert_rec(pool, n->right, k)});
    }
    return &pool.back();
  }
};

std::size_t uncached_loads(const std::vector<const MiniNode*>& path,
                           std::unordered_set<const MiniNode*>& cache) {
  std::size_t misses = 0;
  for (const auto* n : path) {
    if (!cache.contains(n)) {
      ++misses;
      cache.insert(n);
    }
  }
  return misses;
}

void section3_worked_example() {
  std::printf("== E4 part 1: Section 3 worked example (Fig. 1 tree) ==\n");
  // Build the exact Fig. 1 shape. Nodes live in a stable deque-like pool.
  std::vector<MiniNode> pool;
  pool.reserve(256);  // stable addresses for this example
  pool.push_back({10, nullptr, nullptr});
  pool.push_back({20, &pool[0], nullptr});
  pool.push_back({30, &pool[1], nullptr});
  pool.push_back({70, nullptr, nullptr});
  pool.push_back({60, nullptr, &pool[3]});
  pool.push_back({50, nullptr, &pool[4]});
  pool.push_back({40, &pool[2], &pool[5]});
  MiniBst base{&pool[6]};

  // --- sequential: one process, one cache, insert 5 then insert 75 ---
  {
    std::unordered_set<const MiniNode*> cache;
    const std::size_t first = uncached_loads(base.path_to(5), cache);
    MiniBst v2 = base.insert(pool, 5);
    for (const auto* n : v2.path_to(5)) cache.insert(n);  // wrote the copies
    const std::size_t second = uncached_loads(v2.path_to(75), cache);
    std::printf("sequential: insert(5) pays %zu uncached loads "
                "{40,30,20,10}; insert(75) pays %zu {50,60,70; 40 already "
                "cached}; total %zu\n",
                first, second, first + second);
    std::printf("  -> paper: 4 + 3 = 7; measured %zu\n", first + second);
  }

  // --- concurrent: P inserts 5, Q inserts 75; Q loses the CAS, retries ---
  {
    std::unordered_set<const MiniNode*> cache_p, cache_q;
    const std::size_t p_loads = uncached_loads(base.path_to(5), cache_p);
    const std::size_t q_first = uncached_loads(base.path_to(75), cache_q);
    MiniBst v2 = base.insert(pool, 5);  // P wins its CAS
    for (const auto* n : v2.path_to(5)) cache_p.insert(n);
    // Q retries against v2: only the nodes P copied are new to Q's cache
    // (the new root 40'); everything below 50 is shared with version 1.
    const std::size_t q_retry = uncached_loads(v2.path_to(75), cache_q);
    std::printf("concurrent: P pays %zu; Q's first try pays %zu in parallel "
                "with P; Q's retry pays %zu (only the copied root)\n",
                p_loads, q_first, q_retry);
    std::printf("  -> serialized loads = P(%zu) + Q retry(%zu) = %zu; "
                "paper: 4 + 1 = 5\n",
                p_loads, q_retry, p_loads + q_retry);
  }
}

template <class DS>
void sharing_at_scale(const char* name, std::size_t n, std::uint64_t seed) {
  Arena arena;
  pathcopy::util::Xoshiro256 rng(seed);
  DS t;
  for (std::size_t i = 0; i < n; ++i) {
    Builder<Arena> b(arena);
    t = t.insert(b, static_cast<std::int64_t>(rng()), 0);
    b.seal();
    (void)b.commit();
  }
  Builder<Arena> b(arena);
  DS t2 = t.insert(b, -1, 0);
  const std::size_t created = b.stats().created;
  b.seal();
  (void)b.commit();
  const std::size_t shared = DS::shared_nodes(t, t2);
  std::printf("%-14s N=%-8zu nodes copied by one insert: %4zu   shared with "
              "old version: %zu\n",
              name, n, created, shared);
}

}  // namespace

int main() {
  section3_worked_example();
  std::printf("\n== E4 part 2: Fig. 1 sharing at scale (one insert) ==\n");
  for (const std::size_t n : {1024u, 16384u, 262144u}) {
    sharing_at_scale<pathcopy::persist::Treap<std::int64_t, std::int64_t>>(
        "treap", n, 1);
    sharing_at_scale<pathcopy::persist::AvlTree<std::int64_t, std::int64_t>>(
        "avl", n, 2);
    sharing_at_scale<Bst>("external-bst", n, 3);
  }
  std::printf("\nExpected shape: copied ~ O(log N) while shared ~ N; the new "
              "version shares all but the copied path (Fig. 1).\n");
  return 0;
}
