// Shared driver for the speedup-table benches (experiments E1-E3).
//
// Each table bench runs the paper's two workloads three ways and prints
// three tables:
//   1. paper      — the published numbers (reference),
//   2. measured   — real threads on this machine (Seq treap baseline vs
//                   the UC treap with EBR + thread-cached pool),
//   3. simulated  — the synchronous private-cache model parameterized for
//                   the paper's machine (process counts, R, and an
//                   allocator-serialization term where the paper observed
//                   the high-P collapse).
//
// On a 1-vCPU host the measured table cannot show real parallelism (the
// workers time-share one core); it is still produced and recorded, while
// the simulated table carries the shape reproduction. See EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pathcopy::bench {

struct TableBenchConfig {
  std::string title;
  std::vector<std::size_t> procs;  // UC process counts, paper's columns

  // Real-thread measurement.
  std::size_t initial_keys = 1000000;   // pre-fill set size
  std::size_t batch_keys_per_thread = 16384;
  int trials = 3;                       // paper uses 15; see --trials
  int duration_ms = 300;

  // Simulator parameterization for the paper machine.
  std::size_t sim_ops = 12000;
  std::size_t sim_leaves = 1 << 20;     // ~1e6 keys
  std::size_t sim_cache_lines = 1 << 14;
  std::uint64_t sim_miss_cost = 100;
  // Shared-allocator model (Appendix B): TLAB trips of sim_alloc_batch
  // nodes cost sim_alloc_ticks + sim_alloc_contention * P each. The
  // contention term is what turns saturation into the high-P decline.
  std::uint64_t sim_alloc_ticks = 10;
  std::uint64_t sim_alloc_batch = 32;
  std::uint64_t sim_alloc_contention = 4;

  // Published values for the reference table (speedup per proc count).
  double paper_batch_seq = 0.0;
  double paper_random_seq = 0.0;
  std::vector<double> paper_batch;
  std::vector<double> paper_random;
};

/// Parses --quick/--trials/--duration-ms/--sim-only/--real-only and runs
/// the three tables. Returns a process exit code.
int run_table_bench(TableBenchConfig cfg, int argc, char** argv);

}  // namespace pathcopy::bench
