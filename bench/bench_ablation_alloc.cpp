// Experiment E6 — the Appendix B allocator-bottleneck claim.
//
// The paper conjectures that its high-core-count collapse comes from the
// (shared) Java allocator. This ablation swaps the allocator policy under
// an otherwise identical UC treap write-only workload:
//
//   malloc        — process-global operator new (the Java-allocator analogue)
//   global-pool   — one mutex-protected free-list pool (worst case)
//   thread-cache  — per-thread magazines over the shared pool (the fix)
//   arena+leaky   — per-thread bump arenas, no reclamation (GC-free upper
//                   bound on allocation speed)
//
// Run twice: with real threads on this host, and in the simulator where
// the allocator term can be dialed to show the collapse at paper scale.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "alloc/arena_alloc.hpp"
#include "alloc/malloc_alloc.hpp"
#include "alloc/pool_alloc.hpp"
#include "alloc/thread_cache_alloc.hpp"
#include "bench_util/batch_stats.hpp"
#include "bench_util/runner.hpp"
#include "core/atom.hpp"
#include "model/sim.hpp"
#include "persist/treap.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/leaky.hpp"
#include "reclaim/retired.hpp"
#include "util/rng.hpp"

namespace {

using namespace pathcopy;
using T = persist::Treap<std::int64_t, std::int64_t>;

constexpr std::int64_t kKeyRange = 1 << 17;

// One write-only trial: each worker does insert/erase of random keys.
// make_alloc() returns anything dereferenceable to the per-thread
// allocator view (raw pointer for shared views, unique_ptr for owned).
template <class AtomT, class Smr, class MakeAlloc>
double run_trial(Smr& smr, AtomT& atom, MakeAlloc make_alloc,
                 std::size_t procs, int duration_ms) {
  const auto run = bench::run_timed(
      procs, std::chrono::milliseconds(duration_ms),
      [&](std::size_t tid, const std::atomic<bool>& stop) -> std::uint64_t {
        auto alloc = make_alloc();
        typename AtomT::Ctx ctx(smr, *alloc);
        util::Xoshiro256 rng(tid * 7919 + 13);
        std::uint64_t ops = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          const std::int64_t k = rng.range(0, kKeyRange);
          if (rng.chance(1, 2)) {
            atom.update(ctx, [k](T t, auto& b) { return t.insert(b, k, k); });
          } else {
            atom.update(ctx, [k](T t, auto& b) { return t.erase(b, k); });
          }
          ++ops;
        }
        return ops;
      });
  return run.ops_per_sec();
}

void real_threads(int duration_ms, const std::vector<std::size_t>& procs) {
  std::printf("== E6 real threads: allocator policy vs throughput (ops/s) ==\n");
  std::printf("%-14s", "allocator");
  for (const auto p : procs) std::printf("  %8zup", p);
  std::printf("\n");

  // malloc
  {
    std::printf("%-14s", "malloc");
    for (const auto p : procs) {
      alloc::MallocAlloc shared;
      reclaim::EpochReclaimer smr;
      core::Atom<T, reclaim::EpochReclaimer, alloc::MallocAlloc> atom(
          smr, *shared.retire_backend());
      const double ops =
          run_trial(smr, atom, [&] { return &shared; }, p, duration_ms);
      std::printf("  %9.0f", ops);
    }
    std::printf("\n");
  }
  // global pool (one lock per alloc/free)
  {
    std::printf("%-14s", "global-pool");
    for (const auto p : procs) {
      alloc::PoolBackend pool;
      reclaim::EpochReclaimer smr;
      core::Atom<T, reclaim::EpochReclaimer, alloc::PoolView> atom(smr, pool);
      const double ops = run_trial(
          smr, atom,
          [&] {
            return std::make_unique<alloc::PoolView>(pool);
          },
          p, duration_ms);
      std::printf("  %9.0f", ops);
    }
    std::printf("\n");
  }
  // thread-cached pool
  {
    std::printf("%-14s", "thread-cache");
    for (const auto p : procs) {
      alloc::PoolBackend pool;
      reclaim::EpochReclaimer smr;
      core::Atom<T, reclaim::EpochReclaimer, alloc::ThreadCache> atom(smr, pool);
      const double ops = run_trial(
          smr, atom, [&] { return std::make_unique<alloc::ThreadCache>(pool); },
          p, duration_ms);
      std::printf("  %9.0f", ops);
    }
    std::printf("\n");
  }
  // arena + leaky (no reclamation at all)
  {
    std::printf("%-14s", "arena+leaky");
    for (const auto p : procs) {
      static alloc::ArenaRetire noop_backend;
      reclaim::LeakyReclaimer smr;
      // Arenas must outlive the Atom: its final version lives in them.
      std::vector<std::unique_ptr<alloc::Arena>> arenas;
      for (std::size_t i = 0; i < p; ++i) {
        arenas.push_back(std::make_unique<alloc::Arena>());
      }
      std::atomic<std::size_t> next{0};
      core::Atom<T, reclaim::LeakyReclaimer, alloc::Arena> atom(smr, noop_backend);
      const double ops = run_trial(
          smr, atom, [&] { return arenas[next.fetch_add(1)].get(); }, p,
          duration_ms);
      std::printf("  %9.0f", ops);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

// -- E6b: the memory loop (failed-install recycling + batched retire) --
//
// A/B on the thread-cached-pool configuration only. "baseline" is the
// pre-PR free path: losing CAS attempts deallocate their fresh path
// per-node, and expired retire bundles free through one locked backend
// trip per node (reclaim::set_batched_free(false), ctx.recycle_fresh =
// false). "recycled" is the defaults: losers park their nodes in the
// builder bin for the retry, and expired bundles land in thread-cache
// magazines in one trip per size class. The contended cell (every update
// CASes the one atom root) is where both mechanisms fire; the 1-thread
// cell checks they cost nothing when they never trigger.
struct RecycleArm {
  const char* cell;
  const char* arm;
  std::size_t threads = 0;
  std::uint64_t ops = 0;
  double ops_per_sec = 0.0;
  std::uint64_t cas_failures = 0;
  std::uint64_t failed_attempt_nodes = 0;
  std::uint64_t recycled_nodes = 0;
  double recycle_ratio = 0.0;
  std::uint64_t pool_lock_trips = 0;
  double trips_per_op = 0.0;
};

RecycleArm run_recycle_arm(const char* cell, const char* arm, bool recycle_on,
                           std::size_t threads, int duration_ms) {
  reclaim::set_batched_free(recycle_on);
  RecycleArm r;
  r.cell = cell;
  r.arm = arm;
  r.threads = threads;
  {
    alloc::PoolBackend pool;
    reclaim::EpochReclaimer smr;
    core::Atom<T, reclaim::EpochReclaimer, alloc::ThreadCache> atom(smr, pool);
    bench::OpStatsAccumulator acc;
    const auto run = bench::run_timed(
        threads, std::chrono::milliseconds(duration_ms),
        [&](std::size_t tid, const std::atomic<bool>& stop) -> std::uint64_t {
          alloc::ThreadCache cache(pool);  // per-thread magazine view
          core::Atom<T, reclaim::EpochReclaimer, alloc::ThreadCache>::Ctx ctx(
              smr, cache);
          ctx.recycle_fresh = recycle_on;
          util::Xoshiro256 rng(tid * 7919 + 13);
          std::uint64_t ops = 0;
          while (!stop.load(std::memory_order_relaxed)) {
            const std::int64_t k = rng.range(0, kKeyRange);
            if (rng.chance(1, 2)) {
              atom.update(ctx, [k](T t, auto& b) { return t.insert(b, k, k); });
            } else {
              atom.update(ctx, [k](T t, auto& b) { return t.erase(b, k); });
            }
            ++ops;
          }
          acc.add(ctx.stats);
          return ops;
        });
    // Snapshot after the workers' caches flushed (their teardown trips are
    // part of the free path) but before the reclaimer's final drain_all,
    // which frees whatever survived the run identically in both arms.
    r.pool_lock_trips = pool.lock_acquisitions();
    const core::OpStats s = acc.snapshot();
    r.ops = run.total_ops;
    r.ops_per_sec = run.ops_per_sec();
    r.cas_failures = s.cas_failures;
    r.failed_attempt_nodes = s.failed_attempt_nodes;
    r.recycled_nodes = s.recycled_nodes;
    r.recycle_ratio = s.recycle_ratio();
    r.trips_per_op =
        r.ops == 0 ? 0.0
                   : static_cast<double>(r.pool_lock_trips) /
                         static_cast<double>(r.ops);
  }
  reclaim::set_batched_free(true);  // restore the process default
  return r;
}

void print_recycle_row(const RecycleArm& r) {
  std::printf("%-12s  %-9s  %3zut  %9.0f  %9llu  %11llu  %9llu  %7.1f%%  "
              "%9llu  %8.3f\n",
              r.cell, r.arm, r.threads, r.ops_per_sec,
              static_cast<unsigned long long>(r.cas_failures),
              static_cast<unsigned long long>(r.failed_attempt_nodes),
              static_cast<unsigned long long>(r.recycled_nodes),
              100.0 * r.recycle_ratio,
              static_cast<unsigned long long>(r.pool_lock_trips),
              r.trips_per_op);
}

void write_recycle_json(const char* path, const std::vector<RecycleArm>& arms,
                        int duration_ms) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_ablation_alloc: cannot open %s\n", path);
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"alloc_recycle\",\n");
  std::fprintf(f, "  \"duration_ms\": %d,\n  \"cells\": [\n", duration_ms);
  for (std::size_t i = 0; i < arms.size(); ++i) {
    const RecycleArm& r = arms[i];
    std::fprintf(
        f,
        "    {\"cell\": \"%s\", \"arm\": \"%s\", \"threads\": %zu, "
        "\"ops\": %llu, \"ops_per_sec\": %.0f, \"cas_failures\": %llu, "
        "\"failed_attempt_nodes\": %llu, \"recycled_nodes\": %llu, "
        "\"recycle_ratio\": %.4f, \"pool_lock_trips\": %llu, "
        "\"trips_per_op\": %.4f}%s\n",
        r.cell, r.arm, r.threads, static_cast<unsigned long long>(r.ops),
        r.ops_per_sec, static_cast<unsigned long long>(r.cas_failures),
        static_cast<unsigned long long>(r.failed_attempt_nodes),
        static_cast<unsigned long long>(r.recycled_nodes), r.recycle_ratio,
        static_cast<unsigned long long>(r.pool_lock_trips), r.trips_per_op,
        i + 1 < arms.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  double base_tpo = 0.0, rec_tpo = 0.0, rec_ratio = 0.0;
  for (const RecycleArm& r : arms) {
    if (std::strcmp(r.cell, "contended") != 0) continue;
    if (std::strcmp(r.arm, "baseline") == 0) base_tpo = r.trips_per_op;
    if (std::strcmp(r.arm, "recycled") == 0) {
      rec_tpo = r.trips_per_op;
      rec_ratio = r.recycle_ratio;
    }
  }
  std::fprintf(f,
               "  \"summary\": {\"contended_recycle_ratio\": %.4f, "
               "\"trips_per_op_baseline\": %.4f, "
               "\"trips_per_op_recycled\": %.4f, "
               "\"trips_reduction_x\": %.2f}\n}\n",
               rec_ratio, base_tpo, rec_tpo,
               rec_tpo == 0.0 ? 0.0 : base_tpo / rec_tpo);
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

std::vector<RecycleArm> recycle_section(int duration_ms, std::size_t threads) {
  std::printf("== E6b memory loop: failed-install recycling + batched retire "
              "(thread-cache pool) ==\n");
  std::printf("%-12s  %-9s  %4s  %9s  %9s  %11s  %9s  %8s  %9s  %8s\n", "cell",
              "arm", "thr", "ops/s", "cas-fail", "failed-node", "recycled",
              "ratio", "pool-lock", "trips/op");
  std::vector<RecycleArm> arms;
  // The contended cell needs CAS failures to mean anything. On a
  // single-core host a short run can get lucky and never lose a CAS —
  // retry with doubled duration until contention shows up.
  int ms = duration_ms;
  for (int attempt = 0; attempt < 4; ++attempt) {
    RecycleArm base =
        run_recycle_arm("contended", "baseline", false, threads, ms);
    RecycleArm rec = run_recycle_arm("contended", "recycled", true, threads, ms);
    if ((base.cas_failures == 0 || rec.cas_failures == 0) && attempt < 3) {
      ms *= 2;
      continue;
    }
    arms.push_back(base);
    arms.push_back(rec);
    break;
  }
  arms.push_back(run_recycle_arm("uncontended", "baseline", false, 1, ms));
  arms.push_back(run_recycle_arm("uncontended", "recycled", true, 1, ms));
  for (const RecycleArm& r : arms) print_recycle_row(r);
  std::printf("\n");
  return arms;
}

// Exit non-zero unless the contended cell shows the loop closed: some
// failed-attempt nodes were recycled and the batched retire path costs
// measurably fewer backend lock trips per op than the per-node baseline.
void assert_recycle(const std::vector<RecycleArm>& arms) {
  const RecycleArm* base = nullptr;
  const RecycleArm* rec = nullptr;
  for (const RecycleArm& r : arms) {
    if (std::strcmp(r.cell, "contended") != 0) continue;
    if (std::strcmp(r.arm, "baseline") == 0) base = &r;
    if (std::strcmp(r.arm, "recycled") == 0) rec = &r;
  }
  if (base == nullptr || rec == nullptr) {
    std::fprintf(stderr, "assert-recycle: contended cell missing\n");
    std::exit(1);
  }
  if (rec->cas_failures > 0 && rec->recycled_nodes == 0) {
    std::fprintf(stderr,
                 "assert-recycle: CAS failures occurred but no nodes were "
                 "recycled\n");
    std::exit(1);
  }
  if (rec->recycle_ratio <= 0.0 && rec->failed_attempt_nodes > 0) {
    std::fprintf(stderr, "assert-recycle: recycle ratio is zero\n");
    std::exit(1);
  }
  if (rec->trips_per_op >= base->trips_per_op) {
    std::fprintf(stderr,
                 "assert-recycle: batched free path took %.4f lock trips/op, "
                 "baseline %.4f — no reduction\n",
                 rec->trips_per_op, base->trips_per_op);
    std::exit(1);
  }
  std::printf("assert-recycle: ok (ratio %.1f%%, trips/op %.4f -> %.4f, "
              "%.1fx fewer)\n",
              100.0 * rec->recycle_ratio, base->trips_per_op,
              rec->trips_per_op,
              rec->trips_per_op == 0.0
                  ? 0.0
                  : base->trips_per_op / rec->trips_per_op);
}

void simulated(const std::vector<std::size_t>& procs) {
  std::printf("== E6 simulated: shared-allocator contention vs speedup ==\n");
  std::printf("(N=2^20, M=2^14, R=100; TLAB refills of 32 nodes cost "
              "10 + c*P ticks through one serialized allocator)\n");
  std::printf("%-12s", "contention c");
  for (const auto p : procs) std::printf("  %7zup", p);
  std::printf("\n");
  for (const std::uint64_t c : {0, 2, 4, 8, 16}) {
    std::printf("%-12llu", static_cast<unsigned long long>(c));
    for (const auto p : procs) {
      model::SimConfig cfg;
      cfg.num_leaves = 1 << 20;
      cfg.cache_lines = 1 << 14;
      cfg.miss_cost = 100;
      cfg.processes = p;
      cfg.ops = 8000;
      cfg.alloc_ticks_per_node = 10;
      cfg.alloc_refill_batch = 32;
      cfg.alloc_contention_ticks = c;
      std::printf("  %7.2fx", model::simulated_speedup(cfg));
    }
    std::printf("\n");
  }
  std::printf("shape: with c=0 speedup saturates; growing contention turns "
              "saturation into the high-P collapse (Appendix B).\n");
}

}  // namespace

int main(int argc, char** argv) {
  int duration_ms = 250;
  bool quick = false;
  bool do_assert = false;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--assert-recycle") == 0) do_assert = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  if (quick) duration_ms = 100;
  const std::vector<std::size_t> procs = quick
                                             ? std::vector<std::size_t>{1, 4}
                                             : std::vector<std::size_t>{1, 2, 4, 8};
  real_threads(duration_ms, procs);
  const std::vector<RecycleArm> arms = recycle_section(duration_ms, 4);
  if (json_path != nullptr) write_recycle_json(json_path, arms, duration_ms);
  if (do_assert) assert_recycle(arms);
  simulated({1, 8, 16, 32, 63});
  return 0;
}
