// Experiment E6 — the Appendix B allocator-bottleneck claim.
//
// The paper conjectures that its high-core-count collapse comes from the
// (shared) Java allocator. This ablation swaps the allocator policy under
// an otherwise identical UC treap write-only workload:
//
//   malloc        — process-global operator new (the Java-allocator analogue)
//   global-pool   — one mutex-protected free-list pool (worst case)
//   thread-cache  — per-thread magazines over the shared pool (the fix)
//   arena+leaky   — per-thread bump arenas, no reclamation (GC-free upper
//                   bound on allocation speed)
//
// Run twice: with real threads on this host, and in the simulator where
// the allocator term can be dialed to show the collapse at paper scale.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "alloc/arena_alloc.hpp"
#include "alloc/malloc_alloc.hpp"
#include "alloc/pool_alloc.hpp"
#include "alloc/thread_cache_alloc.hpp"
#include "bench_util/runner.hpp"
#include "core/atom.hpp"
#include "model/sim.hpp"
#include "persist/treap.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/leaky.hpp"
#include "util/rng.hpp"

namespace {

using namespace pathcopy;
using T = persist::Treap<std::int64_t, std::int64_t>;

constexpr std::int64_t kKeyRange = 1 << 17;

// One write-only trial: each worker does insert/erase of random keys.
// make_alloc() returns anything dereferenceable to the per-thread
// allocator view (raw pointer for shared views, unique_ptr for owned).
template <class AtomT, class Smr, class MakeAlloc>
double run_trial(Smr& smr, AtomT& atom, MakeAlloc make_alloc,
                 std::size_t procs, int duration_ms) {
  const auto run = bench::run_timed(
      procs, std::chrono::milliseconds(duration_ms),
      [&](std::size_t tid, const std::atomic<bool>& stop) -> std::uint64_t {
        auto alloc = make_alloc();
        typename AtomT::Ctx ctx(smr, *alloc);
        util::Xoshiro256 rng(tid * 7919 + 13);
        std::uint64_t ops = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          const std::int64_t k = rng.range(0, kKeyRange);
          if (rng.chance(1, 2)) {
            atom.update(ctx, [k](T t, auto& b) { return t.insert(b, k, k); });
          } else {
            atom.update(ctx, [k](T t, auto& b) { return t.erase(b, k); });
          }
          ++ops;
        }
        return ops;
      });
  return run.ops_per_sec();
}

void real_threads(int duration_ms, const std::vector<std::size_t>& procs) {
  std::printf("== E6 real threads: allocator policy vs throughput (ops/s) ==\n");
  std::printf("%-14s", "allocator");
  for (const auto p : procs) std::printf("  %8zup", p);
  std::printf("\n");

  // malloc
  {
    std::printf("%-14s", "malloc");
    for (const auto p : procs) {
      alloc::MallocAlloc shared;
      reclaim::EpochReclaimer smr;
      core::Atom<T, reclaim::EpochReclaimer, alloc::MallocAlloc> atom(
          smr, *shared.retire_backend());
      const double ops =
          run_trial(smr, atom, [&] { return &shared; }, p, duration_ms);
      std::printf("  %9.0f", ops);
    }
    std::printf("\n");
  }
  // global pool (one lock per alloc/free)
  {
    std::printf("%-14s", "global-pool");
    for (const auto p : procs) {
      alloc::PoolBackend pool;
      reclaim::EpochReclaimer smr;
      core::Atom<T, reclaim::EpochReclaimer, alloc::PoolView> atom(smr, pool);
      const double ops = run_trial(
          smr, atom,
          [&] {
            return std::make_unique<alloc::PoolView>(pool);
          },
          p, duration_ms);
      std::printf("  %9.0f", ops);
    }
    std::printf("\n");
  }
  // thread-cached pool
  {
    std::printf("%-14s", "thread-cache");
    for (const auto p : procs) {
      alloc::PoolBackend pool;
      reclaim::EpochReclaimer smr;
      core::Atom<T, reclaim::EpochReclaimer, alloc::ThreadCache> atom(smr, pool);
      const double ops = run_trial(
          smr, atom, [&] { return std::make_unique<alloc::ThreadCache>(pool); },
          p, duration_ms);
      std::printf("  %9.0f", ops);
    }
    std::printf("\n");
  }
  // arena + leaky (no reclamation at all)
  {
    std::printf("%-14s", "arena+leaky");
    for (const auto p : procs) {
      static alloc::ArenaRetire noop_backend;
      reclaim::LeakyReclaimer smr;
      // Arenas must outlive the Atom: its final version lives in them.
      std::vector<std::unique_ptr<alloc::Arena>> arenas;
      for (std::size_t i = 0; i < p; ++i) {
        arenas.push_back(std::make_unique<alloc::Arena>());
      }
      std::atomic<std::size_t> next{0};
      core::Atom<T, reclaim::LeakyReclaimer, alloc::Arena> atom(smr, noop_backend);
      const double ops = run_trial(
          smr, atom, [&] { return arenas[next.fetch_add(1)].get(); }, p,
          duration_ms);
      std::printf("  %9.0f", ops);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

void simulated(const std::vector<std::size_t>& procs) {
  std::printf("== E6 simulated: shared-allocator contention vs speedup ==\n");
  std::printf("(N=2^20, M=2^14, R=100; TLAB refills of 32 nodes cost "
              "10 + c*P ticks through one serialized allocator)\n");
  std::printf("%-12s", "contention c");
  for (const auto p : procs) std::printf("  %7zup", p);
  std::printf("\n");
  for (const std::uint64_t c : {0, 2, 4, 8, 16}) {
    std::printf("%-12llu", static_cast<unsigned long long>(c));
    for (const auto p : procs) {
      model::SimConfig cfg;
      cfg.num_leaves = 1 << 20;
      cfg.cache_lines = 1 << 14;
      cfg.miss_cost = 100;
      cfg.processes = p;
      cfg.ops = 8000;
      cfg.alloc_ticks_per_node = 10;
      cfg.alloc_refill_batch = 32;
      cfg.alloc_contention_ticks = c;
      std::printf("  %7.2fx", model::simulated_speedup(cfg));
    }
    std::printf("\n");
  }
  std::printf("shape: with c=0 speedup saturates; growing contention turns "
              "saturation into the high-P collapse (Appendix B).\n");
}

}  // namespace

int main(int argc, char** argv) {
  int duration_ms = 250;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  if (quick) duration_ms = 100;
  const std::vector<std::size_t> procs = quick
                                             ? std::vector<std::size_t>{1, 4}
                                             : std::vector<std::size_t>{1, 2, 4, 8};
  real_threads(duration_ms, procs);
  simulated({1, 8, 16, 32, 63});
  return 0;
}
