// Experiment E8 — structure generality ablation.
//
// The UC is agnostic to the underlying path-copying structure. This bench
// runs the Random workload over the persistent treap (the paper's choice),
// the external BST (the analysis model's choice) and the AVL tree, plus
// the coarse-locked mutable treap as the blocking baseline. It reports
// throughput and the per-update copy cost (nodes created per installed
// update) for each — the treap's split/merge copies roughly twice the
// plain search path, AVL adds rotation copies, and the external BST copies
// exactly the internal path.
#include <cstdio>
#include <cstring>
#include <vector>

#include "alloc/pool_alloc.hpp"
#include "alloc/thread_cache_alloc.hpp"
#include "bench_util/runner.hpp"
#include "core/atom.hpp"
#include "core/builder.hpp"
#include "persist/avl.hpp"
#include "persist/btree.hpp"
#include "persist/external_bst.hpp"
#include "persist/rbt.hpp"
#include "persist/treap.hpp"
#include "persist/wbt.hpp"
#include "reclaim/epoch.hpp"
#include "seq/locked.hpp"
#include "seq/seq_treap.hpp"
#include "util/rng.hpp"

namespace {

using namespace pathcopy;

constexpr std::int64_t kKeyRange = 1 << 16;

template <class DS>
double run_structure(std::size_t procs, int duration_ms) {
  alloc::PoolBackend pool;
  reclaim::EpochReclaimer smr;
  core::Atom<DS, reclaim::EpochReclaimer, alloc::ThreadCache> atom(smr, pool);
  const auto run = bench::run_timed(
      procs, std::chrono::milliseconds(duration_ms),
      [&](std::size_t tid, const std::atomic<bool>& stop) -> std::uint64_t {
        alloc::ThreadCache cache(pool);
        typename core::Atom<DS, reclaim::EpochReclaimer,
                            alloc::ThreadCache>::Ctx ctx(smr, cache);
        util::Xoshiro256 rng(tid * 104729 + 3);
        std::uint64_t ops = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          const std::int64_t k = rng.range(0, kKeyRange);
          if (rng.chance(1, 2)) {
            atom.update(ctx, [k](DS t, auto& b) { return t.insert(b, k, k); });
          } else {
            atom.update(ctx, [k](DS t, auto& b) { return t.erase(b, k); });
          }
          ++ops;
        }
        return ops;
      });
  return run.ops_per_sec();
}

double run_locked_treap(std::size_t procs, int duration_ms) {
  seq::Locked<seq::SeqTreap<std::int64_t, std::int64_t>> locked;
  const auto run = bench::run_timed(
      procs, std::chrono::milliseconds(duration_ms),
      [&](std::size_t tid, const std::atomic<bool>& stop) -> std::uint64_t {
        util::Xoshiro256 rng(tid * 104729 + 3);
        std::uint64_t ops = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          const std::int64_t k = rng.range(0, kKeyRange);
          if (rng.chance(1, 2)) {
            locked.with([k](auto& t) { t.insert(k, k); });
          } else {
            locked.with([k](auto& t) { t.erase(k); });
          }
          ++ops;
        }
        return ops;
      });
  return run.ops_per_sec();
}

// Copy cost: nodes created per successful update, measured standalone.
template <class DS>
double copy_cost(std::size_t n) {
  alloc::PoolBackend pool;
  alloc::ThreadCache cache(pool);
  util::Xoshiro256 rng(5);
  DS t;
  std::uint64_t created = 0, installs = 0;
  for (std::size_t i = 0; i < n; ++i) {
    core::Builder<alloc::ThreadCache> b(cache);
    const std::int64_t k = rng.range(0, kKeyRange);
    DS next = rng.chance(1, 2) ? t.insert(b, k, k) : t.erase(b, k);
    if (next.root_ptr() != t.root_ptr()) {
      created += b.stats().created;
      ++installs;
      b.seal();
      auto retired = b.commit();
      reclaim::run_all(retired);
      t = next;
    } else {
      b.rollback();
    }
  }
  return installs == 0 ? 0.0
                       : static_cast<double>(created) /
                             static_cast<double>(installs);
}

}  // namespace

int main(int argc, char** argv) {
  int duration_ms = 250;
  std::vector<std::size_t> procs{1, 2, 4, 8};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      duration_ms = 100;
      procs = {1, 4};
    }
  }
  using Treap = persist::Treap<std::int64_t, std::int64_t>;
  using Avl = persist::AvlTree<std::int64_t, std::int64_t>;
  using Ebst = persist::ExternalBst<std::int64_t, std::int64_t>;
  using Wbt = persist::WbTree<std::int64_t, std::int64_t>;
  using Rbt = persist::RbTree<std::int64_t, std::int64_t>;
  using B8 = persist::BTree<std::int64_t, std::int64_t, 8>;

  std::printf("== E8: structure ablation, Random workload (ops/s) ==\n");
  std::printf("%-14s", "structure");
  for (const auto p : procs) std::printf("  %9zup", p);
  std::printf("\n");

  std::printf("%-14s", "uc-treap");
  for (const auto p : procs) std::printf("  %10.0f", run_structure<Treap>(p, duration_ms));
  std::printf("\n");
  std::printf("%-14s", "uc-extbst");
  for (const auto p : procs) std::printf("  %10.0f", run_structure<Ebst>(p, duration_ms));
  std::printf("\n");
  std::printf("%-14s", "uc-avl");
  for (const auto p : procs) std::printf("  %10.0f", run_structure<Avl>(p, duration_ms));
  std::printf("\n");
  std::printf("%-14s", "uc-wbt");
  for (const auto p : procs) std::printf("  %10.0f", run_structure<Wbt>(p, duration_ms));
  std::printf("\n");
  std::printf("%-14s", "uc-rbt");
  for (const auto p : procs) std::printf("  %10.0f", run_structure<Rbt>(p, duration_ms));
  std::printf("\n");
  std::printf("%-14s", "uc-btree8");
  for (const auto p : procs) std::printf("  %10.0f", run_structure<B8>(p, duration_ms));
  std::printf("\n");
  std::printf("%-14s", "locked-treap");
  for (const auto p : procs) std::printf("  %10.0f", run_locked_treap(p, duration_ms));
  std::printf("\n");

  std::printf("\n== E8: path-copy cost (nodes created per installed update, "
              "steady state at ~%d keys) ==\n", 1 << 15);
  std::printf("treap (split/merge): %6.1f\n", copy_cost<Treap>(60000));
  std::printf("external bst:        %6.1f\n", copy_cost<Ebst>(60000));
  std::printf("avl (rotations):     %6.1f\n", copy_cost<Avl>(60000));
  std::printf("weight-balanced:     %6.1f\n", copy_cost<Wbt>(60000));
  std::printf("red-black:           %6.1f\n", copy_cost<Rbt>(60000));
  std::printf("b+tree fanout 8:     %6.1f\n", copy_cost<B8>(60000));
  std::printf("\nexpected: extbst ~= path length; treap ~= 2x path (split + "
              "merge); avl ~= path + rotation copies; rbt ~= path + recolor "
              "cascade; b+tree ~= its short log_F path (but fat nodes).\n");
  return 0;
}
