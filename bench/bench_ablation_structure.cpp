// Experiment E8 — structure generality ablation.
//
// The UC is agnostic to the underlying path-copying structure. This bench
// runs the Random workload over the persistent treap (the paper's choice),
// the external BST (the analysis model's choice) and the AVL tree, plus
// the coarse-locked mutable treap as the blocking baseline. It reports
// throughput and the per-update copy cost (nodes created per installed
// update) for each — the treap's split/merge copies roughly twice the
// plain search path, AVL adds rotation copies, and the external BST copies
// exactly the internal path.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <set>
#include <type_traits>
#include <utility>
#include <vector>

#include "alloc/pool_alloc.hpp"
#include "alloc/thread_cache_alloc.hpp"
#include "bench_util/runner.hpp"
#include "core/atom.hpp"
#include "core/builder.hpp"
#include "persist/avl.hpp"
#include "persist/btree.hpp"
#include "persist/external_bst.hpp"
#include "persist/rbt.hpp"
#include "persist/treap.hpp"
#include "persist/wbt.hpp"
#include "reclaim/epoch.hpp"
#include "seq/locked.hpp"
#include "seq/seq_treap.hpp"
#include "util/rng.hpp"

namespace {

using namespace pathcopy;

constexpr std::int64_t kKeyRange = 1 << 16;

template <class DS>
double run_structure(std::size_t procs, int duration_ms) {
  alloc::PoolBackend pool;
  reclaim::EpochReclaimer smr;
  core::Atom<DS, reclaim::EpochReclaimer, alloc::ThreadCache> atom(smr, pool);
  const auto run = bench::run_timed(
      procs, std::chrono::milliseconds(duration_ms),
      [&](std::size_t tid, const std::atomic<bool>& stop) -> std::uint64_t {
        alloc::ThreadCache cache(pool);
        typename core::Atom<DS, reclaim::EpochReclaimer,
                            alloc::ThreadCache>::Ctx ctx(smr, cache);
        util::Xoshiro256 rng(tid * 104729 + 3);
        std::uint64_t ops = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          const std::int64_t k = rng.range(0, kKeyRange);
          if (rng.chance(1, 2)) {
            atom.update(ctx, [k](DS t, auto& b) { return t.insert(b, k, k); });
          } else {
            atom.update(ctx, [k](DS t, auto& b) { return t.erase(b, k); });
          }
          ++ops;
        }
        return ops;
      });
  return run.ops_per_sec();
}

double run_locked_treap(std::size_t procs, int duration_ms) {
  seq::Locked<seq::SeqTreap<std::int64_t, std::int64_t>> locked;
  const auto run = bench::run_timed(
      procs, std::chrono::milliseconds(duration_ms),
      [&](std::size_t tid, const std::atomic<bool>& stop) -> std::uint64_t {
        util::Xoshiro256 rng(tid * 104729 + 3);
        std::uint64_t ops = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          const std::int64_t k = rng.range(0, kKeyRange);
          if (rng.chance(1, 2)) {
            locked.with([k](auto& t) { t.insert(k, k); });
          } else {
            locked.with([k](auto& t) { t.erase(k); });
          }
          ++ops;
        }
        return ops;
      });
  return run.ops_per_sec();
}

// Sorted-batch apply cost over the full E8 matrix: nodes created per op
// when a key-sorted batch of B ops is applied in one sweep, vs the
// per-op loop on the same structure. The batch bound is
// O(B + shared-spine), so fat B-tree nodes amortize differently than
// slim BSTs — which is what this table exposes per balancing discipline.
template <class DS>
double batch_apply_cost(std::size_t initial, unsigned batch,
                        std::int64_t hot_range, bool batched) {
  alloc::PoolBackend pool;
  alloc::ThreadCache cache(pool);
  util::Xoshiro256 rng(11);
  std::vector<std::pair<std::int64_t, std::int64_t>> items;
  items.reserve(initial);
  for (std::size_t i = 0; i < initial; ++i) {
    items.emplace_back(static_cast<std::int64_t>(2 * i),
                       static_cast<std::int64_t>(i));
  }
  core::Builder<alloc::ThreadCache> seed(cache);
  DS t = DS::from_sorted(seed, items.begin(), items.end());
  seed.seal();
  (void)seed.commit();
  const std::int64_t key_space =
      hot_range > 0 ? hot_range : static_cast<std::int64_t>(2 * initial);

  std::uint64_t created = 0, ops_done = 0;
  std::vector<typename DS::BatchOp> ops;
  std::vector<typename DS::BatchOutcome> out;
  for (int round = 0; round < 300; ++round) {
    ops.clear();
    std::set<std::int64_t> used;
    while (ops.size() < batch) {
      const std::int64_t k = rng.range(0, key_space - 1);
      if (!used.insert(k).second) continue;
      if (rng.chance(1, 2)) {
        ops.push_back(typename DS::BatchOp{DS::BatchOpKind::kInsert, k, k});
      } else {
        ops.push_back(
            typename DS::BatchOp{DS::BatchOpKind::kErase, k, std::nullopt});
      }
    }
    std::sort(ops.begin(), ops.end(),
              [](const auto& x, const auto& y) { return x.key < y.key; });
    out.resize(ops.size());
    core::Builder<alloc::ThreadCache> b(cache);
    DS next = t;
    if (batched) {
      next = t.apply_sorted_batch(b, ops, out);
    } else {
      for (const auto& op : ops) {
        next = op.kind == DS::BatchOpKind::kInsert
                   ? next.insert(b, op.key, *op.value)
                   : next.erase(b, op.key);
      }
    }
    created += b.stats().created;
    ops_done += ops.size();
    b.seal();
    auto retired = b.commit();
    reclaim::run_all(retired);
    t = next;
  }
  return ops_done == 0
             ? 0.0
             : static_cast<double>(created) / static_cast<double>(ops_done);
}

// Copy cost: nodes created per successful update, measured standalone.
template <class DS>
double copy_cost(std::size_t n) {
  alloc::PoolBackend pool;
  alloc::ThreadCache cache(pool);
  util::Xoshiro256 rng(5);
  DS t;
  std::uint64_t created = 0, installs = 0;
  for (std::size_t i = 0; i < n; ++i) {
    core::Builder<alloc::ThreadCache> b(cache);
    const std::int64_t k = rng.range(0, kKeyRange);
    DS next = rng.chance(1, 2) ? t.insert(b, k, k) : t.erase(b, k);
    if (next.root_ptr() != t.root_ptr()) {
      created += b.stats().created;
      ++installs;
      b.seal();
      auto retired = b.commit();
      reclaim::run_all(retired);
      t = next;
    } else {
      b.rollback();
    }
  }
  return installs == 0 ? 0.0
                       : static_cast<double>(created) /
                             static_cast<double>(installs);
}

}  // namespace

int main(int argc, char** argv) {
  int duration_ms = 250;
  std::vector<std::size_t> procs{1, 2, 4, 8};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      duration_ms = 100;
      procs = {1, 4};
    }
  }
  using Treap = persist::Treap<std::int64_t, std::int64_t>;
  using Avl = persist::AvlTree<std::int64_t, std::int64_t>;
  using Ebst = persist::ExternalBst<std::int64_t, std::int64_t>;
  using Wbt = persist::WbTree<std::int64_t, std::int64_t>;
  using Rbt = persist::RbTree<std::int64_t, std::int64_t>;
  using B8 = persist::BTree<std::int64_t, std::int64_t, 8>;

  std::printf("== E8: structure ablation, Random workload (ops/s) ==\n");
  std::printf("%-14s", "structure");
  for (const auto p : procs) std::printf("  %9zup", p);
  std::printf("\n");

  std::printf("%-14s", "uc-treap");
  for (const auto p : procs) std::printf("  %10.0f", run_structure<Treap>(p, duration_ms));
  std::printf("\n");
  std::printf("%-14s", "uc-extbst");
  for (const auto p : procs) std::printf("  %10.0f", run_structure<Ebst>(p, duration_ms));
  std::printf("\n");
  std::printf("%-14s", "uc-avl");
  for (const auto p : procs) std::printf("  %10.0f", run_structure<Avl>(p, duration_ms));
  std::printf("\n");
  std::printf("%-14s", "uc-wbt");
  for (const auto p : procs) std::printf("  %10.0f", run_structure<Wbt>(p, duration_ms));
  std::printf("\n");
  std::printf("%-14s", "uc-rbt");
  for (const auto p : procs) std::printf("  %10.0f", run_structure<Rbt>(p, duration_ms));
  std::printf("\n");
  std::printf("%-14s", "uc-btree8");
  for (const auto p : procs) std::printf("  %10.0f", run_structure<B8>(p, duration_ms));
  std::printf("\n");
  std::printf("%-14s", "locked-treap");
  for (const auto p : procs) std::printf("  %10.0f", run_locked_treap(p, duration_ms));
  std::printf("\n");

  std::printf("\n== E8: path-copy cost (nodes created per installed update, "
              "steady state at ~%d keys) ==\n", 1 << 15);
  std::printf("treap (split/merge): %6.1f\n", copy_cost<Treap>(60000));
  std::printf("external bst:        %6.1f\n", copy_cost<Ebst>(60000));
  std::printf("avl (rotations):     %6.1f\n", copy_cost<Avl>(60000));
  std::printf("weight-balanced:     %6.1f\n", copy_cost<Wbt>(60000));
  std::printf("red-black:           %6.1f\n", copy_cost<Rbt>(60000));
  std::printf("b+tree fanout 8:     %6.1f\n", copy_cost<B8>(60000));
  std::printf("\nexpected: extbst ~= path length; treap ~= 2x path (split + "
              "merge); avl ~= path + rotation copies; rbt ~= path + recolor "
              "cascade; b+tree ~= its short log_F path (but fat nodes).\n");

  // E8b: the sorted-batch matrix — every structure through the one-sweep
  // batch apply, uniform vs hot-range keys, vs its own per-op loop.
  const std::size_t binit = 1 << 15;
  const unsigned B = duration_ms <= 100 ? 32u : 64u;
  std::printf("\n== E8b: sorted batch-apply, nodes created per op "
              "(B = %u, %zu initial keys) ==\n", B, binit);
  std::printf("%-14s  %10s  %12s  %12s  %12s\n", "structure", "per-op",
              "batch-unif", "batch-hot256", "hot speedup");
  const auto row = [&](const char* name, auto tag) {
    using DS = typename decltype(tag)::type;
    const double per_op = batch_apply_cost<DS>(binit, B, 0, false);
    const double bu = batch_apply_cost<DS>(binit, B, 0, true);
    const double bh = batch_apply_cost<DS>(binit, B, 256, true);
    const double ph = batch_apply_cost<DS>(binit, B, 256, false);
    std::printf("%-14s  %10.1f  %12.1f  %12.1f  %11.2fx\n", name, per_op, bu,
                bh, bh == 0.0 ? 0.0 : ph / bh);
  };
  row("treap", std::type_identity<Treap>{});
  row("avl", std::type_identity<Avl>{});
  row("btree8", std::type_identity<B8>{});
  row("rbt", std::type_identity<Rbt>{});
  row("wbt", std::type_identity<Wbt>{});
  row("extbst", std::type_identity<Ebst>{});
  std::printf("\nhot speedup = per-op copies / batch copies on a hot-256 "
              "range: the shared spine pays most where the batch clusters.\n");
  return 0;
}
