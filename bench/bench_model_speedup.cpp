// Experiment E5 — the §3.1 / Appendix A analysis, made quantitative.
//
// Reproduces (as printed series) everything Figs. 2-5 and the analysis
// claim:
//   (a) speedup vs P for several N: rises, saturates; saturation level
//       grows with log N (the Ω(log N) claim);
//   (b) simulator vs closed-form formula side by side;
//   (c) the expected number of uncached loads per warm retry (~<= 2 in the
//       paper's lockstep model; a small constant here);
//   (d) speedup limit as a function of N with R = Θ(log N), demonstrating
//       Ω(log N) growth.
#include <cstdio>

#include "model/formulas.hpp"
#include "model/sim.hpp"

namespace {

using namespace pathcopy::model;

void speedup_vs_processes() {
  std::printf("== E5a: simulated speedup vs processes (R=100, M=N^0.7) ==\n");
  std::printf("%8s", "P");
  for (const int log_n : {14, 17, 20}) std::printf("   N=2^%-6d", log_n);
  std::printf("\n");
  for (const std::size_t p : {1, 2, 4, 8, 16, 32, 64}) {
    std::printf("%8zu", p);
    for (const int log_n : {14, 17, 20}) {
      SimConfig cfg;
      cfg.num_leaves = 1ull << log_n;
      cfg.cache_lines = 1ull << static_cast<int>(0.7 * log_n);
      cfg.miss_cost = 100;
      cfg.processes = p;
      cfg.ops = 8000;
      std::printf("   %8.2fx", simulated_speedup(cfg));
    }
    std::printf("\n");
  }
  std::printf("shape: saturation level grows with log N (paper: Omega(log N))\n\n");
}

void sim_vs_formula() {
  std::printf("== E5b: simulator vs closed form (N=2^20, M=2^14, R=100) ==\n");
  std::printf("%8s %12s %12s\n", "P", "simulated", "formula");
  for (const std::size_t p : {1, 2, 4, 8, 16, 32, 64}) {
    SimConfig cfg;
    cfg.num_leaves = 1 << 20;
    cfg.cache_lines = 1 << 14;
    cfg.miss_cost = 100;
    cfg.processes = p;
    cfg.ops = 8000;
    const double sim = simulated_speedup(cfg);
    const double formula = predicted_speedup(2.0 * cfg.num_leaves,
                                             cfg.cache_lines, cfg.miss_cost,
                                             static_cast<double>(p));
    std::printf("%8zu %11.2fx %11.2fx\n", p, sim, formula);
  }
  std::printf("note: the formula charges every op one fully cold attempt, "
              "so it is pessimistic at small P.\n\n");
}

void misses_per_retry() {
  std::printf("== E5c: uncached loads per warm retry (paper: <= 2) ==\n");
  std::printf("%8s %8s %16s %14s\n", "P", "R", "misses/retry", "retries");
  for (const std::size_t p : {4, 8, 16, 32}) {
    for (const std::uint64_t r : {50, 100, 200}) {
      SimConfig cfg;
      cfg.num_leaves = 1 << 20;
      cfg.cache_lines = 1 << 14;
      cfg.miss_cost = r;
      cfg.processes = p;
      cfg.ops = 6000;
      const auto res = run_protocol_sim(cfg);
      std::printf("%8zu %8llu %16.3f %14llu\n", p,
                  static_cast<unsigned long long>(r), res.misses_per_retry(),
                  static_cast<unsigned long long>(res.retry_count));
    }
  }
  std::printf("path length is 21 nodes; a warm retry touches only the few "
              "nodes the winner replaced.\n\n");
}

void limit_vs_n() {
  std::printf("== E5d: speedup limit vs N with R = 8 log N, M = N^0.7 ==\n");
  std::printf("%10s %12s %14s\n", "log2 N", "limit", "limit/log2 N");
  for (const int log_n : {12, 16, 20, 24, 28, 32}) {
    const double n = std::pow(2.0, log_n);
    const double m = std::pow(2.0, 0.7 * log_n);
    const double r = 8.0 * log_n;
    const double lim = speedup_limit(n, m, r);
    std::printf("%10d %11.2fx %14.3f\n", log_n, lim, lim / log_n);
  }
  std::printf("limit/log N approaches a constant: speedup = Omega(log N).\n\n");
}

void expected_modified() {
  std::printf("== E5e: expected modified nodes on a retried path ==\n");
  for (const int h : {4, 8, 16, 32}) {
    std::printf("height %2d: sum k/2^k = %.4f\n", h,
                expected_modified_on_path(h));
  }
  std::printf("bounded by 2 (the paper's Section 3.1 argument).\n");
}

}  // namespace

int main() {
  speedup_vs_processes();
  sim_vs_formula();
  misses_per_retry();
  limit_vs_n();
  expected_modified();
  return 0;
}
