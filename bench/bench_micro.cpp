// Experiment E9 — microbenchmarks (google-benchmark).
//
// Isolates the primitive costs the paper's model parameterizes: tree
// traversal (the "load" stream), path copying (node creation), allocator
// round trips, the CAS retry step, and the LRU cache model itself.
#include <benchmark/benchmark.h>

#include <atomic>

#include "alloc/arena_alloc.hpp"
#include "alloc/malloc_alloc.hpp"
#include "alloc/pool_alloc.hpp"
#include "alloc/thread_cache_alloc.hpp"
#include "core/atom.hpp"
#include "model/lru_cache.hpp"
#include "persist/treap.hpp"
#include "reclaim/epoch.hpp"
#include "seq/seq_treap.hpp"
#include "util/rng.hpp"

namespace {

using namespace pathcopy;
using T = persist::Treap<std::int64_t, std::int64_t>;

void BM_SeqTreapFind(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  seq::SeqTreap<std::int64_t, std::int64_t> t;
  for (std::int64_t i = 0; i < n; ++i) t.insert(i * 2, i);
  util::Xoshiro256 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.find(rng.below(2 * n)));
  }
}
BENCHMARK(BM_SeqTreapFind)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_PersistentTreapFind(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  alloc::MallocAlloc a;
  std::vector<std::pair<std::int64_t, std::int64_t>> items;
  for (std::int64_t i = 0; i < n; ++i) items.emplace_back(i * 2, i);
  core::Builder<alloc::MallocAlloc> b(a);
  T t = T::from_sorted(b, items.begin(), items.end());
  b.seal();
  (void)b.commit();
  util::Xoshiro256 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.find(rng.below(2 * n)));
  }
  T::destroy(t.root_node(), a);
}
BENCHMARK(BM_PersistentTreapFind)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_PathCopyInsertErase(benchmark::State& state) {
  // One full path-copied insert+erase round trip, including retiring the
  // superseded path (immediate free: single-threaded).
  const std::int64_t n = state.range(0);
  alloc::PoolBackend pool;
  alloc::ThreadCache cache(pool);
  std::vector<std::pair<std::int64_t, std::int64_t>> items;
  for (std::int64_t i = 0; i < n; ++i) items.emplace_back(i * 2, i);
  core::Builder<alloc::ThreadCache> b0(cache);
  T t = T::from_sorted(b0, items.begin(), items.end());
  b0.seal();
  (void)b0.commit();
  util::Xoshiro256 rng(1);
  for (auto _ : state) {
    const std::int64_t k = rng.below(2 * n) | 1;  // odd: always absent
    core::Builder<alloc::ThreadCache> b(cache);
    T t2 = t.insert(b, k, k);
    b.seal();
    auto retired1 = b.commit();
    reclaim::run_all(retired1);
    core::Builder<alloc::ThreadCache> b2(cache);
    T t3 = t2.erase(b2, k);
    b2.seal();
    auto retired2 = b2.commit();
    reclaim::run_all(retired2);
    t = t3;
  }
}
BENCHMARK(BM_PathCopyInsertErase)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_SeqTreapInsertErase(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  seq::SeqTreap<std::int64_t, std::int64_t> t;
  for (std::int64_t i = 0; i < n; ++i) t.insert(i * 2, i);
  util::Xoshiro256 rng(1);
  for (auto _ : state) {
    const std::int64_t k = rng.below(2 * n) | 1;
    t.insert(k, k);
    t.erase(k);
  }
}
BENCHMARK(BM_SeqTreapInsertErase)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_UcUncontendedUpdate(benchmark::State& state) {
  alloc::PoolBackend pool;
  reclaim::EpochReclaimer smr;
  core::Atom<T, reclaim::EpochReclaimer, alloc::ThreadCache> atom(smr, pool);
  alloc::ThreadCache cache(pool);
  core::Atom<T, reclaim::EpochReclaimer, alloc::ThreadCache>::Ctx ctx(smr, cache);
  {
    std::vector<std::pair<std::int64_t, std::int64_t>> items;
    for (std::int64_t i = 0; i < (1 << 16); ++i) items.emplace_back(i * 2, i);
    atom.update(ctx, [&](T, auto& b) {
      return T::from_sorted(b, items.begin(), items.end());
    });
  }
  util::Xoshiro256 rng(1);
  for (auto _ : state) {
    const std::int64_t k = rng.below(1 << 17) | 1;
    atom.update(ctx, [k](T t, auto& b) { return t.insert(b, k, k); });
    atom.update(ctx, [k](T t, auto& b) { return t.erase(b, k); });
  }
}
BENCHMARK(BM_UcUncontendedUpdate);

void BM_AllocatorRoundTrip_Malloc(benchmark::State& state) {
  alloc::MallocAlloc a;
  for (auto _ : state) {
    void* p = a.allocate(48, 8);
    benchmark::DoNotOptimize(p);
    a.deallocate(p, 48, 8);
  }
}
BENCHMARK(BM_AllocatorRoundTrip_Malloc);

void BM_AllocatorRoundTrip_GlobalPool(benchmark::State& state) {
  static alloc::PoolBackend pool;
  alloc::PoolView view(pool);
  for (auto _ : state) {
    void* p = view.allocate(48, 8);
    benchmark::DoNotOptimize(p);
    view.deallocate(p, 48, 8);
  }
}
BENCHMARK(BM_AllocatorRoundTrip_GlobalPool)->Threads(1)->Threads(4);

void BM_AllocatorRoundTrip_ThreadCache(benchmark::State& state) {
  static alloc::PoolBackend pool;
  alloc::ThreadCache cache(pool);
  for (auto _ : state) {
    void* p = cache.allocate(48, 8);
    benchmark::DoNotOptimize(p);
    cache.deallocate(p, 48, 8);
  }
}
BENCHMARK(BM_AllocatorRoundTrip_ThreadCache)->Threads(1)->Threads(4);

void BM_AllocatorRoundTrip_Arena(benchmark::State& state) {
  alloc::Arena arena;
  for (auto _ : state) {
    void* p = arena.allocate(48, 8);
    benchmark::DoNotOptimize(p);
    arena.deallocate(p, 48, 8);
  }
}
BENCHMARK(BM_AllocatorRoundTrip_Arena);

void BM_EpochPinUnpin(benchmark::State& state) {
  static reclaim::EpochReclaimer smr;
  auto h = smr.register_thread();
  static std::atomic<const void*> root{nullptr};
  static std::atomic<std::uint64_t> ver{1};
  for (auto _ : state) {
    auto g = smr.pin(h, root, ver);
    benchmark::DoNotOptimize(g.root());
  }
}
BENCHMARK(BM_EpochPinUnpin)->Threads(1)->Threads(4);

void BM_LruCacheAccess(benchmark::State& state) {
  model::LruCache cache(1 << 14);
  util::Xoshiro256 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(rng.below(1 << 16)));
  }
}
BENCHMARK(BM_LruCacheAccess);

void BM_TreapPriorityHash(benchmark::State& state) {
  std::int64_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(T::priority_of(++k));
  }
}
BENCHMARK(BM_TreapPriorityHash);

}  // namespace

BENCHMARK_MAIN();
