// Experiment E2 — the paper's Table 1 (Intel Xeon Platinum 8160, 24 cores).
//
//   Workload  Seq Treap  UC 1p   UC 6p   UC 12p  UC 23p
//   Batch     638 600    0.93x   1.31x   1.37x   1.08x
//   Random    487 161    1.24x   3.23x   3.55x   2.80x
//
// Shape to reproduce: same rise as E1 but with a *decline* at the highest
// process count — the paper attributes it to the shared Java allocator
// (Appendix B), which the simulator models as a serialized allocator
// charging a fixed cost per node created by every attempt.
#include "common.hpp"

int main(int argc, char** argv) {
  pathcopy::bench::TableBenchConfig cfg;
  cfg.title = "E2: Table 1 — Intel Xeon Platinum 8160 (24 cores)";
  cfg.procs = {1, 6, 12, 23};
  cfg.paper_batch_seq = 638600;
  cfg.paper_random_seq = 487161;
  cfg.paper_batch = {0.93, 1.31, 1.37, 1.08};
  cfg.paper_random = {1.24, 3.23, 3.55, 2.80};
  // Stronger allocator contention (two-socket NUMA): the peak lands near
  // 12 processes and 23 processes already decline, as in the paper.
  cfg.sim_alloc_ticks = 10;
  cfg.sim_alloc_batch = 32;
  cfg.sim_alloc_contention = 12;
  return pathcopy::bench::run_table_bench(cfg, argc, argv);
}
