// Experiment E1 — the paper's §4 headline table (Intel Xeon 5220, 18 cores).
//
//   Workload  Seq Treap  UC 1p   UC 4p   UC 10p  UC 17p
//   Batch     451 940    0.89x   1.23x   1.47x   1.47x
//   Random    419 736    1.48x   2.38x   3.07x   3.19x
//
// Shape to reproduce: UC 1p below 1x on Batch (path-copy overhead), rising
// speedup that saturates near the highest process count, Random scaling
// roughly twice as well as Batch (half its operations are no-op reads).
#include "common.hpp"

int main(int argc, char** argv) {
  pathcopy::bench::TableBenchConfig cfg;
  cfg.title = "E1: Section 4 table — Intel Xeon 5220 (18 cores)";
  cfg.procs = {1, 4, 10, 17};
  cfg.paper_batch_seq = 451940;
  cfg.paper_random_seq = 419736;
  cfg.paper_batch = {0.89, 1.23, 1.47, 1.47};
  cfg.paper_random = {1.48, 2.38, 3.07, 3.19};
  // Mild allocator contention: saturates within 17 processes, no decline
  // (this machine's table shows flattening, not collapse).
  cfg.sim_alloc_ticks = 10;
  cfg.sim_alloc_batch = 32;
  cfg.sim_alloc_contention = 4;
  return pathcopy::bench::run_table_bench(cfg, argc, argv);
}
