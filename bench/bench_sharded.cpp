// Store-layer bench: throughput vs shard count × UC backend × ingest
// pipeline on an update-heavy workload (acceptance experiment for the
// sharding and async-pipeline PRs).
//
// The single-atom UC is capped by one CAS stream per structure; S shards
// give S independent install streams. Every cell runs the same workload
// through ShardedMap over a range router (equal-width keyspace split, so
// per-shard streams stay local) in three ingest modes:
//
//   * per-op      — each thread routes point inserts/erases to the owning
//     shard (the classic workload, one root CAS per landing op on the
//     plain backend);
//   * batch-sync  — each thread offers client batches of B ops through the
//     cross-shard splitter and walks the shards itself, one sub-batch
//     install after another;
//   * batch-async — a ShardExecutor is attached: the same client batches
//     scatter into per-shard lock-free submission lanes and join on a
//     ticket, so the S installs of one client batch run concurrently,
//     every client's sub-batches funnel through the shard's one
//     combiner-affine thread, and a worker wakeup that finds several
//     tickets queued merges them into one sorted install (the
//     executor-lanes section below reports and asserts exactly that).
//
// Backends are swept through the UniversalConstruction concept: the same
// harness instantiates the plain Atom and the CombiningAtom, which is the
// point of the concept refactor. Per-shard install/batch/queue accounting
// comes from the ShardStatsBoard (sessions + executor workers folded) and
// is printed for the widest configuration.
//
// The cut-read section exercises the other tentpole: concurrent readers
// composing cross-shard size()/items() as vector-clock-consistent cuts
// while writers churn, reporting cut throughput and the re-pin (retry)
// pressure the validation loop absorbed.
//
// On hosts with fewer cores than threads the absolute numbers are
// scheduler-bound (see bench_batch_combining's header) — the async mode
// in particular pays S extra worker threads' context switches; the
// shard-count *trend* within one backend and mode remains the comparison
// of record.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "alloc/pool_alloc.hpp"
#include "alloc/thread_cache_alloc.hpp"
#include "bench_util/runner.hpp"
#include "bench_util/workloads.hpp"
#include "core/atom.hpp"
#include "core/combining.hpp"
#include "persist/avl.hpp"
#include "persist/btree.hpp"
#include "persist/external_bst.hpp"
#include "persist/rbt.hpp"
#include "persist/treap.hpp"
#include "persist/wbt.hpp"
#include "reclaim/epoch.hpp"
#include "store/executor.hpp"
#include "store/rebalancer.hpp"
#include "store/router.hpp"
#include "store/tablet_router.hpp"
#include "store/shard_stats.hpp"
#include "store/sharded_map.hpp"
#include "util/rng.hpp"

namespace {

using namespace pathcopy;
using Treap = persist::Treap<std::int64_t, std::int64_t>;
using Smr = reclaim::EpochReclaimer;
using TC = alloc::ThreadCache;
using PlainUc = core::Atom<Treap, Smr, TC>;
using CombUc = core::CombiningAtom<Treap, Smr, TC>;
using Router = store::RangeRouter<std::int64_t>;
using TabR = store::TabletRouter<std::int64_t>;

enum class Skew { kZipf, kHot, kMoving };

struct Config {
  std::size_t initial_keys = 1 << 20;  // pre-fill; key space is 2x this
  int duration_ms = 300;
  std::size_t threads = 4;
  std::vector<std::size_t> shards{1, 2, 4, 8};
  unsigned batch = 64;
  bool run_sync = true;
  bool run_async = true;
  // Skew sweep (rebalancing acceptance experiment):
  std::vector<Skew> skews;       // --skew (repeatable); defaults to zipf
  bool skew_only = false;        // --skew given: run just the skew sweep
  bool continuous = false;       // --continuous: add the adaptive-tablet row
  bool assert_migrated = false;  // exit 1 unless the adaptive cells migrated
  const char* json_path = nullptr;  // --json: machine-readable skew rows
  // Executor-lanes acceptance (the lock-free lane + coalescing PR):
  bool assert_coalesce = false;  // exit 1 unless a contended cell coalesced
  bool lanes_only = false;       // run just the lanes section (CI smoke)
  const char* lanes_json = nullptr;  // --lanes-json: lanes artifact
};

enum class Mode { kPerOp, kBatchSync, kBatchAsync };

struct Cell {
  double ops_per_sec = 0.0;
  core::OpStats total;
};

std::int64_t key_space_of(const Config& cfg) {
  return static_cast<std::int64_t>(2 * cfg.initial_keys);
}

/// Every cell's store has the same shape: equal-width range split of the
/// doubled key space, pre-filled with the even keys in one bulk load.
/// One seeding scheme, one place (cells and the cut section must agree
/// or they benchmark differently-shaped stores).
template <class Map, class Alloc>
void seed_even_keys(const Config& cfg, Map& map, Alloc& alloc) {
  typename Map::Session seeder(map, alloc);
  std::vector<std::pair<std::int64_t, std::int64_t>> items;
  items.reserve(cfg.initial_keys);
  for (std::size_t i = 0; i < cfg.initial_keys; ++i) {
    items.emplace_back(static_cast<std::int64_t>(2 * i),
                       static_cast<std::int64_t>(i));
  }
  seeder.seed_sorted(items.begin(), items.end());
}

template <class Uc>
Cell run_cell(const Config& cfg, std::size_t shards, Mode mode,
              store::ShardStatsBoard& board) {
  using Map = store::ShardedMap<Uc, Router>;
  alloc::PoolBackend pool;
  alloc::ThreadCache root_cache(pool);
  const std::int64_t key_space = key_space_of(cfg);
  Map map(shards, root_cache,
          shards == 1 ? Router{} : Router::uniform(0, key_space, shards));
  // The executor (if any) is attached before seeding, so the bulk load
  // itself also goes through the per-shard workers.
  std::optional<store::ShardExecutor<Uc>> exec;
  if (mode == Mode::kBatchAsync) {
    exec.emplace(map, [&pool] { return alloc::ThreadCache(pool); });
  }
  seed_even_keys(cfg, map, root_cache);
  for (std::size_t s = 0; s < shards; ++s) {
    // One-yield announce window so combining batches form on hosts with
    // fewer cores than threads (no-op for the plain backend).
    if constexpr (requires(Uc& u) { u.set_gather_window(true); }) {
      map.shard(s).set_gather_window(true);
    }
  }
  const bool batch_mode = mode != Mode::kPerOp;
  const auto run = bench::run_timed(
      cfg.threads, std::chrono::milliseconds(cfg.duration_ms),
      [&](std::size_t tid, const std::atomic<bool>& stop) -> std::uint64_t {
        alloc::ThreadCache cache(pool);
        typename Map::Session sess(map, cache);
        util::Xoshiro256 rng(tid * 104729 + 31);
        std::uint64_t ops = 0;
        if (batch_mode) {
          using Req = typename Map::BatchRequest;
          using K = typename Map::OpKind;
          std::vector<Req> reqs(cfg.batch, Req{K::kInsert, 0, 0});
          const auto out = std::make_unique<bool[]>(cfg.batch);
          while (!stop.load(std::memory_order_relaxed)) {
            for (unsigned i = 0; i < cfg.batch; ++i) {
              const std::int64_t k = rng.range(0, key_space - 1);
              reqs[i] = rng.chance(1, 2) ? Req{K::kInsert, k, k}
                                         : Req{K::kErase, k, std::nullopt};
            }
            sess.execute_batch(reqs, std::span<bool>(out.get(), cfg.batch));
            ops += cfg.batch;
          }
        } else {
          while (!stop.load(std::memory_order_relaxed)) {
            const std::int64_t k = rng.range(0, key_space - 1);
            if (rng.chance(1, 2)) {
              sess.insert(k, k);
            } else {
              sess.erase(k);
            }
            ++ops;
          }
        }
        sess.fold_into(board);
        return ops;
      });
  if (exec.has_value()) {
    exec->stop();
    exec->fold_into(board);  // queue depth / task latency / install stats
    exec.reset();
  }
  Cell cell;
  cell.ops_per_sec = run.ops_per_sec();
  cell.total = board.total();
  return cell;
}

/// Runs one backend's shard sweep and returns the widest configuration's
/// batch-ingest board — async when the async mode ran, else sync — for
/// the per-shard stats printout.
template <class Uc>
std::unique_ptr<store::ShardStatsBoard> sweep_backend(const Config& cfg,
                                                      const char* name) {
  std::unique_ptr<store::ShardStatsBoard> widest;
  for (const std::size_t s : cfg.shards) {
    store::ShardStatsBoard per_op_board(s);
    const Cell per_op =
        run_cell<Uc>(cfg, s, Mode::kPerOp, per_op_board);
    Cell sync_cell;
    auto sync_board = std::make_unique<store::ShardStatsBoard>(s);
    if (cfg.run_sync) {
      sync_cell = run_cell<Uc>(cfg, s, Mode::kBatchSync, *sync_board);
    }
    Cell async_cell;
    auto async_board = std::make_unique<store::ShardStatsBoard>(s);
    if (cfg.run_async) {
      async_cell = run_cell<Uc>(cfg, s, Mode::kBatchAsync, *async_board);
    }
    const core::OpStats& bt =
        cfg.run_async ? async_cell.total : sync_cell.total;
    const double batched_pct =
        bt.updates == 0 ? 0.0
                        : 100.0 * static_cast<double>(bt.batched_installs) /
                              static_cast<double>(bt.updates);
    std::printf("%-9s  %6zu  %13.0f  %13.0f  %13.0f  %10.2f  %8.1f%%\n",
                name, s, per_op.ops_per_sec, sync_cell.ops_per_sec,
                async_cell.ops_per_sec, bt.mean_batch_size(), batched_pct);
    if (s == cfg.shards.back()) {
      widest = cfg.run_async ? std::move(async_board) : std::move(sync_board);
    }
  }
  return widest;
}

/// The cut section's thread topology, computed once: the banner in
/// main() and the workload in cut_read_bench must describe the same
/// split.
struct CutTopology {
  std::size_t writers;
  std::size_t readers;
};

CutTopology cut_topology(const Config& cfg) {
  const std::size_t writers = cfg.threads >= 2 ? cfg.threads / 2 : 1;
  const std::size_t readers =
      cfg.threads > writers ? cfg.threads - writers : 1;
  return {writers, readers};
}

/// Cut-read section: writers churn point updates while readers compose
/// cross-shard size() (and every 64th round, full items()) as consistent
/// cuts. Reports the cut rate and the retry pressure — how often a
/// shard's version moved inside the pin/validate window.
template <class Uc>
void cut_read_bench(const Config& cfg, std::size_t shards,
                    const char* name) {
  using Map = store::ShardedMap<Uc, Router>;
  alloc::PoolBackend pool;
  alloc::ThreadCache root_cache(pool);
  const std::int64_t key_space = key_space_of(cfg);
  Map map(shards, root_cache,
          shards == 1 ? Router{} : Router::uniform(0, key_space, shards));
  seed_even_keys(cfg, map, root_cache);
  const auto [writers, readers] = cut_topology(cfg);
  store::ShardStatsBoard board(shards);
  std::atomic<std::uint64_t> cuts{0};
  const auto run = bench::run_timed(
      writers + readers, std::chrono::milliseconds(cfg.duration_ms),
      [&](std::size_t tid, const std::atomic<bool>& stop) -> std::uint64_t {
        alloc::ThreadCache cache(pool);
        typename Map::Session sess(map, cache);
        util::Xoshiro256 rng(tid * 7919 + 3);
        std::uint64_t ops = 0;
        if (tid < writers) {
          while (!stop.load(std::memory_order_relaxed)) {
            const std::int64_t k = rng.range(0, key_space - 1);
            if (rng.chance(1, 2)) {
              sess.insert(k, k);
            } else {
              sess.erase(k);
            }
            ++ops;
          }
        } else {
          std::uint64_t round = 0;
          std::size_t sink = 0;
          while (!stop.load(std::memory_order_relaxed)) {
            if (++round % 64 == 0) {
              sink += sess.items().size();
            } else {
              sink += sess.size();
            }
            ++ops;
          }
          cuts.fetch_add(ops, std::memory_order_relaxed);
          if (sink == ~std::size_t{0}) std::printf("?");  // keep sink live
        }
        sess.fold_into(board);
        return ops;
      });
  (void)run;
  const core::OpStats total = board.total();
  const double n_cuts = static_cast<double>(cuts.load());
  const double retries_per_cut =
      n_cuts == 0.0 ? 0.0 : static_cast<double>(total.cut_retries) / n_cuts;
  std::printf("%-9s  %6zu  %11.0f  %14.3f  %12llu\n", name, shards,
              n_cuts * 1000.0 / cfg.duration_ms, retries_per_cut,
              static_cast<unsigned long long>(total.cut_retries));
}

/// Structure sweep: the combining backend's batch-ingest path over every
/// SupportsSortedBatch structure at one shard count — the store-layer
/// view of the E8 batch matrix (each shard's sub-batch is applied in one
/// sorted sweep whatever the balancing discipline underneath; wide-fanout
/// structures may decline unclustered batches through the fanout gate,
/// visible as a lower batched% with no throughput penalty).
void sweep_structures(const Config& cfg, std::size_t shards) {
  std::printf("\n== structure matrix: combining backend, %zu shards, "
              "batch-%u sync ingest ==\n", shards, cfg.batch);
  std::printf("%-8s  %13s  %13s  %10s  %9s  %9s\n", "struct", "per-op ops/s",
              "batch ops/s", "mean batch", "batched%", "declined");
  const auto row = [&](const char* name, auto tag) {
    using DS = typename decltype(tag)::type;
    using Uc = core::CombiningAtom<DS, Smr, TC>;
    store::ShardStatsBoard per_op_board(shards);
    const Cell per_op =
        run_cell<Uc>(cfg, shards, Mode::kPerOp, per_op_board);
    store::ShardStatsBoard batch_board(shards);
    const Cell batch =
        run_cell<Uc>(cfg, shards, Mode::kBatchSync, batch_board);
    const core::OpStats& bt = batch.total;
    const double batched_pct =
        bt.updates == 0 ? 0.0
                        : 100.0 * static_cast<double>(bt.batched_installs) /
                              static_cast<double>(bt.updates);
    std::printf("%-8s  %13.0f  %13.0f  %10.2f  %8.1f%%  %9llu\n", name,
                per_op.ops_per_sec, batch.ops_per_sec, bt.mean_batch_size(),
                batched_pct,
                static_cast<unsigned long long>(bt.batch_declines));
  };
  row("treap", std::type_identity<Treap>{});
  row("avl", std::type_identity<persist::AvlTree<std::int64_t, std::int64_t>>{});
  row("btree8",
      std::type_identity<persist::BTree<std::int64_t, std::int64_t, 8>>{});
  row("rbt", std::type_identity<persist::RbTree<std::int64_t, std::int64_t>>{});
  row("wbt", std::type_identity<persist::WbTree<std::int64_t, std::int64_t>>{});
  row("extbst",
      std::type_identity<persist::ExternalBst<std::int64_t, std::int64_t>>{});
}

// ----- executor lanes: the lock-free-lane + coalescing acceptance -----
//
// Multi-client batch ingest into FEW shards is where the async pipeline
// earns (or loses) its keep: every client's sub-batches land on the same
// one or two lanes, a worker wakeup finds several tickets queued, and
// the coalescer k-way-merges them into one sorted install. The section
// reports sync vs async ops/s side by side plus the pipeline counters
// the lane rewrite promises end to end: mean tickets absorbed per
// worker wakeup (> 1 means cross-ticket coalescing actually fired —
// --assert-coalesce gates on it), coalesced installs and the tickets
// they absorbed, the spin-caught/parked wakeup split, and sampled
// submit-to-completion latency. The submit path acquires no mutex by
// construction — one gate fetch_add, one ring CAS, one stamp release
// store (shard_lane.hpp) — which the JSON records as
// submit_mutex_locks_per_op: 0.

struct LaneCell {
  std::size_t shards = 0;
  double sync_ops = 0.0;
  double async_ops = 0.0;
  core::OpStats total;  // async cell's board total (workers folded in)
};

LaneCell run_lane_cell(const Config& cfg, std::size_t shards) {
  LaneCell cell;
  cell.shards = shards;
  {
    store::ShardStatsBoard sync_board(shards);
    cell.sync_ops =
        run_cell<CombUc>(cfg, shards, Mode::kBatchSync, sync_board)
            .ops_per_sec;
  }
  store::ShardStatsBoard board(shards);
  cell.async_ops =
      run_cell<CombUc>(cfg, shards, Mode::kBatchAsync, board).ops_per_sec;
  cell.total = board.total();
  return cell;
}

int lanes_section(const Config& cfg) {
  std::printf("\n== executor lanes: combining backend, %zu clients, "
              "batch-%u ingest, lock-free lanes ==\n",
              cfg.threads, cfg.batch);
  std::printf("%6s  %13s  %13s  %8s  %11s  %11s  %16s  %8s\n", "shards",
              "sync ops/s", "async ops/s", "tkt/wake", "co-installs",
              "co-tickets", "wakes(spin/park)", "task-us");
  std::vector<std::size_t> sweep{1};
  if (cfg.shards.back() > 1) sweep.push_back(cfg.shards.back());
  std::vector<LaneCell> cells;
  double best_tpw = 0.0;
  for (const std::size_t s : sweep) {
    const LaneCell c = run_lane_cell(cfg, s);
    const core::OpStats& t = c.total;
    std::printf("%6zu  %13.0f  %13.0f  %8.2f  %11llu  %11llu  %6llu(%llu/%llu)"
                "  %8.1f\n",
                s, c.sync_ops, c.async_ops, t.tickets_per_wake(),
                static_cast<unsigned long long>(t.exec_coalesced_installs),
                static_cast<unsigned long long>(t.exec_coalesced_tasks),
                static_cast<unsigned long long>(t.exec_wakes),
                static_cast<unsigned long long>(t.exec_spin_wakes),
                static_cast<unsigned long long>(t.exec_parks),
                t.mean_task_us());
    best_tpw = std::max(best_tpw, t.tickets_per_wake());
    cells.push_back(c);
  }
  if (cfg.lanes_json != nullptr) {
    std::FILE* f = std::fopen(cfg.lanes_json, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", cfg.lanes_json);
      return 2;
    }
    std::fprintf(
        f,
        "{\n  \"bench\": \"bench_sharded executor-lanes\",\n"
        "  \"threads\": %zu, \"batch\": %u, \"cell_ms\": %d, "
        "\"hw_threads\": %zu,\n"
        "  \"sample_every\": %u,\n"
        "  \"submit_mutex_locks_per_op\": 0,\n"
        "  \"cells\": [\n",
        cfg.threads, cfg.batch, cfg.duration_ms, bench::hardware_threads(),
        static_cast<unsigned>(store::ShardExecutor<CombUc>::kSampleEvery));
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const LaneCell& c = cells[i];
      const core::OpStats& t = c.total;
      std::fprintf(
          f,
          "    {\"shards\": %zu, \"sync_ops\": %.0f, \"async_ops\": %.0f, "
          "\"tickets_per_wake\": %.3f, \"coalesced_installs\": %llu, "
          "\"coalesced_tickets\": %llu, \"wakes\": %llu, "
          "\"spin_wakes\": %llu, \"parks\": %llu, \"task_samples\": %llu, "
          "\"mean_task_us\": %.1f}%s\n",
          c.shards, c.sync_ops, c.async_ops, t.tickets_per_wake(),
          static_cast<unsigned long long>(t.exec_coalesced_installs),
          static_cast<unsigned long long>(t.exec_coalesced_tasks),
          static_cast<unsigned long long>(t.exec_wakes),
          static_cast<unsigned long long>(t.exec_spin_wakes),
          static_cast<unsigned long long>(t.exec_parks),
          static_cast<unsigned long long>(t.exec_task_samples),
          t.mean_task_us(), i + 1 < cells.size() ? "," : "");
    }
    // Pre-lane baseline for the async/sync ratio acceptance: the
    // condvar+mutex executor at the previous HEAD, --quick on the
    // 1-vCPU CI host. Host-specific — compare ratios, not absolutes.
    std::fprintf(
        f,
        "  ],\n"
        "  \"cv_baseline_quick_1vcpu\": {\"sync_64_shards1\": 415728, "
        "\"async_64_shards1\": 503274, \"sync_64_shards4\": 371375, "
        "\"async_64_shards4\": 363210}\n}\n");
    std::fclose(f);
  }
  if (cfg.assert_coalesce) {
    if (best_tpw <= 1.0) {
      std::fprintf(stderr,
                   "FAIL: no contended cell coalesced (best mean "
                   "tickets/wake %.2f, want > 1)\n",
                   best_tpw);
      return 1;
    }
    std::printf("coalesce assert: ok (best mean tickets/wake %.2f)\n",
                best_tpw);
  }
  return 0;
}

// ----- skew sweep: the adaptive-rebalancing acceptance experiment -----
//
// Skewed offered load is where the static uniform() split collapses: a
// Zipf(0.99) or hot-range keyspace concentrates most ops on one shard
// and the S-install-stream scaling story reverts to the single-atom
// baseline. The router policies run the same skewed workload:
//
//   static-uniform — the pre-rebalancing status quo (the victim);
//   static-fitted  — RangeRouter::from_samples over an offline sample of
//                    the workload (the oracle fit: what adaptive should
//                    converge to, without paying for a live migration);
//   adaptive       — starts uniform; a control thread runs the
//                    Rebalancer's sketch -> plan -> migrate loop while
//                    the workload hammers the store. One contiguous
//                    range per shard, so fixing a hot head re-draws
//                    every boundary and repacks the cold mass: balance
//                    is bought with ~most of the resident keys moving;
//   adaptive-tablet (--continuous) — starts as a uniform tablet table;
//                    the control thread runs the continuous tick loop:
//                    split the hot head (zero keys), reassign one
//                    right-sized tablet at a time under the migration
//                    throttle's keys-per-interval budget. Cold tablets
//                    never change owner, so balance costs a fraction of
//                    the resident mass — the keys-moved and max/ideal
//                    columns side by side are this PR's acceptance
//                    numbers.
//
// Skew cells run 3x the base duration: a first migration under heavy
// skew moves a large slice of the resident keys (quantile bounds pack
// the cold mass into few shards), and the cell must amortize that
// one-time cost the way a long-running store would.

enum class RouterPolicy {
  kStaticUniform,
  kStaticFitted,
  kAdaptive,
  kAdaptiveTablet,
};

const char* skew_name(Skew s) {
  switch (s) {
    case Skew::kZipf: return "zipf(0.99)";
    case Skew::kHot: return "hot-range";
    default: return "moving-hotspot";
  }
}

/// Per-thread key draw for one skew. The ZipfGen is shared (its draws
/// are stateless); the hotspot generators carry a per-thread op clock.
std::function<std::int64_t(util::Xoshiro256&)> make_draw(
    const Config& cfg, Skew skew, const bench::ZipfGen* zipf) {
  const std::int64_t key_space = key_space_of(cfg);
  switch (skew) {
    case Skew::kZipf:
      return [zipf](util::Xoshiro256& rng) {
        return static_cast<std::int64_t>((*zipf)(rng));
      };
    case Skew::kHot:
      return [h = bench::MovingHotspot(key_space, 1 << 12, 0, 0)](
                 util::Xoshiro256& rng) mutable { return h(rng); };
    case Skew::kMoving:
    default:
      return [h = bench::MovingHotspot(key_space, 1 << 12, 30000,
                                       key_space / 5)](
                 util::Xoshiro256& rng) mutable { return h(rng); };
  }
}

/// Offline workload sample for the static-fitted policy.
std::vector<std::int64_t> skew_sample(const Config& cfg, Skew skew,
                                      const bench::ZipfGen* zipf,
                                      std::size_t n) {
  util::Xoshiro256 rng(0xfeedc0de);
  auto draw = make_draw(cfg, skew, zipf);
  std::vector<std::int64_t> keys;
  keys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) keys.push_back(draw(rng));
  std::sort(keys.begin(), keys.end());
  return keys;
}

struct SkewCell {
  double ops_per_sec = 0.0;
  std::uint64_t migrations = 0;
  std::uint64_t keys_moved = 0;
  std::uint64_t splits = 0;            // boundary-only flips (tablet row)
  std::uint64_t assignment_moves = 0;  // single-tablet moves (tablet row)
  std::uint64_t budget_deferrals = 0;
  std::uint64_t pressure_deferrals = 0;
  std::uint64_t peak_interval_keys = 0;
  std::uint64_t peak_interval_est = 0;    // admitted-estimate window peak
  std::uint64_t oversize_escapes = 0;     // full-bucket over-budget admits
  std::uint64_t budget_keys = 0;
  /// Hottest shard's share of a fresh offered-load sample under the
  /// cell's FINAL topology, as a multiple of the ideal 1/S share —
  /// 1.0 = perfectly balanced; ~S = everything on one shard. This is
  /// the structural quantity rebalancing exists to fix (and on hosts
  /// with fewer cores than threads, where the scheduler masks the
  /// throughput cost of skew, the more telling column).
  double max_load_share = 0.0;
};

/// Continuous-mode migration budget: enough that the steady stream of
/// single-tablet moves is never starved, small enough that one interval
/// can only touch a modest slice of the store (asserted by the smoke).
std::uint64_t continuous_budget(const Config& cfg) {
  return std::max<std::uint64_t>(8192, cfg.initial_keys / 8);
}

template <class Uc, class RouterT>
SkewCell run_skew_cell(const Config& cfg, Skew skew, std::size_t shards,
                       Mode mode, RouterPolicy policy,
                       const bench::ZipfGen* zipf,
                       store::ShardStatsBoard& board) {
  using Map = store::ShardedMap<Uc, RouterT>;
  alloc::PoolBackend pool;
  alloc::ThreadCache root_cache(pool);
  const std::int64_t key_space = key_space_of(cfg);
  RouterT router = RouterT::uniform(0, key_space, shards);
  if constexpr (requires(std::span<const std::int64_t> s) {
                  RouterT::from_samples(s, shards);
                }) {
    if (policy == RouterPolicy::kStaticFitted) {
      const auto sample = skew_sample(cfg, skew, zipf, 1 << 16);
      router = RouterT::from_samples(std::span<const std::int64_t>(sample),
                                     shards);
    }
  }
  Map map(shards, root_cache, std::move(router));
  std::optional<store::ShardExecutor<Uc>> exec;
  if (mode == Mode::kBatchAsync) {
    exec.emplace(map, [&pool] { return alloc::ThreadCache(pool); });
  }
  seed_even_keys(cfg, map, root_cache);
  for (std::size_t s = 0; s < shards; ++s) {
    if constexpr (requires(Uc& u) { u.set_gather_window(true); }) {
      map.shard(s).set_gather_window(true);
    }
  }
  const int duration_ms = cfg.duration_ms * 3;
  // The adaptive policies' control thread: drive the sketch -> plan ->
  // migrate loop until the workload stops. Owns its own allocator view
  // and the Rebalancer (its per-shard reclaimer registrations live on
  // this thread), folding migration counters into the board on exit.
  // kAdaptive re-fits the whole topology per pass; kAdaptiveTablet runs
  // the continuous tick — frequent small steps under the throttle.
  SkewCell cell;
  std::atomic<bool> reb_stop{false};
  std::thread ticker;
  if (policy == RouterPolicy::kAdaptive ||
      policy == RouterPolicy::kAdaptiveTablet) {
    ticker = std::thread([&] {
      alloc::ThreadCache cache(pool);
      store::RebalanceConfig rcfg;
      rcfg.budget_keys = continuous_budget(cfg);
      store::Rebalancer<Map> reb(map, cache, rcfg);
      if constexpr (store::TabletTable<RouterT>) {
        if (policy == RouterPolicy::kAdaptiveTablet) {
          // Continuous mode: tick often; each tick is one cheap step
          // (or a deferral) so the cadence sets reaction latency, not
          // migration volume — the throttle meters that.
          while (!reb_stop.load(std::memory_order_relaxed)) {
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
            reb.tick();
          }
        }
      }
      if (policy == RouterPolicy::kAdaptive) {
        // Short ticks: the first fit should land early so the cell
        // spends its time under the fitted topology, not waiting.
        const auto tick =
            std::chrono::milliseconds(std::max(5, cfg.duration_ms / 30));
        while (!reb_stop.load(std::memory_order_relaxed)) {
          std::this_thread::sleep_for(tick);
          reb.maybe_rebalance();
        }
      }
      const store::RebalanceStats& st = reb.stats();
      cell.migrations = st.migrations;
      cell.keys_moved = st.keys_moved;
      cell.splits = st.splits;
      cell.assignment_moves = st.assignment_moves;
      cell.budget_deferrals = st.budget_deferrals;
      cell.pressure_deferrals = st.pressure_deferrals;
      cell.peak_interval_keys = reb.throttle().peak_interval_keys();
      cell.peak_interval_est = reb.throttle().peak_interval_est();
      cell.oversize_escapes = reb.throttle().oversize_escapes();
      cell.budget_keys = reb.throttle().budget_keys();
      board.set_rebalance_summary(reb.summary());
      reb.fold_into(board);
    });
  }
  const bool batch_mode = mode != Mode::kPerOp;
  const auto run = bench::run_timed(
      cfg.threads, std::chrono::milliseconds(duration_ms),
      [&](std::size_t tid, const std::atomic<bool>& stop) -> std::uint64_t {
        alloc::ThreadCache cache(pool);
        typename Map::Session sess(map, cache);
        util::Xoshiro256 rng(tid * 104729 + 31);
        auto draw = make_draw(cfg, skew, zipf);
        std::uint64_t ops = 0;
        if (batch_mode) {
          using Req = typename Map::BatchRequest;
          using K = typename Map::OpKind;
          std::vector<Req> reqs(cfg.batch, Req{K::kInsert, 0, 0});
          const auto out = std::make_unique<bool[]>(cfg.batch);
          while (!stop.load(std::memory_order_relaxed)) {
            for (unsigned i = 0; i < cfg.batch; ++i) {
              const std::int64_t k = draw(rng);
              reqs[i] = rng.chance(1, 2) ? Req{K::kInsert, k, k}
                                         : Req{K::kErase, k, std::nullopt};
            }
            sess.execute_batch(reqs, std::span<bool>(out.get(), cfg.batch));
            ops += cfg.batch;
          }
        } else {
          while (!stop.load(std::memory_order_relaxed)) {
            const std::int64_t k = draw(rng);
            if (rng.chance(1, 2)) {
              sess.insert(k, k);
            } else {
              sess.erase(k);
            }
            ++ops;
          }
        }
        sess.fold_into(board);
        return ops;
      });
  reb_stop.store(true);
  if (ticker.joinable()) ticker.join();
  if (exec.has_value()) {
    exec->stop();
    exec->fold_into(board);
    exec.reset();
  }
  cell.ops_per_sec = run.ops_per_sec();
  {
    // Offered-load balance under the cell's final topology.
    const auto sample = skew_sample(cfg, skew, zipf, 1 << 14);
    const auto& router = map.router();
    std::vector<std::size_t> load(shards, 0);
    for (const std::int64_t k : sample) ++load[router(k, shards)];
    std::size_t max_load = 0;
    for (const std::size_t l : load) max_load = std::max(max_load, l);
    cell.max_load_share = static_cast<double>(max_load) *
                          static_cast<double>(shards) /
                          static_cast<double>(sample.size());
  }
  return cell;
}

/// The --json sink: a flat array of row objects, one per (skew, policy)
/// sweep row, written as rows complete. The machine-readable counterpart
/// of the printed skew table (BENCH_sharded_skew.json is one of these).
class JsonSink {
 public:
  explicit JsonSink(const char* path) {
    if (path == nullptr) return;
    f_ = std::fopen(path, "w");
    if (f_ == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", path);
      std::exit(2);
    }
    std::fprintf(f_, "[\n");
  }
  ~JsonSink() {
    if (f_ == nullptr) return;
    std::fprintf(f_, "\n]\n");
    std::fclose(f_);
  }
  JsonSink(const JsonSink&) = delete;
  JsonSink& operator=(const JsonSink&) = delete;

  void meta(const Config& cfg, std::size_t shards) {
    if (f_ == nullptr) return;
    sep();
    std::fprintf(f_,
                 "  {\"row\": \"meta\", \"bench\": \"bench_sharded\", "
                 "\"threads\": %zu, \"shards\": %zu, \"initial_keys\": %zu, "
                 "\"cell_ms\": %d, \"hw_threads\": %zu, \"continuous\": %s}",
                 cfg.threads, shards, cfg.initial_keys, cfg.duration_ms * 3,
                 bench::hardware_threads(),
                 cfg.continuous ? "true" : "false");
  }

  /// One printed table row, plus the representative cell's rebalancing
  /// detail (rep = the cell whose final topology the max/ideal column
  /// reports; migrations/keys_moved are the row's three-mode sums).
  void row(Skew skew, const char* policy, std::size_t shards,
           const SkewCell& per_op, const SkewCell& sync_cell,
           const SkewCell& async_cell, const SkewCell& rep,
           std::uint64_t migrations, std::uint64_t keys_moved,
           std::size_t resident) {
    if (f_ == nullptr) return;
    sep();
    std::fprintf(
        f_,
        "  {\"row\": \"skew\", \"skew\": \"%s\", \"policy\": \"%s\", "
        "\"shards\": %zu, \"per_op_ops\": %.0f, \"sync_ops\": %.0f, "
        "\"async_ops\": %.0f, \"migrations\": %llu, \"keys_moved\": %llu, "
        "\"resident\": %zu, \"max_ideal\": %.4f, \"splits\": %llu, "
        "\"assignment_moves\": %llu, \"budget_deferrals\": %llu, "
        "\"pressure_deferrals\": %llu, \"peak_interval_keys\": %llu, "
        "\"peak_interval_est\": %llu, \"oversize_escapes\": %llu, "
        "\"budget_keys\": %llu}",
        skew_name(skew), policy, shards, per_op.ops_per_sec,
        sync_cell.ops_per_sec, async_cell.ops_per_sec,
        static_cast<unsigned long long>(migrations),
        static_cast<unsigned long long>(keys_moved), resident,
        rep.max_load_share, static_cast<unsigned long long>(rep.splits),
        static_cast<unsigned long long>(rep.assignment_moves),
        static_cast<unsigned long long>(rep.budget_deferrals),
        static_cast<unsigned long long>(rep.pressure_deferrals),
        static_cast<unsigned long long>(rep.peak_interval_keys),
        static_cast<unsigned long long>(rep.peak_interval_est),
        static_cast<unsigned long long>(rep.oversize_escapes),
        static_cast<unsigned long long>(rep.budget_keys));
  }

 private:
  void sep() {
    if (!first_) std::fprintf(f_, ",\n");
    first_ = false;
  }
  std::FILE* f_ = nullptr;
  bool first_ = true;
};

struct SkewSummary {
  std::uint64_t adaptive_migrations = 0;
  double adaptive_share = 0.0;  // final max/ideal load share, adaptive row
  // adaptive-tablet row, representative cell (--continuous only):
  bool have_tablet = false;
  std::uint64_t tablet_migrations = 0;
  double tablet_share = 0.0;
  std::uint64_t tablet_keys_moved = 0;
  std::uint64_t tablet_peak_interval = 0;
  std::uint64_t tablet_peak_est = 0;
  std::uint64_t tablet_escapes = 0;
  std::uint64_t tablet_budget = 0;
};

/// Runs the router policies over one skew; returns the adaptive rows'
/// migration counts and final load balance (for --assert-migrated).
SkewSummary skew_sweep(const Config& cfg, Skew skew, JsonSink& json) {
  const std::size_t shards = cfg.shards.back();
  const std::int64_t key_space = key_space_of(cfg);
  std::optional<bench::ZipfGen> zipf;
  if (skew == Skew::kZipf) {
    zipf.emplace(static_cast<std::uint64_t>(key_space), 0.99);
  }
  const bench::ZipfGen* z = zipf.has_value() ? &*zipf : nullptr;
  std::printf("\n== skew sweep: %s offered load, combining backend, "
              "%zu shards, %zu threads, %d ms/cell ==\n",
              skew_name(skew), shards, cfg.threads, cfg.duration_ms * 3);
  std::printf("%-15s  %13s  %13s  %13s  %10s  %10s  %9s\n", "router",
              "per-op ops/s", "sync-64 ops/s", "async-64 ops/s", "migrations",
              "keys-moved", "max/ideal");
  SkewSummary sum;
  std::unique_ptr<store::ShardStatsBoard> detail_board;
  const char* detail_name = "adaptive";
  std::vector<RouterPolicy> policies = {RouterPolicy::kStaticUniform,
                                        RouterPolicy::kStaticFitted,
                                        RouterPolicy::kAdaptive};
  // The continuous row goes last so its board (with the rebalance
  // footer) is the one printed below the table.
  if (cfg.continuous) policies.push_back(RouterPolicy::kAdaptiveTablet);
  for (const RouterPolicy policy : policies) {
    const char* name = policy == RouterPolicy::kStaticUniform
                           ? "static-uniform"
                       : policy == RouterPolicy::kStaticFitted
                           ? "static-fitted"
                       : policy == RouterPolicy::kAdaptive ? "adaptive"
                                                           : "adaptive-tablet";
    const auto run_one = [&](Mode mode, store::ShardStatsBoard& b) {
      return policy == RouterPolicy::kAdaptiveTablet
                 ? run_skew_cell<CombUc, TabR>(cfg, skew, shards, mode,
                                               policy, z, b)
                 : run_skew_cell<CombUc, Router>(cfg, skew, shards, mode,
                                                 policy, z, b);
    };
    auto per_op_board = std::make_unique<store::ShardStatsBoard>(shards);
    const SkewCell per_op = run_one(Mode::kPerOp, *per_op_board);
    SkewCell sync_cell;
    auto sync_board = std::make_unique<store::ShardStatsBoard>(shards);
    if (cfg.run_sync) {
      sync_cell = run_one(Mode::kBatchSync, *sync_board);
    }
    SkewCell async_cell;
    auto async_board = std::make_unique<store::ShardStatsBoard>(shards);
    if (cfg.run_async) {
      async_cell = run_one(Mode::kBatchAsync, *async_board);
    }
    const std::uint64_t migrations =
        per_op.migrations + sync_cell.migrations + async_cell.migrations;
    const std::uint64_t keys_moved =
        per_op.keys_moved + sync_cell.keys_moved + async_cell.keys_moved;
    // The final topology's offered-load balance (hottest shard's share
    // vs the ideal 1/S) — the structural quantity rebalancing fixes,
    // and on core-starved hosts, where the scheduler masks most of the
    // throughput cost of skew, the more telling column. The same cell
    // is the "representative" one for the per-policy detail counters.
    const SkewCell& rep = cfg.run_async  ? async_cell
                          : cfg.run_sync ? sync_cell
                                         : per_op;
    std::printf("%-15s  %13.0f  %13.0f  %13.0f  %10llu  %10llu  %8.2fx\n",
                name, per_op.ops_per_sec, sync_cell.ops_per_sec,
                async_cell.ops_per_sec,
                static_cast<unsigned long long>(migrations),
                static_cast<unsigned long long>(keys_moved),
                rep.max_load_share);
    json.row(skew, name, shards, per_op, sync_cell, async_cell, rep,
             migrations, keys_moved, cfg.initial_keys);
    if (policy == RouterPolicy::kAdaptive) {
      sum.adaptive_migrations = migrations;
      sum.adaptive_share = rep.max_load_share;
    }
    if (policy == RouterPolicy::kAdaptiveTablet) {
      // Assertable quantities come from the representative cell alone:
      // each cell is one fresh store, so "keys moved vs resident" and
      // "peak interval vs budget" are per-cell statements.
      sum.have_tablet = true;
      sum.tablet_migrations = rep.migrations;
      sum.tablet_share = rep.max_load_share;
      sum.tablet_keys_moved = rep.keys_moved;
      sum.tablet_peak_interval = rep.peak_interval_keys;
      sum.tablet_peak_est = rep.peak_interval_est;
      sum.tablet_escapes = rep.oversize_escapes;
      sum.tablet_budget = rep.budget_keys;
    }
    if (policy == RouterPolicy::kAdaptive ||
        policy == RouterPolicy::kAdaptiveTablet) {
      detail_name = name;
      detail_board = cfg.run_async  ? std::move(async_board)
                     : cfg.run_sync ? std::move(sync_board)
                                    : std::move(per_op_board);
    }
  }
  if (detail_board != nullptr) {
    std::printf("\nper-shard stats, %s %s cell (installs rebalanced "
                "across shards; mig-in/mig-out = migrated keys):\n",
                detail_name,
                cfg.run_async  ? "async batch-ingest"
                : cfg.run_sync ? "sync batch-ingest"
                               : "per-op");
    detail_board->print(stdout);
  }
  return sum;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      cfg.initial_keys = 1 << 16;
      cfg.duration_ms = 80;
      cfg.shards = {1, 4};
    } else if (std::strcmp(argv[i], "--duration-ms") == 0 && i + 1 < argc) {
      cfg.duration_ms = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      cfg.threads = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--initial") == 0 && i + 1 < argc) {
      cfg.initial_keys = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--ingest") == 0 && i + 1 < argc) {
      const char* m = argv[++i];
      cfg.run_sync = std::strcmp(m, "async") != 0;
      cfg.run_async = std::strcmp(m, "sync") != 0;
      if (std::strcmp(m, "sync") != 0 && std::strcmp(m, "async") != 0 &&
          std::strcmp(m, "both") != 0) {
        std::fprintf(stderr, "--ingest takes sync|async|both\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--skew") == 0 && i + 1 < argc) {
      const char* m = argv[++i];
      cfg.skew_only = true;
      if (std::strcmp(m, "zipf") == 0) {
        cfg.skews.push_back(Skew::kZipf);
      } else if (std::strcmp(m, "hot") == 0) {
        cfg.skews.push_back(Skew::kHot);
      } else if (std::strcmp(m, "moving") == 0) {
        cfg.skews.push_back(Skew::kMoving);
      } else {
        std::fprintf(stderr, "--skew takes zipf|hot|moving (repeatable)\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--continuous") == 0) {
      cfg.continuous = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      cfg.json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--assert-migrated") == 0) {
      cfg.assert_migrated = true;
    } else if (std::strcmp(argv[i], "--assert-coalesce") == 0) {
      // The lane-coalescing CI smoke: run just the executor-lanes
      // section and gate on mean tickets/wake > 1 in a contended cell.
      cfg.assert_coalesce = true;
      cfg.lanes_only = true;
    } else if (std::strcmp(argv[i], "--lanes-json") == 0 && i + 1 < argc) {
      cfg.lanes_json = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--threads N] [--duration-ms N]"
                   " [--initial N] [--ingest sync|async|both]"
                   " [--skew zipf|hot|moving]... [--continuous]"
                   " [--json PATH] [--assert-migrated]"
                   " [--assert-coalesce] [--lanes-json PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  if (cfg.skews.empty()) cfg.skews.push_back(Skew::kZipf);

  // Gate one skew's summary against the --assert-migrated contract.
  // The whole-topology adaptive row must have migrated and landed on a
  // usably balanced topology (generous bound: the refit is coarse).
  // The continuous adaptive-tablet row carries the strict acceptance:
  // balance actually reached (max/ideal <= 1.3), bought with at most a
  // quarter of the resident keys, and never more than one throttle
  // budget of keys inside one interval.
  const auto check_summary = [&cfg](const SkewSummary& sum) -> int {
    if (sum.adaptive_migrations == 0) {
      std::fprintf(stderr,
                   "FAIL: adaptive cells completed without a migration\n");
      return 1;
    }
    if (sum.adaptive_share * 2.0 > static_cast<double>(cfg.shards.back())) {
      std::fprintf(stderr,
                   "FAIL: adaptive topology left the load unbalanced "
                   "(max/ideal %.2f over %zu shards)\n",
                   sum.adaptive_share, cfg.shards.back());
      return 1;
    }
    if (!sum.have_tablet) return 0;
    if (sum.tablet_migrations == 0) {
      std::fprintf(stderr,
                   "FAIL: continuous cells completed without a flip\n");
      return 1;
    }
    if (sum.tablet_share > 1.3) {
      std::fprintf(stderr,
                   "FAIL: continuous rebalancing left the load unbalanced "
                   "(max/ideal %.2f, want <= 1.3)\n",
                   sum.tablet_share);
      return 1;
    }
    if (sum.tablet_keys_moved * 4 > cfg.initial_keys) {
      std::fprintf(stderr,
                   "FAIL: continuous rebalancing migrated %llu keys "
                   "(> 25%% of %zu resident)\n",
                   static_cast<unsigned long long>(sum.tablet_keys_moved),
                   cfg.initial_keys);
      return 1;
    }
    // The policy bound is on *admitted estimates*: actual keys moved
    // (tablet_peak_interval, printed in the stats line) may drift past
    // the estimate by whatever the tablet gained between planning and
    // the pinned extraction — honest reporting, not an over-admission.
    // Estimates exceed the budget only via the documented full-bucket
    // oversize escape.
    if (sum.tablet_peak_est > sum.tablet_budget && sum.tablet_escapes == 0) {
      std::fprintf(stderr,
                   "FAIL: throttle admitted estimates of %llu keys in one "
                   "interval (budget %llu, no oversize escape)\n",
                   static_cast<unsigned long long>(sum.tablet_peak_est),
                   static_cast<unsigned long long>(sum.tablet_budget));
      return 1;
    }
    return 0;
  };

  if (cfg.lanes_only) {
    // Lanes-only mode (the CI coalescing smoke): the executor-lanes
    // section plus its assert and JSON artifact, nothing else.
    return lanes_section(cfg);
  }

  if (cfg.skew_only) {
    // Skew-sweep-only mode (the CI rebalancing smoke): the router
    // policies over the requested distribution(s), nothing else.
    JsonSink json(cfg.json_path);
    json.meta(cfg, cfg.shards.back());
    for (const Skew skew : cfg.skews) {
      const SkewSummary sum = skew_sweep(cfg, skew, json);
      if (cfg.assert_migrated) {
        if (const int rc = check_summary(sum); rc != 0) return rc;
      }
    }
    return 0;
  }

  std::printf("### store: sharded treap, %zu threads, 100%% updates, "
              "%zu initial keys, range router, %d ms/cell "
              "(%zu hw thread(s))\n\n",
              cfg.threads, cfg.initial_keys, cfg.duration_ms,
              bench::hardware_threads());
  std::printf("%-9s  %6s  %13s  %13s  %13s  %10s  %9s\n", "backend", "shards",
              "per-op ops/s", "sync-64 ops/s", "async-64 ops/s", "mean batch",
              "batched%");

  sweep_backend<PlainUc>(cfg, "atom");
  const auto widest = sweep_backend<CombUc>(cfg, "combining");

  if (widest != nullptr) {
    std::printf("\nper-shard stats, widest combining %s batch-ingest cell "
                "(%zu shards):\n",
                cfg.run_async ? "async" : "sync", widest->shards());
    widest->print(stdout);
  }

  if (const int rc = lanes_section(cfg); rc != 0) return rc;

  const auto [cut_writers, cut_readers] = cut_topology(cfg);
  std::printf("\n== consistent cut reads: %zu writer(s) + %zu reader(s), "
              "size() every round, items() every 64th ==\n",
              cut_writers, cut_readers);
  std::printf("%-9s  %6s  %11s  %14s  %12s\n", "backend", "shards", "cuts/s",
              "retries/cut", "cut-retries");
  for (const std::size_t s : cfg.shards) {
    cut_read_bench<PlainUc>(cfg, s, "atom");
    cut_read_bench<CombUc>(cfg, s, "combining");
  }

  sweep_structures(cfg, cfg.shards.back());

  JsonSink json(cfg.json_path);
  json.meta(cfg, cfg.shards.back());
  for (const Skew skew : cfg.skews) {
    const SkewSummary sum = skew_sweep(cfg, skew, json);
    if (cfg.assert_migrated) {
      if (const int rc = check_summary(sum); rc != 0) return rc;
    }
  }
  return 0;
}
