// Store-layer bench: throughput vs shard count × UC backend on an
// update-heavy workload (acceptance experiment for the sharding PR).
//
// The single-atom UC is capped by one CAS stream per structure; S shards
// give S independent install streams. Every cell runs the same workload
// through ShardedMap over a range router (equal-width keyspace split, so
// per-shard streams stay local) in two ingest modes:
//
//   * per-op  — each thread routes point inserts/erases to the owning
//     shard (the classic workload, one root CAS per landing op on the
//     plain backend);
//   * batch-B — each thread offers client batches of B ops through the
//     cross-shard splitter, which feeds every shard's install path a
//     key-sorted sub-batch (the combining backend applies it through the
//     sorted sweep — one spine copy per sub-batch).
//
// Backends are swept through the UniversalConstruction concept: the same
// harness instantiates the plain Atom and the CombiningAtom, which is the
// point of the concept refactor. Per-shard install/batch accounting comes
// from the ShardStatsBoard and is printed for the widest configuration.
//
// On hosts with fewer cores than threads the absolute numbers are
// scheduler-bound (see bench_batch_combining's header); the shard-count
// *trend* within one backend and mode remains the comparison of record.
#include <cstdio>
#include <cstring>
#include <memory>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "alloc/pool_alloc.hpp"
#include "alloc/thread_cache_alloc.hpp"
#include "bench_util/runner.hpp"
#include "core/atom.hpp"
#include "core/combining.hpp"
#include "persist/avl.hpp"
#include "persist/btree.hpp"
#include "persist/external_bst.hpp"
#include "persist/rbt.hpp"
#include "persist/treap.hpp"
#include "persist/wbt.hpp"
#include "reclaim/epoch.hpp"
#include "store/router.hpp"
#include "store/shard_stats.hpp"
#include "store/sharded_map.hpp"
#include "util/rng.hpp"

namespace {

using namespace pathcopy;
using Treap = persist::Treap<std::int64_t, std::int64_t>;
using Smr = reclaim::EpochReclaimer;
using TC = alloc::ThreadCache;
using PlainUc = core::Atom<Treap, Smr, TC>;
using CombUc = core::CombiningAtom<Treap, Smr, TC>;
using Router = store::RangeRouter<std::int64_t>;

struct Config {
  std::size_t initial_keys = 1 << 20;  // pre-fill; key space is 2x this
  int duration_ms = 300;
  std::size_t threads = 4;
  std::vector<std::size_t> shards{1, 2, 4, 8};
  unsigned batch = 64;
};

struct Cell {
  double ops_per_sec = 0.0;
  core::OpStats total;
};

template <class Uc>
Cell run_cell(const Config& cfg, std::size_t shards, bool batch_mode,
              store::ShardStatsBoard& board) {
  using Map = store::ShardedMap<Uc, Router>;
  alloc::PoolBackend pool;
  alloc::ThreadCache root_cache(pool);
  const auto key_space = static_cast<std::int64_t>(2 * cfg.initial_keys);
  Map map(shards, root_cache,
          shards == 1 ? Router{} : Router::uniform(0, key_space, shards));
  {
    typename Map::Session seeder(map, root_cache);
    std::vector<std::pair<std::int64_t, std::int64_t>> items;
    items.reserve(cfg.initial_keys);
    for (std::size_t i = 0; i < cfg.initial_keys; ++i) {
      items.emplace_back(static_cast<std::int64_t>(2 * i),
                         static_cast<std::int64_t>(i));
    }
    seeder.seed_sorted(items.begin(), items.end());
  }
  for (std::size_t s = 0; s < shards; ++s) {
    // One-yield announce window so combining batches form on hosts with
    // fewer cores than threads (no-op for the plain backend).
    if constexpr (requires(Uc& u) { u.set_gather_window(true); }) {
      map.shard(s).set_gather_window(true);
    }
  }
  const auto run = bench::run_timed(
      cfg.threads, std::chrono::milliseconds(cfg.duration_ms),
      [&](std::size_t tid, const std::atomic<bool>& stop) -> std::uint64_t {
        alloc::ThreadCache cache(pool);
        typename Map::Session sess(map, cache);
        util::Xoshiro256 rng(tid * 104729 + 31);
        std::uint64_t ops = 0;
        if (batch_mode) {
          using Req = typename Map::BatchRequest;
          using K = typename Map::OpKind;
          std::vector<Req> reqs(cfg.batch, Req{K::kInsert, 0, 0});
          const auto out = std::make_unique<bool[]>(cfg.batch);
          while (!stop.load(std::memory_order_relaxed)) {
            for (unsigned i = 0; i < cfg.batch; ++i) {
              const std::int64_t k = rng.range(0, key_space - 1);
              reqs[i] = rng.chance(1, 2) ? Req{K::kInsert, k, k}
                                         : Req{K::kErase, k, std::nullopt};
            }
            sess.execute_batch(reqs, std::span<bool>(out.get(), cfg.batch));
            ops += cfg.batch;
          }
        } else {
          while (!stop.load(std::memory_order_relaxed)) {
            const std::int64_t k = rng.range(0, key_space - 1);
            if (rng.chance(1, 2)) {
              sess.insert(k, k);
            } else {
              sess.erase(k);
            }
            ++ops;
          }
        }
        sess.fold_into(board);
        return ops;
      });
  Cell cell;
  cell.ops_per_sec = run.ops_per_sec();
  cell.total = board.total();
  return cell;
}

/// Runs one backend's shard sweep and returns the batch-ingest board of
/// the widest configuration (for the per-shard stats printout).
template <class Uc>
std::unique_ptr<store::ShardStatsBoard> sweep_backend(const Config& cfg,
                                                      const char* name) {
  std::unique_ptr<store::ShardStatsBoard> widest;
  for (const std::size_t s : cfg.shards) {
    store::ShardStatsBoard per_op_board(s);
    const Cell per_op = run_cell<Uc>(cfg, s, /*batch_mode=*/false,
                                     per_op_board);
    auto batch_board = std::make_unique<store::ShardStatsBoard>(s);
    const Cell batch = run_cell<Uc>(cfg, s, /*batch_mode=*/true, *batch_board);
    const core::OpStats& bt = batch.total;
    const double batched_pct =
        bt.updates == 0 ? 0.0
                        : 100.0 * static_cast<double>(bt.batched_installs) /
                              static_cast<double>(bt.updates);
    std::printf("%-9s  %6zu  %13.0f  %13.0f  %10.2f  %8.1f%%\n", name, s,
                per_op.ops_per_sec, batch.ops_per_sec, bt.mean_batch_size(),
                batched_pct);
    if (s == cfg.shards.back()) widest = std::move(batch_board);
  }
  return widest;
}

/// Structure sweep: the combining backend's batch-ingest path over every
/// SupportsSortedBatch structure at one shard count — the store-layer
/// view of the E8 batch matrix (each shard's sub-batch is applied in one
/// sorted sweep whatever the balancing discipline underneath).
void sweep_structures(const Config& cfg, std::size_t shards) {
  std::printf("\n== structure matrix: combining backend, %zu shards, "
              "batch-%u ingest ==\n", shards, cfg.batch);
  std::printf("%-8s  %13s  %13s  %10s  %9s\n", "struct", "per-op ops/s",
              "batch ops/s", "mean batch", "batched%");
  const auto row = [&](const char* name, auto tag) {
    using DS = typename decltype(tag)::type;
    using Uc = core::CombiningAtom<DS, Smr, TC>;
    store::ShardStatsBoard per_op_board(shards);
    const Cell per_op =
        run_cell<Uc>(cfg, shards, /*batch_mode=*/false, per_op_board);
    store::ShardStatsBoard batch_board(shards);
    const Cell batch =
        run_cell<Uc>(cfg, shards, /*batch_mode=*/true, batch_board);
    const core::OpStats& bt = batch.total;
    const double batched_pct =
        bt.updates == 0 ? 0.0
                        : 100.0 * static_cast<double>(bt.batched_installs) /
                              static_cast<double>(bt.updates);
    std::printf("%-8s  %13.0f  %13.0f  %10.2f  %8.1f%%\n", name,
                per_op.ops_per_sec, batch.ops_per_sec, bt.mean_batch_size(),
                batched_pct);
  };
  row("treap", std::type_identity<Treap>{});
  row("avl", std::type_identity<persist::AvlTree<std::int64_t, std::int64_t>>{});
  row("btree8",
      std::type_identity<persist::BTree<std::int64_t, std::int64_t, 8>>{});
  row("rbt", std::type_identity<persist::RbTree<std::int64_t, std::int64_t>>{});
  row("wbt", std::type_identity<persist::WbTree<std::int64_t, std::int64_t>>{});
  row("extbst",
      std::type_identity<persist::ExternalBst<std::int64_t, std::int64_t>>{});
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      cfg.initial_keys = 1 << 16;
      cfg.duration_ms = 80;
      cfg.shards = {1, 4};
    } else if (std::strcmp(argv[i], "--duration-ms") == 0 && i + 1 < argc) {
      cfg.duration_ms = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      cfg.threads = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--initial") == 0 && i + 1 < argc) {
      cfg.initial_keys = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--threads N] [--duration-ms N]"
                   " [--initial N]\n",
                   argv[0]);
      return 2;
    }
  }

  std::printf("### store: sharded treap, %zu threads, 100%% updates, "
              "%zu initial keys, range router, %d ms/cell "
              "(%zu hw thread(s))\n\n",
              cfg.threads, cfg.initial_keys, cfg.duration_ms,
              bench::hardware_threads());
  std::printf("%-9s  %6s  %13s  %13s  %10s  %9s\n", "backend", "shards",
              "per-op ops/s", "batch-64 ops/s", "mean batch", "batched%");

  sweep_backend<PlainUc>(cfg, "atom");
  const auto widest = sweep_backend<CombUc>(cfg, "combining");

  if (widest != nullptr) {
    std::printf("\nper-shard stats, widest combining batch-ingest cell "
                "(%zu shards):\n",
                widest->shards());
    widest->print(stdout);
  }

  sweep_structures(cfg, cfg.shards.back());
  return 0;
}
