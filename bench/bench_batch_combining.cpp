// Experiment E11 — sorted batch-apply vs per-op application inside the
// combining UC.
//
// Both modes run the identical announce/gather/install machinery; the
// only difference is what a winning combiner does with its gathered
// batch of B operations:
//   * per-op   — B independent root-to-leaf path copies (legacy loop),
//                O(B·log n) fresh nodes per install;
//   * batched  — one sorted split/merge sweep over a shared spine
//                (Treap::apply_sorted_batch), with same-key chains
//                collapsed to one effective op each.
//
// Section 1 (the tentpole measurement) drives the real install path at a
// controlled batch size through CombiningAtom::execute_batch: one driver
// thread offers batches of B ops — the gathered load of B announcing
// threads — against a 1M-key treap, 100% updates, and sweeps B × key
// locality. Key locality decides how much spine the batch shares:
// uniform keys share only ~lg B levels, while a contended hot range (the
// regime combining exists for) shares most of the path, which is where
// the O(B + shared-spine) bound beats O(B·log n) clearly.
//
// Section 2 runs the end-to-end real-thread sweep (threads × update
// ratio, both modes). The combiner runs with the gather window enabled
// in both modes: on hosts with fewer cores than threads a scheduling
// quantum dwarfs an op, batches never form naturally, and both modes
// degenerate to B=1 (see bench_ablation_combining); the one-yield window
// restores batch pressure, applied equally to both sides. On such hosts
// this section is scheduler-bound — per-op wall time is dominated by the
// two context switches each op costs — so Section 1 carries the
// apples-to-apples install-path comparison.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "alloc/pool_alloc.hpp"
#include "alloc/thread_cache_alloc.hpp"
#include "bench_util/batch_stats.hpp"
#include "bench_util/runner.hpp"
#include "core/combining.hpp"
#include "persist/avl.hpp"
#include "persist/btree.hpp"
#include "persist/external_bst.hpp"
#include "persist/rbt.hpp"
#include "persist/treap.hpp"
#include "persist/wbt.hpp"
#include "reclaim/epoch.hpp"
#include "util/rng.hpp"

namespace {

using namespace pathcopy;
using Treap = persist::Treap<std::int64_t, std::int64_t>;
template <class DS>
using CAFor = core::CombiningAtom<DS, reclaim::EpochReclaimer,
                                  alloc::ThreadCache, 64>;
using CA = CAFor<Treap>;

struct Config {
  std::size_t initial_keys = 1 << 20;  // pre-fill; key space is 2x this
  int duration_ms = 300;
  int trials = 3;  // install-path cells report the median trial
  std::vector<std::size_t> threads{1, 2, 4, 8};
  std::vector<int> update_pcts{100, 50};
  std::vector<unsigned> offered_batches{2, 8, 16, 32, 64};
  std::vector<unsigned> matrix_batches{8, 64};  // structure-matrix sweep
};

template <class DS>
struct HarnessT {
  alloc::PoolBackend pool;
  reclaim::EpochReclaimer smr;
  alloc::ThreadCache root_cache{pool};
  CAFor<DS> atom{smr, root_cache};

  explicit HarnessT(const Config& cfg, bool batched) {
    atom.set_batch_apply(batched);
    std::vector<std::pair<std::int64_t, std::int64_t>> items;
    items.reserve(cfg.initial_keys);
    for (std::size_t i = 0; i < cfg.initial_keys; ++i) {
      items.emplace_back(static_cast<std::int64_t>(2 * i),
                         static_cast<std::int64_t>(i));
    }
    typename CAFor<DS>::Ctx ctx(smr, root_cache);
    atom.seed_sorted(ctx, items.begin(), items.end());
  }
};
using Harness = HarnessT<Treap>;

struct ModeResult {
  double ops_per_sec = 0.0;
  core::OpStats stats;
};

// ----- Section 1: install path at a controlled batch size -----

template <class DS>
ModeResult run_install_path(const Config& cfg, unsigned batch, bool batched,
                            std::int64_t hot_range) {
  using CAx = CAFor<DS>;
  HarnessT<DS> h(cfg, batched);
  const std::int64_t key_space =
      hot_range > 0 ? hot_range
                    : static_cast<std::int64_t>(2 * cfg.initial_keys);
  bench::OpStatsAccumulator acc;
  const auto run = bench::run_timed(
      1, std::chrono::milliseconds(cfg.duration_ms),
      [&](std::size_t, const std::atomic<bool>& stop) -> std::uint64_t {
        alloc::ThreadCache cache(h.pool);
        typename CAx::Ctx ctx(h.smr, cache);
        util::Xoshiro256 rng(17);
        std::vector<typename CAx::BatchRequest> reqs(
            batch, typename CAx::BatchRequest{CAx::OpKind::kInsert, 0, 0});
        std::uint64_t ops = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          for (unsigned i = 0; i < batch; ++i) {
            const std::int64_t k = rng.range(0, key_space - 1);
            if (rng.chance(1, 2)) {
              reqs[i] = typename CAx::BatchRequest{CAx::OpKind::kInsert, k, k};
            } else {
              reqs[i] = typename CAx::BatchRequest{CAx::OpKind::kErase, k,
                                                   std::nullopt};
            }
          }
          // std::vector<bool> has no contiguous bool storage; a small
          // stack array keeps the span interface honest.
          bool results[64];
          h.atom.execute_batch(
              ctx,
              std::span<const typename CAx::BatchRequest>(reqs.data(), batch),
              std::span<bool>(results, batch));
          ops += batch;
        }
        acc.add(ctx.stats);
        return ops;
      });
  ModeResult res;
  res.ops_per_sec = run.ops_per_sec();
  res.stats = acc.snapshot();
  return res;
}

void section_install_path(const Config& cfg) {
  std::printf("--- install path: B ops per install (B announcing threads' "
              "gathered load), 100%% updates, %zu initial keys ---\n\n",
              cfg.initial_keys);
  struct Locality {
    const char* name;
    std::int64_t hot_range;  // 0 = uniform over the full key space
  };
  const Locality locs[] = {
      {"uniform", 0}, {"hot-4096", 4096}, {"hot-256", 256}};
  std::printf("%-9s  %3s  %12s  %12s  %8s  %12s\n", "locality", "B",
              "per-op ops/s", "batch ops/s", "speedup", "saved/install");
  const auto median_of = [&cfg](auto&& one_trial) {
    std::vector<ModeResult> runs;
    for (int t = 0; t < cfg.trials; ++t) runs.push_back(one_trial());
    std::sort(runs.begin(), runs.end(),
              [](const ModeResult& x, const ModeResult& y) {
                return x.ops_per_sec < y.ops_per_sec;
              });
    return runs[runs.size() / 2];
  };
  for (const Locality& loc : locs) {
    for (const unsigned b : cfg.offered_batches) {
      const ModeResult per_op = median_of([&] {
        return run_install_path<Treap>(cfg, b, /*batched=*/false,
                                       loc.hot_range);
      });
      const ModeResult batched = median_of([&] {
        return run_install_path<Treap>(cfg, b, /*batched=*/true,
                                       loc.hot_range);
      });
      const double speedup = per_op.ops_per_sec == 0.0
                                 ? 0.0
                                 : batched.ops_per_sec / per_op.ops_per_sec;
      std::printf("%-9s  %3u  %12.0f  %12.0f  %7.2fx  %12.1f\n", loc.name, b,
                  per_op.ops_per_sec, batched.ops_per_sec, speedup,
                  bench::spine_savings_per_install(batched.stats));
    }
  }
  std::printf("\n");
}

// ----- Section 1b: the full E8 structure matrix through the install path -----

void section_structure_matrix(const Config& cfg) {
  std::printf("--- structure matrix: every SupportsSortedBatch structure "
              "through the same install path (B ops/install, 100%% updates, "
              "hot-256 + uniform) ---\n\n");
  std::printf("%-8s  %-9s  %3s  %12s  %12s  %8s  %12s\n", "struct",
              "locality", "B", "per-op ops/s", "batch ops/s", "speedup",
              "saved/install");
  const auto sweep = [&](const char* name, auto tag) {
    using DS = typename decltype(tag)::type;
    struct Cell {
      const char* loc;
      std::int64_t hot;
    };
    const Cell cells[] = {{"hot-256", 256}, {"uniform", 0}};
    for (const Cell& cell : cells) {
      for (const unsigned b : cfg.matrix_batches) {
        const ModeResult per_op =
            run_install_path<DS>(cfg, b, /*batched=*/false, cell.hot);
        const ModeResult batched =
            run_install_path<DS>(cfg, b, /*batched=*/true, cell.hot);
        const double speedup = per_op.ops_per_sec == 0.0
                                   ? 0.0
                                   : batched.ops_per_sec / per_op.ops_per_sec;
        std::printf("%-8s  %-9s  %3u  %12.0f  %12.0f  %7.2fx  %12.1f\n", name,
                    cell.loc, b, per_op.ops_per_sec, batched.ops_per_sec,
                    speedup,
                    bench::spine_savings_per_install(batched.stats));
      }
    }
  };
  sweep("treap", std::type_identity<Treap>{});
  sweep("avl", std::type_identity<persist::AvlTree<std::int64_t, std::int64_t>>{});
  sweep("btree8",
        std::type_identity<persist::BTree<std::int64_t, std::int64_t, 8>>{});
  sweep("rbt", std::type_identity<persist::RbTree<std::int64_t, std::int64_t>>{});
  sweep("wbt", std::type_identity<persist::WbTree<std::int64_t, std::int64_t>>{});
  sweep("extbst",
        std::type_identity<persist::ExternalBst<std::int64_t, std::int64_t>>{});
  std::printf("\n");
}

// ----- Section 2: end-to-end real threads -----

ModeResult run_threads(const Config& cfg, std::size_t procs, int update_pct,
                       bool batched) {
  Harness h(cfg, batched);
  h.atom.set_gather_window(true);
  const auto key_space = static_cast<std::int64_t>(2 * cfg.initial_keys);
  bench::OpStatsAccumulator acc;
  const auto run = bench::run_timed(
      procs, std::chrono::milliseconds(cfg.duration_ms),
      [&](std::size_t tid, const std::atomic<bool>& stop) -> std::uint64_t {
        alloc::ThreadCache cache(h.pool);
        CA::Ctx ctx(h.smr, cache);
        const unsigned slot = h.atom.register_slot();
        util::Xoshiro256 rng(tid * 104729 + 13);
        std::uint64_t ops = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          const std::int64_t k = rng.range(0, key_space - 1);
          if (static_cast<int>(rng.range(0, 99)) < update_pct) {
            if (rng.chance(1, 2)) {
              h.atom.insert(ctx, slot, k, k);
            } else {
              h.atom.erase(ctx, slot, k);
            }
          } else {
            h.atom.read(ctx, [k](Treap t) { return t.contains(k); });
          }
          ++ops;
        }
        acc.add(ctx.stats);
        return ops;
      });
  ModeResult res;
  res.ops_per_sec = run.ops_per_sec();
  res.stats = acc.snapshot();
  return res;
}

void section_threads(const Config& cfg) {
  std::printf("--- end-to-end: real threads x update ratio (gather window "
              "on; scheduler-bound when threads > cores) ---\n\n");
  std::printf("%7s  %6s  %12s  %12s  %8s  %10s  %12s\n", "threads", "upd%",
              "per-op ops/s", "batch ops/s", "speedup", "mean batch",
              "saved/install");
  core::OpStats contended_stats;
  for (const int pct : cfg.update_pcts) {
    for (const std::size_t p : cfg.threads) {
      const ModeResult per_op = run_threads(cfg, p, pct, /*batched=*/false);
      const ModeResult batched = run_threads(cfg, p, pct, /*batched=*/true);
      const double speedup = per_op.ops_per_sec == 0.0
                                 ? 0.0
                                 : batched.ops_per_sec / per_op.ops_per_sec;
      std::printf("%7zu  %5d%%  %12.0f  %12.0f  %7.2fx  %10.2f  %12.1f\n", p,
                  pct, per_op.ops_per_sec, batched.ops_per_sec, speedup,
                  batched.stats.mean_batch_size(),
                  bench::spine_savings_per_install(batched.stats));
      if (pct == cfg.update_pcts.front() && p == cfg.threads.back()) {
        contended_stats = batched.stats;
      }
    }
  }
  std::printf("\nhighest-contention cell (last threads row, first upd%% "
              "column):\n");
  bench::print_batch_histogram(stdout, contended_stats);
  bench::print_recycle_stats(stdout, contended_stats);
  std::printf("batched installs: %llu of %llu installs; spine-copy savings "
              "are vs a ~lg(n) copies per landing op estimate.\n",
              static_cast<unsigned long long>(contended_stats.batched_installs),
              static_cast<unsigned long long>(contended_stats.updates));
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  bool install_only = false, threads_only = false, matrix_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      cfg.initial_keys = 1 << 16;
      cfg.duration_ms = 80;
      cfg.trials = 1;
      cfg.threads = {1, 8};
      cfg.update_pcts = {100};
      cfg.offered_batches = {8, 64};
      cfg.matrix_batches = {64};
    } else if (std::strcmp(argv[i], "--duration-ms") == 0 && i + 1 < argc) {
      cfg.duration_ms = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--initial") == 0 && i + 1 < argc) {
      cfg.initial_keys = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--install-only") == 0) {
      install_only = true;
    } else if (std::strcmp(argv[i], "--threads-only") == 0) {
      threads_only = true;
    } else if (std::strcmp(argv[i], "--matrix-only") == 0) {
      matrix_only = true;
    }
  }

  std::printf("### E11: sorted batch-apply vs per-op combining "
              "(%zu initial keys, %d ms/cell, %zu hw thread(s))\n\n",
              cfg.initial_keys, cfg.duration_ms, bench::hardware_threads());
  if (matrix_only) {
    section_structure_matrix(cfg);
    return 0;
  }
  if (!threads_only) {
    section_install_path(cfg);
    section_structure_matrix(cfg);
  }
  if (!install_only) section_threads(cfg);
  return 0;
}
