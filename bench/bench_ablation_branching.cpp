// Experiment E12 — branching-factor ablation.
//
// The paper's analysis is for binary trees. The cache-prefetch effect
// generalizes, but both of its ingredients shrink as nodes widen:
//   * the path gets shorter (log_B N levels) — less for a retry to reuse;
//   * the retry's uncached reload is B/(B−1) nodes -> 1 node, but each
//     node spans more cache lines.
// Two probes:
//   1. Simulator arity sweep: speedup and misses-per-retry for
//      B ∈ {2..32}, with node width scaled to the fanout, against the
//      arity-generalized closed form.
//   2. Real structures through the real UC: treap (binary), B+trees at
//      fanout 8/32, and the HAMT (64-way) on the Random workload.
#include <cstdio>
#include <cstring>
#include <vector>

#include "alloc/pool_alloc.hpp"
#include "alloc/thread_cache_alloc.hpp"
#include "bench_util/runner.hpp"
#include "core/atom.hpp"
#include "model/formulas.hpp"
#include "model/sim.hpp"
#include "persist/btree.hpp"
#include "persist/hamt.hpp"
#include "persist/treap.hpp"
#include "reclaim/epoch.hpp"
#include "util/rng.hpp"

namespace {

using namespace pathcopy;

constexpr std::int64_t kKeyRange = 1 << 16;

struct MixHash {
  std::uint64_t operator()(std::int64_t k) const noexcept {
    std::uint64_t x = static_cast<std::uint64_t>(k) + 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }
};

template <class DS>
double run_structure(std::size_t procs, int duration_ms) {
  alloc::PoolBackend pool;
  reclaim::EpochReclaimer smr;
  core::Atom<DS, reclaim::EpochReclaimer, alloc::ThreadCache> atom(smr, pool);
  const auto run = bench::run_timed(
      procs, std::chrono::milliseconds(duration_ms),
      [&](std::size_t tid, const std::atomic<bool>& stop) -> std::uint64_t {
        alloc::ThreadCache cache(pool);
        typename core::Atom<DS, reclaim::EpochReclaimer,
                            alloc::ThreadCache>::Ctx ctx(smr, cache);
        util::Xoshiro256 rng(tid * 104729 + 3);
        std::uint64_t ops = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          const std::int64_t k = rng.range(0, kKeyRange);
          if (rng.chance(1, 2)) {
            atom.update(ctx, [k](DS t, auto& b) { return t.insert(b, k, k); });
          } else {
            atom.update(ctx, [k](DS t, auto& b) { return t.erase(b, k); });
          }
          ++ops;
        }
        return ops;
      });
  return run.ops_per_sec();
}

}  // namespace

int main(int argc, char** argv) {
  int duration_ms = 200;
  std::vector<std::size_t> procs{1, 4, 8};
  bool sim_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      duration_ms = 80;
      procs = {1, 4};
    }
    if (std::strcmp(argv[i], "--sim-only") == 0) sim_only = true;
  }

  std::printf("### E12: branching-factor ablation\n\n");

  std::printf("== simulated arity sweep (N=2^18, M=2^13, R=100, P=16; node "
              "width scales with fanout) ==\n");
  std::printf("%-6s %-8s %-12s %-14s %-12s %-12s\n", "B", "lines", "path len",
              "miss/retry", "sim speedup", "formula");
  for (const std::size_t b : {2u, 4u, 8u, 16u, 32u}) {
    model::SimConfig cfg;
    cfg.num_leaves = 1 << 18;
    cfg.cache_lines = 1 << 13;
    cfg.miss_cost = 100;
    cfg.processes = 16;
    cfg.ops = 12000;
    cfg.branching = b;
    cfg.lines_per_node = std::max<std::size_t>(1, b / 4);  // ~16B per entry
    cfg.seed = 7;
    const auto res = model::run_protocol_sim(cfg);
    const double speedup = model::simulated_speedup(cfg);
    const double path = model::logb(double(cfg.num_leaves), double(b)) + 1;
    const double formula = model::predicted_speedup_bary(
        double(cfg.num_leaves), double(cfg.cache_lines),
        double(cfg.miss_cost), double(cfg.processes), double(b),
        double(cfg.lines_per_node));
    std::printf("%-6zu %-8zu %-12.1f %-14.2f %-12.2f %-12.2f\n", b,
                cfg.lines_per_node, path, res.misses_per_retry(), speedup,
                formula);
  }
  std::printf("law: miss/retry counts cache-line misses -> B/(B-1) modified "
              "nodes x lines-per-node; speedup declines as arity grows "
              "(shorter paths leave less for retries to reuse).\n");

  if (!sim_only) {
    using Treap = persist::Treap<std::int64_t, std::int64_t>;
    using B8 = persist::BTree<std::int64_t, std::int64_t, 8>;
    using B32 = persist::BTree<std::int64_t, std::int64_t, 32>;
    using H64 = persist::Hamt<std::int64_t, std::int64_t, 6, MixHash>;
    std::printf("\n== measured (real threads, Random workload, ops/s; %zu hw "
                "thread(s)) ==\n",
                bench::hardware_threads());
    std::printf("%-14s", "structure");
    for (const auto p : procs) std::printf("  %9zup", p);
    std::printf("\n");
    std::printf("%-14s", "treap (B=2)");
    for (const auto p : procs) {
      std::printf("  %10.0f", run_structure<Treap>(p, duration_ms));
    }
    std::printf("\n%-14s", "b+tree F=8");
    for (const auto p : procs) {
      std::printf("  %10.0f", run_structure<B8>(p, duration_ms));
    }
    std::printf("\n%-14s", "b+tree F=32");
    for (const auto p : procs) {
      std::printf("  %10.0f", run_structure<B32>(p, duration_ms));
    }
    std::printf("\n%-14s", "hamt 64-way");
    for (const auto p : procs) {
      std::printf("  %10.0f", run_structure<H64>(p, duration_ms));
    }
    std::printf("\nnote: single-thread absolute throughput favors wide nodes "
                "(fewer indirections); the *scaling ratio* favors deep "
                "binary paths, per the simulated sweep above.\n");
  }
  return 0;
}
