// Experiment E7 — reclamation-scheme ablation.
//
// The paper's Java artifact gets memory reclamation for free from the GC;
// the C++ port must pick an SMR scheme, and this bench quantifies what
// each costs under the write-only UC treap workload:
//
//   leaky+arena  — no reclamation (the GC-free upper bound)
//   epoch        — default: thread-local retire buckets, amortized scans
//   watermark    — MVCC-style version pins; global bundle list (supports
//                  long-lived snapshots, pays a lock per retire)
//   hazard-root  — single hazard per reader; per-retire map upkeep
//
// Also reports reclamation health: nodes retired vs freed (pending backlog
// must stay bounded).
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "alloc/arena_alloc.hpp"
#include "alloc/pool_alloc.hpp"
#include "alloc/thread_cache_alloc.hpp"
#include "bench_util/runner.hpp"
#include "core/atom.hpp"
#include "persist/treap.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/hazard_roots.hpp"
#include "reclaim/leaky.hpp"
#include "reclaim/watermark.hpp"
#include "util/rng.hpp"

namespace {

using namespace pathcopy;
using T = persist::Treap<std::int64_t, std::int64_t>;

constexpr std::int64_t kKeyRange = 1 << 16;

template <class Smr>
struct Measurement {
  double ops_per_sec = 0.0;
  std::uint64_t pending = 0;
};

template <class Smr>
Measurement<Smr> run_with_reclaimer(std::size_t procs, int duration_ms) {
  alloc::PoolBackend pool;
  Smr smr;
  core::Atom<T, Smr, alloc::ThreadCache> atom(smr, pool);
  const auto run = bench::run_timed(
      procs, std::chrono::milliseconds(duration_ms),
      [&](std::size_t tid, const std::atomic<bool>& stop) -> std::uint64_t {
        alloc::ThreadCache cache(pool);
        typename core::Atom<T, Smr, alloc::ThreadCache>::Ctx ctx(smr, cache);
        util::Xoshiro256 rng(tid * 31337 + 7);
        std::uint64_t ops = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          const std::int64_t k = rng.range(0, kKeyRange);
          if (rng.chance(1, 2)) {
            atom.update(ctx, [k](T t, auto& b) { return t.insert(b, k, k); });
          } else {
            atom.update(ctx, [k](T t, auto& b) { return t.erase(b, k); });
          }
          ++ops;
        }
        return ops;
      });
  Measurement<Smr> m;
  m.ops_per_sec = run.ops_per_sec();
  m.pending = smr.pending_nodes();
  return m;
}

double run_leaky_arena(std::size_t procs, int duration_ms) {
  static alloc::ArenaRetire noop_backend;
  reclaim::LeakyReclaimer smr;
  // Arenas must outlive the Atom: the final version's nodes live in them
  // and the Atom destructor walks that tree.
  std::vector<std::unique_ptr<alloc::Arena>> arenas;
  for (std::size_t i = 0; i < procs; ++i) {
    arenas.push_back(std::make_unique<alloc::Arena>());
  }
  core::Atom<T, reclaim::LeakyReclaimer, alloc::Arena> atom(smr, noop_backend);
  const auto run = bench::run_timed(
      procs, std::chrono::milliseconds(duration_ms),
      [&](std::size_t tid, const std::atomic<bool>& stop) -> std::uint64_t {
        alloc::Arena& arena = *arenas[tid];
        core::Atom<T, reclaim::LeakyReclaimer, alloc::Arena>::Ctx ctx(smr, arena);
        util::Xoshiro256 rng(tid * 31337 + 7);
        std::uint64_t ops = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          const std::int64_t k = rng.range(0, kKeyRange);
          if (rng.chance(1, 2)) {
            atom.update(ctx, [k](T t, auto& b) { return t.insert(b, k, k); });
          } else {
            atom.update(ctx, [k](T t, auto& b) { return t.erase(b, k); });
          }
          ++ops;
        }
        return ops;
      });
  return run.ops_per_sec();
}

}  // namespace

int main(int argc, char** argv) {
  int duration_ms = 250;
  std::vector<std::size_t> procs{1, 2, 4, 8};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      duration_ms = 100;
      procs = {1, 4};
    }
  }

  std::printf("== E7: reclamation scheme vs throughput (ops/s) ==\n");
  std::printf("%-14s", "scheme");
  for (const auto p : procs) std::printf("  %9zup", p);
  std::printf("   pending@end\n");

  std::printf("%-14s", "leaky+arena");
  for (const auto p : procs) std::printf("  %10.0f", run_leaky_arena(p, duration_ms));
  std::printf("   n/a (arena-bulk)\n");

  std::printf("%-14s", "epoch");
  std::uint64_t pending = 0;
  for (const auto p : procs) {
    const auto m = run_with_reclaimer<reclaim::EpochReclaimer>(p, duration_ms);
    std::printf("  %10.0f", m.ops_per_sec);
    pending = m.pending;
  }
  std::printf("   %llu\n", static_cast<unsigned long long>(pending));

  std::printf("%-14s", "watermark");
  for (const auto p : procs) {
    const auto m = run_with_reclaimer<reclaim::WatermarkReclaimer>(p, duration_ms);
    std::printf("  %10.0f", m.ops_per_sec);
    pending = m.pending;
  }
  std::printf("   %llu\n", static_cast<unsigned long long>(pending));

  std::printf("%-14s", "hazard-root");
  for (const auto p : procs) {
    const auto m = run_with_reclaimer<reclaim::HazardRootReclaimer>(p, duration_ms);
    std::printf("  %10.0f", m.ops_per_sec);
    pending = m.pending;
  }
  std::printf("   %llu\n", static_cast<unsigned long long>(pending));

  std::printf("\nexpected shape: leaky is the ceiling; epoch tracks it "
              "closely (thread-local retires); watermark and hazard-root pay "
              "a shared lock per retire. Pending backlog stays bounded "
              "(thousands, not millions) for all schemes.\n");
  return 0;
}
