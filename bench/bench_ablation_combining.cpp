// Experiment E10 — combining ablation: what happens to the paper's
// construction when the serialized-CAS bottleneck is attacked directly.
//
// Four implementations of the same concurrent set, Random workload:
//   * uc-atom        — the paper's construction (1 CAS per update);
//   * uc-combining   — PSim-style lock-free combining (1 CAS per batch);
//   * flat-combining — lock-based combining over the mutable treap;
//   * coarse-lock    — one mutex around the mutable treap.
// Also reported: the combining batch size (announced ops absorbed per
// installed version), the quantity that grows with contention and is the
// mechanism by which combining wins at high P.
//
// On this 1-vCPU host the absolute ordering compresses (no true
// parallelism); the batch-size column still demonstrates the combining
// machinery working, and the bench is parameterized to be meaningful on
// a real multicore.
#include <cstdio>
#include <cstring>
#include <vector>

#include "alloc/pool_alloc.hpp"
#include "alloc/thread_cache_alloc.hpp"
#include "bench_util/runner.hpp"
#include "core/atom.hpp"
#include "core/combining.hpp"
#include "persist/treap.hpp"
#include "reclaim/epoch.hpp"
#include "seq/flat_combining.hpp"
#include "seq/locked.hpp"
#include "seq/seq_treap.hpp"
#include "util/rng.hpp"

namespace {

using namespace pathcopy;
using Treap = persist::Treap<std::int64_t, std::int64_t>;

constexpr std::int64_t kKeyRange = 1 << 16;

double run_atom(std::size_t procs, int duration_ms) {
  alloc::PoolBackend pool;
  reclaim::EpochReclaimer smr;
  core::Atom<Treap, reclaim::EpochReclaimer, alloc::ThreadCache> atom(smr,
                                                                      pool);
  const auto run = bench::run_timed(
      procs, std::chrono::milliseconds(duration_ms),
      [&](std::size_t tid, const std::atomic<bool>& stop) -> std::uint64_t {
        alloc::ThreadCache cache(pool);
        core::Atom<Treap, reclaim::EpochReclaimer, alloc::ThreadCache>::Ctx
            ctx(smr, cache);
        util::Xoshiro256 rng(tid * 104729 + 3);
        std::uint64_t ops = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          const std::int64_t k = rng.range(0, kKeyRange);
          if (rng.chance(1, 2)) {
            atom.update(ctx,
                        [k](Treap t, auto& b) { return t.insert(b, k, k); });
          } else {
            atom.update(ctx, [k](Treap t, auto& b) { return t.erase(b, k); });
          }
          ++ops;
        }
        return ops;
      });
  return run.ops_per_sec();
}

struct CombiningResult {
  double ops_per_sec = 0.0;
  double batch = 1.0;  // announced ops absorbed per installed version
};

CombiningResult run_combining(std::size_t procs, int duration_ms) {
  alloc::PoolBackend pool;
  reclaim::EpochReclaimer smr;
  using CA = core::CombiningAtom<Treap, reclaim::EpochReclaimer,
                                 alloc::ThreadCache, 64>;
  alloc::ThreadCache root_cache(pool);
  CA atom(smr, root_cache);
  std::atomic<std::uint64_t> installs{0}, combined{0};
  const auto run = bench::run_timed(
      procs, std::chrono::milliseconds(duration_ms),
      [&](std::size_t tid, const std::atomic<bool>& stop) -> std::uint64_t {
        alloc::ThreadCache cache(pool);
        CA::Ctx ctx(smr, cache);
        const unsigned slot = atom.register_slot();
        util::Xoshiro256 rng(tid * 104729 + 3);
        std::uint64_t ops = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          const std::int64_t k = rng.range(0, kKeyRange);
          if (rng.chance(1, 2)) {
            atom.insert(ctx, slot, k, k);
          } else {
            atom.erase(ctx, slot, k);
          }
          ++ops;
        }
        installs += ctx.stats.updates;
        combined += ctx.stats.combined_ops;
        return ops;
      });
  CombiningResult res;
  res.ops_per_sec = run.ops_per_sec();
  res.batch = installs.load() == 0
                  ? 1.0
                  : double(combined.load()) / double(installs.load());
  return res;
}

double run_flat_combining(std::size_t procs, int duration_ms) {
  seq::FlatCombining<seq::SeqTreap<std::int64_t, std::int64_t>, 64> fc;
  const auto run = bench::run_timed(
      procs, std::chrono::milliseconds(duration_ms),
      [&](std::size_t tid, const std::atomic<bool>& stop) -> std::uint64_t {
        const unsigned slot = fc.register_slot();
        util::Xoshiro256 rng(tid * 104729 + 3);
        std::uint64_t ops = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          const std::int64_t k = rng.range(0, kKeyRange);
          if (rng.chance(1, 2)) {
            fc.insert(slot, k, k);
          } else {
            fc.erase(slot, k);
          }
          ++ops;
        }
        return ops;
      });
  return run.ops_per_sec();
}

double run_locked(std::size_t procs, int duration_ms) {
  seq::Locked<seq::SeqTreap<std::int64_t, std::int64_t>> locked;
  const auto run = bench::run_timed(
      procs, std::chrono::milliseconds(duration_ms),
      [&](std::size_t tid, const std::atomic<bool>& stop) -> std::uint64_t {
        util::Xoshiro256 rng(tid * 104729 + 3);
        std::uint64_t ops = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          const std::int64_t k = rng.range(0, kKeyRange);
          if (rng.chance(1, 2)) {
            locked.with([k](auto& t) { t.insert(k, k); });
          } else {
            locked.with([k](auto& t) { t.erase(k); });
          }
          ++ops;
        }
        return ops;
      });
  return run.ops_per_sec();
}

}  // namespace

int main(int argc, char** argv) {
  int duration_ms = 200;
  std::vector<std::size_t> procs{1, 2, 4, 8};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      duration_ms = 80;
      procs = {1, 4};
    }
  }

  std::printf("### E10: combining ablation, Random workload (ops/s; %zu hw "
              "thread(s))\n\n",
              bench::hardware_threads());
  std::printf("%-16s", "construction");
  for (const auto p : procs) std::printf("  %9zup", p);
  std::printf("\n");

  std::printf("%-16s", "uc-atom");
  for (const auto p : procs) {
    std::printf("  %10.0f", run_atom(p, duration_ms));
  }
  std::printf("\n");

  std::vector<CombiningResult> comb;
  std::printf("%-16s", "uc-combining");
  for (const auto p : procs) {
    comb.push_back(run_combining(p, duration_ms));
    std::printf("  %10.0f", comb.back().ops_per_sec);
  }
  std::printf("\n");

  std::printf("%-16s", "flat-combining");
  for (const auto p : procs) {
    std::printf("  %10.0f", run_flat_combining(p, duration_ms));
  }
  std::printf("\n");

  std::printf("%-16s", "coarse-lock");
  for (const auto p : procs) {
    std::printf("  %10.0f", run_locked(p, duration_ms));
  }
  std::printf("\n");

  std::printf("\n%-16s", "combining batch");
  for (const auto& c : comb) std::printf("  %10.2f", c.batch);
  std::printf("\nbatch = announced ops absorbed per installed version; 1.0 "
              "uncontended, grows toward P under contention — each CAS "
              "completes that many operations.\n");
  return 0;
}
