#!/usr/bin/env bash
# One-command gate: configure, build, run the tier-1 tests, then smoke the
# benches for a few seconds each. Usage: scripts/check.sh [build-dir]
#
# set -euo pipefail is load-bearing for the smokes below: their output is
# piped through tee into logs, and without `pipefail` a crashing bench
# would be masked by tee's zero exit status — the gate would "pass" on a
# broken bench binary.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

cmake -B "$build_dir" -S "$repo_root"
cmake --build "$build_dir" -j "$(nproc)"
ctest --test-dir "$build_dir" --output-on-failure -j 2

# Runs one bench smoke, teeing its table into the build dir; the bench's
# own exit code decides the gate (pipefail propagates it past tee).
# SMOKE_TAG=<tag> names the log "<bench>.<tag>.smoke.log" so one bench
# can be smoked under several flag sets without clobbering its log.
smoke() {
  local bench="$1"
  shift
  "$build_dir/$bench" "$@" \
    | tee "$build_dir/$bench${SMOKE_TAG:+.$SMOKE_TAG}.smoke.log"
}

# Smoke: the batch-combining bench's quick sweep proves the batch install
# path runs end to end — including the 6-structure sorted-batch matrix.
smoke bench_batch_combining --quick

# Smoke: the store layer's quick sweep proves ShardedMap drives both UC
# backends (concept conformance at runtime), the cross-shard splitter in
# sync and async (ShardExecutor) ingest modes, the consistent-cut read
# section, and the structure sweep through the combining backend.
smoke bench_sharded --quick

# Smoke: the async pipeline in isolation — executor-attached ingest only,
# so a regression that deadlocks the scatter/join path fails fast here.
SMOKE_TAG=async smoke bench_sharded --quick --ingest async

# Smoke: the lock-free executor lanes — the contended multi-client cell
# must coalesce cross-ticket batches (mean tickets/wake > 1 end to end,
# OpStats -> board -> JSON) or the bench exits 1; the lanes JSON lands
# next to the log for inspection.
SMOKE_TAG=coalesce smoke bench_sharded --quick --ingest async \
  --assert-coalesce --lanes-json "$build_dir/BENCH_executor_lanes.json"

# Smoke: the batched read path — probe sweeps vs per-key reads plus the
# read-coalescing cell. --assert-read-coalesce fails the gate unless a
# worker wakeup absorbs > 1 read ticket into one merged sweep AND the
# hot-256 B=64 sweep beats per-key reads; the JSON lands next to the log.
SMOKE_TAG=multiget smoke bench_readmix --quick --multiget \
  --assert-read-coalesce --json "$build_dir/BENCH_readmix_multiget.json"

# Smoke: adaptive rebalancing under a Zipfian offered load — the sweep's
# own asserts fail the gate unless at least one live migration ran AND
# the adaptive cells ended on a balanced topology (max/ideal load share
# within 2x), with the per-shard install counts printed as evidence.
SMOKE_TAG=skew smoke bench_sharded --quick --skew zipf --assert-migrated

# Smoke: continuous tablet rebalancing — the adaptive-tablet row runs
# Rebalancer::tick() against live traffic; the asserts additionally gate
# "balance reached (max/ideal <= 1.3x) while moving <= 25% of resident
# keys, never exceeding the per-interval migration budget".
SMOKE_TAG=continuous smoke bench_sharded --quick --skew zipf --continuous --assert-migrated

# Smoke: the structure ablation (E8 + E8b batch matrix) covers every
# persistent structure's per-op and sorted-batch install paths.
smoke bench_ablation_structure --quick

# Smoke: the memory loop (E6b) — --assert-recycle fails the gate unless
# the contended cell actually recycled failed-attempt nodes AND the
# batched retire path cost fewer backend lock trips per op than the
# per-node baseline; the JSON lands next to the log for inspection.
SMOKE_TAG=recycle smoke bench_ablation_alloc --quick \
  --json "$build_dir/BENCH_alloc_recycle.json" --assert-recycle

# Smoke: the deterministic-scheduler model checker. A separate build tree
# because PATHCOPY_MODELCHECK=ON compiles the PC_YIELD decision points
# into the protocols (the tier-1 binaries above stay the unmodified
# measurement build). Time-boxed to the seeded random-walk suite plus the
# replayed regression corpus — the exhaustive sweeps run in CI's
# dedicated modelcheck job. The gtest exit status decides the gate
# (pipefail past tee, as for the bench smokes); any failing walk prints
# its seed, and PATHCOPY_MC_SEED=<seed> re-runs that exact schedule:
#   PATHCOPY_MC_SEED=<seed> build-mc/test_model_check \
#     --gtest_filter='ModelCheckSmoke.*'
mc_dir="$build_dir-mc"
cmake -B "$mc_dir" -S "$repo_root" -DPATHCOPY_MODELCHECK=ON
cmake --build "$mc_dir" -j "$(nproc)" --target test_model_check
# The filter keeps the smoke time-boxed: random walks (now including the
# lane ring and park/wake protocols), the replayed regression corpus,
# and the two fast lane mutant positive controls — the full exhaustive
# sweeps stay in the modelcheck CI job.
"$mc_dir/test_model_check" \
  --gtest_filter='ModelCheckSmoke.*:ModelCheckAtom.CorpusTraceReproducesTheLegacyAba:ModelCheckCut.*:ModelCheckLane.SkippingTheSlotStampCheckLosesAnElement:ModelCheckLane.DroppingTheParkRecheckReopensTheLostWakeup' \
  | tee "$mc_dir/test_model_check.smoke.log"

echo "check.sh: all gates passed"
