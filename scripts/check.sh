#!/usr/bin/env bash
# One-command gate: configure, build, run the tier-1 tests, then smoke the
# batch-combining bench for ~5 seconds. Usage: scripts/check.sh [build-dir]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

cmake -B "$build_dir" -S "$repo_root"
cmake --build "$build_dir" -j "$(nproc)"
ctest --test-dir "$build_dir" --output-on-failure -j 2

# Smoke: the batch-combining bench's quick sweep (~5s) proves the batch
# install path runs end to end and prints its table.
"$build_dir/bench_batch_combining" --quick

# Smoke: the store layer's quick sweep proves ShardedMap drives both UC
# backends (concept conformance at runtime) and the cross-shard splitter.
"$build_dir/bench_sharded" --quick

echo "check.sh: all gates passed"
