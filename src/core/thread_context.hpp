// Per-thread execution context for operating on an Atom.
//
// Bundles the three things a worker thread needs: its reclaimer
// registration, its allocator view (shared or thread-local depending on
// the policy), and its operation counters. Contexts are created on the
// owning thread and must not be shared.
//
// Construction also closes the memory loop when both sides support it:
// if the allocator exposes a retire_sink() (ThreadCache) and the
// reclaimer handle accepts one (the three real reclaimers), the handle is
// wired to drop expired retire bundles straight into the allocator's
// magazines. The declaration-order contract matters: declare the
// allocator BEFORE the context (as ShardExecutor workers and the benches
// do), so the context — and with it the handle, which clears its sink on
// release — dies first.
#pragma once

#include "core/stats.hpp"

namespace pathcopy::core {

template <class Smr, class Alloc>
struct ThreadContext {
  using SmrHandle = typename Smr::ThreadHandle;

  ThreadContext(Smr& smr, Alloc& alloc)
      : smr_handle(smr.register_thread()), alloc(&alloc) {
    if constexpr (requires(SmrHandle& h, Alloc& a) {
                    h.set_retire_sink(a.retire_sink());
                  }) {
      smr_handle.set_retire_sink(alloc.retire_sink());
    }
  }

  ThreadContext(ThreadContext&&) noexcept = default;
  ThreadContext& operator=(ThreadContext&&) noexcept = default;
  ThreadContext(const ThreadContext&) = delete;
  ThreadContext& operator=(const ThreadContext&) = delete;

  SmrHandle smr_handle;
  Alloc* alloc;
  OpStats stats;
  /// Feed a failed install attempt's nodes back to the next attempt via
  /// the builder's bin (default). Off restores the pre-recycling
  /// allocate-afresh-per-retry behaviour for A/B measurement.
  bool recycle_fresh = true;
};

}  // namespace pathcopy::core
