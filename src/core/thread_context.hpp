// Per-thread execution context for operating on an Atom.
//
// Bundles the three things a worker thread needs: its reclaimer
// registration, its allocator view (shared or thread-local depending on
// the policy), and its operation counters. Contexts are created on the
// owning thread and must not be shared.
#pragma once

#include "core/stats.hpp"

namespace pathcopy::core {

template <class Smr, class Alloc>
struct ThreadContext {
  using SmrHandle = typename Smr::ThreadHandle;

  ThreadContext(Smr& smr, Alloc& alloc)
      : smr_handle(smr.register_thread()), alloc(&alloc) {}

  ThreadContext(ThreadContext&&) noexcept = default;
  ThreadContext& operator=(ThreadContext&&) noexcept = default;
  ThreadContext(const ThreadContext&) = delete;
  ThreadContext& operator=(const ThreadContext&) = delete;

  SmrHandle smr_handle;
  Alloc* alloc;
  OpStats stats;
};

}  // namespace pathcopy::core
