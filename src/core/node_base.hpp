// Base class for all path-copied nodes.
//
// Every persistent node carries one byte of builder state that tracks its
// lifecycle within a single update attempt:
//
//   kPublished  — reachable from a root that was (or may have been)
//                 installed by a successful CAS; immutable forever.
//   kFresh      — allocated by the in-flight attempt; private to it.
//   kFreshDead  — allocated by the in-flight attempt, then superseded by
//                 it (e.g. a split copy that a subsequent merge re-copied);
//                 garbage the moment the attempt ends, win or lose.
//
// Thread-safety: the byte is only ever written while the node is private
// to one thread (between allocation and the root CAS that publishes it).
// Other threads can reach the node only through an acquire load of a root
// installed by a release CAS that happened after the byte was finalized to
// kPublished, so cross-thread reads are data-race free without atomics.
#pragma once

#include <cstdint>

namespace pathcopy::core {

enum class NodeState : std::uint8_t {
  kPublished = 0,
  kFresh = 1,
  kFreshDead = 2,
};

struct PNode {
  mutable NodeState pc_state_ = NodeState::kFresh;
};

}  // namespace pathcopy::core
