// Atom: the paper's universal construction.
//
// One Read/CAS register (Root_Ptr) holds the root of the current version
// of a persistent structure. Queries load the root under a reclaimer
// guard and run sequential code on the immutable snapshot. Updates
// path-copy a candidate version and try to swing the root with a single
// CAS, retrying from the new current version on failure (§2 of the
// paper). The construction is lock-free: a CAS failure implies some other
// update succeeded.
//
// The retry loop is exactly the code path whose cache behaviour the paper
// analyzes: a failed attempt leaves the search path resident in the
// retrying thread's cache, and because path copying shares everything off
// the copied path, the retry misses only on the ~2 nodes the winning
// update replaced (§3).
//
// Empty-version tokens: the register never holds nullptr. An empty
// version is represented by a tag-bit pointer (bit 0 set; every node
// allocation is 8-aligned) to an EmptyRootSentinel — the Atom's own
// member sentinel for the construction version, and a FRESH
// builder-allocated sentinel for every later erase-to-empty install.
// Structurally the version is still the empty structure
// (structural_root() strips the tag and yields nullptr); the point is
// the token: each transition to empty publishes a distinct address that
// is superseded and retired like any node when replaced, so
// `root_token() == pinned token` means "this exact version, pinned
// continuously" for empty versions by the same pinned-address-cannot-
// recycle argument as for non-empty ones. That makes consistent-cut
// validation (store/version_vector.hpp) exact on the token alone; the
// nullptr-empty representation it replaces was the one recyclable token,
// whose version-counter cross-check left a documented ABA residual
// (reproduced as a model-check regression in tests/test_model_check.cpp).
// The cost on the paper-baseline hot path is one test-and-mask per
// read/update (bench_table1/2/xeon5220 A/B'd within noise).
//
// LegacyNullEmptyRoot re-enables the old nullptr representation. It
// exists solely so the model-check regression can run the pre-fix
// protocol against the schedule that breaks it; nothing else should set
// it.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <utility>

#include "core/builder.hpp"
#include "core/thread_context.hpp"
#include "core/universal.hpp"
#include "util/align.hpp"
#include "util/assert.hpp"
#include "util/modelcheck.hpp"

namespace pathcopy::core {

/// Outcome of Atom::update.
enum class UpdateResult : std::uint8_t {
  kInstalled,  // a new version was published
  kNoChange,   // the operation was a semantic no-op on the current version
};

/// The pointee of a tagged empty-version token. Carries no data — its
/// address is the token — but derives PNode so the builder can allocate,
/// supersede, and retire it through the normal bundle machinery.
struct alignas(8) EmptyRootSentinel : PNode {};

template <class DS, class Smr, class Alloc, bool LegacyNullEmptyRoot = false>
class Atom {
 public:
  using Node = typename DS::Node;
  using Ctx = ThreadContext<Smr, Alloc>;
  using RetireBackend = typename Alloc::RetireBackend;
  // Unified universal-construction vocabulary (core/universal.hpp). The
  // Key/Value aliases degrade to placeholders for non-map structures so
  // the surface below still declares; bodies instantiate only on use.
  using Structure = DS;
  using SmrType = Smr;
  using AllocType = Alloc;
  using Key = typename detail::KeyOf<DS>::type;
  using Value = typename detail::ValueOf<DS>::type;
  using OpKind = core::OpKind;
  using BatchRequest = core::BatchRequest<Key, Value>;
  using ReadOutcome = persist::ReadOutcome<Value>;

  static constexpr bool kNeverNullRoot = !LegacyNullEmptyRoot;

  /// True for the tagged form an empty version's token takes. Tokens are
  /// opaque to reclaimers and cut validation; only code that turns a
  /// token back into a structure needs this.
  static bool is_empty_token(const void* token) noexcept {
    return (reinterpret_cast<std::uintptr_t>(token) & 1u) != 0;
  }

  /// Maps a token (e.g. a pinned snapshot's root()) to the structural
  /// root it denotes: nullptr for empty-version tokens, the node pointer
  /// otherwise. DS::from_root takes this, never a raw token.
  static const void* structural_root(const void* token) noexcept {
    return is_empty_token(token) ? nullptr : token;
  }

  /// The retire backend is kept for teardown: the destructor frees the
  /// final version through it. It must outlive the Atom.
  Atom(Smr& smr, RetireBackend& backend) : smr_(&smr), backend_(&backend) {
    initial_empty_.pc_state_ = NodeState::kPublished;
  }

  /// Uniform-construction form (UniversalConstruction concept): grabs the
  /// retire backend from the allocator view, like CombiningAtom does. The
  /// constrained template keeps the overload out of play when Alloc *is*
  /// its own retire backend (MallocAlloc), where the primary constructor
  /// already accepts the allocator directly.
  template <class A>
    requires(std::same_as<A, Alloc> &&
             !std::same_as<Alloc, typename Alloc::RetireBackend>)
  Atom(Smr& smr, A& alloc) : Atom(smr, *alloc.retire_backend()) {}

  Atom(const Atom&) = delete;
  Atom& operator=(const Atom&) = delete;

  ~Atom() {
    const void* t = root_.load(std::memory_order_acquire);
    if (is_empty_token(t)) {
      const auto* s = untag_empty(t);
      if (s != &initial_empty_) {
        s->~EmptyRootSentinel();
        backend_->free_bytes(
            const_cast<EmptyRootSentinel*>(s),  // NOLINT: owner teardown
            sizeof(EmptyRootSentinel), alignof(EmptyRootSentinel));
      }
      return;
    }
    DS::destroy(static_cast<const Node*>(t), *backend_);
  }

  /// Runs f on an immutable snapshot of the current version. f must not
  /// retain references past its return (the guard ends with the call);
  /// use snapshot-capable reclaimers for long-lived views.
  template <class F>
  decltype(auto) read(Ctx& ctx, F&& f) const {
    ++ctx.stats.reads;
    auto guard = smr_->pin(ctx.smr_handle, root_, version_);
    return std::forward<F>(f)(DS::from_root(structural_root(guard.root())));
  }

  /// Applies f : (DS current, Builder&) -> DS candidate, retrying until a
  /// CAS installs the candidate. Returning a handle with the same root as
  /// the input signals a semantic no-op (e.g. inserting a present key) and
  /// skips the CAS entirely — the paper's "unsuccessful modification".
  template <class F>
  UpdateResult update(Ctx& ctx, F&& f) {
    Builder<Alloc> builder(*ctx.alloc);
    builder.set_recycling(ctx.recycle_fresh);
    RecycleScope<Alloc> recycle_scope(ctx.stats, builder);
    for (;;) {
      builder.reset();
      ++ctx.stats.attempts;
      auto guard = smr_->pin(ctx.smr_handle, root_, version_);
      const void* cur = guard.root();
      const void* cur_structural = structural_root(cur);
      DS next = f(DS::from_root(cur_structural), builder);
      const void* next_root = next.root_ptr();
      if (next_root == cur_structural) {
        builder.rollback();
        ++ctx.stats.noop_updates;
        return UpdateResult::kNoChange;
      }
      const void* install = next_root;
      if constexpr (kNeverNullRoot) {
        if (next_root == nullptr) {
          // Erase-to-empty: mint a fresh token. Reusing any fixed
          // address (the member sentinel, say) would recreate the exact
          // token recycling this representation exists to kill.
          install = tag_empty(builder.template create<EmptyRootSentinel>());
        }
        if (is_empty_token(cur)) {
          const EmptyRootSentinel* old = untag_empty(cur);
          // The construction sentinel is a member, not a heap node; it
          // simply becomes unreachable (and dies with the Atom).
          if (old != &initial_empty_) builder.supersede(old);
        }
      }
      builder.seal();
      PC_YIELD("atom.install");
      const void* expected = cur;
      if (root_.compare_exchange_strong(expected, install,
                                        std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        // Version is bumped after the root swings, so the counter always
        // trails the root — the invariant the watermark reclaimer's
        // pin-then-load protocol relies on. The window between the CAS
        // and the bump is a model-check decision point: the pre-fix cut
        // ABA lived exactly here.
        PC_YIELD("atom.bump");
        const std::uint64_t death =
            version_.fetch_add(1, std::memory_order_seq_cst) + 1;
        smr_->retire_bundle(ctx.smr_handle, death, cur, install,
                            builder.commit());
        ++ctx.stats.updates;
        return UpdateResult::kInstalled;
      }
      ctx.stats.failed_attempt_nodes += builder.fresh_count();
      builder.rollback();
      ++ctx.stats.cas_failures;
      // Loop: reread the (new) current version and rebuild. The nodes we
      // just recycled sit in the builder's bin, so the retry's create()
      // calls reuse the same still-cache-hot blocks instead of paying
      // another O(log n) trip through the allocator.
    }
  }

  /// Current version counter (1 on construction, +1 per installed update).
  std::uint64_t version() const noexcept {
    return version_.load(std::memory_order_acquire);
  }

  /// Opaque identity of the current root. Changes on every install —
  /// including installs of empty versions, whose tokens are distinct
  /// tagged sentinel addresses; while a VersionedView pins a root, that
  /// root's address cannot be recycled, so comparing its token against
  /// this probe is an ABA-free "did the shard move?" check for every
  /// version (see the concept note in core/universal.hpp).
  const void* root_token() const noexcept {
    return root_.load(std::memory_order_acquire);
  }

  /// A pinned snapshot bundled with its version label and root token
  /// (the shared shape in core/universal.hpp).
  using VersionedView = core::VersionedView<Smr, DS>;

  /// Pins the current version and returns it with its version label. The
  /// plain Atom bumps the counter *after* the root CAS (the watermark
  /// reclaimer's pin-then-load protocol depends on the counter trailing
  /// the root), so the label read here can lag installs whose bump is
  /// still in flight; it is a lower bound that is exact whenever the
  /// shard is settled. Cut validation therefore keys on the token, which
  /// is exact unconditionally.
  ///
  /// The label is read BEFORE the pin on purpose: a counter value read
  /// before the pin cannot exceed the pinned root's version (the counter
  /// trails the root at all times), which is what makes it a true lower
  /// bound — read after the pin it could absorb bumps of installs newer
  /// than the pinned snapshot and over-report.
  VersionedView pin_versioned(Ctx& ctx) const {
    ++ctx.stats.reads;
    const std::uint64_t v = version_.load(std::memory_order_seq_cst);
    auto guard = smr_->pin(ctx.smr_handle, root_, version_);
    const void* r = guard.root();
    return VersionedView{std::move(guard), DS::from_root(structural_root(r)),
                         v, r};
  }

  /// Runs f on a pinned snapshot and returns (result, version label),
  /// retrying until the root and label are stable around the read.
  template <class F>
  auto read_versioned(Ctx& ctx, F&& f) const {
    for (;;) {
      VersionedView view = pin_versioned(ctx);
      auto result = f(view.snapshot);
      if (root_.load(std::memory_order_seq_cst) == view.token &&
          version_.load(std::memory_order_seq_cst) == view.version) {
        return std::pair(std::move(result), view.version);
      }
    }
  }

  /// Resolves a key-sorted, key-unique probe batch against ONE pinned
  /// snapshot: pin once, run the structure's descent-sharing sweep (or the
  /// per-key fallback — see core/universal.hpp), drop the guard. out[i]
  /// answers keys[i]. No combiner, no version bump, no CAS, and no
  /// allocation — the read-side mirror of execute_batch, except reads need
  /// none of the install machinery. The yield between pin and sweep is
  /// the model checker's window for racing an install against the probe:
  /// the sweep must keep answering from the root pinned above.
  persist::ReadProbeStats multi_get(Ctx& ctx, std::span<const Key> keys,
                                    std::span<ReadOutcome> out) const {
    PC_ASSERT(out.size() >= keys.size(), "multi_get outcome span too small");
    if (keys.empty()) return {};
    VersionedView view = pin_versioned(ctx);  // bumps reads by 1...
    ctx.stats.reads += keys.size() - 1;       // ...count every probe key
    PC_YIELD("atom.mget.sweep");
    const persist::ReadProbeStats st =
        core::detail::resolve_sorted_probe<DS, Key, Value>(view.snapshot,
                                                           keys, out);
    ctx.stats.read_batches += 1;
    ctx.stats.batched_reads += keys.size();
    ctx.stats.read_batch_hist[OpStats::batch_bucket(keys.size())] += 1;
    ctx.stats.probe_nodes_visited += st.nodes_visited;
    ctx.stats.probe_nodes_saved += st.nodes_saved();
    return st;
  }

  /// Unguarded size probe — safe because size is read from the root node
  /// itself, which a concurrent reclaimer cannot free while it is current;
  /// callers needing linearizable reads should use read().
  std::size_t size(Ctx& ctx) const {
    return read(ctx, [](DS snapshot) { return snapshot.size(); });
  }

  /// For reclaimers supporting long-lived snapshots (WatermarkReclaimer).
  /// The returned snapshot's root() is a TOKEN — pass it through
  /// structural_root() before DS::from_root.
  template <class S = Smr>
  auto snapshot() const -> decltype(std::declval<S&>().pin_snapshot(
      std::declval<const std::atomic<const void*>&>(),
      std::declval<const std::atomic<std::uint64_t>&>())) {
    return smr_->pin_snapshot(root_, version_);
  }

  Smr& reclaimer() noexcept { return *smr_; }

  // ----- unified universal-construction surface (core/universal.hpp) -----

  /// The plain Atom has no announcement slots; register_slot exists so
  /// store-layer code can treat both backends uniformly. The returned slot
  /// is accepted — and ignored — by insert/erase.
  unsigned register_slot() noexcept { return 0; }

  /// Returns true iff the key was newly inserted (reified counterpart of
  /// update-with-a-lambda; the slot is unused here).
  bool insert(Ctx& ctx, unsigned /*slot*/, const Key& key, const Value& value) {
    return update(ctx, [&](DS cur, Builder<Alloc>& b) {
             return cur.insert(b, key, value);
           }) == UpdateResult::kInstalled;
  }

  /// Returns true iff the key was present and removed.
  bool erase(Ctx& ctx, unsigned /*slot*/, const Key& key) {
    return update(ctx, [&](DS cur, Builder<Alloc>& b) {
             return cur.erase(b, key);
           }) == UpdateResult::kInstalled;
  }

  /// Span-based batch ingest, aligned with CombiningAtom::execute_batch.
  /// The single-CAS Atom has no shared install path to amortize, so this
  /// degrades to the per-op retry loop — one CAS per landing op — which is
  /// exactly the baseline the combining backend's batching is measured
  /// against. Results land in `results_out` aligned with `reqs`.
  void execute_batch(Ctx& ctx, std::span<const BatchRequest> reqs,
                     std::span<bool> results_out) {
    PC_ASSERT(results_out.size() >= reqs.size(),
              "execute_batch result span too small");
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      const BatchRequest& r = reqs[i];
      PC_DASSERT(r.kind == OpKind::kErase || r.value.has_value(),
                 "insert request without a value");
      results_out[i] = r.kind == OpKind::kInsert
                           ? insert(ctx, 0, r.key, *r.value)
                           : erase(ctx, 0, r.key);
    }
  }

  /// Single-writer bulk load of [first, last) (strictly increasing keys)
  /// as one installed version — pre-fill, not for concurrent use.
  template <class It>
    requires requires(Builder<Alloc>& b, It f, It l) {
      DS::from_sorted(b, f, l);
    }
  void seed_sorted(Ctx& ctx, It first, It last) {
    update(ctx, [&](DS cur, Builder<Alloc>& b) {
      PC_ASSERT(cur.root_ptr() == nullptr,
                "seed_sorted requires an empty structure");
      return DS::from_sorted(b, first, last);
    });
  }

 private:
  static const void* tag_empty(const EmptyRootSentinel* s) noexcept {
    return reinterpret_cast<const void*>(reinterpret_cast<std::uintptr_t>(s) |
                                         1u);
  }
  static const EmptyRootSentinel* untag_empty(const void* token) noexcept {
    PC_DASSERT(is_empty_token(token), "untag of a structural root");
    return reinterpret_cast<const EmptyRootSentinel*>(
        reinterpret_cast<std::uintptr_t>(token) & ~std::uintptr_t{1});
  }

  // Declared before root_: its address seeds root_'s initializer.
  EmptyRootSentinel initial_empty_;
  alignas(util::kCacheLine) std::atomic<const void*> root_{
      kNeverNullRoot ? tag_empty(&initial_empty_) : nullptr};
  alignas(util::kCacheLine) std::atomic<std::uint64_t> version_{1};
  Smr* smr_;
  RetireBackend* backend_;
};

}  // namespace pathcopy::core
