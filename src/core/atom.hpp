// Atom: the paper's universal construction.
//
// One Read/CAS register (Root_Ptr) holds the root of the current version
// of a persistent structure. Queries load the root under a reclaimer
// guard and run sequential code on the immutable snapshot. Updates
// path-copy a candidate version and try to swing the root with a single
// CAS, retrying from the new current version on failure (§2 of the
// paper). The construction is lock-free: a CAS failure implies some other
// update succeeded.
//
// The retry loop is exactly the code path whose cache behaviour the paper
// analyzes: a failed attempt leaves the search path resident in the
// retrying thread's cache, and because path copying shares everything off
// the copied path, the retry misses only on the ~2 nodes the winning
// update replaced (§3).
#pragma once

#include <atomic>
#include <cstdint>
#include <utility>

#include "core/builder.hpp"
#include "core/thread_context.hpp"
#include "util/align.hpp"
#include "util/assert.hpp"

namespace pathcopy::core {

/// Outcome of Atom::update.
enum class UpdateResult : std::uint8_t {
  kInstalled,  // a new version was published
  kNoChange,   // the operation was a semantic no-op on the current version
};

template <class DS, class Smr, class Alloc>
class Atom {
 public:
  using Node = typename DS::Node;
  using Ctx = ThreadContext<Smr, Alloc>;
  using RetireBackend = typename Alloc::RetireBackend;

  /// The retire backend is kept for teardown: the destructor frees the
  /// final version through it. It must outlive the Atom.
  Atom(Smr& smr, RetireBackend& backend) : smr_(&smr), backend_(&backend) {
    if constexpr (requires(Smr s) { s.note_root(nullptr, std::uint64_t{0}); }) {
      smr_->note_root(root_.load(std::memory_order_relaxed), 1);
    }
  }

  Atom(const Atom&) = delete;
  Atom& operator=(const Atom&) = delete;

  ~Atom() {
    const auto* root = static_cast<const Node*>(root_.load(std::memory_order_acquire));
    DS::destroy(root, *backend_);
  }

  /// Runs f on an immutable snapshot of the current version. f must not
  /// retain references past its return (the guard ends with the call);
  /// use snapshot-capable reclaimers for long-lived views.
  template <class F>
  decltype(auto) read(Ctx& ctx, F&& f) const {
    ++ctx.stats.reads;
    auto guard = smr_->pin(ctx.smr_handle, root_, version_);
    return std::forward<F>(f)(DS::from_root(guard.root()));
  }

  /// Applies f : (DS current, Builder&) -> DS candidate, retrying until a
  /// CAS installs the candidate. Returning a handle with the same root as
  /// the input signals a semantic no-op (e.g. inserting a present key) and
  /// skips the CAS entirely — the paper's "unsuccessful modification".
  template <class F>
  UpdateResult update(Ctx& ctx, F&& f) {
    Builder<Alloc> builder(*ctx.alloc);
    for (;;) {
      builder.reset();
      ++ctx.stats.attempts;
      auto guard = smr_->pin(ctx.smr_handle, root_, version_);
      const void* cur = guard.root();
      DS next = f(DS::from_root(cur), builder);
      const void* next_root = next.root_ptr();
      if (next_root == cur) {
        builder.rollback();
        ++ctx.stats.noop_updates;
        return UpdateResult::kNoChange;
      }
      builder.seal();
      const void* expected = cur;
      if (root_.compare_exchange_strong(expected, next_root,
                                        std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        // Version is bumped after the root swings, so the counter always
        // trails the root — the invariant the watermark reclaimer's
        // pin-then-load protocol relies on.
        const std::uint64_t death =
            version_.fetch_add(1, std::memory_order_seq_cst) + 1;
        smr_->retire_bundle(ctx.smr_handle, death, cur, next_root,
                            builder.commit());
        ++ctx.stats.updates;
        return UpdateResult::kInstalled;
      }
      builder.rollback();
      ++ctx.stats.cas_failures;
      // Loop: reread the (new) current version and rebuild. The nodes we
      // just recycled and the path we just walked are hot in cache.
    }
  }

  /// Current version counter (1 on construction, +1 per installed update).
  std::uint64_t version() const noexcept {
    return version_.load(std::memory_order_acquire);
  }

  /// Unguarded size probe — safe because size is read from the root node
  /// itself, which a concurrent reclaimer cannot free while it is current;
  /// callers needing linearizable reads should use read().
  std::size_t size(Ctx& ctx) const {
    return read(ctx, [](DS snapshot) { return snapshot.size(); });
  }

  /// For reclaimers supporting long-lived snapshots (WatermarkReclaimer).
  template <class S = Smr>
  auto snapshot() const -> decltype(std::declval<S&>().pin_snapshot(
      std::declval<const std::atomic<const void*>&>(),
      std::declval<const std::atomic<std::uint64_t>&>())) {
    return smr_->pin_snapshot(root_, version_);
  }

  Smr& reclaimer() noexcept { return *smr_; }

 private:
  alignas(util::kCacheLine) std::atomic<const void*> root_{nullptr};
  alignas(util::kCacheLine) std::atomic<std::uint64_t> version_{1};
  Smr* smr_;
  RetireBackend* backend_;
};

}  // namespace pathcopy::core
