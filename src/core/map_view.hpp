// MapView: ergonomic facade over Atom for ordered-map structures.
//
// Atom's lambda API is maximally general (arbitrary multi-key atomic
// transformations), but most call sites want a concurrent std::map-like
// interface. MapView binds an Atom to one thread's context and exposes
// the common operations directly. One MapView per thread; construction is
// cheap (two pointers).
//
//   pathcopy::core::MapView view(atom, ctx);
//   view.insert(42, 7);          // lock-free
//   view.contains(42);           // wait-free
//   view.get_or(42, -1);
//   view.update_value(42, [](int64_t v) { return v + 1; });  // atomic RMW
#pragma once

#include <cstddef>
#include <optional>
#include <utility>

#include "core/atom.hpp"

namespace pathcopy::core {

template <class DS, class Smr, class Alloc>
class MapView {
 public:
  using AtomT = Atom<DS, Smr, Alloc>;
  using Ctx = typename AtomT::Ctx;
  using Key = decltype(std::declval<const DS&>().min_node()->key);
  using Value = decltype(std::declval<const DS&>().min_node()->value);

  MapView(AtomT& atom, Ctx& ctx) noexcept : atom_(&atom), ctx_(&ctx) {}

  /// Returns true iff the key was newly inserted.
  bool insert(const Key& key, const Value& value) {
    return atom_->update(*ctx_, [&](DS m, auto& b) {
             return m.insert(b, key, value);
           }) == UpdateResult::kInstalled;
  }

  /// Inserts or overwrites; always installs a new version.
  void insert_or_assign(const Key& key, const Value& value) {
    atom_->update(*ctx_, [&](DS m, auto& b) {
      return m.insert_or_assign(b, key, value);
    });
  }

  /// Returns true iff the key was present and removed.
  bool erase(const Key& key) {
    return atom_->update(*ctx_, [&](DS m, auto& b) {
             return m.erase(b, key);
           }) == UpdateResult::kInstalled;
  }

  bool contains(const Key& key) const {
    return atom_->read(*ctx_, [&](DS m) { return m.contains(key); });
  }

  /// Copies the value out (the node cannot be referenced past the guard).
  std::optional<Value> get(const Key& key) const {
    return atom_->read(*ctx_, [&](DS m) -> std::optional<Value> {
      const Value* v = m.find(key);
      if (v == nullptr) return std::nullopt;
      return *v;
    });
  }

  Value get_or(const Key& key, Value fallback) const {
    auto v = get(key);
    return v.has_value() ? *std::move(v) : std::move(fallback);
  }

  /// Atomic read-modify-write of one key's value; no-op when absent.
  /// Returns true iff a new version was installed.
  template <class F>
  bool update_value(const Key& key, F&& f) {
    return atom_->update(*ctx_, [&](DS m, auto& b) {
             const Value* v = m.find(key);
             if (v == nullptr) return m;  // absent: same version
             return m.insert_or_assign(b, key, f(*v));
           }) == UpdateResult::kInstalled;
  }

  /// Inserts if absent, otherwise transforms the existing value. Always
  /// installs (upsert semantics).
  template <class F>
  void upsert(const Key& key, const Value& if_absent, F&& merge) {
    atom_->update(*ctx_, [&](DS m, auto& b) {
      const Value* v = m.find(key);
      if (v == nullptr) return m.insert(b, key, if_absent);
      return m.insert_or_assign(b, key, merge(*v));
    });
  }

  std::size_t size() const {
    return atom_->read(*ctx_, [](DS m) { return m.size(); });
  }
  bool empty() const { return size() == 0; }

  /// Smallest key >= key (by copy), if any.
  std::optional<Key> ceiling(const Key& key) const {
    return atom_->read(*ctx_, [&](DS m) -> std::optional<Key> {
      const auto* n = m.ceiling_node(key);
      if (n == nullptr) return std::nullopt;
      return n->key;
    });
  }

  /// Number of keys in [lo, hi).
  std::size_t count_range(const Key& lo, const Key& hi) const {
    return atom_->read(*ctx_, [&](DS m) { return m.count_range(lo, hi); });
  }

  /// Runs f(key, value) over a consistent snapshot of the whole map.
  /// Holds the read guard for the duration — keep f cheap, or use a
  /// snapshot-capable reclaimer for long scans.
  template <class F>
  void for_each(F&& f) const {
    atom_->read(*ctx_, [&](DS m) { m.for_each(f); });
  }

  AtomT& atom() noexcept { return *atom_; }

 private:
  AtomT* atom_;
  Ctx* ctx_;
};

}  // namespace pathcopy::core
