// Builder: the per-attempt recorder that makes path copying reclaimable.
//
// A modifying operation runs against an immutable version and produces a
// candidate new version. While doing so it:
//
//   * allocates every new node through builder.create<N>(...), which tags
//     the node kFresh and remembers how to destroy it, and
//   * declares every node it copies *out of the current version* via
//     builder.supersede(n).
//
// The universal construction then resolves the attempt:
//
//   * CAS won  — commit(): superseded published nodes become a retire
//     bundle for the reclaimer (they are still visible to readers of older
//     versions); fresh-dead nodes are recycled to the allocator instantly
//     (they were never published, no grace period applies).
//   * CAS lost — rollback(): every fresh node is recycled instantly, and
//     the superseded list is discarded. This immediate-reuse property is
//     what makes a failed attempt cheap: the retry allocates the same
//     still-cache-hot blocks again.
//
// seal() must be called after the candidate is final and before the CAS:
// it downgrades surviving fresh nodes to kPublished while they are still
// thread-private, so no post-publication write to shared memory occurs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/node_base.hpp"
#include "reclaim/retired.hpp"
#include "util/assert.hpp"

namespace pathcopy::core {

struct BuilderStats {
  std::uint64_t created = 0;
  std::uint64_t superseded_published = 0;
  std::uint64_t superseded_fresh = 0;
  std::uint64_t recycled = 0;
};

template <class Alloc>
class Builder {
 public:
  using RetireBackend = typename Alloc::RetireBackend;

  explicit Builder(Alloc& alloc) noexcept : alloc_(&alloc) {}
  Builder(const Builder&) = delete;
  Builder& operator=(const Builder&) = delete;

  /// Anything not committed is treated as a failed attempt.
  ~Builder() {
    if (!resolved_) rollback();
  }

  /// Allocates and constructs a node for the candidate version.
  template <class N, class... Args>
  const N* create(Args&&... args) {
    static_assert(std::is_base_of_v<PNode, N>, "nodes must derive from core::PNode");
    void* raw = alloc_->allocate(sizeof(N), alignof(N));
    N* node = ::new (raw) N(std::forward<Args>(args)...);
    node->pc_state_ = NodeState::kFresh;
    fresh_.push_back(FreshRec{node, &kill_thunk<N>});
    ++stats_.created;
    return node;
  }

  /// Declares that the candidate version no longer references n (the
  /// caller copied or dropped it). Published nodes join the retire set;
  /// fresh nodes are flagged dead and recycled when the attempt resolves.
  template <class N>
  void supersede(const N* n) noexcept {
    static_assert(std::is_base_of_v<PNode, N>, "nodes must derive from core::PNode");
    if (n->pc_state_ == NodeState::kPublished) {
      superseded_.push_back(reclaim::make_retired(n, alloc_->retire_backend()));
      ++stats_.superseded_published;
    } else {
      n->pc_state_ = NodeState::kFreshDead;
      ++stats_.superseded_fresh;
    }
  }

  /// Finalizes surviving fresh nodes to kPublished. Call exactly once,
  /// after the candidate is complete and before attempting the CAS.
  void seal() noexcept {
    PC_DASSERT(!sealed_, "seal called twice");
    for (const FreshRec& rec : fresh_) {
      PNode* node = static_cast<PNode*>(rec.p);
      if (node->pc_state_ == NodeState::kFresh) {
        node->pc_state_ = NodeState::kPublished;
      }
    }
    sealed_ = true;
  }

  /// CAS won: recycle fresh-dead nodes, hand back the retire set.
  std::vector<reclaim::Retired> commit() noexcept {
    PC_DASSERT(sealed_, "commit without seal");
    for (const FreshRec& rec : fresh_) {
      PNode* node = static_cast<PNode*>(rec.p);
      if (node->pc_state_ == NodeState::kFreshDead) {
        rec.kill(rec.p, *alloc_);
        ++stats_.recycled;
      }
    }
    fresh_.clear();
    resolved_ = true;
    return std::move(superseded_);
  }

  /// CAS lost (or the operation was abandoned): recycle everything this
  /// attempt allocated; forget the superseded set.
  void rollback() noexcept {
    for (const FreshRec& rec : fresh_) {
      rec.kill(rec.p, *alloc_);
      ++stats_.recycled;
    }
    fresh_.clear();
    superseded_.clear();
    resolved_ = true;
  }

  /// Re-arms the builder for the next attempt of a retry loop.
  void reset() noexcept {
    if (!resolved_) rollback();
    resolved_ = false;
    sealed_ = false;
  }

  const BuilderStats& stats() const noexcept { return stats_; }
  std::size_t fresh_count() const noexcept { return fresh_.size(); }
  std::size_t superseded_count() const noexcept { return superseded_.size(); }

  // Monotonic counters (they survive reset()), so a caller that spans
  // several attempts — e.g. the combining UC measuring what one batched
  // install copied versus what per-op application would have — can take
  // before/after deltas instead of threading its own tallies through the
  // structure code.
  std::uint64_t created_count() const noexcept { return stats_.created; }
  std::uint64_t superseded_published_count() const noexcept {
    return stats_.superseded_published;
  }

 private:
  struct FreshRec {
    void* p;
    void (*kill)(void*, Alloc&) noexcept;
  };

  template <class N>
  static void kill_thunk(void* p, Alloc& a) noexcept {
    auto* node = static_cast<N*>(p);
    node->~N();
    a.deallocate(p, sizeof(N), alignof(N));
  }

  Alloc* alloc_;
  std::vector<FreshRec> fresh_;
  std::vector<reclaim::Retired> superseded_;
  BuilderStats stats_;
  bool sealed_ = false;
  bool resolved_ = false;
};

}  // namespace pathcopy::core
