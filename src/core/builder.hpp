// Builder: the per-attempt recorder that makes path copying reclaimable.
//
// A modifying operation runs against an immutable version and produces a
// candidate new version. While doing so it:
//
//   * allocates every new node through builder.create<N>(...), which tags
//     the node kFresh and remembers how to destroy it, and
//   * declares every node it copies *out of the current version* via
//     builder.supersede(n).
//
// The universal construction then resolves the attempt:
//
//   * CAS won  — commit(): superseded published nodes become a retire
//     bundle for the reclaimer (they are still visible to readers of older
//     versions); fresh-dead nodes are recycled instantly (they were never
//     published, no grace period applies).
//   * CAS lost — rollback(): every fresh node is recycled instantly, and
//     the superseded list is discarded.
//
// "Recycled" means the raw block goes into the builder's private bin, not
// back to the allocator: the very next create<N>() of the same size class
// takes it straight out again, still cache-hot. A contended retry loop
// therefore allocates its O(log n) path once and replays it from the bin
// on every failed CAS — O(retries × log n) allocations become O(log n).
// This is safe with zero grace period because a failed attempt's nodes
// were never installed: no other thread can hold a reference. The bin
// survives reset() (so it spans a retry loop) and drains back to the
// allocator only when the builder dies. set_recycling(false) restores the
// immediate-deallocate behaviour for A/B measurement.
//
// seal() must be called after the candidate is final and before the CAS:
// it downgrades surviving fresh nodes to kPublished while they are still
// thread-private, so no post-publication write to shared memory occurs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/node_base.hpp"
#include "core/stats.hpp"
#include "reclaim/retired.hpp"
#include "util/assert.hpp"

namespace pathcopy::core {

struct BuilderStats {
  std::uint64_t created = 0;
  std::uint64_t superseded_published = 0;
  std::uint64_t superseded_fresh = 0;
  std::uint64_t recycled = 0;  // nodes returned to the bin (or allocator)
  std::uint64_t reused = 0;    // create() calls served from the bin
};

template <class Alloc>
class Builder {
 public:
  using RetireBackend = typename Alloc::RetireBackend;

  explicit Builder(Alloc& alloc) noexcept : alloc_(&alloc) {}
  Builder(const Builder&) = delete;
  Builder& operator=(const Builder&) = delete;

  /// Anything not committed is treated as a failed attempt.
  ~Builder() {
    if (!resolved_) rollback();
    for (const Bin& bin : bins_) {
      for (void* p : bin.blocks) {
        alloc_->deallocate(p, bin.bytes, bin.align);
      }
    }
  }

  /// When off, recycled blocks go straight back to the allocator instead
  /// of the bin (the pre-recycling behaviour, kept for A/B runs).
  void set_recycling(bool on) noexcept { recycle_ = on; }
  bool recycling() const noexcept { return recycle_; }

  /// Allocates and constructs a node for the candidate version. Prefers a
  /// same-class block recycled from a previous failed attempt.
  template <class N, class... Args>
  const N* create(Args&&... args) {
    static_assert(std::is_base_of_v<PNode, N>, "nodes must derive from core::PNode");
    static_assert(sizeof(N) <= ~std::uint32_t{0}, "node too large");
    void* raw = take(static_cast<std::uint32_t>(sizeof(N)),
                     static_cast<std::uint32_t>(alignof(N)));
    if (raw != nullptr) {
      ++stats_.reused;
    } else {
      raw = alloc_->allocate(sizeof(N), alignof(N));
    }
    N* node = ::new (raw) N(std::forward<Args>(args)...);
    node->pc_state_ = NodeState::kFresh;
    fresh_.push_back(FreshRec{node, &dtor_thunk<N>,
                              static_cast<std::uint32_t>(sizeof(N)),
                              static_cast<std::uint32_t>(alignof(N))});
    ++stats_.created;
    return node;
  }

  /// Declares that the candidate version no longer references n (the
  /// caller copied or dropped it). Published nodes join the retire set;
  /// fresh nodes are flagged dead and recycled when the attempt resolves.
  ///
  /// N must be the node's dynamic type: the retire record frees with
  /// sizeof(N), so superseding through a base pointer would report the
  /// wrong size class. Structures with several node kinds downcast
  /// before calling (BTree::supersede_node switches on kind; Hamt's
  /// sites are all concretely typed). PoolBackend's debug size-class
  /// registry asserts the claimed class at free time.
  template <class N>
  void supersede(const N* n) noexcept {
    static_assert(std::is_base_of_v<PNode, N>, "nodes must derive from core::PNode");
    if (n->pc_state_ == NodeState::kPublished) {
      superseded_.push_back(reclaim::make_retired(n, alloc_->retire_backend()));
      ++stats_.superseded_published;
    } else {
      n->pc_state_ = NodeState::kFreshDead;
      ++stats_.superseded_fresh;
    }
  }

  /// Finalizes surviving fresh nodes to kPublished. Call exactly once,
  /// after the candidate is complete and before attempting the CAS.
  void seal() noexcept {
    PC_DASSERT(!sealed_, "seal called twice");
    for (const FreshRec& rec : fresh_) {
      PNode* node = static_cast<PNode*>(rec.p);
      if (node->pc_state_ == NodeState::kFresh) {
        node->pc_state_ = NodeState::kPublished;
      }
    }
    sealed_ = true;
  }

  /// CAS won: recycle fresh-dead nodes, hand back the retire set.
  std::vector<reclaim::Retired> commit() noexcept {
    PC_DASSERT(sealed_, "commit without seal");
    for (const FreshRec& rec : fresh_) {
      PNode* node = static_cast<PNode*>(rec.p);
      if (node->pc_state_ == NodeState::kFreshDead) {
        recycle(rec);
      }
    }
    fresh_.clear();
    resolved_ = true;
    return std::move(superseded_);
  }

  /// CAS lost (or the operation was abandoned): recycle everything this
  /// attempt allocated; forget the superseded set. Safe without a grace
  /// period — a losing attempt's nodes were never reachable from the
  /// shared root, so no reader can hold them.
  void rollback() noexcept {
    for (const FreshRec& rec : fresh_) {
      recycle(rec);
    }
    fresh_.clear();
    superseded_.clear();
    resolved_ = true;
  }

  /// Re-arms the builder for the next attempt of a retry loop. The bin is
  /// deliberately kept: its blocks feed the retry's create() calls.
  void reset() noexcept {
    if (!resolved_) rollback();
    resolved_ = false;
    sealed_ = false;
  }

  const BuilderStats& stats() const noexcept { return stats_; }
  std::size_t fresh_count() const noexcept { return fresh_.size(); }
  std::size_t superseded_count() const noexcept { return superseded_.size(); }
  /// Blocks currently parked in the recycle bin.
  std::size_t bin_count() const noexcept {
    std::size_t n = 0;
    for (const Bin& bin : bins_) n += bin.blocks.size();
    return n;
  }

  // Monotonic counters (they survive reset()), so a caller that spans
  // several attempts — e.g. the combining UC measuring what one batched
  // install copied versus what per-op application would have — can take
  // before/after deltas instead of threading its own tallies through the
  // structure code.
  std::uint64_t created_count() const noexcept { return stats_.created; }
  std::uint64_t superseded_published_count() const noexcept {
    return stats_.superseded_published;
  }
  std::uint64_t reused_count() const noexcept { return stats_.reused; }

 private:
  struct FreshRec {
    void* p;
    void (*dtor)(void*) noexcept;
    std::uint32_t bytes;
    std::uint32_t align;
  };

  /// One size class's parked blocks. A structure typically allocates one
  /// or two node types, so linear search over bins_ beats any map.
  struct Bin {
    std::uint32_t bytes;
    std::uint32_t align;
    std::vector<void*> blocks;
  };

  template <class N>
  static void dtor_thunk(void* p) noexcept {
    static_cast<N*>(p)->~N();
  }

  void* take(std::uint32_t bytes, std::uint32_t align) noexcept {
    for (Bin& bin : bins_) {
      if (bin.bytes == bytes && bin.align == align && !bin.blocks.empty()) {
        void* p = bin.blocks.back();
        bin.blocks.pop_back();
        return p;
      }
    }
    return nullptr;
  }

  void recycle(const FreshRec& rec) noexcept {
    rec.dtor(rec.p);
    ++stats_.recycled;
    if (!recycle_) {
      alloc_->deallocate(rec.p, rec.bytes, rec.align);
      return;
    }
    for (Bin& bin : bins_) {
      if (bin.bytes == rec.bytes && bin.align == rec.align) {
        bin.blocks.push_back(rec.p);
        return;
      }
    }
    bins_.push_back(Bin{rec.bytes, rec.align, {rec.p}});
  }

  Alloc* alloc_;
  std::vector<FreshRec> fresh_;
  std::vector<reclaim::Retired> superseded_;
  std::vector<Bin> bins_;
  BuilderStats stats_;
  bool sealed_ = false;
  bool resolved_ = false;
  bool recycle_ = true;
};

/// Folds a builder's monotonic recycling tallies into the thread's
/// OpStats when the owning scope exits — one declaration covers every
/// return path of a function-local builder. Declare it AFTER the builder
/// so it runs while the builder is still alive.
template <class Alloc>
class RecycleScope {
 public:
  RecycleScope(OpStats& stats, const Builder<Alloc>& builder) noexcept
      : stats_(&stats), builder_(&builder), base_(builder.reused_count()) {}
  RecycleScope(const RecycleScope&) = delete;
  RecycleScope& operator=(const RecycleScope&) = delete;
  ~RecycleScope() {
    stats_->recycled_nodes += builder_->reused_count() - base_;
  }

 private:
  OpStats* stats_;
  const Builder<Alloc>* builder_;
  std::uint64_t base_;
};

}  // namespace pathcopy::core
