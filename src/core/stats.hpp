// Per-thread operation statistics for the universal construction.
//
// Plain (non-atomic) counters owned by one thread's context; aggregate
// after joining workers. attempts - successes - noops = CAS failures, the
// quantity the paper's analysis is built on.
#pragma once

#include <cstdint>

namespace pathcopy::core {

struct OpStats {
  std::uint64_t reads = 0;
  std::uint64_t updates = 0;        // update() calls that installed a version
  std::uint64_t noop_updates = 0;   // update() calls that changed nothing
  std::uint64_t attempts = 0;       // every pass through the retry loop
  std::uint64_t cas_failures = 0;
  // Combining-UC extras (zero for the plain Atom):
  std::uint64_t combined_ops = 0;        // announced ops absorbed by my installs
  std::uint64_t helped_completions = 0;  // my ops completed by someone else

  OpStats& operator+=(const OpStats& o) noexcept {
    reads += o.reads;
    updates += o.updates;
    noop_updates += o.noop_updates;
    attempts += o.attempts;
    cas_failures += o.cas_failures;
    combined_ops += o.combined_ops;
    helped_completions += o.helped_completions;
    return *this;
  }

  /// Mean retries per successful update; 0 when uncontended.
  double failure_ratio() const noexcept {
    return updates == 0 ? 0.0
                        : static_cast<double>(cas_failures) /
                              static_cast<double>(updates);
  }
};

}  // namespace pathcopy::core
