// Per-thread operation statistics for the universal construction.
//
// Plain (non-atomic) counters owned by one thread's context; aggregate
// after joining workers. attempts - successes - noops = CAS failures, the
// quantity the paper's analysis is built on.
#pragma once

#include <array>
#include <cstdint>

namespace pathcopy::core {

struct OpStats {
  /// Histogram buckets for combining batch sizes:
  /// 1 / 2 / 3-4 / 5-8 / 9-16 / 17-32 / 33+.
  static constexpr unsigned kBatchHistBuckets = 7;

  std::uint64_t reads = 0;
  std::uint64_t updates = 0;        // update() calls that installed a version
  std::uint64_t noop_updates = 0;   // update() calls that changed nothing
  std::uint64_t attempts = 0;       // every pass through the retry loop
  std::uint64_t cas_failures = 0;
  // Combining-UC extras (zero for the plain Atom):
  std::uint64_t combined_ops = 0;        // announced ops absorbed by my installs
  std::uint64_t helped_completions = 0;  // my ops completed by someone else
  // Sorted-batch fast-path extras (zero when batching is off/unsupported):
  std::uint64_t batched_installs = 0;  // installs that used apply_sorted_batch
  std::uint64_t batched_ops = 0;       // announced ops absorbed by those
  std::uint64_t spine_copies_saved = 0;  // est. per-op node copies avoided
  std::uint64_t batch_declines = 0;      // batches the fanout gate sent per-op
  std::array<std::uint64_t, kBatchHistBuckets> batch_hist{};
  // Batched-read (multi_get) extras (zero when every read is per-key).
  // `reads` above counts every probe key too, so batched_reads / reads is
  // the share of reads that rode a batched probe:
  std::uint64_t read_batches = 0;         // multi_get probe sweeps run
  std::uint64_t batched_reads = 0;        // probe keys resolved by those
  std::uint64_t probe_nodes_visited = 0;  // nodes the shared sweeps touched
  std::uint64_t probe_nodes_saved = 0;    // per-key-descent nodes avoided
  std::array<std::uint64_t, kBatchHistBuckets> read_batch_hist{};
  // Shard-executor extras (counted by a shard's worker thread; zero when
  // the store runs executor-less):
  std::uint64_t exec_tasks = 0;         // sub-batches executed
  std::uint64_t exec_wakes = 0;         // non-empty lane drains
  std::uint64_t exec_spin_wakes = 0;    // work arrived during the spin phase
  std::uint64_t exec_parks = 0;         // futex parks (idle lane slept)
  std::uint64_t exec_coalesced_installs = 0;  // merged multi-ticket executes
  std::uint64_t exec_coalesced_tasks = 0;     // tasks absorbed by those
  std::uint64_t exec_read_sweeps = 0;  // merged read mega-probes (one/wake)
  std::uint64_t exec_read_tasks = 0;   // read tickets absorbed by those
  std::uint64_t exec_task_samples = 0;  // tasks with a sampled latency stamp
  std::uint64_t exec_task_ns = 0;       // submit -> completion, sampled only
  // Consistent-cut extras (counted by the reading session per shard):
  std::uint64_t cut_reads = 0;    // stable cut participations of this shard
  std::uint64_t cut_retries = 0;  // re-pins because this shard's version moved
  // Rebalancing extras (epoch_retries counted by sessions whose op or cut
  // raced a topology flip; mig_keys_* counted by the Rebalancer per shard):
  std::uint64_t epoch_retries = 0;  // ops/cuts re-run against a flipping epoch
  std::uint64_t mig_keys_in = 0;    // keys migrated INTO this shard
  std::uint64_t mig_keys_out = 0;   // keys migrated OUT of this shard
  // Failed-install recycling extras (counted at each builder-owning call
  // site; zero when recycling is disabled or the cell is uncontended):
  std::uint64_t failed_attempt_nodes = 0;  // fresh nodes a losing CAS threw away
  std::uint64_t recycled_nodes = 0;        // create() calls served from the bin

  OpStats& operator+=(const OpStats& o) noexcept {
    reads += o.reads;
    updates += o.updates;
    noop_updates += o.noop_updates;
    attempts += o.attempts;
    cas_failures += o.cas_failures;
    combined_ops += o.combined_ops;
    helped_completions += o.helped_completions;
    batched_installs += o.batched_installs;
    batched_ops += o.batched_ops;
    spine_copies_saved += o.spine_copies_saved;
    batch_declines += o.batch_declines;
    for (unsigned i = 0; i < kBatchHistBuckets; ++i) {
      batch_hist[i] += o.batch_hist[i];
    }
    read_batches += o.read_batches;
    batched_reads += o.batched_reads;
    probe_nodes_visited += o.probe_nodes_visited;
    probe_nodes_saved += o.probe_nodes_saved;
    for (unsigned i = 0; i < kBatchHistBuckets; ++i) {
      read_batch_hist[i] += o.read_batch_hist[i];
    }
    exec_tasks += o.exec_tasks;
    exec_wakes += o.exec_wakes;
    exec_spin_wakes += o.exec_spin_wakes;
    exec_parks += o.exec_parks;
    exec_coalesced_installs += o.exec_coalesced_installs;
    exec_coalesced_tasks += o.exec_coalesced_tasks;
    exec_read_sweeps += o.exec_read_sweeps;
    exec_read_tasks += o.exec_read_tasks;
    exec_task_samples += o.exec_task_samples;
    exec_task_ns += o.exec_task_ns;
    cut_reads += o.cut_reads;
    cut_retries += o.cut_retries;
    epoch_retries += o.epoch_retries;
    mig_keys_in += o.mig_keys_in;
    mig_keys_out += o.mig_keys_out;
    failed_attempt_nodes += o.failed_attempt_nodes;
    recycled_nodes += o.recycled_nodes;
    return *this;
  }

  /// Mean tasks absorbed per worker wakeup — the coalescing quantity: a
  /// value above 1 means backed-up lanes are merging tickets into shared
  /// installs. 0 when the store ran executor-less.
  double tickets_per_wake() const noexcept {
    return exec_wakes == 0 ? 0.0
                           : static_cast<double>(exec_tasks) /
                                 static_cast<double>(exec_wakes);
  }

  /// Mean submit-to-completion latency of one executor task,
  /// microseconds, over the SAMPLED tasks only (submit stamps every Nth
  /// task — see ShardExecutor — so this is an estimate, not a census).
  double mean_task_us() const noexcept {
    return exec_task_samples == 0
               ? 0.0
               : static_cast<double>(exec_task_ns) / 1000.0 /
                     static_cast<double>(exec_task_samples);
  }

  /// Bucket index for a batch of b ops (b >= 1).
  static unsigned batch_bucket(std::uint64_t b) noexcept {
    if (b <= 2) return b <= 1 ? 0u : 1u;
    unsigned i = 2;
    std::uint64_t hi = 4;
    while (i + 1 < kBatchHistBuckets && b > hi) {
      ++i;
      hi <<= 1;
    }
    return i;
  }

  static const char* batch_bucket_label(unsigned i) noexcept {
    static constexpr const char* kLabels[kBatchHistBuckets] = {
        "1", "2", "3-4", "5-8", "9-16", "17-32", "33+"};
    return i < kBatchHistBuckets ? kLabels[i] : "?";
  }

  /// Mean probe keys per multi_get sweep; 0 when none ran.
  double mean_read_batch() const noexcept {
    return read_batches == 0 ? 0.0
                             : static_cast<double>(batched_reads) /
                                   static_cast<double>(read_batches);
  }

  /// Share of reads that rode a batched probe; 0 when no reads ran.
  double read_batched_share() const noexcept {
    return reads == 0 ? 0.0
                      : static_cast<double>(batched_reads) /
                            static_cast<double>(reads);
  }

  /// Mean read tickets absorbed per merged read sweep — the read-side
  /// coalescing quantity (the --assert-read-coalesce gate): above 1 means
  /// backed-up lanes are merging read tickets into shared probes. 0 when
  /// no read task ever rode the executor.
  double read_tickets_per_wake() const noexcept {
    return exec_read_sweeps == 0 ? 0.0
                                 : static_cast<double>(exec_read_tasks) /
                                       static_cast<double>(exec_read_sweeps);
  }

  /// Mean announced ops per batched install; 0 when none happened.
  double mean_batch_size() const noexcept {
    return batched_installs == 0 ? 0.0
                                 : static_cast<double>(batched_ops) /
                                       static_cast<double>(batched_installs);
  }

  /// Share of failed-attempt nodes whose blocks a later create() reused;
  /// 0 when no attempt ever failed.
  double recycle_ratio() const noexcept {
    return failed_attempt_nodes == 0
               ? 0.0
               : static_cast<double>(recycled_nodes) /
                     static_cast<double>(failed_attempt_nodes);
  }

  /// Mean retries per successful update; 0 when uncontended.
  double failure_ratio() const noexcept {
    return updates == 0 ? 0.0
                        : static_cast<double>(cas_failures) /
                              static_cast<double>(updates);
  }
};

}  // namespace pathcopy::core
