// CombiningAtom: a wait-free combining universal construction in the
// style of Fatourou & Kallimanis's P-Sim (the "efficient UC for large
// objects" lineage the paper's introduction cites as [1]), specialized to
// path-copying structures.
//
// The plain Atom serializes one CAS per successful update; under
// contention each winner invalidates P-1 candidate versions. Combining
// amortizes that: every updater *announces* its operation in a per-thread
// slot, and whoever wins the root CAS applies *all* pending announced
// operations in one batch, so one CAS can complete up to P operations.
//
// What makes helping safe here is that responses travel with the version:
// the root pointer addresses a VersionRec holding the structure root plus
// per-slot (applied sequence number, result) arrays. Installing a version
// atomically publishes which announced operations it absorbed and their
// results — the classic double-apply race (combiner A installs op X, then
// combiner B, who gathered X before A's install, applies X again) is
// impossible because B built against the superseded VersionRec, so B's
// CAS must fail and its candidate is discarded.
//
// Operations are reified (insert/erase descriptors) rather than arbitrary
// lambdas: a helper must be able to execute your operation from the
// announcement alone. That is the standard price of helping-based UCs.
//
// Progress: wait-free for updates, with a small constant bound. The
// two-install lemma: any install whose gather began after my announce
// absorbs my operation (the gather scans every slot). An install that
// misses me must have gathered before my announce; the *next* winner
// pinned the version that install produced — i.e. after it — so its
// gather runs after my announce and absorbs me. Hence my operation is
// complete after at most two installs following the announce. My retry
// loop iterates only when my own CAS fails, which happens only because
// some install occurred; therefore the loop runs at most ~three times
// before the applied_seq check returns my published result. Each
// iteration is bounded work (one gather + one candidate build), so the
// step count is bounded — wait-freedom, not just lock-freedom, and
// population-oblivious at that.
//
// This is also the paper's most natural "what if we fixed the write
// bottleneck" extension: the combining ablation bench (E10) measures it
// against the plain Atom under the paper's workloads.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <utility>

#include "core/builder.hpp"
#include "core/node_base.hpp"
#include "core/thread_context.hpp"
#include "util/align.hpp"
#include "util/assert.hpp"

namespace pathcopy::core {

template <class DS, class Smr, class Alloc, unsigned MaxThreads = 32>
class CombiningAtom {
 public:
  using Ctx = ThreadContext<Smr, Alloc>;
  using RetireBackend = typename Alloc::RetireBackend;
  using Key = typename DS::KeyType;
  using Value = typename DS::ValueType;

  enum class OpKind : std::uint8_t { kInsert, kErase };

  /// The unit the root pointer addresses: structure root + the response
  /// state of every announcement slot. Immutable once published, like any
  /// path-copied node, and reclaimed through the same retire pipeline.
  struct VersionRec : PNode {
    const void* ds_root;
    std::array<std::uint64_t, MaxThreads> applied_seq;
    std::array<bool, MaxThreads> last_result;
    VersionRec(const void* root,
               const std::array<std::uint64_t, MaxThreads>& seqs,
               const std::array<bool, MaxThreads>& results)
        : ds_root(root), applied_seq(seqs), last_result(results) {}
  };

  CombiningAtom(Smr& smr, Alloc& alloc)
      : smr_(&smr), backend_(alloc.retire_backend()) {
    void* raw = alloc.allocate(sizeof(VersionRec), alignof(VersionRec));
    auto* vr = ::new (raw)
        VersionRec(nullptr, std::array<std::uint64_t, MaxThreads>{},
                   std::array<bool, MaxThreads>{});
    vr->pc_state_ = NodeState::kPublished;
    root_.store(vr, std::memory_order_release);
    if constexpr (requires(Smr s) { s.note_root(nullptr, std::uint64_t{0}); }) {
      smr_->note_root(vr, 1);
    }
  }

  CombiningAtom(const CombiningAtom&) = delete;
  CombiningAtom& operator=(const CombiningAtom&) = delete;

  ~CombiningAtom() {
    const auto* vr =
        static_cast<const VersionRec*>(root_.load(std::memory_order_acquire));
    DS::destroy(static_cast<const typename DS::Node*>(vr->ds_root), *backend_);
    vr->~VersionRec();
    backend_->free_bytes(const_cast<VersionRec*>(vr), sizeof(VersionRec),
                         alignof(VersionRec));
  }

  /// Claims an announcement slot for the calling thread. Slots are never
  /// recycled; at most MaxThreads updaters may ever register.
  unsigned register_slot() {
    const unsigned s = next_slot_.fetch_add(1, std::memory_order_relaxed);
    PC_ASSERT(s < MaxThreads, "CombiningAtom slot capacity exhausted");
    return s;
  }

  /// Returns true iff the key was newly inserted.
  bool insert(Ctx& ctx, unsigned slot, const Key& key, const Value& value) {
    return run_op(ctx, slot, OpKind::kInsert, key, value);
  }

  /// Returns true iff the key was present and removed.
  bool erase(Ctx& ctx, unsigned slot, const Key& key) {
    return run_op(ctx, slot, OpKind::kErase, key, Value{});
  }

  /// Runs f on an immutable snapshot of the current structure.
  template <class F>
  decltype(auto) read(Ctx& ctx, F&& f) const {
    ++ctx.stats.reads;
    auto guard = smr_->pin(ctx.smr_handle, root_, version_);
    const auto* vr = static_cast<const VersionRec*>(guard.root());
    return std::forward<F>(f)(DS::from_root(vr->ds_root));
  }

  std::uint64_t version() const noexcept {
    return version_.load(std::memory_order_acquire);
  }

  std::size_t size(Ctx& ctx) const {
    return read(ctx, [](DS snapshot) { return snapshot.size(); });
  }

 private:
  /// One announcement slot. The owner writes payload fields, then bumps
  /// seq with release; combiners read seq with acquire before the
  /// payload. A combiner can only observe a payload newer than the seq it
  /// read if the root already moved past its pinned version — in which
  /// case its CAS is doomed and the misread candidate is discarded.
  struct alignas(util::kCacheLine) AnnounceSlot {
    std::atomic<std::uint64_t> seq{0};
    OpKind kind{OpKind::kInsert};
    Key key{};
    Value value{};
  };

  bool run_op(Ctx& ctx, unsigned slot, OpKind kind, const Key& key,
              const Value& value) {
    AnnounceSlot& mine = slots_[slot];
    const std::uint64_t seq = mine.seq.load(std::memory_order_relaxed) + 1;
    mine.kind = kind;
    mine.key = key;
    mine.value = value;
    mine.seq.store(seq, std::memory_order_release);

    Builder<Alloc> builder(*ctx.alloc);
    for (;;) {
      builder.reset();
      ++ctx.stats.attempts;
      auto guard = smr_->pin(ctx.smr_handle, root_, version_);
      const auto* vr = static_cast<const VersionRec*>(guard.root());
      if (vr->applied_seq[slot] >= seq) {
        // Another combiner already absorbed this announcement.
        builder.rollback();
        ++ctx.stats.helped_completions;
        return vr->last_result[slot];
      }
      DS ds = DS::from_root(vr->ds_root);
      std::array<std::uint64_t, MaxThreads> applied = vr->applied_seq;
      std::array<bool, MaxThreads> results = vr->last_result;
      std::uint64_t batched = 0;
      const unsigned live = next_slot_.load(std::memory_order_acquire);
      for (unsigned i = 0; i < live && i < MaxThreads; ++i) {
        const std::uint64_t si = slots_[i].seq.load(std::memory_order_acquire);
        if (si <= vr->applied_seq[i]) continue;
        const OpKind op = slots_[i].kind;
        const Key k = slots_[i].key;
        const Value v = slots_[i].value;
        if (slots_[i].seq.load(std::memory_order_acquire) != si) {
          continue;  // re-announced mid-read; skip the torn payload
        }
        DS next = op == OpKind::kInsert ? ds.insert(builder, k, v)
                                        : ds.erase(builder, k);
        results[i] = next.root_ptr() != ds.root_ptr();
        applied[i] = si;
        ds = next;
        ++batched;
      }
      PC_DASSERT(applied[slot] >= seq, "own announcement must be gathered");
      const VersionRec* nvr = builder.template create<VersionRec>(
          ds.root_ptr(), applied, results);
      builder.supersede(vr);
      builder.seal();
      const void* expected = vr;
      if (root_.compare_exchange_strong(expected, nvr,
                                        std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        const std::uint64_t death =
            version_.fetch_add(1, std::memory_order_seq_cst) + 1;
        smr_->retire_bundle(ctx.smr_handle, death, vr, nvr, builder.commit());
        ++ctx.stats.updates;
        ctx.stats.combined_ops += batched;
        return nvr->last_result[slot];
      }
      builder.rollback();
      ++ctx.stats.cas_failures;
    }
  }

  alignas(util::kCacheLine) std::atomic<const void*> root_{nullptr};
  alignas(util::kCacheLine) std::atomic<std::uint64_t> version_{1};
  alignas(util::kCacheLine) std::atomic<unsigned> next_slot_{0};
  std::array<AnnounceSlot, MaxThreads> slots_{};
  Smr* smr_;
  RetireBackend* backend_;
};

}  // namespace pathcopy::core
