// CombiningAtom: a wait-free combining universal construction in the
// style of Fatourou & Kallimanis's P-Sim (the "efficient UC for large
// objects" lineage the paper's introduction cites as [1]), specialized to
// path-copying structures.
//
// The plain Atom serializes one CAS per successful update; under
// contention each winner invalidates P-1 candidate versions. Combining
// amortizes that: every updater *announces* its operation in a per-thread
// slot, and whoever wins the root CAS applies *all* pending announced
// operations in one batch, so one CAS can complete up to P operations.
//
// What makes helping safe here is that responses travel with the version:
// the root pointer addresses a VersionRec holding the structure root plus
// per-slot (applied sequence number, result) arrays. Installing a version
// atomically publishes which announced operations it absorbed and their
// results — the classic double-apply race (combiner A installs op X, then
// combiner B, who gathered X before A's install, applies X again) is
// impossible because B built against the superseded VersionRec, so B's
// CAS must fail and its candidate is discarded.
//
// Operations are reified (insert/erase descriptors) rather than arbitrary
// lambdas: a helper must be able to execute your operation from the
// announcement alone. That is the standard price of helping-based UCs.
//
// Progress: wait-free for updates, with a small constant bound. The
// two-install lemma: any install whose gather began after my announce
// absorbs my operation (the gather scans every slot). An install that
// misses me must have gathered before my announce; the *next* winner
// pinned the version that install produced — i.e. after it — so its
// gather runs after my announce and absorbs me. Hence my operation is
// complete after at most two installs following the announce. My retry
// loop iterates only when my own CAS fails, which happens only because
// some install occurred; therefore the loop runs at most ~three times
// before the applied_seq check returns my published result. Each
// iteration is bounded work (one gather + one candidate build), so the
// step count is bounded — wait-freedom, not just lock-freedom, and
// population-oblivious at that.
//
// This is also the paper's most natural "what if we fixed the write
// bottleneck" extension: the combining ablation bench (E10) measures it
// against the plain Atom under the paper's workloads.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/builder.hpp"
#include "core/node_base.hpp"
#include "core/thread_context.hpp"
#include "core/universal.hpp"
#include "util/align.hpp"
#include "util/assert.hpp"
#include "util/modelcheck.hpp"
#include "util/racy_cell.hpp"

namespace pathcopy::core {

/// Detects the sorted-batch bulk-update protocol (persist/batch.hpp): the
/// structure aliases BatchOp/BatchOutcome/KeyCompare and applies a
/// key-sorted, key-unique span in one sweep. Structures without it fall
/// back to per-op application inside the combiner.
template <class DS, class B>
concept SupportsSortedBatch =
    requires(const DS ds, B& b, std::span<const typename DS::BatchOp> ops,
             std::span<typename DS::BatchOutcome> outs,
             typename DS::KeyCompare cmp, typename DS::KeyType key) {
      { ds.apply_sorted_batch(b, ops, outs) } -> std::same_as<DS>;
      { cmp(key, key) } -> std::convertible_to<bool>;
    };

/// Detects wide-fanout structures that can price a batch before applying
/// it: kBatchFanout reports the node width, count_leaf_runs the number of
/// distinct leaves a key-sorted batch would touch. The combiner uses the
/// pair to skip the sorted sweep when a batch is unclustered — on a wide
/// leaf every landing op rewrites the whole leaf, so a batch that puts
/// ~one op per leaf pays full leaf-rewrite cost per op *plus* the
/// partition machinery, losing to the per-op loop (the btree8 uniform-key
/// regression measured in bench_batch_combining).
template <class DS>
concept ReportsBatchFanout =
    requires(const DS ds, std::span<const typename DS::BatchOp> ops,
             unsigned max_runs, std::size_t* ops_covered) {
      { DS::kBatchFanout } -> std::convertible_to<unsigned>;
      // The capped, coverage-reporting form is what the gate calls; a
      // structure modeling the concept must accept it (defaulted
      // arguments on the structure side are fine).
      { ds.count_leaf_runs(ops, max_runs, ops_covered) }
          -> std::convertible_to<unsigned>;
    };

/// Optional per-structure override of the gate's density demand — the
/// cost-model constant alongside kBatchFanout. A structure whose batch
/// machinery costs more per touched leaf than a leaf rewrite (e.g. the
/// red-black tree's join/recoloring cascade, priced in virtual leaves)
/// declares how many ops must share a leaf before its sorted sweep pays;
/// structures without it get the combiner's default.
template <class DS>
concept ReportsBatchThreshold = requires {
  { DS::kBatchMinOpsPerLeaf } -> std::convertible_to<unsigned>;
};

template <class DS, class Smr, class Alloc, unsigned MaxThreads = 32>
class CombiningAtom {
 public:
  using Ctx = ThreadContext<Smr, Alloc>;
  using RetireBackend = typename Alloc::RetireBackend;
  // Unified universal-construction vocabulary (core/universal.hpp).
  using Structure = DS;
  using SmrType = Smr;
  using AllocType = Alloc;
  using Key = typename DS::KeyType;
  using Value = typename DS::ValueType;

  // Announcement payloads are read by combiners racing with the owner's
  // next announcement; the seq re-check discards any torn copy, but the
  // copy itself must therefore be harmless on garbage bytes — i.e.
  // trivially copyable. (std::optional<Value> of a trivially copyable
  // Value is itself trivially copyable, so the optional wrapper that
  // frees Value from default-constructibility keeps this property.)
  static_assert(std::is_trivially_copyable_v<Key>,
                "CombiningAtom keys must be trivially copyable");
  static_assert(std::is_trivially_copyable_v<Value>,
                "CombiningAtom values must be trivially copyable");

  using OpKind = core::OpKind;

  /// The unit the root pointer addresses: structure root + the response
  /// state of every announcement slot + the version this record was
  /// installed as. Immutable once published, like any path-copied node,
  /// and reclaimed through the same retire pipeline. Carrying the version
  /// in the record is what makes pin_versioned exactly atomic here: the
  /// one pointer load that pins the snapshot also pins its label.
  struct VersionRec : PNode {
    const void* ds_root;
    std::uint64_t version;
    std::array<std::uint64_t, MaxThreads> applied_seq;
    std::array<bool, MaxThreads> last_result;
    VersionRec(const void* root, std::uint64_t v,
               const std::array<std::uint64_t, MaxThreads>& seqs,
               const std::array<bool, MaxThreads>& results)
        : ds_root(root), version(v), applied_seq(seqs), last_result(results) {}
  };

  CombiningAtom(Smr& smr, Alloc& alloc)
      : smr_(&smr), backend_(alloc.retire_backend()) {
    void* raw = alloc.allocate(sizeof(VersionRec), alignof(VersionRec));
    auto* vr = ::new (raw)
        VersionRec(nullptr, 1, std::array<std::uint64_t, MaxThreads>{},
                   std::array<bool, MaxThreads>{});
    vr->pc_state_ = NodeState::kPublished;
    root_.store(vr, std::memory_order_release);
  }

  CombiningAtom(const CombiningAtom&) = delete;
  CombiningAtom& operator=(const CombiningAtom&) = delete;

  ~CombiningAtom() {
    const auto* vr =
        static_cast<const VersionRec*>(root_.load(std::memory_order_acquire));
    DS::destroy(static_cast<const typename DS::Node*>(vr->ds_root), *backend_);
    vr->~VersionRec();
    backend_->free_bytes(const_cast<VersionRec*>(vr), sizeof(VersionRec),
                         alignof(VersionRec));
  }

  /// Claims an announcement slot for the calling thread. Slots are never
  /// recycled; at most MaxThreads updaters may ever register.
  unsigned register_slot() {
    const unsigned s = next_slot_.fetch_add(1, std::memory_order_relaxed);
    PC_ASSERT(s < MaxThreads, "CombiningAtom slot capacity exhausted");
    return s;
  }

  /// Returns true iff the key was newly inserted.
  bool insert(Ctx& ctx, unsigned slot, const Key& key, const Value& value) {
    return run_op(ctx, slot, OpKind::kInsert, key,
                  std::optional<Value>(value));
  }

  /// Returns true iff the key was present and removed. Value need not be
  /// default-constructible: the announcement payload is an optional that
  /// simply stays empty for erases.
  bool erase(Ctx& ctx, unsigned slot, const Key& key) {
    return run_op(ctx, slot, OpKind::kErase, key, std::nullopt);
  }

  /// One client-side batched operation (see execute_batch).
  using BatchRequest = core::BatchRequest<Key, Value>;

  /// Per-key answer shape for multi_get (see core/universal.hpp).
  using ReadOutcome = persist::ReadOutcome<Value>;

  /// Applies a client-supplied op sequence through the combiner's install
  /// path: each install absorbs up to MaxThreads requests (plus any
  /// pending per-thread announcements — helping is preserved) in one CAS,
  /// using the sorted-batch sweep when the structure supports it. Results
  /// land in `results_out` aligned with `reqs`, with the same semantics as
  /// issuing the ops in order through insert()/erase(). This is the
  /// ingest interface for callers that already hold a batch (e.g. a shard
  /// draining a network queue), and what bench_batch_combining drives to
  /// measure the install path at a controlled batch size.
  void execute_batch(Ctx& ctx, std::span<const BatchRequest> reqs,
                     std::span<bool> results_out) {
    PC_ASSERT(results_out.size() >= reqs.size(),
              "execute_batch result span too small");
    BuilderT builder(*ctx.alloc);
    builder.set_recycling(ctx.recycle_fresh);
    RecycleScope<Alloc> recycle_scope(ctx.stats, builder);
    std::size_t done = 0;
    while (done < reqs.size()) {
      const unsigned chunk = static_cast<unsigned>(
          std::min<std::size_t>(reqs.size() - done, MaxThreads));
      for (;;) {
        builder.reset();
        ++ctx.stats.attempts;
        auto guard = smr_->pin(ctx.smr_handle, root_, version_);
        const auto* vr = static_cast<const VersionRec*>(guard.root());
        std::array<Gathered, kMaxGather> gathered;
        unsigned g = gather_pending(vr, gathered);
        for (unsigned i = 0; i < chunk; ++i) {
          const BatchRequest& r = reqs[done + i];
          PC_DASSERT(r.kind == OpKind::kErase || r.value.has_value(),
                     "insert request without a value");
          Gathered& e = gathered[g++];
          e.slot = kRequestSlot;
          e.seq = done + i;
          e.kind = r.kind;
          e.key = r.key;
          e.value = r.value;
        }
        if (install_attempt(ctx, builder, vr, gathered, g, results_out) !=
            nullptr) {
          done += chunk;
          break;
        }
      }
    }
  }

  /// Bulk sorted ingest — the control-plane fast path behind shard
  /// migration backfills. `reqs` must be key-sorted and key-unique; the
  /// whole span is applied through giant sorted sweeps, one CAS per
  /// chunk of up to kBulkChunk requests instead of one per MaxThreads,
  /// so moving a large key range costs a handful of installs. Under CAS
  /// contention the chunk halves (a lost giant sweep is expensive to
  /// rebuild, and a long build window keeps losing to per-op rivals);
  /// below kBulkFloor the remainder falls back to execute_batch, whose
  /// small gather-integrated installs win contended shards. Unlike
  /// execute_batch this path does NOT gather announcements — helping is
  /// suspended for the duration of a bulk install (announcers still
  /// complete through their own retry loops; the two-install bound
  /// stretches by the chunks in flight) — which is the deliberate trade
  /// for control-plane batches; client traffic should keep using
  /// execute_batch. Results land in `results_out` aligned with `reqs`.
  void ingest_sorted(Ctx& ctx, std::span<const BatchRequest> reqs,
                     std::span<bool> results_out) {
    PC_ASSERT(results_out.size() >= reqs.size(),
              "ingest_sorted result span too small");
    if constexpr (!kHasBatchApply) {
      execute_batch(ctx, reqs, results_out);
    } else {
      using BatchOp = typename DS::BatchOp;
      using BatchOutcome = typename DS::BatchOutcome;
      using BatchOpKind = typename DS::BatchOpKind;
#ifndef NDEBUG
      {
        typename DS::KeyCompare cmp;
        for (std::size_t i = 1; i < reqs.size(); ++i) {
          PC_DASSERT(cmp(reqs[i - 1].key, reqs[i].key),
                     "ingest_sorted requires strictly increasing keys");
        }
      }
#endif
      std::vector<BatchOp> ops;
      std::vector<BatchOutcome> outs;
      Builder<Alloc> builder(*ctx.alloc);
      builder.set_recycling(ctx.recycle_fresh);
      RecycleScope<Alloc> recycle_scope(ctx.stats, builder);
      std::size_t done = 0;
      std::size_t chunk = kBulkChunk;
      while (done < reqs.size()) {
        if (chunk < kBulkFloor) {
          // Contention won this shard: finish through the combining
          // install path.
          execute_batch(ctx, reqs.subspan(done), results_out.subspan(done));
          return;
        }
        const std::size_t n = std::min(chunk, reqs.size() - done);
        ops.clear();
        ops.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
          const BatchRequest& r = reqs[done + i];
          PC_DASSERT(r.kind == OpKind::kErase || r.value.has_value(),
                     "insert request without a value");
          ops.push_back(BatchOp{r.kind == OpKind::kInsert
                                    ? BatchOpKind::kInsert
                                    : BatchOpKind::kErase,
                                r.key, r.value});
        }
        outs.assign(n, BatchOutcome::kNoop);
        builder.reset();
        ++ctx.stats.attempts;
        auto guard = smr_->pin(ctx.smr_handle, root_, version_);
        const auto* vr = static_cast<const VersionRec*>(guard.root());
        DS ds = DS::from_root(vr->ds_root);
        DS next = ds.apply_sorted_batch(builder,
                                        std::span<const BatchOp>(ops),
                                        std::span<BatchOutcome>(outs));
        const VersionRec* nvr = builder.template create<VersionRec>(
            next.root_ptr(), vr->version + 1, vr->applied_seq,
            vr->last_result);
        builder.supersede(vr);
        builder.seal();
        PC_YIELD("atom.install");
        const void* expected = vr;
        if (!root_.compare_exchange_strong(expected, nvr,
                                           std::memory_order_seq_cst,
                                           std::memory_order_relaxed)) {
          ctx.stats.failed_attempt_nodes += builder.fresh_count();
          builder.rollback();
          ++ctx.stats.cas_failures;
          chunk /= 2;
          continue;
        }
        PC_YIELD("atom.bump");
        const std::uint64_t death =
            version_.fetch_add(1, std::memory_order_seq_cst) + 1;
        smr_->retire_bundle(ctx.smr_handle, death, vr, nvr, builder.commit());
        ++ctx.stats.updates;
        ctx.stats.batched_installs += 1;
        ctx.stats.batched_ops += n;
        ctx.stats.batch_hist[OpStats::batch_bucket(n)] += 1;
        for (std::size_t i = 0; i < n; ++i) {
          results_out[done + i] = outs[i] != BatchOutcome::kNoop;
        }
        done += n;
        // Contention is bursty: grow back toward the full chunk.
        chunk = std::min<std::size_t>(chunk * 2, kBulkChunk);
      }
    }
  }

  /// Coalesced ingest — the async pipeline's cross-ticket merge entry.
  /// `reqs` must be stably key-sorted with duplicates ALLOWED: same-key
  /// requests appear in application order (the ShardExecutor's k-way
  /// merge of many clients' key-sorted sub-batches is exactly that).
  /// The whole run — plus any pending per-thread announcements, so
  /// helping is preserved — is chain-collapsed to one effective op per
  /// distinct key and applied through ONE install attempt per retry:
  /// a backed-up lane pays one root CAS for N tickets. Results land in
  /// `results_out` aligned with `reqs`, exactly as if the requests ran
  /// one by one in span order. Falls back to execute_batch for runs
  /// small enough for the fixed-size gather path, when batching is off,
  /// or when the fanout gate prices the merged batch as unclustered.
  void execute_sorted(Ctx& ctx, std::span<const BatchRequest> reqs,
                      std::span<bool> results_out) {
    PC_ASSERT(results_out.size() >= reqs.size(),
              "execute_sorted result span too small");
    if constexpr (!kHasBatchApply) {
      execute_batch(ctx, reqs, results_out);
    } else {
      if (reqs.size() <= MaxThreads ||
          !batch_apply_.load(std::memory_order_relaxed)) {
        // execute_batch applies chunks in span order, so semantics are
        // identical; below one chunk there is nothing to coalesce.
        execute_batch(ctx, reqs, results_out);
        return;
      }
      using BatchOp = typename DS::BatchOp;
      using BatchOutcome = typename DS::BatchOutcome;
#ifndef NDEBUG
      {
        typename DS::KeyCompare cmp;
        for (std::size_t i = 1; i < reqs.size(); ++i) {
          PC_DASSERT(!cmp(reqs[i].key, reqs[i - 1].key),
                     "execute_sorted requires key-sorted requests");
        }
      }
#endif
      const std::size_t n = reqs.size();
      // Entry layout mirrors the gather path's convention — pending
      // announcements first (ascending slot), then requests in span
      // order — so the stable key-sort keeps every same-key chain in
      // the order the fixed path would apply it.
      std::vector<Gathered> entries;
      std::vector<unsigned> order;
      std::vector<BatchOp> ops;
      std::vector<BatchOutcome> outs;
      std::vector<unsigned> chain_begin, chain_end;
      typename DS::KeyCompare cmp;
      BuilderT builder(*ctx.alloc);
      builder.set_recycling(ctx.recycle_fresh);
      RecycleScope<Alloc> recycle_scope(ctx.stats, builder);
      for (;;) {
        builder.reset();
        ++ctx.stats.attempts;
        auto guard = smr_->pin(ctx.smr_handle, root_, version_);
        const auto* vr = static_cast<const VersionRec*>(guard.root());
        std::array<Gathered, kMaxGather> gathered;
        const unsigned ga = gather_pending(vr, gathered);
        entries.clear();
        entries.reserve(ga + n);
        for (unsigned i = 0; i < ga; ++i) entries.push_back(gathered[i]);
        for (std::size_t i = 0; i < n; ++i) {
          const BatchRequest& r = reqs[i];
          PC_DASSERT(r.kind == OpKind::kErase || r.value.has_value(),
                     "insert request without a value");
          Gathered& e = entries.emplace_back();
          e.slot = kRequestSlot;
          e.seq = i;
          e.kind = r.kind;
          e.key = r.key;
          e.value = r.value;
        }
        const std::size_t total = entries.size();
        order.resize(total);
        for (std::size_t i = 0; i < total; ++i) {
          order[i] = static_cast<unsigned>(i);
        }
        std::stable_sort(order.begin(), order.end(),
                         [&](unsigned a, unsigned b) {
                           return cmp(entries[a].key, entries[b].key);
                         });
        ops.resize(total);
        outs.assign(total, BatchOutcome::kNoop);
        chain_begin.resize(total);
        chain_end.resize(total);
        const unsigned nb = collapse_chains(entries.data(), order.data(),
                                            total, ops.data(),
                                            chain_begin.data(),
                                            chain_end.data());
        DS ds = DS::from_root(vr->ds_root);
        if (batch_gate_declines(ds,
                                std::span<const BatchOp>(ops.data(), nb))) {
          // Unclustered on a wide structure: the chunked gather path's
          // per-op fallback prices each chunk on its own.
          ++ctx.stats.batch_declines;
          builder.rollback();
          execute_batch(ctx, reqs, results_out);
          return;
        }
        std::array<std::uint64_t, MaxThreads> applied = vr->applied_seq;
        std::array<bool, MaxThreads> results = vr->last_result;
        const std::uint64_t created_before = builder.created_count();
        const std::uint64_t size_before = ds.size();
        std::uint64_t landed = 0;
        DS next = ds.apply_sorted_batch(
            builder, std::span<const BatchOp>(ops.data(), nb),
            std::span<BatchOutcome>(outs.data(), nb));
        replay_chains(entries.data(), order.data(), ops.data(), outs.data(),
                      nb, chain_begin.data(), chain_end.data(), applied,
                      results, results_out, landed);
        const std::uint64_t created_by_ops =
            builder.created_count() - created_before;
        const VersionRec* nvr = builder.template create<VersionRec>(
            next.root_ptr(), vr->version + 1, applied, results);
        builder.supersede(vr);
        builder.seal();
        PC_YIELD("atom.install");
        const void* expected = vr;
        if (!root_.compare_exchange_strong(expected, nvr,
                                           std::memory_order_seq_cst,
                                           std::memory_order_relaxed)) {
          ctx.stats.failed_attempt_nodes += builder.fresh_count();
          builder.rollback();
          ++ctx.stats.cas_failures;
          continue;
        }
        PC_YIELD("atom.bump");
        const std::uint64_t death =
            version_.fetch_add(1, std::memory_order_seq_cst) + 1;
        smr_->retire_bundle(ctx.smr_handle, death, vr, nvr, builder.commit());
        ++ctx.stats.updates;
        ctx.stats.combined_ops += total;
        ctx.stats.batched_installs += 1;
        ctx.stats.batched_ops += total;
        ctx.stats.batch_hist[OpStats::batch_bucket(total)] += 1;
        const std::uint64_t height_est = std::bit_width(size_before + 1);
        const std::uint64_t per_op_est = landed * (height_est + 1);
        if (per_op_est > created_by_ops) {
          ctx.stats.spine_copies_saved += per_op_est - created_by_ops;
        }
        return;
      }
    }
  }

  /// Disables/enables the sorted-batch fast path (per-op fallback). For
  /// A/B measurement; flip only between phases, not mid-contention.
  void set_batch_apply(bool on) noexcept {
    batch_apply_.store(on, std::memory_order_relaxed);
  }

  /// Opens a scheduling window (one yield) between announcing and
  /// gathering. On a machine with fewer cores than updater threads the
  /// natural window is a whole scheduling quantum — a thread finishes
  /// every op it starts before anyone else runs, so batches never form;
  /// the yield lets the other runnable updaters announce first and
  /// restores the batch sizes a real multicore would see.
  void set_gather_window(bool on) noexcept {
    gather_window_.store(on, std::memory_order_relaxed);
  }

  /// Single-writer bulk load of `items` (strictly increasing keys) as one
  /// installed version — bench pre-fill, not for concurrent use.
  template <class It>
  void seed_sorted(Ctx& ctx, It first, It last) {
    Builder<Alloc> builder(*ctx.alloc);
    builder.set_recycling(ctx.recycle_fresh);
    RecycleScope<Alloc> recycle_scope(ctx.stats, builder);
    for (;;) {
      builder.reset();
      auto guard = smr_->pin(ctx.smr_handle, root_, version_);
      const auto* vr = static_cast<const VersionRec*>(guard.root());
      PC_ASSERT(vr->ds_root == nullptr,
                "seed_sorted requires an empty structure");
      DS next = DS::from_sorted(builder, first, last);
      const VersionRec* nvr = builder.template create<VersionRec>(
          next.root_ptr(), vr->version + 1, vr->applied_seq, vr->last_result);
      builder.supersede(vr);
      builder.seal();
      PC_YIELD("atom.install");
      const void* expected = vr;
      if (root_.compare_exchange_strong(expected, nvr,
                                        std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        PC_YIELD("atom.bump");
        const std::uint64_t death =
            version_.fetch_add(1, std::memory_order_seq_cst) + 1;
        smr_->retire_bundle(ctx.smr_handle, death, vr, nvr, builder.commit());
        ++ctx.stats.updates;
        return;
      }
      ctx.stats.failed_attempt_nodes += builder.fresh_count();
      builder.rollback();
    }
  }

  /// Runs f on an immutable snapshot of the current structure.
  template <class F>
  decltype(auto) read(Ctx& ctx, F&& f) const {
    ++ctx.stats.reads;
    auto guard = smr_->pin(ctx.smr_handle, root_, version_);
    const auto* vr = static_cast<const VersionRec*>(guard.root());
    return std::forward<F>(f)(DS::from_root(vr->ds_root));
  }

  std::uint64_t version() const noexcept {
    return version_.load(std::memory_order_acquire);
  }

  std::size_t size(Ctx& ctx) const {
    return read(ctx, [](DS snapshot) { return snapshot.size(); });
  }

  /// Opaque identity of the current VersionRec (see core/universal.hpp):
  /// changes on every install, ABA-free against any held VersionedView.
  const void* root_token() const noexcept {
    return root_.load(std::memory_order_acquire);
  }

  /// A pinned snapshot bundled with its version label and root token
  /// (the shared shape in core/universal.hpp). Exactly atomic here: the
  /// label rides in the pinned VersionRec, so snapshot and label come
  /// from the same pointer load — and the token (the VersionRec) is
  /// never null, so cut validation needs no version cross-check.
  using VersionedView = core::VersionedView<Smr, DS>;

  VersionedView pin_versioned(Ctx& ctx) const {
    ++ctx.stats.reads;
    auto guard = smr_->pin(ctx.smr_handle, root_, version_);
    const auto* vr = static_cast<const VersionRec*>(guard.root());
    return VersionedView{std::move(guard), DS::from_root(vr->ds_root),
                         vr->version, vr};
  }

  /// Runs f on a pinned snapshot and returns (result, version) — one pin,
  /// no retry loop needed (label and snapshot are bound atomically).
  template <class F>
  auto read_versioned(Ctx& ctx, F&& f) const {
    VersionedView view = pin_versioned(ctx);
    return std::pair(std::forward<F>(f)(view.snapshot), view.version);
  }

  /// Batched lookup against one pinned snapshot — same contract as
  /// Atom::multi_get: no combiner participation, no announcement, no
  /// version bump, no allocation; reads bypass the install machinery
  /// entirely and cost one pin for the whole batch.
  persist::ReadProbeStats multi_get(Ctx& ctx, std::span<const Key> keys,
                                    std::span<ReadOutcome> out) const {
    PC_ASSERT(out.size() >= keys.size(), "multi_get outcome span too small");
    if (keys.empty()) return {};
    VersionedView view = pin_versioned(ctx);  // bumps reads by 1...
    ctx.stats.reads += keys.size() - 1;       // ...count every probe key
    PC_YIELD("combining.mget.sweep");
    const persist::ReadProbeStats st =
        core::detail::resolve_sorted_probe<DS, Key, Value>(view.snapshot,
                                                           keys, out);
    ctx.stats.read_batches += 1;
    ctx.stats.batched_reads += keys.size();
    ctx.stats.read_batch_hist[OpStats::batch_bucket(keys.size())] += 1;
    ctx.stats.probe_nodes_visited += st.nodes_visited;
    ctx.stats.probe_nodes_saved += st.nodes_saved();
    return st;
  }

  Smr& reclaimer() noexcept { return *smr_; }

 private:
  /// One announcement slot. The owner writes payload fields, then bumps
  /// seq with release; combiners read seq with acquire before the
  /// payload. A combiner can only observe a payload newer than the seq it
  /// read if the root already moved past its pinned version — in which
  /// case its CAS is doomed and the misread candidate is discarded.
  /// The value is optional so erase announcements need no Value at all
  /// (Value need not be default-constructible). Payload fields live in
  /// RacyCells (word-wise relaxed atomics) so the deliberate read/rewrite
  /// race stays defined behavior: torn copies are possible by design,
  /// undefined ones are not.
  struct alignas(util::kCacheLine) AnnounceSlot {
    std::atomic<std::uint64_t> seq{0};
    util::RacyCell<OpKind> kind;
    util::RacyCell<Key> key;
    util::RacyCell<std::optional<Value>> value;
  };

  /// A stable copy of one pending announcement taken during the gather
  /// scan, so sorting/deduping works on data no owner can re-write.
  struct Gathered {
    unsigned slot;
    std::uint64_t seq;
    OpKind kind;
    Key key;
    std::optional<Value> value;
  };

  using BuilderT = Builder<Alloc>;
  static constexpr bool kHasBatchApply = SupportsSortedBatch<DS, BuilderT>;
  /// Sentinel slot id marking a Gathered entry as an execute_batch
  /// request; its seq field is then the request index, and its response
  /// goes to the caller's result span instead of the VersionRec arrays.
  static constexpr unsigned kRequestSlot = MaxThreads;
  /// One install can absorb every announcement slot plus one
  /// execute_batch chunk (itself capped at MaxThreads requests).
  static constexpr unsigned kMaxGather = 2 * MaxThreads;
  /// Smallest gathered batch worth the sorted sweep: at B=2 the sort +
  /// chain-collapse bookkeeping costs more than the one or two shared
  /// spine levels save (measured in bench_batch_combining), so tiny
  /// batches take the per-op loop.
  static constexpr unsigned kMinBatchApply = 3;
  /// Fanout gate (ReportsBatchFanout structures only): structures at
  /// least this wide price each batch through count_leaf_runs, and the
  /// sweep runs only when on average kMinOpsPerLeaf ops share a touched
  /// leaf — below that, whole-leaf rewrites dominate and per-op wins.
  /// The probe samples at most kClusterProbes leaf descents per install
  /// (a descent is ~height cold cache misses; an exact count of an
  /// unclustered batch would cost a large slice of the loop it vetoes).
  static constexpr unsigned kWideFanout = 6;
  static constexpr unsigned kMinOpsPerLeaf = 2;
  static constexpr unsigned kClusterProbes = 4;
  /// Bulk-ingest chunking (ingest_sorted): target requests per install,
  /// and the floor below which contention hands the remainder to
  /// execute_batch.
  static constexpr std::size_t kBulkChunk = std::size_t{1} << 16;
  static constexpr std::size_t kBulkFloor = 2048;

  bool run_op(Ctx& ctx, unsigned slot, OpKind kind, const Key& key,
              std::optional<Value> value) {
    AnnounceSlot& mine = slots_[slot];
    const std::uint64_t seq = mine.seq.load(std::memory_order_relaxed) + 1;
    mine.kind.store(kind);
    mine.key.store(key);
    mine.value.store(value);
    mine.seq.store(seq, std::memory_order_release);
    if (gather_window_.load(std::memory_order_relaxed)) {
      std::this_thread::yield();  // let other runnable updaters announce
    }

    BuilderT builder(*ctx.alloc);
    builder.set_recycling(ctx.recycle_fresh);
    RecycleScope<Alloc> recycle_scope(ctx.stats, builder);
    for (;;) {
      builder.reset();
      ++ctx.stats.attempts;
      auto guard = smr_->pin(ctx.smr_handle, root_, version_);
      const auto* vr = static_cast<const VersionRec*>(guard.root());
      if (vr->applied_seq[slot] >= seq) {
        // Another combiner already absorbed this announcement.
        builder.rollback();
        ++ctx.stats.helped_completions;
        return vr->last_result[slot];
      }
      std::array<Gathered, kMaxGather> gathered;
      const unsigned g = gather_pending(vr, gathered);
      const VersionRec* nvr =
          install_attempt(ctx, builder, vr, gathered, g, {});
      if (nvr != nullptr) {
        PC_DASSERT(nvr->applied_seq[slot] >= seq,
                   "own announcement must be gathered");
        return nvr->last_result[slot];
      }
    }
  }

  /// Scans every announcement slot for pending (announced, not yet
  /// applied relative to vr) operations and copies them into `out` in
  /// ascending slot order. Torn payloads — an owner re-announcing while
  /// we read — are skipped: the owner can only have moved on because some
  /// install absorbed its previous op, so our CAS against vr is already
  /// doomed and any choice here is discarded.
  unsigned gather_pending(const VersionRec* vr,
                          std::array<Gathered, kMaxGather>& out) {
    unsigned g = 0;
    const unsigned live = next_slot_.load(std::memory_order_acquire);
    for (unsigned i = 0; i < live && i < MaxThreads; ++i) {
      const std::uint64_t si = slots_[i].seq.load(std::memory_order_acquire);
      if (si <= vr->applied_seq[i]) continue;
      Gathered& e = out[g];
      e.slot = i;
      e.seq = si;
      e.kind = slots_[i].kind.load();
      e.key = slots_[i].key.load();
      e.value = slots_[i].value.load();
      // The multi-word payload copy above can interleave with the owner
      // re-announcing; the seq re-read below is what rejects the torn
      // copy. This is the window the model checker explores.
      PC_YIELD("comb.gather");
      if (slots_[i].seq.load(std::memory_order_acquire) != si) {
        continue;  // re-announced mid-read; skip the torn payload
      }
      if (e.kind == OpKind::kInsert && !e.value.has_value()) {
        continue;  // torn read straddled a re-announce; CAS is doomed
      }
      ++g;
    }
    return g;
  }

  /// Builds a candidate absorbing gathered[0, g) on top of vr and tries
  /// to install it. Returns the new VersionRec on success (stats and
  /// retirement done); nullptr after a lost CAS (builder rolled back).
  const VersionRec* install_attempt(Ctx& ctx, BuilderT& builder,
                                    const VersionRec* vr,
                                    std::array<Gathered, kMaxGather>& gathered,
                                    unsigned g, std::span<bool> results_out) {
    DS ds = DS::from_root(vr->ds_root);
    std::array<std::uint64_t, MaxThreads> applied = vr->applied_seq;
    std::array<bool, MaxThreads> results = vr->last_result;
    const std::uint64_t created_before = builder.created_count();
    std::uint64_t size_before = 0;
    bool used_batch = false;
    std::uint64_t landed = 0;  // ops with a structural effect
    if constexpr (kHasBatchApply) {
      if (g >= kMinBatchApply && batch_apply_.load(std::memory_order_relaxed)) {
        size_before = ds.size();
        std::optional<DS> applied_ds = apply_gathered_batch(
            builder, ds, gathered, g, applied, results, results_out, landed);
        if (applied_ds.has_value()) {
          ds = *applied_ds;
          used_batch = true;
        } else {
          // Fanout gate declined (unclustered batch on a wide structure);
          // fall through to the per-op loop below.
          ++ctx.stats.batch_declines;
        }
      }
    }
    if (!used_batch) {
      // Per-op fallback: one root-to-leaf path copy per gathered op, in
      // gather order (the legacy combining loop).
      for (unsigned t = 0; t < g; ++t) {
        const Gathered& e = gathered[t];
        DS next = e.kind == OpKind::kInsert
                      ? ds.insert(builder, e.key, *e.value)
                      : ds.erase(builder, e.key);
        emit_result(e, next.root_ptr() != ds.root_ptr(), applied, results,
                    results_out);
        ds = next;
      }
    }
    const std::uint64_t created_by_ops =
        builder.created_count() - created_before;

    const VersionRec* nvr = builder.template create<VersionRec>(
        ds.root_ptr(), vr->version + 1, applied, results);
    builder.supersede(vr);
    builder.seal();
    PC_YIELD("atom.install");
    const void* expected = vr;
    if (!root_.compare_exchange_strong(expected, nvr,
                                       std::memory_order_seq_cst,
                                       std::memory_order_relaxed)) {
      ctx.stats.failed_attempt_nodes += builder.fresh_count();
      builder.rollback();
      ++ctx.stats.cas_failures;
      return nullptr;
    }
    PC_YIELD("atom.bump");
    const std::uint64_t death =
        version_.fetch_add(1, std::memory_order_seq_cst) + 1;
    smr_->retire_bundle(ctx.smr_handle, death, vr, nvr, builder.commit());
    ++ctx.stats.updates;
    ctx.stats.combined_ops += g;
    if (used_batch) {
      ctx.stats.batched_installs += 1;
      ctx.stats.batched_ops += g;
      ctx.stats.batch_hist[OpStats::batch_bucket(g)] += 1;
      // Spine-copy savings vs per-op application: the single-pass
      // insert/erase copies ~one root-to-leaf path (lg n nodes) per
      // *landing* op and nothing for no-ops, so that is the baseline;
      // clamped at zero so mis-estimates never wrap.
      const std::uint64_t height_est = std::bit_width(size_before + 1);
      const std::uint64_t per_op_est = landed * (height_est + 1);
      if (per_op_est > created_by_ops) {
        ctx.stats.spine_copies_saved += per_op_est - created_by_ops;
      }
    }
    return nvr;
  }

  /// Routes one op's response: announcement slots publish through the
  /// VersionRec arrays, execute_batch requests through the caller's span.
  static void emit_result(const Gathered& e, bool res,
                          std::array<std::uint64_t, MaxThreads>& applied,
                          std::array<bool, MaxThreads>& results,
                          std::span<bool> results_out) {
    if (e.slot == kRequestSlot) {
      results_out[e.seq] = res;
    } else {
      results[e.slot] = res;
      applied[e.slot] = e.seq;
    }
  }

  /// Sorts the gathered ops by key, collapses each same-key chain (in
  /// gather order) to the one effective op whose application leaves the
  /// structure exactly as applying the chain per-op would, applies the
  /// batch through one shared spine, and back-fills every chained op's
  /// response by replaying the chain against the key's pre-batch presence
  /// (recovered from the batch outcome). Returns nullopt — nothing
  /// applied, nothing allocated — when the fanout gate prices the batch
  /// as unclustered on a wide structure; the caller then runs the per-op
  /// loop on the original gather order.
  std::optional<DS> apply_gathered_batch(
      BuilderT& builder, DS ds, std::array<Gathered, kMaxGather>& gathered,
      unsigned g, std::array<std::uint64_t, MaxThreads>& applied,
      std::array<bool, MaxThreads>& results, std::span<bool> results_out,
      std::uint64_t& landed) {
    using BatchOp = typename DS::BatchOp;
    using BatchOutcome = typename DS::BatchOutcome;
    typename DS::KeyCompare cmp;

    // Key-sort; the gather scan emitted ascending slots (then requests in
    // issue order), so a stable sort keeps that order inside each
    // same-key chain — "later op wins" for the structural effect, earlier
    // ops respond as if they ran first.
    std::array<unsigned, kMaxGather> order;
    for (unsigned i = 0; i < g; ++i) order[i] = i;
    std::stable_sort(order.begin(), order.begin() + g,
                     [&](unsigned a, unsigned b) {
                       return cmp(gathered[a].key, gathered[b].key);
                     });

    std::array<BatchOp, kMaxGather> ops;
    std::array<BatchOutcome, kMaxGather> outs;
    std::array<unsigned, kMaxGather> chain_begin, chain_end;
    const unsigned nb = collapse_chains(gathered.data(), order.data(), g,
                                        ops.data(), chain_begin.data(),
                                        chain_end.data());

    if (batch_gate_declines(ds, std::span<const BatchOp>(ops.data(), nb))) {
      return std::nullopt;
    }

    DS next = ds.apply_sorted_batch(
        builder, std::span<const BatchOp>(ops.data(), nb),
        std::span<BatchOutcome>(outs.data(), nb));

    replay_chains(gathered.data(), order.data(), ops.data(), outs.data(), nb,
                  chain_begin.data(), chain_end.data(), applied, results,
                  results_out, landed);
    return next;
  }

  /// Chain collapse, shared by the fixed-size gather path and the
  /// unbounded coalesced path (execute_sorted): given gathered entries
  /// and a key-sorted *stable* order[0, g), emits one effective BatchOp
  /// per distinct key plus the chain's [begin, end) range in `order`.
  /// A member template so it only instantiates when kHasBatchApply.
  template <class DS2 = DS>
  static unsigned collapse_chains(const Gathered* gathered,
                                  const unsigned* order, std::size_t g,
                                  typename DS2::BatchOp* ops,
                                  unsigned* chain_begin,
                                  unsigned* chain_end) {
    using BatchOpKind = typename DS2::BatchOpKind;
    typename DS2::KeyCompare cmp;
    unsigned nb = 0;
    for (std::size_t i = 0; i < g;) {
      std::size_t j = i + 1;
      while (j < g && !cmp(gathered[order[i]].key, gathered[order[j]].key)) {
        ++j;
      }
      // Effective op of the chain gathered[order[i..j)], gather order:
      //   * no erase            → the first insert (set-style) decides;
      //   * insert after the    → the key ends present with that insert's
      //     last erase            value whatever came before: kAssign;
      //   * erase last          → the key ends absent: kErase.
      std::size_t last_erase = j;  // "none"
      for (std::size_t t = i; t < j; ++t) {
        if (gathered[order[t]].kind == OpKind::kErase) last_erase = t;
      }
      typename DS2::BatchOp& op = ops[nb];
      op.key = gathered[order[i]].key;
      if (last_erase == j) {
        op.kind = BatchOpKind::kInsert;
        op.value = gathered[order[i]].value;
      } else {
        std::size_t reinsert = j;
        for (std::size_t t = last_erase + 1; t < j; ++t) {
          if (gathered[order[t]].kind == OpKind::kInsert) {
            reinsert = t;
            break;
          }
        }
        if (reinsert == j) {
          op.kind = BatchOpKind::kErase;
          op.value.reset();
        } else {
          op.kind = BatchOpKind::kAssign;
          op.value = gathered[order[reinsert]].value;
        }
      }
      chain_begin[nb] = static_cast<unsigned>(i);
      chain_end[nb] = static_cast<unsigned>(j);
      ++nb;
      i = j;
    }
    return nb;
  }

  /// Fanout gate (ReportsBatchFanout structures only): prices the
  /// collapsed batch before applying it — if fewer than the structure's
  /// ops-per-leaf demand share each touched leaf on average, the shared
  /// spine cannot pay for the per-leaf batch machinery (whole-leaf
  /// rewrites on a B-tree, join/recoloring cascades on a virtual-leaf
  /// structure) and the per-op loop is cheaper. The probe samples at
  /// most kClusterProbes leaf descents and extrapolates — read-only and
  /// far below either path it chooses between.
  template <class DS2 = DS>
  static bool batch_gate_declines(
      const DS2& ds, std::span<const typename DS2::BatchOp> ops) {
    if constexpr (ReportsBatchFanout<DS2>) {
      if constexpr (DS2::kBatchFanout >= kWideFanout) {
        constexpr unsigned kMinOps = [] {
          if constexpr (ReportsBatchThreshold<DS2>) {
            return DS2::kBatchMinOpsPerLeaf;
          } else {
            return kMinOpsPerLeaf;
          }
        }();
        std::size_t covered = 0;
        const unsigned runs = ds.count_leaf_runs(ops, kClusterProbes,
                                                 &covered);
        if (runs > 0 && covered < kMinOps * runs) return true;
      }
    }
    return false;
  }

  /// Back-fills every chained op's response by replaying its chain
  /// against the key's pre-batch presence (recovered from the outcome of
  /// the one op that structurally ran). Shared by apply_gathered_batch
  /// and execute_sorted.
  template <class DS2 = DS>
  static void replay_chains(const Gathered* gathered, const unsigned* order,
                            const typename DS2::BatchOp* ops,
                            const typename DS2::BatchOutcome* outs,
                            unsigned nb, const unsigned* chain_begin,
                            const unsigned* chain_end,
                            std::array<std::uint64_t, MaxThreads>& applied,
                            std::array<bool, MaxThreads>& results,
                            std::span<bool> results_out,
                            std::uint64_t& landed) {
    using BatchOpKind = typename DS2::BatchOpKind;
    using BatchOutcome = typename DS2::BatchOutcome;
    for (unsigned k = 0; k < nb; ++k) {
      bool present;
      switch (ops[k].kind) {
        case BatchOpKind::kInsert:
          present = outs[k] == BatchOutcome::kNoop;
          break;
        case BatchOpKind::kAssign:
          present = outs[k] == BatchOutcome::kAssigned;
          break;
        default:
          present = outs[k] == BatchOutcome::kErased;
          break;
      }
      for (unsigned t = chain_begin[k]; t < chain_end[k]; ++t) {
        const Gathered& e = gathered[order[t]];
        bool res;
        if (e.kind == OpKind::kInsert) {
          res = !present;
          present = true;
        } else {
          res = present;
          present = false;
        }
        if (res) ++landed;
        emit_result(e, res, applied, results, results_out);
      }
    }
  }

  alignas(util::kCacheLine) std::atomic<const void*> root_{nullptr};
  alignas(util::kCacheLine) std::atomic<std::uint64_t> version_{1};
  alignas(util::kCacheLine) std::atomic<unsigned> next_slot_{0};
  std::array<AnnounceSlot, MaxThreads> slots_{};
  std::atomic<bool> batch_apply_{true};
  std::atomic<bool> gather_window_{false};
  Smr* smr_;
  RetireBackend* backend_;
};

}  // namespace pathcopy::core
