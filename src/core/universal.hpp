// UniversalConstruction: the one vocabulary every UC backend speaks.
//
// PR 1 left the repo with two universal constructions — the paper's
// single-CAS Atom and the PSim-style CombiningAtom — each exposing an
// ad-hoc surface. The store layer (src/store) multiplies UC instances
// behind one facade and must construct, drive, and account for them
// generically, so the surface is nailed down once here: a universal
// construction is anything that can
//
//   * be built from a reclaimer and an allocator view,
//   * register per-updater slots (a no-op for slotless backends),
//   * run reified map operations (insert/erase with per-op bool results),
//   * read immutable snapshots and probe size/version,
//   * serve *versioned* reads — pin_versioned / read_versioned hand back
//     a snapshot together with the version it belongs to (plus an opaque
//     root token), which is what lets the store layer compose per-shard
//     snapshots into one vector-clock-consistent cut,
//   * ingest a client-side batch through its install path
//     (execute_batch), and
//   * bulk-seed an empty structure from a sorted range (seed_sorted).
//
// Atom and CombiningAtom both model the concept; ShardedMap is written
// against it alone, which is what lets one bench harness sweep
// backend × shard-count × structure.
//
// Op reification (OpKind / BatchRequest) lives here rather than in
// combining.hpp because every batch-capable backend shares it: a request
// names the operation, the key, and an optional payload (erases carry
// none) — exactly the information a helping combiner or a shard router
// needs. The generic-lambda Atom::update stays backend-specific: a
// helping-based UC cannot execute an arbitrary closure from another
// thread's announcement, so the portable update vocabulary is the
// reified one.
#pragma once

#include <atomic>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "persist/batch.hpp"

namespace pathcopy::core {

/// The reified operations every UC backend understands.
enum class OpKind : std::uint8_t { kInsert, kErase };

/// One client-side operation for UC::execute_batch. The value is optional
/// so erase requests need no Value at all (Value need not be
/// default-constructible).
template <class K, class V>
struct BatchRequest {
  OpKind kind;
  K key;
  std::optional<V> value;  // engaged for inserts
};

namespace detail {

/// Placeholders standing in for Key/Value when the wrapped structure is
/// not a map (e.g. a heap under an Atom): the unified surface still
/// *declares* cleanly — member bodies are only instantiated on use — and
/// the concept below rejects such backends via the KeyType check.
struct NoKey {};
struct NoValue {};

template <class DS, class = void>
struct KeyOf {
  using type = NoKey;
};
template <class DS>
struct KeyOf<DS, std::void_t<typename DS::KeyType>> {
  using type = typename DS::KeyType;
};

template <class DS, class = void>
struct ValueOf {
  using type = NoValue;
};
template <class DS>
struct ValueOf<DS, std::void_t<typename DS::ValueType>> {
  using type = typename DS::ValueType;
};

}  // namespace detail

/// The bundle pin_versioned hands back, shared by every backend: a held
/// reclaimer guard (keeps the whole pinned version alive), the snapshot
/// handle, the version label, and the opaque root token (see the concept
/// note below for the token/label contract). Move-only, because the
/// guard is.
template <class Smr, class DS>
struct VersionedView {
  using Guard = decltype(std::declval<Smr&>().pin(
      std::declval<typename Smr::ThreadHandle&>(),
      std::declval<const std::atomic<const void*>&>(),
      std::declval<const std::atomic<std::uint64_t>&>()));
  Guard guard;
  DS snapshot;
  std::uint64_t version;
  const void* token;
};

/// Structures whose snapshots can resolve a key-sorted, key-unique probe
/// batch in one descent-sharing sweep (the read-side mirror of
/// SupportsSortedBatch in core/combining.hpp). Detected structurally so a
/// new structure opts in just by providing the member — the UC's
/// multi_get falls back to per-key find() everywhere else.
template <class DS>
concept SupportsSortedReadBatch =
    requires(const DS ds, std::span<const typename DS::KeyType> keys,
             std::span<typename DS::ReadOutcome> out) {
      typename DS::ReadOutcome;
      {
        ds.get_sorted_batch(keys, out)
      } -> std::same_as<persist::ReadProbeStats>;
    };

namespace detail {

/// One probe batch against one pinned snapshot: the shared body of
/// Atom::multi_get and CombiningAtom::multi_get. Batch-capable structures
/// get the descent-sharing sweep; everything else degrades to per-key
/// find() (stats stay zero — there is no sharing to account for). Pure
/// reads either way: no builder, no allocation.
template <class DS, class K, class V>
persist::ReadProbeStats resolve_sorted_probe(
    const DS& snapshot, std::span<const K> keys,
    std::span<persist::ReadOutcome<V>> out) {
  if constexpr (SupportsSortedReadBatch<DS>) {
    return snapshot.get_sorted_batch(keys, out);
  } else {
    persist::check_sorted_keys<typename DS::KeyCompare, K>(keys);
    for (std::size_t i = 0; i < keys.size(); ++i) {
      const V* v = snapshot.find(keys[i]);
      if (v != nullptr) out[i].value = *v;
    }
    return {};
  }
}

}  // namespace detail

/// Reads a snapshot's size — a named functor because a concept cannot
/// portably spell "read() accepts any generic lambda"; one concrete,
/// representative reader is enough to pin the read() shape down.
struct SnapshotSizeProbe {
  template <class DS>
  std::size_t operator()(DS snapshot) const {
    return snapshot.size();
  }
};

/// The contract the store layer is written against. See the header
/// comment for the prose version.
///
/// The versioned-read surface deserves its own note. `pin_versioned`
/// returns a `VersionedView` — a held reclaimer guard plus the snapshot
/// handle, the version label, and an opaque `token` identifying the
/// pinned root record. Two guarantees every backend must provide:
///
///   * token identity *is* version identity: the token changes on every
///     installed version — including installs of EMPTY versions, which
///     must carry distinct never-republished tokens (the plain Atom tags
///     a fresh sentinel per erase-to-empty; the CombiningAtom's
///     VersionRec is never null) — and while a view holds its pin the
///     token cannot be recycled (the pinned record cannot be freed, so
///     its address cannot be reused) — comparing a held view's token
///     against `root_token()` is an ABA-free "did this shard move?"
///     probe, with no side-channel cross-checks needed;
///   * the version label is exact whenever the backend can bind it to the
///     root atomically (CombiningAtom rides it in the VersionRec), and
///     otherwise a lower bound that catches up once in-flight installs
///     publish their counter bump (the plain Atom, whose counter trails
///     the root CAS by design — the watermark reclaimer's invariant).
///
/// The store's consistent-cut protocol (store/version_vector.hpp) builds
/// only on the first guarantee; the label is the reported clock value.
template <class UC>
concept UniversalConstruction =
    requires {
      typename UC::Structure;
      typename UC::SmrType;
      typename UC::AllocType;
      typename UC::Ctx;
      typename UC::Key;
      typename UC::Value;
      typename UC::BatchRequest;
      typename UC::OpKind;
      typename UC::VersionedView;
      typename UC::ReadOutcome;
    } &&
    std::same_as<typename UC::Key, typename UC::Structure::KeyType> &&
    std::same_as<typename UC::Value, typename UC::Structure::ValueType> &&
    std::constructible_from<UC, typename UC::SmrType&,
                            typename UC::AllocType&> &&
    requires(UC uc, const UC cuc, typename UC::Ctx& ctx, unsigned slot,
             const typename UC::Key& key, const typename UC::Value& value,
             std::span<const typename UC::BatchRequest> reqs,
             std::span<bool> results,
             std::span<const typename UC::Key> probe_keys,
             std::span<typename UC::ReadOutcome> probe_out,
             typename std::vector<std::pair<typename UC::Key,
                                            typename UC::Value>>::const_iterator
                 it) {
      { uc.register_slot() } -> std::convertible_to<unsigned>;
      { uc.insert(ctx, slot, key, value) } -> std::same_as<bool>;
      { uc.erase(ctx, slot, key) } -> std::same_as<bool>;
      { cuc.read(ctx, SnapshotSizeProbe{}) } -> std::convertible_to<std::size_t>;
      { cuc.size(ctx) } -> std::convertible_to<std::size_t>;
      { cuc.version() } -> std::convertible_to<std::uint64_t>;
      { cuc.root_token() } -> std::convertible_to<const void*>;
      { cuc.pin_versioned(ctx) } -> std::same_as<typename UC::VersionedView>;
      { cuc.read_versioned(ctx, SnapshotSizeProbe{}) };
      {
        cuc.multi_get(ctx, probe_keys, probe_out)
      } -> std::same_as<persist::ReadProbeStats>;
      { uc.execute_batch(ctx, reqs, results) };
      { uc.seed_sorted(ctx, it, it) };
      { uc.reclaimer() } -> std::same_as<typename UC::SmrType&>;
    } &&
    requires(typename UC::VersionedView view) {
      { view.snapshot } -> std::convertible_to<typename UC::Structure>;
      { view.version } -> std::convertible_to<std::uint64_t>;
      { view.token } -> std::convertible_to<const void*>;
    };

}  // namespace pathcopy::core
