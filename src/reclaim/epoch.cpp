#include "reclaim/epoch.hpp"

#include "util/assert.hpp"

namespace pathcopy::reclaim {

EpochReclaimer::~EpochReclaimer() { drain_all(); }

EpochReclaimer::ThreadHandle EpochReclaimer::register_thread() {
  std::lock_guard lock(registry_mu_);
  // Reuse a slot whose previous owner has exited (keeps the registry from
  // growing without bound when threads churn). The acquire pairs with the
  // releasing thread's in_use store: it orders that thread's bucket flush
  // before any use of the slot by its new owner.
  for (auto& slot : registry_) {
    Guard::Rec& rec = slot->value;
    if (!rec.in_use.load(std::memory_order_acquire)) {
      rec.in_use.store(true, std::memory_order_relaxed);
      rec.epoch.store(kIdle, std::memory_order_relaxed);
      rec.sink = RetireSink{};
      return ThreadHandle{&rec};
    }
  }
  registry_.push_back(std::make_unique<util::Padded<Guard::Rec>>());
  Guard::Rec& rec = registry_.back()->value;
  rec.owner = this;
  rec.in_use.store(true, std::memory_order_relaxed);
  return ThreadHandle{&rec};
}

void EpochReclaimer::ThreadHandle::release() noexcept {
  if (rec_ == nullptr) return;
  PC_ASSERT(rec_->epoch.load(std::memory_order_relaxed) == EpochReclaimer::kIdle,
            "thread handle released while a guard is live");
  rec_->owner->flush_to_orphans(*rec_);
  rec_->sink = RetireSink{};
  rec_->in_use.store(false, std::memory_order_release);
  rec_ = nullptr;
}

EpochReclaimer::Guard EpochReclaimer::pin(ThreadHandle& h,
                                          const std::atomic<const void*>& root,
                                          const std::atomic<std::uint64_t>&) {
  Guard::Rec* rec = h.rec_;
  PC_DASSERT(rec != nullptr, "pin on an empty thread handle");
  PC_DASSERT(rec->epoch.load(std::memory_order_relaxed) == kIdle,
             "epoch guards do not nest");
  const std::uint64_t e = global_epoch_.load(std::memory_order_acquire);
  // The announcement must be globally visible before we read any shared
  // state; seq_cst store + seq_cst load gives the required ordering
  // against the advancing thread's registry scan.
  rec->epoch.store(e, std::memory_order_seq_cst);
  const void* r = root.load(std::memory_order_seq_cst);
  return Guard{rec, r};
}

EpochReclaimer::Guard::~Guard() {
  if (rec_ != nullptr) {
    rec_->epoch.store(EpochReclaimer::kIdle, std::memory_order_release);
  }
}

void EpochReclaimer::retire_bundle(ThreadHandle& h, std::uint64_t,
                                   const void*, const void*,
                                   std::vector<Retired>&& nodes) {
  Guard::Rec& rec = *h.rec_;
  const std::uint64_t now = global_epoch_.load(std::memory_order_acquire);
  const std::size_t idx = static_cast<std::size_t>(now % 3);
  maybe_free_bucket(rec, idx, now, &rec.sink);
  rec.bucket_epoch[idx] = now;
  retired_.fetch_add(nodes.size(), std::memory_order_relaxed);
  auto& bucket = rec.bucket[idx];
  bucket.insert(bucket.end(), nodes.begin(), nodes.end());
  nodes.clear();

  rec.since_scan += 1;
  if (rec.since_scan >= kScanInterval) {
    rec.since_scan = 0;
    try_advance();
    // Opportunistically free whatever ripened, including other buckets.
    const std::uint64_t e = global_epoch_.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < 3; ++i) maybe_free_bucket(rec, i, e, &rec.sink);
  }
}

void EpochReclaimer::maybe_free_bucket(Guard::Rec& rec, std::size_t idx,
                                       std::uint64_t now,
                                       const RetireSink* sink) {
  auto& bucket = rec.bucket[idx];
  if (bucket.empty()) return;
  // Contents were retired in bucket_epoch[idx]; all guards that could see
  // them were announced at epochs <= that. Two advances later, every such
  // guard has been released.
  if (rec.bucket_epoch[idx] + 2 <= now) {
    freed_.fetch_add(bucket.size(), std::memory_order_relaxed);
    free_all(bucket, sink);
  }
}

void EpochReclaimer::try_advance() noexcept {
  const std::uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
  {
    std::lock_guard lock(registry_mu_);
    for (const auto& slot : registry_) {
      const Guard::Rec& rec = slot->value;
      const std::uint64_t seen = rec.epoch.load(std::memory_order_seq_cst);
      if (seen != kIdle && seen != e) {
        return;  // a guard is still active in an older epoch
      }
    }
  }
  std::uint64_t expected = e;
  if (global_epoch_.compare_exchange_strong(expected, e + 1,
                                            std::memory_order_seq_cst)) {
    advances_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard lock(orphan_mu_);
    free_ripe_orphans_locked(e + 1);
  }
}

void EpochReclaimer::flush_to_orphans(Guard::Rec& rec) {
  std::lock_guard lock(orphan_mu_);
  for (std::size_t i = 0; i < 3; ++i) {
    if (!rec.bucket[i].empty()) {
      orphans_.push_back({rec.bucket_epoch[i], std::move(rec.bucket[i])});
      rec.bucket[i].clear();
    }
  }
}

void EpochReclaimer::free_ripe_orphans_locked(std::uint64_t now) {
  std::size_t kept = 0;
  for (std::size_t i = 0; i < orphans_.size(); ++i) {
    if (orphans_[i].epoch + 2 <= now) {
      freed_.fetch_add(orphans_[i].nodes.size(), std::memory_order_relaxed);
      // Orphans free on whatever thread advances the epoch — never
      // through a thread-local sink.
      free_all(orphans_[i].nodes, nullptr);
    } else {
      if (kept != i) orphans_[kept] = std::move(orphans_[i]);
      ++kept;
    }
  }
  orphans_.resize(kept);
}

void EpochReclaimer::drain_all() {
  // Teardown path: no concurrent guards by contract, so three forced
  // advances ripen every bucket.
  for (int i = 0; i < 3; ++i) {
    global_epoch_.fetch_add(1, std::memory_order_seq_cst);
  }
  const std::uint64_t now = global_epoch_.load(std::memory_order_seq_cst);
  {
    std::lock_guard lock(registry_mu_);
    for (auto& slot : registry_) {
      for (std::size_t i = 0; i < 3; ++i) {
        // Teardown runs on an arbitrary thread: no sink.
        maybe_free_bucket(slot->value, i, now, nullptr);
      }
    }
  }
  std::lock_guard lock(orphan_mu_);
  free_ripe_orphans_locked(now);
}

}  // namespace pathcopy::reclaim
