// Version-watermark reclamation (MVCC-style).
//
// The universal construction stamps every successful transition with a
// monotonically increasing version number. A reader pins the version
// counter *before* loading the root, which guarantees pin <= version of
// the root it then loads (the counter is bumped after the root CAS, so it
// never runs ahead of the root). A bundle of nodes that died at
// transition-to-d may be referenced by any version <= d-1, hence is freed
// once min(pinned) >= d.
//
// Unlike EBR this scheme supports long-lived snapshots: pin_snapshot()
// returns a handle that keeps one version pinned for arbitrary time
// without stalling reclamation of versions newer than it would otherwise
// allow — exactly the watermark mechanism of multi-version databases the
// paper borrows from (Sun et al., VLDB'19).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "reclaim/retired.hpp"
#include "util/align.hpp"

namespace pathcopy::reclaim {

class WatermarkReclaimer {
 public:
  static constexpr std::uint64_t kUnpinned = ~std::uint64_t{0};
  static constexpr std::uint64_t kScanInterval = 64;

  WatermarkReclaimer() = default;
  WatermarkReclaimer(const WatermarkReclaimer&) = delete;
  WatermarkReclaimer& operator=(const WatermarkReclaimer&) = delete;
  ~WatermarkReclaimer();

  struct Slot {
    std::atomic<std::uint64_t> pinned{kUnpinned};
    std::atomic<bool> in_use{false};
  };

  class ThreadHandle {
   public:
    ThreadHandle() noexcept = default;
    ThreadHandle(ThreadHandle&& o) noexcept
        : slot_(o.slot_), since_scan_(o.since_scan_), sink_(o.sink_) {
      o.slot_ = nullptr;
      o.sink_ = RetireSink{};
    }
    ThreadHandle& operator=(ThreadHandle&& o) noexcept {
      if (this != &o) {
        release();
        slot_ = o.slot_;
        since_scan_ = o.since_scan_;
        sink_ = o.sink_;
        o.slot_ = nullptr;
        o.sink_ = RetireSink{};
      }
      return *this;
    }
    ThreadHandle(const ThreadHandle&) = delete;
    ThreadHandle& operator=(const ThreadHandle&) = delete;
    ~ThreadHandle() { release(); }

    /// Routes bundles this thread's scans ripen into a local magazine
    /// cache. Handle-local: the sink dies with the handle, which a
    /// stack-ordered ThreadCache outlives.
    void set_retire_sink(const RetireSink& sink) noexcept { sink_ = sink; }

   private:
    friend class WatermarkReclaimer;
    explicit ThreadHandle(Slot* s) noexcept : slot_(s) {}
    void release() noexcept {
      if (slot_ != nullptr) {
        slot_->pinned.store(kUnpinned, std::memory_order_release);
        slot_->in_use.store(false, std::memory_order_release);
        slot_ = nullptr;
      }
      sink_ = RetireSink{};
    }
    Slot* slot_ = nullptr;
    std::uint64_t since_scan_ = 0;
    RetireSink sink_{};
  };

  class Guard {
   public:
    Guard(Guard&& o) noexcept : slot_(o.slot_), root_(o.root_) { o.slot_ = nullptr; }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
    Guard& operator=(Guard&&) = delete;
    ~Guard() {
      if (slot_ != nullptr) slot_->pinned.store(kUnpinned, std::memory_order_release);
    }
    const void* root() const noexcept { return root_; }

   private:
    friend class WatermarkReclaimer;
    Guard(Slot* slot, const void* root) noexcept : slot_(slot), root_(root) {}
    Slot* slot_;
    const void* root_;
  };

  /// Long-lived pin on a specific version; see class comment.
  class Snapshot {
   public:
    Snapshot() noexcept = default;
    Snapshot(Snapshot&& o) noexcept
        : owner_(o.owner_), root_(o.root_), version_(o.version_) {
      o.owner_ = nullptr;
    }
    Snapshot& operator=(Snapshot&& o) noexcept;
    Snapshot(const Snapshot&) = delete;
    Snapshot& operator=(const Snapshot&) = delete;
    ~Snapshot() { release(); }

    const void* root() const noexcept { return root_; }
    std::uint64_t version() const noexcept { return version_; }
    void release() noexcept;

   private:
    friend class WatermarkReclaimer;
    Snapshot(WatermarkReclaimer* owner, const void* root, std::uint64_t v) noexcept
        : owner_(owner), root_(root), version_(v) {}
    WatermarkReclaimer* owner_ = nullptr;
    const void* root_ = nullptr;
    std::uint64_t version_ = 0;
  };

  ThreadHandle register_thread();

  Guard pin(ThreadHandle& h, const std::atomic<const void*>& root,
            const std::atomic<std::uint64_t>& version);

  Snapshot pin_snapshot(const std::atomic<const void*>& root,
                        const std::atomic<std::uint64_t>& version);

  void retire_bundle(ThreadHandle& h, std::uint64_t death_version,
                     const void* old_root, const void* new_root,
                     std::vector<Retired>&& nodes);

  void drain_all();

  std::uint64_t freed_nodes() const noexcept {
    return freed_.load(std::memory_order_relaxed);
  }
  std::uint64_t pending_nodes() const noexcept {
    return retired_.load(std::memory_order_relaxed) -
           freed_.load(std::memory_order_relaxed);
  }
  /// Smallest version any reader or snapshot may still be using.
  std::uint64_t watermark();

 private:
  // Frees every bundle with death_version <= the given watermark. `sink`
  // (nullable) must belong to the calling thread.
  void collect(std::uint64_t min_pinned, const RetireSink* sink);
  std::uint64_t min_pinned_version();

  std::mutex registry_mu_;
  std::vector<std::unique_ptr<util::Padded<Slot>>> slots_;

  std::mutex snap_mu_;
  std::vector<std::uint64_t> snap_pins_;  // unsorted multiset of pinned versions

  std::mutex bundle_mu_;
  std::vector<Bundle> bundles_;

  std::atomic<std::uint64_t> freed_{0};
  std::atomic<std::uint64_t> retired_{0};
};

}  // namespace pathcopy::reclaim
