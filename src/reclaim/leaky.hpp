// The null reclaimer: retired nodes are never freed.
//
// Two legitimate uses: (a) as the baseline in the reclamation ablation
// (E7) to measure what EBR / hazard / watermark actually cost, and (b)
// paired with alloc::Arena for bounded runs where all versions stay live
// until the arena is reset — the closest C++ analogue of the paper's GC'd
// Java setting. Destructors of retired nodes are NOT run; use with
// trivially destructible payloads or arena-owned memory.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "reclaim/retired.hpp"

namespace pathcopy::reclaim {

class LeakyReclaimer {
 public:
  struct ThreadHandle {
    std::uint64_t retired_nodes = 0;
  };

  class Guard {
   public:
    explicit Guard(const void* root) noexcept : root_(root) {}
    const void* root() const noexcept { return root_; }

   private:
    const void* root_;
  };

  ThreadHandle register_thread() noexcept { return ThreadHandle{}; }

  Guard pin(ThreadHandle&, const std::atomic<const void*>& root,
            const std::atomic<std::uint64_t>&) noexcept {
    return Guard{root.load(std::memory_order_acquire)};
  }

  void retire_bundle(ThreadHandle& h, std::uint64_t, const void*, const void*,
                     std::vector<Retired>&& nodes) noexcept {
    h.retired_nodes += nodes.size();
    leaked_.fetch_add(nodes.size(), std::memory_order_relaxed);
    nodes.clear();
  }

  void drain_all() noexcept {}

  std::uint64_t leaked_nodes() const noexcept {
    return leaked_.load(std::memory_order_relaxed);
  }
  std::uint64_t freed_nodes() const noexcept { return 0; }
  std::uint64_t pending_nodes() const noexcept { return 0; }

 private:
  std::atomic<std::uint64_t> leaked_{0};
};

}  // namespace pathcopy::reclaim
