// Hazard-pointer reclamation specialized for path-copied versions.
//
// Interior nodes of a persistent tree are immutable, so a reader only
// ever needs to protect one pointer: the version root it loaded. This
// collapses the general hazard-pointer scheme to a single hazard slot per
// thread plus the classic load/announce/validate loop on Root_Ptr.
//
// A protected root r pins every node of r's version — including nodes
// that later transitions superseded. The reclaimer therefore maps each
// live root to its version number and frees a bundle with death version d
// only when every protected root's version is >= d. Roots leave the map
// when the bundle retiring them is freed.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "reclaim/retired.hpp"
#include "util/align.hpp"

namespace pathcopy::reclaim {

class HazardRootReclaimer {
 public:
  static constexpr std::uint64_t kScanInterval = 64;

  HazardRootReclaimer() = default;
  HazardRootReclaimer(const HazardRootReclaimer&) = delete;
  HazardRootReclaimer& operator=(const HazardRootReclaimer&) = delete;
  ~HazardRootReclaimer();

  struct Slot {
    std::atomic<const void*> hazard{nullptr};
    std::atomic<bool> in_use{false};
  };

  class ThreadHandle {
   public:
    ThreadHandle() noexcept = default;
    ThreadHandle(ThreadHandle&& o) noexcept
        : slot_(o.slot_), since_scan_(o.since_scan_) {
      o.slot_ = nullptr;
    }
    ThreadHandle& operator=(ThreadHandle&& o) noexcept {
      if (this != &o) {
        release();
        slot_ = o.slot_;
        since_scan_ = o.since_scan_;
        o.slot_ = nullptr;
      }
      return *this;
    }
    ThreadHandle(const ThreadHandle&) = delete;
    ThreadHandle& operator=(const ThreadHandle&) = delete;
    ~ThreadHandle() { release(); }

   private:
    friend class HazardRootReclaimer;
    explicit ThreadHandle(Slot* s) noexcept : slot_(s) {}
    void release() noexcept {
      if (slot_ != nullptr) {
        slot_->hazard.store(nullptr, std::memory_order_release);
        slot_->in_use.store(false, std::memory_order_release);
        slot_ = nullptr;
      }
    }
    Slot* slot_ = nullptr;
    std::uint64_t since_scan_ = 0;
  };

  class Guard {
   public:
    Guard(Guard&& o) noexcept : slot_(o.slot_), root_(o.root_) { o.slot_ = nullptr; }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
    Guard& operator=(Guard&&) = delete;
    ~Guard() {
      if (slot_ != nullptr) slot_->hazard.store(nullptr, std::memory_order_release);
    }
    const void* root() const noexcept { return root_; }

   private:
    friend class HazardRootReclaimer;
    Guard(Slot* slot, const void* root) noexcept : slot_(slot), root_(root) {}
    Slot* slot_;
    const void* root_;
  };

  ThreadHandle register_thread();

  /// Standard hazard protocol: announce the loaded root, re-validate, loop.
  Guard pin(ThreadHandle& h, const std::atomic<const void*>& root,
            const std::atomic<std::uint64_t>& version);

  void retire_bundle(ThreadHandle& h, std::uint64_t death_version,
                     const void* old_root, const void* new_root,
                     std::vector<Retired>&& nodes);

  /// Registers the version of the initial root (called once by the UC at
  /// construction so the map covers version 1).
  void note_root(const void* root, std::uint64_t version);

  void drain_all();

  std::uint64_t freed_nodes() const noexcept {
    return freed_.load(std::memory_order_relaxed);
  }
  std::uint64_t pending_nodes() const noexcept {
    return retired_.load(std::memory_order_relaxed) -
           freed_.load(std::memory_order_relaxed);
  }

 private:
  void collect();
  std::uint64_t min_protected_version_locked();

  std::mutex registry_mu_;
  std::vector<std::unique_ptr<util::Padded<Slot>>> slots_;

  std::mutex mu_;  // guards bundles_ and root_version_
  std::vector<Bundle> bundles_;
  std::unordered_map<const void*, std::uint64_t> root_version_;

  std::atomic<std::uint64_t> freed_{0};
  std::atomic<std::uint64_t> retired_{0};
};

}  // namespace pathcopy::reclaim
