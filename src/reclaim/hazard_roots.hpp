// Hazard-pointer reclamation specialized for path-copied versions.
//
// Interior nodes of a persistent tree are immutable, so a reader only
// ever needs to protect one pointer: the version root it loaded. This
// collapses the general hazard-pointer scheme to a single hazard slot per
// thread plus the classic load/announce/validate loop on Root_Ptr.
//
// A protected root r pins every node of r's version — including nodes
// that later transitions superseded. Protection is keyed on *eras*
// (hazard-era style): alongside the root pointer, pin announces the
// version counter value read *before* loading the root. The counter
// trails the root (writers bump it after their CAS), so the announced
// era e lower-bounds the pinned root's version, and every node the
// reader can touch — the pinned snapshot plus anything the reader
// itself publishes afterwards — dies at a version > e. A bundle with
// death version d is freed only when every announced era is >= d.
//
// Keying on the announced era rather than on a root -> version side map
// matters: a map entry can only be registered *after* the installing
// CAS publishes the root, so a reader can validly pin a root the map
// has never heard of, and map entries keyed by address are exposed to
// reuse ABA. The era is announced by the reader itself, is always
// conservative, and needs no shared lookup state.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "reclaim/retired.hpp"
#include "util/align.hpp"

namespace pathcopy::reclaim {

class HazardRootReclaimer {
 public:
  static constexpr std::uint64_t kScanInterval = 64;
  /// Era announced by idle slots (no guard live).
  static constexpr std::uint64_t kIdle = ~std::uint64_t{0};

  HazardRootReclaimer() = default;
  HazardRootReclaimer(const HazardRootReclaimer&) = delete;
  HazardRootReclaimer& operator=(const HazardRootReclaimer&) = delete;
  ~HazardRootReclaimer();

  struct Slot {
    std::atomic<const void*> hazard{nullptr};
    std::atomic<std::uint64_t> era{kIdle};
    std::atomic<bool> in_use{false};
  };

  class ThreadHandle {
   public:
    ThreadHandle() noexcept = default;
    ThreadHandle(ThreadHandle&& o) noexcept
        : slot_(o.slot_), since_scan_(o.since_scan_), sink_(o.sink_) {
      o.slot_ = nullptr;
      o.sink_ = RetireSink{};
    }
    ThreadHandle& operator=(ThreadHandle&& o) noexcept {
      if (this != &o) {
        release();
        slot_ = o.slot_;
        since_scan_ = o.since_scan_;
        sink_ = o.sink_;
        o.slot_ = nullptr;
        o.sink_ = RetireSink{};
      }
      return *this;
    }
    ThreadHandle(const ThreadHandle&) = delete;
    ThreadHandle& operator=(const ThreadHandle&) = delete;
    ~ThreadHandle() { release(); }

    /// Routes bundles this thread's scans ripen into a local magazine
    /// cache. Handle-local: the sink dies with the handle, which a
    /// stack-ordered ThreadCache outlives.
    void set_retire_sink(const RetireSink& sink) noexcept { sink_ = sink; }

   private:
    friend class HazardRootReclaimer;
    explicit ThreadHandle(Slot* s) noexcept : slot_(s) {}
    void release() noexcept {
      if (slot_ != nullptr) {
        slot_->hazard.store(nullptr, std::memory_order_release);
        slot_->era.store(kIdle, std::memory_order_release);
        slot_->in_use.store(false, std::memory_order_release);
        slot_ = nullptr;
      }
      sink_ = RetireSink{};
    }
    Slot* slot_ = nullptr;
    std::uint64_t since_scan_ = 0;
    RetireSink sink_{};
  };

  class Guard {
   public:
    Guard(Guard&& o) noexcept : slot_(o.slot_), root_(o.root_) { o.slot_ = nullptr; }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
    Guard& operator=(Guard&&) = delete;
    ~Guard() {
      if (slot_ != nullptr) {
        slot_->hazard.store(nullptr, std::memory_order_release);
        slot_->era.store(kIdle, std::memory_order_release);
      }
    }
    const void* root() const noexcept { return root_; }

   private:
    friend class HazardRootReclaimer;
    Guard(Slot* slot, const void* root) noexcept : slot_(slot), root_(root) {}
    Slot* slot_;
    const void* root_;
  };

  ThreadHandle register_thread();

  /// Standard hazard protocol plus the era announcement: read the version
  /// counter, load the root, announce (era, root), re-validate, loop.
  Guard pin(ThreadHandle& h, const std::atomic<const void*>& root,
            const std::atomic<std::uint64_t>& version);

  void retire_bundle(ThreadHandle& h, std::uint64_t death_version,
                     const void* old_root, const void* new_root,
                     std::vector<Retired>&& nodes);

  void drain_all();

  std::uint64_t freed_nodes() const noexcept {
    return freed_.load(std::memory_order_relaxed);
  }
  std::uint64_t pending_nodes() const noexcept {
    return retired_.load(std::memory_order_relaxed) -
           freed_.load(std::memory_order_relaxed);
  }

 private:
  // `sink` (nullable) must belong to the calling thread.
  void collect(const RetireSink* sink);
  std::uint64_t min_protected_era_locked();

  std::mutex registry_mu_;
  std::vector<std::unique_ptr<util::Padded<Slot>>> slots_;

  std::mutex mu_;  // guards bundles_
  std::vector<Bundle> bundles_;

  std::atomic<std::uint64_t> freed_{0};
  std::atomic<std::uint64_t> retired_{0};
};

}  // namespace pathcopy::reclaim
