#include "reclaim/hazard_roots.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace pathcopy::reclaim {

HazardRootReclaimer::~HazardRootReclaimer() { drain_all(); }

HazardRootReclaimer::ThreadHandle HazardRootReclaimer::register_thread() {
  std::lock_guard lock(registry_mu_);
  for (auto& slot : slots_) {
    Slot& s = slot->value;
    if (!s.in_use.load(std::memory_order_relaxed)) {
      s.in_use.store(true, std::memory_order_relaxed);
      s.hazard.store(nullptr, std::memory_order_relaxed);
      return ThreadHandle{&s};
    }
  }
  slots_.push_back(std::make_unique<util::Padded<Slot>>());
  Slot& s = slots_.back()->value;
  s.in_use.store(true, std::memory_order_relaxed);
  return ThreadHandle{&s};
}

HazardRootReclaimer::Guard HazardRootReclaimer::pin(
    ThreadHandle& h, const std::atomic<const void*>& root,
    const std::atomic<std::uint64_t>&) {
  Slot* slot = h.slot_;
  PC_DASSERT(slot != nullptr, "pin on an empty thread handle");
  for (;;) {
    const void* r = root.load(std::memory_order_acquire);
    slot->hazard.store(r, std::memory_order_seq_cst);
    // Validate: if the root moved between load and announce, the announced
    // value may already be retired — retry until the announcement sticks.
    if (root.load(std::memory_order_seq_cst) == r) {
      return Guard{slot, r};
    }
  }
}

void HazardRootReclaimer::note_root(const void* root, std::uint64_t version) {
  if (root == nullptr) return;  // empty version: nothing to protect
  std::lock_guard lock(mu_);
  root_version_[root] = version;
}

void HazardRootReclaimer::retire_bundle(ThreadHandle& h,
                                        std::uint64_t death_version,
                                        const void* old_root,
                                        const void* new_root,
                                        std::vector<Retired>&& nodes) {
  retired_.fetch_add(nodes.size(), std::memory_order_relaxed);
  {
    std::lock_guard lock(mu_);
    if (new_root != nullptr) root_version_[new_root] = death_version;
    bundles_.push_back(Bundle{death_version, old_root, std::move(nodes)});
  }
  if (++h.since_scan_ >= kScanInterval) {
    h.since_scan_ = 0;
    collect();
  }
}

std::uint64_t HazardRootReclaimer::min_protected_version_locked() {
  std::uint64_t min = ~std::uint64_t{0};
  std::lock_guard lock(registry_mu_);
  for (const auto& slot : slots_) {
    const void* h = slot->value.hazard.load(std::memory_order_seq_cst);
    if (h == nullptr) continue;
    auto it = root_version_.find(h);
    if (it != root_version_.end()) {
      min = std::min(min, it->second);
    }
    // A hazard not in the map is a transient announcement that lost its
    // validation race (the root it names was already retired and freed, so
    // the reader will loop); it protects nothing.
  }
  return min;
}

void HazardRootReclaimer::collect() {
  std::vector<Bundle> ripe;
  {
    std::lock_guard lock(mu_);
    const std::uint64_t min = min_protected_version_locked();
    std::size_t kept = 0;
    for (std::size_t i = 0; i < bundles_.size(); ++i) {
      // A protected root of version v pins all bundles with death > v.
      if (bundles_[i].death_version <= min) {
        root_version_.erase(bundles_[i].old_root);
        ripe.push_back(std::move(bundles_[i]));
      } else {
        if (kept != i) bundles_[kept] = std::move(bundles_[i]);
        ++kept;
      }
    }
    bundles_.resize(kept);
  }
  for (auto& b : ripe) {
    freed_.fetch_add(b.nodes.size(), std::memory_order_relaxed);
    run_all(b.nodes);
  }
}

void HazardRootReclaimer::drain_all() { collect(); }

}  // namespace pathcopy::reclaim
