#include "reclaim/hazard_roots.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace pathcopy::reclaim {

HazardRootReclaimer::~HazardRootReclaimer() { drain_all(); }

HazardRootReclaimer::ThreadHandle HazardRootReclaimer::register_thread() {
  std::lock_guard lock(registry_mu_);
  for (auto& slot : slots_) {
    Slot& s = slot->value;
    // Acquire pairs with the exiting owner's release store: its final
    // writes to the slot happen-before the new owner's first use.
    if (!s.in_use.load(std::memory_order_acquire)) {
      s.in_use.store(true, std::memory_order_relaxed);
      s.hazard.store(nullptr, std::memory_order_relaxed);
      s.era.store(kIdle, std::memory_order_relaxed);
      return ThreadHandle{&s};
    }
  }
  slots_.push_back(std::make_unique<util::Padded<Slot>>());
  Slot& s = slots_.back()->value;
  s.in_use.store(true, std::memory_order_relaxed);
  return ThreadHandle{&s};
}

HazardRootReclaimer::Guard HazardRootReclaimer::pin(
    ThreadHandle& h, const std::atomic<const void*>& root,
    const std::atomic<std::uint64_t>& version) {
  Slot* slot = h.slot_;
  PC_DASSERT(slot != nullptr, "pin on an empty thread handle");
  for (;;) {
    // Era before root: the counter trails the root (writers bump it after
    // their CAS), so whatever root we then load has version >= e — the
    // era conservatively covers the whole pinned snapshot, and also any
    // nodes this thread publishes on top of it (they die later still).
    const std::uint64_t e = version.load(std::memory_order_seq_cst);
    const void* r = root.load(std::memory_order_seq_cst);
    slot->era.store(e, std::memory_order_seq_cst);
    slot->hazard.store(r, std::memory_order_seq_cst);
    // Validate: if the root moved between load and announce, the announced
    // value may already be retired — retry until the announcement sticks.
    if (root.load(std::memory_order_seq_cst) == r) {
      return Guard{slot, r};
    }
  }
}

void HazardRootReclaimer::retire_bundle(ThreadHandle& h,
                                        std::uint64_t death_version,
                                        const void* old_root,
                                        const void* new_root,
                                        std::vector<Retired>&& nodes) {
  (void)new_root;
  retired_.fetch_add(nodes.size(), std::memory_order_relaxed);
  {
    std::lock_guard lock(mu_);
    bundles_.push_back(Bundle{death_version, old_root, std::move(nodes)});
  }
  if (++h.since_scan_ >= kScanInterval) {
    h.since_scan_ = 0;
    collect(&h.sink_);
  }
}

std::uint64_t HazardRootReclaimer::min_protected_era_locked() {
  std::uint64_t min = ~std::uint64_t{0};
  std::lock_guard lock(registry_mu_);
  for (const auto& slot : slots_) {
    min = std::min(min, slot->value.era.load(std::memory_order_seq_cst));
  }
  return min;
}

void HazardRootReclaimer::collect(const RetireSink* sink) {
  std::vector<Bundle> ripe;
  {
    std::lock_guard lock(mu_);
    const std::uint64_t min = min_protected_era_locked();
    std::size_t kept = 0;
    for (std::size_t i = 0; i < bundles_.size(); ++i) {
      // An announced era e pins all bundles with death > e: everything
      // the announcing thread can touch dies strictly after its era.
      if (bundles_[i].death_version <= min) {
        ripe.push_back(std::move(bundles_[i]));
      } else {
        if (kept != i) bundles_[kept] = std::move(bundles_[i]);
        ++kept;
      }
    }
    bundles_.resize(kept);
  }
  for (auto& b : ripe) {
    freed_.fetch_add(b.nodes.size(), std::memory_order_relaxed);
    free_all(b.nodes, sink);
  }
}

void HazardRootReclaimer::drain_all() {
  // Teardown/test path, possibly on a foreign thread: no sink.
  collect(nullptr);
}

}  // namespace pathcopy::reclaim
