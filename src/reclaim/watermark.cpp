#include "reclaim/watermark.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace pathcopy::reclaim {

WatermarkReclaimer::~WatermarkReclaimer() { drain_all(); }

WatermarkReclaimer::ThreadHandle WatermarkReclaimer::register_thread() {
  std::lock_guard lock(registry_mu_);
  for (auto& slot : slots_) {
    Slot& s = slot->value;
    // Acquire pairs with the exiting owner's release store: its final
    // writes to the slot happen-before the new owner's first use.
    if (!s.in_use.load(std::memory_order_acquire)) {
      s.in_use.store(true, std::memory_order_relaxed);
      s.pinned.store(kUnpinned, std::memory_order_relaxed);
      return ThreadHandle{&s};
    }
  }
  slots_.push_back(std::make_unique<util::Padded<Slot>>());
  Slot& s = slots_.back()->value;
  s.in_use.store(true, std::memory_order_relaxed);
  return ThreadHandle{&s};
}

WatermarkReclaimer::Guard WatermarkReclaimer::pin(
    ThreadHandle& h, const std::atomic<const void*>& root,
    const std::atomic<std::uint64_t>& version) {
  Slot* slot = h.slot_;
  PC_DASSERT(slot != nullptr, "pin on an empty thread handle");
  PC_DASSERT(slot->pinned.load(std::memory_order_relaxed) == kUnpinned,
             "watermark guards do not nest");
  // Pin first, then load the root: the version counter trails the root
  // CAS, so the pinned value can only be <= the version of the root we
  // subsequently observe — pinning is conservative, never unsafe.
  const std::uint64_t v = version.load(std::memory_order_acquire);
  slot->pinned.store(v, std::memory_order_seq_cst);
  const void* r = root.load(std::memory_order_seq_cst);
  return Guard{slot, r};
}

WatermarkReclaimer::Snapshot WatermarkReclaimer::pin_snapshot(
    const std::atomic<const void*>& root,
    const std::atomic<std::uint64_t>& version) {
  // Same pin-then-load discipline as Guard, with the pin recorded in the
  // shared multiset. The lock is held across the root load so a concurrent
  // collect() either sees the pin or runs before it; in the latter case the
  // root we load is at least as new as anything it freed.
  std::unique_lock lock(snap_mu_);
  const std::uint64_t v = version.load(std::memory_order_seq_cst);
  snap_pins_.push_back(v);
  const void* r = root.load(std::memory_order_seq_cst);
  lock.unlock();
  return Snapshot{this, r, v};
}

WatermarkReclaimer::Snapshot& WatermarkReclaimer::Snapshot::operator=(
    Snapshot&& o) noexcept {
  if (this != &o) {
    release();
    owner_ = o.owner_;
    root_ = o.root_;
    version_ = o.version_;
    o.owner_ = nullptr;
  }
  return *this;
}

void WatermarkReclaimer::Snapshot::release() noexcept {
  if (owner_ == nullptr) return;
  {
    std::lock_guard lock(owner_->snap_mu_);
    auto& pins = owner_->snap_pins_;
    auto it = std::find(pins.begin(), pins.end(), version_);
    PC_ASSERT(it != pins.end(), "snapshot pin missing from registry");
    *it = pins.back();
    pins.pop_back();
  }
  owner_ = nullptr;
}

std::uint64_t WatermarkReclaimer::min_pinned_version() {
  std::uint64_t min = kUnpinned;
  {
    std::lock_guard lock(registry_mu_);
    for (const auto& slot : slots_) {
      const std::uint64_t p = slot->value.pinned.load(std::memory_order_seq_cst);
      min = std::min(min, p);
    }
  }
  {
    std::lock_guard lock(snap_mu_);
    for (const std::uint64_t p : snap_pins_) min = std::min(min, p);
  }
  return min;
}

std::uint64_t WatermarkReclaimer::watermark() { return min_pinned_version(); }

void WatermarkReclaimer::retire_bundle(ThreadHandle& h,
                                       std::uint64_t death_version,
                                       const void* old_root, const void*,
                                       std::vector<Retired>&& nodes) {
  retired_.fetch_add(nodes.size(), std::memory_order_relaxed);
  {
    std::lock_guard lock(bundle_mu_);
    bundles_.push_back(Bundle{death_version, old_root, std::move(nodes)});
  }
  if (++h.since_scan_ >= kScanInterval) {
    h.since_scan_ = 0;
    collect(min_pinned_version(), &h.sink_);
  }
}

void WatermarkReclaimer::collect(std::uint64_t min_pinned,
                                 const RetireSink* sink) {
  std::vector<Bundle> ripe;
  {
    std::lock_guard lock(bundle_mu_);
    std::size_t kept = 0;
    for (std::size_t i = 0; i < bundles_.size(); ++i) {
      // Free iff every pin is at or past the death version: no reader can
      // still hold a version that contains these nodes.
      if (bundles_[i].death_version <= min_pinned) {
        ripe.push_back(std::move(bundles_[i]));
      } else {
        if (kept != i) bundles_[kept] = std::move(bundles_[i]);
        ++kept;
      }
    }
    bundles_.resize(kept);
  }
  for (auto& b : ripe) {
    freed_.fetch_add(b.nodes.size(), std::memory_order_relaxed);
    free_all(b.nodes, sink);
  }
}

void WatermarkReclaimer::drain_all() {
  // Teardown/test path, possibly on a foreign thread: no sink.
  collect(min_pinned_version(), nullptr);
}

}  // namespace pathcopy::reclaim
