// Epoch-based reclamation (EBR), the default SMR policy.
//
// Classic three-epoch scheme. Readers and writers bracket every operation
// with a Guard that announces the global epoch; a node retired in epoch e
// is freed once the global epoch has advanced to e+2, which implies every
// thread has passed through a quiescent point since the node was
// unlinked. Combined with path copying this gives the usual guarantee:
// a guard taken before a version was replaced keeps that entire version
// (and everything it shares with older versions) alive.
//
// Epoch announcements sit on their own cache lines; the retire path is
// purely thread-local except for an amortized scan of the registry every
// kScanInterval retirements.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "reclaim/retired.hpp"
#include "util/align.hpp"

namespace pathcopy::reclaim {

class EpochReclaimer {
 public:
  static constexpr std::uint64_t kIdle = ~std::uint64_t{0};
  static constexpr std::uint64_t kScanInterval = 128;

  EpochReclaimer() = default;
  EpochReclaimer(const EpochReclaimer&) = delete;
  EpochReclaimer& operator=(const EpochReclaimer&) = delete;
  ~EpochReclaimer();

  class ThreadHandle;

  class Guard {
   public:
    Guard(Guard&& o) noexcept : rec_(o.rec_), root_(o.root_) { o.rec_ = nullptr; }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
    Guard& operator=(Guard&&) = delete;
    ~Guard();

    const void* root() const noexcept { return root_; }

   private:
    friend class EpochReclaimer;
    struct Rec;
    Guard(Rec* rec, const void* root) noexcept : rec_(rec), root_(root) {}
    Rec* rec_;
    const void* root_;
  };

  /// Registers the calling thread. The handle must outlive all guards and
  /// retire calls made through it; on destruction pending garbage is
  /// transferred to the reclaimer's orphan list.
  ThreadHandle register_thread();

  Guard pin(ThreadHandle& h, const std::atomic<const void*>& root,
            const std::atomic<std::uint64_t>& version);

  /// Queues a winning writer's superseded nodes. Versions are irrelevant
  /// to EBR; the epoch at retire time is what matters.
  void retire_bundle(ThreadHandle& h, std::uint64_t death_version,
                     const void* old_root, const void* new_root,
                     std::vector<Retired>&& nodes);

  /// Frees everything still pending. Caller must guarantee no guard is
  /// live and no concurrent pin/retire is running (teardown / tests).
  void drain_all();

  std::uint64_t global_epoch() const noexcept {
    return global_epoch_.load(std::memory_order_acquire);
  }
  std::uint64_t freed_nodes() const noexcept {
    return freed_.load(std::memory_order_relaxed);
  }
  std::uint64_t pending_nodes() const noexcept {
    return retired_.load(std::memory_order_relaxed) -
           freed_.load(std::memory_order_relaxed);
  }
  std::uint64_t epoch_advances() const noexcept {
    return advances_.load(std::memory_order_relaxed);
  }

 private:
  friend class ThreadHandle;

  // Attempts to advance the global epoch; succeeds iff every registered,
  // non-idle thread has announced the current epoch.
  void try_advance() noexcept;

  // Frees the bucket's contents if its epoch is at least two behind now.
  // `sink` (nullable) routes ripened blocks into the owning thread's
  // magazine cache; only the owner thread may pass a non-null sink.
  void maybe_free_bucket(Guard::Rec& rec, std::size_t idx, std::uint64_t now,
                         const RetireSink* sink);

  void flush_to_orphans(Guard::Rec& rec);
  void free_ripe_orphans_locked(std::uint64_t now);

  std::atomic<std::uint64_t> global_epoch_{0};
  std::atomic<std::uint64_t> freed_{0};
  std::atomic<std::uint64_t> retired_{0};
  std::atomic<std::uint64_t> advances_{0};

  std::mutex registry_mu_;
  std::vector<std::unique_ptr<util::Padded<Guard::Rec>>> registry_;

  std::mutex orphan_mu_;
  struct OrphanBatch {
    std::uint64_t epoch;
    std::vector<Retired> nodes;
  };
  std::vector<OrphanBatch> orphans_;
};

struct EpochReclaimer::Guard::Rec {
  std::atomic<std::uint64_t> epoch{EpochReclaimer::kIdle};
  std::atomic<bool> in_use{false};  // slot claimed by a live ThreadHandle
  std::vector<Retired> bucket[3];
  std::uint64_t bucket_epoch[3] = {0, 0, 0};
  std::uint64_t since_scan = 0;
  EpochReclaimer* owner = nullptr;
  // Written by the owning thread only (via ThreadHandle::set_retire_sink)
  // and cleared in release() before in_use is dropped; the foreign-thread
  // paths (drain_all, orphans) never read it.
  RetireSink sink{};
};

class EpochReclaimer::ThreadHandle {
 public:
  ThreadHandle() noexcept = default;
  ThreadHandle(ThreadHandle&& o) noexcept : rec_(o.rec_) { o.rec_ = nullptr; }
  ThreadHandle& operator=(ThreadHandle&& o) noexcept {
    if (this != &o) {
      release();
      rec_ = o.rec_;
      o.rec_ = nullptr;
    }
    return *this;
  }
  ThreadHandle(const ThreadHandle&) = delete;
  ThreadHandle& operator=(const ThreadHandle&) = delete;
  ~ThreadHandle() { release(); }

  /// Routes this thread's expired bundles into a local magazine cache.
  /// The sink's object must outlive the handle (it is cleared on
  /// release, which runs before a stack-ordered ThreadCache dies).
  void set_retire_sink(const RetireSink& sink) noexcept {
    if (rec_ != nullptr) rec_->sink = sink;
  }

 private:
  friend class EpochReclaimer;
  explicit ThreadHandle(Guard::Rec* rec) noexcept : rec_(rec) {}
  void release() noexcept;
  Guard::Rec* rec_ = nullptr;
};

}  // namespace pathcopy::reclaim
