// Retired-node records shared by all reclamation schemes.
//
// A path-copying writer that wins its CAS hands the reclaimer the set of
// nodes its new version superseded (the copied path plus any removed
// node). Each record carries a type-erased destroy function so reclaimers
// never need to know node types, and a context pointer (the allocator's
// stable retire backend) so the bytes return to the allocator that made
// them, possibly on a different thread much later.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace pathcopy::reclaim {

struct Retired {
  void* p = nullptr;
  void (*fn)(void*, void*) noexcept = nullptr;
  void* ctx = nullptr;

  void run() const noexcept { fn(p, ctx); }
};

/// Destroy-and-free thunk instantiated per (node type, retire backend).
template <class Node, class Backend>
void retired_free_thunk(void* p, void* ctx) noexcept {
  auto* node = static_cast<Node*>(p);
  node->~Node();
  static_cast<Backend*>(ctx)->free_bytes(p, sizeof(Node), alignof(Node));
}

template <class Node, class Backend>
Retired make_retired(const Node* node, Backend* backend) noexcept {
  return Retired{const_cast<Node*>(static_cast<const Node*>(node)),
                 &retired_free_thunk<Node, Backend>, backend};
}

/// One successful version transition's garbage: nodes that belonged to
/// versions < death_version and are unreachable from death_version on.
struct Bundle {
  std::uint64_t death_version = 0;
  const void* old_root = nullptr;  // root of version death_version - 1
  std::vector<Retired> nodes;
};

inline void run_all(std::vector<Retired>& v) noexcept {
  for (const Retired& r : v) r.run();
  v.clear();
}

}  // namespace pathcopy::reclaim
