// Retired-node records shared by all reclamation schemes.
//
// A path-copying writer that wins its CAS hands the reclaimer the set of
// nodes its new version superseded (the copied path plus any removed
// node). Each record carries a type-erased destructor, a type-erased
// *batch* free function, and a context pointer (the allocator's stable
// retire backend) so the bytes return to the allocator that made them,
// possibly on a different thread much later.
//
// The split between dtor and free matters: when a whole bundle expires at
// once, free_all() runs every destructor, then returns the raw blocks in
// size-class groups — one backend trip per (backend, size class) instead
// of one mutex acquisition per node. A RetireSink lets the reclaiming
// thread absorb those groups straight into its own magazine allocator
// (ThreadCache), closing the allocate -> retire -> recycle loop without
// touching the shared backend at all in steady state.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace pathcopy::reclaim {

struct Retired {
  void* p = nullptr;
  void (*dtor)(void*) noexcept = nullptr;
  /// Returns n same-size blocks to the backend in one trip when it
  /// supports batching (PoolBackend::free_batch), per-block otherwise.
  void (*free_many)(void* ctx, void* const* ptrs, std::size_t n,
                    std::size_t bytes, std::size_t align) noexcept = nullptr;
  void* ctx = nullptr;
  std::uint32_t bytes = 0;
  std::uint32_t align = 0;

  /// Per-node path (kept for callers that hold a single record).
  void run() const noexcept {
    dtor(p);
    free_many(ctx, &p, 1, bytes, align);
  }
};

/// Destroy-only thunk instantiated per node type.
template <class Node>
void retired_dtor_thunk(void* p) noexcept {
  static_cast<Node*>(p)->~Node();
}

/// Batch free thunk instantiated per retire backend. Backends exposing
/// free_batch get one locked trip per group; others degrade to per-block
/// free_bytes (MallocAlloc's operator delete needs no batching anyway).
template <class Backend>
void retired_free_many_thunk(void* ctx, void* const* ptrs, std::size_t n,
                             std::size_t bytes, std::size_t align) noexcept {
  auto* backend = static_cast<Backend*>(ctx);
  if constexpr (requires { backend->free_batch(ptrs, n, bytes, align); }) {
    backend->free_batch(ptrs, n, bytes, align);
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      backend->free_bytes(ptrs[i], bytes, align);
    }
  }
}

template <class Node, class Backend>
Retired make_retired(const Node* node, Backend* backend) noexcept {
  static_assert(sizeof(Node) <= ~std::uint32_t{0}, "node too large");
  return Retired{const_cast<Node*>(node), &retired_dtor_thunk<Node>,
                 &retired_free_many_thunk<Backend>, backend,
                 static_cast<std::uint32_t>(sizeof(Node)),
                 static_cast<std::uint32_t>(alignof(Node))};
}

/// One successful version transition's garbage: nodes that belonged to
/// versions < death_version and are unreachable from death_version on.
struct Bundle {
  std::uint64_t death_version = 0;
  const void* old_root = nullptr;  // root of version death_version - 1
  std::vector<Retired> nodes;
};

/// Type-erased hook into the reclaiming thread's local magazine cache.
/// accept() takes a whole same-size group or refuses it (wrong backend,
/// oversize class); refused groups fall through to the backend. The
/// object behind `obj` must outlive the reclaimer handle it is
/// registered on (handles clear their sink on release).
struct RetireSink {
  void* obj = nullptr;
  bool (*accept)(void* obj, void* backend, void* const* ptrs, std::size_t n,
                 std::size_t bytes, std::size_t align) noexcept = nullptr;
};

/// Per-node free path (pre-batching behaviour; also the A/B baseline the
/// allocator ablation measures the batched path against).
inline void run_all(std::vector<Retired>& v) noexcept {
  for (const Retired& r : v) r.run();
  v.clear();
}

/// Process-wide switch between free_all's grouped path and the per-node
/// run_all path. Exists for A/B measurement (bench_ablation_alloc's
/// baseline arm) and regression tests; defaults to batched.
inline std::atomic<bool>& batched_free_flag() noexcept {
  static std::atomic<bool> flag{true};
  return flag;
}
inline void set_batched_free(bool on) noexcept {
  batched_free_flag().store(on, std::memory_order_relaxed);
}
inline bool batched_free_enabled() noexcept {
  return batched_free_flag().load(std::memory_order_relaxed);
}

/// Frees an expired set of records bundle-granularly: all destructors
/// first, then the raw blocks grouped by (backend, size class) — one
/// sink absorption or one backend trip per group. A bundle is typically
/// one copied path of one node type, so the common case is exactly one
/// group.
inline void free_all(std::vector<Retired>& v,
                     const RetireSink* sink = nullptr) {
  if (v.empty()) return;
  if (!batched_free_enabled()) {
    run_all(v);
    return;
  }
  for (const Retired& r : v) r.dtor(r.p);
  struct Group {
    void (*free_many)(void*, void* const*, std::size_t, std::size_t,
                      std::size_t) noexcept;
    void* ctx;
    std::uint32_t bytes;
    std::uint32_t align;
    std::vector<void*> ptrs;
  };
  std::vector<Group> groups;
  for (const Retired& r : v) {
    Group* g = nullptr;
    for (Group& cand : groups) {
      if (cand.free_many == r.free_many && cand.ctx == r.ctx &&
          cand.bytes == r.bytes && cand.align == r.align) {
        g = &cand;
        break;
      }
    }
    if (g == nullptr) {
      groups.push_back(Group{r.free_many, r.ctx, r.bytes, r.align, {}});
      g = &groups.back();
      g->ptrs.reserve(v.size());
    }
    g->ptrs.push_back(r.p);
  }
  for (Group& g : groups) {
    if (sink != nullptr && sink->obj != nullptr &&
        sink->accept(sink->obj, g.ctx, g.ptrs.data(), g.ptrs.size(), g.bytes,
                     g.align)) {
      continue;
    }
    g.free_many(g.ctx, g.ptrs.data(), g.ptrs.size(), g.bytes, g.align);
  }
  v.clear();
}

}  // namespace pathcopy::reclaim
