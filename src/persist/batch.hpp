// Vocabulary types for sorted batch application.
//
// A batch is a key-sorted, key-unique sequence of reified operations that
// a persistent structure applies in one path-copying sweep (one shared
// spine instead of one root-to-leaf copy per op). Structures that support
// it expose
//
//   DS apply_sorted_batch(Builder&, std::span<const BatchOp>,
//                         std::span<BatchOutcome>);
//
// and alias BatchOp/BatchOutcome as nested names, which is how the
// combining UC detects batch support without naming concrete structures.
//
// kAssign exists for the combiner's duplicate-key collapse: a chain of
// same-key announcements whose last erase is followed by an insert must
// leave the key present with that insert's value regardless of the prior
// state — insert-or-assign semantics, which plain set-style kInsert
// cannot express.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace pathcopy::persist {

enum class BatchOpKind : std::uint8_t {
  kInsert,  // set-style: lands only when the key is absent
  kErase,   // removes the key when present
  kAssign,  // insert-or-assign: lands when absent, overwrites when present
};

/// Per-op report from apply_sorted_batch, aligned with the input span.
enum class BatchOutcome : std::uint8_t {
  kNoop,      // no structural change (insert on present / erase on absent)
  kInserted,  // key was absent and is now present
  kErased,    // key was present and is now absent
  kAssigned,  // key was present; value overwritten in place (kAssign only)
};

template <class K, class V>
struct BatchOp {
  BatchOpKind kind;
  K key;
  std::optional<V> value;  // engaged for kInsert/kAssign, ignored for kErase
};

// Shared precondition checks. Every structure's from_sorted and
// apply_sorted_batch take strictly increasing (hence unique) keys; the
// contract is enforced here, once, so changing it (message, assert
// level, tolerance) never needs a per-structure sweep.

template <class Cmp, class K, class V>
inline void check_sorted_items(const std::vector<std::pair<K, V>>& items) {
  Cmp cmp;
  for (std::size_t i = 1; i < items.size(); ++i) {
    PC_ASSERT(cmp(items[i - 1].first, items[i].first),
              "from_sorted requires strictly increasing keys");
  }
}

template <class Cmp, class K, class V>
inline void check_sorted_batch(std::span<const BatchOp<K, V>> ops) {
  Cmp cmp;
  for (std::size_t i = 1; i < ops.size(); ++i) {
    PC_ASSERT(cmp(ops[i - 1].key, ops[i].key),
              "apply_sorted_batch requires strictly increasing keys");
  }
}

namespace detail {

/// Tree-driven sorted-batch sweep shared by the comparison-balanced
/// binary trees (AVL, weight-balanced, red-black): ops[lo, hi) are
/// partitioned around each node's key with a binary search, untouched
/// ranges return their subtree by pointer (an all-noop batch allocates
/// nothing), and children reshaped by landing ops are relinked through
/// the structure's own join discipline. Policy supplies the pieces on
/// top of a binary node with key/value/left/right members:
///   using Node = ...; using KeyCompare = ...;
///   static const Node* join(B&, key, value, l, r);   // keyed relink
///   static const Node* join2(B&, l, r);              // key was erased
///   static const Node* build_inserts(B&, ops, out, lo, hi);  // off-tree tail
/// (The treap is not a client: its sweep is priority-driven, not
/// partition-driven, and the B-tree's works on piece runs.)
template <class Policy, class B, class K, class V>
const typename Policy::Node* apply_batch_rec(B& b,
                                             const typename Policy::Node* n,
                                             std::span<const BatchOp<K, V>> ops,
                                             std::span<BatchOutcome> out,
                                             std::size_t lo, std::size_t hi) {
  using Node = typename Policy::Node;
  if (lo == hi) return n;  // untouched subtree: shared, zero copies
  if (n == nullptr) return Policy::build_inserts(b, ops, out, lo, hi);
  typename Policy::KeyCompare cmp;
  std::size_t a = lo, z = hi;
  while (a < z) {
    const std::size_t mid = a + (z - a) / 2;
    if (cmp(ops[mid].key, n->key)) {
      a = mid + 1;
    } else {
      z = mid;
    }
  }
  const bool has_eq = a < hi && !cmp(n->key, ops[a].key);
  const Node* l = apply_batch_rec<Policy>(b, n->left, ops, out, lo, a);
  const Node* r =
      apply_batch_rec<Policy>(b, n->right, ops, out, has_eq ? a + 1 : a, hi);
  if (has_eq) {
    const BatchOp<K, V>& op = ops[a];
    switch (op.kind) {
      case BatchOpKind::kErase:
        out[a] = BatchOutcome::kErased;
        b.supersede(n);
        return Policy::join2(b, l, r);
      case BatchOpKind::kAssign:
        out[a] = BatchOutcome::kAssigned;
        b.supersede(n);
        return Policy::join(b, n->key, *op.value, l, r);
      case BatchOpKind::kInsert:
        out[a] = BatchOutcome::kNoop;  // set-style: value kept
        break;
    }
  }
  if (l == n->left && r == n->right) return n;  // children untouched
  b.supersede(n);
  return Policy::join(b, n->key, n->value, l, r);
}

}  // namespace detail

}  // namespace pathcopy::persist
