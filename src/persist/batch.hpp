// Vocabulary types for sorted batch application.
//
// A batch is a key-sorted, key-unique sequence of reified operations that
// a persistent structure applies in one path-copying sweep (one shared
// spine instead of one root-to-leaf copy per op). Structures that support
// it expose
//
//   DS apply_sorted_batch(Builder&, std::span<const BatchOp>,
//                         std::span<BatchOutcome>);
//
// and alias BatchOp/BatchOutcome as nested names, which is how the
// combining UC detects batch support without naming concrete structures.
//
// kAssign exists for the combiner's duplicate-key collapse: a chain of
// same-key announcements whose last erase is followed by an insert must
// leave the key present with that insert's value regardless of the prior
// state — insert-or-assign semantics, which plain set-style kInsert
// cannot express.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace pathcopy::persist {

enum class BatchOpKind : std::uint8_t {
  kInsert,  // set-style: lands only when the key is absent
  kErase,   // removes the key when present
  kAssign,  // insert-or-assign: lands when absent, overwrites when present
};

/// Per-op report from apply_sorted_batch, aligned with the input span.
enum class BatchOutcome : std::uint8_t {
  kNoop,      // no structural change (insert on present / erase on absent)
  kInserted,  // key was absent and is now present
  kErased,    // key was present and is now absent
  kAssigned,  // key was present; value overwritten in place (kAssign only)
};

template <class K, class V>
struct BatchOp {
  BatchOpKind kind;
  K key;
  std::optional<V> value;  // engaged for kInsert/kAssign, ignored for kErase
};

/// Per-key report from get_sorted_batch, aligned with the probe span.
/// optional (not a value + flag pair) so V need not be default-constructible
/// for absent keys, mirroring BatchOp.
template <class V>
struct ReadOutcome {
  std::optional<V> value;  // engaged iff the key was present
  bool present() const noexcept { return value.has_value(); }
};

/// Descent-sharing accounting for a batched probe. per_key_nodes is the
/// exact node count B independent descents would have touched: a node lies
/// on key k's individual search path precisely when k falls inside that
/// node's partition range, so adding (hi - lo) at every visited node
/// reconstructs the per-key counterfactual without running it (absent keys
/// included — both walks stop at the same null frontier).
struct ReadProbeStats {
  std::size_t nodes_visited = 0;  // nodes the shared sweep touched
  std::size_t per_key_nodes = 0;  // nodes B per-key descents would touch

  std::size_t nodes_saved() const noexcept {
    return per_key_nodes - nodes_visited;
  }
  ReadProbeStats& operator+=(const ReadProbeStats& o) noexcept {
    nodes_visited += o.nodes_visited;
    per_key_nodes += o.per_key_nodes;
    return *this;
  }
};

// Shared precondition checks. Every structure's from_sorted and
// apply_sorted_batch take strictly increasing (hence unique) keys; the
// contract is enforced here, once, so changing it (message, assert
// level, tolerance) never needs a per-structure sweep.

template <class Cmp, class K, class V>
inline void check_sorted_items(const std::vector<std::pair<K, V>>& items) {
  Cmp cmp;
  for (std::size_t i = 1; i < items.size(); ++i) {
    PC_ASSERT(cmp(items[i - 1].first, items[i].first),
              "from_sorted requires strictly increasing keys");
  }
}

template <class Cmp, class K, class V>
inline void check_sorted_batch(std::span<const BatchOp<K, V>> ops) {
  Cmp cmp;
  for (std::size_t i = 1; i < ops.size(); ++i) {
    PC_ASSERT(cmp(ops[i - 1].key, ops[i].key),
              "apply_sorted_batch requires strictly increasing keys");
  }
}

template <class Cmp, class K>
inline void check_sorted_keys(std::span<const K> keys) {
  Cmp cmp;
  for (std::size_t i = 1; i < keys.size(); ++i) {
    PC_ASSERT(cmp(keys[i - 1], keys[i]),
              "get_sorted_batch requires strictly increasing keys");
  }
}

namespace detail {

/// Tree-driven sorted-batch sweep shared by the comparison-balanced
/// binary trees (AVL, weight-balanced, red-black): ops[lo, hi) are
/// partitioned around each node's key with a binary search, untouched
/// ranges return their subtree by pointer (an all-noop batch allocates
/// nothing), and children reshaped by landing ops are relinked through
/// the structure's own join discipline. Policy supplies the pieces on
/// top of a binary node with key/value/left/right members:
///   using Node = ...; using KeyCompare = ...;
///   static const Node* join(B&, key, value, l, r);   // keyed relink
///   static const Node* join2(B&, l, r);              // key was erased
///   static const Node* build_inserts(B&, ops, out, lo, hi);  // off-tree tail
/// (The treap is not a client: its sweep is priority-driven, not
/// partition-driven, and the B-tree's works on piece runs.)
template <class Policy, class B, class K, class V>
const typename Policy::Node* apply_batch_rec(B& b,
                                             const typename Policy::Node* n,
                                             std::span<const BatchOp<K, V>> ops,
                                             std::span<BatchOutcome> out,
                                             std::size_t lo, std::size_t hi) {
  using Node = typename Policy::Node;
  if (lo == hi) return n;  // untouched subtree: shared, zero copies
  if (n == nullptr) return Policy::build_inserts(b, ops, out, lo, hi);
  typename Policy::KeyCompare cmp;
  std::size_t a = lo, z = hi;
  while (a < z) {
    const std::size_t mid = a + (z - a) / 2;
    if (cmp(ops[mid].key, n->key)) {
      a = mid + 1;
    } else {
      z = mid;
    }
  }
  const bool has_eq = a < hi && !cmp(n->key, ops[a].key);
  const Node* l = apply_batch_rec<Policy>(b, n->left, ops, out, lo, a);
  const Node* r =
      apply_batch_rec<Policy>(b, n->right, ops, out, has_eq ? a + 1 : a, hi);
  if (has_eq) {
    const BatchOp<K, V>& op = ops[a];
    switch (op.kind) {
      case BatchOpKind::kErase:
        out[a] = BatchOutcome::kErased;
        b.supersede(n);
        return Policy::join2(b, l, r);
      case BatchOpKind::kAssign:
        out[a] = BatchOutcome::kAssigned;
        b.supersede(n);
        return Policy::join(b, n->key, *op.value, l, r);
      case BatchOpKind::kInsert:
        out[a] = BatchOutcome::kNoop;  // set-style: value kept
        break;
    }
  }
  if (l == n->left && r == n->right) return n;  // children untouched
  b.supersede(n);
  return Policy::join(b, n->key, n->value, l, r);
}

/// Single-key tails of a probe sweep, descended in interleaved waves.
/// Once partitioning narrows a subrange to one key there is nothing left
/// to share — but the tails are independent descents, so instead of
/// walking them one at a time (serializing ~log n cache misses each) the
/// sweep parks them here and flush() advances up to kCap of them
/// round-robin, one level per turn, prefetching each next node before
/// moving on. By the time a descent comes around again its line is in
/// flight; a handful of misses overlap instead of queueing. Accounting is
/// unchanged: every tail node is one visit and one per-key-counterfactual
/// node, so nodes_saved still reflects only genuinely shared prefixes.
template <class Cmp, class Node, class K, class V>
struct ProbeTails {
  static constexpr std::size_t kCap = 16;  // in-flight descents per wave
  const Node* node[kCap];
  std::size_t key_at[kCap];
  std::size_t count = 0;

  void push(const Node* n, std::size_t i, std::span<const K> keys,
            std::span<ReadOutcome<V>> out, ReadProbeStats& stats) {
    if (count == kCap) flush(keys, out, stats);
    node[count] = n;
    key_at[count] = i;
    ++count;
  }

  void flush(std::span<const K> keys, std::span<ReadOutcome<V>> out,
             ReadProbeStats& stats) {
    Cmp cmp;
    std::size_t active = count;
    std::size_t visits = 0;
    while (active > 0) {
      for (std::size_t i = 0; i < active;) {
        const Node* n = node[i];
        ++visits;
        const K& key = keys[key_at[i]];
        const Node* next;
        if (cmp(key, n->key)) {
          next = n->left;
        } else if (cmp(n->key, key)) {
          next = n->right;
        } else {
          out[key_at[i]].value = n->value;
          next = nullptr;
        }
        if (next == nullptr) {  // resolved (or ran off a leaf): retire
          --active;
          node[i] = node[active];
          key_at[i] = key_at[active];
        } else {
          __builtin_prefetch(next);
          node[i] = next;
          ++i;  // move on; next's cache line fills while others advance
        }
      }
    }
    stats.nodes_visited += visits;
    stats.per_key_nodes += visits;
    count = 0;
  }
};

template <class Cmp, class Node, class K, class V>
void read_batch_partition(const Node* n, std::span<const K> keys,
                          std::span<ReadOutcome<V>> out, std::size_t lo,
                          std::size_t hi, ReadProbeStats& stats,
                          ProbeTails<Cmp, Node, K, V>& tails) {
  if (lo == hi || n == nullptr) return;
  if (hi - lo == 1) {  // nothing left to share: park for interleaved descent
    tails.push(n, lo, keys, out, stats);
    return;
  }
  stats.nodes_visited += 1;
  stats.per_key_nodes += hi - lo;  // every probe key's own descent is here
  Cmp cmp;
  std::size_t a = lo, z = hi;
  while (a < z) {
    const std::size_t mid = a + (z - a) / 2;
    if (cmp(keys[mid], n->key)) {
      a = mid + 1;
    } else {
      z = mid;
    }
  }
  const bool has_eq = a < hi && !cmp(n->key, keys[a]);
  if (has_eq) out[a].value = n->value;
  read_batch_partition<Cmp>(n->left, keys, out, lo, a, stats, tails);
  read_batch_partition<Cmp>(n->right, keys, out, has_eq ? a + 1 : a, hi, stats,
                            tails);
}

/// Read-side twin of apply_batch_rec for the internal binary trees (treap,
/// AVL, weight-balanced, red-black — any node with key/value/left/right):
/// keys[lo, hi) are partitioned around each node's key with the same binary
/// search the write sweep uses, so a key-sorted probe batch shares its
/// descent prefix and resolves in O(B + log n) visited nodes instead of
/// O(B log n). Subranges that narrow to a single key leave the partition
/// and finish as interleaved prefetched descents (see ProbeTails). Pure
/// reads: no builder, no copies, no allocation (tail buffer is stack).
template <class Cmp, class Node, class K, class V>
void read_batch_rec(const Node* n, std::span<const K> keys,
                    std::span<ReadOutcome<V>> out, std::size_t lo,
                    std::size_t hi, ReadProbeStats& stats) {
  ProbeTails<Cmp, Node, K, V> tails;
  read_batch_partition<Cmp>(n, keys, out, lo, hi, stats, tails);
  tails.flush(keys, out, stats);
}

/// Bounded pruned in-order emit over [lo, hi) for the internal binary
/// trees: the shared body behind each structure's scan(lo, hi, limit, out).
/// Stops as soon as `remaining` hits zero, so a limit-k scan over a huge
/// range touches O(k + log n) nodes.
template <class Cmp, class Node, class K, class V>
void scan_range_rec(const Node* n, const K& lo, const K& hi,
                    std::size_t& remaining,
                    std::vector<std::pair<K, V>>& out) {
  if (n == nullptr || remaining == 0) return;
  Cmp cmp;
  if (!cmp(n->key, lo)) {  // n->key >= lo: left subtree can intersect
    scan_range_rec<Cmp>(n->left, lo, hi, remaining, out);
    if (remaining == 0) return;
    if (cmp(n->key, hi)) {  // n->key in [lo, hi)
      out.emplace_back(n->key, n->value);
      if (--remaining == 0) return;
    }
  }
  if (cmp(n->key, hi)) {  // n->key < hi: right subtree can intersect
    scan_range_rec<Cmp>(n->right, lo, hi, remaining, out);
  }
}

}  // namespace detail

}  // namespace pathcopy::persist
