// Vocabulary types for sorted batch application.
//
// A batch is a key-sorted, key-unique sequence of reified operations that
// a persistent structure applies in one path-copying sweep (one shared
// spine instead of one root-to-leaf copy per op). Structures that support
// it expose
//
//   DS apply_sorted_batch(Builder&, std::span<const BatchOp>,
//                         std::span<BatchOutcome>);
//
// and alias BatchOp/BatchOutcome as nested names, which is how the
// combining UC detects batch support without naming concrete structures.
//
// kAssign exists for the combiner's duplicate-key collapse: a chain of
// same-key announcements whose last erase is followed by an insert must
// leave the key present with that insert's value regardless of the prior
// state — insert-or-assign semantics, which plain set-style kInsert
// cannot express.
#pragma once

#include <cstdint>
#include <optional>

namespace pathcopy::persist {

enum class BatchOpKind : std::uint8_t {
  kInsert,  // set-style: lands only when the key is absent
  kErase,   // removes the key when present
  kAssign,  // insert-or-assign: lands when absent, overwrites when present
};

/// Per-op report from apply_sorted_batch, aligned with the input span.
enum class BatchOutcome : std::uint8_t {
  kNoop,      // no structural change (insert on present / erase on absent)
  kInserted,  // key was absent and is now present
  kErased,    // key was present and is now absent
  kAssigned,  // key was present; value overwritten in place (kAssign only)
};

template <class K, class V>
struct BatchOp {
  BatchOpKind kind;
  K key;
  std::optional<V> value;  // engaged for kInsert/kAssign, ignored for kErase
};

}  // namespace pathcopy::persist
