// Persistent weight-balanced tree (BB[alpha] / bounded-balance tree).
//
// The balancing scheme behind the classic functional-language ordered
// maps (Adams' trees, Haskell's Data.Map): each node keeps its subtree
// weight w = size + 1, and the invariant w(sibling) <= Delta * w(other)
// is restored by single/double rotations chosen by the Gamma criterion.
// Parameters <Delta=3, Gamma=2> are the integer pair proven correct by
// Hirai & Yamamoto (JFP 2011).
//
// Compared to the AVL tree this needs no height field (the size field
// that the rank/select API wants anyway doubles as the balance metric),
// and rotations are rarer for insert-heavy workloads — another data point
// for the structure ablation. Same path-copying discipline as every
// structure here: updates take a core::Builder and return a new handle.
//
// Supports the sorted-batch protocol (persist/batch.hpp) like the AVL
// tree: the sweep is driven by the existing tree — ops are partitioned
// around each node's key — and arbitrary weight changes from landing ops
// are repaired by a path-copying join (Adams' `link` recursion, the one
// behind Haskell's Data.Map, with the same <Delta, Gamma> = <3, 2>
// criterion as the point updates), so the result is a valid BB[alpha]
// tree whose contents match per-op application.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <tuple>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/node_base.hpp"
#include "persist/batch.hpp"
#include "util/assert.hpp"
#include "util/small_vec.hpp"

namespace pathcopy::persist {

template <class K, class V, class Cmp = std::less<K>>
class WbTree {
 public:
  using KeyType = K;
  using ValueType = V;
  using KeyCompare = Cmp;
  using BatchOp = persist::BatchOp<K, V>;
  using BatchOpKind = persist::BatchOpKind;
  using BatchOutcome = persist::BatchOutcome;
  using ReadOutcome = persist::ReadOutcome<V>;
  static constexpr std::uint64_t kDelta = 3;  // sibling weight ratio bound
  static constexpr std::uint64_t kGamma = 2;  // single-vs-double rotation

  struct Node : core::PNode {
    K key;
    V value;
    std::uint64_t size;
    const Node* left;
    const Node* right;

    Node(const K& k, const V& v, const Node* l, const Node* r)
        : key(k), value(v), size(1 + size_of(l) + size_of(r)), left(l), right(r) {}
  };

  WbTree() noexcept = default;

  static WbTree from_root(const void* root) noexcept {
    return WbTree{static_cast<const Node*>(root)};
  }
  const void* root_ptr() const noexcept { return root_; }
  const Node* root_node() const noexcept { return root_; }

  std::size_t size() const noexcept { return size_of(root_); }
  bool empty() const noexcept { return root_ == nullptr; }

  // ----- queries -----

  const V* find(const K& key) const {
    const Node* n = root_;
    Cmp cmp;
    while (n != nullptr) {
      if (cmp(key, n->key)) {
        n = n->left;
      } else if (cmp(n->key, key)) {
        n = n->right;
      } else {
        return &n->value;
      }
    }
    return nullptr;
  }

  bool contains(const K& key) const { return find(key) != nullptr; }

  const Node* min_node() const {
    const Node* n = root_;
    while (n != nullptr && n->left != nullptr) n = n->left;
    return n;
  }

  const Node* max_node() const {
    const Node* n = root_;
    while (n != nullptr && n->right != nullptr) n = n->right;
    return n;
  }

  std::size_t rank(const K& key) const {
    std::size_t r = 0;
    const Node* n = root_;
    Cmp cmp;
    while (n != nullptr) {
      if (cmp(n->key, key)) {
        r += 1 + size_of(n->left);
        n = n->right;
      } else {
        n = n->left;
      }
    }
    return r;
  }

  const Node* kth(std::size_t i) const {
    const Node* n = root_;
    while (n != nullptr) {
      const std::size_t ls = size_of(n->left);
      if (i < ls) {
        n = n->left;
      } else if (i == ls) {
        return n;
      } else {
        i -= ls + 1;
        n = n->right;
      }
    }
    return nullptr;
  }

  std::size_t count_range(const K& lo, const K& hi) const {
    const std::size_t a = rank(lo);
    const std::size_t b = rank(hi);
    return b > a ? b - a : 0;
  }

  template <class F>
  void for_each(F&& f) const {
    for_each_rec(root_, f);
  }

  /// In-order visit restricted to [lo, hi): subtrees wholly outside the
  /// interval are pruned at their root, so the visit costs O(hits + log n).
  template <class F>
  void for_each_range(const K& lo, const K& hi, F&& f) const {
    for_each_range_rec(root_, lo, hi, f);
  }

  /// Descent-sharing batched lookup; see Treap::get_sorted_batch.
  ReadProbeStats get_sorted_batch(std::span<const K> keys,
                                  std::span<ReadOutcome> out) const {
    PC_ASSERT(out.size() >= keys.size(),
              "get_sorted_batch outcome span too small");
    check_sorted_keys<Cmp, K>(keys);
    ReadProbeStats stats;
    detail::read_batch_rec<Cmp, Node, K, V>(root_, keys, out, 0, keys.size(),
                                            stats);
    return stats;
  }

  /// Bounded range scan; see Treap::scan.
  std::size_t scan(const K& lo, const K& hi, std::size_t limit,
                   std::vector<std::pair<K, V>>& out) const {
    std::size_t remaining = limit;
    detail::scan_range_rec<Cmp, Node, K, V>(root_, lo, hi, remaining, out);
    return limit - remaining;
  }

  std::vector<std::pair<K, V>> items() const {
    std::vector<std::pair<K, V>> out;
    out.reserve(size());
    for_each([&](const K& k, const V& v) { out.emplace_back(k, v); });
    return out;
  }

  // ----- updates -----

  template <class B>
  WbTree insert(B& b, const K& key, const V& value) const {
    if (contains(key)) return *this;
    return WbTree{insert_rec(b, root_, key, value)};
  }

  template <class B>
  WbTree insert_or_assign(B& b, const K& key, const V& value) const {
    if (contains(key)) return WbTree{assign_rec(b, root_, key, value)};
    return WbTree{insert_rec(b, root_, key, value)};
  }

  template <class B>
  WbTree erase(B& b, const K& key) const {
    if (!contains(key)) return *this;
    return WbTree{erase_rec(b, root_, key)};
  }

  /// O(n) bulk construction from strictly increasing (key, value) pairs.
  /// The midpoint build yields a perfectly size-balanced tree (subtree
  /// sizes differ by at most 1 at every node), which satisfies the weight
  /// invariant by construction.
  template <class B, class It>
  static WbTree from_sorted(B& b, It first, It last) {
    std::vector<std::pair<K, V>> items(first, last);
    check_sorted_items<Cmp>(items);
    return WbTree{build_sorted_rec(b, items, 0, items.size())};
  }

  /// Applies a key-sorted, key-unique op batch in one path-copying sweep
  /// and reports a per-op outcome (aligned with `ops`). Contents are
  /// exactly those of applying the ops one at a time; the whole batch
  /// shares one copied spine — untouched subtrees are returned by pointer
  /// (an all-noop batch returns the same root with zero allocations) and
  /// subtrees reshaped by landing ops are repaired with weight-aware join
  /// steps instead of one root-to-leaf copy per op.
  template <class B>
  WbTree apply_sorted_batch(B& b, std::span<const BatchOp> ops,
                            std::span<BatchOutcome> outcomes) const {
    PC_ASSERT(outcomes.size() >= ops.size(),
              "apply_sorted_batch outcome span too small");
    if (ops.empty()) return *this;
    check_sorted_batch<Cmp>(ops);
    return WbTree{detail::apply_batch_rec<BatchSweep>(b, root_, ops, outcomes,
                                                      0, ops.size())};
  }

  // ----- structural utilities -----

  bool check_invariants() const { return check_rec(root_, nullptr, nullptr).ok; }

  std::size_t height() const { return height_rec(root_); }

  static std::size_t shared_nodes(const WbTree& a, const WbTree& b) {
    std::unordered_set<const Node*> seen;
    collect(a.root_, seen);
    std::size_t shared = 0;
    count_shared(b.root_, seen, shared);
    return shared;
  }

  template <class Backend>
  static void destroy(const Node* n, Backend& backend) {
    if (n == nullptr) return;
    destroy(n->left, backend);
    destroy(n->right, backend);
    n->~Node();
    backend.free_bytes(const_cast<Node*>(n), sizeof(Node), alignof(Node));
  }

 private:
  explicit WbTree(const Node* root) noexcept : root_(root) {}

  static std::uint64_t size_of(const Node* n) noexcept {
    return n == nullptr ? 0 : n->size;
  }
  // Weight: size + 1, so empty subtrees participate in the ratio test.
  static std::uint64_t weight(const Node* n) noexcept { return size_of(n) + 1; }

  template <class B>
  static const Node* mk(B& b, const K& k, const V& v, const Node* l,
                        const Node* r) {
    return b.template create<Node>(k, v, l, r);
  }

  /// Rebuilds node (k, v, l, r), restoring the weight invariant. l and r
  /// are valid WB trees whose weights differ from balanced by at most one
  /// inserted/removed element (the standard local-repair precondition).
  template <class B>
  static const Node* balance(B& b, const K& k, const V& v, const Node* l,
                             const Node* r) {
    const std::uint64_t wl = weight(l);
    const std::uint64_t wr = weight(r);
    if (wl + wr <= 2) return mk(b, k, v, l, r);  // at most one child, tiny
    if (wl > kDelta * wr) {
      // Left-heavy. Single right rotation unless the inner grandchild is
      // too heavy (Gamma criterion), then double.
      if (weight(l->right) < kGamma * weight(l->left)) {
        b.supersede(l);
        return mk(b, l->key, l->value, l->left, mk(b, k, v, l->right, r));
      }
      const Node* lr = l->right;
      b.supersede(l);
      b.supersede(lr);
      return mk(b, lr->key, lr->value,
                mk(b, l->key, l->value, l->left, lr->left),
                mk(b, k, v, lr->right, r));
    }
    if (wr > kDelta * wl) {
      if (weight(r->left) < kGamma * weight(r->right)) {
        b.supersede(r);
        return mk(b, r->key, r->value, mk(b, k, v, l, r->left), r->right);
      }
      const Node* rl = r->left;
      b.supersede(r);
      b.supersede(rl);
      return mk(b, rl->key, rl->value, mk(b, k, v, l, rl->left),
                mk(b, r->key, r->value, rl->right, r->right));
    }
    return mk(b, k, v, l, r);
  }

  template <class B>
  static const Node* insert_rec(B& b, const Node* n, const K& key,
                                const V& value) {
    if (n == nullptr) return mk(b, key, value, nullptr, nullptr);
    Cmp cmp;
    b.supersede(n);
    if (cmp(key, n->key)) {
      return balance(b, n->key, n->value, insert_rec(b, n->left, key, value),
                     n->right);
    }
    PC_DASSERT(cmp(n->key, key), "insert_rec on a present key");
    return balance(b, n->key, n->value, n->left,
                   insert_rec(b, n->right, key, value));
  }

  template <class B>
  static const Node* assign_rec(B& b, const Node* n, const K& key,
                                const V& value) {
    PC_DASSERT(n != nullptr, "assign_rec past a leaf");
    Cmp cmp;
    b.supersede(n);
    if (cmp(key, n->key)) {
      return mk(b, n->key, n->value, assign_rec(b, n->left, key, value),
                n->right);
    }
    if (cmp(n->key, key)) {
      return mk(b, n->key, n->value, n->left,
                assign_rec(b, n->right, key, value));
    }
    return mk(b, n->key, value, n->left, n->right);
  }

  template <class B>
  static const Node* erase_rec(B& b, const Node* n, const K& key) {
    PC_DASSERT(n != nullptr, "erase_rec past a leaf");
    Cmp cmp;
    b.supersede(n);
    if (cmp(key, n->key)) {
      return balance(b, n->key, n->value, erase_rec(b, n->left, key), n->right);
    }
    if (cmp(n->key, key)) {
      return balance(b, n->key, n->value, n->left, erase_rec(b, n->right, key));
    }
    if (n->left == nullptr) return n->right;
    if (n->right == nullptr) return n->left;
    auto [min_key, min_value, nr] = pop_min(b, n->right);
    return balance(b, min_key, min_value, n->left, nr);
  }

  template <class B>
  static std::tuple<K, V, const Node*> pop_min(B& b, const Node* n) {
    b.supersede(n);
    if (n->left == nullptr) return {n->key, n->value, n->right};
    auto [k, v, nl] = pop_min(b, n->left);
    return {k, v, balance(b, n->key, n->value, nl, n->right)};
  }

  template <class B>
  static const Node* build_sorted_rec(B& b,
                                      const std::vector<std::pair<K, V>>& items,
                                      std::size_t lo, std::size_t hi) {
    if (lo == hi) return nullptr;
    const std::size_t mid = lo + (hi - lo) / 2;
    const Node* l = build_sorted_rec(b, items, lo, mid);
    const Node* r = build_sorted_rec(b, items, mid + 1, hi);
    return mk(b, items[mid].first, items[mid].second, l, r);
  }

  // --- sorted-batch application ---

  /// Joins l < (k, v) < r where l and r may differ in weight arbitrarily
  /// (the batch recursion hands back reshaped subtrees). Adams' `link`:
  /// descends the heavier side's inner spine until the Delta ratio holds,
  /// then links; every unwind step is a balance() whose single/double
  /// rotation (Gamma criterion) restores the invariant level by level.
  template <class B>
  static const Node* join(B& b, const K& k, const V& v, const Node* l,
                          const Node* r) {
    const std::uint64_t wl = weight(l);
    const std::uint64_t wr = weight(r);
    if (wl > kDelta * wr) {
      b.supersede(l);
      return balance(b, l->key, l->value, l->left, join(b, k, v, l->right, r));
    }
    if (wr > kDelta * wl) {
      b.supersede(r);
      return balance(b, r->key, r->value, join(b, k, v, l, r->left), r->right);
    }
    return mk(b, k, v, l, r);
  }

  /// Joins l < r without a middle key (the batch erased it): pulls up r's
  /// minimum as the new pivot.
  template <class B>
  static const Node* join2(B& b, const Node* l, const Node* r) {
    if (r == nullptr) return l;
    auto [k, v, nr] = pop_min(b, r);
    return join(b, k, v, l, nr);
  }

  /// Inline scratch capacity for the batch-tail builder; combiner batches
  /// are at most 2x the announcement-slot count.
  static constexpr std::size_t kInlineBatch = 128;

  /// Policy for the shared tree-driven sweep (persist/batch.hpp): the
  /// partition recursion lives there; only the join discipline and the
  /// off-tree bulk build are weight-balance-specific.
  struct BatchSweep {
    using Node = WbTree::Node;
    using KeyCompare = Cmp;
    template <class B>
    static const Node* join(B& b, const K& k, const V& v, const Node* l,
                            const Node* r) {
      return WbTree::join(b, k, v, l, r);
    }
    template <class B>
    static const Node* join2(B& b, const Node* l, const Node* r) {
      return WbTree::join2(b, l, r);
    }
    template <class B>
    static const Node* build_inserts(B& b, std::span<const BatchOp> ops,
                                     std::span<BatchOutcome> out,
                                     std::size_t lo, std::size_t hi) {
      return WbTree::build_batch_inserts(b, ops, out, lo, hi);
    }
  };

  // Batch tail that ran off the tree: erases are no-ops, the surviving
  // inserts/assigns build their balanced subtree directly via the same
  // midpoint scheme as from_sorted.
  template <class B>
  static const Node* build_batch_inserts(B& b, std::span<const BatchOp> ops,
                                         std::span<BatchOutcome> out,
                                         std::size_t lo, std::size_t hi) {
    util::SmallVec<std::size_t, kInlineBatch> land;  // ops that insert
    for (std::size_t i = lo; i < hi; ++i) {
      if (ops[i].kind == BatchOpKind::kErase) {
        out[i] = BatchOutcome::kNoop;
      } else {
        out[i] = BatchOutcome::kInserted;
        land.push_back(i);
      }
    }
    if (land.empty()) return nullptr;
    return build_land_rec(b, ops, land, 0, land.size());
  }

  template <class B>
  static const Node* build_land_rec(
      B& b, std::span<const BatchOp> ops,
      const util::SmallVec<std::size_t, kInlineBatch>& land, std::size_t lo,
      std::size_t hi) {
    if (lo == hi) return nullptr;
    const std::size_t mid = lo + (hi - lo) / 2;
    const Node* l = build_land_rec(b, ops, land, lo, mid);
    const Node* r = build_land_rec(b, ops, land, mid + 1, hi);
    const BatchOp& op = ops[land[mid]];
    return mk(b, op.key, *op.value, l, r);
  }

  template <class F>
  static void for_each_rec(const Node* n, F& f) {
    if (n == nullptr) return;
    for_each_rec(n->left, f);
    f(n->key, n->value);
    for_each_rec(n->right, f);
  }

  template <class F>
  static void for_each_range_rec(const Node* n, const K& lo, const K& hi,
                                 F& f) {
    if (n == nullptr) return;
    Cmp cmp;
    if (cmp(n->key, lo)) {  // entire left subtree < lo as well
      for_each_range_rec(n->right, lo, hi, f);
      return;
    }
    if (!cmp(n->key, hi)) {  // n->key >= hi
      for_each_range_rec(n->left, lo, hi, f);
      return;
    }
    for_each_range_rec(n->left, lo, hi, f);
    f(n->key, n->value);
    for_each_range_rec(n->right, lo, hi, f);
  }

  struct CheckResult {
    bool ok;
    std::uint64_t size;
  };

  static CheckResult check_rec(const Node* n, const K* lo, const K* hi) {
    if (n == nullptr) return {true, 0};
    Cmp cmp;
    if (lo != nullptr && !cmp(*lo, n->key)) return {false, 0};
    if (hi != nullptr && !cmp(n->key, *hi)) return {false, 0};
    if (n->pc_state_ != core::NodeState::kPublished) return {false, 0};
    const CheckResult l = check_rec(n->left, lo, &n->key);
    if (!l.ok) return {false, 0};
    const CheckResult r = check_rec(n->right, &n->key, hi);
    if (!r.ok) return {false, 0};
    const std::uint64_t wl = l.size + 1;
    const std::uint64_t wr = r.size + 1;
    // Tiny subtrees are exempt, as in the balance() fast path.
    if (wl + wr > 2 && (wl > kDelta * wr || wr > kDelta * wl)) return {false, 0};
    const std::uint64_t sz = 1 + l.size + r.size;
    return {sz == n->size, sz};
  }

  static std::size_t height_rec(const Node* n) {
    if (n == nullptr) return 0;
    const std::size_t l = height_rec(n->left);
    const std::size_t r = height_rec(n->right);
    return 1 + (l > r ? l : r);
  }

  static void collect(const Node* n, std::unordered_set<const Node*>& out) {
    if (n == nullptr) return;
    out.insert(n);
    collect(n->left, out);
    collect(n->right, out);
  }

  static void count_shared(const Node* n,
                           const std::unordered_set<const Node*>& in,
                           std::size_t& shared) {
    if (n == nullptr) return;
    if (in.contains(n)) {
      shared += n->size;
      return;
    }
    count_shared(n->left, in, shared);
    count_shared(n->right, in, shared);
  }

  const Node* root_ = nullptr;
};

}  // namespace pathcopy::persist
