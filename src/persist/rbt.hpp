// Persistent red-black tree.
//
// Third balanced-tree instance for the universal construction (alongside
// AVL and the weight-balanced tree). Insertion is Okasaki's rotation-free
// rebalancing; deletion follows the Coq MSetRBT formulation (Appel /
// Filliâtre / Letouzey): `append` fuses the two subtrees of the deleted
// node, and the `lbalS`/`rbalS` smart constructors repair a subtree whose
// black height dropped by one. That algorithm is machine-checked in Coq,
// which makes it a trustworthy donor for a from-scratch transcription —
// the test suite re-verifies the red/black invariants after every
// mutation anyway.
//
// Compared to the treap, a red-black update copies a slightly longer
// prefix of the path (recoloring cascades), but guarantees height
// <= 2·log2(N+1) deterministically. The structure ablation (E8) measures
// the resulting copy-cost difference.
//
// Size-augmented like every structure here: rank/kth/count_range are
// O(log N), and a handle is a single root pointer.
//
// Supports the sorted-batch protocol (persist/batch.hpp): the sweep is
// tree-driven like the AVL port — ops partition around each node's key —
// and subtrees reshaped by landing ops are stitched back with a
// black-height-aware join (descend the taller side's spine to equal
// height, attach red, repair red-red on unwind — the "just join"
// formulation), so the result honors the full red/black contract while
// untouched subtrees are shared by pointer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/node_base.hpp"
#include "persist/batch.hpp"
#include "util/assert.hpp"
#include "util/small_vec.hpp"

namespace pathcopy::persist {

template <class K, class V, class Cmp = std::less<K>>
class RbTree {
 public:
  using KeyType = K;
  using ValueType = V;
  using KeyCompare = Cmp;
  using BatchOp = persist::BatchOp<K, V>;
  using BatchOpKind = persist::BatchOpKind;
  using BatchOutcome = persist::BatchOutcome;
  using ReadOutcome = persist::ReadOutcome<V>;
  enum class Color : std::uint8_t { kRed = 0, kBlack = 1 };

  struct Node : core::PNode {
    K key;
    V value;
    Color color;
    std::uint64_t size;
    const Node* left;
    const Node* right;

    Node(Color c, const Node* l, const K& k, const V& v, const Node* r)
        : key(k), value(v), color(c),
          size(1 + size_of(l) + size_of(r)),
          left(l), right(r) {}
  };

  RbTree() noexcept = default;

  static RbTree from_root(const void* root) noexcept {
    return RbTree{static_cast<const Node*>(root)};
  }
  const void* root_ptr() const noexcept { return root_; }
  const Node* root_node() const noexcept { return root_; }

  std::size_t size() const noexcept { return size_of(root_); }
  bool empty() const noexcept { return root_ == nullptr; }

  // ----- queries -----

  const V* find(const K& key) const {
    const Node* n = root_;
    Cmp cmp;
    while (n != nullptr) {
      if (cmp(key, n->key)) {
        n = n->left;
      } else if (cmp(n->key, key)) {
        n = n->right;
      } else {
        return &n->value;
      }
    }
    return nullptr;
  }

  bool contains(const K& key) const { return find(key) != nullptr; }

  // ----- combining-gate clustering probe (core/combining.hpp) -----
  //
  // A red-black tree has no wide leaves, but its sorted-batch sweep has
  // an analogous fixed cost per *touched region*: the partition recursion
  // plus black-height joins (one recoloring rotation per unwind level)
  // that a landing op only amortizes when neighbors share them — the
  // join-machinery overhead behind the uniform-key batch loss measured in
  // bench_batch_combining. The probe prices a batch in "virtual leaves":
  // the maximal subtrees of at most kBatchVirtualLeaf keys, found by a
  // size-bounded descent (the size augmentation is already in every
  // node), mirroring the B-tree's physical-leaf probe. A batch that puts
  // ~one op per virtual leaf pays the join machinery per op and loses to
  // the per-op loop; a clustered batch shares it and wins.

  /// Size bound of one virtual leaf — the cost-model constant the gate
  /// consumes (kBatchFanout advertises it to the ReportsBatchFanout
  /// concept; kBatchMinOpsPerLeaf is the matching density demand).
  static constexpr unsigned kBatchVirtualLeaf = 8;
  static constexpr unsigned kBatchFanout = kBatchVirtualLeaf;
  /// Ops that must share a touched virtual leaf, on average, for the
  /// sorted sweep to beat per-op application (below it, join rebalancing
  /// dominates — the ~0.6x uniform-key cell).
  static constexpr unsigned kBatchMinOpsPerLeaf = 2;

  /// Number of distinct virtual leaves a key-sorted, key-unique batch
  /// would touch. Sampling contract as BTree::count_leaf_runs: at most
  /// max_runs descents, *ops_covered reports how many leading ops the
  /// counted leaves absorbed, covered/runs estimating the batch's mean
  /// clustering from a prefix.
  unsigned count_leaf_runs(std::span<const BatchOp> ops,
                           unsigned max_runs = ~0u,
                           std::size_t* ops_covered = nullptr) const {
    std::size_t covered = ops.size();
    unsigned runs = 0;
    if (!ops.empty() && size_of(root_) <= kBatchVirtualLeaf) {
      runs = 1;
    } else if (!ops.empty()) {
      Cmp cmp;
      std::size_t i = 0;
      while (i < ops.size() && runs < max_runs) {
        ++runs;
        const Node* n = root_;
        const K* hi = nullptr;  // tightest upper bound along the descent
        while (n != nullptr && n->size > kBatchVirtualLeaf) {
          if (cmp(ops[i].key, n->key)) {
            hi = &n->key;
            n = n->left;
          } else {
            n = n->right;
          }
        }
        ++i;
        while (i < ops.size() && (hi == nullptr || cmp(ops[i].key, *hi))) ++i;
      }
      covered = i;
    }
    if (ops_covered != nullptr) *ops_covered = covered;
    return runs;
  }

  const Node* min_node() const {
    const Node* n = root_;
    while (n != nullptr && n->left != nullptr) n = n->left;
    return n;
  }

  const Node* max_node() const {
    const Node* n = root_;
    while (n != nullptr && n->right != nullptr) n = n->right;
    return n;
  }

  /// Largest key <= key, or nullptr.
  const Node* floor_node(const K& key) const {
    const Node* n = root_;
    const Node* best = nullptr;
    Cmp cmp;
    while (n != nullptr) {
      if (cmp(key, n->key)) {
        n = n->left;
      } else {
        best = n;
        n = n->right;
      }
    }
    return best;
  }

  /// Smallest key >= key, or nullptr.
  const Node* ceiling_node(const K& key) const {
    const Node* n = root_;
    const Node* best = nullptr;
    Cmp cmp;
    while (n != nullptr) {
      if (cmp(n->key, key)) {
        n = n->right;
      } else {
        best = n;
        n = n->left;
      }
    }
    return best;
  }

  /// Number of keys strictly less than key.
  std::size_t rank(const K& key) const {
    std::size_t r = 0;
    const Node* n = root_;
    Cmp cmp;
    while (n != nullptr) {
      if (cmp(n->key, key)) {
        r += 1 + size_of(n->left);
        n = n->right;
      } else {
        n = n->left;
      }
    }
    return r;
  }

  /// The i-th smallest key (0-based); nullptr when i >= size().
  const Node* kth(std::size_t i) const {
    const Node* n = root_;
    while (n != nullptr) {
      const std::size_t ls = size_of(n->left);
      if (i < ls) {
        n = n->left;
      } else if (i == ls) {
        return n;
      } else {
        i -= ls + 1;
        n = n->right;
      }
    }
    return nullptr;
  }

  /// Keys in the half-open interval [lo, hi).
  std::size_t count_range(const K& lo, const K& hi) const {
    const std::size_t a = rank(lo);
    const std::size_t b = rank(hi);
    return b > a ? b - a : 0;
  }

  template <class F>
  void for_each(F&& f) const {
    for_each_rec(root_, f);
  }

  /// In-order visit restricted to [lo, hi): subtrees wholly outside the
  /// interval are pruned at their root, so the visit costs O(hits + log n).
  template <class F>
  void for_each_range(const K& lo, const K& hi, F&& f) const {
    for_each_range_rec(root_, lo, hi, f);
  }

  /// Descent-sharing batched lookup; see Treap::get_sorted_batch.
  ReadProbeStats get_sorted_batch(std::span<const K> keys,
                                  std::span<ReadOutcome> out) const {
    PC_ASSERT(out.size() >= keys.size(),
              "get_sorted_batch outcome span too small");
    check_sorted_keys<Cmp, K>(keys);
    ReadProbeStats stats;
    detail::read_batch_rec<Cmp, Node, K, V>(root_, keys, out, 0, keys.size(),
                                            stats);
    return stats;
  }

  /// Bounded range scan; see Treap::scan.
  std::size_t scan(const K& lo, const K& hi, std::size_t limit,
                   std::vector<std::pair<K, V>>& out) const {
    std::size_t remaining = limit;
    detail::scan_range_rec<Cmp, Node, K, V>(root_, lo, hi, remaining, out);
    return limit - remaining;
  }

  std::vector<std::pair<K, V>> items() const {
    std::vector<std::pair<K, V>> out;
    out.reserve(size());
    for_each([&](const K& k, const V& v) { out.emplace_back(k, v); });
    return out;
  }

  // ----- updates -----

  template <class B>
  RbTree insert(B& b, const K& key, const V& value) const {
    if (contains(key)) return *this;
    return RbTree{make_black(b, ins(b, root_, key, value))};
  }

  template <class B>
  RbTree insert_or_assign(B& b, const K& key, const V& value) const {
    return RbTree{make_black(b, ins(b, root_, key, value))};
  }

  template <class B>
  RbTree erase(B& b, const K& key) const {
    if (!contains(key)) return *this;
    return RbTree{make_black(b, del(b, root_, key))};
  }

  /// O(n) bulk construction from strictly increasing (key, value) pairs.
  /// The midpoint build fills every level but the last, so coloring the
  /// bottommost level red and everything above black gives a uniform
  /// black height (every root-to-null path sees exactly the full-level
  /// blacks) with no red-red edge — a valid red-black tree.
  template <class B, class It>
  static RbTree from_sorted(B& b, It first, It last) {
    std::vector<std::pair<K, V>> items(first, last);
    check_sorted_items<Cmp>(items);
    const std::size_t levels = levels_of(items.size());
    return RbTree{build_sorted_rec(b, items, 0, items.size(), 1, levels)};
  }

  /// Applies a key-sorted, key-unique op batch in one path-copying sweep
  /// and reports a per-op outcome (aligned with `ops`). Contents are
  /// exactly those of applying the ops one at a time; untouched subtrees
  /// are returned by pointer (an all-noop batch returns the same root
  /// with zero allocations) and reshaped subtrees are stitched back with
  /// O(|bh difference|) join steps plus a bounded recolor cascade.
  template <class B>
  RbTree apply_sorted_batch(B& b, std::span<const BatchOp> ops,
                            std::span<BatchOutcome> outcomes) const {
    PC_ASSERT(outcomes.size() >= ops.size(),
              "apply_sorted_batch outcome span too small");
    if (ops.empty()) return *this;
    check_sorted_batch<Cmp>(ops);
    // The root is always black, so an untouched result stays shared and
    // a reshaped one is re-anchored for free (make_black on black = id).
    return RbTree{make_black(b, detail::apply_batch_rec<BatchSweep>(
                                    b, root_, ops, outcomes, 0, ops.size()))};
  }

  // ----- structural utilities -----

  /// Verifies the full red-black contract: BST order, black root, no
  /// red-red edge, uniform black height, correct size augmentation, and
  /// published builder state on every node.
  bool check_invariants() const {
    if (is_red(root_)) return false;
    return check_rec(root_, nullptr, nullptr).ok;
  }

  std::size_t height() const { return height_rec(root_); }

  /// Black nodes on any root-to-leaf path (0 for the empty tree).
  std::size_t black_height() const {
    std::size_t h = 0;
    for (const Node* n = root_; n != nullptr; n = n->left) {
      if (n->color == Color::kBlack) ++h;
    }
    return h;
  }

  static std::size_t shared_nodes(const RbTree& a, const RbTree& b) {
    std::unordered_set<const Node*> seen;
    collect(a.root_, seen);
    std::size_t shared = 0;
    count_shared(b.root_, seen, shared);
    return shared;
  }

  template <class Backend>
  static void destroy(const Node* n, Backend& backend) {
    if (n == nullptr) return;
    destroy(n->left, backend);
    destroy(n->right, backend);
    n->~Node();
    backend.free_bytes(const_cast<Node*>(n), sizeof(Node), alignof(Node));
  }

 private:
  explicit RbTree(const Node* root) noexcept : root_(root) {}

  static constexpr Color kRed = Color::kRed;
  static constexpr Color kBlack = Color::kBlack;

  static std::uint64_t size_of(const Node* n) noexcept {
    return n == nullptr ? 0 : n->size;
  }
  static bool is_red(const Node* n) noexcept {
    return n != nullptr && n->color == kRed;
  }
  static bool is_black_node(const Node* n) noexcept {
    return n != nullptr && n->color == kBlack;
  }

  template <class B>
  static const Node* mk(B& b, Color c, const Node* l, const K& k, const V& v,
                        const Node* r) {
    return b.template create<Node>(c, l, k, v, r);
  }

  /// Returns a black-rooted equivalent of n (possibly n itself).
  template <class B>
  static const Node* make_black(B& b, const Node* n) {
    if (n == nullptr || n->color == kBlack) return n;
    b.supersede(n);
    return mk(b, kBlack, n->left, n->key, n->value, n->right);
  }

  /// Returns a red-rooted copy of n. Only called on non-null black nodes
  /// whose subtrees tolerate the recolor (lbalS/rbalS interior cases).
  template <class B>
  static const Node* make_red(B& b, const Node* n) {
    PC_DASSERT(n != nullptr, "make_red on empty tree");
    b.supersede(n);
    return mk(b, kRed, n->left, n->key, n->value, n->right);
  }

  // ----- insertion (Okasaki) -----

  /// Okasaki's balance for a black node whose *left* subtree may carry a
  /// red-red violation introduced by insertion.
  template <class B>
  static const Node* lbal(B& b, const Node* l, const K& k, const V& v,
                          const Node* r) {
    if (is_red(l)) {
      if (is_red(l->left)) {
        const Node* ll = l->left;
        b.supersede(l);
        b.supersede(ll);
        return mk(b, kRed,
                  mk(b, kBlack, ll->left, ll->key, ll->value, ll->right),
                  l->key, l->value, mk(b, kBlack, l->right, k, v, r));
      }
      if (is_red(l->right)) {
        const Node* lr = l->right;
        b.supersede(l);
        b.supersede(lr);
        return mk(b, kRed, mk(b, kBlack, l->left, l->key, l->value, lr->left),
                  lr->key, lr->value, mk(b, kBlack, lr->right, k, v, r));
      }
    }
    return mk(b, kBlack, l, k, v, r);
  }

  /// Mirror image of lbal for a violation in the right subtree.
  template <class B>
  static const Node* rbal(B& b, const Node* l, const K& k, const V& v,
                          const Node* r) {
    if (is_red(r)) {
      if (is_red(r->left)) {
        const Node* rl = r->left;
        b.supersede(r);
        b.supersede(rl);
        return mk(b, kRed, mk(b, kBlack, l, k, v, rl->left), rl->key,
                  rl->value,
                  mk(b, kBlack, rl->right, r->key, r->value, r->right));
      }
      if (is_red(r->right)) {
        const Node* rr = r->right;
        b.supersede(r);
        b.supersede(rr);
        return mk(b, kRed, mk(b, kBlack, l, k, v, r->left), r->key, r->value,
                  mk(b, kBlack, rr->left, rr->key, rr->value, rr->right));
      }
    }
    return mk(b, kBlack, l, k, v, r);
  }

  /// Insert-or-assign on the subtree rooted at n. May return a red-rooted
  /// tree with one red-red violation at the root; make_black repairs it.
  template <class B>
  static const Node* ins(B& b, const Node* n, const K& k, const V& v) {
    if (n == nullptr) return mk(b, kRed, nullptr, k, v, nullptr);
    Cmp cmp;
    b.supersede(n);
    if (cmp(k, n->key)) {
      if (n->color == kRed) {
        return mk(b, kRed, ins(b, n->left, k, v), n->key, n->value, n->right);
      }
      return lbal(b, ins(b, n->left, k, v), n->key, n->value, n->right);
    }
    if (cmp(n->key, k)) {
      if (n->color == kRed) {
        return mk(b, kRed, n->left, n->key, n->value, ins(b, n->right, k, v));
      }
      return rbal(b, n->left, n->key, n->value, ins(b, n->right, k, v));
    }
    return mk(b, n->color, n->left, k, v, n->right);
  }

  // ----- deletion (MSetRBT) -----

  /// lbal with the match arms flipped (the deletion rebalancers need the
  /// left-right case to win when both violations are present).
  template <class B>
  static const Node* lbal_prime(B& b, const Node* l, const K& k, const V& v,
                                const Node* r) {
    if (is_red(l)) {
      if (is_red(l->right)) {
        const Node* lr = l->right;
        b.supersede(l);
        b.supersede(lr);
        return mk(b, kRed, mk(b, kBlack, l->left, l->key, l->value, lr->left),
                  lr->key, lr->value, mk(b, kBlack, lr->right, k, v, r));
      }
      if (is_red(l->left)) {
        const Node* ll = l->left;
        b.supersede(l);
        b.supersede(ll);
        return mk(b, kRed,
                  mk(b, kBlack, ll->left, ll->key, ll->value, ll->right),
                  l->key, l->value, mk(b, kBlack, l->right, k, v, r));
      }
    }
    return mk(b, kBlack, l, k, v, r);
  }

  /// rbal preferring the right-right case.
  template <class B>
  static const Node* rbal_prime(B& b, const Node* l, const K& k, const V& v,
                                const Node* r) {
    if (is_red(r)) {
      if (is_red(r->right)) {
        const Node* rr = r->right;
        b.supersede(r);
        b.supersede(rr);
        return mk(b, kRed, mk(b, kBlack, l, k, v, r->left), r->key, r->value,
                  mk(b, kBlack, rr->left, rr->key, rr->value, rr->right));
      }
      if (is_red(r->left)) {
        const Node* rl = r->left;
        b.supersede(r);
        b.supersede(rl);
        return mk(b, kRed, mk(b, kBlack, l, k, v, rl->left), rl->key,
                  rl->value,
                  mk(b, kBlack, rl->right, r->key, r->value, r->right));
      }
    }
    return mk(b, kBlack, l, k, v, r);
  }

  /// Rebuilds (l, k, v, r) where subtree l's black height is one less than
  /// r's (a deletion on the left shrank it). Restores equal black heights,
  /// possibly returning a red root for the caller to absorb.
  template <class B>
  static const Node* lbalS(B& b, const Node* l, const K& k, const V& v,
                           const Node* r) {
    if (is_red(l)) {
      b.supersede(l);
      return mk(b, kRed, mk(b, kBlack, l->left, l->key, l->value, l->right),
                k, v, r);
    }
    PC_DASSERT(r != nullptr, "lbalS: right sibling cannot be empty");
    if (r->color == kBlack) {
      b.supersede(r);
      return rbal_prime(b, l, k, v,
                        mk(b, kRed, r->left, r->key, r->value, r->right));
    }
    // r red: its left child is black and non-null.
    const Node* rl = r->left;
    PC_DASSERT(is_black_node(rl), "lbalS: red sibling must have black child");
    b.supersede(r);
    b.supersede(rl);
    return mk(b, kRed, mk(b, kBlack, l, k, v, rl->left), rl->key, rl->value,
              rbal_prime(b, rl->right, r->key, r->value,
                         make_red(b, r->right)));
  }

  /// Mirror image: subtree r lost one black level.
  template <class B>
  static const Node* rbalS(B& b, const Node* l, const K& k, const V& v,
                           const Node* r) {
    if (is_red(r)) {
      b.supersede(r);
      return mk(b, kRed, l, k, v,
                mk(b, kBlack, r->left, r->key, r->value, r->right));
    }
    PC_DASSERT(l != nullptr, "rbalS: left sibling cannot be empty");
    if (l->color == kBlack) {
      b.supersede(l);
      return lbal_prime(b, mk(b, kRed, l->left, l->key, l->value, l->right),
                        k, v, r);
    }
    const Node* lr = l->right;
    PC_DASSERT(is_black_node(lr), "rbalS: red sibling must have black child");
    b.supersede(l);
    b.supersede(lr);
    return mk(b, kRed,
              lbal_prime(b, make_red(b, l->left), l->key, l->value, lr->left),
              lr->key, lr->value, mk(b, kBlack, lr->right, k, v, r));
  }

  /// Fuses subtrees l and r (all keys of l < all keys of r) that have
  /// equal black height — the two children of a deleted node.
  template <class B>
  static const Node* append(B& b, const Node* l, const Node* r) {
    if (l == nullptr) return r;
    if (r == nullptr) return l;
    if (l->color == kRed && r->color == kRed) {
      b.supersede(l);
      b.supersede(r);
      const Node* m = append(b, l->right, r->left);
      if (is_red(m)) {
        b.supersede(m);
        return mk(b, kRed, mk(b, kRed, l->left, l->key, l->value, m->left),
                  m->key, m->value,
                  mk(b, kRed, m->right, r->key, r->value, r->right));
      }
      return mk(b, kRed, l->left, l->key, l->value,
                mk(b, kRed, m, r->key, r->value, r->right));
    }
    if (l->color == kBlack && r->color == kBlack) {
      b.supersede(l);
      b.supersede(r);
      const Node* m = append(b, l->right, r->left);
      if (is_red(m)) {
        b.supersede(m);
        return mk(b, kRed, mk(b, kBlack, l->left, l->key, l->value, m->left),
                  m->key, m->value,
                  mk(b, kBlack, m->right, r->key, r->value, r->right));
      }
      return lbalS(b, l->left, l->key, l->value,
                   mk(b, kBlack, m, r->key, r->value, r->right));
    }
    if (r->color == kRed) {  // l black
      b.supersede(r);
      return mk(b, kRed, append(b, l, r->left), r->key, r->value, r->right);
    }
    // l red, r black.
    b.supersede(l);
    return mk(b, kRed, l->left, l->key, l->value, append(b, l->right, r));
  }

  /// Deletes key k (known present) from subtree n. The result's black
  /// height is one less than n's iff n is black; make_black at the root
  /// re-anchors the contract.
  template <class B>
  static const Node* del(B& b, const Node* n, const K& k) {
    PC_DASSERT(n != nullptr, "del past a leaf");
    Cmp cmp;
    b.supersede(n);
    if (cmp(k, n->key)) {
      if (is_black_node(n->left)) {
        return lbalS(b, del(b, n->left, k), n->key, n->value, n->right);
      }
      return mk(b, kRed, del(b, n->left, k), n->key, n->value, n->right);
    }
    if (cmp(n->key, k)) {
      if (is_black_node(n->right)) {
        return rbalS(b, n->left, n->key, n->value, del(b, n->right, k));
      }
      return mk(b, kRed, n->left, n->key, n->value, del(b, n->right, k));
    }
    return append(b, n->left, n->right);
  }

  // ----- bulk construction and sorted-batch application -----

  /// Levels of the midpoint-built tree of n nodes (bit_width(n)): every
  /// level but the last is full, which is what the coloring rule rides.
  static std::size_t levels_of(std::size_t n) noexcept {
    std::size_t lv = 0;
    while (n != 0) {
      ++lv;
      n >>= 1;
    }
    return lv;
  }

  template <class B>
  static const Node* build_sorted_rec(B& b,
                                      const std::vector<std::pair<K, V>>& items,
                                      std::size_t lo, std::size_t hi,
                                      std::size_t depth, std::size_t levels) {
    if (lo == hi) return nullptr;
    const std::size_t mid = lo + (hi - lo) / 2;
    const Node* l = build_sorted_rec(b, items, lo, mid, depth + 1, levels);
    const Node* r = build_sorted_rec(b, items, mid + 1, hi, depth + 1, levels);
    const Color c = (depth == levels && levels > 1) ? kRed : kBlack;
    return mk(b, c, l, items[mid].first, items[mid].second, r);
  }

  /// Blacks on the left spine — the black height of any valid subtree.
  static std::size_t black_height_of(const Node* n) noexcept {
    std::size_t h = 0;
    for (; n != nullptr; n = n->left) {
      if (n->color == kBlack) ++h;
    }
    return h;
  }

  /// Descends l's right spine to the black node of r's black height,
  /// attaches (k, v) red there, and repairs any red-red pair on unwind
  /// with one recoloring left rotation per level. Pre: bh(l) >= bh(r),
  /// both roots black.
  template <class B>
  static const Node* join_right(B& b, const Node* l, const K& k, const V& v,
                                const Node* r, std::size_t bl, std::size_t br) {
    if (bl == br && !is_red(l)) return mk(b, kRed, l, k, v, r);
    b.supersede(l);
    const Node* t = join_right(b, l->right, k, v, r,
                               bl - (l->color == kBlack ? 1 : 0), br);
    if (l->color == kBlack && is_red(t) && is_red(t->right)) {
      const Node* tr = t->right;
      b.supersede(t);
      b.supersede(tr);
      return mk(b, kRed, mk(b, kBlack, l->left, l->key, l->value, t->left),
                t->key, t->value,
                mk(b, kBlack, tr->left, tr->key, tr->value, tr->right));
    }
    return mk(b, l->color, l->left, l->key, l->value, t);
  }

  /// Mirror image: descends r's left spine. Pre: bh(r) >= bh(l).
  template <class B>
  static const Node* join_left(B& b, const Node* l, const K& k, const V& v,
                               const Node* r, std::size_t bl, std::size_t br) {
    if (bl == br && !is_red(r)) return mk(b, kRed, l, k, v, r);
    b.supersede(r);
    const Node* t = join_left(b, l, k, v, r->left, bl,
                              br - (r->color == kBlack ? 1 : 0));
    if (r->color == kBlack && is_red(t) && is_red(t->left)) {
      const Node* tl = t->left;
      b.supersede(t);
      b.supersede(tl);
      return mk(b, kRed, mk(b, kBlack, tl->left, tl->key, tl->value, tl->right),
                t->key, t->value,
                mk(b, kBlack, t->right, r->key, r->value, r->right));
    }
    return mk(b, r->color, t, r->key, r->value, r->right);
  }

  /// Joins l < (k, v) < r where l and r are standalone valid red-black
  /// subtrees of arbitrary black height (the batch recursion hands back
  /// reshaped trees). Result is a valid black-rooted tree.
  template <class B>
  static const Node* join(B& b, const K& k, const V& v, const Node* l,
                          const Node* r) {
    l = make_black(b, l);
    r = make_black(b, r);
    const std::size_t bl = black_height_of(l);
    const std::size_t br = black_height_of(r);
    if (bl == br) return mk(b, kBlack, l, k, v, r);
    const Node* t = bl > br ? join_right(b, l, k, v, r, bl, br)
                            : join_left(b, l, k, v, r, bl, br);
    return make_black(b, t);
  }

  /// Joins l < r without a middle key (the batch erased it): pops r's
  /// minimum through the deletion machinery and reuses it as the pivot.
  template <class B>
  static const Node* join2(B& b, const Node* l, const Node* r) {
    if (r == nullptr) return l;
    if (l == nullptr) return r;
    const Node* rb = make_black(b, r);
    const Node* mn = rb;
    while (mn->left != nullptr) mn = mn->left;
    const K pk = mn->key;
    const V pv = mn->value;
    const Node* rest = make_black(b, del(b, rb, pk));
    return join(b, pk, pv, l, rest);
  }

  /// Inline scratch capacity for the batch-tail builder; combiner batches
  /// are at most 2x the announcement-slot count.
  static constexpr std::size_t kInlineBatch = 128;

  /// Policy for the shared tree-driven sweep (persist/batch.hpp): the
  /// partition recursion lives there; only the join discipline and the
  /// off-tree bulk build are red-black-specific.
  struct BatchSweep {
    using Node = RbTree::Node;
    using KeyCompare = Cmp;
    template <class B>
    static const Node* join(B& b, const K& k, const V& v, const Node* l,
                            const Node* r) {
      return RbTree::join(b, k, v, l, r);
    }
    template <class B>
    static const Node* join2(B& b, const Node* l, const Node* r) {
      return RbTree::join2(b, l, r);
    }
    template <class B>
    static const Node* build_inserts(B& b, std::span<const BatchOp> ops,
                                     std::span<BatchOutcome> out,
                                     std::size_t lo, std::size_t hi) {
      return RbTree::build_batch_inserts(b, ops, out, lo, hi);
    }
  };

  // Batch tail that ran off the tree: erases are no-ops, the surviving
  // inserts/assigns build their balanced subtree directly via the same
  // leveled-coloring midpoint scheme as from_sorted.
  template <class B>
  static const Node* build_batch_inserts(B& b, std::span<const BatchOp> ops,
                                         std::span<BatchOutcome> out,
                                         std::size_t lo, std::size_t hi) {
    util::SmallVec<std::size_t, kInlineBatch> land;  // ops that insert
    for (std::size_t i = lo; i < hi; ++i) {
      if (ops[i].kind == BatchOpKind::kErase) {
        out[i] = BatchOutcome::kNoop;
      } else {
        out[i] = BatchOutcome::kInserted;
        land.push_back(i);
      }
    }
    if (land.empty()) return nullptr;
    return build_land_rec(b, ops, land, 0, land.size(), 1,
                          levels_of(land.size()));
  }

  template <class B>
  static const Node* build_land_rec(
      B& b, std::span<const BatchOp> ops,
      const util::SmallVec<std::size_t, kInlineBatch>& land, std::size_t lo,
      std::size_t hi, std::size_t depth, std::size_t levels) {
    if (lo == hi) return nullptr;
    const std::size_t mid = lo + (hi - lo) / 2;
    const Node* l = build_land_rec(b, ops, land, lo, mid, depth + 1, levels);
    const Node* r = build_land_rec(b, ops, land, mid + 1, hi, depth + 1, levels);
    const BatchOp& op = ops[land[mid]];
    const Color c = (depth == levels && levels > 1) ? kRed : kBlack;
    return mk(b, c, l, op.key, *op.value, r);
  }

  // ----- verification and traversal -----

  template <class F>
  static void for_each_rec(const Node* n, F& f) {
    if (n == nullptr) return;
    for_each_rec(n->left, f);
    f(n->key, n->value);
    for_each_rec(n->right, f);
  }

  template <class F>
  static void for_each_range_rec(const Node* n, const K& lo, const K& hi,
                                 F& f) {
    if (n == nullptr) return;
    Cmp cmp;
    if (cmp(n->key, lo)) {  // entire left subtree < lo as well
      for_each_range_rec(n->right, lo, hi, f);
      return;
    }
    if (!cmp(n->key, hi)) {  // n->key >= hi
      for_each_range_rec(n->left, lo, hi, f);
      return;
    }
    for_each_range_rec(n->left, lo, hi, f);
    f(n->key, n->value);
    for_each_range_rec(n->right, lo, hi, f);
  }

  static std::size_t height_rec(const Node* n) {
    if (n == nullptr) return 0;
    return 1 + std::max(height_rec(n->left), height_rec(n->right));
  }

  struct CheckResult {
    bool ok;
    std::uint64_t size;
    std::size_t black_height;
  };

  static CheckResult check_rec(const Node* n, const K* lo, const K* hi) {
    if (n == nullptr) return {true, 0, 0};
    Cmp cmp;
    if (lo != nullptr && !cmp(*lo, n->key)) return {false, 0, 0};
    if (hi != nullptr && !cmp(n->key, *hi)) return {false, 0, 0};
    if (n->pc_state_ != core::NodeState::kPublished) return {false, 0, 0};
    if (n->color == kRed && (is_red(n->left) || is_red(n->right))) {
      return {false, 0, 0};
    }
    const CheckResult l = check_rec(n->left, lo, &n->key);
    if (!l.ok) return {false, 0, 0};
    const CheckResult r = check_rec(n->right, &n->key, hi);
    if (!r.ok) return {false, 0, 0};
    if (l.black_height != r.black_height) return {false, 0, 0};
    const std::uint64_t sz = 1 + l.size + r.size;
    const std::size_t bh =
        l.black_height + (n->color == kBlack ? 1 : 0);
    return {sz == n->size, sz, bh};
  }

  static void collect(const Node* n, std::unordered_set<const Node*>& out) {
    if (n == nullptr) return;
    out.insert(n);
    collect(n->left, out);
    collect(n->right, out);
  }

  static void count_shared(const Node* n,
                           const std::unordered_set<const Node*>& in,
                           std::size_t& shared) {
    if (n == nullptr) return;
    if (in.contains(n)) {
      shared += n->size;
      return;
    }
    count_shared(n->left, in, shared);
    count_shared(n->right, in, shared);
  }

  const Node* root_ = nullptr;
};

}  // namespace pathcopy::persist
