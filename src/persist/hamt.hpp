// Persistent hash array-mapped trie (HAMT).
//
// The unordered counterpart to the search trees: keys are placed by their
// 64-bit hash, consumed `Bits` bits per level, so the trie is at most
// ceil(64/Bits) levels deep regardless of size. Path copying still
// applies — an update copies the O(log_W N) branches from the root to the
// touched slot (W = 2^Bits) — which makes the HAMT the natural probe for
// how the paper's cache effect depends on *branching factor*: wider nodes
// mean shorter paths (fewer serialized uncached loads for the winner) but
// a larger copied footprint per level (more bytes written per attempt,
// and a retry's "modified nodes" are wider too). The branching ablation
// bench sweeps Bits to map this trade-off in the model.
//
// Design notes:
//   * Branch nodes hold a direct child[W] array plus a presence bitmap.
//     Production HAMTs compress the array to popcount(bitmap) entries;
//     we keep it direct so a branch copy is one memcpy-able object with a
//     type the Builder can allocate (the ablation cares about node bytes,
//     which we report, not about matching any particular implementation's
//     memory layout).
//   * Canonical form: a branch never holds exactly one leaf/collision
//     child (it would have been collapsed into the parent), so structural
//     equality of versions implies set equality, and erase undoes what
//     insert built. check_invariants() enforces this.
//   * Full 64-bit hash collisions land in a Collision node holding the
//     colliding (key, value) pairs, placed at the depth where the clash
//     was discovered (Clojure-style); a later key with a different hash
//     that reaches the bucket splits around it. Tests exercise both with
//     a deliberately degenerate hash.
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/node_base.hpp"
#include "util/assert.hpp"

namespace pathcopy::persist {

template <class K, class V, unsigned Bits = 6, class Hash = std::hash<K>>
class Hamt {
  static_assert(Bits >= 1 && Bits <= 6,
                "width is bounded by the 64-bit presence bitmap");

 public:
  using KeyType = K;
  using ValueType = V;
  static constexpr unsigned kBits = Bits;
  static constexpr unsigned kWidth = 1u << Bits;
  /// Levels before the 64-bit hash is exhausted.
  static constexpr unsigned kMaxDepth = (64 + Bits - 1) / Bits;

  enum class Kind : std::uint8_t { kLeaf, kBranch, kCollision };

  struct Node : core::PNode {
    Kind kind;
    std::uint64_t size;
    Node(Kind k, std::uint64_t s) : kind(k), size(s) {}
  };

  struct Leaf : Node {
    std::uint64_t hash;
    K key;
    V value;
    Leaf(std::uint64_t h, const K& k, const V& v)
        : Node(Kind::kLeaf, 1), hash(h), key(k), value(v) {}
  };

  struct Branch : Node {
    std::uint64_t bitmap;
    std::array<const Node*, kWidth> child;
    Branch(std::uint64_t bm, const std::array<const Node*, kWidth>& ch)
        : Node(Kind::kBranch, 0), bitmap(bm), child(ch) {
      for (const Node* c : child) {
        if (c != nullptr) this->size += c->size;
      }
    }
  };

  struct Collision : Node {
    std::uint64_t hash;
    std::vector<std::pair<K, V>> entries;
    Collision(std::uint64_t h, std::vector<std::pair<K, V>> e)
        : Node(Kind::kCollision, e.size()), hash(h), entries(std::move(e)) {}
  };

  Hamt() noexcept = default;

  static Hamt from_root(const void* root) noexcept {
    return Hamt{static_cast<const Node*>(root)};
  }
  const void* root_ptr() const noexcept { return root_; }
  const Node* root_node() const noexcept { return root_; }

  std::size_t size() const noexcept { return root_ == nullptr ? 0 : root_->size; }
  bool empty() const noexcept { return root_ == nullptr; }

  // ----- queries -----

  const V* find(const K& key) const {
    const std::uint64_t h = Hash{}(key);
    const Node* n = root_;
    unsigned depth = 0;
    while (n != nullptr) {
      switch (n->kind) {
        case Kind::kLeaf: {
          const auto* leaf = static_cast<const Leaf*>(n);
          return (leaf->hash == h && leaf->key == key) ? &leaf->value
                                                       : nullptr;
        }
        case Kind::kCollision: {
          const auto* coll = static_cast<const Collision*>(n);
          if (coll->hash != h) return nullptr;
          for (const auto& [k, v] : coll->entries) {
            if (k == key) return &v;
          }
          return nullptr;
        }
        case Kind::kBranch: {
          const auto* br = static_cast<const Branch*>(n);
          n = br->child[symbol(h, depth)];
          ++depth;
          break;
        }
      }
    }
    return nullptr;
  }

  bool contains(const K& key) const { return find(key) != nullptr; }

  /// Visits (key, value) in unspecified (hash) order.
  template <class F>
  void for_each(F&& f) const {
    for_each_rec(root_, f);
  }

  std::vector<std::pair<K, V>> items() const {
    std::vector<std::pair<K, V>> out;
    out.reserve(size());
    for_each([&](const K& k, const V& v) { out.emplace_back(k, v); });
    return out;
  }

  // ----- updates -----

  template <class B>
  Hamt insert(B& b, const K& key, const V& value) const {
    if (contains(key)) return *this;
    return Hamt{insert_rec(b, root_, 0, Hash{}(key), key, value)};
  }

  template <class B>
  Hamt insert_or_assign(B& b, const K& key, const V& value) const {
    return Hamt{insert_rec(b, root_, 0, Hash{}(key), key, value)};
  }

  template <class B>
  Hamt erase(B& b, const K& key) const {
    if (!contains(key)) return *this;
    return Hamt{erase_rec(b, root_, 0, Hash{}(key), key)};
  }

  // ----- structural utilities -----

  bool check_invariants() const {
    if (root_ == nullptr) return true;
    return check_rec(root_, 0, 0);
  }

  /// Deepest node level (1 for a lone leaf; 0 for empty).
  std::size_t height() const { return height_rec(root_); }

  static std::size_t shared_nodes(const Hamt& a, const Hamt& b) {
    std::unordered_set<const Node*> seen;
    collect(a.root_, seen);
    std::size_t shared = 0;
    count_shared(b.root_, seen, shared);
    return shared;
  }

  template <class Backend>
  static void destroy(const Node* n, Backend& backend) {
    if (n == nullptr) return;
    switch (n->kind) {
      case Kind::kLeaf: {
        const auto* leaf = static_cast<const Leaf*>(n);
        leaf->~Leaf();
        backend.free_bytes(const_cast<Leaf*>(leaf), sizeof(Leaf),
                           alignof(Leaf));
        return;
      }
      case Kind::kCollision: {
        const auto* coll = static_cast<const Collision*>(n);
        coll->~Collision();
        backend.free_bytes(const_cast<Collision*>(coll), sizeof(Collision),
                           alignof(Collision));
        return;
      }
      case Kind::kBranch: {
        const auto* br = static_cast<const Branch*>(n);
        for (const Node* c : br->child) destroy(c, backend);
        br->~Branch();
        backend.free_bytes(const_cast<Branch*>(br), sizeof(Branch),
                           alignof(Branch));
        return;
      }
    }
  }

 private:
  explicit Hamt(const Node* root) noexcept : root_(root) {}

  static unsigned symbol(std::uint64_t hash, unsigned depth) noexcept {
    return static_cast<unsigned>((hash >> (depth * Bits)) & (kWidth - 1));
  }

  template <class B>
  static const Leaf* mk_leaf(B& b, std::uint64_t h, const K& k, const V& v) {
    return b.template create<Leaf>(h, k, v);
  }

  /// Builds the minimal branch chain distinguishing two subtrees whose
  /// hashes first diverge at or below `depth`. Both arguments are adopted
  /// (shared), not copied.
  template <class B>
  static const Node* join(B& b, unsigned depth, std::uint64_t ha,
                          const Node* a, std::uint64_t hb, const Node* n) {
    PC_DASSERT(depth < kMaxDepth, "join past hash exhaustion");
    const unsigned sa = symbol(ha, depth);
    const unsigned sb = symbol(hb, depth);
    std::array<const Node*, kWidth> ch{};
    if (sa == sb) {
      const Node* sub = join(b, depth + 1, ha, a, hb, n);
      ch[sa] = sub;
      return b.template create<Branch>(std::uint64_t{1} << sa, ch);
    }
    ch[sa] = a;
    ch[sb] = n;
    return b.template create<Branch>((std::uint64_t{1} << sa) |
                                         (std::uint64_t{1} << sb),
                                     ch);
  }

  template <class B>
  static const Node* insert_rec(B& b, const Node* n, unsigned depth,
                                std::uint64_t h, const K& key, const V& value) {
    if (n == nullptr) return mk_leaf(b, h, key, value);
    switch (n->kind) {
      case Kind::kLeaf: {
        const auto* leaf = static_cast<const Leaf*>(n);
        if (leaf->hash == h && leaf->key == key) {
          b.supersede(leaf);
          return mk_leaf(b, h, key, value);
        }
        if (leaf->hash == h) {
          // Full 64-bit collision: both pairs move into a collision node.
          b.supersede(leaf);
          std::vector<std::pair<K, V>> entries;
          entries.emplace_back(leaf->key, leaf->value);
          entries.emplace_back(key, value);
          return b.template create<Collision>(h, std::move(entries));
        }
        // Hashes diverge somewhere at or below this depth: the old leaf is
        // shared into the new branch chain, not copied.
        return join(b, depth, leaf->hash, leaf, h,
                    mk_leaf(b, h, key, value));
      }
      case Kind::kCollision: {
        const auto* coll = static_cast<const Collision*>(n);
        if (coll->hash != h) {
          // A foreign hash reached a (shallow) collision bucket: split,
          // sharing the whole bucket into the new branch chain.
          return join(b, depth, coll->hash, coll, h,
                      mk_leaf(b, h, key, value));
        }
        b.supersede(coll);
        std::vector<std::pair<K, V>> entries = coll->entries;
        bool replaced = false;
        for (auto& [k, v] : entries) {
          if (k == key) {
            v = value;
            replaced = true;
            break;
          }
        }
        if (!replaced) entries.emplace_back(key, value);
        return b.template create<Collision>(h, std::move(entries));
      }
      case Kind::kBranch: {
        const auto* br = static_cast<const Branch*>(n);
        const unsigned sym = symbol(h, depth);
        b.supersede(br);
        std::array<const Node*, kWidth> ch = br->child;
        ch[sym] = insert_rec(b, ch[sym], depth + 1, h, key, value);
        return b.template create<Branch>(br->bitmap |
                                             (std::uint64_t{1} << sym),
                                         ch);
      }
    }
    return nullptr;  // unreachable
  }

  template <class B>
  static const Node* erase_rec(B& b, const Node* n, unsigned depth,
                               std::uint64_t h, const K& key) {
    PC_DASSERT(n != nullptr, "erase_rec past a leaf");
    switch (n->kind) {
      case Kind::kLeaf: {
        const auto* leaf = static_cast<const Leaf*>(n);
        PC_DASSERT(leaf->key == key, "erase_rec reached the wrong leaf");
        b.supersede(leaf);
        return nullptr;
      }
      case Kind::kCollision: {
        const auto* coll = static_cast<const Collision*>(n);
        b.supersede(coll);
        std::vector<std::pair<K, V>> entries;
        entries.reserve(coll->entries.size() - 1);
        for (const auto& e : coll->entries) {
          if (!(e.first == key)) entries.push_back(e);
        }
        if (entries.size() == 1) {
          return mk_leaf(b, h, entries[0].first, entries[0].second);
        }
        return b.template create<Collision>(h, std::move(entries));
      }
      case Kind::kBranch: {
        const auto* br = static_cast<const Branch*>(n);
        const unsigned sym = symbol(h, depth);
        b.supersede(br);
        std::array<const Node*, kWidth> ch = br->child;
        ch[sym] = erase_rec(b, ch[sym], depth + 1, h, key);
        std::uint64_t bm = br->bitmap;
        if (ch[sym] == nullptr) bm &= ~(std::uint64_t{1} << sym);
        const int n_children = std::popcount(bm);
        if (n_children == 0) return nullptr;
        if (n_children == 1) {
          const Node* only = ch[static_cast<unsigned>(std::countr_zero(bm))];
          // Collapse a lone leaf/collision into the parent (canonical
          // form); a lone branch child must stay, its depth matters.
          if (only->kind != Kind::kBranch) return only;
        }
        return b.template create<Branch>(bm, ch);
      }
    }
    return nullptr;  // unreachable
  }

  template <class F>
  static void for_each_rec(const Node* n, F& f) {
    if (n == nullptr) return;
    switch (n->kind) {
      case Kind::kLeaf: {
        const auto* leaf = static_cast<const Leaf*>(n);
        f(leaf->key, leaf->value);
        return;
      }
      case Kind::kCollision: {
        const auto* coll = static_cast<const Collision*>(n);
        for (const auto& [k, v] : coll->entries) f(k, v);
        return;
      }
      case Kind::kBranch: {
        const auto* br = static_cast<const Branch*>(n);
        for (const Node* c : br->child) for_each_rec(c, f);
        return;
      }
    }
  }

  static std::size_t height_rec(const Node* n) {
    if (n == nullptr) return 0;
    if (n->kind != Kind::kBranch) return 1;
    const auto* br = static_cast<const Branch*>(n);
    std::size_t best = 0;
    for (const Node* c : br->child) {
      best = std::max(best, height_rec(c));
    }
    return 1 + best;
  }

  /// prefix = the path's symbols packed little-endian, valid below `depth`.
  static bool check_rec(const Node* n, unsigned depth, std::uint64_t prefix) {
    if (n->pc_state_ != core::NodeState::kPublished) return false;
    const std::uint64_t prefix_mask =
        depth * Bits >= 64 ? ~std::uint64_t{0}
                           : ((std::uint64_t{1} << (depth * Bits)) - 1);
    switch (n->kind) {
      case Kind::kLeaf: {
        const auto* leaf = static_cast<const Leaf*>(n);
        if (Hash{}(leaf->key) != leaf->hash) return false;
        if ((leaf->hash & prefix_mask) != prefix) return false;
        return leaf->size == 1;
      }
      case Kind::kCollision: {
        const auto* coll = static_cast<const Collision*>(n);
        if (coll->entries.size() < 2) return false;
        if (coll->size != coll->entries.size()) return false;
        for (const auto& [k, v] : coll->entries) {
          if (Hash{}(k) != coll->hash) return false;
        }
        return (coll->hash & prefix_mask) == prefix;
      }
      case Kind::kBranch: {
        const auto* br = static_cast<const Branch*>(n);
        if (br->bitmap == 0) return false;
        const int n_children = std::popcount(br->bitmap);
        std::uint64_t total = 0;
        for (unsigned s = 0; s < kWidth; ++s) {
          const bool bit = (br->bitmap >> s) & 1;
          if (bit != (br->child[s] != nullptr)) return false;
          if (!bit) continue;
          const Node* c = br->child[s];
          if (n_children == 1 && c->kind != Kind::kBranch) {
            return false;  // should have been collapsed (canonical form)
          }
          if (!check_rec(c, depth + 1,
                         prefix | (std::uint64_t{s} << (depth * Bits)))) {
            return false;
          }
          total += c->size;
        }
        return total == br->size;
      }
    }
    return false;
  }

  static void collect(const Node* n, std::unordered_set<const Node*>& out) {
    if (n == nullptr) return;
    out.insert(n);
    if (n->kind == Kind::kBranch) {
      const auto* br = static_cast<const Branch*>(n);
      for (const Node* c : br->child) collect(c, out);
    }
  }

  static void count_shared(const Node* n,
                           const std::unordered_set<const Node*>& in,
                           std::size_t& shared) {
    if (n == nullptr) return;
    if (in.contains(n)) {
      shared += n->size;
      return;
    }
    if (n->kind == Kind::kBranch) {
      const auto* br = static_cast<const Branch*>(n);
      for (const Node* c : br->child) count_shared(c, in, shared);
    }
  }

  const Node* root_ = nullptr;
};

}  // namespace pathcopy::persist
