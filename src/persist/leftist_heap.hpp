// Persistent leftist min-heap (Okasaki-style purely functional heap).
//
// A non-search-tree instance for the universal construction: meld-based
// priority queue whose push/pop path-copy only the right spine, which is
// O(log N) by the leftist rank invariant (rank(left) >= rank(right) at
// every node, where rank is the length of the rightmost path to null).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "core/node_base.hpp"
#include "util/assert.hpp"

namespace pathcopy::persist {

template <class T, class Cmp = std::less<T>>
class LeftistHeap {
 public:
  struct Node : core::PNode {
    T value;
    std::uint32_t rank;  // null path length
    std::uint64_t size;
    const Node* left;
    const Node* right;

    Node(const T& v, const Node* l, const Node* r)
        : value(v),
          rank(1 + rank_of(r)),
          size(1 + size_of(l) + size_of(r)),
          left(l), right(r) {}
  };

  LeftistHeap() noexcept = default;

  static LeftistHeap from_root(const void* root) noexcept {
    return LeftistHeap{static_cast<const Node*>(root)};
  }
  const void* root_ptr() const noexcept { return root_; }
  const Node* root_node() const noexcept { return root_; }

  std::size_t size() const noexcept { return size_of(root_); }
  bool empty() const noexcept { return root_ == nullptr; }

  /// Minimum element; undefined on the empty heap.
  const T& top() const {
    PC_ASSERT(root_ != nullptr, "top() on empty heap");
    return root_->value;
  }

  template <class B>
  LeftistHeap push(B& b, const T& value) const {
    const Node* single = b.template create<Node>(value, nullptr, nullptr);
    return LeftistHeap{meld_rec(b, root_, single)};
  }

  /// Removes the minimum; no-op on the empty heap.
  template <class B>
  LeftistHeap pop(B& b) const {
    if (root_ == nullptr) return *this;
    b.supersede(root_);
    return LeftistHeap{meld_rec(b, root_->left, root_->right)};
  }

  template <class B>
  static LeftistHeap meld(B& b, const LeftistHeap& x, const LeftistHeap& y) {
    return LeftistHeap{meld_rec(b, x.root_, y.root_)};
  }

  /// Pre-order visit (heap order within paths, not globally sorted).
  template <class F>
  void for_each(F&& f) const {
    for_each_rec(root_, f);
  }

  /// Drains a copy of the heap in sorted order (O(n log n); test helper).
  template <class B>
  std::vector<T> drain_sorted(B& b) const {
    std::vector<T> out;
    out.reserve(size());
    LeftistHeap h = *this;
    while (!h.empty()) {
      out.push_back(h.top());
      h = h.pop(b);
    }
    return out;
  }

  bool check_invariants() const { return check_rec(root_).ok; }

  static std::size_t shared_nodes(const LeftistHeap& a, const LeftistHeap& b) {
    std::unordered_set<const Node*> seen;
    collect(a.root_, seen);
    std::size_t shared = 0;
    count_shared(b.root_, seen, shared);
    return shared;
  }

  template <class Backend>
  static void destroy(const Node* n, Backend& backend) {
    if (n == nullptr) return;
    destroy(n->left, backend);
    destroy(n->right, backend);
    n->~Node();
    backend.free_bytes(const_cast<Node*>(n), sizeof(Node), alignof(Node));
  }

 private:
  explicit LeftistHeap(const Node* root) noexcept : root_(root) {}

  static std::uint32_t rank_of(const Node* n) noexcept {
    return n == nullptr ? 0 : n->rank;
  }
  static std::uint64_t size_of(const Node* n) noexcept {
    return n == nullptr ? 0 : n->size;
  }

  template <class B>
  static const Node* meld_rec(B& b, const Node* x, const Node* y) {
    if (x == nullptr) return y;
    if (y == nullptr) return x;
    Cmp cmp;
    if (cmp(y->value, x->value)) {
      const Node* t = x;
      x = y;
      y = t;
    }
    // x holds the smaller value: it is copied with y melded into its right
    // spine; the left subtree stays shared.
    const Node* merged = meld_rec(b, x->right, y);
    b.supersede(x);
    // Leftist invariant: higher-rank child goes left.
    if (rank_of(x->left) >= rank_of(merged)) {
      return b.template create<Node>(x->value, x->left, merged);
    }
    return b.template create<Node>(x->value, merged, x->left);
  }

  template <class F>
  static void for_each_rec(const Node* n, F& f) {
    if (n == nullptr) return;
    f(n->value);
    for_each_rec(n->left, f);
    for_each_rec(n->right, f);
  }

  struct CheckResult {
    bool ok;
    std::uint32_t rank;
    std::uint64_t size;
  };

  static CheckResult check_rec(const Node* n) {
    if (n == nullptr) return {true, 0, 0};
    Cmp cmp;
    if (n->pc_state_ != core::NodeState::kPublished) return {false, 0, 0};
    // Heap order.
    if (n->left != nullptr && cmp(n->left->value, n->value)) return {false, 0, 0};
    if (n->right != nullptr && cmp(n->right->value, n->value)) return {false, 0, 0};
    const CheckResult l = check_rec(n->left);
    if (!l.ok) return {false, 0, 0};
    const CheckResult r = check_rec(n->right);
    if (!r.ok) return {false, 0, 0};
    // Leftist rank invariant.
    if (l.rank < r.rank) return {false, 0, 0};
    const std::uint32_t rk = 1 + r.rank;
    const std::uint64_t sz = 1 + l.size + r.size;
    return {rk == n->rank && sz == n->size, rk, sz};
  }

  static void collect(const Node* n, std::unordered_set<const Node*>& out) {
    if (n == nullptr) return;
    out.insert(n);
    collect(n->left, out);
    collect(n->right, out);
  }

  static void count_shared(const Node* n,
                           const std::unordered_set<const Node*>& in,
                           std::size_t& shared) {
    if (n == nullptr) return;
    if (in.contains(n)) {
      shared += n->size;
      return;
    }
    count_shared(n->left, in, shared);
    count_shared(n->right, in, shared);
  }

  const Node* root_ = nullptr;
};

}  // namespace pathcopy::persist
