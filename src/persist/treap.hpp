// Persistent treap (Seidel & Aragon randomized search tree).
//
// The structure the paper evaluates. A treap is a binary search tree on
// keys that is simultaneously a max-heap on per-key priorities; with
// random priorities its height is O(log N) w.h.p. Priorities here are a
// splitmix64 hash of the key, which makes the tree shape a pure function
// of the key *set* — independent of operation order. That canonical-form
// property is exploited heavily by the tests (two histories with the same
// final set must produce structurally identical trees).
//
// All nodes are immutable. A Treap value is a root pointer; updates take a
// core::Builder, path-copy via split/merge, and return the handle of the
// new version, leaving *this valid and unchanged. Nodes are
// size-augmented, giving O(log N) rank/select and O(1) size().
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <tuple>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/node_base.hpp"
#include "persist/batch.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/small_vec.hpp"

namespace pathcopy::persist {

template <class K, class V, class Cmp = std::less<K>>
class Treap {
 public:
  using KeyType = K;
  using ValueType = V;
  using KeyCompare = Cmp;
  using BatchOp = persist::BatchOp<K, V>;
  using BatchOpKind = persist::BatchOpKind;
  using BatchOutcome = persist::BatchOutcome;
  using ReadOutcome = persist::ReadOutcome<V>;
  struct Node : core::PNode {
    K key;
    V value;
    std::uint64_t prio;
    std::uint64_t size;  // nodes in this subtree, including this one
    const Node* left;
    const Node* right;

    Node(const K& k, const V& v, std::uint64_t p, const Node* l, const Node* r)
        : key(k), value(v), prio(p),
          size(1 + size_of(l) + size_of(r)), left(l), right(r) {}
  };

  Treap() noexcept = default;

  /// Rebinds a handle to a root loaded from an Atom (type-erased there).
  static Treap from_root(const void* root) noexcept {
    return Treap{static_cast<const Node*>(root)};
  }
  const void* root_ptr() const noexcept { return root_; }
  const Node* root_node() const noexcept { return root_; }

  std::size_t size() const noexcept { return size_of(root_); }
  bool empty() const noexcept { return root_ == nullptr; }

  /// Deterministic priority: the tree shape depends only on the key set.
  static std::uint64_t priority_of(const K& key) {
    return util::mix64(static_cast<std::uint64_t>(std::hash<K>{}(key)));
  }

  // ----- queries (no builder, run on the immutable version) -----

  const V* find(const K& key) const {
    const Node* n = root_;
    Cmp cmp;
    while (n != nullptr) {
      if (cmp(key, n->key)) {
        n = n->left;
      } else if (cmp(n->key, key)) {
        n = n->right;
      } else {
        return &n->value;
      }
    }
    return nullptr;
  }

  bool contains(const K& key) const { return find(key) != nullptr; }

  const Node* min_node() const {
    const Node* n = root_;
    while (n != nullptr && n->left != nullptr) n = n->left;
    return n;
  }

  const Node* max_node() const {
    const Node* n = root_;
    while (n != nullptr && n->right != nullptr) n = n->right;
    return n;
  }

  /// Largest key <= key, or nullptr.
  const Node* floor_node(const K& key) const {
    const Node* n = root_;
    const Node* best = nullptr;
    Cmp cmp;
    while (n != nullptr) {
      if (cmp(key, n->key)) {
        n = n->left;
      } else {
        best = n;  // n->key <= key
        n = n->right;
      }
    }
    return best;
  }

  /// Smallest key >= key, or nullptr.
  const Node* ceiling_node(const K& key) const {
    const Node* n = root_;
    const Node* best = nullptr;
    Cmp cmp;
    while (n != nullptr) {
      if (cmp(n->key, key)) {
        n = n->right;
      } else {
        best = n;  // n->key >= key
        n = n->left;
      }
    }
    return best;
  }

  /// Number of keys strictly less than key.
  std::size_t rank(const K& key) const {
    std::size_t r = 0;
    const Node* n = root_;
    Cmp cmp;
    while (n != nullptr) {
      if (cmp(n->key, key)) {
        r += 1 + size_of(n->left);
        n = n->right;
      } else {
        n = n->left;
      }
    }
    return r;
  }

  /// The i-th smallest key (0-based); nullptr when i >= size().
  const Node* kth(std::size_t i) const {
    const Node* n = root_;
    while (n != nullptr) {
      const std::size_t ls = size_of(n->left);
      if (i < ls) {
        n = n->left;
      } else if (i == ls) {
        return n;
      } else {
        i -= ls + 1;
        n = n->right;
      }
    }
    return nullptr;
  }

  /// Keys in the half-open interval [lo, hi).
  std::size_t count_range(const K& lo, const K& hi) const {
    const std::size_t a = rank(lo);
    const std::size_t b = rank(hi);
    return b > a ? b - a : 0;
  }

  /// In-order visit of (key, value).
  template <class F>
  void for_each(F&& f) const {
    for_each_rec(root_, f);
  }

  /// In-order visit restricted to [lo, hi).
  template <class F>
  void for_each_range(const K& lo, const K& hi, F&& f) const {
    for_each_range_rec(root_, lo, hi, f);
  }

  /// Resolves a key-sorted, key-unique probe batch against this snapshot
  /// in one descent-sharing sweep: out[i] answers keys[i]. Read-only —
  /// zero allocation, no builder — and returns the exact shared-vs-per-key
  /// node accounting (see ReadProbeStats).
  ReadProbeStats get_sorted_batch(std::span<const K> keys,
                                  std::span<ReadOutcome> out) const {
    PC_ASSERT(out.size() >= keys.size(),
              "get_sorted_batch outcome span too small");
    check_sorted_keys<Cmp, K>(keys);
    ReadProbeStats stats;
    detail::read_batch_rec<Cmp, Node, K, V>(root_, keys, out, 0, keys.size(),
                                            stats);
    return stats;
  }

  /// Bounded range scan: appends up to `limit` (key, value) pairs from
  /// [lo, hi) in key order onto `out`; returns the number emitted. Early
  /// exit makes a limit-k scan O(k + log n) regardless of range width.
  std::size_t scan(const K& lo, const K& hi, std::size_t limit,
                   std::vector<std::pair<K, V>>& out) const {
    std::size_t remaining = limit;
    detail::scan_range_rec<Cmp, Node, K, V>(root_, lo, hi, remaining, out);
    return limit - remaining;
  }

  std::vector<std::pair<K, V>> items() const {
    std::vector<std::pair<K, V>> out;
    out.reserve(size());
    for_each([&](const K& k, const V& v) { out.emplace_back(k, v); });
    return out;
  }

  // ----- updates (path copying; *this is unchanged) -----

  /// Set-style insert: if the key is present the same version is returned
  /// (root pointer unchanged — the UC will skip its CAS). Single pass: the
  /// presence check rides the same descent that finds the insertion point,
  /// and no node is copied until the key is known to be absent.
  template <class B>
  Treap insert(B& b, const K& key, const V& value) const {
    bool inserted = false;
    const Node* nr =
        insert_rec(b, root_, key, value, priority_of(key), inserted);
    return inserted ? Treap{nr} : *this;
  }

  /// Map-style insert: overwrites the value when the key is present
  /// (always produces a new version in that case).
  template <class B>
  Treap insert_or_assign(B& b, const K& key, const V& value) const {
    if (contains(key)) return Treap{assign_rec(b, root_, key, value)};
    return insert(b, key, value);
  }

  /// Removes the key; same-version no-op when absent. Single pass, with a
  /// priority cutoff: a subtree whose root priority is below the key's
  /// hash priority cannot contain the key, so absent keys turn around
  /// without reaching a leaf and nothing is copied.
  template <class B>
  Treap erase(B& b, const K& key) const {
    bool erased = false;
    const Node* nr = erase_rec(b, root_, key, priority_of(key), erased);
    return erased ? Treap{nr} : *this;
  }

  /// Removes the smallest key; no-op on the empty treap.
  template <class B>
  Treap erase_min(B& b) const {
    if (root_ == nullptr) return *this;
    return Treap{erase_min_rec(b, root_)};
  }

  /// Splits into ({keys < key}, {keys >= key}).
  template <class B>
  static std::pair<Treap, Treap> split(B& b, const Treap& t, const K& key) {
    auto [lo, hi] = split_lt(b, t.root_, key);
    return {Treap{lo}, Treap{hi}};
  }

  /// Joins two treaps; every key of lo must precede every key of hi.
  template <class B>
  static Treap merge(B& b, const Treap& lo, const Treap& hi) {
    PC_DASSERT(lo.empty() || hi.empty() ||
                   Cmp{}(lo.max_node()->key, hi.min_node()->key),
               "merge requires disjoint ordered key ranges");
    return Treap{merge_nodes(b, lo.root_, hi.root_)};
  }

  /// O(n) bulk construction from strictly increasing (key, value) pairs.
  /// Produces the same canonical shape as repeated insertion.
  template <class B, class It>
  static Treap from_sorted(B& b, It first, It last) {
    std::vector<std::pair<K, V>> items(first, last);
    const std::size_t n = items.size();
    if (n == 0) return Treap{};
    check_sorted_items<Cmp>(items);
    // Cartesian-tree construction over the rightmost spine, on index
    // scaffolding first (nodes are immutable, so links are resolved
    // bottom-up in a second pass).
    constexpr std::size_t kNone = static_cast<std::size_t>(-1);
    std::vector<std::uint64_t> prio(n);
    std::vector<std::size_t> left(n, kNone), right(n, kNone), spine;
    for (std::size_t i = 0; i < n; ++i) prio[i] = priority_of(items[i].first);
    const std::size_t root_idx = cartesian_scaffold(
        n, [&](std::size_t i) { return prio[i]; }, left, right, spine);
    return Treap{build_rec(b, items, prio, left, right, root_idx)};
  }

  /// Removes every key in [lo, hi). All removed nodes are superseded
  /// (published ones are retired on commit), so this is UC-safe. O(k +
  /// log n) for k removed keys.
  template <class B>
  Treap erase_range(B& b, const K& lo, const K& hi) const {
    Cmp cmp;
    if (root_ == nullptr || !cmp(lo, hi)) return *this;
    if (count_range(lo, hi) == 0) return *this;  // same-version no-op
    auto [below, rest] = split_lt(b, root_, lo);
    auto [mid, above] = split_lt(b, rest, hi);
    supersede_subtree(b, mid);
    return Treap{merge_nodes(b, below, above)};
  }

  /// Applies a key-sorted, key-unique op batch in one path-copying sweep
  /// and reports a per-op outcome (aligned with `ops`). Equivalent to
  /// applying the ops one at a time in any order — the treap's canonical
  /// shape guarantees the same final tree — but the whole batch shares one
  /// copied spine: untouched subtrees are returned by pointer (zero
  /// copies), and each landing insert costs one split of an
  /// ever-shrinking subtree, for O(B + B·log(n/B)) fresh nodes whp
  /// instead of the O(B·log n) that B independent root-to-leaf copies
  /// would allocate. Ops must be strictly increasing by key (dedupe
  /// upstream; the combining UC collapses same-key chains to one
  /// effective op before calling this).
  template <class B>
  Treap apply_sorted_batch(B& b, std::span<const BatchOp> ops,
                           std::span<BatchOutcome> outcomes) const {
    PC_ASSERT(outcomes.size() >= ops.size(),
              "apply_sorted_batch outcome span too small");
    if (ops.empty()) return *this;
    check_sorted_batch<Cmp>(ops);
    util::SmallVec<std::uint64_t, kInlineBatch> prio;
    prio.reserve(ops.size());
    for (std::size_t i = 0; i < ops.size(); ++i) {
      prio.push_back(priority_of(ops[i].key));
    }
    BatchCtx ctx{ops, outcomes, prio};
    return Treap{apply_batch_rec(b, root_, ctx, 0, ops.size())};
  }

  // ----- bulk set algebra (join-based, O(m log(n/m)) whp) -----
  //
  // These are *pure* persistent operations: both inputs remain valid
  // versions and share structure with the result; nothing is marked
  // superseded. Inside a UC update that replaces one of the inputs, the
  // replaced version's dropped nodes are therefore NOT retired — pair
  // bulk algebra with the arena/leaky configuration, or treat the extra
  // garbage as acceptable for rare bulk transitions (documented trade-off;
  // precise retirement would require diffing the node sets).

  /// Keys of x plus keys of y; on duplicates the value from x wins.
  template <class B>
  static Treap set_union(B& b, const Treap& x, const Treap& y) {
    return Treap{union_rec(b, x.root_, /*a_is_x=*/true, y.root_,
                           /*c_is_x=*/false)};
  }

  /// Keys present in both x and y, with x's values.
  template <class B>
  static Treap set_intersect(B& b, const Treap& x, const Treap& y) {
    return Treap{intersect_rec(b, x.root_, y.root_)};
  }

  /// Keys of x that are absent from y.
  template <class B>
  static Treap set_difference(B& b, const Treap& x, const Treap& y) {
    return Treap{difference_rec(b, x.root_, y.root_)};
  }

  // ----- structural utilities -----

  /// Full invariant check: BST order, heap priorities, size augmentation,
  /// and published state on every node. O(n).
  bool check_invariants() const {
    return check_rec(root_, nullptr, nullptr).ok;
  }

  std::size_t height() const { return height_rec(root_); }

  /// Number of nodes reachable from both versions — quantifies the
  /// structural sharing that drives the paper's cache argument (Fig. 1).
  static std::size_t shared_nodes(const Treap& a, const Treap& b) {
    std::unordered_set<const Node*> seen;
    collect(a.root_, seen);
    std::size_t shared = 0;
    count_shared(b.root_, seen, shared);
    return shared;
  }

  /// Collects the addresses of nodes on the search path to key (used by
  /// the cache-model instrumentation and sharing experiments).
  std::vector<const Node*> path_to(const K& key) const {
    std::vector<const Node*> path;
    const Node* n = root_;
    Cmp cmp;
    while (n != nullptr) {
      path.push_back(n);
      if (cmp(key, n->key)) {
        n = n->left;
      } else if (cmp(n->key, key)) {
        n = n->right;
      } else {
        break;
      }
    }
    return path;
  }

  /// Teardown-only: frees every node of this version through the
  /// allocator backend. Caller guarantees exclusive ownership (i.e. all
  /// other versions have already been reclaimed).
  template <class Backend>
  static void destroy(const Node* n, Backend& backend) {
    if (n == nullptr) return;
    destroy(n->left, backend);
    destroy(n->right, backend);
    n->~Node();
    backend.free_bytes(const_cast<Node*>(n), sizeof(Node), alignof(Node));
  }

 private:
  explicit Treap(const Node* root) noexcept : root_(root) {}

  static std::uint64_t size_of(const Node* n) noexcept {
    return n == nullptr ? 0 : n->size;
  }

  // Splits into ({< key}, {>= key}), path-copying the search path. With
  // Supersede = false the copies are "pure": the input stays a live
  // version and nothing is queued for retirement (bulk set operations).
  template <bool Supersede = true, class B>
  static std::pair<const Node*, const Node*> split_lt(B& b, const Node* n,
                                                      const K& key) {
    if (n == nullptr) return {nullptr, nullptr};
    Cmp cmp;
    if (cmp(n->key, key)) {
      auto [mid_lo, hi] = split_lt<Supersede>(b, n->right, key);
      if constexpr (Supersede) b.supersede(n);
      const Node* copy =
          b.template create<Node>(n->key, n->value, n->prio, n->left, mid_lo);
      return {copy, hi};
    }
    auto [lo, mid_hi] = split_lt<Supersede>(b, n->left, key);
    if constexpr (Supersede) b.supersede(n);
    const Node* copy =
        b.template create<Node>(n->key, n->value, n->prio, mid_hi, n->right);
    return {lo, copy};
  }

  // Splits into ({<= key}, {> key}).
  template <bool Supersede = true, class B>
  static std::pair<const Node*, const Node*> split_le(B& b, const Node* n,
                                                      const K& key) {
    if (n == nullptr) return {nullptr, nullptr};
    Cmp cmp;
    if (!cmp(key, n->key)) {  // n->key <= key
      auto [mid_lo, hi] = split_le<Supersede>(b, n->right, key);
      if constexpr (Supersede) b.supersede(n);
      const Node* copy =
          b.template create<Node>(n->key, n->value, n->prio, n->left, mid_lo);
      return {copy, hi};
    }
    auto [lo, mid_hi] = split_le<Supersede>(b, n->left, key);
    if constexpr (Supersede) b.supersede(n);
    const Node* copy =
        b.template create<Node>(n->key, n->value, n->prio, mid_hi, n->right);
    return {lo, copy};
  }

  template <bool Supersede = true, class B>
  static const Node* merge_nodes(B& b, const Node* lo, const Node* hi) {
    if (lo == nullptr) return hi;
    if (hi == nullptr) return lo;
    if (lo->prio >= hi->prio) {
      const Node* new_right = merge_nodes<Supersede>(b, lo->right, hi);
      if constexpr (Supersede) b.supersede(lo);
      return b.template create<Node>(lo->key, lo->value, lo->prio, lo->left,
                                     new_right);
    }
    const Node* new_left = merge_nodes<Supersede>(b, lo, hi->left);
    if constexpr (Supersede) b.supersede(hi);
    return b.template create<Node>(hi->key, hi->value, hi->prio, new_left,
                                   hi->right);
  }

  // Single-pass insert. Descends while the subtree root outranks the new
  // key's priority, checking for the key on the way; the first node with a
  // strictly lower priority proves the key absent (its node would carry
  // exactly `prio`, and the max-heap order would force it at or above this
  // point), so only then does the split-and-link copying start. When the
  // key is found instead, the untouched subtree is returned and `inserted`
  // stays false — zero allocations for the no-op case.
  template <class B>
  static const Node* insert_rec(B& b, const Node* n, const K& key,
                                const V& value, std::uint64_t prio,
                                bool& inserted) {
    if (n == nullptr) {
      inserted = true;
      return b.template create<Node>(key, value, prio, nullptr, nullptr);
    }
    if (n->prio < prio) {
      inserted = true;
      auto [lo, hi] = split_lt(b, n, key);
      return b.template create<Node>(key, value, prio, lo, hi);
    }
    Cmp cmp;
    if (cmp(key, n->key)) {
      const Node* l = insert_rec(b, n->left, key, value, prio, inserted);
      if (!inserted) return n;
      b.supersede(n);
      return b.template create<Node>(n->key, n->value, n->prio, l, n->right);
    }
    if (cmp(n->key, key)) {
      const Node* r = insert_rec(b, n->right, key, value, prio, inserted);
      if (!inserted) return n;
      b.supersede(n);
      return b.template create<Node>(n->key, n->value, n->prio, n->left, r);
    }
    return n;  // present: same version, nothing copied
  }

  // Single-pass erase with the same priority cutoff: n->prio < prio means
  // the key cannot be in this subtree, so absent-key erases turn around
  // early and copy nothing.
  template <class B>
  static const Node* erase_rec(B& b, const Node* n, const K& key,
                               std::uint64_t prio, bool& erased) {
    if (n == nullptr || n->prio < prio) return n;
    Cmp cmp;
    if (cmp(key, n->key)) {
      const Node* l = erase_rec(b, n->left, key, prio, erased);
      if (!erased) return n;
      b.supersede(n);
      return b.template create<Node>(n->key, n->value, n->prio, l, n->right);
    }
    if (cmp(n->key, key)) {
      const Node* r = erase_rec(b, n->right, key, prio, erased);
      if (!erased) return n;
      b.supersede(n);
      return b.template create<Node>(n->key, n->value, n->prio, n->left, r);
    }
    erased = true;
    b.supersede(n);
    return merge_nodes(b, n->left, n->right);
  }

  /// Inline scratch capacity for batch application; combiner batches are
  /// at most 2x the announcement-slot count, so this avoids per-install
  /// heap traffic in the common case.
  static constexpr std::size_t kInlineBatch = 128;

  struct BatchCtx {
    std::span<const BatchOp> ops;
    std::span<BatchOutcome> out;
    const util::SmallVec<std::uint64_t, kInlineBatch>& prio;
  };

  // Core of apply_sorted_batch: applies ops[lo, hi) to subtree n. The
  // recursion mirrors treap union — whichever of (subtree root, highest-
  // priority batch op) outranks the other becomes the root of the result,
  // so the output is the canonical treap of the final key set.
  template <class B>
  static const Node* apply_batch_rec(B& b, const Node* n, BatchCtx& ctx,
                                     std::size_t lo, std::size_t hi) {
    if (lo == hi) return n;  // untouched subtree: shared, zero copies
    if (n == nullptr) return build_batch_inserts(b, ctx, lo, hi);
    // Argmax of op priority over [lo, hi). Linear scan: batch sizes are
    // small (≤ combiner slots) and the recursion splits the range, so the
    // expected total is O(B log B) comparisons — noise next to allocation.
    std::size_t m = lo;
    for (std::size_t i = lo + 1; i < hi; ++i) {
      if (ctx.prio[i] > ctx.prio[m]) m = i;
    }
    Cmp cmp;
    if (n->prio >= ctx.prio[m]) {
      // n outranks every batched key: it stays the range's root. Partition
      // the ops around n->key (binary search — ops are sorted).
      std::size_t a = lo, z = hi;
      while (a < z) {
        const std::size_t mid = a + (z - a) / 2;
        if (cmp(ctx.ops[mid].key, n->key)) {
          a = mid + 1;
        } else {
          z = mid;
        }
      }
      const bool has_eq = a < hi && !cmp(n->key, ctx.ops[a].key);
      const Node* l = apply_batch_rec(b, n->left, ctx, lo, a);
      const Node* r =
          apply_batch_rec(b, n->right, ctx, has_eq ? a + 1 : a, hi);
      if (has_eq) {
        const BatchOp& op = ctx.ops[a];
        switch (op.kind) {
          case BatchOpKind::kErase:
            ctx.out[a] = BatchOutcome::kErased;
            b.supersede(n);
            return merge_nodes(b, l, r);
          case BatchOpKind::kAssign:
            ctx.out[a] = BatchOutcome::kAssigned;
            b.supersede(n);
            return b.template create<Node>(n->key, *op.value, n->prio, l, r);
          case BatchOpKind::kInsert:
            ctx.out[a] = BatchOutcome::kNoop;  // set-style: value kept
            break;
        }
      }
      if (l == n->left && r == n->right) return n;  // children untouched
      b.supersede(n);
      return b.template create<Node>(n->key, n->value, n->prio, l, r);
    }
    // The top-priority op outranks the whole subtree. Its key cannot be
    // present here (a node holding it would carry exactly ctx.prio[m] and
    // the heap order would place it at or above n).
    const BatchOp& op = ctx.ops[m];
    if (op.kind == BatchOpKind::kErase) {
      // Erase of an absent key: drop it and keep going with both halves.
      ctx.out[m] = BatchOutcome::kNoop;
      const Node* t = apply_batch_rec(b, n, ctx, lo, m);
      return apply_batch_rec(b, t, ctx, m + 1, hi);
    }
    // Landing insert/assign: one split of the (shrinking) subtree, and
    // the halves absorb the rest of the batch beneath the new root.
    auto [tl, th] = split_lt(b, n, op.key);
    ctx.out[m] = BatchOutcome::kInserted;
    return b.template create<Node>(op.key, *op.value, ctx.prio[m],
                                   apply_batch_rec(b, tl, ctx, lo, m),
                                   apply_batch_rec(b, th, ctx, m + 1, hi));
  }

  // Batch tail that ran off the tree: erases are no-ops, the surviving
  // inserts/assigns build their canonical subtree directly (same
  // cartesian-tree scaffolding as from_sorted).
  template <class B>
  static const Node* build_batch_inserts(B& b, BatchCtx& ctx, std::size_t lo,
                                         std::size_t hi) {
    constexpr std::size_t kNone = static_cast<std::size_t>(-1);
    util::SmallVec<std::size_t, kInlineBatch> land;  // ops that insert
    for (std::size_t i = lo; i < hi; ++i) {
      if (ctx.ops[i].kind == BatchOpKind::kErase) {
        ctx.out[i] = BatchOutcome::kNoop;
      } else {
        ctx.out[i] = BatchOutcome::kInserted;
        land.push_back(i);
      }
    }
    if (land.empty()) return nullptr;
    const std::size_t n = land.size();
    util::SmallVec<std::size_t, kInlineBatch> left(n, kNone), right(n, kNone),
        spine;
    const std::size_t root_idx = cartesian_scaffold(
        n, [&](std::size_t i) { return ctx.prio[land[i]]; }, left, right,
        spine);
    return build_batch_rec(b, ctx, land, left, right, root_idx);
  }

  using BatchIndexVec = util::SmallVec<std::size_t, kInlineBatch>;

  // Monotonic-stack cartesian-tree scaffolding shared by from_sorted and
  // the batch-tail builder: fills left/right child indices for items
  // 0..n (keys already in order, priorities from prio_at) and returns
  // the root index. left/right must be pre-sized to n with kNone; spine
  // is caller-supplied scratch so each call site keeps its allocation
  // strategy.
  template <class PrioAt, class IndexVec>
  static std::size_t cartesian_scaffold(std::size_t n, PrioAt&& prio_at,
                                        IndexVec& left, IndexVec& right,
                                        IndexVec& spine) {
    constexpr std::size_t kNone = static_cast<std::size_t>(-1);
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t last_popped = kNone;
      while (!spine.empty() && prio_at(spine.back()) < prio_at(i)) {
        last_popped = spine.back();
        spine.pop_back();
      }
      left[i] = last_popped;
      if (!spine.empty()) right[spine.back()] = i;
      spine.push_back(i);
    }
    return spine.front();
  }

  template <class B>
  static const Node* build_batch_rec(B& b, const BatchCtx& ctx,
                                     const BatchIndexVec& land,
                                     const BatchIndexVec& left,
                                     const BatchIndexVec& right,
                                     std::size_t i) {
    constexpr std::size_t kNone = static_cast<std::size_t>(-1);
    const Node* l = left[i] == kNone
                        ? nullptr
                        : build_batch_rec(b, ctx, land, left, right, left[i]);
    const Node* r = right[i] == kNone
                        ? nullptr
                        : build_batch_rec(b, ctx, land, left, right, right[i]);
    const BatchOp& op = ctx.ops[land[i]];
    return b.template create<Node>(op.key, *op.value, ctx.prio[land[i]], l, r);
  }

  template <class B>
  static const Node* assign_rec(B& b, const Node* n, const K& key,
                                const V& value) {
    PC_DASSERT(n != nullptr, "assign_rec past a leaf");
    Cmp cmp;
    b.supersede(n);
    if (cmp(key, n->key)) {
      return b.template create<Node>(n->key, n->value, n->prio,
                                     assign_rec(b, n->left, key, value),
                                     n->right);
    }
    if (cmp(n->key, key)) {
      return b.template create<Node>(n->key, n->value, n->prio, n->left,
                                     assign_rec(b, n->right, key, value));
    }
    return b.template create<Node>(n->key, value, n->prio, n->left, n->right);
  }

  /// Declares every node of the subtree superseded: fresh spine copies are
  /// recycled, published nodes are retired on commit. Used by range erase,
  /// where an entire subtree leaves the version at once.
  template <class B>
  static void supersede_subtree(B& b, const Node* n) {
    if (n == nullptr) return;
    supersede_subtree(b, n->left);
    supersede_subtree(b, n->right);
    b.supersede(n);
  }

  // --- pure bulk-algebra recursions (no supersede; see public docs) ---

  // Splits pure; if an == key node exists, it is dropped from the split
  // (recycled — split copies are always fresh) and returned so the caller
  // can still read its value before the attempt resolves.
  template <class B>
  static std::tuple<const Node*, const Node*, const Node*> split3_pure(
      B& b, const Node* n, const K& key) {
    auto [lo, rest] = split_lt<false>(b, n, key);
    auto [eq, hi] = split_le<false>(b, rest, key);
    if (eq != nullptr) {
      PC_DASSERT(eq->size == 1, "duplicate keys in one treap");
      b.supersede(eq);  // fresh copy: recycled at resolve, not retired
    }
    return {lo, eq, hi};
  }

  // a/c are subtrees of the two inputs; a_is_x / c_is_x track which
  // original operand each descends from, so that "x's value wins on
  // duplicate keys" holds regardless of which side supplies the root.
  template <class B>
  static const Node* union_rec(B& b, const Node* a, bool a_is_x,
                               const Node* c, bool c_is_x) {
    if (a == nullptr) return c;
    if (c == nullptr) return a;
    if (a->prio < c->prio) {
      const Node* tn = a;
      a = c;
      c = tn;
      const bool tb = a_is_x;
      a_is_x = c_is_x;
      c_is_x = tb;
    }
    auto [cl, eq, cr] = split3_pure(b, c, a->key);
    // Duplicate key: the surviving value comes from the x side.
    const V& value = (eq != nullptr && c_is_x) ? eq->value : a->value;
    return b.template create<Node>(a->key, value, a->prio,
                                   union_rec(b, a->left, a_is_x, cl, c_is_x),
                                   union_rec(b, a->right, a_is_x, cr, c_is_x));
  }

  template <class B>
  static const Node* intersect_rec(B& b, const Node* x, const Node* y) {
    if (x == nullptr || y == nullptr) return nullptr;
    auto [yl, eq, yr] = split3_pure(b, y, x->key);
    const Node* l = intersect_rec(b, x->left, yl);
    const Node* r = intersect_rec(b, x->right, yr);
    if (eq != nullptr) {
      return b.template create<Node>(x->key, x->value, x->prio, l, r);
    }
    return merge_nodes<false>(b, l, r);
  }

  template <class B>
  static const Node* difference_rec(B& b, const Node* x, const Node* y) {
    if (x == nullptr) return nullptr;
    if (y == nullptr) return x;
    auto [yl, eq, yr] = split3_pure(b, y, x->key);
    const Node* l = difference_rec(b, x->left, yl);
    const Node* r = difference_rec(b, x->right, yr);
    if (eq == nullptr) {
      return b.template create<Node>(x->key, x->value, x->prio, l, r);
    }
    return merge_nodes<false>(b, l, r);
  }

  template <class B>
  static const Node* erase_min_rec(B& b, const Node* n) {
    b.supersede(n);
    if (n->left == nullptr) return n->right;
    return b.template create<Node>(n->key, n->value, n->prio,
                                   erase_min_rec(b, n->left), n->right);
  }

  template <class B>
  static const Node* build_rec(B& b, const std::vector<std::pair<K, V>>& items,
                               const std::vector<std::uint64_t>& prio,
                               const std::vector<std::size_t>& left,
                               const std::vector<std::size_t>& right,
                               std::size_t i) {
    constexpr std::size_t kNone = static_cast<std::size_t>(-1);
    const Node* l =
        left[i] == kNone ? nullptr : build_rec(b, items, prio, left, right, left[i]);
    const Node* r = right[i] == kNone
                        ? nullptr
                        : build_rec(b, items, prio, left, right, right[i]);
    return b.template create<Node>(items[i].first, items[i].second, prio[i], l, r);
  }

  template <class F>
  static void for_each_rec(const Node* n, F& f) {
    if (n == nullptr) return;
    for_each_rec(n->left, f);
    f(n->key, n->value);
    for_each_rec(n->right, f);
  }

  template <class F>
  static void for_each_range_rec(const Node* n, const K& lo, const K& hi, F& f) {
    if (n == nullptr) return;
    Cmp cmp;
    if (cmp(n->key, lo)) {  // entire left subtree < lo as well
      for_each_range_rec(n->right, lo, hi, f);
      return;
    }
    if (!cmp(n->key, hi)) {  // n->key >= hi
      for_each_range_rec(n->left, lo, hi, f);
      return;
    }
    for_each_range_rec(n->left, lo, hi, f);
    f(n->key, n->value);
    for_each_range_rec(n->right, lo, hi, f);
  }

  struct CheckResult {
    bool ok;
    std::uint64_t size;
  };

  static CheckResult check_rec(const Node* n, const K* lo, const K* hi) {
    if (n == nullptr) return {true, 0};
    Cmp cmp;
    if (lo != nullptr && !cmp(*lo, n->key)) return {false, 0};
    if (hi != nullptr && !cmp(n->key, *hi)) return {false, 0};
    if (n->pc_state_ != core::NodeState::kPublished) return {false, 0};
    if (n->left != nullptr && n->left->prio > n->prio) return {false, 0};
    if (n->right != nullptr && n->right->prio > n->prio) return {false, 0};
    const CheckResult l = check_rec(n->left, lo, &n->key);
    if (!l.ok) return {false, 0};
    const CheckResult r = check_rec(n->right, &n->key, hi);
    if (!r.ok) return {false, 0};
    const std::uint64_t sz = 1 + l.size + r.size;
    return {sz == n->size, sz};
  }

  static std::size_t height_rec(const Node* n) {
    if (n == nullptr) return 0;
    const std::size_t l = height_rec(n->left);
    const std::size_t r = height_rec(n->right);
    return 1 + (l > r ? l : r);
  }

  static void collect(const Node* n, std::unordered_set<const Node*>& out) {
    if (n == nullptr) return;
    out.insert(n);
    collect(n->left, out);
    collect(n->right, out);
  }

  static void count_shared(const Node* n, const std::unordered_set<const Node*>& in,
                           std::size_t& shared) {
    if (n == nullptr) return;
    if (in.contains(n)) {
      // Everything below a shared node is shared as well (nodes are
      // immutable, so a shared parent implies shared children).
      shared += n->size;
      return;
    }
    count_shared(n->left, in, shared);
    count_shared(n->right, in, shared);
  }

  const Node* root_ = nullptr;
};

}  // namespace pathcopy::persist
