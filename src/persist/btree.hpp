// Persistent B+tree.
//
// The structure behind the multi-version indexes the paper cites as prior
// art (Sun et al., VLDB'19): all entries live in leaves, internal nodes
// route with separator keys, and path copying copies exactly one node per
// level. With fanout F the path is log_F(N) nodes — much shorter than a
// binary tree's log_2(N) — but each copied node carries F keys/pointers,
// so an update writes more bytes per level. The branching ablation bench
// sweeps F to show how the paper's cache effect responds: fewer, fatter
// uncached loads per retry versus the treap's many thin ones.
//
// Implementation notes:
//   * Nodes embed fixed std::array payloads sized by the fanout, so K and
//     V must be default-constructible and copyable (trailing slots hold
//     value-initialized elements). This keeps every node a single
//     Builder-allocatable object.
//   * Insert splits bottom-up (returning an optional split to the
//     parent); erase rebalances bottom-up (returning an underflow flag
//     that the parent repairs by borrowing from or merging with a
//     sibling). Borrow and merge copy the touched sibling — persistence
//     means siblings are never mutated in place.
//   * Size-augmented for O(log N) rank/kth/count_range, like every other
//     structure in src/persist/.
//   * Supports the sorted-batch protocol (persist/batch.hpp): ops
//     partition at separator keys and recurse; each touched node comes
//     back as a run of same-height valid nodes ("pieces") — split leaves
//     or internal nodes — that the parent stitches into its child array,
//     repairing underfull pieces with the same borrow/merge primitives
//     the point erase uses and splitting itself when the array overflows.
//     Untouched subtrees are shared by pointer; an all-noop batch returns
//     the same root with zero allocations.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/node_base.hpp"
#include "persist/batch.hpp"
#include "util/assert.hpp"

namespace pathcopy::persist {

template <class K, class V, unsigned Fanout = 8, class Cmp = std::less<K>>
class BTree {
  static_assert(Fanout >= 3, "B+tree needs at least 3-way branching");

 public:
  using KeyType = K;
  using ValueType = V;
  using KeyCompare = Cmp;
  using BatchOp = persist::BatchOp<K, V>;
  using BatchOpKind = persist::BatchOpKind;
  using ReadOutcome = persist::ReadOutcome<V>;
  using BatchOutcome = persist::BatchOutcome;
  static constexpr unsigned kMaxChildren = Fanout;
  static constexpr unsigned kMaxKeys = Fanout - 1;       // internal nodes
  static constexpr unsigned kMinChildren = (Fanout + 1) / 2;
  static constexpr unsigned kMinKeys = kMinChildren - 1;
  static constexpr unsigned kLeafCap = Fanout;           // entries per leaf
  static constexpr unsigned kLeafMin = (Fanout + 1) / 2;
  /// Advertised to the combining UC's fanout gate (ReportsBatchFanout):
  /// a landing op rewrites a whole kLeafCap-wide leaf, so unclustered
  /// batches on wide trees are priced via count_leaf_runs before the
  /// sorted sweep is taken.
  static constexpr unsigned kBatchFanout = Fanout;

  struct Node : core::PNode {
    bool is_leaf;
    std::uint16_t count;   // keys in this node
    std::uint64_t size;    // entries in this subtree
    Node(bool leaf, std::uint16_t c, std::uint64_t s)
        : is_leaf(leaf), count(c), size(s) {}
  };

  struct LeafNode : Node {
    std::array<K, kLeafCap> keys;
    std::array<V, kLeafCap> values;
    LeafNode(const K* ks, const V* vs, unsigned n)
        : Node(true, static_cast<std::uint16_t>(n), n) {
      for (unsigned i = 0; i < n; ++i) {
        keys[i] = ks[i];
        values[i] = vs[i];
      }
    }
  };

  struct InternalNode : Node {
    std::array<K, kMaxKeys> keys;                 // separators
    std::array<const Node*, kMaxChildren> child;  // count+1 children
    InternalNode(const K* ks, const Node* const* ch, unsigned nkeys)
        : Node(false, static_cast<std::uint16_t>(nkeys), 0) {
      child.fill(nullptr);
      for (unsigned i = 0; i < nkeys; ++i) keys[i] = ks[i];
      for (unsigned i = 0; i <= nkeys; ++i) {
        child[i] = ch[i];
        this->size += ch[i]->size;
      }
    }
  };

  BTree() noexcept = default;

  static BTree from_root(const void* root) noexcept {
    return BTree{static_cast<const Node*>(root)};
  }
  const void* root_ptr() const noexcept { return root_; }
  const Node* root_node() const noexcept { return root_; }

  std::size_t size() const noexcept { return root_ == nullptr ? 0 : root_->size; }
  bool empty() const noexcept { return root_ == nullptr; }

  // ----- queries -----

  const V* find(const K& key) const {
    const Node* n = root_;
    if (n == nullptr) return nullptr;
    Cmp cmp;
    while (!n->is_leaf) {
      const auto* in = static_cast<const InternalNode*>(n);
      n = in->child[child_index(in, key)];
    }
    const auto* leaf = static_cast<const LeafNode*>(n);
    for (unsigned i = 0; i < leaf->count; ++i) {
      if (!cmp(leaf->keys[i], key) && !cmp(key, leaf->keys[i])) {
        return &leaf->values[i];
      }
    }
    return nullptr;
  }

  bool contains(const K& key) const { return find(key) != nullptr; }

  /// Number of distinct leaves a key-sorted, key-unique batch would
  /// touch — the combining UC's clustering probe (see ReportsBatchFanout
  /// in core/combining.hpp, advertised via kBatchFanout below). Read-only,
  /// one descent per counted leaf, then a linear skip of every further
  /// batch key below that leaf's upper separator (child i of an internal
  /// node owns keys < keys[i], so the tightest such separator along the
  /// descent bounds the leaf's range).
  ///
  /// Each descent is ~height cold pointer chases, so an exact count of an
  /// unclustered batch would cost a sizeable fraction of the per-op pass
  /// it is meant to veto. max_runs caps the probe: counting stops after
  /// that many descents and *ops_covered reports how many leading batch
  /// ops the counted leaves absorbed — covered/runs estimates the batch's
  /// mean ops-per-leaf from a prefix sample, which is what the combiner's
  /// gate actually consumes. With the default cap the count is exact over
  /// the whole batch.
  unsigned count_leaf_runs(std::span<const BatchOp> ops,
                           unsigned max_runs = ~0u,
                           std::size_t* ops_covered = nullptr) const {
    std::size_t covered = ops.size();
    unsigned runs = 0;
    if (!ops.empty() && (root_ == nullptr || root_->is_leaf)) {
      runs = 1;
    } else if (!ops.empty()) {
      Cmp cmp;
      std::size_t i = 0;
      while (i < ops.size() && runs < max_runs) {
        ++runs;
        const Node* n = root_;
        const K* hi = nullptr;
        while (!n->is_leaf) {
          const auto* in = static_cast<const InternalNode*>(n);
          const unsigned c = child_index(in, ops[i].key);
          if (c < in->count) hi = &in->keys[c];
          n = in->child[c];
        }
        ++i;
        while (i < ops.size() && (hi == nullptr || cmp(ops[i].key, *hi))) ++i;
      }
      covered = i;
    }
    if (ops_covered != nullptr) *ops_covered = covered;
    return runs;
  }

  /// Smallest key, or nullptr when empty.
  const K* min_key() const {
    const Node* n = root_;
    if (n == nullptr) return nullptr;
    while (!n->is_leaf) n = static_cast<const InternalNode*>(n)->child[0];
    return &static_cast<const LeafNode*>(n)->keys[0];
  }

  /// Largest key, or nullptr when empty.
  const K* max_key() const {
    const Node* n = root_;
    if (n == nullptr) return nullptr;
    while (!n->is_leaf) {
      const auto* in = static_cast<const InternalNode*>(n);
      n = in->child[in->count];
    }
    const auto* leaf = static_cast<const LeafNode*>(n);
    return &leaf->keys[leaf->count - 1];
  }

  /// Number of keys strictly less than key.
  std::size_t rank(const K& key) const {
    std::size_t r = 0;
    const Node* n = root_;
    if (n == nullptr) return 0;
    Cmp cmp;
    while (!n->is_leaf) {
      const auto* in = static_cast<const InternalNode*>(n);
      const unsigned idx = child_index(in, key);
      for (unsigned i = 0; i < idx; ++i) r += in->child[i]->size;
      n = in->child[idx];
    }
    const auto* leaf = static_cast<const LeafNode*>(n);
    for (unsigned i = 0; i < leaf->count && cmp(leaf->keys[i], key); ++i) ++r;
    return r;
  }

  /// The i-th smallest key (0-based), or nullptr when i >= size().
  const K* kth_key(std::size_t i) const {
    const Node* n = root_;
    if (n == nullptr || i >= n->size) return nullptr;
    while (!n->is_leaf) {
      const auto* in = static_cast<const InternalNode*>(n);
      unsigned c = 0;
      while (i >= in->child[c]->size) {
        i -= in->child[c]->size;
        ++c;
      }
      n = in->child[c];
    }
    return &static_cast<const LeafNode*>(n)->keys[i];
  }

  /// Largest key <= key, or nullptr.
  const K* floor_key(const K& key) const {
    const std::size_t r = rank(key);  // keys strictly below `key`
    if (contains(key)) return kth_key(r);
    return r == 0 ? nullptr : kth_key(r - 1);
  }

  /// Smallest key >= key, or nullptr.
  const K* ceiling_key(const K& key) const { return kth_key(rank(key)); }

  /// Keys in the half-open interval [lo, hi).
  std::size_t count_range(const K& lo, const K& hi) const {
    const std::size_t a = rank(lo);
    const std::size_t b = rank(hi);
    return b > a ? b - a : 0;
  }

  /// In-order visit of (key, value).
  template <class F>
  void for_each(F&& f) const {
    for_each_rec(root_, f);
  }

  /// In-order visit restricted to [lo, hi): children wholly outside the
  /// interval are pruned at their separator, so the visit costs
  /// O(hits + fanout · depth) — what makes tablet extraction proportional
  /// to the moved slice.
  template <class F>
  void for_each_range(const K& lo, const K& hi, F&& f) const {
    for_each_range_rec(root_, lo, hi, f);
  }

  std::vector<std::pair<K, V>> items() const {
    std::vector<std::pair<K, V>> out;
    out.reserve(size());
    for_each([&](const K& k, const V& v) { out.emplace_back(k, v); });
    return out;
  }

  /// Descent-sharing batched lookup (see Treap::get_sorted_batch): the
  /// probe range is partitioned across children at each internal node and
  /// resolved by a linear merge against the sorted entries at each leaf.
  ReadProbeStats get_sorted_batch(std::span<const K> keys,
                                  std::span<ReadOutcome> out) const {
    PC_ASSERT(out.size() >= keys.size(),
              "get_sorted_batch outcome span too small");
    check_sorted_keys<Cmp, K>(keys);
    ReadProbeStats stats;
    read_batch_rec(root_, keys, out, 0, keys.size(), stats);
    return stats;
  }

  /// Bounded range scan; see Treap::scan.
  std::size_t scan(const K& lo, const K& hi, std::size_t limit,
                   std::vector<std::pair<K, V>>& out) const {
    std::size_t remaining = limit;
    scan_range_rec(root_, lo, hi, remaining, out);
    return limit - remaining;
  }

  // ----- updates -----

  template <class B>
  BTree insert(B& b, const K& key, const V& value) const {
    if (contains(key)) return *this;
    return BTree{insert_root(b, key, value)};
  }

  template <class B>
  BTree insert_or_assign(B& b, const K& key, const V& value) const {
    return BTree{insert_root(b, key, value)};
  }

  template <class B>
  BTree erase(B& b, const K& key) const {
    if (!contains(key)) return *this;
    bool underflow = false;
    const Node* n = erase_rec(b, root_, key, &underflow);
    return BTree{collapse_root(b, n)};
  }

  /// O(n) bulk construction from strictly increasing (key, value) pairs:
  /// packs the run into balanced leaves, then builds internal levels on
  /// top. Balanced packing keeps every node within [min, max] occupancy
  /// (only a single-node root may be smaller).
  template <class B, class It>
  static BTree from_sorted(B& b, It first, It last) {
    std::vector<std::pair<K, V>> items(first, last);
    check_sorted_items<Cmp>(items);
    if (items.empty()) return BTree{};
    std::vector<const Node*> nodes;
    std::vector<K> seps;
    pack_leaves(b, items, nodes, seps);
    return BTree{build_levels(b, nodes, seps)};
  }

  /// Applies a key-sorted, key-unique op batch in one path-copying sweep
  /// and reports a per-op outcome (aligned with `ops`). Contents are
  /// exactly those of applying the ops one at a time; ops partition at
  /// separator keys, untouched subtrees are shared by pointer (an
  /// all-noop batch returns the same root with zero allocations), and
  /// only the contested nodes are rebuilt — one leaf rewrite absorbs an
  /// entire op run instead of one root-to-leaf copy per op.
  template <class B>
  BTree apply_sorted_batch(B& b, std::span<const BatchOp> ops,
                           std::span<BatchOutcome> outcomes) const {
    PC_ASSERT(outcomes.size() >= ops.size(),
              "apply_sorted_batch outcome span too small");
    if (ops.empty()) return *this;
    check_sorted_batch<Cmp>(ops);
    BatchCtx ctx{ops, outcomes};
    if (root_ == nullptr) {
      return BTree{build_batch_inserts(b, ctx, 0, ops.size())};
    }
    BatchResult r = apply_rec(b, root_, ctx, 0, ops.size(), height());
    if (!r.changed) return *this;  // same version, zero allocations
    if (r.pieces.empty()) return BTree{};
    if (r.pieces.size() == 1) {
      return BTree{collapse_root(b, r.pieces.front())};
    }
    return BTree{build_levels(b, r.pieces, r.seps)};
  }

  // ----- structural utilities -----

  bool check_invariants() const {
    if (root_ == nullptr) return true;
    const CheckResult r = check_rec(root_, nullptr, nullptr, /*is_root=*/true);
    return r.ok;
  }

  std::size_t height() const {
    std::size_t h = 0;
    for (const Node* n = root_; n != nullptr;
         n = n->is_leaf ? nullptr
                        : static_cast<const InternalNode*>(n)->child[0]) {
      ++h;
    }
    return h;
  }

  static std::size_t shared_nodes(const BTree& a, const BTree& b) {
    std::unordered_set<const Node*> seen;
    collect(a.root_, seen);
    std::size_t shared = 0;
    count_shared(b.root_, seen, shared);
    return shared;
  }

  template <class Backend>
  static void destroy(const Node* n, Backend& backend) {
    if (n == nullptr) return;
    if (n->is_leaf) {
      const auto* leaf = static_cast<const LeafNode*>(n);
      leaf->~LeafNode();
      backend.free_bytes(const_cast<LeafNode*>(leaf), sizeof(LeafNode),
                         alignof(LeafNode));
      return;
    }
    const auto* in = static_cast<const InternalNode*>(n);
    for (unsigned i = 0; i <= in->count; ++i) destroy(in->child[i], backend);
    in->~InternalNode();
    backend.free_bytes(const_cast<InternalNode*>(in), sizeof(InternalNode),
                       alignof(InternalNode));
  }

 private:
  explicit BTree(const Node* root) noexcept : root_(root) {}

  /// Supersedes through the node's dynamic kind: retire records carry
  /// the static type's size, so a base-typed supersede would hand the
  /// allocator sizeof(Node) for a LeafNode/InternalNode-sized block —
  /// sized-delete UB on malloc, the wrong size class on pools.
  template <class B>
  static void supersede_node(B& b, const Node* n) {
    if (n->is_leaf) {
      b.supersede(static_cast<const LeafNode*>(n));
    } else {
      b.supersede(static_cast<const InternalNode*>(n));
    }
  }

  /// Height collapse shared by the point erase and the batch apply: an
  /// internal root with a single child hands the root role down (the
  /// child is already a committed-version or fresh node — either way it
  /// is the new root), and an emptied root leaf yields the empty tree.
  template <class B>
  static const Node* collapse_root(B& b, const Node* n) {
    while (n != nullptr && !n->is_leaf && n->count == 0) {
      const auto* in = static_cast<const InternalNode*>(n);
      const Node* only = in->child[0];
      b.supersede(in);
      n = only;
    }
    if (n != nullptr && n->is_leaf && n->count == 0) {
      b.supersede(static_cast<const LeafNode*>(n));
      return nullptr;
    }
    return n;
  }

  /// Index of the child subtree that may contain `key`: the number of
  /// separators <= key (separator keys[i] is the minimum of child[i+1]).
  static unsigned child_index(const InternalNode* n, const K& key) {
    Cmp cmp;
    unsigned i = 0;
    while (i < n->count && !cmp(key, n->keys[i])) ++i;
    return i;
  }

  struct Split {
    const Node* left;
    const Node* right;  // nullptr when no split happened
    K sep;              // min key of right
  };

  template <class B>
  const Node* insert_root(B& b, const K& key, const V& value) const {
    if (root_ == nullptr) {
      return b.template create<LeafNode>(&key, &value, 1u);
    }
    const Split s = insert_rec(b, root_, key, value);
    if (s.right == nullptr) return s.left;
    const K sep = s.sep;
    const Node* ch[2] = {s.left, s.right};
    return b.template create<InternalNode>(&sep, ch, 1u);
  }

  template <class B>
  static Split insert_rec(B& b, const Node* n, const K& key, const V& value) {
    Cmp cmp;
    if (n->is_leaf) {
      const auto* leaf = static_cast<const LeafNode*>(n);
      b.supersede(leaf);
      K ks[kLeafCap + 1];
      V vs[kLeafCap + 1];
      unsigned m = 0;
      bool placed = false;
      for (unsigned i = 0; i < leaf->count; ++i) {
        const bool eq =
            !cmp(leaf->keys[i], key) && !cmp(key, leaf->keys[i]);
        if (eq) {
          // insert_or_assign on a present key: overwrite in place.
          ks[m] = key;
          vs[m] = value;
          ++m;
          placed = true;
          continue;
        }
        if (!placed && cmp(key, leaf->keys[i])) {
          ks[m] = key;
          vs[m] = value;
          ++m;
          placed = true;
        }
        ks[m] = leaf->keys[i];
        vs[m] = leaf->values[i];
        ++m;
      }
      if (!placed) {
        ks[m] = key;
        vs[m] = value;
        ++m;
      }
      if (m <= kLeafCap) {
        return {b.template create<LeafNode>(ks, vs, m), nullptr, K{}};
      }
      const unsigned lh = (m + 1) / 2;
      const Node* left = b.template create<LeafNode>(ks, vs, lh);
      const Node* right =
          b.template create<LeafNode>(ks + lh, vs + lh, m - lh);
      return {left, right, ks[lh]};
    }
    const auto* in = static_cast<const InternalNode*>(n);
    const unsigned idx = child_index(in, key);
    const Split cs = insert_rec(b, in->child[idx], key, value);
    b.supersede(in);
    K ks[kMaxKeys + 1];
    const Node* ch[kMaxKeys + 2];
    unsigned nk = 0;
    for (unsigned i = 0; i < in->count; ++i) ks[nk++] = in->keys[i];
    for (unsigned i = 0; i <= in->count; ++i) ch[i] = in->child[i];
    ch[idx] = cs.left;
    if (cs.right != nullptr) {
      // Shift to make room for the new separator and right sibling.
      for (unsigned i = nk; i > idx; --i) ks[i] = ks[i - 1];
      for (unsigned i = nk + 1; i > idx + 1; --i) ch[i] = ch[i - 1];
      ks[idx] = cs.sep;
      ch[idx + 1] = cs.right;
      ++nk;
    }
    if (nk <= kMaxKeys) {
      return {b.template create<InternalNode>(ks, ch, nk), nullptr, K{}};
    }
    // Overflow: promote the middle separator.
    const unsigned mid = nk / 2;
    const Node* left = b.template create<InternalNode>(ks, ch, mid);
    const Node* right = b.template create<InternalNode>(
        ks + mid + 1, ch + mid + 1, nk - mid - 1);
    return {left, right, ks[mid]};
  }

  /// Erases `key` (known present) from subtree n. Sets *underflow when
  /// the returned node is below its minimum fill and needs a parent fix.
  template <class B>
  static const Node* erase_rec(B& b, const Node* n, const K& key,
                               bool* underflow) {
    Cmp cmp;
    if (n->is_leaf) {
      const auto* leaf = static_cast<const LeafNode*>(n);
      b.supersede(leaf);
      K ks[kLeafCap];
      V vs[kLeafCap];
      unsigned m = 0;
      for (unsigned i = 0; i < leaf->count; ++i) {
        const bool eq =
            !cmp(leaf->keys[i], key) && !cmp(key, leaf->keys[i]);
        if (eq) continue;
        ks[m] = leaf->keys[i];
        vs[m] = leaf->values[i];
        ++m;
      }
      *underflow = m < kLeafMin;
      return b.template create<LeafNode>(ks, vs, m);
    }
    const auto* in = static_cast<const InternalNode*>(n);
    const unsigned idx = child_index(in, key);
    bool child_uf = false;
    const Node* nc = erase_rec(b, in->child[idx], key, &child_uf);
    b.supersede(in);
    K ks[kMaxKeys + 1];
    const Node* ch[kMaxKeys + 2];
    unsigned nk = in->count;
    for (unsigned i = 0; i < nk; ++i) ks[i] = in->keys[i];
    for (unsigned i = 0; i <= nk; ++i) ch[i] = in->child[i];
    ch[idx] = nc;
    if (child_uf) {
      fix_underflow(b, ks, ch, nk, idx);
    }
    *underflow = nk < kMinKeys;
    return b.template create<InternalNode>(ks, ch, nk);
  }

  /// Repairs ch[idx] (below minimum fill) by borrowing from a sibling or
  /// merging with one. Mutates the scratch arrays; may decrement nk.
  template <class B>
  static void fix_underflow(B& b, K* ks, const Node** ch, unsigned& nk,
                            unsigned idx) {
    // Try borrowing from the left sibling.
    if (idx > 0 && can_lend(ch[idx - 1])) {
      borrow_from_left(b, ks, ch, idx);
      return;
    }
    // Then from the right sibling.
    if (idx < nk && can_lend(ch[idx + 1])) {
      borrow_from_right(b, ks, ch, idx);
      return;
    }
    // Merge with a sibling (prefer left).
    if (idx > 0) {
      merge_children(b, ks, ch, nk, idx - 1);
    } else {
      merge_children(b, ks, ch, nk, idx);
    }
  }

  static bool can_lend(const Node* sib) {
    return sib->is_leaf ? sib->count > kLeafMin : sib->count > kMinKeys;
  }

  /// Moves the left sibling's last entry/child into the front of ch[idx].
  template <class B>
  static void borrow_from_left(B& b, K* ks, const Node** ch, unsigned idx) {
    const Node* sib = ch[idx - 1];
    const Node* cur = ch[idx];
    supersede_node(b, sib);
    supersede_node(b, cur);
    if (cur->is_leaf) {
      const auto* sl = static_cast<const LeafNode*>(sib);
      const auto* cl = static_cast<const LeafNode*>(cur);
      ch[idx - 1] = b.template create<LeafNode>(sl->keys.data(),
                                                sl->values.data(),
                                                sl->count - 1u);
      K cks[kLeafCap];
      V cvs[kLeafCap];
      cks[0] = sl->keys[sl->count - 1];
      cvs[0] = sl->values[sl->count - 1];
      for (unsigned i = 0; i < cl->count; ++i) {
        cks[i + 1] = cl->keys[i];
        cvs[i + 1] = cl->values[i];
      }
      ch[idx] = b.template create<LeafNode>(cks, cvs, cl->count + 1u);
      ks[idx - 1] = cks[0];  // separator = new min of ch[idx]
      return;
    }
    const auto* si = static_cast<const InternalNode*>(sib);
    const auto* ci = static_cast<const InternalNode*>(cur);
    // Rotate through the separator: sib's last child moves over, the old
    // separator drops into the front of cur, sib's last key replaces it.
    {
      const Node* sch[kMaxChildren];
      for (unsigned i = 0; i < si->count; ++i) sch[i] = si->child[i];
      ch[idx - 1] = b.template create<InternalNode>(si->keys.data(), sch,
                                                    si->count - 1u);
    }
    {
      K cks[kMaxKeys + 1];
      const Node* cch[kMaxChildren + 1];
      cks[0] = ks[idx - 1];
      cch[0] = si->child[si->count];
      for (unsigned i = 0; i < ci->count; ++i) cks[i + 1] = ci->keys[i];
      for (unsigned i = 0; i <= ci->count; ++i) cch[i + 1] = ci->child[i];
      ch[idx] = b.template create<InternalNode>(cks, cch, ci->count + 1u);
    }
    ks[idx - 1] = si->keys[si->count - 1];
  }

  /// Moves the right sibling's first entry/child onto the back of ch[idx].
  template <class B>
  static void borrow_from_right(B& b, K* ks, const Node** ch, unsigned idx) {
    const Node* sib = ch[idx + 1];
    const Node* cur = ch[idx];
    supersede_node(b, sib);
    supersede_node(b, cur);
    if (cur->is_leaf) {
      const auto* sl = static_cast<const LeafNode*>(sib);
      const auto* cl = static_cast<const LeafNode*>(cur);
      K cks[kLeafCap];
      V cvs[kLeafCap];
      for (unsigned i = 0; i < cl->count; ++i) {
        cks[i] = cl->keys[i];
        cvs[i] = cl->values[i];
      }
      cks[cl->count] = sl->keys[0];
      cvs[cl->count] = sl->values[0];
      ch[idx] = b.template create<LeafNode>(cks, cvs, cl->count + 1u);
      ch[idx + 1] = b.template create<LeafNode>(sl->keys.data() + 1,
                                                sl->values.data() + 1,
                                                sl->count - 1u);
      ks[idx] = sl->keys[1];  // new min of the (shrunk) right sibling
      return;
    }
    const auto* si = static_cast<const InternalNode*>(sib);
    const auto* ci = static_cast<const InternalNode*>(cur);
    {
      K cks[kMaxKeys + 1];
      const Node* cch[kMaxChildren + 1];
      for (unsigned i = 0; i < ci->count; ++i) cks[i] = ci->keys[i];
      for (unsigned i = 0; i <= ci->count; ++i) cch[i] = ci->child[i];
      cks[ci->count] = ks[idx];
      cch[ci->count + 1] = si->child[0];
      ch[idx] = b.template create<InternalNode>(cks, cch, ci->count + 1u);
    }
    {
      const Node* sch[kMaxChildren];
      for (unsigned i = 1; i <= si->count; ++i) sch[i - 1] = si->child[i];
      ch[idx + 1] = b.template create<InternalNode>(si->keys.data() + 1, sch,
                                                    si->count - 1u);
    }
    ks[idx] = si->keys[0];
  }

  /// Merges ch[at] and ch[at+1] (with the separator between them, for
  /// internal children) into one node; closes the gap in ks/ch.
  template <class B>
  static void merge_children(B& b, K* ks, const Node** ch, unsigned& nk,
                             unsigned at) {
    const Node* l = ch[at];
    const Node* r = ch[at + 1];
    supersede_node(b, l);
    supersede_node(b, r);
    if (l->is_leaf) {
      const auto* ll = static_cast<const LeafNode*>(l);
      const auto* rl = static_cast<const LeafNode*>(r);
      K mks[kLeafCap];
      V mvs[kLeafCap];
      unsigned m = 0;
      for (unsigned i = 0; i < ll->count; ++i) {
        mks[m] = ll->keys[i];
        mvs[m] = ll->values[i];
        ++m;
      }
      for (unsigned i = 0; i < rl->count; ++i) {
        mks[m] = rl->keys[i];
        mvs[m] = rl->values[i];
        ++m;
      }
      ch[at] = b.template create<LeafNode>(mks, mvs, m);
    } else {
      const auto* li = static_cast<const InternalNode*>(l);
      const auto* ri = static_cast<const InternalNode*>(r);
      K mks[kMaxKeys + 1];
      const Node* mch[kMaxChildren + 1];
      unsigned m = 0;
      for (unsigned i = 0; i < li->count; ++i) mks[m++] = li->keys[i];
      mks[m++] = ks[at];  // separator drops down between the halves
      for (unsigned i = 0; i < ri->count; ++i) mks[m++] = ri->keys[i];
      for (unsigned i = 0; i <= li->count; ++i) mch[i] = li->child[i];
      for (unsigned i = 0; i <= ri->count; ++i) {
        mch[li->count + 1 + i] = ri->child[i];
      }
      ch[at] = b.template create<InternalNode>(mks, mch, m);
    }
    // Close the gap: separator ks[at] and slot ch[at+1] disappear.
    for (unsigned i = at; i + 1 < nk; ++i) ks[i] = ks[i + 1];
    for (unsigned i = at + 1; i + 1 <= nk; ++i) ch[i] = ch[i + 1];
    --nk;
  }

  // ----- bulk construction and sorted-batch application -----

  struct BatchCtx {
    std::span<const BatchOp> ops;
    std::span<BatchOutcome> out;
  };

  /// Result of applying a sub-batch to one subtree: `pieces` are nodes of
  /// uniform height `height` (<= the input subtree's height — mass erases
  /// collapse levels), fully valid below their top level; only the top of
  /// a single-piece result may be underfull (the parent repairs it by
  /// grafting/merging, and at the root it is legal outright — multi-piece
  /// runs are always repaired before being returned). `seps[i]` separates
  /// pieces[i] and pieces[i+1]. `changed == false` means the subtree is
  /// shared untouched (pieces == {n}, nothing allocated).
  struct BatchResult {
    std::vector<const Node*> pieces;
    std::vector<K> seps;
    std::size_t height = 0;
    bool changed = false;
  };

  /// One or two same-height nodes (b == nullptr when one) — what a spine
  /// graft hands back to its caller level.
  struct MiniRun {
    const Node* a;
    const Node* b;
    K sep;
  };

  static bool below_min(const Node* n) noexcept {
    return n->is_leaf ? n->count < kLeafMin : n->count < kMinKeys;
  }

  /// Packs sorted entries into ceil(m / kLeafCap) balanced leaves; every
  /// leaf lands in [kLeafMin, kLeafCap] whenever m >= kLeafMin (balanced
  /// distribution arithmetic), so only a lone tiny run yields an
  /// underfull (single) piece.
  template <class B>
  static void pack_leaves(B& b, const std::vector<std::pair<K, V>>& items,
                          std::vector<const Node*>& nodes,
                          std::vector<K>& seps) {
    const std::size_t m = items.size();
    const std::size_t groups = (m + kLeafCap - 1) / kLeafCap;
    const std::size_t base = m / groups;
    const std::size_t extra = m % groups;
    std::size_t at = 0;
    for (std::size_t g = 0; g < groups; ++g) {
      const std::size_t take = base + (g < extra ? 1 : 0);
      K ks[kLeafCap];
      V vs[kLeafCap];
      for (std::size_t j = 0; j < take; ++j) {
        ks[j] = items[at + j].first;
        vs[j] = items[at + j].second;
      }
      if (g > 0) seps.push_back(items[at].first);
      nodes.push_back(
          b.template create<LeafNode>(ks, vs, static_cast<unsigned>(take)));
      at += take;
    }
  }

  /// Packs a same-height child run (with separators between children)
  /// into one internal level; boundary separators between groups are
  /// promoted into `seps`. A single output node may be underfull — the
  /// single-piece exception again.
  template <class B>
  static void pack_internals(B& b, const std::vector<K>& ks,
                             const std::vector<const Node*>& ch,
                             std::vector<const Node*>& nodes,
                             std::vector<K>& seps) {
    const std::size_t m = ch.size();
    const std::size_t groups = (m + kMaxChildren - 1) / kMaxChildren;
    const std::size_t base = m / groups;
    const std::size_t extra = m % groups;
    std::size_t at = 0;
    for (std::size_t g = 0; g < groups; ++g) {
      const std::size_t take = base + (g < extra ? 1 : 0);
      if (g > 0) seps.push_back(ks[at - 1]);
      nodes.push_back(b.template create<InternalNode>(
          ks.data() + at, ch.data() + at, static_cast<unsigned>(take - 1)));
      at += take;
    }
  }

  /// Stacks internal levels on top of same-height `nodes` until one root
  /// remains. Consumes its arguments.
  template <class B>
  static const Node* build_levels(B& b, std::vector<const Node*>& nodes,
                                  std::vector<K>& seps) {
    while (nodes.size() > 1) {
      std::vector<const Node*> up;
      std::vector<K> up_seps;
      pack_internals(b, seps, nodes, up, up_seps);
      nodes = std::move(up);
      seps = std::move(up_seps);
    }
    return nodes.empty() ? nullptr : nodes.front();
  }

  /// Repairs underfull pieces in a child run with the point-erase
  /// borrow/merge primitives until every piece meets its minimum or a
  /// single piece remains. Borrow strictly shrinks the total deficiency
  /// and merge shrinks the run, so the loop terminates.
  template <class B>
  static void fix_pieces(B& b, std::vector<K>& ks,
                         std::vector<const Node*>& ch) {
    bool again = ch.size() > 1;
    while (again) {
      again = false;
      for (std::size_t i = 0; i < ch.size() && ch.size() > 1; ++i) {
        if (!below_min(ch[i])) continue;
        unsigned nk = static_cast<unsigned>(ks.size());
        fix_underflow(b, ks.data(), ch.data(), nk, static_cast<unsigned>(i));
        if (nk < ks.size()) {
          ks.pop_back();
          ch.pop_back();
        }
        again = true;
        break;
      }
    }
  }

  /// Attaches subtree P (d levels shorter than N, valid below its
  /// possibly-underfull top) to the right edge of N, separated by `s`:
  /// N's right spine is path-copied, P joins as the last child of the
  /// spine node one level above it, underfull tops are repaired against
  /// their new left sibling, and an overflowing level splits — returning
  /// one or two nodes at N's height.
  template <class B>
  static MiniRun attach_right(B& b, const Node* n, const K& s, const Node* p,
                              std::size_t d) {
    const auto* in = static_cast<const InternalNode*>(n);
    b.supersede(in);
    K ks[kMaxKeys + 2];
    const Node* ch[kMaxChildren + 2];
    unsigned nk = in->count;
    for (unsigned i = 0; i < nk; ++i) ks[i] = in->keys[i];
    for (unsigned i = 0; i <= nk; ++i) ch[i] = in->child[i];
    if (d == 1) {
      ks[nk] = s;
      ch[nk + 1] = p;
      ++nk;
      // Repair the grafted child (and any merge fallout) at the edge;
      // each borrow shrinks its deficiency, each merge absorbs it into a
      // valid sibling, so the loop is bounded.
      while (nk > 0 && below_min(ch[nk])) {
        fix_underflow(b, ks, ch, nk, nk);
      }
    } else {
      const MiniRun sub = attach_right(b, ch[nk], s, p, d - 1);
      ch[nk] = sub.a;
      if (sub.b != nullptr) {
        ks[nk] = sub.sep;
        ch[nk + 1] = sub.b;
        ++nk;
      }
    }
    if (nk <= kMaxKeys) {
      return {b.template create<InternalNode>(ks, ch, nk), nullptr, K{}};
    }
    const unsigned mid = nk / 2;
    const Node* left = b.template create<InternalNode>(ks, ch, mid);
    const Node* right = b.template create<InternalNode>(ks + mid + 1,
                                                        ch + mid + 1,
                                                        nk - mid - 1);
    return {left, right, ks[mid]};
  }

  /// Mirror image: attaches P to the left edge of N.
  template <class B>
  static MiniRun attach_left(B& b, const Node* n, const K& s, const Node* p,
                             std::size_t d) {
    const auto* in = static_cast<const InternalNode*>(n);
    b.supersede(in);
    K ks[kMaxKeys + 2];
    const Node* ch[kMaxChildren + 2];
    unsigned nk = in->count;
    for (unsigned i = 0; i < nk; ++i) ks[i + 1] = in->keys[i];
    for (unsigned i = 0; i <= nk; ++i) ch[i + 1] = in->child[i];
    if (d == 1) {
      ks[0] = s;
      ch[0] = p;
      ++nk;
      while (nk > 0 && below_min(ch[0])) {
        fix_underflow(b, ks, ch, nk, 0);
      }
    } else {
      const MiniRun sub = attach_left(b, ch[1], s, p, d - 1);
      if (sub.b != nullptr) {
        ch[0] = sub.a;
        ks[0] = sub.sep;
        ch[1] = sub.b;
        ++nk;
      } else {
        // No split: shift back down into the original layout.
        for (unsigned i = 0; i < nk; ++i) ks[i] = ks[i + 1];
        for (unsigned i = 0; i <= nk; ++i) ch[i] = ch[i + 1];
        ch[0] = sub.a;
      }
    }
    if (nk <= kMaxKeys) {
      return {b.template create<InternalNode>(ks, ch, nk), nullptr, K{}};
    }
    const unsigned mid = nk / 2;
    const Node* left = b.template create<InternalNode>(ks, ch, mid);
    const Node* right = b.template create<InternalNode>(ks + mid + 1,
                                                        ch + mid + 1,
                                                        nk - mid - 1);
    return {left, right, ks[mid]};
  }

  template <class B>
  static BatchResult apply_rec(B& b, const Node* n, BatchCtx& ctx,
                               std::size_t lo, std::size_t hi,
                               std::size_t height) {
    if (n->is_leaf) {
      return apply_leaf(b, static_cast<const LeafNode*>(n), ctx, lo, hi);
    }
    return apply_internal(b, static_cast<const InternalNode*>(n), ctx, lo, hi,
                          height);
  }

  /// Merge-joins the leaf's entries with its op run, reporting outcomes;
  /// an untouched leaf is shared, a touched one is repacked into
  /// balanced leaves.
  template <class B>
  static BatchResult apply_leaf(B& b, const LeafNode* leaf, BatchCtx& ctx,
                                std::size_t lo, std::size_t hi) {
    Cmp cmp;
    std::vector<std::pair<K, V>> merged;
    merged.reserve(leaf->count + (hi - lo));
    bool changed = false;
    unsigned e = 0;
    std::size_t i = lo;
    while (e < leaf->count || i < hi) {
      if (i == hi) {
        merged.emplace_back(leaf->keys[e], leaf->values[e]);
        ++e;
        continue;
      }
      const BatchOp& op = ctx.ops[i];
      if (e == leaf->count || cmp(op.key, leaf->keys[e])) {
        // The op's key is absent from the leaf.
        if (op.kind == BatchOpKind::kErase) {
          ctx.out[i] = BatchOutcome::kNoop;
        } else {
          ctx.out[i] = BatchOutcome::kInserted;
          merged.emplace_back(op.key, *op.value);
          changed = true;
        }
        ++i;
        continue;
      }
      if (cmp(leaf->keys[e], op.key)) {
        merged.emplace_back(leaf->keys[e], leaf->values[e]);
        ++e;
        continue;
      }
      switch (op.kind) {  // op.key present at entry e
        case BatchOpKind::kInsert:
          ctx.out[i] = BatchOutcome::kNoop;  // set-style: value kept
          merged.emplace_back(leaf->keys[e], leaf->values[e]);
          break;
        case BatchOpKind::kErase:
          ctx.out[i] = BatchOutcome::kErased;
          changed = true;
          break;
        case BatchOpKind::kAssign:
          ctx.out[i] = BatchOutcome::kAssigned;
          merged.emplace_back(op.key, *op.value);
          changed = true;
          break;
      }
      ++e;
      ++i;
    }
    BatchResult res;
    res.changed = changed;
    res.height = 1;
    if (!changed) {
      res.pieces.push_back(leaf);
      return res;
    }
    b.supersede(leaf);
    if (merged.empty()) {
      res.height = 0;
    } else {
      pack_leaves(b, merged, res.pieces, res.seps);
    }
    return res;
  }

  /// Partitions the op run at the separators, recurses per child, and
  /// stitches the piece runs back together: old separators survive
  /// between pieces of different children (all new content stays inside
  /// its old routing range), split separators arrive with the pieces,
  /// and height-collapsed results are grafted onto a taller neighbor's
  /// spine instead of being wrapped in hollow nodes.
  template <class B>
  static BatchResult apply_internal(B& b, const InternalNode* in,
                                    BatchCtx& ctx, std::size_t lo,
                                    std::size_t hi, std::size_t height) {
    Cmp cmp;
    std::array<std::size_t, kMaxChildren + 1> pos;
    pos[0] = lo;
    for (unsigned c = 0; c < in->count; ++c) {
      // First op with key >= keys[c] (such keys route right of child c).
      std::size_t a = pos[c], z = hi;
      while (a < z) {
        const std::size_t mid = a + (z - a) / 2;
        if (cmp(ctx.ops[mid].key, in->keys[c])) {
          a = mid + 1;
        } else {
          z = mid;
        }
      }
      pos[c + 1] = a;
    }
    pos[in->count + 1] = hi;

    std::array<BatchResult, kMaxChildren> results;  // touched children only
    bool any_changed = false;
    for (unsigned c = 0; c <= in->count; ++c) {
      if (pos[c] != pos[c + 1]) {
        results[c] =
            apply_rec(b, in->child[c], ctx, pos[c], pos[c + 1], height - 1);
        any_changed |= results[c].changed;
      }
    }
    BatchResult res;
    res.height = height;
    if (!any_changed) {
      res.pieces.push_back(in);
      return res;
    }
    res.changed = true;
    b.supersede(in);

    // Assemble left to right at a running height, grafting the shorter
    // side onto the taller side's edge whenever heights disagree.
    // Untouched children contribute themselves directly (no run is
    // materialized for them).
    std::vector<const Node*> run;
    std::vector<K> run_seps;
    std::size_t run_h = 0;
    for (unsigned c = 0; c <= in->count; ++c) {
      const Node* self = in->child[c];  // shared as-is when untouched
      const Node* const* nodes = &self;
      const K* seps = nullptr;
      std::size_t count = 1;
      std::size_t hc = height - 1;
      if (pos[c] != pos[c + 1]) {
        const BatchResult& rc = results[c];
        if (rc.pieces.empty()) continue;  // child fully erased
        nodes = rc.pieces.data();
        seps = rc.seps.data();
        count = rc.pieces.size();
        hc = rc.height;
      }
      if (run.empty()) {
        run.assign(nodes, nodes + count);
        run_seps.assign(seps, seps + (count > 1 ? count - 1 : 0));
        run_h = hc;
        continue;
      }
      const K sep = in->keys[c - 1];  // routing bound between old children
      if (run_h < hc) {
        // The accumulated run is shorter than the incoming pieces: raise
        // it level by level (only ever wrapping repaired multi-runs — a
        // lone piece with an underfull top must never be wrapped) until
        // it matches or collapses to a single graftable node.
        while (run.size() > 1 && run_h < hc) {
          fix_pieces(b, run_seps, run);
          if (run.size() == 1) break;
          std::vector<const Node*> up;
          std::vector<K> up_seps;
          pack_internals(b, run_seps, run, up, up_seps);
          run = std::move(up);
          run_seps = std::move(up_seps);
          ++run_h;
        }
        if (run_h < hc) {
          const MiniRun m =
              attach_left(b, nodes[0], sep, run.front(), hc - run_h);
          run.clear();
          run_seps.clear();
          run.push_back(m.a);
          if (m.b != nullptr) {
            run_seps.push_back(m.sep);
            run.push_back(m.b);
          }
          for (std::size_t j = 1; j < count; ++j) {
            run_seps.push_back(seps[j - 1]);
            run.push_back(nodes[j]);
          }
          run_h = hc;
          continue;
        }
      }
      if (run_h == hc) {
        run_seps.push_back(sep);
        for (std::size_t j = 0; j < count; ++j) {
          if (j > 0) run_seps.push_back(seps[j - 1]);
          run.push_back(nodes[j]);
        }
      } else {
        // Incoming collapsed below the run: a single piece to graft onto
        // the run's right edge.
        const MiniRun m = attach_right(b, run.back(), sep, nodes[0],
                                       run_h - hc);
        run.back() = m.a;
        if (m.b != nullptr) {
          run_seps.push_back(m.sep);
          run.push_back(m.b);
        }
      }
    }
    if (run.empty()) {
      res.height = 0;
      return res;  // the whole subtree vanished
    }
    // Normalize back up to this node's height; stop early if the run
    // collapses to one node — that is the height-dropped result the
    // parent grafts (or the root adopts).
    while (run_h < height && run.size() > 1) {
      fix_pieces(b, run_seps, run);
      if (run.size() == 1) break;
      std::vector<const Node*> up;
      std::vector<K> up_seps;
      pack_internals(b, run_seps, run, up, up_seps);
      run = std::move(up);
      run_seps = std::move(up_seps);
      ++run_h;
    }
    if (run.size() > 1) fix_pieces(b, run_seps, run);
    res.pieces = std::move(run);
    res.seps = std::move(run_seps);
    res.height = run_h;
    return res;
  }

  // Batch aimed at an empty tree: erases are no-ops, the surviving
  // inserts/assigns bulk-build their tree through the same packers as
  // from_sorted.
  template <class B>
  static const Node* build_batch_inserts(B& b, BatchCtx& ctx, std::size_t lo,
                                         std::size_t hi) {
    std::vector<std::pair<K, V>> run;
    run.reserve(hi - lo);
    for (std::size_t i = lo; i < hi; ++i) {
      if (ctx.ops[i].kind == BatchOpKind::kErase) {
        ctx.out[i] = BatchOutcome::kNoop;
      } else {
        ctx.out[i] = BatchOutcome::kInserted;
        run.emplace_back(ctx.ops[i].key, *ctx.ops[i].value);
      }
    }
    if (run.empty()) return nullptr;
    std::vector<const Node*> nodes;
    std::vector<K> seps;
    pack_leaves(b, run, nodes, seps);
    return build_levels(b, nodes, seps);
  }

  template <class F>
  static void for_each_rec(const Node* n, F& f) {
    if (n == nullptr) return;
    if (n->is_leaf) {
      const auto* leaf = static_cast<const LeafNode*>(n);
      for (unsigned i = 0; i < leaf->count; ++i) {
        f(leaf->keys[i], leaf->values[i]);
      }
      return;
    }
    const auto* in = static_cast<const InternalNode*>(n);
    for (unsigned i = 0; i <= in->count; ++i) for_each_rec(in->child[i], f);
  }

  // Read-side twin of apply_sorted_batch's partition walk: probe keys
  // strictly below separator keys[c] belong to child c (equal-to-separator
  // descends rightward, matching child_index), found by binary search so
  // the fan-out split costs O(fanout · log B) per internal node. Leaves
  // resolve their slice with one linear merge of two sorted runs. The
  // per_key_nodes counter follows the same exactness argument as the
  // binary-tree sweep: key k's own descent visits node n iff k lies in
  // n's partition range.
  static void read_batch_rec(const Node* n, std::span<const K> keys,
                             std::span<ReadOutcome> out, std::size_t lo,
                             std::size_t hi, ReadProbeStats& stats) {
    if (lo == hi || n == nullptr) return;
    stats.nodes_visited += 1;
    stats.per_key_nodes += hi - lo;
    Cmp cmp;
    if (n->is_leaf) {
      const auto* leaf = static_cast<const LeafNode*>(n);
      unsigned i = 0;
      for (std::size_t k = lo; k < hi; ++k) {
        while (i < leaf->count && cmp(leaf->keys[i], keys[k])) ++i;
        if (i < leaf->count && !cmp(keys[k], leaf->keys[i])) {
          out[k].value = leaf->values[i];
        }
      }
      return;
    }
    const auto* in = static_cast<const InternalNode*>(n);
    std::size_t k = lo;
    for (unsigned c = 0; c <= in->count && k < hi; ++c) {
      std::size_t e = hi;
      if (c < in->count) {
        std::size_t a = k, z = hi;
        while (a < z) {
          const std::size_t mid = a + (z - a) / 2;
          if (cmp(keys[mid], in->keys[c])) {
            a = mid + 1;
          } else {
            z = mid;
          }
        }
        e = a;
      }
      read_batch_rec(in->child[c], keys, out, k, e, stats);
      k = e;
    }
  }

  // Bounded variant of for_each_range_rec: same separator pruning, but
  // stops dead once `remaining` hits zero.
  static void scan_range_rec(const Node* n, const K& lo, const K& hi,
                             std::size_t& remaining,
                             std::vector<std::pair<K, V>>& out) {
    if (n == nullptr || remaining == 0) return;
    Cmp cmp;
    if (n->is_leaf) {
      const auto* leaf = static_cast<const LeafNode*>(n);
      for (unsigned i = 0; i < leaf->count && remaining > 0; ++i) {
        if (cmp(leaf->keys[i], lo)) continue;
        if (!cmp(leaf->keys[i], hi)) return;
        out.emplace_back(leaf->keys[i], leaf->values[i]);
        --remaining;
      }
      return;
    }
    const auto* in = static_cast<const InternalNode*>(n);
    for (unsigned i = 0; i <= in->count && remaining > 0; ++i) {
      if (i > 0 && !cmp(in->keys[i - 1], hi)) return;       // child >= hi
      if (i < in->count && !cmp(lo, in->keys[i])) continue;  // child <= lo
      scan_range_rec(in->child[i], lo, hi, remaining, out);
    }
  }

  // Child i serves [keys[i-1], keys[i]) (descent sends a key equal to a
  // separator rightward), so a child is skippable exactly when its upper
  // separator is <= lo or its lower separator is >= hi.
  template <class F>
  static void for_each_range_rec(const Node* n, const K& lo, const K& hi,
                                 F& f) {
    if (n == nullptr) return;
    Cmp cmp;
    if (n->is_leaf) {
      const auto* leaf = static_cast<const LeafNode*>(n);
      for (unsigned i = 0; i < leaf->count; ++i) {
        if (cmp(leaf->keys[i], lo)) continue;
        if (!cmp(leaf->keys[i], hi)) return;
        f(leaf->keys[i], leaf->values[i]);
      }
      return;
    }
    const auto* in = static_cast<const InternalNode*>(n);
    for (unsigned i = 0; i <= in->count; ++i) {
      if (i > 0 && !cmp(in->keys[i - 1], hi)) return;       // child >= hi
      if (i < in->count && !cmp(lo, in->keys[i])) continue;  // child <= lo
      for_each_range_rec(in->child[i], lo, hi, f);
    }
  }

  struct CheckResult {
    bool ok;
    std::uint64_t size;
    std::size_t depth;  // uniform leaf depth
  };

  static CheckResult check_rec(const Node* n, const K* lo, const K* hi,
                               bool is_root) {
    Cmp cmp;
    if (n->pc_state_ != core::NodeState::kPublished) return {false, 0, 0};
    if (n->is_leaf) {
      const auto* leaf = static_cast<const LeafNode*>(n);
      if (!is_root && leaf->count < kLeafMin) return {false, 0, 0};
      if (leaf->count > kLeafCap || (is_root && leaf->count == 0)) {
        return {false, 0, 0};
      }
      for (unsigned i = 0; i < leaf->count; ++i) {
        if (i > 0 && !cmp(leaf->keys[i - 1], leaf->keys[i])) {
          return {false, 0, 0};
        }
        if (lo != nullptr && cmp(leaf->keys[i], *lo)) return {false, 0, 0};
        if (hi != nullptr && !cmp(leaf->keys[i], *hi)) return {false, 0, 0};
      }
      if (leaf->size != leaf->count) return {false, 0, 0};
      return {true, leaf->size, 1};
    }
    const auto* in = static_cast<const InternalNode*>(n);
    if (!is_root && in->count < kMinKeys) return {false, 0, 0};
    if (is_root && in->count == 0) return {false, 0, 0};
    if (in->count > kMaxKeys) return {false, 0, 0};
    std::uint64_t total = 0;
    std::size_t depth = 0;
    for (unsigned i = 0; i <= in->count; ++i) {
      if (i > 0 && i < in->count && !cmp(in->keys[i - 1], in->keys[i])) {
        return {false, 0, 0};
      }
      const K* clo = i == 0 ? lo : &in->keys[i - 1];
      const K* chi = i == in->count ? hi : &in->keys[i];
      const CheckResult r = check_rec(in->child[i], clo, chi, false);
      if (!r.ok) return {false, 0, 0};
      if (i == 0) {
        depth = r.depth;
      } else if (r.depth != depth) {
        return {false, 0, 0};
      }
      total += r.size;
    }
    if (total != in->size) return {false, 0, 0};
    return {true, total, depth + 1};
  }

  static void collect(const Node* n, std::unordered_set<const Node*>& out) {
    if (n == nullptr) return;
    out.insert(n);
    if (!n->is_leaf) {
      const auto* in = static_cast<const InternalNode*>(n);
      for (unsigned i = 0; i <= in->count; ++i) collect(in->child[i], out);
    }
  }

  static void count_shared(const Node* n,
                           const std::unordered_set<const Node*>& in_set,
                           std::size_t& shared) {
    if (n == nullptr) return;
    if (in_set.contains(n)) {
      shared += n->size;
      return;
    }
    if (!n->is_leaf) {
      const auto* in = static_cast<const InternalNode*>(n);
      for (unsigned i = 0; i <= in->count; ++i) {
        count_shared(in->child[i], in_set, shared);
      }
    }
  }

  const Node* root_ = nullptr;
};

}  // namespace pathcopy::persist
