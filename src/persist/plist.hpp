// Persistent singly linked list (cons list).
//
// The degenerate case for path copying: prefix operations are O(1), but a
// write at index i copies i nodes, and the "path" to any element is the
// whole prefix. It exists (a) to show the universal construction handles
// non-tree structures and (b) as the anti-pattern in the cache analysis —
// with a linear structure the failed-attempt prefetch effect covers the
// entire prefix, yet successful updates still serialize over O(i) copies.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "core/node_base.hpp"
#include "util/assert.hpp"

namespace pathcopy::persist {

template <class T>
class PList {
 public:
  struct Node : core::PNode {
    T value;
    std::uint64_t size;  // length of the list from this node
    const Node* next;

    Node(const T& v, const Node* nxt) : value(v), size(1 + size_of(nxt)), next(nxt) {}
  };

  PList() noexcept = default;

  static PList from_root(const void* root) noexcept {
    return PList{static_cast<const Node*>(root)};
  }
  const void* root_ptr() const noexcept { return head_; }
  const Node* head_node() const noexcept { return head_; }

  std::size_t size() const noexcept { return size_of(head_); }
  bool empty() const noexcept { return head_ == nullptr; }

  const T& front() const {
    PC_ASSERT(head_ != nullptr, "front() on empty list");
    return head_->value;
  }

  const T& at(std::size_t i) const {
    const Node* n = head_;
    while (i > 0) {
      PC_ASSERT(n != nullptr, "at() out of range");
      n = n->next;
      --i;
    }
    PC_ASSERT(n != nullptr, "at() out of range");
    return n->value;
  }

  template <class B>
  PList push_front(B& b, const T& value) const {
    return PList{b.template create<Node>(value, head_)};
  }

  template <class B>
  PList pop_front(B& b) const {
    if (head_ == nullptr) return *this;
    b.supersede(head_);
    return PList{head_->next};
  }

  /// Replaces element i, copying the prefix [0, i].
  template <class B>
  PList set(B& b, std::size_t i, const T& value) const {
    PC_ASSERT(i < size(), "set() out of range");
    return PList{set_rec(b, head_, i, value)};
  }

  /// Inserts before index i (i == size() appends), copying the prefix.
  template <class B>
  PList insert_at(B& b, std::size_t i, const T& value) const {
    PC_ASSERT(i <= size(), "insert_at() out of range");
    return PList{insert_rec(b, head_, i, value)};
  }

  /// Removes element i, copying the prefix [0, i).
  template <class B>
  PList erase_at(B& b, std::size_t i) const {
    PC_ASSERT(i < size(), "erase_at() out of range");
    return PList{erase_rec(b, head_, i)};
  }

  /// Concatenation: copies *this entirely, shares other.
  template <class B>
  static PList concat(B& b, const PList& lhs, const PList& rhs) {
    return PList{concat_rec(b, lhs.head_, rhs.head_)};
  }

  template <class F>
  void for_each(F&& f) const {
    for (const Node* n = head_; n != nullptr; n = n->next) f(n->value);
  }

  std::vector<T> items() const {
    std::vector<T> out;
    out.reserve(size());
    for_each([&](const T& v) { out.push_back(v); });
    return out;
  }

  bool check_invariants() const {
    std::uint64_t expect = size_of(head_);
    for (const Node* n = head_; n != nullptr; n = n->next) {
      if (n->pc_state_ != core::NodeState::kPublished) return false;
      if (n->size != expect) return false;
      --expect;
    }
    return expect == 0;
  }

  static std::size_t shared_nodes(const PList& a, const PList& b) {
    std::unordered_set<const Node*> seen;
    for (const Node* n = a.head_; n != nullptr; n = n->next) seen.insert(n);
    for (const Node* n = b.head_; n != nullptr; n = n->next) {
      if (seen.contains(n)) return n->size;  // suffixes are shared wholesale
    }
    return 0;
  }

  template <class Backend>
  static void destroy(const Node* n, Backend& backend) {
    while (n != nullptr) {
      const Node* next = n->next;
      n->~Node();
      backend.free_bytes(const_cast<Node*>(n), sizeof(Node), alignof(Node));
      n = next;
    }
  }

 private:
  explicit PList(const Node* head) noexcept : head_(head) {}

  static std::uint64_t size_of(const Node* n) noexcept {
    return n == nullptr ? 0 : n->size;
  }

  template <class B>
  static const Node* set_rec(B& b, const Node* n, std::size_t i, const T& value) {
    b.supersede(n);
    if (i == 0) return b.template create<Node>(value, n->next);
    return b.template create<Node>(n->value, set_rec(b, n->next, i - 1, value));
  }

  template <class B>
  static const Node* insert_rec(B& b, const Node* n, std::size_t i,
                                const T& value) {
    if (i == 0) return b.template create<Node>(value, n);
    b.supersede(n);
    return b.template create<Node>(n->value, insert_rec(b, n->next, i - 1, value));
  }

  template <class B>
  static const Node* erase_rec(B& b, const Node* n, std::size_t i) {
    b.supersede(n);
    if (i == 0) return n->next;
    return b.template create<Node>(n->value, erase_rec(b, n->next, i - 1));
  }

  template <class B>
  static const Node* concat_rec(B& b, const Node* n, const Node* tail) {
    if (n == nullptr) return tail;
    return b.template create<Node>(n->value, concat_rec(b, n->next, tail));
  }

  const Node* head_ = nullptr;
};

}  // namespace pathcopy::persist
