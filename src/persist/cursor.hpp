// Cursor: ordered iteration over an immutable snapshot.
//
// A snapshot of a path-copied tree is a plain pointer, so a cursor is a
// root-to-current stack of node pointers — no locks, no version checks,
// no invalidation: the nodes it references can never change. next()/
// prev() are amortized O(1); seek() repositions in O(log N) using the
// search structure rather than restarting a scan.
//
// Cursor works over any binary-node structure in src/persist/ (treap,
// AVL, weight-balanced, red-black — anything whose Node has key/value/
// left/right); LeafCursor covers the B+tree (leaf-and-index stack), and
// make_cursor/scan_range pick the right one by structure shape. The HAMT
// is unordered — use its for_each.
//
// Lifetime: the snapshot's nodes must stay alive while the cursor is
// used. Inside Atom::read that is the guard's job; for longer-lived
// cursors take a WatermarkReclaimer snapshot or use an arena.
//
//   atom.read(ctx, [&](Map m) {
//     persist::Cursor<Map> c(m);
//     for (c.seek(lo); c.valid() && c.key() < hi; c.next()) consume(c);
//   });
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "util/assert.hpp"

namespace pathcopy::persist {

template <class DS>
class Cursor {
 public:
  using Node = typename DS::Node;
  using Key = typename DS::KeyType;
  using Value = typename DS::ValueType;

  /// Starts invalid (call seek_first / seek / seek_last to position).
  explicit Cursor(const DS& snapshot) : root_(snapshot.root_node()) {
    path_.reserve(48);
  }

  bool valid() const noexcept { return !path_.empty(); }

  const Key& key() const {
    PC_DASSERT(valid(), "key() on an invalid cursor");
    return path_.back()->key;
  }
  const Value& value() const {
    PC_DASSERT(valid(), "value() on an invalid cursor");
    return path_.back()->value;
  }

  /// Smallest key in the snapshot; invalid if empty.
  void seek_first() {
    path_.clear();
    for (const Node* n = root_; n != nullptr; n = n->left) path_.push_back(n);
  }

  /// Largest key in the snapshot; invalid if empty.
  void seek_last() {
    path_.clear();
    for (const Node* n = root_; n != nullptr; n = n->right) {
      path_.push_back(n);
    }
  }

  /// First key >= k (lower bound); invalid when every key < k.
  template <class Cmp = std::less<Key>>
  void seek(const Key& k, Cmp cmp = Cmp{}) {
    path_.clear();
    std::size_t best_depth = 0;  // path length at the best (>= k) node
    for (const Node* n = root_; n != nullptr;) {
      path_.push_back(n);
      if (cmp(n->key, k)) {
        n = n->right;
      } else {
        best_depth = path_.size();
        n = n->left;
      }
    }
    path_.resize(best_depth);  // unwind below the last >= k node
  }

  /// In-order successor; invalidates past the last key.
  void next() {
    PC_DASSERT(valid(), "next() on an invalid cursor");
    const Node* cur = path_.back();
    if (cur->right != nullptr) {
      for (const Node* n = cur->right; n != nullptr; n = n->left) {
        path_.push_back(n);
      }
      return;
    }
    // Climb until arriving from a left child.
    path_.pop_back();
    while (!path_.empty() && path_.back()->right == cur) {
      cur = path_.back();
      path_.pop_back();
    }
  }

  /// In-order predecessor; invalidates before the first key.
  void prev() {
    PC_DASSERT(valid(), "prev() on an invalid cursor");
    const Node* cur = path_.back();
    if (cur->left != nullptr) {
      for (const Node* n = cur->left; n != nullptr; n = n->right) {
        path_.push_back(n);
      }
      return;
    }
    path_.pop_back();
    while (!path_.empty() && path_.back()->left == cur) {
      cur = path_.back();
      path_.pop_back();
    }
  }

 private:
  const Node* root_;
  std::vector<const Node*> path_;
};

/// Cursor over a B+tree snapshot: a root-to-leaf stack of (node, child
/// index) plus the position inside the current leaf. Same surface as
/// Cursor; next()/prev() step through leaves, seek() is lower-bound.
template <class BT>
class LeafCursor {
 public:
  using Node = typename BT::Node;
  using Leaf = typename BT::LeafNode;
  using Internal = typename BT::InternalNode;
  using Key = typename BT::KeyType;
  using Value = typename BT::ValueType;

  explicit LeafCursor(const BT& snapshot) : root_(snapshot.root_node()) {}

  bool valid() const noexcept { return leaf_ != nullptr; }

  const Key& key() const {
    PC_DASSERT(valid(), "key() on an invalid cursor");
    return leaf_->keys[pos_];
  }
  const Value& value() const {
    PC_DASSERT(valid(), "value() on an invalid cursor");
    return leaf_->values[pos_];
  }

  void seek_first() {
    descend_edge(/*rightmost=*/false);
    pos_ = 0;
  }

  void seek_last() {
    descend_edge(/*rightmost=*/true);
    if (leaf_ != nullptr) pos_ = leaf_->count - 1u;
  }

  /// First key >= k; invalid when every key < k.
  template <class Cmp = std::less<Key>>
  void seek(const Key& k, Cmp cmp = Cmp{}) {
    path_.clear();
    leaf_ = nullptr;
    const Node* n = root_;
    if (n == nullptr) return;
    while (!n->is_leaf) {
      const auto* in = static_cast<const Internal*>(n);
      unsigned i = 0;
      while (i < in->count && !cmp(k, in->keys[i])) ++i;
      path_.push_back({in, i});
      n = in->child[i];
    }
    const auto* leaf = static_cast<const Leaf*>(n);
    unsigned i = 0;
    while (i < leaf->count && cmp(leaf->keys[i], k)) ++i;
    if (i < leaf->count) {
      leaf_ = leaf;
      pos_ = i;
      return;
    }
    // Everything in this leaf is < k: the answer is the next leaf's first
    // key (separators guarantee it is >= k).
    leaf_ = leaf;
    pos_ = leaf->count - 1u;
    next();
  }

  void next() {
    PC_DASSERT(valid(), "next() on an invalid cursor");
    if (pos_ + 1u < leaf_->count) {
      ++pos_;
      return;
    }
    // Climb to the first ancestor with a right sibling, descend its
    // leftmost edge.
    while (!path_.empty() && path_.back().idx == path_.back().node->count) {
      path_.pop_back();
    }
    if (path_.empty()) {
      leaf_ = nullptr;
      return;
    }
    ++path_.back().idx;
    const Node* n = path_.back().node->child[path_.back().idx];
    while (!n->is_leaf) {
      const auto* in = static_cast<const Internal*>(n);
      path_.push_back({in, 0});
      n = in->child[0];
    }
    leaf_ = static_cast<const Leaf*>(n);
    pos_ = 0;
  }

  void prev() {
    PC_DASSERT(valid(), "prev() on an invalid cursor");
    if (pos_ > 0) {
      --pos_;
      return;
    }
    while (!path_.empty() && path_.back().idx == 0) path_.pop_back();
    if (path_.empty()) {
      leaf_ = nullptr;
      return;
    }
    --path_.back().idx;
    const Node* n = path_.back().node->child[path_.back().idx];
    while (!n->is_leaf) {
      const auto* in = static_cast<const Internal*>(n);
      path_.push_back({in, in->count});
      n = in->child[in->count];
    }
    leaf_ = static_cast<const Leaf*>(n);
    pos_ = leaf_->count - 1u;
  }

 private:
  struct Frame {
    const Internal* node;
    unsigned idx;  // child index taken from this node
  };

  void descend_edge(bool rightmost) {
    path_.clear();
    leaf_ = nullptr;
    const Node* n = root_;
    if (n == nullptr) return;
    while (!n->is_leaf) {
      const auto* in = static_cast<const Internal*>(n);
      const unsigned i = rightmost ? in->count : 0u;
      path_.push_back({in, i});
      n = in->child[i];
    }
    leaf_ = static_cast<const Leaf*>(n);
    pos_ = 0;
  }

  const Node* root_;
  std::vector<Frame> path_;
  const Leaf* leaf_ = nullptr;
  unsigned pos_ = 0;
};

namespace detail {

template <class DS>
concept HasLeafNodes = requires { typename DS::LeafNode; };

}  // namespace detail

/// Structure-appropriate cursor type: LeafCursor for the B+tree, the
/// binary-node Cursor otherwise.
template <class DS>
auto make_cursor(const DS& snapshot) {
  if constexpr (detail::HasLeafNodes<DS>) {
    return LeafCursor<DS>(snapshot);
  } else {
    return Cursor<DS>(snapshot);
  }
}

/// Visits (key, value) for every key in [lo, hi), in order. O(log N +
/// matches) — positions with one seek, stops at the boundary. Works for
/// every ordered structure via make_cursor.
template <class DS, class F, class Cmp = std::less<typename DS::KeyType>>
void scan_range(const DS& snapshot, const typename DS::KeyType& lo,
                const typename DS::KeyType& hi, F&& f, Cmp cmp = Cmp{}) {
  auto c = make_cursor(snapshot);
  for (c.seek(lo, cmp); c.valid() && cmp(c.key(), hi); c.next()) {
    f(c.key(), c.value());
  }
}

}  // namespace pathcopy::persist
