// Persistent external (leaf-oriented) binary search tree.
//
// This is the structure the paper's analytical model assumes (Appendix A):
// data lives only in leaves, internal nodes carry routing keys. An insert
// replaces one leaf with a router-plus-two-leaves triple and path-copies
// up to the root; an erase splices the sibling into the grandparent.
// There is no rebalancing — with uniformly random keys the expected
// height is O(log N), matching the model's assumption.
//
// Routing convention: an internal node's key equals the smallest key of
// its right subtree; searches go left on cmp(k, router) and right
// otherwise. Duplicate-key inserts and missing-key erases return the same
// version without allocating a single node.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/node_base.hpp"
#include "util/assert.hpp"

namespace pathcopy::persist {

template <class K, class V, class Cmp = std::less<K>>
class ExternalBst {
 public:
  using KeyType = K;
  using ValueType = V;
  struct Node : core::PNode {
    K key;         // leaf: element key; internal: routing key
    V value;       // meaningful for leaves only
    std::uint64_t size;  // leaves in this subtree
    const Node* left;
    const Node* right;  // leaf iff both children are null

    // Leaf constructor.
    Node(const K& k, const V& v)
        : key(k), value(v), size(1), left(nullptr), right(nullptr) {}
    // Internal constructor.
    Node(const K& router, const Node* l, const Node* r)
        : key(router), value(), size(l->size + r->size), left(l), right(r) {}

    bool is_leaf() const noexcept { return left == nullptr; }
  };

  ExternalBst() noexcept = default;

  static ExternalBst from_root(const void* root) noexcept {
    return ExternalBst{static_cast<const Node*>(root)};
  }
  const void* root_ptr() const noexcept { return root_; }
  const Node* root_node() const noexcept { return root_; }

  std::size_t size() const noexcept { return root_ == nullptr ? 0 : root_->size; }
  bool empty() const noexcept { return root_ == nullptr; }

  // ----- queries -----

  const V* find(const K& key) const {
    const Node* leaf = locate(key);
    if (leaf != nullptr && equal(leaf->key, key)) return &leaf->value;
    return nullptr;
  }

  bool contains(const K& key) const { return find(key) != nullptr; }

  const Node* min_leaf() const {
    const Node* n = root_;
    while (n != nullptr && !n->is_leaf()) n = n->left;
    return n;
  }

  const Node* max_leaf() const {
    const Node* n = root_;
    while (n != nullptr && !n->is_leaf()) n = n->right;
    return n;
  }

  /// Number of element keys strictly less than key.
  std::size_t rank(const K& key) const {
    std::size_t r = 0;
    const Node* n = root_;
    Cmp cmp;
    while (n != nullptr && !n->is_leaf()) {
      if (cmp(key, n->key)) {
        n = n->left;
      } else {
        r += n->left->size;
        n = n->right;
      }
    }
    if (n != nullptr && cmp(n->key, key)) ++r;
    return r;
  }

  /// The i-th smallest leaf (0-based); nullptr when i >= size().
  const Node* kth(std::size_t i) const {
    if (root_ == nullptr || i >= root_->size) return nullptr;
    const Node* n = root_;
    while (!n->is_leaf()) {
      const std::size_t ls = n->left->size;
      if (i < ls) {
        n = n->left;
      } else {
        i -= ls;
        n = n->right;
      }
    }
    return n;
  }

  template <class F>
  void for_each(F&& f) const {
    for_each_rec(root_, f);
  }

  std::vector<std::pair<K, V>> items() const {
    std::vector<std::pair<K, V>> out;
    out.reserve(size());
    for_each([&](const K& k, const V& v) { out.emplace_back(k, v); });
    return out;
  }

  /// The root-to-leaf search path for key (model instrumentation).
  std::vector<const Node*> path_to(const K& key) const {
    std::vector<const Node*> path;
    const Node* n = root_;
    Cmp cmp;
    while (n != nullptr) {
      path.push_back(n);
      if (n->is_leaf()) break;
      n = cmp(key, n->key) ? n->left : n->right;
    }
    return path;
  }

  // ----- updates -----

  template <class B>
  ExternalBst insert(B& b, const K& key, const V& value) const {
    if (root_ == nullptr) {
      return ExternalBst{b.template create<Node>(key, value)};
    }
    bool added = false;
    const Node* nr = insert_rec(b, root_, key, value, added);
    return added ? ExternalBst{nr} : *this;
  }

  template <class B>
  ExternalBst insert_or_assign(B& b, const K& key, const V& value) const {
    if (contains(key)) {
      return ExternalBst{assign_rec(b, root_, key, value)};
    }
    return insert(b, key, value);
  }

  template <class B>
  ExternalBst erase(B& b, const K& key) const {
    if (root_ == nullptr) return *this;
    if (root_->is_leaf()) {
      if (!equal(root_->key, key)) return *this;
      b.supersede(root_);
      return ExternalBst{};
    }
    bool removed = false;
    const Node* nr = erase_rec(b, root_, key, removed);
    return removed ? ExternalBst{nr} : *this;
  }

  // ----- structural utilities -----

  bool check_invariants() const {
    if (root_ == nullptr) return true;
    return check_rec(root_, nullptr, nullptr).ok;
  }

  std::size_t height() const { return height_rec(root_); }

  static std::size_t shared_nodes(const ExternalBst& a, const ExternalBst& b) {
    std::unordered_set<const Node*> seen;
    collect(a.root_, seen);
    std::size_t shared = 0;
    count_shared(b.root_, seen, shared);
    return shared;
  }

  template <class Backend>
  static void destroy(const Node* n, Backend& backend) {
    if (n == nullptr) return;
    destroy(n->left, backend);
    destroy(n->right, backend);
    n->~Node();
    backend.free_bytes(const_cast<Node*>(n), sizeof(Node), alignof(Node));
  }

 private:
  explicit ExternalBst(const Node* root) noexcept : root_(root) {}

  static bool equal(const K& a, const K& b) {
    Cmp cmp;
    return !cmp(a, b) && !cmp(b, a);
  }

  /// Descends to the leaf whose range covers key (nullptr on empty tree).
  const Node* locate(const K& key) const {
    const Node* n = root_;
    Cmp cmp;
    while (n != nullptr && !n->is_leaf()) {
      n = cmp(key, n->key) ? n->left : n->right;
    }
    return n;
  }

  template <class B>
  static const Node* insert_rec(B& b, const Node* n, const K& key,
                                const V& value, bool& added) {
    Cmp cmp;
    if (n->is_leaf()) {
      if (equal(n->key, key)) {
        added = false;
        return n;
      }
      added = true;
      const Node* fresh = b.template create<Node>(key, value);
      // Router = smaller of the two goes left; router key is the right
      // child's key (= min of right subtree).
      if (cmp(key, n->key)) {
        return b.template create<Node>(n->key, fresh, n);
      }
      return b.template create<Node>(key, n, fresh);
    }
    if (cmp(key, n->key)) {
      const Node* nl = insert_rec(b, n->left, key, value, added);
      if (!added) return n;
      b.supersede(n);
      return b.template create<Node>(n->key, nl, n->right);
    }
    const Node* nr = insert_rec(b, n->right, key, value, added);
    if (!added) return n;
    b.supersede(n);
    return b.template create<Node>(n->key, n->left, nr);
  }

  template <class B>
  static const Node* assign_rec(B& b, const Node* n, const K& key,
                                const V& value) {
    Cmp cmp;
    b.supersede(n);
    if (n->is_leaf()) {
      PC_DASSERT(equal(n->key, key), "assign_rec reached a foreign leaf");
      return b.template create<Node>(key, value);
    }
    if (cmp(key, n->key)) {
      return b.template create<Node>(n->key, assign_rec(b, n->left, key, value),
                                     n->right);
    }
    return b.template create<Node>(n->key, n->left,
                                   assign_rec(b, n->right, key, value));
  }

  // Pre: n is internal. Removes the leaf for key underneath n; when the
  // removed leaf's parent is n itself, returns the (shared) sibling.
  template <class B>
  static const Node* erase_rec(B& b, const Node* n, const K& key,
                               bool& removed) {
    Cmp cmp;
    const bool go_left = cmp(key, n->key);
    const Node* child = go_left ? n->left : n->right;
    const Node* sibling = go_left ? n->right : n->left;
    if (child->is_leaf()) {
      if (!equal(child->key, key)) {
        removed = false;
        return n;
      }
      removed = true;
      b.supersede(n);
      b.supersede(child);
      return sibling;  // shared splice: no copy of the surviving subtree
    }
    const Node* nc = erase_rec(b, child, key, removed);
    if (!removed) return n;
    b.supersede(n);
    if (go_left) {
      return b.template create<Node>(n->key, nc, n->right);
    }
    return b.template create<Node>(n->key, n->left, nc);
  }

  template <class F>
  static void for_each_rec(const Node* n, F& f) {
    if (n == nullptr) return;
    if (n->is_leaf()) {
      f(n->key, n->value);
      return;
    }
    for_each_rec(n->left, f);
    for_each_rec(n->right, f);
  }

  struct CheckResult {
    bool ok;
    std::uint64_t size;
  };

  // Invariant: max(left) < router <= min(right). Freshly inserted routers
  // equal min(right) exactly, but erase splices leaves out without
  // rewriting ancestor routers, so only the separator property survives;
  // it is enforced through the [lo, hi) bounds below.
  static CheckResult check_rec(const Node* n, const K* lo, const K* hi) {
    Cmp cmp;
    if (n->pc_state_ != core::NodeState::kPublished) return {false, 0};
    if (n->is_leaf()) {
      if (n->right != nullptr || n->size != 1) return {false, 0};
      if (lo != nullptr && cmp(n->key, *lo)) return {false, 0};
      if (hi != nullptr && !cmp(n->key, *hi)) return {false, 0};
      return {true, 1};
    }
    if (n->left == nullptr || n->right == nullptr) return {false, 0};
    const CheckResult l = check_rec(n->left, lo, &n->key);
    if (!l.ok) return {false, 0};
    const CheckResult r = check_rec(n->right, &n->key, hi);
    if (!r.ok) return {false, 0};
    if (n->size != l.size + r.size) return {false, 0};
    return {true, n->size};
  }

  static std::size_t height_rec(const Node* n) {
    if (n == nullptr) return 0;
    const std::size_t l = height_rec(n->left);
    const std::size_t r = height_rec(n->right);
    return 1 + (l > r ? l : r);
  }

  static void collect(const Node* n, std::unordered_set<const Node*>& out) {
    if (n == nullptr) return;
    out.insert(n);
    collect(n->left, out);
    collect(n->right, out);
  }

  static void count_shared(const Node* n,
                           const std::unordered_set<const Node*>& in,
                           std::size_t& shared) {
    if (n == nullptr) return;
    if (in.contains(n)) {
      shared += subtree_nodes(n);
      return;
    }
    count_shared(n->left, in, shared);
    count_shared(n->right, in, shared);
  }

  static std::size_t subtree_nodes(const Node* n) {
    // Total node count (internals + leaves) = 2 * leaves - 1 for a full
    // binary subtree, which external trees always are.
    return 2 * static_cast<std::size_t>(n->size) - 1;
  }

  const Node* root_ = nullptr;
};

}  // namespace pathcopy::persist
