// Persistent external (leaf-oriented) binary search tree.
//
// This is the structure the paper's analytical model assumes (Appendix A):
// data lives only in leaves, internal nodes carry routing keys. An insert
// replaces one leaf with a router-plus-two-leaves triple and path-copies
// up to the root; an erase splices the sibling into the grandparent.
// There is no rebalancing — with uniformly random keys the expected
// height is O(log N), matching the model's assumption.
//
// Routing convention: an internal node's key equals the smallest key of
// its right subtree; searches go left on cmp(k, router) and right
// otherwise. Duplicate-key inserts and missing-key erases return the same
// version without allocating a single node.
//
// Supports the sorted-batch protocol (persist/batch.hpp): ops partition
// at each router (no balancing, so no join machinery at all) and every
// leaf absorbs its op run by rebuilding a balanced router-plus-leaves
// subtree over the survivors in place — untouched subtrees are shared by
// pointer, erased leaves splice their sibling up, and an all-noop batch
// returns the same root with zero allocations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/node_base.hpp"
#include "persist/batch.hpp"
#include "util/assert.hpp"

namespace pathcopy::persist {

template <class K, class V, class Cmp = std::less<K>>
class ExternalBst {
 public:
  using KeyType = K;
  using ValueType = V;
  using KeyCompare = Cmp;
  using BatchOp = persist::BatchOp<K, V>;
  using BatchOpKind = persist::BatchOpKind;
  using BatchOutcome = persist::BatchOutcome;
  struct Node : core::PNode {
    K key;         // leaf: element key; internal: routing key
    V value;       // meaningful for leaves only
    std::uint64_t size;  // leaves in this subtree
    const Node* left;
    const Node* right;  // leaf iff both children are null

    // Leaf constructor.
    Node(const K& k, const V& v)
        : key(k), value(v), size(1), left(nullptr), right(nullptr) {}
    // Internal constructor.
    Node(const K& router, const Node* l, const Node* r)
        : key(router), value(), size(l->size + r->size), left(l), right(r) {}

    bool is_leaf() const noexcept { return left == nullptr; }
  };

  ExternalBst() noexcept = default;

  static ExternalBst from_root(const void* root) noexcept {
    return ExternalBst{static_cast<const Node*>(root)};
  }
  const void* root_ptr() const noexcept { return root_; }
  const Node* root_node() const noexcept { return root_; }

  std::size_t size() const noexcept { return root_ == nullptr ? 0 : root_->size; }
  bool empty() const noexcept { return root_ == nullptr; }

  // ----- queries -----

  const V* find(const K& key) const {
    const Node* leaf = locate(key);
    if (leaf != nullptr && equal(leaf->key, key)) return &leaf->value;
    return nullptr;
  }

  bool contains(const K& key) const { return find(key) != nullptr; }

  const Node* min_leaf() const {
    const Node* n = root_;
    while (n != nullptr && !n->is_leaf()) n = n->left;
    return n;
  }

  const Node* max_leaf() const {
    const Node* n = root_;
    while (n != nullptr && !n->is_leaf()) n = n->right;
    return n;
  }

  /// Number of element keys strictly less than key.
  std::size_t rank(const K& key) const {
    std::size_t r = 0;
    const Node* n = root_;
    Cmp cmp;
    while (n != nullptr && !n->is_leaf()) {
      if (cmp(key, n->key)) {
        n = n->left;
      } else {
        r += n->left->size;
        n = n->right;
      }
    }
    if (n != nullptr && cmp(n->key, key)) ++r;
    return r;
  }

  /// The i-th smallest leaf (0-based); nullptr when i >= size().
  const Node* kth(std::size_t i) const {
    if (root_ == nullptr || i >= root_->size) return nullptr;
    const Node* n = root_;
    while (!n->is_leaf()) {
      const std::size_t ls = n->left->size;
      if (i < ls) {
        n = n->left;
      } else {
        i -= ls;
        n = n->right;
      }
    }
    return n;
  }

  template <class F>
  void for_each(F&& f) const {
    for_each_rec(root_, f);
  }

  std::vector<std::pair<K, V>> items() const {
    std::vector<std::pair<K, V>> out;
    out.reserve(size());
    for_each([&](const K& k, const V& v) { out.emplace_back(k, v); });
    return out;
  }

  /// In-order visit restricted to [lo, hi), leaf-aware: an internal
  /// router splits the key space at n->key (left < router <= right), so a
  /// side is pruned exactly when the interval cannot cross it; elements
  /// live only at leaves, tested directly there. O(hits + log n).
  template <class F>
  void for_each_range(const K& lo, const K& hi, F&& f) const {
    for_each_range_rec(root_, lo, hi, f);
  }

  /// Bounded range scan; see Treap::scan.
  std::size_t scan(const K& lo, const K& hi, std::size_t limit,
                   std::vector<std::pair<K, V>>& out) const {
    std::size_t remaining = limit;
    scan_range_rec(root_, lo, hi, remaining, out);
    return limit - remaining;
  }

  /// The root-to-leaf search path for key (model instrumentation).
  std::vector<const Node*> path_to(const K& key) const {
    std::vector<const Node*> path;
    const Node* n = root_;
    Cmp cmp;
    while (n != nullptr) {
      path.push_back(n);
      if (n->is_leaf()) break;
      n = cmp(key, n->key) ? n->left : n->right;
    }
    return path;
  }

  // ----- updates -----

  template <class B>
  ExternalBst insert(B& b, const K& key, const V& value) const {
    if (root_ == nullptr) {
      return ExternalBst{b.template create<Node>(key, value)};
    }
    bool added = false;
    const Node* nr = insert_rec(b, root_, key, value, added);
    return added ? ExternalBst{nr} : *this;
  }

  template <class B>
  ExternalBst insert_or_assign(B& b, const K& key, const V& value) const {
    if (contains(key)) {
      return ExternalBst{assign_rec(b, root_, key, value)};
    }
    return insert(b, key, value);
  }

  template <class B>
  ExternalBst erase(B& b, const K& key) const {
    if (root_ == nullptr) return *this;
    if (root_->is_leaf()) {
      if (!equal(root_->key, key)) return *this;
      b.supersede(root_);
      return ExternalBst{};
    }
    bool removed = false;
    const Node* nr = erase_rec(b, root_, key, removed);
    return removed ? ExternalBst{nr} : *this;
  }

  /// O(n) bulk construction from strictly increasing (key, value) pairs:
  /// the midpoint build places every pair in a leaf and every router at
  /// the min key of its right subtree, giving the minimal-height external
  /// tree (2n - 1 nodes).
  template <class B, class It>
  static ExternalBst from_sorted(B& b, It first, It last) {
    std::vector<std::pair<K, V>> items(first, last);
    check_sorted_items<Cmp>(items);
    if (items.empty()) return ExternalBst{};
    return ExternalBst{build_sorted_rec(b, items, 0, items.size())};
  }

  /// Applies a key-sorted, key-unique op batch in one path-copying sweep
  /// and reports a per-op outcome (aligned with `ops`). Contents are
  /// exactly those of applying the ops one at a time; ops partition at
  /// routers, untouched subtrees are shared by pointer (an all-noop batch
  /// returns the same root with zero allocations), and each touched leaf
  /// is replaced by a balanced subtree over its surviving run.
  template <class B>
  ExternalBst apply_sorted_batch(B& b, std::span<const BatchOp> ops,
                                 std::span<BatchOutcome> outcomes) const {
    PC_ASSERT(outcomes.size() >= ops.size(),
              "apply_sorted_batch outcome span too small");
    if (ops.empty()) return *this;
    check_sorted_batch<Cmp>(ops);
    BatchCtx ctx{ops, outcomes};
    if (root_ == nullptr) {
      return ExternalBst{build_batch_inserts(b, ctx, 0, ops.size())};
    }
    return ExternalBst{apply_batch_rec(b, root_, ctx, 0, ops.size())};
  }

  // ----- structural utilities -----

  bool check_invariants() const {
    if (root_ == nullptr) return true;
    return check_rec(root_, nullptr, nullptr).ok;
  }

  std::size_t height() const { return height_rec(root_); }

  static std::size_t shared_nodes(const ExternalBst& a, const ExternalBst& b) {
    std::unordered_set<const Node*> seen;
    collect(a.root_, seen);
    std::size_t shared = 0;
    count_shared(b.root_, seen, shared);
    return shared;
  }

  template <class Backend>
  static void destroy(const Node* n, Backend& backend) {
    if (n == nullptr) return;
    destroy(n->left, backend);
    destroy(n->right, backend);
    n->~Node();
    backend.free_bytes(const_cast<Node*>(n), sizeof(Node), alignof(Node));
  }

 private:
  explicit ExternalBst(const Node* root) noexcept : root_(root) {}

  static bool equal(const K& a, const K& b) {
    Cmp cmp;
    return !cmp(a, b) && !cmp(b, a);
  }

  /// Descends to the leaf whose range covers key (nullptr on empty tree).
  const Node* locate(const K& key) const {
    const Node* n = root_;
    Cmp cmp;
    while (n != nullptr && !n->is_leaf()) {
      n = cmp(key, n->key) ? n->left : n->right;
    }
    return n;
  }

  template <class B>
  static const Node* insert_rec(B& b, const Node* n, const K& key,
                                const V& value, bool& added) {
    Cmp cmp;
    if (n->is_leaf()) {
      if (equal(n->key, key)) {
        added = false;
        return n;
      }
      added = true;
      const Node* fresh = b.template create<Node>(key, value);
      // Router = smaller of the two goes left; router key is the right
      // child's key (= min of right subtree).
      if (cmp(key, n->key)) {
        return b.template create<Node>(n->key, fresh, n);
      }
      return b.template create<Node>(key, n, fresh);
    }
    if (cmp(key, n->key)) {
      const Node* nl = insert_rec(b, n->left, key, value, added);
      if (!added) return n;
      b.supersede(n);
      return b.template create<Node>(n->key, nl, n->right);
    }
    const Node* nr = insert_rec(b, n->right, key, value, added);
    if (!added) return n;
    b.supersede(n);
    return b.template create<Node>(n->key, n->left, nr);
  }

  template <class B>
  static const Node* assign_rec(B& b, const Node* n, const K& key,
                                const V& value) {
    Cmp cmp;
    b.supersede(n);
    if (n->is_leaf()) {
      PC_DASSERT(equal(n->key, key), "assign_rec reached a foreign leaf");
      return b.template create<Node>(key, value);
    }
    if (cmp(key, n->key)) {
      return b.template create<Node>(n->key, assign_rec(b, n->left, key, value),
                                     n->right);
    }
    return b.template create<Node>(n->key, n->left,
                                   assign_rec(b, n->right, key, value));
  }

  // Pre: n is internal. Removes the leaf for key underneath n; when the
  // removed leaf's parent is n itself, returns the (shared) sibling.
  template <class B>
  static const Node* erase_rec(B& b, const Node* n, const K& key,
                               bool& removed) {
    Cmp cmp;
    const bool go_left = cmp(key, n->key);
    const Node* child = go_left ? n->left : n->right;
    const Node* sibling = go_left ? n->right : n->left;
    if (child->is_leaf()) {
      if (!equal(child->key, key)) {
        removed = false;
        return n;
      }
      removed = true;
      b.supersede(n);
      b.supersede(child);
      return sibling;  // shared splice: no copy of the surviving subtree
    }
    const Node* nc = erase_rec(b, child, key, removed);
    if (!removed) return n;
    b.supersede(n);
    if (go_left) {
      return b.template create<Node>(n->key, nc, n->right);
    }
    return b.template create<Node>(n->key, n->left, nc);
  }

  // ----- bulk construction and sorted-batch application -----

  /// Midpoint build over [lo, hi): a leaf per pair, routers at the min
  /// key of their right half. Pre: hi > lo.
  template <class B>
  static const Node* build_sorted_rec(B& b,
                                      const std::vector<std::pair<K, V>>& items,
                                      std::size_t lo, std::size_t hi) {
    if (hi - lo == 1) {
      return b.template create<Node>(items[lo].first, items[lo].second);
    }
    const std::size_t mid = lo + (hi - lo) / 2;
    const Node* l = build_sorted_rec(b, items, lo, mid);
    const Node* r = build_sorted_rec(b, items, mid, hi);
    return b.template create<Node>(items[mid].first, l, r);
  }

  struct BatchCtx {
    std::span<const BatchOp> ops;
    std::span<BatchOutcome> out;
  };

  // Core of apply_sorted_batch: applies ops[lo, hi) to subtree n. Ops
  // partition at each router exactly as searches route (key < router
  // goes left), so every op lands on the one leaf whose range covers its
  // key; untouched subtrees return their pointer, an erased side splices
  // its sibling up, and a touched leaf rebuilds its surviving run.
  template <class B>
  static const Node* apply_batch_rec(B& b, const Node* n, BatchCtx& ctx,
                                     std::size_t lo, std::size_t hi) {
    if (lo == hi) return n;  // untouched subtree: shared, zero copies
    if (n->is_leaf()) return apply_leaf_run(b, n, ctx, lo, hi);
    Cmp cmp;
    std::size_t a = lo, z = hi;
    while (a < z) {
      const std::size_t mid = a + (z - a) / 2;
      if (cmp(ctx.ops[mid].key, n->key)) {
        a = mid + 1;
      } else {
        z = mid;
      }
    }
    const Node* l = apply_batch_rec(b, n->left, ctx, lo, a);
    const Node* r = apply_batch_rec(b, n->right, ctx, a, hi);
    if (l == n->left && r == n->right) return n;  // children untouched
    b.supersede(n);
    if (l == nullptr) return r;  // sibling splice (r may be null too)
    if (r == nullptr) return l;
    return b.template create<Node>(n->key, l, r);
  }

  /// Replaces leaf n with a balanced subtree over the survivors of its
  /// op run: the leaf's own pair (unless erased/reassigned) merged with
  /// every landing insert. Returns n unchanged when nothing lands.
  template <class B>
  static const Node* apply_leaf_run(B& b, const Node* n, BatchCtx& ctx,
                                    std::size_t lo, std::size_t hi) {
    Cmp cmp;
    bool alive = true;    // the leaf's own key survives
    V value = n->value;   // possibly reassigned
    bool changed = false;
    std::vector<std::pair<K, V>> run;
    run.reserve(hi - lo + 1);
    bool placed = false;  // leaf pair already merged into the run
    for (std::size_t i = lo; i < hi; ++i) {
      const BatchOp& op = ctx.ops[i];
      if (!cmp(op.key, n->key) && !cmp(n->key, op.key)) {
        switch (op.kind) {
          case BatchOpKind::kInsert:
            ctx.out[i] = BatchOutcome::kNoop;  // set-style: value kept
            break;
          case BatchOpKind::kErase:
            ctx.out[i] = BatchOutcome::kErased;
            alive = false;
            changed = true;
            break;
          case BatchOpKind::kAssign:
            ctx.out[i] = BatchOutcome::kAssigned;
            value = *op.value;
            changed = true;
            break;
        }
        continue;
      }
      if (op.kind == BatchOpKind::kErase) {
        ctx.out[i] = BatchOutcome::kNoop;  // absent key
        continue;
      }
      ctx.out[i] = BatchOutcome::kInserted;
      changed = true;
      if (!placed && alive && cmp(n->key, op.key)) {
        run.emplace_back(n->key, value);
        placed = true;
      }
      run.emplace_back(op.key, *op.value);
    }
    if (!changed) return n;
    if (alive && !placed) {
      // The leaf's key sorts after every landing insert seen so far —
      // or before all of them; find its slot (the run is sorted).
      std::size_t at = run.size();
      while (at > 0 && cmp(n->key, run[at - 1].first)) --at;
      run.insert(run.begin() + static_cast<std::ptrdiff_t>(at),
                 {n->key, value});
    }
    b.supersede(n);
    if (run.empty()) return nullptr;
    return build_sorted_rec(b, run, 0, run.size());
  }

  // Batch aimed at an empty tree: erases are no-ops, the surviving
  // inserts/assigns build the balanced external tree directly.
  template <class B>
  static const Node* build_batch_inserts(B& b, BatchCtx& ctx, std::size_t lo,
                                         std::size_t hi) {
    std::vector<std::pair<K, V>> run;
    run.reserve(hi - lo);
    for (std::size_t i = lo; i < hi; ++i) {
      if (ctx.ops[i].kind == BatchOpKind::kErase) {
        ctx.out[i] = BatchOutcome::kNoop;
      } else {
        ctx.out[i] = BatchOutcome::kInserted;
        run.emplace_back(ctx.ops[i].key, *ctx.ops[i].value);
      }
    }
    if (run.empty()) return nullptr;
    return build_sorted_rec(b, run, 0, run.size());
  }

  template <class F>
  static void for_each_rec(const Node* n, F& f) {
    if (n == nullptr) return;
    if (n->is_leaf()) {
      f(n->key, n->value);
      return;
    }
    for_each_rec(n->left, f);
    for_each_rec(n->right, f);
  }

  template <class F>
  static void for_each_range_rec(const Node* n, const K& lo, const K& hi,
                                 F& f) {
    if (n == nullptr) return;
    Cmp cmp;
    if (n->is_leaf()) {
      if (!cmp(n->key, lo) && cmp(n->key, hi)) f(n->key, n->value);
      return;
    }
    // Invariant: max(left) < router <= min(right).
    if (cmp(lo, n->key)) for_each_range_rec(n->left, lo, hi, f);
    if (cmp(n->key, hi)) for_each_range_rec(n->right, lo, hi, f);
  }

  static void scan_range_rec(const Node* n, const K& lo, const K& hi,
                             std::size_t& remaining,
                             std::vector<std::pair<K, V>>& out) {
    if (n == nullptr || remaining == 0) return;
    Cmp cmp;
    if (n->is_leaf()) {
      if (!cmp(n->key, lo) && cmp(n->key, hi)) {
        out.emplace_back(n->key, n->value);
        --remaining;
      }
      return;
    }
    if (cmp(lo, n->key)) scan_range_rec(n->left, lo, hi, remaining, out);
    if (cmp(n->key, hi)) scan_range_rec(n->right, lo, hi, remaining, out);
  }

  struct CheckResult {
    bool ok;
    std::uint64_t size;
  };

  // Invariant: max(left) < router <= min(right). Freshly inserted routers
  // equal min(right) exactly, but erase splices leaves out without
  // rewriting ancestor routers, so only the separator property survives;
  // it is enforced through the [lo, hi) bounds below.
  static CheckResult check_rec(const Node* n, const K* lo, const K* hi) {
    Cmp cmp;
    if (n->pc_state_ != core::NodeState::kPublished) return {false, 0};
    if (n->is_leaf()) {
      if (n->right != nullptr || n->size != 1) return {false, 0};
      if (lo != nullptr && cmp(n->key, *lo)) return {false, 0};
      if (hi != nullptr && !cmp(n->key, *hi)) return {false, 0};
      return {true, 1};
    }
    if (n->left == nullptr || n->right == nullptr) return {false, 0};
    const CheckResult l = check_rec(n->left, lo, &n->key);
    if (!l.ok) return {false, 0};
    const CheckResult r = check_rec(n->right, &n->key, hi);
    if (!r.ok) return {false, 0};
    if (n->size != l.size + r.size) return {false, 0};
    return {true, n->size};
  }

  static std::size_t height_rec(const Node* n) {
    if (n == nullptr) return 0;
    const std::size_t l = height_rec(n->left);
    const std::size_t r = height_rec(n->right);
    return 1 + (l > r ? l : r);
  }

  static void collect(const Node* n, std::unordered_set<const Node*>& out) {
    if (n == nullptr) return;
    out.insert(n);
    collect(n->left, out);
    collect(n->right, out);
  }

  static void count_shared(const Node* n,
                           const std::unordered_set<const Node*>& in,
                           std::size_t& shared) {
    if (n == nullptr) return;
    if (in.contains(n)) {
      shared += subtree_nodes(n);
      return;
    }
    count_shared(n->left, in, shared);
    count_shared(n->right, in, shared);
  }

  static std::size_t subtree_nodes(const Node* n) {
    // Total node count (internals + leaves) = 2 * leaves - 1 for a full
    // binary subtree, which external trees always are.
    return 2 * static_cast<std::size_t>(n->size) - 1;
  }

  const Node* root_ = nullptr;
};

}  // namespace pathcopy::persist
