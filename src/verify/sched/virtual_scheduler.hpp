// VirtualScheduler: a deterministic cooperative scheduler for model
// checking the store's small critical sections (lincheck-style).
//
// N logical threads run real code on real OS threads, but a mutex/cv
// token ensures AT MOST ONE of them executes at any moment. Control
// changes hands only at PC_YIELD instrumentation points
// (util/modelcheck.hpp) and at thread start/exit, so an execution is
// fully described by its decision trace: the sequence of logical-thread
// ids the controller granted. Because the SUT code between two yields
// runs single-threaded, replaying the same trace replays the exact same
// interleaving — every found bug is a permanent regression test, and an
// exhaustive walk of bounded traces is an exhaustive walk of the
// interleavings the instrumentation can distinguish.
//
// Pieces:
//   * VirtualScheduler — owns the logical threads and the token; run()
//     executes one schedule under a ScheduleStrategy and returns the
//     decision trace.
//   * ScheduleStrategy — picks the next thread at each decision point.
//     RoundRobin (baseline), Exhaustive (DFS over all bounded traces,
//     next_schedule() advances), Random (seeded walk, same seed = same
//     walk), Replay (a literal trace: hand-written schedules and
//     regression corpora).
//   * set_decision_tags() — restricts which PC_YIELD tags count as
//     decision points, so a search explores only the window under study
//     (other yields pass straight through).
//
// Rules for instrumented code: a PC_YIELD must never be placed where
// the yielding thread holds a lock another logical thread might need —
// the scheduler runs threads one at a time, so the granted thread would
// block on the real lock and never hand the token back. All current
// yield points sit outside locks; keep it that way.
//
// Beyond the strategy's decision budget every strategy degrades to
// round-robin so runs drain to completion; a hard step cap turns a
// genuine livelock into a loud failure instead of a hang.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <exception>
#include <functional>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace pathcopy::verify::sched {

inline constexpr unsigned kNoThread = ~0u;

/// Picks which logical thread runs next. `enabled` lists the runnable
/// thread ids in ascending order (never empty); `last` is the
/// previously granted id, kNoThread at the first decision. Must return
/// a member of `enabled`.
class ScheduleStrategy {
 public:
  virtual ~ScheduleStrategy() = default;
  virtual unsigned choose(std::span<const unsigned> enabled,
                          unsigned last) = 0;
  /// Called by run() before the first decision of each schedule.
  virtual void begin_run() {}
};

/// Baseline: cycle through the enabled threads.
class RoundRobinStrategy : public ScheduleStrategy {
 public:
  unsigned choose(std::span<const unsigned> enabled, unsigned last) override {
    for (const unsigned t : enabled) {
      if (last == kNoThread || t > last) return t;
    }
    return enabled.front();
  }
};

/// One executed schedule: the decision trace (granted tid per decision)
/// is the schedule's identity and its replay recipe.
struct RunResult {
  std::vector<unsigned> trace;
};

class VirtualScheduler {
 public:
  explicit VirtualScheduler(ScheduleStrategy& strategy)
      : strategy_(&strategy) {}
  VirtualScheduler(const VirtualScheduler&) = delete;
  VirtualScheduler& operator=(const VirtualScheduler&) = delete;

  /// Restricts decision points to yields carrying one of these tags
  /// (empty = every yield is a decision point). Call before run().
  void set_decision_tags(std::vector<std::string> tags) {
    tags_ = std::move(tags);
  }

  /// Registers a logical thread. Call before run(); returns its tid.
  unsigned spawn(std::function<void()> body) {
    threads_.push_back(LThread{std::move(body), {}, State::kNew});
    return static_cast<unsigned>(threads_.size() - 1);
  }

  /// Executes one schedule to completion and returns its trace. The
  /// logical threads' bodies run exactly once; an exception escaping a
  /// body is rethrown here after every thread finished.
  RunResult run() {
    PC_ASSERT(!threads_.empty(), "run() with no logical threads");
    strategy_->begin_run();
    trace_.clear();
    failure_ = nullptr;
    active_ = kController;
    for (unsigned i = 0; i < threads_.size(); ++i) {
      threads_[i].os = std::thread([this, i] { thread_main(i); });
    }
    control_loop();
    for (LThread& t : threads_) t.os.join();
    last_trace_ = trace_;  // kept for drivers reporting a failure
    RunResult result{std::move(trace_)};
    trace_.clear();
    threads_.clear();
    if (failure_ != nullptr) std::rethrow_exception(failure_);
    return result;
  }

  /// The decision trace of the most recent run() — how an exploration
  /// driver reports a failing schedule without re-running it.
  const std::vector<unsigned>& last_trace() const noexcept {
    return last_trace_;
  }

  /// The yield hook (PC_YIELD lands here via util::modelcheck_yield).
  /// No-op for OS threads that are not logical threads of an active
  /// scheduler and for tags outside the decision set.
  void yield(const char* tag) {
    if (!tags_.empty()) {
      bool match = false;
      for (const std::string& t : tags_) {
        if (std::strcmp(tag, t.c_str()) == 0) {
          match = true;
          break;
        }
      }
      if (!match) return;
    }
    const unsigned me = tl_tid;
    std::unique_lock<std::mutex> lock(mu_);
    threads_[me].state = State::kParked;
    threads_[me].tag = tag;
    active_ = kController;
    cv_.notify_all();
    cv_.wait(lock, [&] { return active_ == me; });
    threads_[me].state = State::kRunning;
    threads_[me].tag = nullptr;
  }

  /// The tag thread `tid` is currently parked at, nullptr when it is not
  /// parked at a yield (new, running, or done). Because logical threads
  /// are serialized, the RUNNING thread can use this to introspect its
  /// peers' positions — e.g. "is that writer parked between its root CAS
  /// and its version bump" — which is what lets an in-schedule observer
  /// compute exact ground truth about effects that are not yet
  /// externally published.
  const char* parked_tag(unsigned tid) {
    const std::lock_guard<std::mutex> lock(mu_);
    return threads_[tid].state == State::kParked ? threads_[tid].tag : nullptr;
  }

  /// The scheduler whose logical thread is executing on this OS thread
  /// (nullptr elsewhere) — the bridge modelcheck_yield() dispatches on.
  static VirtualScheduler*& current() noexcept {
    thread_local VirtualScheduler* sched = nullptr;
    return sched;
  }

 private:
  static constexpr unsigned kController = ~0u - 1;
  /// Hard cap on decisions per run: a schedule that long means the SUT
  /// livelocked (e.g. a gate spinning on a migration nobody advances).
  static constexpr std::uint64_t kStepCap = 1u << 20;

  enum class State : std::uint8_t { kNew, kRunning, kParked, kDone };

  struct LThread {
    std::function<void()> body;
    std::thread os;
    State state = State::kNew;
    const char* tag = nullptr;  // yield tag while parked
  };

  static thread_local unsigned tl_tid;

  void thread_main(unsigned tid) {
    current() = this;
    tl_tid = tid;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return active_ == tid; });
      threads_[tid].state = State::kRunning;
    }
    try {
      threads_[tid].body();
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mu_);
      if (failure_ == nullptr) failure_ = std::current_exception();
    }
    const std::lock_guard<std::mutex> lock(mu_);
    threads_[tid].state = State::kDone;
    active_ = kController;
    cv_.notify_all();
    current() = nullptr;
  }

  void control_loop() {
    std::vector<unsigned> enabled;
    unsigned last = kNoThread;
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      cv_.wait(lock, [&] { return active_ == kController; });
      enabled.clear();
      for (unsigned i = 0; i < threads_.size(); ++i) {
        if (threads_[i].state == State::kNew ||
            threads_[i].state == State::kParked) {
          enabled.push_back(i);
        }
      }
      if (enabled.empty()) return;  // every logical thread finished
      PC_ASSERT(trace_.size() < kStepCap,
                "model-check step cap hit: the schedule livelocked");
      const unsigned tid = strategy_->choose(enabled, last);
      trace_.push_back(tid);
      last = tid;
      active_ = tid;
      cv_.notify_all();
    }
  }

  ScheduleStrategy* strategy_;
  std::vector<std::string> tags_;
  std::vector<LThread> threads_;
  std::vector<unsigned> trace_;
  std::vector<unsigned> last_trace_;
  std::exception_ptr failure_;
  std::mutex mu_;
  std::condition_variable cv_;
  unsigned active_ = kController;
};

inline thread_local unsigned VirtualScheduler::tl_tid = kNoThread;

/// DFS over every decision trace of depth <= budget (deeper decisions
/// free-run round-robin so schedules drain). Usage:
///
///   ExhaustiveStrategy strat(budget);
///   do { <fresh SUT; VirtualScheduler(strat); run; check> }
///   while (strat.next_schedule());
///
/// Each next_schedule() bumps the deepest unexhausted choice; the SUT
/// must be deterministic given the trace, which the strategy asserts by
/// checking the branching factor it recorded for the replayed prefix.
class ExhaustiveStrategy : public ScheduleStrategy {
 public:
  explicit ExhaustiveStrategy(unsigned budget) : budget_(budget) {}

  void begin_run() override { depth_ = 0; }

  unsigned choose(std::span<const unsigned> enabled, unsigned last) override {
    if (depth_ < path_.size()) {
      Node& nd = path_[depth_++];
      PC_ASSERT(nd.options == enabled.size(),
                "exhaustive replay diverged: the SUT is not deterministic "
                "under the decision trace");
      return enabled[nd.choice];
    }
    if (depth_ < budget_) {
      path_.push_back(Node{0, static_cast<unsigned>(enabled.size())});
      ++depth_;
      return enabled.front();
    }
    ++depth_;
    return rr_.choose(enabled, last);  // budget spent: drain
  }

  /// Advances to the next unexplored schedule; false when the bounded
  /// space is exhausted.
  bool next_schedule() {
    ++explored_;
    while (!path_.empty()) {
      Node& nd = path_.back();
      if (nd.choice + 1 < nd.options) {
        ++nd.choice;
        return true;
      }
      path_.pop_back();
    }
    return false;
  }

  std::uint64_t explored() const noexcept { return explored_; }

 private:
  struct Node {
    unsigned choice;
    unsigned options;
  };

  unsigned budget_;
  unsigned depth_ = 0;
  std::vector<Node> path_;
  std::uint64_t explored_ = 0;
  RoundRobinStrategy rr_;
};

/// Seeded random walk: uniformly random choices for the first `budget`
/// decisions, round-robin drain after. begin_run() re-arms the
/// generator from the seed, so one strategy object replays the same
/// walk run after run — and a failing seed alone reproduces the
/// schedule.
class RandomStrategy : public ScheduleStrategy {
 public:
  RandomStrategy(std::uint64_t seed, unsigned budget)
      : seed_(seed), budget_(budget) {}

  void reseed(std::uint64_t seed) noexcept { seed_ = seed; }
  std::uint64_t seed() const noexcept { return seed_; }

  void begin_run() override {
    rng_ = util::Xoshiro256(seed_);
    depth_ = 0;
  }

  unsigned choose(std::span<const unsigned> enabled, unsigned last) override {
    if (depth_++ < budget_) {
      return enabled[rng_.below(enabled.size())];
    }
    return rr_.choose(enabled, last);
  }

 private:
  std::uint64_t seed_;
  unsigned budget_;
  unsigned depth_ = 0;
  util::Xoshiro256 rng_{0};
  RoundRobinStrategy rr_;
};

/// Replays a literal decision trace (a failing run's RunResult::trace,
/// or a hand-authored schedule), round-robin once it is consumed. The
/// named tid must be runnable at its decision — anything else means the
/// trace does not belong to this scenario.
class ReplayStrategy : public ScheduleStrategy {
 public:
  explicit ReplayStrategy(std::vector<unsigned> trace)
      : trace_(std::move(trace)) {}

  void begin_run() override { pos_ = 0; }

  unsigned choose(std::span<const unsigned> enabled, unsigned last) override {
    if (pos_ < trace_.size()) {
      const unsigned want = trace_[pos_++];
      for (const unsigned t : enabled) {
        if (t == want) return t;
      }
      PC_ASSERT(false, "replay trace diverged: scheduled tid not runnable");
    }
    return rr_.choose(enabled, last);
  }

 private:
  std::vector<unsigned> trace_;
  std::size_t pos_ = 0;
  RoundRobinStrategy rr_;
};

}  // namespace pathcopy::verify::sched
