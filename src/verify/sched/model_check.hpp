// Exploration drivers over the VirtualScheduler: run one scenario body
// under many schedules and report the first failing one in replayable
// form (its decision trace, plus the seed for random walks).
//
// The scenario body contract is the same for every driver:
//
//   std::optional<std::string> body(VirtualScheduler& vs);
//
// Called once per schedule, the body constructs a FRESH system under
// test, spawns its logical threads (vs.spawn), calls vs.run(), checks
// whatever invariant the scenario asserts, and returns std::nullopt on
// success or a failure description. Determinism is the body's
// obligation: given the same decision trace it must behave identically
// (no wall-clock branching, no unseeded randomness) — the exhaustive
// strategy asserts this by re-checking the branching factor along
// replayed prefixes.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "util/rng.hpp"
#include "verify/sched/virtual_scheduler.hpp"

namespace pathcopy::verify::sched {

struct ExploreResult {
  bool ok = true;
  std::uint64_t schedules = 0;       // schedules executed
  std::vector<unsigned> failing_trace;  // decision trace of the failure
  std::uint64_t failing_seed = 0;    // random walks only
  std::string reason;                // body's failure description

  explicit operator bool() const noexcept { return ok; }
};

/// Runs every schedule whose first `budget` decisions the strategy
/// controls (deeper decisions drain round-robin). Complete for the
/// window the tags select: two interleavings that differ anywhere in
/// their first `budget` decisions are both visited.
template <class Body>
ExploreResult explore_exhaustive(unsigned budget, Body&& body,
                                 std::vector<std::string> tags = {}) {
  ExploreResult res;
  ExhaustiveStrategy strat(budget);
  do {
    VirtualScheduler vs(strat);
    vs.set_decision_tags(tags);
    std::optional<std::string> fail = body(vs);
    ++res.schedules;
    if (fail.has_value()) {
      res.ok = false;
      res.reason = std::move(*fail);
      res.failing_trace = vs.last_trace();
      return res;
    }
  } while (strat.next_schedule());
  return res;
}

/// `walks` seeded random walks derived from `seed0` (walk w uses
/// mix64(seed0 ^ w), so any failing walk is reproducible from its seed
/// alone via replay_seed). Returns on the first failure with the seed
/// and the executed trace.
template <class Body>
ExploreResult explore_random(std::uint64_t seed0, std::uint64_t walks,
                             unsigned budget, Body&& body,
                             std::vector<std::string> tags = {}) {
  ExploreResult res;
  RandomStrategy strat(0, budget);
  for (std::uint64_t w = 0; w < walks; ++w) {
    const std::uint64_t seed = util::mix64(seed0 ^ w);
    strat.reseed(seed);
    VirtualScheduler vs(strat);
    vs.set_decision_tags(tags);
    std::optional<std::string> fail = body(vs);
    ++res.schedules;
    if (fail.has_value()) {
      res.ok = false;
      res.failing_seed = seed;
      res.reason = std::move(*fail);
      res.failing_trace = vs.last_trace();
      return res;
    }
  }
  return res;
}

/// Replays one seeded walk (the reproduce-from-a-CI-log entry point).
template <class Body>
std::optional<std::string> replay_seed(std::uint64_t seed, unsigned budget,
                                       Body&& body,
                                       std::vector<std::string> tags = {}) {
  RandomStrategy strat(seed, budget);
  VirtualScheduler vs(strat);
  vs.set_decision_tags(tags);
  return body(vs);
}

/// Replays one literal decision trace (regression corpora and
/// hand-authored schedules).
template <class Body>
std::optional<std::string> replay_trace(std::vector<unsigned> trace,
                                        Body&& body,
                                        std::vector<std::string> tags = {}) {
  ReplayStrategy strat(std::move(trace));
  VirtualScheduler vs(strat);
  vs.set_decision_tags(tags);
  return body(vs);
}

}  // namespace pathcopy::verify::sched
