// The PC_YIELD -> VirtualScheduler bridge. Only a PATHCOPY_MODELCHECK
// build emits calls to modelcheck_yield, but the TU is always compiled
// into the library (the guard below keeps it empty otherwise), so the
// CMake source list does not change per flavor.
#if defined(PATHCOPY_MODELCHECK)

#include "util/modelcheck.hpp"
#include "verify/sched/virtual_scheduler.hpp"

namespace pathcopy::util {

void modelcheck_yield(const char* tag) noexcept {
  verify::sched::VirtualScheduler* sched =
      verify::sched::VirtualScheduler::current();
  if (sched != nullptr) sched->yield(tag);
}

}  // namespace pathcopy::util

#endif  // PATHCOPY_MODELCHECK
