// ModelHistory: history recording + sound checking for model-checked
// schedules.
//
// A HistoryRecorder wrapped for the VirtualScheduler world, where a
// schedule can end (budget exhausted) or be probed (an observer logical
// thread) while other logical threads are paused INSIDE an operation.
// Those operations have invoked and not responded, yet they may already
// have linearized — e.g. an Atom update parked between its root CAS and
// its version bump has absolutely taken effect. harvest()-then-check
// would silently drop them and could certify a broken history, so
// check() goes through harvest_with_pending() and the pending-aware
// checker, which tries every pending invoke both linearized (with an
// unconstrained response) and not.
//
// Safe to call from an observer logical thread mid-schedule: logical
// threads run one at a time, and an operation's recorder appends happen
// at its own yield boundaries, so the logs are never mid-append when
// another logical thread runs.
#pragma once

#include <cstdint>

#include "verify/history.hpp"
#include "verify/linearizability.hpp"

namespace pathcopy::verify::sched {

class ModelHistory {
 public:
  explicit ModelHistory(unsigned threads) : rec_(threads) {}

  HistoryRecorder& recorder() noexcept { return rec_; }

  /// Records one operation by running it (stamps around fn).
  template <class Fn>
  bool run(unsigned tid, OpType op, std::int64_t key, Fn&& fn) {
    return rec_.run(tid, op, key, static_cast<Fn&&>(fn));
  }

  /// Pending-aware linearizability verdict over everything recorded so
  /// far. Usable mid-schedule (see header comment) and after run().
  Verdict check() const {
    const HistoryRecorder::PartialHistory h = rec_.harvest_with_pending();
    return check_set_linearizability(h.completed, h.pending);
  }

 private:
  HistoryRecorder rec_;
};

}  // namespace pathcopy::verify::sched
