// Linearizability checker for set histories (Wing & Gong search with
// per-key decomposition and subset memoization).
//
// The set ADT is "local" in the Herlihy-Wing sense when every operation
// touches exactly one key: the projection of a history onto each key is a
// complete history of an independent single-key object (a presence bit),
// and the full history is linearizable iff every projection is. That
// turns one exponential search over n events into many searches over the
// handful of events that touched each key.
//
// Each single-key search is the classic Wing & Gong DFS: repeatedly pick
// a "minimal" pending operation (one invoked before every unlinearized
// response — nothing is forced to precede it), test it against the
// sequential spec, and recurse. The search memoizes failed (subset,
// presence) states; k is per-key history length, capped at 64 so the
// subset fits a machine word.
//
// Pending operations: an event with response_ts == 0 was invoked but
// never responded (a parked op, or a model-checker schedule that paused
// the thread mid-operation). Such an op MAY have linearized — the
// search tries both including and excluding it, with its response
// unconstrained. Note presence is then no longer a function of the
// subset alone (two pending ops of opposite kinds reach different
// states in different orders), which is why the memo keys on presence
// too.
//
// Oversize projections: a key touched by more than kMaxEventsPerKey
// events no longer fails (or asserts) outright. The checker splits the
// projection at quiescent points — instants where every earlier op has
// responded before every later op was invoked, so the presence bit is
// forced by the earlier segment's net effect — and checks each segment
// independently. A projection that cannot be split into small-enough
// segments yields verdict.checked == false ("unchecked", not a
// violation), so long model-checking runs degrade to partial coverage
// instead of aborting the suite.
//
// Verdicts carry the offending key and a human-readable reason so a
// failing stress test prints something actionable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "verify/history.hpp"

namespace pathcopy::verify {

struct Verdict {
  bool ok = true;
  bool checked = true;           // false: some projection was too long to
                                 // verify (ok stays true; reason says why)
  std::int64_t bad_key = 0;      // meaningful when !ok or !checked
  std::string reason;            // empty when ok && checked

  explicit operator bool() const noexcept { return ok; }
};

/// Per-key event budget: a single key's projection (or segment after
/// quiescent splitting) must fit the subset bitmask.
inline constexpr std::size_t kMaxEventsPerKey = 64;

/// Checks a set history (insert/erase/contains with boolean results)
/// for linearizability against the sequential set spec, assuming every
/// key starts absent. Events with response_ts == 0 are treated as
/// pending (see header comment).
Verdict check_set_linearizability(const std::vector<Event>& history);

/// Same, with never-responded invokes supplied separately (the shape
/// HistoryRecorder::harvest_with_pending produces).
Verdict check_set_linearizability(const std::vector<Event>& history,
                                  const std::vector<Event>& pending);

/// Single-key core, exposed for direct testing: all events must concern
/// one key; events with response_ts == 0 are pending.
/// `initially_present` seeds the spec state.
bool check_single_key_history(std::vector<Event> events,
                              bool initially_present = false);

}  // namespace pathcopy::verify
