// Linearizability checker for set histories (Wing & Gong search with
// per-key decomposition and subset memoization).
//
// The set ADT is "local" in the Herlihy-Wing sense when every operation
// touches exactly one key: the projection of a history onto each key is a
// complete history of an independent single-key object (a presence bit),
// and the full history is linearizable iff every projection is. That
// turns one exponential search over n events into many searches over the
// handful of events that touched each key.
//
// Each single-key search is the classic Wing & Gong DFS: repeatedly pick
// a "minimal" pending operation (one invoked before every unlinearized
// response — nothing is forced to precede it), test it against the
// sequential spec, and recurse. Memoizing on the subset of linearized
// operations (the presence bit is a function of the subset, because the
// signed count of successful inserts minus successful erases is order
// independent) makes the search O(2^k) states worst case instead of O(k!)
// — and k here is per-key history length, capped at 64 so the subset fits
// a machine word.
//
// Verdicts carry the offending key and a human-readable reason so a
// failing stress test prints something actionable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "verify/history.hpp"

namespace pathcopy::verify {

struct Verdict {
  bool ok = true;
  std::int64_t bad_key = 0;      // meaningful when !ok
  std::string reason;            // empty when ok

  explicit operator bool() const noexcept { return ok; }
};

/// Per-key event budget: a single key's projection must fit the subset
/// bitmask. Histories produced by the stress tests stay far below this.
inline constexpr std::size_t kMaxEventsPerKey = 64;

/// Checks a complete set history (insert/erase/contains with boolean
/// results) for linearizability against the sequential set spec, assuming
/// every key starts absent.
Verdict check_set_linearizability(const std::vector<Event>& history);

/// Single-key core, exposed for direct testing: all events must concern
/// one key. `initially_present` seeds the spec state.
bool check_single_key_history(std::vector<Event> events,
                              bool initially_present = false);

}  // namespace pathcopy::verify
