#include "verify/linearizability.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <unordered_set>

#include "util/assert.hpp"

namespace pathcopy::verify {
namespace {

/// Sequential set spec on one key. Returns whether (op, result) is legal
/// from `present`, and updates `present` to the post state.
bool spec_step(OpType op, bool result, bool& present) {
  switch (op) {
    case OpType::kInsert:
      if (result == present) return false;  // true iff was absent
      present = true;
      return true;
    case OpType::kErase:
      if (result != present) return false;  // true iff was present
      present = false;
      return true;
    case OpType::kContains:
      return result == present;
  }
  return false;
}

/// Presence after applying exactly the ops in `mask` (order independent:
/// valid sequences interleave successful inserts and erases strictly).
/// Debug-only cross-check of the memoization soundness argument below.
[[maybe_unused]] bool presence_after(const std::vector<Event>& ev,
                                     std::uint64_t mask, bool initial) {
  int net = initial ? 1 : 0;
  for (std::size_t i = 0; i < ev.size(); ++i) {
    if (!(mask >> i & 1)) continue;
    if (ev[i].op == OpType::kInsert && ev[i].result) ++net;
    if (ev[i].op == OpType::kErase && ev[i].result) --net;
  }
  return net == 1;
}

bool dfs(const std::vector<Event>& ev, std::uint64_t mask, bool present,
         bool initial, std::unordered_set<std::uint64_t>& dead) {
  PC_DASSERT(present == presence_after(ev, mask, initial),
             "presence must be a function of the linearized subset");
  const std::uint64_t full = ev.size() == 64
                                 ? ~std::uint64_t{0}
                                 : (std::uint64_t{1} << ev.size()) - 1;
  if (mask == full) return true;
  if (dead.contains(mask)) return false;
  // An operation may linearize next only if nothing unlinearized finished
  // before it started.
  std::uint64_t min_resp = ~std::uint64_t{0};
  for (std::size_t i = 0; i < ev.size(); ++i) {
    if (!(mask >> i & 1)) min_resp = std::min(min_resp, ev[i].response_ts);
  }
  for (std::size_t i = 0; i < ev.size(); ++i) {
    if (mask >> i & 1) continue;
    if (ev[i].invoke_ts > min_resp) continue;  // someone must go first
    bool next = present;
    if (!spec_step(ev[i].op, ev[i].result, next)) continue;
    if (dfs(ev, mask | (std::uint64_t{1} << i), next, initial, dead)) {
      return true;
    }
  }
  dead.insert(mask);
  return false;
}

}  // namespace

bool check_single_key_history(std::vector<Event> events,
                              bool initially_present) {
  PC_ASSERT(events.size() <= kMaxEventsPerKey,
            "single-key history exceeds the checker's subset bitmask");
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) {
              return a.invoke_ts < b.invoke_ts;
            });
  std::unordered_set<std::uint64_t> dead;
  return dfs(events, 0, initially_present, initially_present, dead);
}

Verdict check_set_linearizability(const std::vector<Event>& history) {
  std::map<std::int64_t, std::vector<Event>> by_key;
  for (const Event& e : history) by_key[e.key].push_back(e);
  for (auto& [key, events] : by_key) {
    if (events.size() > kMaxEventsPerKey) {
      Verdict v;
      v.ok = false;
      v.bad_key = key;
      v.reason = "projection too large for the checker (" +
                 std::to_string(events.size()) + " events, cap " +
                 std::to_string(kMaxEventsPerKey) + ")";
      return v;
    }
    if (!check_single_key_history(events)) {
      Verdict v;
      v.ok = false;
      v.bad_key = key;
      v.reason = "no legal linearization of " +
                 std::to_string(events.size()) + " events on key " +
                 std::to_string(key);
      return v;
    }
  }
  return Verdict{};
}

}  // namespace pathcopy::verify

// A note on the memo soundness: dfs() memoizes failed subsets by mask
// alone. That is sound because (a) the spec state reached by any valid
// ordering of a fixed subset is unique (presence is the signed count of
// successful inserts/erases — presence_after asserts this in debug
// builds), and (b) the set of operations allowed to linearize next
// depends only on which operations remain, not on the order already
// chosen. Hence "mask leads nowhere" is a property of the mask.
