#include "verify/linearizability.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <unordered_set>

#include "util/assert.hpp"

namespace pathcopy::verify {
namespace {

constexpr std::uint64_t kNever = ~std::uint64_t{0};  // pending response

/// Sequential set spec on one key. Returns whether (op, result) is legal
/// from `present`, and updates `present` to the post state.
bool spec_step(OpType op, bool result, bool& present) {
  switch (op) {
    case OpType::kInsert:
      if (result == present) return false;  // true iff was absent
      present = true;
      return true;
    case OpType::kErase:
      if (result != present) return false;  // true iff was present
      present = false;
      return true;
    case OpType::kContains:
      return result == present;
  }
  return false;
}

/// Spec transition for a pending op, whose result nothing constrains:
/// insert forces the key present, erase forces it absent, contains
/// leaves the state alone. Always legal.
bool pending_step(OpType op, bool present) {
  switch (op) {
    case OpType::kInsert: return true;
    case OpType::kErase: return false;
    case OpType::kContains: return present;
  }
  return present;
}

struct SearchState {
  const std::vector<Event>* ev;
  std::uint64_t completed_mask;        // bits of events with a response
  bool initial;
  // Failed (mask, presence) states. Presence is part of the key: once
  // pending ops join the linearized subset, the reached presence is no
  // longer a function of the subset alone (two pending ops of opposite
  // kinds commute to different states).
  std::unordered_set<std::uint64_t> dead[2];
};

/// Presence after a completed-only subset (order independent: valid
/// sequences interleave successful inserts and erases strictly).
/// Debug-only cross-check of the memo soundness for pending-free masks.
[[maybe_unused]] bool presence_after(const std::vector<Event>& ev,
                                     std::uint64_t mask, bool initial) {
  int net = initial ? 1 : 0;
  for (std::size_t i = 0; i < ev.size(); ++i) {
    if (!(mask >> i & 1)) continue;
    if (ev[i].op == OpType::kInsert && ev[i].result) ++net;
    if (ev[i].op == OpType::kErase && ev[i].result) --net;
  }
  return net == 1;
}

bool dfs(SearchState& st, std::uint64_t mask, bool present) {
  const std::vector<Event>& ev = *st.ev;
  PC_DASSERT((mask & ~st.completed_mask) != 0 ||
                 present == presence_after(ev, mask, st.initial),
             "presence must be a function of a pending-free subset");
  // Done once every completed op is linearized; unlinearized pending
  // invokes may simply not have taken effect yet.
  if ((mask & st.completed_mask) == st.completed_mask) return true;
  if (st.dead[present].contains(mask)) return false;
  // An operation may linearize next only if nothing unlinearized
  // finished before it started (pending ops never finish, so they never
  // force precedence).
  std::uint64_t min_resp = kNever;
  for (std::size_t i = 0; i < ev.size(); ++i) {
    if (!(mask >> i & 1)) {
      const std::uint64_t r =
          ev[i].response_ts == 0 ? kNever : ev[i].response_ts;
      min_resp = std::min(min_resp, r);
    }
  }
  for (std::size_t i = 0; i < ev.size(); ++i) {
    if (mask >> i & 1) continue;
    if (ev[i].invoke_ts > min_resp) continue;  // someone must go first
    bool next = present;
    if (ev[i].response_ts == 0) {
      next = pending_step(ev[i].op, present);
    } else if (!spec_step(ev[i].op, ev[i].result, next)) {
      continue;
    }
    if (dfs(st, mask | (std::uint64_t{1} << i), next)) return true;
  }
  st.dead[present].insert(mask);
  return false;
}

/// Direct Wing & Gong search over <= 64 events (pending allowed).
bool check_events(std::vector<Event>& events, bool initially_present) {
  PC_ASSERT(events.size() <= kMaxEventsPerKey,
            "single-key history exceeds the checker's subset bitmask");
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) {
              return a.invoke_ts < b.invoke_ts;
            });
  SearchState st;
  st.ev = &events;
  st.initial = initially_present;
  st.completed_mask = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].response_ts != 0) {
      st.completed_mask |= std::uint64_t{1} << i;
    }
  }
  return dfs(st, 0, initially_present);
}

enum class KeyOutcome { kLinearizable, kViolation, kUnchecked };

/// Checks one key's full projection, splitting oversize projections at
/// quiescent points. Events must be invoke-sorted on entry.
///
/// A quiescent point before index i is an instant where every earlier
/// op responded before every later op was invoked (pending ops have no
/// response, so nothing after a pending invoke qualifies). The earlier
/// segment is then a complete history that fully precedes the rest in
/// real time — any linearization orders it first — and if it is
/// linearizable its net effect forces the presence bit the next segment
/// starts from (successful inserts minus erases, order independent).
KeyOutcome check_key_projection(std::vector<Event>& events,
                                std::string& why) {
  if (events.size() <= kMaxEventsPerKey) {
    if (check_events(events, false)) return KeyOutcome::kLinearizable;
    why = "no legal linearization of " + std::to_string(events.size()) +
          " events";
    return KeyOutcome::kViolation;
  }
  const std::size_t n = events.size();
  // quiescent[i]: every event before i responded before invoke of i.
  std::vector<bool> quiescent(n + 1, false);
  quiescent[n] = true;  // the end is always a legal cut
  std::uint64_t max_resp = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0) quiescent[i] = max_resp < events[i].invoke_ts;
    const std::uint64_t r =
        events[i].response_ts == 0 ? kNever : events[i].response_ts;
    max_resp = std::max(max_resp, r);
  }
  bool present = false;
  std::size_t cur = 0;
  std::vector<Event> segment;
  while (cur < n) {
    std::size_t cut = 0;
    const std::size_t limit = std::min(n, cur + kMaxEventsPerKey);
    for (std::size_t b = limit; b > cur; --b) {
      if (quiescent[b]) {
        cut = b;
        break;
      }
    }
    if (cut == 0) {
      why = "projection of " + std::to_string(n) +
            " events has a concurrent run longer than " +
            std::to_string(kMaxEventsPerKey) +
            " with no quiescent split point";
      return KeyOutcome::kUnchecked;
    }
    segment.assign(events.begin() + static_cast<std::ptrdiff_t>(cur),
                   events.begin() + static_cast<std::ptrdiff_t>(cut));
    if (!check_events(segment, present)) {
      why = "no legal linearization of segment [" + std::to_string(cur) +
            ", " + std::to_string(cut) + ") of " + std::to_string(n) +
            " events";
      return KeyOutcome::kViolation;
    }
    // The segment is complete (a quiescent cut admits no pending op
    // before it), so its net effect on the presence bit is forced.
    int net = present ? 1 : 0;
    for (std::size_t i = cur; i < cut; ++i) {
      if (events[i].op == OpType::kInsert && events[i].result) ++net;
      if (events[i].op == OpType::kErase && events[i].result) --net;
    }
    PC_DASSERT(net == 0 || net == 1, "segment net effect out of range");
    present = net == 1;
    cur = cut;
  }
  return KeyOutcome::kLinearizable;
}

}  // namespace

bool check_single_key_history(std::vector<Event> events,
                              bool initially_present) {
  return check_events(events, initially_present);
}

Verdict check_set_linearizability(const std::vector<Event>& history,
                                  const std::vector<Event>& pending) {
  std::map<std::int64_t, std::vector<Event>> by_key;
  for (const Event& e : history) by_key[e.key].push_back(e);
  for (const Event& e : pending) {
    PC_DASSERT(e.response_ts == 0, "pending event with a response stamp");
    by_key[e.key].push_back(e);
  }
  Verdict v;
  for (auto& [key, events] : by_key) {
    std::sort(events.begin(), events.end(),
              [](const Event& a, const Event& b) {
                return a.invoke_ts < b.invoke_ts;
              });
    std::string why;
    switch (check_key_projection(events, why)) {
      case KeyOutcome::kLinearizable:
        break;
      case KeyOutcome::kViolation:
        v.ok = false;
        v.bad_key = key;
        v.reason = why + " on key " + std::to_string(key);
        return v;
      case KeyOutcome::kUnchecked:
        // Not a violation: record the first such key, keep checking the
        // rest (another key may still hold a real violation).
        if (v.checked) {
          v.checked = false;
          v.bad_key = key;
          v.reason = "unchecked: " + why + " on key " + std::to_string(key);
        }
        break;
    }
  }
  return v;
}

Verdict check_set_linearizability(const std::vector<Event>& history) {
  return check_set_linearizability(history, {});
}

}  // namespace pathcopy::verify

// A note on the memo soundness: dfs() memoizes failed (mask, presence)
// states. For pending-free masks presence is a function of the mask (the
// signed count of successful inserts/erases — presence_after asserts
// this in debug builds) and the pair degenerates to the classic
// mask-only memo. With pending ops linearized the presence genuinely
// varies with order, but the pair still captures the full search state:
// the set of operations allowed to linearize next depends only on which
// operations remain, and the spec's future depends only on the current
// presence. Hence "(mask, presence) leads nowhere" is a property of the
// pair.
