// Concurrent-history recording for linearizability checking.
//
// Worker threads log (invoke, respond) event pairs for every set
// operation they perform against the implementation under test. Stamps
// come from one global atomic counter, so stamp order is a total order
// consistent with real time: if operation A responded before operation B
// was invoked, A's response stamp is smaller than B's invoke stamp, and
// the checker must order A before B.
//
// Recording is wait-free and contention-light: each thread appends to its
// own pre-registered log (two fetch_adds per operation for the stamps are
// the only shared writes). harvest() merges the logs after workers join.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "util/align.hpp"
#include "util/assert.hpp"

namespace pathcopy::verify {

enum class OpType : std::uint8_t { kInsert, kErase, kContains };

inline const char* op_name(OpType op) {
  switch (op) {
    case OpType::kInsert: return "insert";
    case OpType::kErase: return "erase";
    case OpType::kContains: return "contains";
  }
  return "?";
}

struct Event {
  std::uint64_t invoke_ts = 0;
  std::uint64_t response_ts = 0;
  std::uint32_t thread = 0;
  OpType op = OpType::kContains;
  std::int64_t key = 0;
  bool result = false;
};

class HistoryRecorder {
 public:
  explicit HistoryRecorder(unsigned threads) : logs_(threads) {}

  /// Marks the start of an operation; returns the index of the pending
  /// event in the calling thread's log. Only thread `tid` may use it.
  std::size_t invoke(unsigned tid, OpType op, std::int64_t key) {
    PC_DASSERT(tid < logs_.size(), "unregistered recorder thread");
    Event e;
    e.invoke_ts = clock_.fetch_add(1, std::memory_order_relaxed);
    e.thread = tid;
    e.op = op;
    e.key = key;
    logs_[tid].events.push_back(e);
    return logs_[tid].events.size() - 1;
  }

  /// Completes the pending event created by invoke().
  void respond(unsigned tid, std::size_t token, bool result) {
    Event& e = logs_[tid].events[token];
    e.result = result;
    e.response_ts = clock_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Records an operation by running it: stamps around fn().
  template <class Fn>
  bool run(unsigned tid, OpType op, std::int64_t key, Fn&& fn) {
    const std::size_t tok = invoke(tid, op, key);
    const bool r = fn();
    respond(tid, tok, r);
    return r;
  }

  /// Merges all thread logs. Call after every worker has joined; events
  /// with response_ts == 0 (never responded) are dropped, matching the
  /// usual complete-history restriction. Sound only when every invoked
  /// operation actually responded — harvesting mid-flight (a model
  /// checker pausing threads inside their operations, a parked op that
  /// never released) must use harvest_with_pending() instead: a pending
  /// invoke may already have linearized, and silently dropping it can
  /// certify a history whose completed part alone looks legal.
  std::vector<Event> harvest() const {
    std::vector<Event> all;
    for (const auto& log : logs_) {
      for (const Event& e : log.events) {
        if (e.response_ts != 0) all.push_back(e);
      }
    }
    return all;
  }

  /// A harvest that keeps never-responded invokes. The caller may read
  /// this while other recorder threads are BETWEEN their own log
  /// appends but not during one — the model checker's serialized
  /// logical threads satisfy that by construction; free-running stress
  /// tests must still join first.
  struct PartialHistory {
    std::vector<Event> completed;
    std::vector<Event> pending;  // invoked, response still outstanding
  };

  PartialHistory harvest_with_pending() const {
    PartialHistory h;
    for (const auto& log : logs_) {
      for (const Event& e : log.events) {
        (e.response_ts != 0 ? h.completed : h.pending).push_back(e);
      }
    }
    return h;
  }

  std::size_t total_events() const {
    std::size_t n = 0;
    for (const auto& log : logs_) n += log.events.size();
    return n;
  }

 private:
  struct alignas(util::kCacheLine) ThreadLog {
    std::vector<Event> events;
  };

  std::atomic<std::uint64_t> clock_{1};  // 0 is the "no response" sentinel
  std::vector<ThreadLog> logs_;
};

}  // namespace pathcopy::verify
