// Bump-pointer arena with a small recycle list.
//
// One Arena per thread. Allocation is a pointer bump; deallocation pushes
// the block onto a per-size-class free list so that the nodes built by a
// *failed* CAS attempt (which were never published) are reused by the very
// next attempt — the cheapest possible failure path. Memory is returned to
// the OS only when the arena is destroyed or reset, which models the
// paper's GC'd setting where node death costs the mutator nothing.
//
// Retired (published-then-superseded) nodes route to ArenaRetire, whose
// free is a no-op: versions stay valid until the arena dies, so this policy
// pairs naturally with reclaim::Leaky or with bounded runs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "alloc/stats.hpp"
#include "util/align.hpp"
#include "util/assert.hpp"

namespace pathcopy::alloc {

/// Stable no-op free target for arena-backed nodes. Destructors still run;
/// the bytes live until the owning arena is reset.
class ArenaRetire {
 public:
  void free_bytes(void*, std::size_t bytes, std::size_t) noexcept {
    stats_.on_free(bytes);
  }
  const AllocStats& stats() const noexcept { return stats_; }

 private:
  AllocStats stats_;
};

class Arena {
 public:
  using RetireBackend = ArenaRetire;

  static constexpr std::size_t kBlockBytes = 1 << 20;  // 1 MiB slabs
  static constexpr std::size_t kGranule = 16;
  static constexpr std::size_t kMaxRecycled = 1024;  // bytes; larger blocks are not recycled
  static constexpr std::size_t kClasses = kMaxRecycled / kGranule;

  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  void* allocate(std::size_t bytes, [[maybe_unused]] std::size_t align) {
    PC_DASSERT(align <= alignof(std::max_align_t), "arena supports natural alignment only");
    const std::size_t sz = util::round_up(bytes < kGranule ? kGranule : bytes, kGranule);
    stats_.on_alloc(sz);
    if (sz <= kMaxRecycled) {
      auto& head = recycle_[class_of(sz)];
      if (head != nullptr) {
        FreeNode* n = head;
        head = n->next;
        return n;
      }
    }
    if (static_cast<std::size_t>(end_ - bump_) < sz) {
      grow(sz);
    }
    char* p = bump_;
    bump_ += sz;
    return p;
  }

  void deallocate(void* p, std::size_t bytes, std::size_t) noexcept {
    const std::size_t sz = util::round_up(bytes < kGranule ? kGranule : bytes, kGranule);
    stats_.on_free(sz);
    if (sz <= kMaxRecycled) {
      auto* n = static_cast<FreeNode*>(p);
      auto& head = recycle_[class_of(sz)];
      n->next = head;
      head = n;
    }
    // Larger blocks are simply abandoned until reset(); they are rare
    // (no node type in this library exceeds kMaxRecycled).
  }

  RetireBackend* retire_backend() noexcept { return &retire_; }

  /// Drops every block. The caller must guarantee no node allocated from
  /// this arena is still reachable.
  void reset() noexcept {
    blocks_.clear();
    bump_ = end_ = nullptr;
    for (auto& head : recycle_) head = nullptr;
  }

  std::size_t block_count() const noexcept { return blocks_.size(); }
  const AllocStats& stats() const noexcept { return stats_; }

 private:
  struct FreeNode {
    FreeNode* next;
  };

  static std::size_t class_of(std::size_t rounded) noexcept {
    return rounded / kGranule - 1;
  }

  void grow(std::size_t need) {
    const std::size_t size = need > kBlockBytes ? need : kBlockBytes;
    blocks_.push_back(std::make_unique<char[]>(size));
    bump_ = blocks_.back().get();
    end_ = bump_ + size;
  }

  std::vector<std::unique_ptr<char[]>> blocks_;
  char* bump_ = nullptr;
  char* end_ = nullptr;
  FreeNode* recycle_[kClasses]{};
  ArenaRetire retire_;
  AllocStats stats_;
};

}  // namespace pathcopy::alloc
