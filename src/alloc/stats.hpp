// Allocation counters shared by all allocator policies.
//
// Counters are relaxed atomics: they are diagnostics (leak checks in tests,
// throughput attribution in benches), never synchronization.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace pathcopy::alloc {

struct AllocStats {
  std::atomic<std::uint64_t> allocs{0};
  std::atomic<std::uint64_t> frees{0};
  std::atomic<std::uint64_t> bytes_allocated{0};
  std::atomic<std::uint64_t> bytes_freed{0};
  /// Retired blocks absorbed straight into a magazine (ThreadCache's
  /// RetireSink path) instead of travelling through the shared backend.
  std::atomic<std::uint64_t> recycled{0};
  /// Trips to the shared backend (pop_batch/push_batch/free_batch calls);
  /// each trip is one mutex acquisition on PoolBackend.
  std::atomic<std::uint64_t> backend_trips{0};

  void on_alloc(std::size_t n) noexcept {
    allocs.fetch_add(1, std::memory_order_relaxed);
    bytes_allocated.fetch_add(n, std::memory_order_relaxed);
  }
  void on_free(std::size_t n) noexcept {
    frees.fetch_add(1, std::memory_order_relaxed);
    bytes_freed.fetch_add(n, std::memory_order_relaxed);
  }
  void on_free_n(std::uint64_t blocks, std::size_t total_bytes) noexcept {
    frees.fetch_add(blocks, std::memory_order_relaxed);
    bytes_freed.fetch_add(total_bytes, std::memory_order_relaxed);
  }
  void on_backend_trip() noexcept {
    backend_trips.fetch_add(1, std::memory_order_relaxed);
  }

  /// Blocks currently outstanding. Only meaningful once all threads have
  /// quiesced (relaxed counters give no cross-thread snapshot guarantee).
  std::uint64_t live_blocks() const noexcept {
    return allocs.load(std::memory_order_relaxed) -
           frees.load(std::memory_order_relaxed);
  }
  std::uint64_t live_bytes() const noexcept {
    return bytes_allocated.load(std::memory_order_relaxed) -
           bytes_freed.load(std::memory_order_relaxed);
  }
};

}  // namespace pathcopy::alloc
