// Per-thread magazine cache over the shared PoolBackend.
//
// Each worker thread owns one ThreadCache. Allocations pop from a local
// free list; the shared pool is touched only to refill or flush a whole
// magazine (kBatch blocks per lock acquisition), so steady-state allocation
// is lock-free and cache-local. This is the "fixed allocator" arm of
// experiment E6: the paper attributes its high-core-count collapse to the
// Java allocator, and this policy demonstrates that a thread-cached
// allocator removes that ceiling.
#pragma once

#include <cstddef>

#include "alloc/pool_alloc.hpp"
#include "alloc/stats.hpp"
#include "util/assert.hpp"

namespace pathcopy::alloc {

class ThreadCache {
 public:
  using RetireBackend = PoolBackend;

  static constexpr std::size_t kBatch = 64;   // blocks moved per backend trip
  static constexpr std::size_t kHighWater = 2 * kBatch;

  explicit ThreadCache(PoolBackend& backend) noexcept : backend_(&backend) {}
  ThreadCache(const ThreadCache&) = delete;
  ThreadCache& operator=(const ThreadCache&) = delete;
  ~ThreadCache() { flush(); }

  void* allocate(std::size_t bytes, std::size_t align) {
    if (bytes > PoolBackend::kMaxPooled || align > alignof(std::max_align_t)) {
      return backend_->allocate(bytes, align);
    }
    const std::size_t cls = PoolBackend::class_of(bytes);
    stats_.on_alloc(PoolBackend::class_bytes(cls));
    auto& mag = mags_[cls];
    if (mag.count == 0) {
      mag.count = backend_->pop_batch(cls, mag.items, kBatch);
      PC_DASSERT(mag.count > 0, "backend refill returned nothing");
    }
    return mag.items[--mag.count];
  }

  void deallocate(void* p, std::size_t bytes, std::size_t align) noexcept {
    if (bytes > PoolBackend::kMaxPooled || align > alignof(std::max_align_t)) {
      backend_->deallocate(p, bytes, align);
      return;
    }
    const std::size_t cls = PoolBackend::class_of(bytes);
    stats_.on_free(PoolBackend::class_bytes(cls));
    auto& mag = mags_[cls];
    if (mag.count == kHighWater) {
      // Return the older half so the hottest blocks stay local.
      backend_->push_batch(cls, mag.items, kBatch);
      mag.count -= kBatch;
      for (std::size_t i = 0; i < mag.count; ++i) {
        mag.items[i] = mag.items[i + kBatch];
      }
    }
    mag.items[mag.count++] = p;
  }

  /// Returns every cached block to the backend (run at thread exit).
  void flush() noexcept {
    for (std::size_t cls = 0; cls < PoolBackend::kClasses; ++cls) {
      auto& mag = mags_[cls];
      if (mag.count > 0) {
        backend_->push_batch(cls, mag.items, mag.count);
        mag.count = 0;
      }
    }
  }

  RetireBackend* retire_backend() noexcept { return backend_; }
  const AllocStats& stats() const noexcept { return stats_; }

 private:
  struct Magazine {
    void* items[kHighWater];
    std::size_t count = 0;
  };

  PoolBackend* backend_;
  Magazine mags_[PoolBackend::kClasses]{};
  AllocStats stats_;
};

}  // namespace pathcopy::alloc
