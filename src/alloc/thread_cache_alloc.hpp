// Per-thread magazine cache over the shared PoolBackend.
//
// Each worker thread owns one ThreadCache. Allocations pop from a local
// free list; the shared pool is touched only to refill or flush a whole
// magazine (kBatch blocks per lock acquisition), so steady-state allocation
// is lock-free and cache-local. This is the "fixed allocator" arm of
// experiment E6: the paper attributes its high-core-count collapse to the
// Java allocator, and this policy demonstrates that a thread-cached
// allocator removes that ceiling.
//
// retire_sink() closes the loop on the free side: a reclaimer running on
// this thread hands expired retire bundles to accept_retired(), which
// drops the raw blocks straight into the magazines — retired bytes become
// allocatable again without a single backend trip (only a past-high-water
// flush ever touches the shared pool, and that moves kBatch blocks per
// trip). The sink must be deregistered (ThreadHandle::release / context
// teardown) before this cache dies; cross-thread bundles keep flowing
// through the backend's free_batch instead.
#pragma once

#include <cstddef>

#include "alloc/pool_alloc.hpp"
#include "alloc/stats.hpp"
#include "reclaim/retired.hpp"
#include "util/assert.hpp"

namespace pathcopy::alloc {

class ThreadCache {
 public:
  using RetireBackend = PoolBackend;

  static constexpr std::size_t kBatch = 64;   // blocks moved per backend trip
  static constexpr std::size_t kHighWater = 2 * kBatch;

  explicit ThreadCache(PoolBackend& backend) noexcept : backend_(&backend) {}
  ThreadCache(const ThreadCache&) = delete;
  ThreadCache& operator=(const ThreadCache&) = delete;
  ~ThreadCache() { flush(); }

  void* allocate(std::size_t bytes, std::size_t align) {
    if (bytes > PoolBackend::kMaxPooled || align > alignof(std::max_align_t)) {
      return backend_->allocate(bytes, align);
    }
    const std::size_t cls = PoolBackend::class_of(bytes);
    stats_.on_alloc(PoolBackend::class_bytes(cls));
    auto& mag = mags_[cls];
    if (mag.count == 0) {
      mag.count = backend_->pop_batch(cls, mag.items, kBatch);
      stats_.on_backend_trip();
      PC_DASSERT(mag.count > 0, "backend refill returned nothing");
    }
    return mag.items[--mag.count];
  }

  void deallocate(void* p, std::size_t bytes, std::size_t align) noexcept {
    if (bytes > PoolBackend::kMaxPooled || align > alignof(std::max_align_t)) {
      backend_->deallocate(p, bytes, align);
      return;
    }
    const std::size_t cls = PoolBackend::class_of(bytes);
    stats_.on_free(PoolBackend::class_bytes(cls));
    put_block(cls, p);
  }

  /// RetireSink entry: absorbs a whole same-size group of retired blocks
  /// (destructors already run) into the magazines. Refuses groups that
  /// belong to a different backend or exceed the pooled classes — those
  /// fall through to the backend's own free path.
  bool accept_retired(void* backend, void* const* ptrs, std::size_t n,
                      std::size_t bytes, std::size_t align) noexcept {
    if (backend != static_cast<void*>(backend_) ||
        bytes > PoolBackend::kMaxPooled || align > alignof(std::max_align_t)) {
      return false;
    }
    const std::size_t cls = PoolBackend::class_of(bytes);
    stats_.on_free_n(n, PoolBackend::class_bytes(cls) * n);
    stats_.recycled.fetch_add(n, std::memory_order_relaxed);
    for (std::size_t i = 0; i < n; ++i) {
      put_block(cls, ptrs[i]);
    }
    return true;
  }

  /// Type-erased handle reclaimers use to route expired bundles here.
  reclaim::RetireSink retire_sink() noexcept {
    return reclaim::RetireSink{this, &sink_thunk};
  }

  /// Returns every cached block to the backend (run at thread exit).
  void flush() noexcept {
    for (std::size_t cls = 0; cls < PoolBackend::kClasses; ++cls) {
      auto& mag = mags_[cls];
      if (mag.count > 0) {
        backend_->push_batch(cls, mag.items, mag.count);
        stats_.on_backend_trip();
        mag.count = 0;
      }
    }
  }

  RetireBackend* retire_backend() noexcept { return backend_; }
  const AllocStats& stats() const noexcept { return stats_; }

 private:
  struct Magazine {
    void* items[kHighWater];
    std::size_t count = 0;
  };

  void put_block(std::size_t cls, void* p) noexcept {
    auto& mag = mags_[cls];
    if (mag.count == kHighWater) {
      // Return the older half so the hottest blocks stay local.
      backend_->push_batch(cls, mag.items, kBatch);
      stats_.on_backend_trip();
      mag.count -= kBatch;
      for (std::size_t i = 0; i < mag.count; ++i) {
        mag.items[i] = mag.items[i + kBatch];
      }
    }
    mag.items[mag.count++] = p;
  }

  static bool sink_thunk(void* obj, void* backend, void* const* ptrs,
                         std::size_t n, std::size_t bytes,
                         std::size_t align) noexcept {
    return static_cast<ThreadCache*>(obj)->accept_retired(backend, ptrs, n,
                                                          bytes, align);
  }

  PoolBackend* backend_;
  Magazine mags_[PoolBackend::kClasses]{};
  AllocStats stats_;
};

}  // namespace pathcopy::alloc
