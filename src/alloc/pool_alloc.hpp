// Globally shared, mutex-protected size-class pool.
//
// This is the *intentionally contended* allocator: every allocate and free
// takes one process-wide lock. It exists as the lower bound in the
// allocator ablation (experiment E6) — the paper conjectures that a shared
// allocator is what caps scaling at high process counts (Appendix B), and
// this policy lets us reproduce that collapse on demand. ThreadCache
// (thread_cache_alloc.hpp) layers per-thread magazines on top of the same
// backend to remove the contention.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "alloc/stats.hpp"
#include "util/align.hpp"

namespace pathcopy::alloc {

class PoolBackend {
 public:
  static constexpr std::size_t kGranule = 16;
  static constexpr std::size_t kMaxPooled = 512;  // larger blocks go to operator new
  static constexpr std::size_t kClasses = kMaxPooled / kGranule;
  static constexpr std::size_t kSlabBytes = 1 << 18;  // 256 KiB

  PoolBackend() = default;
  PoolBackend(const PoolBackend&) = delete;
  PoolBackend& operator=(const PoolBackend&) = delete;
  ~PoolBackend();

  void* allocate(std::size_t bytes, std::size_t align);
  void deallocate(void* p, std::size_t bytes, std::size_t align) noexcept;

  /// Thread-safe free path for reclaimers.
  void free_bytes(void* p, std::size_t bytes, std::size_t align) noexcept {
    deallocate(p, bytes, align);
  }

  /// Pops up to n blocks of the given size class into out; carves fresh
  /// slab space if the free list runs dry. Returns the number provided.
  std::size_t pop_batch(std::size_t size_class, void** out, std::size_t n);

  /// Returns n blocks of the given size class to the shared free list.
  void push_batch(std::size_t size_class, void* const* items, std::size_t n) noexcept;

  /// Batch twin of free_bytes: returns n same-size blocks in ONE locked
  /// trip (or n operator-delete calls for oversize blocks). This is the
  /// reclaimers' bundle-granular exit path.
  void free_batch(void* const* items, std::size_t n, std::size_t bytes,
                  std::size_t align) noexcept;

  static std::size_t class_of(std::size_t bytes) noexcept {
    const std::size_t sz = util::round_up(bytes < kGranule ? kGranule : bytes, kGranule);
    return sz / kGranule - 1;
  }
  static std::size_t class_bytes(std::size_t size_class) noexcept {
    return (size_class + 1) * kGranule;
  }

  const AllocStats& stats() const noexcept { return stats_; }
  std::uint64_t lock_acquisitions() const noexcept {
    return lock_acquisitions_.load(std::memory_order_relaxed);
  }

 private:
  struct FreeNode {
    FreeNode* next;
  };

  // Pre: mu_ held.
  void* carve_locked(std::size_t size_class);
  // Pre: mu_ held. Debug-only: asserts p was carved for size_class (a
  // carved block's class is permanent — free lists never mix classes), so
  // a retire path that reports a different size than it allocated trips
  // here instead of silently corrupting a free list.
  void check_class_locked(const void* p, std::size_t size_class) noexcept;

  std::mutex mu_;
  FreeNode* free_[kClasses]{};
  std::vector<std::unique_ptr<char[]>> slabs_;
  char* bump_ = nullptr;
  char* end_ = nullptr;
  AllocStats stats_;
  std::atomic<std::uint64_t> lock_acquisitions_{0};
#ifndef NDEBUG
  std::unordered_map<const void*, std::uint32_t> carved_class_;
#endif
};

/// Allocator view over the shared pool: every call locks the backend.
class PoolView {
 public:
  using RetireBackend = PoolBackend;

  explicit PoolView(PoolBackend& backend) noexcept : backend_(&backend) {}

  void* allocate(std::size_t bytes, std::size_t align) {
    return backend_->allocate(bytes, align);
  }
  void deallocate(void* p, std::size_t bytes, std::size_t align) noexcept {
    backend_->deallocate(p, bytes, align);
  }
  RetireBackend* retire_backend() noexcept { return backend_; }

 private:
  PoolBackend* backend_;
};

}  // namespace pathcopy::alloc
