// Default allocator policy: forwards to the global operator new/delete.
//
// This plays the role of the JVM allocator in the paper's setting: a single
// process-wide allocator whose internal synchronization is opaque to us.
// Appendix B of the paper blames the (Java) allocator for throughput
// collapse at high process counts; bench_ablation_alloc compares this
// policy against the pooled policies in this directory.
#pragma once

#include <cstddef>
#include <new>

#include "alloc/stats.hpp"

namespace pathcopy::alloc {

class MallocAlloc {
 public:
  /// Retired nodes are freed through a stable, thread-safe backend object.
  /// For malloc the view *is* the backend (operator delete is thread-safe).
  using RetireBackend = MallocAlloc;

  void* allocate(std::size_t bytes, std::size_t align) {
    stats_.on_alloc(bytes);
    if (align > __STDCPP_DEFAULT_NEW_ALIGNMENT__) {
      return ::operator new(bytes, std::align_val_t{align});
    }
    return ::operator new(bytes);
  }

  void deallocate(void* p, std::size_t bytes, std::size_t align) noexcept {
    stats_.on_free(bytes);
    if (align > __STDCPP_DEFAULT_NEW_ALIGNMENT__) {
      ::operator delete(p, bytes, std::align_val_t{align});
    } else {
      ::operator delete(p, bytes);
    }
  }

  /// Thread-safe free path used by reclaimers draining retired nodes.
  void free_bytes(void* p, std::size_t bytes, std::size_t align) noexcept {
    deallocate(p, bytes, align);
  }

  RetireBackend* retire_backend() noexcept { return this; }

  const AllocStats& stats() const noexcept { return stats_; }

 private:
  AllocStats stats_;
};

}  // namespace pathcopy::alloc
