#include "alloc/pool_alloc.hpp"

#include <new>

#include "util/assert.hpp"

namespace pathcopy::alloc {

PoolBackend::~PoolBackend() = default;

void* PoolBackend::allocate(std::size_t bytes, std::size_t align) {
  if (bytes > kMaxPooled || align > alignof(std::max_align_t)) {
    stats_.on_alloc(bytes);
    return ::operator new(bytes, std::align_val_t{align});
  }
  const std::size_t cls = class_of(bytes);
  stats_.on_alloc(class_bytes(cls));
  std::lock_guard lock(mu_);
  lock_acquisitions_.fetch_add(1, std::memory_order_relaxed);
  if (free_[cls] != nullptr) {
    FreeNode* n = free_[cls];
    free_[cls] = n->next;
    return n;
  }
  return carve_locked(cls);
}

void PoolBackend::deallocate(void* p, std::size_t bytes, std::size_t align) noexcept {
  if (bytes > kMaxPooled || align > alignof(std::max_align_t)) {
    stats_.on_free(bytes);
    ::operator delete(p, std::align_val_t{align});
    return;
  }
  const std::size_t cls = class_of(bytes);
  stats_.on_free(class_bytes(cls));
  std::lock_guard lock(mu_);
  lock_acquisitions_.fetch_add(1, std::memory_order_relaxed);
  auto* n = static_cast<FreeNode*>(p);
  n->next = free_[cls];
  free_[cls] = n;
}

std::size_t PoolBackend::pop_batch(std::size_t size_class, void** out, std::size_t n) {
  PC_DASSERT(size_class < kClasses, "size class out of range");
  std::lock_guard lock(mu_);
  lock_acquisitions_.fetch_add(1, std::memory_order_relaxed);
  std::size_t got = 0;
  while (got < n && free_[size_class] != nullptr) {
    FreeNode* node = free_[size_class];
    free_[size_class] = node->next;
    out[got++] = node;
  }
  while (got < n) {
    out[got++] = carve_locked(size_class);
  }
  return got;
}

void PoolBackend::push_batch(std::size_t size_class, void* const* items,
                             std::size_t n) noexcept {
  PC_DASSERT(size_class < kClasses, "size class out of range");
  std::lock_guard lock(mu_);
  lock_acquisitions_.fetch_add(1, std::memory_order_relaxed);
  for (std::size_t i = 0; i < n; ++i) {
    auto* node = static_cast<FreeNode*>(items[i]);
    node->next = free_[size_class];
    free_[size_class] = node;
  }
}

void* PoolBackend::carve_locked(std::size_t size_class) {
  const std::size_t sz = class_bytes(size_class);
  if (static_cast<std::size_t>(end_ - bump_) < sz) {
    slabs_.push_back(std::make_unique<char[]>(kSlabBytes));
    bump_ = slabs_.back().get();
    end_ = bump_ + kSlabBytes;
  }
  char* p = bump_;
  bump_ += sz;
  return p;
}

}  // namespace pathcopy::alloc
