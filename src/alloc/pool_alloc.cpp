#include "alloc/pool_alloc.hpp"

#include <new>

#include "util/assert.hpp"

namespace pathcopy::alloc {

PoolBackend::~PoolBackend() = default;

void* PoolBackend::allocate(std::size_t bytes, std::size_t align) {
  if (bytes > kMaxPooled || align > alignof(std::max_align_t)) {
    stats_.on_alloc(bytes);
    return ::operator new(bytes, std::align_val_t{align});
  }
  const std::size_t cls = class_of(bytes);
  stats_.on_alloc(class_bytes(cls));
  std::lock_guard lock(mu_);
  lock_acquisitions_.fetch_add(1, std::memory_order_relaxed);
  if (free_[cls] != nullptr) {
    FreeNode* n = free_[cls];
    free_[cls] = n->next;
    return n;
  }
  return carve_locked(cls);
}

void PoolBackend::deallocate(void* p, std::size_t bytes, std::size_t align) noexcept {
  if (bytes > kMaxPooled || align > alignof(std::max_align_t)) {
    stats_.on_free(bytes);
    ::operator delete(p, std::align_val_t{align});
    return;
  }
  const std::size_t cls = class_of(bytes);
  stats_.on_free(class_bytes(cls));
  std::lock_guard lock(mu_);
  lock_acquisitions_.fetch_add(1, std::memory_order_relaxed);
  check_class_locked(p, cls);
  auto* n = static_cast<FreeNode*>(p);
  n->next = free_[cls];
  free_[cls] = n;
}

void PoolBackend::free_batch(void* const* items, std::size_t n, std::size_t bytes,
                             std::size_t align) noexcept {
  if (n == 0) return;
  if (bytes > kMaxPooled || align > alignof(std::max_align_t)) {
    for (std::size_t i = 0; i < n; ++i) {
      stats_.on_free(bytes);
      ::operator delete(items[i], std::align_val_t{align});
    }
    return;
  }
  const std::size_t cls = class_of(bytes);
  stats_.on_free_n(n, class_bytes(cls) * n);
  push_batch(cls, items, n);
}

std::size_t PoolBackend::pop_batch(std::size_t size_class, void** out, std::size_t n) {
  PC_DASSERT(size_class < kClasses, "size class out of range");
  std::lock_guard lock(mu_);
  lock_acquisitions_.fetch_add(1, std::memory_order_relaxed);
  std::size_t got = 0;
  while (got < n && free_[size_class] != nullptr) {
    FreeNode* node = free_[size_class];
    free_[size_class] = node->next;
    out[got++] = node;
  }
  while (got < n) {
    out[got++] = carve_locked(size_class);
  }
  return got;
}

void PoolBackend::push_batch(std::size_t size_class, void* const* items,
                             std::size_t n) noexcept {
  PC_DASSERT(size_class < kClasses, "size class out of range");
  std::lock_guard lock(mu_);
  lock_acquisitions_.fetch_add(1, std::memory_order_relaxed);
  for (std::size_t i = 0; i < n; ++i) {
    check_class_locked(items[i], size_class);
    auto* node = static_cast<FreeNode*>(items[i]);
    node->next = free_[size_class];
    free_[size_class] = node;
  }
}

void PoolBackend::check_class_locked(const void* p, std::size_t size_class) noexcept {
#ifndef NDEBUG
  const auto it = carved_class_.find(p);
  PC_DASSERT(it != carved_class_.end(), "freed pointer was never carved from this pool");
  PC_DASSERT(it->second == size_class, "pointer freed with a different size class than it was allocated with");
#else
  (void)p;
  (void)size_class;
#endif
}

void* PoolBackend::carve_locked(std::size_t size_class) {
  const std::size_t sz = class_bytes(size_class);
  if (static_cast<std::size_t>(end_ - bump_) < sz) {
    slabs_.push_back(std::make_unique<char[]>(kSlabBytes));
    bump_ = slabs_.back().get();
    end_ = bump_ + kSlabBytes;
  }
  char* p = bump_;
  bump_ += sz;
#ifndef NDEBUG
  carved_class_.emplace(p, static_cast<std::uint32_t>(size_class));
#endif
  return p;
}

}  // namespace pathcopy::alloc
