#include <vector>

#include "model/eviction.hpp"
#include "model/lru_cache.hpp"
#include "model/sim.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace pathcopy::model {
namespace {

std::size_t round_up_pow(std::size_t n, std::size_t base) {
  std::size_t p = 1;
  while (p < n) p *= base;
  return p;
}

constexpr std::uint64_t kLineStride = 64;

template <class Cache>
SimResult run_seq_sim_impl(const SimConfig& cfg) {
  PC_ASSERT(cfg.ops > 0, "need at least one operation");
  const std::size_t n = round_up_pow(cfg.num_leaves, cfg.branching);
  std::size_t depth = 0;
  std::vector<std::size_t> level_start;
  {
    std::size_t width = 1;
    std::size_t start = 0;
    level_start.push_back(0);
    while (width < n) {
      start += width;
      width *= cfg.branching;
      level_start.push_back(start);
      ++depth;
    }
  }

  // Node identities are level-order indices themselves: the mutating
  // baseline updates nodes in place, so identities are stable and the
  // cache keeps paying off across operations (Appendix A.1).
  Cache cache(cfg.cache_lines);
  util::Xoshiro256 rng(cfg.seed);
  SimResult res;

  std::uint64_t now = 0;
  for (std::size_t op = 0; op < cfg.ops; ++op) {
    const bool is_noop = rng.chance(
        static_cast<std::uint64_t>(cfg.noop_fraction * 1e6), 1000000);
    const std::size_t leaf = rng.below(n);
    std::size_t div = 1;
    for (std::size_t l = 0; l < depth; ++l) div *= cfg.branching;
    for (std::size_t l = 0; l <= depth; ++l) {
      const std::uint64_t node_id =
          static_cast<std::uint64_t>(level_start[l] + leaf / div);
      if (div > 1) div /= cfg.branching;
      const std::uint64_t base = node_id * kLineStride;
      for (std::size_t line = 0; line < cfg.lines_per_node; ++line) {
        if (cache.access(base + line)) {
          now += 1;
          ++res.traversal_hits;
        } else {
          now += cfg.miss_cost;
          ++res.traversal_misses;
        }
      }
    }
    ++res.attempts;
    ++res.ops_completed;
    if (is_noop) {
      ++res.noop_ops;
    } else {
      ++res.modifying_ops;
      if (cfg.alloc_ticks_per_node > 0) {
        // The mutating baseline allocates one node per modifying op (the
        // inserted element), not a copied path, and sees no queueing.
        now += cfg.alloc_ticks_per_node;
      }
    }
  }
  res.total_ticks = now;
  return res;
}

}  // namespace

SimResult run_seq_sim(const SimConfig& cfg) {
  switch (cfg.eviction) {
    case EvictionPolicy::kLru:
      return run_seq_sim_impl<LruCache>(cfg);
    case EvictionPolicy::kFifo:
      return run_seq_sim_impl<FifoCache>(cfg);
    case EvictionPolicy::kClock:
      return run_seq_sim_impl<ClockCache>(cfg);
    case EvictionPolicy::kRandom:
      return run_seq_sim_impl<RandomCache>(cfg);
  }
  return run_seq_sim_impl<LruCache>(cfg);
}

}  // namespace pathcopy::model
