// Alternative eviction policies for the private-cache model.
//
// The paper's Appendix A assumes LRU ("the process should cache the first
// log M levels"). The claim that failed CAS attempts act as prefetchers
// only needs a weaker property — recently touched lines survive until the
// retry — so the eviction ablation re-runs the protocol simulator under
// FIFO, CLOCK (second chance) and uniform-random replacement to show the
// scaling effect is not an LRU artifact. All caches share LruCache's
// interface: access() counts a hit or a filling miss; fill() models
// write-allocate of a freshly created node.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace pathcopy::model {

enum class EvictionPolicy : std::uint8_t { kLru, kFifo, kClock, kRandom };

inline const char* policy_name(EvictionPolicy p) {
  switch (p) {
    case EvictionPolicy::kLru: return "LRU";
    case EvictionPolicy::kFifo: return "FIFO";
    case EvictionPolicy::kClock: return "CLOCK";
    case EvictionPolicy::kRandom: return "RANDOM";
  }
  return "?";
}

/// First-in-first-out: eviction order is fill order; touching a resident
/// line does not refresh it.
class FifoCache {
 public:
  explicit FifoCache(std::size_t capacity) : capacity_(capacity) {
    PC_ASSERT(capacity_ > 0, "cache capacity must be positive");
    map_.reserve(capacity_);
  }

  bool access(std::uint64_t key) {
    if (map_.contains(key)) {
      ++hits_;
      return true;
    }
    insert_cold(key);
    ++misses_;
    return false;
  }

  void fill(std::uint64_t key) {
    if (map_.contains(key)) return;
    insert_cold(key);
  }

  bool contains(std::uint64_t key) const { return map_.contains(key); }
  std::size_t size() const noexcept { return map_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }
  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }
  void reset_counters() noexcept { hits_ = misses_ = 0; }

 private:
  void insert_cold(std::uint64_t key) {
    if (map_.size() == capacity_) {
      map_.erase(fifo_.front());
      fifo_.pop_front();
    }
    fifo_.push_back(key);
    map_.emplace(key, true);
  }

  std::size_t capacity_;
  std::deque<std::uint64_t> fifo_;
  std::unordered_map<std::uint64_t, bool> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// CLOCK / second chance: a circular sweep skips (and clears) referenced
/// lines, evicting the first unreferenced one — the standard hardware-ish
/// LRU approximation.
class ClockCache {
 public:
  explicit ClockCache(std::size_t capacity) : capacity_(capacity) {
    PC_ASSERT(capacity_ > 0, "cache capacity must be positive");
    slots_.reserve(capacity_);
    map_.reserve(capacity_);
  }

  bool access(std::uint64_t key) {
    auto it = map_.find(key);
    if (it != map_.end()) {
      slots_[it->second].referenced = true;
      ++hits_;
      return true;
    }
    insert_cold(key);
    ++misses_;
    return false;
  }

  void fill(std::uint64_t key) {
    auto it = map_.find(key);
    if (it != map_.end()) {
      slots_[it->second].referenced = true;
      return;
    }
    insert_cold(key);
  }

  bool contains(std::uint64_t key) const { return map_.contains(key); }
  std::size_t size() const noexcept { return map_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }
  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }
  void reset_counters() noexcept { hits_ = misses_ = 0; }

 private:
  struct Slot {
    std::uint64_t key;
    bool referenced;
  };

  void insert_cold(std::uint64_t key) {
    if (slots_.size() < capacity_) {
      map_[key] = slots_.size();
      slots_.push_back(Slot{key, true});
      return;
    }
    for (;;) {
      Slot& s = slots_[hand_];
      if (s.referenced) {
        s.referenced = false;
        hand_ = (hand_ + 1) % capacity_;
        continue;
      }
      map_.erase(s.key);
      map_[key] = hand_;
      s = Slot{key, true};
      hand_ = (hand_ + 1) % capacity_;
      return;
    }
  }

  std::size_t capacity_;
  std::size_t hand_ = 0;
  std::vector<Slot> slots_;
  std::unordered_map<std::uint64_t, std::size_t> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// Uniform-random replacement (seeded, deterministic per process).
class RandomCache {
 public:
  explicit RandomCache(std::size_t capacity, std::uint64_t seed = 1)
      : capacity_(capacity), rng_(seed) {
    PC_ASSERT(capacity_ > 0, "cache capacity must be positive");
    slots_.reserve(capacity_);
    map_.reserve(capacity_);
  }

  bool access(std::uint64_t key) {
    if (map_.contains(key)) {
      ++hits_;
      return true;
    }
    insert_cold(key);
    ++misses_;
    return false;
  }

  void fill(std::uint64_t key) {
    if (map_.contains(key)) return;
    insert_cold(key);
  }

  bool contains(std::uint64_t key) const { return map_.contains(key); }
  std::size_t size() const noexcept { return map_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }
  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }
  void reset_counters() noexcept { hits_ = misses_ = 0; }

 private:
  void insert_cold(std::uint64_t key) {
    if (slots_.size() < capacity_) {
      map_[key] = slots_.size();
      slots_.push_back(key);
      return;
    }
    const std::size_t victim = rng_.below(capacity_);
    map_.erase(slots_[victim]);
    slots_[victim] = key;
    map_[key] = victim;
  }

  std::size_t capacity_;
  util::Xoshiro256 rng_;
  std::vector<std::uint64_t> slots_;
  std::unordered_map<std::uint64_t, std::size_t> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace pathcopy::model
