// Private per-process LRU cache for the synchronous machine model.
//
// The paper's model (Appendix A) gives each process its own cache of M
// node-sized lines: a cached load costs 1 tick, an uncached load costs R
// ticks and fills the line, evicting the least recently used. Keys are
// abstract node identities (never reused), so stale-address aliasing
// cannot manufacture false hits.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>

#include "util/assert.hpp"

namespace pathcopy::model {

class LruCache {
 public:
  explicit LruCache(std::size_t capacity) : capacity_(capacity) {
    PC_ASSERT(capacity_ > 0, "cache capacity must be positive");
    map_.reserve(capacity_);
  }

  /// Touches key; returns true on hit. Misses insert the key (fill).
  bool access(std::uint64_t key) {
    auto it = map_.find(key);
    if (it != map_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      ++hits_;
      return true;
    }
    insert_cold(key);
    ++misses_;
    return false;
  }

  /// Inserts without counting a hit/miss — models the process writing a
  /// node it just created (write-allocate into its own cache).
  void fill(std::uint64_t key) {
    auto it = map_.find(key);
    if (it != map_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      return;
    }
    insert_cold(key);
  }

  bool contains(std::uint64_t key) const { return map_.contains(key); }
  std::size_t size() const noexcept { return map_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }
  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }

  void reset_counters() noexcept { hits_ = misses_ = 0; }

 private:
  void insert_cold(std::uint64_t key) {
    if (map_.size() == capacity_) {
      map_.erase(lru_.back());
      lru_.pop_back();
    }
    lru_.push_front(key);
    map_[key] = lru_.begin();
  }

  std::size_t capacity_;
  std::list<std::uint64_t> lru_;
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace pathcopy::model
