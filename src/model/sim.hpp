// Synchronous private-cache machine simulator (the paper's model, runnable).
//
// Processes execute the universal construction's retry protocol over a
// balanced external tree of N leaves. Node identities are abstract 64-bit
// IDs; a successful update replaces the IDs along the root-to-leaf path
// (path copying), and every process owns a private LRU cache of M lines
// with hit cost 1 and miss cost R. CAS winners on simultaneous attempts
// are resolved round-robin (the paper's Fig. 4 pattern): the tie goes to
// the process whose last success is oldest.
//
// Two extensions beyond the bare Appendix A model, both off by default:
//   * noop_fraction q — operations that modify nothing (failed set
//     inserts/removes of the Random workload) complete without a CAS;
//   * alloc_ticks_per_node a — a serialized global allocator charging a
//     ticks per node created by *every* attempt, modeling the Java
//     allocator bottleneck the paper blames for the high-P collapse
//     (Appendix B).
#pragma once

#include <cstddef>
#include <cstdint>

#include "model/eviction.hpp"

namespace pathcopy::model {

struct SimConfig {
  std::size_t num_leaves = 1 << 20;   // N (rounded up to a power of `branching`)
  std::size_t cache_lines = 1 << 14;  // M, per process
  std::uint64_t miss_cost = 64;       // R
  std::size_t processes = 1;          // P
  std::size_t ops = 20000;            // operations to complete (all kinds)
  double noop_fraction = 0.0;         // q
  /// Tree arity (2 = the paper's binary model). Wider trees have shorter
  /// paths but coarser sharing — the branching ablation's subject.
  std::size_t branching = 2;
  /// Cache lines one node occupies (wide nodes of high-arity trees span
  /// several). Every line of a node costs one cache access.
  std::size_t lines_per_node = 1;
  /// Replacement policy of the private caches (Appendix A assumes LRU).
  EvictionPolicy eviction = EvictionPolicy::kLru;
  std::uint64_t alloc_ticks_per_node = 0;
  /// Nodes obtained from the serialized allocator per trip (TLAB-style
  /// batching): a modifying attempt makes ceil(path_len / batch) trips of
  /// alloc_ticks_per_node each. 1 = every node is a global trip.
  std::uint64_t alloc_refill_batch = 1;
  /// Coherence-contention term: each allocator trip additionally costs
  /// alloc_contention_ticks * P (a contended lock/CAS freelist head costs
  /// Θ(P) cache-line transfers per acquisition). This is what turns the
  /// high-P saturation into the decline of the paper's Tables 1-2.
  std::uint64_t alloc_contention_ticks = 0;
  std::uint64_t seed = 1;
};

struct SimResult {
  std::uint64_t total_ticks = 0;
  std::uint64_t ops_completed = 0;
  std::uint64_t modifying_ops = 0;
  std::uint64_t noop_ops = 0;
  std::uint64_t attempts = 0;
  std::uint64_t cas_failures = 0;
  std::uint64_t traversal_hits = 0;
  std::uint64_t traversal_misses = 0;
  // Statistics over warm retries only (attempt #2+ of an operation):
  std::uint64_t retry_count = 0;
  std::uint64_t retry_misses = 0;
  std::uint64_t alloc_wait_ticks = 0;

  double throughput() const {
    return total_ticks == 0
               ? 0.0
               : static_cast<double>(ops_completed) /
                     static_cast<double>(total_ticks);
  }
  /// Mean uncached loads per warm retry — the paper's "<= 2" claim.
  double misses_per_retry() const {
    return retry_count == 0 ? 0.0
                            : static_cast<double>(retry_misses) /
                                  static_cast<double>(retry_count);
  }
};

/// Concurrent UC execution with P processes (path copying on success).
SimResult run_protocol_sim(const SimConfig& cfg);

/// Single-process mutating baseline (node identities are stable), the
/// model analogue of SeqTreap. `processes` is ignored.
SimResult run_seq_sim(const SimConfig& cfg);

/// Convenience: throughput(P processes, UC) / throughput(sequential).
double simulated_speedup(const SimConfig& cfg);

}  // namespace pathcopy::model
