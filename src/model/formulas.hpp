// Closed-form cost model from the paper's Appendix A.
//
// Sequential:   per-op cost = log M + R (log N − log M)
//   (top log M levels of the tree stay cached under LRU + uniform keys;
//    the remaining levels miss).
// Concurrent:   first attempt costs R log N (cold); each subsequent retry
//   costs 2R + log N − 2 because in expectation only Σ k/2^k <= 2 nodes on
//   the new path were replaced by the winning update; with P processes in
//   the round-robin success pattern an operation is one cold attempt plus
//   P−1 warm retries.
// Speedup:      P · (log M + R(log N − log M))
//               ────────────────────────────────
//               R log N + (P−1)(2R + log N − 2)
// which is Ω(log N) for P = Ω(min(R, log N)) and R = Ω(log N).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace pathcopy::model {

inline double log2d(double x) { return std::log2(x); }

/// Expected number of path nodes replaced by one uniformly random update
/// that a retry must re-load: sum_{k=1..H} k/2^k (bounded above by 2).
inline double expected_modified_on_path(double height) {
  double sum = 0;
  for (double k = 1; k <= height; ++k) sum += k / std::pow(2.0, k);
  return sum;
}

/// Appendix A.1: per-operation cost of the sequential (mutating) baseline.
inline double seq_op_cost(double n, double m, double r) {
  const double cached_levels = std::min(log2d(m), log2d(n));
  return cached_levels + r * std::max(0.0, log2d(n) - cached_levels);
}

/// Appendix A.2: per-operation cost of the concurrent UC under the
/// round-robin model (one cold attempt + (P-1) warm retries).
inline double conc_op_cost(double n, double r, double p) {
  const double warm_retry = 2.0 * r + log2d(n) - 2.0;
  return r * log2d(n) + (p - 1.0) * warm_retry;
}

/// The paper's speedup expression (§3.1 / Appendix A.2).
inline double predicted_speedup(double n, double m, double r, double p) {
  return p * seq_op_cost(n, m, r) / conc_op_cost(n, r, p);
}

/// Limit of predicted_speedup as P -> infinity: the serialized portion of
/// each successful operation is one warm retry, so throughput approaches
/// one op per (2R + log N - 2) ticks.
inline double speedup_limit(double n, double m, double r) {
  return seq_op_cost(n, m, r) / (2.0 * r + log2d(n) - 2.0);
}

/// Smallest P for which the predicted speedup reaches a fraction (e.g.
/// 0.9) of its limit — where the curve flattens.
inline double saturation_processes(double n, double m, double r, double frac) {
  const double target = frac * speedup_limit(n, m, r);
  double p = 1;
  while (p < 1 << 20 && predicted_speedup(n, m, r, p) < target) p *= 1.25;
  return p;
}

// ----- arity-generalized forms (branching ablation) -----
//
// For a balanced external B-ary tree the path is log_B N + 1 nodes, and
// the common prefix between two uniformly random root-to-leaf paths has
// expected length Σ_{k≥0} B^-k = B/(B−1) (both include the root; each
// further level matches with probability 1/B). The winner replaces
// exactly its own path, so a retry reloads B/(B−1) nodes in expectation —
// the binary case's "≤ 2 modified nodes" is the B=2 instance.

inline double logb(double x, double b) { return std::log2(x) / std::log2(b); }

/// Expected modified (uncached) path nodes per warm retry, arity B,
/// truncated at path height h.
inline double expected_modified_bary(double b, double h) {
  double sum = 0;
  double term = 1;
  for (double k = 0; k < h; ++k) {
    sum += term;
    term /= b;
  }
  return sum;
}

/// Sequential per-op cost: `lines` cache lines per node, path log_B N + 1
/// nodes, the top log_B M levels resident.
inline double seq_op_cost_bary(double n, double m, double r, double b,
                               double lines = 1) {
  const double path = logb(n, b) + 1;
  const double cached = std::min(logb(m / lines, b) + 1, path);
  return lines * (cached + r * (path - cached));
}

/// Concurrent per-op cost under the round-robin model, arity B.
inline double conc_op_cost_bary(double n, double r, double p, double b,
                                double lines = 1) {
  const double path = logb(n, b) + 1;
  const double modified = expected_modified_bary(b, path);
  const double warm_retry = lines * (modified * r + (path - modified));
  return lines * r * path + (p - 1.0) * warm_retry;
}

/// Arity-generalized speedup; b = 2, lines = 1 recovers the paper's
/// expression up to the ±1 path-length convention.
inline double predicted_speedup_bary(double n, double m, double r, double p,
                                     double b, double lines = 1) {
  return p * seq_op_cost_bary(n, m, r, b, lines) /
         conc_op_cost_bary(n, r, p, b, lines);
}

}  // namespace pathcopy::model
