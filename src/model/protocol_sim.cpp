#include <algorithm>
#include <queue>
#include <vector>

#include "model/eviction.hpp"
#include "model/lru_cache.hpp"
#include "model/sim.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace pathcopy::model {
namespace {

std::size_t round_up_pow(std::size_t n, std::size_t base) {
  std::size_t p = 1;
  while (p < n) p *= base;
  return p;
}

/// Balanced external B-ary tree over num_leaves (a power of `branching`)
/// in level order: level l starts at (B^l - 1)/(B - 1). Only node
/// identities are stored; the shape never changes (the model workload is
/// "replace a uniformly random leaf", which keeps N constant — exactly
/// the Appendix A setting, generalized to arity B).
class ModelTree {
 public:
  ModelTree(std::size_t num_leaves, std::size_t branching)
      : leaves_(num_leaves), branching_(branching) {
    PC_ASSERT(branching_ >= 2, "tree arity must be at least 2");
    depth_ = 0;
    std::size_t total = 1;  // nodes in a complete tree of current depth
    std::size_t width = 1;
    while (width < leaves_) {
      width *= branching_;
      total += width;
      ++depth_;
    }
    PC_ASSERT(width == leaves_, "num_leaves must be a power of branching");
    level_start_.resize(depth_ + 1);
    std::size_t start = 0;
    std::size_t w = 1;
    for (std::size_t l = 0; l <= depth_; ++l) {
      level_start_[l] = start;
      start += w;
      w *= branching_;
    }
    ids_.resize(total);
    for (auto& id : ids_) id = ++next_id_;
  }

  std::size_t leaves() const noexcept { return leaves_; }
  std::size_t path_len() const noexcept { return depth_ + 1; }

  /// Level-order indices on the path root -> leaf.
  void path_indices(std::size_t leaf, std::vector<std::size_t>& out) const {
    out.clear();
    out.reserve(depth_ + 1);
    // Position of the path node within level l is leaf / B^(depth-l).
    std::size_t div = 1;
    for (std::size_t l = 0; l < depth_; ++l) div *= branching_;
    for (std::size_t l = 0; l <= depth_; ++l) {
      out.push_back(level_start_[l] + leaf / div);
      div /= branching_;
      if (div == 0) div = 1;  // last iteration guard
    }
  }

  std::uint64_t id_at(std::size_t index) const { return ids_[index]; }

  /// Path copy: gives every node on the path a fresh identity.
  void replace_path(const std::vector<std::size_t>& path) {
    for (const std::size_t idx : path) ids_[idx] = ++next_id_;
  }

 private:
  std::size_t leaves_;
  std::size_t branching_;
  std::size_t depth_ = 0;
  std::vector<std::size_t> level_start_;
  std::vector<std::uint64_t> ids_;
  std::uint64_t next_id_ = 0;
};

template <class Cache>
struct Process {
  Process(std::size_t cache_lines, std::uint64_t seed)
      : cache(cache_lines), rng(seed) {}

  Cache cache;
  util::Xoshiro256 rng;
  std::vector<std::size_t> path;
  bool is_noop = false;
  bool warm = false;          // this attempt is a retry of the same op
  std::uint64_t read_version = 0;
  std::uint64_t last_success = 0;
  std::uint64_t tlab_remaining = 0;  // locally buffered allocations
};

struct Event {
  std::uint64_t time;
  std::uint64_t last_success;  // round-robin fairness on ties
  std::size_t pid;

  bool operator>(const Event& o) const {
    if (time != o.time) return time > o.time;
    if (last_success != o.last_success) return last_success > o.last_success;
    return pid > o.pid;
  }
};

/// Nodes wider than a cache line occupy lines_per_node lines with derived
/// identities; a traversal touches every line of every path node.
constexpr std::uint64_t kLineStride = 64;

template <class Cache>
SimResult run_protocol_sim_impl(const SimConfig& cfg) {
  PC_ASSERT(cfg.processes > 0, "need at least one process");
  PC_ASSERT(cfg.ops > 0, "need at least one operation");
  PC_ASSERT(cfg.lines_per_node >= 1 && cfg.lines_per_node <= kLineStride,
            "lines_per_node out of range");
  const std::size_t n = round_up_pow(cfg.num_leaves, cfg.branching);
  ModelTree tree(n, cfg.branching);
  SimResult res;

  std::vector<Process<Cache>> procs;
  procs.reserve(cfg.processes);
  for (std::size_t p = 0; p < cfg.processes; ++p) {
    procs.emplace_back(cfg.cache_lines, cfg.seed * 0x9e3779b9ULL + p);
  }

  std::uint64_t version = 1;
  std::uint64_t alloc_free = 0;  // serialized allocator availability

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue;

  // Picks the next operation for process p and schedules the finish time
  // of its (first) attempt starting at now.
  auto begin_op = [&](std::size_t pid, std::uint64_t now, bool warm_retry) {
    Process<Cache>& pr = procs[pid];
    if (!warm_retry) {
      pr.is_noop = pr.rng.chance(
          static_cast<std::uint64_t>(cfg.noop_fraction * 1e6), 1000000);
      const std::size_t leaf = pr.rng.below(tree.leaves());
      tree.path_indices(leaf, pr.path);
    }
    pr.warm = warm_retry;
    pr.read_version = version;
    ++res.attempts;

    std::uint64_t cost = 0;
    std::uint64_t misses = 0;
    for (const std::size_t idx : pr.path) {
      const std::uint64_t base = tree.id_at(idx) * kLineStride;
      for (std::size_t line = 0; line < cfg.lines_per_node; ++line) {
        if (pr.cache.access(base + line)) {
          cost += 1;
          ++res.traversal_hits;
        } else {
          cost += cfg.miss_cost;
          ++res.traversal_misses;
          ++misses;
        }
      }
    }
    if (warm_retry) {
      ++res.retry_count;
      res.retry_misses += misses;
    }
    if (!pr.is_noop && cfg.alloc_ticks_per_node > 0) {
      // Every modifying attempt builds a copied path. Allocation is
      // TLAB-style: nodes come from a process-local buffer, and only a
      // buffer refill takes a trip through the shared FCFS allocator
      // (alloc_ticks_per_node per trip of alloc_refill_batch nodes).
      const std::uint64_t batch =
          std::max<std::uint64_t>(1, cfg.alloc_refill_batch);
      const std::uint64_t needed = tree.path_len();
      if (pr.tlab_remaining < needed) {
        const std::uint64_t deficit = needed - pr.tlab_remaining;
        const std::uint64_t trips = (deficit + batch - 1) / batch;
        pr.tlab_remaining += trips * batch;
        const std::uint64_t per_trip =
            cfg.alloc_ticks_per_node +
            cfg.alloc_contention_ticks * cfg.processes;
        const std::uint64_t service = per_trip * trips;
        const std::uint64_t start = std::max(alloc_free, now + cost);
        res.alloc_wait_ticks += start - (now + cost);
        alloc_free = start + service;
        cost = (start + service) - now;
      }
      pr.tlab_remaining -= needed;
    }
    queue.push(Event{now + cost, pr.last_success, pid});
  };

  for (std::size_t p = 0; p < cfg.processes; ++p) begin_op(p, 0, false);

  std::uint64_t finished = 0;
  std::uint64_t now = 0;
  while (finished < cfg.ops && !queue.empty()) {
    const Event ev = queue.top();
    queue.pop();
    now = ev.time;
    Process<Cache>& pr = procs[ev.pid];

    if (pr.is_noop) {
      ++finished;
      ++res.noop_ops;
      ++res.ops_completed;
      if (finished >= cfg.ops) break;
      begin_op(ev.pid, now, false);
      continue;
    }
    if (pr.read_version == version) {
      // CAS success: publish the copied path; the new nodes were written
      // by this process, so they enter its cache (write-allocate).
      tree.replace_path(pr.path);
      for (const std::size_t idx : pr.path) {
        const std::uint64_t base = tree.id_at(idx) * kLineStride;
        for (std::size_t line = 0; line < cfg.lines_per_node; ++line) {
          pr.cache.fill(base + line);
        }
      }
      ++version;
      pr.last_success = now;
      ++finished;
      ++res.modifying_ops;
      ++res.ops_completed;
      if (finished >= cfg.ops) break;
      begin_op(ev.pid, now, false);
    } else {
      // CAS failure: immediately retry the same key against the new
      // current version. The path is re-resolved against the updated
      // identities; everything the winner did not touch is still cached.
      ++res.cas_failures;
      begin_op(ev.pid, now, true);
    }
  }
  res.total_ticks = now;
  return res;
}

}  // namespace

SimResult run_protocol_sim(const SimConfig& cfg) {
  switch (cfg.eviction) {
    case EvictionPolicy::kLru:
      return run_protocol_sim_impl<LruCache>(cfg);
    case EvictionPolicy::kFifo:
      return run_protocol_sim_impl<FifoCache>(cfg);
    case EvictionPolicy::kClock:
      return run_protocol_sim_impl<ClockCache>(cfg);
    case EvictionPolicy::kRandom:
      return run_protocol_sim_impl<RandomCache>(cfg);
  }
  return run_protocol_sim_impl<LruCache>(cfg);
}

double simulated_speedup(const SimConfig& cfg) {
  const SimResult conc = run_protocol_sim(cfg);
  const SimResult seq = run_seq_sim(cfg);
  return seq.throughput() == 0.0 ? 0.0 : conc.throughput() / seq.throughput();
}

}  // namespace pathcopy::model
