// Aggregation + rendering for the combining UC's batch counters.
//
// Worker threads own plain OpStats; benches fold them into one
// accumulator at join time and render the batch-size histogram and
// spine-copy savings that bench_batch_combining (and future combining
// benches) report alongside throughput.
#pragma once

#include <cstdio>
#include <mutex>

#include "core/stats.hpp"

namespace pathcopy::bench {

/// Mutex-guarded fold target for per-thread OpStats. Workers call add()
/// once, after their run (not per-op), so the lock is cold.
class OpStatsAccumulator {
 public:
  void add(const core::OpStats& s) {
    const std::lock_guard<std::mutex> lock(mu_);
    total_ += s;
  }

  core::OpStats snapshot() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return total_;
  }

 private:
  mutable std::mutex mu_;
  core::OpStats total_;
};

/// One-line batch-size histogram: share of batched installs per bucket.
inline void print_batch_histogram(std::FILE* out, const core::OpStats& s) {
  std::fprintf(out, "batch-size histogram (of %llu batched installs):",
               static_cast<unsigned long long>(s.batched_installs));
  if (s.batched_installs == 0) {
    std::fprintf(out, " (none)\n");
    return;
  }
  for (unsigned i = 0; i < core::OpStats::kBatchHistBuckets; ++i) {
    if (s.batch_hist[i] == 0) continue;
    std::fprintf(out, "  %s:%.1f%%", core::OpStats::batch_bucket_label(i),
                 100.0 * static_cast<double>(s.batch_hist[i]) /
                     static_cast<double>(s.batched_installs));
  }
  std::fprintf(out, "\n");
}

/// Mean spine copies saved per batched install (0 when none ran).
inline double spine_savings_per_install(const core::OpStats& s) {
  return s.batched_installs == 0
             ? 0.0
             : static_cast<double>(s.spine_copies_saved) /
                   static_cast<double>(s.batched_installs);
}

/// One-line failed-install recycling summary: how many fresh nodes losing
/// CAS attempts threw away, and what share of subsequent create() calls
/// the builder bin served instead of the allocator. Prints nothing when
/// the run never lost a CAS (uncontended cells).
inline void print_recycle_stats(std::FILE* out, const core::OpStats& s) {
  if (s.failed_attempt_nodes == 0 && s.recycled_nodes == 0) return;
  std::fprintf(out,
               "recycling: %llu failed-attempt nodes, %llu creates served "
               "from the bin (%.1f%% recycle ratio)\n",
               static_cast<unsigned long long>(s.failed_attempt_nodes),
               static_cast<unsigned long long>(s.recycled_nodes),
               100.0 * s.recycle_ratio());
}

/// Batched-read (multi_get) summary: probe sweeps run, keys they
/// resolved, the shared-vs-per-key node accounting, and the probe-size
/// histogram. Prints nothing when the run never issued a multi_get.
inline void print_read_stats(std::FILE* out, const core::OpStats& s) {
  if (s.read_batches == 0) return;
  std::fprintf(out,
               "multi-get: %llu probe sweeps resolved %llu keys "
               "(mean batch %.1f, %.1f%% of all reads); "
               "nodes visited %llu, saved %llu vs per-key descents\n",
               static_cast<unsigned long long>(s.read_batches),
               static_cast<unsigned long long>(s.batched_reads),
               s.mean_read_batch(), 100.0 * s.read_batched_share(),
               static_cast<unsigned long long>(s.probe_nodes_visited),
               static_cast<unsigned long long>(s.probe_nodes_saved));
  std::fprintf(out, "probe-size histogram (of %llu sweeps):",
               static_cast<unsigned long long>(s.read_batches));
  for (unsigned i = 0; i < core::OpStats::kBatchHistBuckets; ++i) {
    if (s.read_batch_hist[i] == 0) continue;
    std::fprintf(out, "  %s:%.1f%%", core::OpStats::batch_bucket_label(i),
                 100.0 * static_cast<double>(s.read_batch_hist[i]) /
                     static_cast<double>(s.read_batches));
  }
  std::fprintf(out, "\n");
  if (s.exec_read_sweeps > 0) {
    std::fprintf(out,
                 "read coalescing: %llu merged sweeps absorbed %llu read "
                 "tickets (%.2f tickets/wake)\n",
                 static_cast<unsigned long long>(s.exec_read_sweeps),
                 static_cast<unsigned long long>(s.exec_read_tasks),
                 s.read_tickets_per_wake());
  }
}

}  // namespace pathcopy::bench
