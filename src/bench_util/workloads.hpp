// Workload generators for the paper's two §4 experiments.
//
// Batch (§4.1): a set pre-filled with `initial` random keys; each process
// owns a disjoint key set and loops "insert all of mine, then remove all
// of mine" — every operation is a successful modification.
//
// Random (§4.2): pre-fill by inserting `initial` draws from [lo, hi]
// (duplicates collapse, as in the paper); each process then repeatedly
// draws a key from the range and inserts or removes it with probability
// 1/2 — about half the operations are semantic no-ops.
//
// Skewed generators (the store layer's rebalancing experiments): ZipfGen
// draws ranks from the standard Zipf(theta) law — rank 0 hottest, mapped
// onto the keyspace identically, so the hot mass is *contiguous* and a
// static uniform range split concentrates it on one shard — and
// MovingHotspot confines most draws to a narrow window whose base
// shifts over (op-count) time, the workload an adaptive rebalancer must
// chase rather than fit once.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace pathcopy::bench {

struct BatchKeys {
  std::vector<std::int64_t> initial;                    // unique
  std::vector<std::vector<std::int64_t>> per_thread;    // mutually disjoint,
                                                        // disjoint from initial
};

/// Generates the Batch workload's key material. Keys are unique across
/// the initial set and all per-thread sets.
inline BatchKeys make_batch_keys(std::size_t initial_count, std::size_t threads,
                                 std::size_t keys_per_thread,
                                 std::uint64_t seed) {
  BatchKeys out;
  util::Xoshiro256 rng(seed);
  std::unordered_set<std::int64_t> used;
  used.reserve(initial_count + threads * keys_per_thread);

  auto fresh_key = [&]() {
    for (;;) {
      const auto k = static_cast<std::int64_t>(rng());
      if (used.insert(k).second) return k;
    }
  };

  out.initial.reserve(initial_count);
  for (std::size_t i = 0; i < initial_count; ++i) out.initial.push_back(fresh_key());
  out.per_thread.resize(threads);
  for (auto& keys : out.per_thread) {
    keys.reserve(keys_per_thread);
    for (std::size_t i = 0; i < keys_per_thread; ++i) keys.push_back(fresh_key());
  }
  return out;
}

struct RandomWorkloadConfig {
  std::size_t initial_inserts = 1000000;
  std::int64_t lo = -1000000;
  std::int64_t hi = 1000000;
};

/// The paper's Random pre-fill: `initial_inserts` draws, duplicates and
/// all (the resulting set is smaller than the draw count).
inline std::vector<std::int64_t> make_random_initial(const RandomWorkloadConfig& cfg,
                                                     std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::int64_t> draws;
  draws.reserve(cfg.initial_inserts);
  for (std::size_t i = 0; i < cfg.initial_inserts; ++i) {
    draws.push_back(rng.range(cfg.lo, cfg.hi));
  }
  return draws;
}

/// Deduplicated, sorted version of the random pre-fill (for bulk loads).
inline std::vector<std::int64_t> dedup_sorted(std::vector<std::int64_t> v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

/// Zipf(theta) rank generator over [0, n), Gray et al.'s quantile-
/// inversion method ("Quickly generating billion-record synthetic
/// databases"): the zeta sums are precomputed once, each draw is one
/// uniform double and two pow() calls. theta in (0, 1); theta ~ 0.99 is
/// the classic YCSB-style heavy skew (rank 0 alone draws ~1/zeta(n) of
/// the mass — about 7% at n = 2^21).
class ZipfGen {
 public:
  ZipfGen(std::uint64_t n, double theta) : n_(n), theta_(theta) {
    PC_ASSERT(n >= 2 && theta > 0.0 && theta < 1.0,
              "ZipfGen needs n >= 2 and theta in (0, 1)");
    zetan_ = zeta(n, theta);
    const double zeta2 = zeta(2, theta);
    alpha_ = 1.0 / (1.0 - theta);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
           (1.0 - zeta2 / zetan_);
  }

  /// Draws a rank in [0, n); rank 0 is the hottest.
  std::uint64_t operator()(util::Xoshiro256& rng) const {
    // 53 uniform mantissa bits in [0, 1).
    const double u = static_cast<double>(rng() >> 11) * 0x1.0p-53;
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    const double r = static_cast<double>(n_) *
                     std::pow(eta_ * u - eta_ + 1.0, alpha_);
    const auto rank = static_cast<std::uint64_t>(r);
    return rank >= n_ ? n_ - 1 : rank;
  }

 private:
  static double zeta(std::uint64_t n, double theta) {
    double z = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i) {
      z += std::pow(1.0 / static_cast<double>(i), theta);
    }
    return z;
  }

  std::uint64_t n_;
  double theta_;
  double zetan_;
  double alpha_;
  double eta_;
};

/// A hot window of `width` keys holding `hot_permille`/1000 of the draws,
/// whose base advances by `stride` every `period` draws (per generator
/// instance; drive one per thread). The cold remainder is uniform over
/// the whole keyspace. period = 0 pins the window — the plain hot-range
/// workload.
class MovingHotspot {
 public:
  MovingHotspot(std::int64_t keyspace, std::int64_t width,
                std::uint64_t period, std::int64_t stride,
                unsigned hot_permille = 900)
      : keyspace_(keyspace), width_(width), period_(period), stride_(stride),
        hot_permille_(hot_permille) {
    PC_ASSERT(keyspace > width && width >= 1, "hotspot wider than keyspace");
  }

  std::int64_t operator()(util::Xoshiro256& rng) {
    const std::uint64_t t = ops_++;
    if (rng.below(1000) >= hot_permille_) {
      return rng.range(0, keyspace_ - 1);
    }
    const std::int64_t base =
        period_ == 0
            ? 0
            : static_cast<std::int64_t>(
                  (static_cast<std::uint64_t>(stride_) * (t / period_)) %
                  static_cast<std::uint64_t>(keyspace_ - width_));
    return base + rng.range(0, width_ - 1);
  }

 private:
  std::int64_t keyspace_;
  std::int64_t width_;
  std::uint64_t period_;
  std::int64_t stride_;
  unsigned hot_permille_;
  std::uint64_t ops_ = 0;
};

}  // namespace pathcopy::bench
