// Workload generators for the paper's two §4 experiments.
//
// Batch (§4.1): a set pre-filled with `initial` random keys; each process
// owns a disjoint key set and loops "insert all of mine, then remove all
// of mine" — every operation is a successful modification.
//
// Random (§4.2): pre-fill by inserting `initial` draws from [lo, hi]
// (duplicates collapse, as in the paper); each process then repeatedly
// draws a key from the range and inserts or removes it with probability
// 1/2 — about half the operations are semantic no-ops.
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "util/rng.hpp"

namespace pathcopy::bench {

struct BatchKeys {
  std::vector<std::int64_t> initial;                    // unique
  std::vector<std::vector<std::int64_t>> per_thread;    // mutually disjoint,
                                                        // disjoint from initial
};

/// Generates the Batch workload's key material. Keys are unique across
/// the initial set and all per-thread sets.
inline BatchKeys make_batch_keys(std::size_t initial_count, std::size_t threads,
                                 std::size_t keys_per_thread,
                                 std::uint64_t seed) {
  BatchKeys out;
  util::Xoshiro256 rng(seed);
  std::unordered_set<std::int64_t> used;
  used.reserve(initial_count + threads * keys_per_thread);

  auto fresh_key = [&]() {
    for (;;) {
      const auto k = static_cast<std::int64_t>(rng());
      if (used.insert(k).second) return k;
    }
  };

  out.initial.reserve(initial_count);
  for (std::size_t i = 0; i < initial_count; ++i) out.initial.push_back(fresh_key());
  out.per_thread.resize(threads);
  for (auto& keys : out.per_thread) {
    keys.reserve(keys_per_thread);
    for (std::size_t i = 0; i < keys_per_thread; ++i) keys.push_back(fresh_key());
  }
  return out;
}

struct RandomWorkloadConfig {
  std::size_t initial_inserts = 1000000;
  std::int64_t lo = -1000000;
  std::int64_t hi = 1000000;
};

/// The paper's Random pre-fill: `initial_inserts` draws, duplicates and
/// all (the resulting set is smaller than the draw count).
inline std::vector<std::int64_t> make_random_initial(const RandomWorkloadConfig& cfg,
                                                     std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::int64_t> draws;
  draws.reserve(cfg.initial_inserts);
  for (std::size_t i = 0; i < cfg.initial_inserts; ++i) {
    draws.push_back(rng.range(cfg.lo, cfg.hi));
  }
  return draws;
}

/// Deduplicated, sorted version of the random pre-fill (for bulk loads).
inline std::vector<std::int64_t> dedup_sorted(std::vector<std::int64_t> v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

}  // namespace pathcopy::bench
