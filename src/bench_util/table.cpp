#include "bench_util/table.hpp"

#include <cmath>
#include <cstdio>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace pathcopy::bench {

std::string format_speedup(double ratio) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fx", ratio);
  return buf;
}

std::string format_throughput(double ops_per_sec) {
  // Thousands separated by spaces, paper style ("451 940").
  auto v = static_cast<long long>(std::llround(ops_per_sec));
  std::string digits = std::to_string(v < 0 ? -v : v);
  std::string out;
  const std::size_t n = digits.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0 && (n - i) % 3 == 0) out.push_back(' ');
    out.push_back(digits[i]);
  }
  if (v < 0) out.insert(out.begin(), '-');
  return out;
}

void print_table(std::ostream& os, const SpeedupTable& table) {
  os << "== " << table.title << " ==\n";
  os << std::left << std::setw(12) << "Workload" << std::right << std::setw(14)
     << "Seq Treap";
  for (const std::size_t p : table.process_counts) {
    std::ostringstream head;
    head << "UC " << p << "p";
    os << std::setw(10) << head.str();
  }
  os << "\n";
  for (const auto& row : table.rows) {
    os << std::left << std::setw(12) << row.workload << std::right
       << std::setw(14) << format_throughput(row.seq_ops_per_sec);
    for (const double s : row.speedups) {
      os << std::setw(10) << format_speedup(s);
    }
    os << "\n";
  }
  os.flush();
}

}  // namespace pathcopy::bench
