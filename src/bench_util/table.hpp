// Paper-style speedup table rendering.
//
// The paper reports one row per workload: the sequential baseline's
// absolute throughput followed by "UC <P>p" speedup ratios. print_table
// renders exactly that layout so EXPERIMENTS.md can be compared against
// the paper side by side.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace pathcopy::bench {

struct SpeedupRow {
  std::string workload;
  double seq_ops_per_sec = 0.0;
  std::vector<double> speedups;  // aligned with the table's process counts
};

struct SpeedupTable {
  std::string title;
  std::vector<std::size_t> process_counts;
  std::vector<SpeedupRow> rows;
};

void print_table(std::ostream& os, const SpeedupTable& table);

/// Formats like the paper: "1.47x", or "451 940" for absolute throughput.
std::string format_speedup(double ratio);
std::string format_throughput(double ops_per_sec);

}  // namespace pathcopy::bench
