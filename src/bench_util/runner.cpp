#include "bench_util/runner.hpp"

#include <cmath>
#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace pathcopy::bench {

TimedRun run_timed(std::size_t threads, std::chrono::milliseconds duration,
                   const ThreadBody& body) {
  std::atomic<bool> go{false};
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> ready{0};
  std::vector<std::uint64_t> ops(threads, 0);
  std::vector<std::thread> workers;
  workers.reserve(threads);

  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      ready.fetch_add(1, std::memory_order_release);
      while (!go.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      ops[t] = body(t, stop);
    });
  }
  while (ready.load(std::memory_order_acquire) != threads) {
    std::this_thread::yield();
  }
  const auto start = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(duration);
  stop.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  const auto end = std::chrono::steady_clock::now();

  TimedRun run;
  for (const auto o : ops) run.total_ops += o;
  run.seconds = std::chrono::duration<double>(end - start).count();
  return run;
}

Summary summarize(const std::vector<double>& samples) {
  Summary s;
  if (samples.empty()) return s;
  s.min = samples.front();
  s.max = samples.front();
  double sum = 0.0;
  for (const double v : samples) {
    sum += v;
    if (v < s.min) s.min = v;
    if (v > s.max) s.max = v;
  }
  s.mean = sum / static_cast<double>(samples.size());
  double var = 0.0;
  for (const double v : samples) var += (v - s.mean) * (v - s.mean);
  s.stddev = samples.size() > 1
                 ? std::sqrt(var / static_cast<double>(samples.size() - 1))
                 : 0.0;
  return s;
}

Summary run_trials(std::size_t trials, const std::function<double()>& one_trial) {
  std::vector<double> samples;
  samples.reserve(trials);
  for (std::size_t i = 0; i < trials; ++i) samples.push_back(one_trial());
  return summarize(samples);
}

bool pin_to_cpu(std::size_t cpu) {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu % CPU_SETSIZE, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

std::size_t hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

}  // namespace pathcopy::bench
