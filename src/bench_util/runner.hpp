// Trial execution helpers: timed multi-thread runs and summary statistics.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <vector>

namespace pathcopy::bench {

/// Per-thread body: runs operations until the stop flag is raised and
/// returns the number of completed operations. tid in [0, threads).
using ThreadBody =
    std::function<std::uint64_t(std::size_t tid, const std::atomic<bool>& stop)>;

struct TimedRun {
  std::uint64_t total_ops = 0;
  double seconds = 0.0;

  double ops_per_sec() const {
    return seconds == 0.0 ? 0.0 : static_cast<double>(total_ops) / seconds;
  }
};

/// Spawns `threads` workers running `body`, lets them run for `duration`,
/// raises the stop flag and joins. Workers start together (barrier).
TimedRun run_timed(std::size_t threads, std::chrono::milliseconds duration,
                   const ThreadBody& body);

struct Summary {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

Summary summarize(const std::vector<double>& samples);

/// Runs `trials` repetitions of a measurement returning ops/sec each.
Summary run_trials(std::size_t trials, const std::function<double()>& one_trial);

/// Best-effort CPU pinning (no-op where unsupported); returns success.
bool pin_to_cpu(std::size_t cpu);

/// Hardware concurrency with a floor of 1.
std::size_t hardware_threads();

}  // namespace pathcopy::bench
