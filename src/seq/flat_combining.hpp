// Flat combining (Hendler, Incze, Shavit, Tzafrir, SPAA'10) over a
// mutable sequential structure — the blocking cousin of the lock-free
// CombiningAtom, and the strongest lock-based baseline for the ablation.
//
// Every thread publishes its operation in a per-thread record, then tries
// to take the combiner lock. The winner walks the publication list and
// executes all pending operations against the sequential structure in one
// lock tenure; losers spin on their own record until a combiner delivers
// their result. Compared to the coarse mutex, each lock handoff completes
// up to P operations and the structure stays hot in the combiner's cache.
//
// Unlike the original (which ages out idle records from a dynamic list),
// registration here is static — one cache-line-aligned slot per thread,
// matching the fixed worker pools the benches use. The combiner scans all
// registered slots; an idle slot costs one cache-line read per tenure.
//
// Blocking: a stalled combiner blocks everyone — that is the progress
// price the lock-free construction avoids, and the reason this is a
// baseline rather than the headline.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <thread>

#include "util/align.hpp"
#include "util/assert.hpp"

namespace pathcopy::seq {

/// DS: a mutable sequential map with bool insert(k,v) / bool erase(k) /
/// bool contains(k) — e.g. seq::SeqTreap.
template <class DS, unsigned MaxThreads = 32>
class FlatCombining {
 public:
  using Key = typename DS::KeyType;
  using Value = typename DS::ValueType;

  FlatCombining() = default;
  FlatCombining(const FlatCombining&) = delete;
  FlatCombining& operator=(const FlatCombining&) = delete;

  /// Claims a publication slot for the calling thread (never recycled).
  unsigned register_slot() {
    const unsigned s = next_slot_.fetch_add(1, std::memory_order_relaxed);
    PC_ASSERT(s < MaxThreads, "FlatCombining slot capacity exhausted");
    return s;
  }

  /// Returns true iff the key was newly inserted.
  bool insert(unsigned slot, const Key& key, const Value& value) {
    return run_op(slot, Op::kInsert, key, value);
  }

  /// Returns true iff the key was present and removed.
  bool erase(unsigned slot, const Key& key) {
    return run_op(slot, Op::kErase, key, Value{});
  }

  /// Queries go through the same publication protocol: combining gives
  /// them a consistent view without a reader lock.
  bool contains(unsigned slot, const Key& key) {
    return run_op(slot, Op::kContains, key, Value{});
  }

  std::size_t size(unsigned slot) {
    run_op(slot, Op::kSize, Key{}, Value{});
    return slots_[slot].size_out;
  }

  /// Number of lock tenures that executed at least one operation.
  std::uint64_t combiner_tenures() const noexcept {
    return tenures_.load(std::memory_order_relaxed);
  }

 private:
  enum class Op : std::uint8_t { kNone, kInsert, kErase, kContains, kSize };

  struct alignas(util::kCacheLine) Slot {
    std::atomic<Op> pending{Op::kNone};
    Key key{};
    Value value{};
    bool result = false;
    std::size_t size_out = 0;
  };

  bool run_op(unsigned slot, Op op, const Key& key, const Value& value) {
    Slot& mine = slots_[slot];
    mine.key = key;
    mine.value = value;
    mine.pending.store(op, std::memory_order_release);
    for (;;) {
      if (mine.pending.load(std::memory_order_acquire) == Op::kNone) {
        // A combiner executed this operation and published the result
        // before clearing pending (release), so the plain read is safe.
        return mine.result;
      }
      if (!lock_.exchange(true, std::memory_order_acquire)) {
        combine();
        lock_.store(false, std::memory_order_release);
        PC_DASSERT(mine.pending.load(std::memory_order_relaxed) == Op::kNone,
                   "combiner must have served its own slot");
        return mine.result;
      }
      // Spin while someone else combines; yield so the combiner gets CPU
      // time even when workers outnumber cores.
      while (lock_.load(std::memory_order_relaxed) &&
             mine.pending.load(std::memory_order_acquire) != Op::kNone) {
        std::this_thread::yield();
      }
    }
  }

  void combine() {
    bool any = false;
    const unsigned live = next_slot_.load(std::memory_order_acquire);
    for (unsigned i = 0; i < live && i < MaxThreads; ++i) {
      Slot& s = slots_[i];
      const Op op = s.pending.load(std::memory_order_acquire);
      if (op == Op::kNone) continue;
      switch (op) {
        case Op::kInsert:
          s.result = ds_.insert(s.key, s.value);
          break;
        case Op::kErase:
          s.result = ds_.erase(s.key);
          break;
        case Op::kContains:
          s.result = ds_.contains(s.key);
          break;
        case Op::kSize:
          s.size_out = ds_.size();
          s.result = true;
          break;
        case Op::kNone:
          break;
      }
      any = true;
      s.pending.store(Op::kNone, std::memory_order_release);
    }
    if (any) tenures_.fetch_add(1, std::memory_order_relaxed);
  }

  alignas(util::kCacheLine) std::atomic<bool> lock_{false};
  alignas(util::kCacheLine) std::atomic<unsigned> next_slot_{0};
  alignas(util::kCacheLine) std::atomic<std::uint64_t> tenures_{0};
  std::array<Slot, MaxThreads> slots_{};
  DS ds_;
};

}  // namespace pathcopy::seq
