// Coarse-grained locking universal construction — the blocking baseline.
//
// The "simplest approach" the paper's introduction mentions: one mutex
// protecting one mutable sequential structure. Linearizable and trivially
// correct, but blocking, with zero read-side parallelism. Benches include
// it as a second reference point next to the single-threaded SeqTreap.
#pragma once

#include <mutex>
#include <utility>

namespace pathcopy::seq {

template <class DS>
class Locked {
 public:
  Locked() = default;
  explicit Locked(DS initial) : ds_(std::move(initial)) {}

  /// Runs f(DS&) under the lock; f's return value is passed through.
  template <class F>
  decltype(auto) with(F&& f) {
    std::lock_guard lock(mu_);
    return std::forward<F>(f)(ds_);
  }

  /// Read-only access, also serialized (that is the point of this baseline).
  template <class F>
  decltype(auto) with_read(F&& f) const {
    std::lock_guard lock(mu_);
    return std::forward<F>(f)(ds_);
  }

 private:
  mutable std::mutex mu_;
  DS ds_;
};

}  // namespace pathcopy::seq
