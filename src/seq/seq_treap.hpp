// Mutable sequential treap — the paper's baseline ("Seq Treap").
//
// Algorithmically identical to persist::Treap (same split/merge, same
// deterministic hashed priorities, same canonical shape for a given key
// set) but destructive: no node is ever copied, so its per-operation work
// is the persistent version's minus path copying and allocation churn.
// Speedup numbers in every table are measured against this type running
// single-threaded, exactly as in the paper.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace pathcopy::seq {

template <class K, class V, class Cmp = std::less<K>>
class SeqTreap {
 public:
  using KeyType = K;
  using ValueType = V;
  struct Node {
    K key;
    V value;
    std::uint64_t prio;
    std::uint64_t size;
    Node* left;
    Node* right;
  };

  SeqTreap() noexcept = default;
  SeqTreap(const SeqTreap&) = delete;
  SeqTreap& operator=(const SeqTreap&) = delete;
  SeqTreap(SeqTreap&& o) noexcept : root_(o.root_) { o.root_ = nullptr; }
  SeqTreap& operator=(SeqTreap&& o) noexcept {
    if (this != &o) {
      clear();
      root_ = o.root_;
      o.root_ = nullptr;
    }
    return *this;
  }
  ~SeqTreap() { clear(); }

  static std::uint64_t priority_of(const K& key) {
    return util::mix64(static_cast<std::uint64_t>(std::hash<K>{}(key)));
  }

  std::size_t size() const noexcept { return size_of(root_); }
  bool empty() const noexcept { return root_ == nullptr; }

  const V* find(const K& key) const {
    const Node* n = root_;
    Cmp cmp;
    while (n != nullptr) {
      if (cmp(key, n->key)) {
        n = n->left;
      } else if (cmp(n->key, key)) {
        n = n->right;
      } else {
        return &n->value;
      }
    }
    return nullptr;
  }

  bool contains(const K& key) const { return find(key) != nullptr; }

  /// Returns true iff the key was inserted (false: already present).
  bool insert(const K& key, const V& value) {
    if (contains(key)) return false;
    auto [lo, hi] = split_lt(root_, key);
    Node* leaf = new Node{key, value, priority_of(key), 1, nullptr, nullptr};
    root_ = merge_nodes(merge_nodes(lo, leaf), hi);
    return true;
  }

  /// Returns true iff the key was removed (false: absent).
  bool erase(const K& key) {
    if (!contains(key)) return false;
    auto [lo, rest] = split_lt(root_, key);
    auto [eq, hi] = split_le(rest, key);
    PC_DASSERT(eq != nullptr && eq->size == 1, "erase lost its key");
    delete eq;
    root_ = merge_nodes(lo, hi);
    return true;
  }

  std::size_t rank(const K& key) const {
    std::size_t r = 0;
    const Node* n = root_;
    Cmp cmp;
    while (n != nullptr) {
      if (cmp(n->key, key)) {
        r += 1 + size_of(n->left);
        n = n->right;
      } else {
        n = n->left;
      }
    }
    return r;
  }

  template <class F>
  void for_each(F&& f) const {
    for_each_rec(root_, f);
  }

  std::vector<std::pair<K, V>> items() const {
    std::vector<std::pair<K, V>> out;
    out.reserve(size());
    for_each([&](const K& k, const V& v) { out.emplace_back(k, v); });
    return out;
  }

  bool check_invariants() const { return check_rec(root_, nullptr, nullptr).ok; }

  std::size_t height() const { return height_rec(root_); }

  void clear() noexcept {
    destroy_rec(root_);
    root_ = nullptr;
  }

 private:
  static std::uint64_t size_of(const Node* n) noexcept {
    return n == nullptr ? 0 : n->size;
  }

  static void pull(Node* n) noexcept {
    n->size = 1 + size_of(n->left) + size_of(n->right);
  }

  static std::pair<Node*, Node*> split_lt(Node* n, const K& key) {
    if (n == nullptr) return {nullptr, nullptr};
    Cmp cmp;
    if (cmp(n->key, key)) {
      auto [mid, hi] = split_lt(n->right, key);
      n->right = mid;
      pull(n);
      return {n, hi};
    }
    auto [lo, mid] = split_lt(n->left, key);
    n->left = mid;
    pull(n);
    return {lo, n};
  }

  static std::pair<Node*, Node*> split_le(Node* n, const K& key) {
    if (n == nullptr) return {nullptr, nullptr};
    Cmp cmp;
    if (!cmp(key, n->key)) {
      auto [mid, hi] = split_le(n->right, key);
      n->right = mid;
      pull(n);
      return {n, hi};
    }
    auto [lo, mid] = split_le(n->left, key);
    n->left = mid;
    pull(n);
    return {lo, n};
  }

  static Node* merge_nodes(Node* lo, Node* hi) {
    if (lo == nullptr) return hi;
    if (hi == nullptr) return lo;
    if (lo->prio >= hi->prio) {
      lo->right = merge_nodes(lo->right, hi);
      pull(lo);
      return lo;
    }
    hi->left = merge_nodes(lo, hi->left);
    pull(hi);
    return hi;
  }

  template <class F>
  static void for_each_rec(const Node* n, F& f) {
    if (n == nullptr) return;
    for_each_rec(n->left, f);
    f(n->key, n->value);
    for_each_rec(n->right, f);
  }

  struct CheckResult {
    bool ok;
    std::uint64_t size;
  };

  static CheckResult check_rec(const Node* n, const K* lo, const K* hi) {
    if (n == nullptr) return {true, 0};
    Cmp cmp;
    if (lo != nullptr && !cmp(*lo, n->key)) return {false, 0};
    if (hi != nullptr && !cmp(n->key, *hi)) return {false, 0};
    if (n->left != nullptr && n->left->prio > n->prio) return {false, 0};
    if (n->right != nullptr && n->right->prio > n->prio) return {false, 0};
    const CheckResult l = check_rec(n->left, lo, &n->key);
    if (!l.ok) return {false, 0};
    const CheckResult r = check_rec(n->right, &n->key, hi);
    if (!r.ok) return {false, 0};
    const std::uint64_t sz = 1 + l.size + r.size;
    return {sz == n->size, sz};
  }

  static std::size_t height_rec(const Node* n) {
    if (n == nullptr) return 0;
    const std::size_t l = height_rec(n->left);
    const std::size_t r = height_rec(n->right);
    return 1 + (l > r ? l : r);
  }

  static void destroy_rec(Node* n) noexcept {
    if (n == nullptr) return;
    destroy_rec(n->left);
    destroy_rec(n->right);
    delete n;
  }

  Node* root_ = nullptr;
};

}  // namespace pathcopy::seq
