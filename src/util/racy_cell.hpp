// Word-wise relaxed-atomic storage for seqlock-style publication.
//
// The combining UC's announcement protocol deliberately lets combiners
// copy a payload its owner may be concurrently overwriting: a seq
// re-check after the copy discards torn values, and anything decided on
// a torn copy is guarded by a root CAS that is already doomed. For that
// discipline to be defined behavior (and TSan-clean) the racing accesses
// themselves must be atomic: RacyCell stores T as relaxed atomic 64-bit
// words, so a concurrent load observes an interleaving of whole words —
// possibly torn *across* words, never undefined. All ordering comes from
// the seq counter the caller publishes with release/acquire around the
// cell accesses; the cell itself adds none.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>

namespace pathcopy::util {

template <class T>
class RacyCell {
  static_assert(std::is_trivially_copyable_v<T>,
                "RacyCell requires a trivially copyable payload");

 public:
  RacyCell() noexcept = default;

  void store(const T& v) noexcept {
    unsigned char tmp[kWords * 8] = {};
    std::memcpy(tmp, &v, sizeof(T));
    for (std::size_t i = 0; i < kWords; ++i) {
      std::uint64_t w;
      std::memcpy(&w, tmp + 8 * i, 8);
      word_ref(i).store(w, std::memory_order_relaxed);
    }
  }

  /// May return a value torn across 8-byte boundaries; the caller's seq
  /// protocol must detect and discard such reads.
  T load() noexcept {
    Raw raw;
    unsigned char tmp[kWords * 8];
    for (std::size_t i = 0; i < kWords; ++i) {
      const std::uint64_t w = word_ref(i).load(std::memory_order_relaxed);
      std::memcpy(tmp + 8 * i, &w, 8);
    }
    std::memcpy(raw.b, tmp, sizeof(T));
    return std::bit_cast<T>(raw);
  }

 private:
  static constexpr std::size_t kWords = (sizeof(T) + 7) / 8;
  struct Raw {
    unsigned char b[sizeof(T)];
  };

  std::atomic_ref<std::uint64_t> word_ref(std::size_t i) noexcept {
    return std::atomic_ref<std::uint64_t>(
        *std::launder(reinterpret_cast<std::uint64_t*>(buf_ + 8 * i)));
  }

  alignas(alignof(T) > 8 ? alignof(T) : 8) unsigned char buf_[kWords * 8] = {};
};

}  // namespace pathcopy::util
