// SmallVec: a trivially-copyable-element vector with inline storage.
//
// The batch-apply hot path needs a handful of index/priority scratch
// arrays per install; a std::vector would pay one malloc each, which at
// ~100k installs/s is measurable against the ~100ns the whole scratch
// pass costs. SmallVec keeps the first N elements inline (typical
// combiner batches are <= 2 * slot count) and falls back to the heap only
// beyond that.
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <type_traits>

namespace pathcopy::util {

template <class T, std::size_t N>
class SmallVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVec is for trivially copyable scratch data");

 public:
  SmallVec() noexcept = default;
  SmallVec(std::size_t n, const T& fill) { resize(n, fill); }

  SmallVec(const SmallVec&) = delete;
  SmallVec& operator=(const SmallVec&) = delete;

  T& operator[](std::size_t i) noexcept { return data_[i]; }
  const T& operator[](std::size_t i) const noexcept { return data_[i]; }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  T* data() noexcept { return data_; }
  const T* data() const noexcept { return data_; }
  T& front() noexcept { return data_[0]; }
  const T& front() const noexcept { return data_[0]; }
  T& back() noexcept { return data_[size_ - 1]; }
  const T& back() const noexcept { return data_[size_ - 1]; }

  void push_back(const T& v) {
    if (size_ == cap_) grow(cap_ * 2);
    data_[size_++] = v;
  }

  void pop_back() noexcept { --size_; }

  void resize(std::size_t n, const T& fill) {
    if (n > cap_) grow(n);
    for (std::size_t i = size_; i < n; ++i) data_[i] = fill;
    size_ = n;
  }

  void reserve(std::size_t n) {
    if (n > cap_) grow(n);
  }

  void clear() noexcept { size_ = 0; }

 private:
  void grow(std::size_t at_least) {
    std::size_t cap = cap_;
    while (cap < at_least) cap *= 2;
    auto fresh = std::make_unique<T[]>(cap);
    std::memcpy(fresh.get(), data_, size_ * sizeof(T));
    heap_ = std::move(fresh);
    data_ = heap_.get();
    cap_ = cap;
  }

  T inline_[N];
  T* data_ = inline_;
  std::size_t size_ = 0;
  std::size_t cap_ = N;
  std::unique_ptr<T[]> heap_;
};

}  // namespace pathcopy::util
