// Cache-line geometry helpers for contended shared state.
#pragma once

#include <cstddef>
#include <new>

namespace pathcopy::util {

// Fixed rather than std::hardware_destructive_interference_size: the
// value participates in struct layout, so it must not drift across
// compiler versions or -mtune settings.
inline constexpr std::size_t kCacheLine = 64;

/// Wraps T on its own cache line so arrays of per-thread slots do not
/// false-share. The slot is padded up to a multiple of the line size.
template <class T>
struct alignas(kCacheLine) Padded {
  T value{};

  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }
  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
};

/// Rounds n up to the next multiple of `to` (a power of two).
constexpr std::size_t round_up(std::size_t n, std::size_t to) noexcept {
  return (n + to - 1) & ~(to - 1);
}

}  // namespace pathcopy::util
