// Deterministic pseudo-random number utilities.
//
// Everything in the repository that needs randomness (treap priorities,
// workload key streams, simulator tie-breaking) goes through these
// generators so that runs are reproducible given a seed.
#pragma once

#include <cstdint>
#include <limits>

namespace pathcopy::util {

/// SplitMix64 step: the standard 64-bit finalizer-based generator.
/// Used both as a stream generator and as a mixing function for hashing.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless mix of a single 64-bit value (e.g. hashing a key to a treap
/// priority). Distinct from std::hash, which may be identity for integers.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  std::uint64_t s = x;
  return splitmix64(s);
}

/// xoshiro256** by Blackman & Vigna: fast, high-quality, 256-bit state.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed = 0x8badf00ddeadbeefULL) noexcept {
    // Seed the full state via splitmix64, as recommended by the authors.
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform value in [0, bound). Uses Lemire's multiply-shift reduction;
  /// bias is negligible for bound << 2^64 (all uses here).
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wpedantic"
    using u128 = unsigned __int128;
#pragma GCC diagnostic pop
    return static_cast<std::uint64_t>((static_cast<u128>(operator()()) * bound) >> 64);
  }

  /// Uniform signed value in [lo, hi] inclusive.
  constexpr std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
  }

  /// True with probability num/den.
  constexpr bool chance(std::uint64_t num, std::uint64_t den) noexcept {
    return below(den) < num;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace pathcopy::util
