// PC_YIELD: model-checking instrumentation points.
//
// A PC_YIELD(tag) marks one scheduling decision point inside a small
// critical section — "an adversarial scheduler may preempt this thread
// right here". Under -DPATHCOPY_MODELCHECK the macro calls into the
// deterministic VirtualScheduler (src/verify/sched/), which parks the
// calling logical thread and hands control to whichever thread the
// active exploration strategy picks next. In normal builds the macro
// expands to a void cast: no call, no branch, zero cost.
//
// Tags are string literals naming the window ("atom.bump",
// "cut.probe", ...). They serve two purposes: traces print them, and a
// test can restrict the set of tags that count as decision points so an
// exhaustive search explores only the window under study (every other
// yield is a no-op pass-through). Placement guidance lives in
// src/store/README.md ("Verification").
#pragma once

#if defined(PATHCOPY_MODELCHECK)

namespace pathcopy::util {
/// Defined in src/verify/sched/virtual_scheduler.cpp. No-op when the
/// calling OS thread is not a logical thread of an active scheduler, so
/// instrumented code keeps working in ordinary tests of a MODELCHECK
/// build.
void modelcheck_yield(const char* tag) noexcept;
}  // namespace pathcopy::util

#define PC_YIELD(tag) ::pathcopy::util::modelcheck_yield(tag)

#else

#define PC_YIELD(tag) ((void)0)

#endif
