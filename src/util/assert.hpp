// Lightweight always-on invariant checks.
//
// PC_ASSERT fires in all build types (the data structures here are subtle
// enough that release-mode silent corruption is worse than the branch cost
// on cold paths); PC_DASSERT compiles away outside debug builds and is used
// on hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace pathcopy::util {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "pathcopy assertion failed: %s\n  at %s:%d\n  %s\n",
               expr, file, line, msg ? msg : "");
  std::abort();
}

}  // namespace pathcopy::util

#define PC_ASSERT(expr, msg)                                          \
  do {                                                                \
    if (!(expr)) [[unlikely]] {                                       \
      ::pathcopy::util::assert_fail(#expr, __FILE__, __LINE__, msg);  \
    }                                                                 \
  } while (0)

#ifndef NDEBUG
#define PC_DASSERT(expr, msg) PC_ASSERT(expr, msg)
#else
#define PC_DASSERT(expr, msg) \
  do {                        \
  } while (0)
#endif
