// Lock-free per-shard submission lane: a bounded Vyukov-style MPSC ring
// plus the park/wake and stop protocols the ShardExecutor builds on.
//
// MpscRing is the classic sequence-stamped bounded queue specialized to
// one consumer: every slot carries an atomic stamp; a producer claims a
// slot with one CAS on the tail and publishes with one release store of
// the stamp; the consumer needs no atomics beyond an acquire load of the
// stamp it expects next. No mutex anywhere, and the ring is inspectable
// (approximate depth from two relaxed loads) so control-plane probes
// never serialize against producers.
//
// ShardLane layers three protocols on top:
//
//   * submit gate — a single state word whose high bit is "stopping" and
//     whose low bits count in-flight producers. A producer enters with
//     one fetch_add, backs out if the stop bit was already set, and
//     leaves with one fetch_sub. stop() sets the bit, waits the in-flight
//     count to zero (every racing producer has either published into the
//     ring or backed out), then pushes a poison element through the ring
//     itself: FIFO guarantees everything submitted-before-stop precedes
//     the poison and the stop bit guarantees nothing follows it.
//
//   * park/wake (Dekker) — producers bump a seq_cst publish counter
//     (`ding_`) after the ring publish and notify only when the consumer
//     advertised itself parked. The consumer reads the counter BEFORE
//     checking emptiness (reading a counter value makes every publish it
//     counts visible), advertises `parked_`, then re-reads the counter:
//     in the seq_cst total order either the producer's bump precedes the
//     re-read (the consumer aborts the park) or the consumer's
//     `parked_` store precedes the producer's flag load (the producer
//     notifies). Either way a publish cannot vanish into a sleeping
//     consumer — the lost-wakeup mutant test in test_model_check.cpp
//     drives exactly this argument.
//
//   * model-check hooks — the futex wait is a PC_YIELD spin under
//     -DPATHCOPY_MODELCHECK (a real atomic::wait would block the OS
//     thread outside the virtual scheduler's control), and the LaneMutant
//     template parameter re-introduces the two classic bugs (claiming a
//     slot without the stamp check; parking without the counter re-read)
//     so the checker can demonstrate it would catch them.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "util/assert.hpp"
#include "util/modelcheck.hpp"

namespace pathcopy::store {

/// Deliberately broken lane variants for model-check mutant tests. The
/// real pipeline always instantiates kNone; the mutants exist so the
/// checker's exhaustive search can be shown to find the bug each guard
/// prevents (see tests/test_model_check.cpp).
enum class LaneMutant : unsigned {
  kNone = 0,
  /// Producer claims a slot without verifying its stamp says "free":
  /// a full ring gets overwritten and the element is lost.
  kSkipSlotSeqCheck,
  /// Consumer parks without re-reading the publish counter after
  /// advertising parked_: the Dekker window reopens and a publish that
  /// saw parked_ == false is never noticed (lost wakeup).
  kSkipParkRecheck,
};

/// Bounded multi-producer single-consumer ring (Vyukov sequence-stamped
/// slots). Capacity must be a power of two. Producers: try_push is one
/// CAS on the tail plus one release store of the slot stamp. Consumer:
/// try_pop is wait-free (returns false when no element is ready).
template <class T, LaneMutant Mutant = LaneMutant::kNone>
class MpscRing {
 public:
  explicit MpscRing(std::size_t capacity)
      : cap_(capacity), mask_(capacity - 1), slots_(new Slot[capacity]) {
    PC_ASSERT(capacity >= 2 && (capacity & (capacity - 1)) == 0,
              "ring capacity must be a power of two >= 2");
    for (std::size_t i = 0; i < capacity; ++i) {
      slots_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  std::size_t capacity() const noexcept { return cap_; }

  /// Multi-producer push. Returns false when the ring is full (the
  /// element is NOT enqueued). On success *pos_out (if non-null) is the
  /// claimed position — a monotone per-ring counter callers can key
  /// sampling decisions off.
  bool try_push(const T& v, std::uint64_t* pos_out = nullptr) {
    std::uint64_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[pos & mask_];
      const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
      const auto dif =
          static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
      if (dif == 0 || Mutant == LaneMutant::kSkipSlotSeqCheck) {
        // Slot recycled and ready (stamp == pos); claim it. The window
        // between reading the stamp and winning the CAS is where a rival
        // claims first — the CAS failing is the benign outcome, the
        // stamp re-check disappearing (mutant) is the lost-element bug.
        PC_YIELD("lane.push");
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          slot.value = v;
          PC_YIELD("lane.publish");
          slot.seq.store(pos + 1, std::memory_order_release);
          if (pos_out != nullptr) *pos_out = pos;
          return true;
        }
      } else if (dif < 0) {
        return false;  // a full lap behind: ring is full
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Single-consumer pop. Wait-free: false when the next slot has not
  /// been published yet.
  bool try_pop(T& out) {
    const std::uint64_t pos = head_.load(std::memory_order_relaxed);
    Slot& slot = slots_[pos & mask_];
    const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
    if (seq != pos + 1) return false;  // not published (or mutant-corrupted)
    PC_YIELD("lane.pop");
    out = std::move(slot.value);
    slot.seq.store(pos + cap_, std::memory_order_release);
    head_.store(pos + 1, std::memory_order_relaxed);
    return true;
  }

  /// Consumer-side emptiness: reads the stamp the next pop would need.
  /// Precise for the consumer (nothing else moves head_).
  bool consumer_empty() const {
    const std::uint64_t pos = head_.load(std::memory_order_relaxed);
    return slots_[pos & mask_].seq.load(std::memory_order_acquire) != pos + 1;
  }

  /// Approximate depth from two relaxed loads — the control-plane
  /// pressure probe. May transiently over/under-count in-flight pushes.
  std::size_t approx_size() const {
    const std::uint64_t t = tail_.load(std::memory_order_relaxed);
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    return t >= h ? static_cast<std::size_t>(t - h) : 0;
  }

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq;
    T value;
  };

  const std::size_t cap_;
  const std::size_t mask_;
  std::unique_ptr<Slot[]> slots_;
  alignas(64) std::atomic<std::uint64_t> tail_{0};  // producers CAS
  alignas(64) std::atomic<std::uint64_t> head_{0};  // consumer stores
};

/// One shard's submission lane: ring + submit gate + park/wake. The
/// consumer contract is single-threaded (the shard's worker); any thread
/// may produce; exactly one thread may drive request_stop.
template <class T, LaneMutant Mutant = LaneMutant::kNone>
class ShardLane {
 public:
  enum class Push { kOk, kFull, kStopping };

  explicit ShardLane(std::size_t capacity) : ring_(capacity) {}

  std::size_t capacity() const noexcept { return ring_.capacity(); }

  /// Producer fast path: one fetch_add on the gate, one ring CAS + one
  /// release store, one fetch_add on the publish counter, one fetch_sub
  /// to leave. Zero mutexes, no syscall unless the consumer advertised
  /// itself parked.
  Push try_push(const T& v, std::uint64_t* pos_out = nullptr) {
    const std::uint32_t gate = state_.fetch_add(1, std::memory_order_seq_cst);
    if ((gate & kStopBit) != 0) {
      state_.fetch_sub(1, std::memory_order_relaxed);
      return Push::kStopping;
    }
    // In-flight from here: request_stop() waits this producer out before
    // poisoning the ring, so a won gate implies the element (if pushed)
    // precedes the poison.
    PC_YIELD("lane.gate");
    std::uint64_t pos = 0;
    if (!ring_.try_push(v, &pos)) {
      state_.fetch_sub(1, std::memory_order_release);
      return Push::kFull;
    }
    if (pos_out != nullptr) *pos_out = pos;
    publish_ding();
    state_.fetch_sub(1, std::memory_order_release);
    return Push::kOk;
  }

  /// Blocking producer push: spins (with yields) through full-ring
  /// backpressure, returns false when the lane is stopping. Running the
  /// element synchronously on full is NOT an option for callers that
  /// need per-shard FIFO — an earlier element may still sit in the ring
  /// — so backpressure blocks. The ring cannot stay full forever: the
  /// consumer only parks on an empty ring.
  bool push_wait(const T& v, std::uint64_t* pos_out = nullptr) {
    for (;;) {
      switch (try_push(v, pos_out)) {
        case Push::kOk:
          return true;
        case Push::kStopping:
          return false;
        case Push::kFull:
          PC_YIELD("lane.full");
          std::this_thread::yield();
          break;
      }
    }
  }

  // ---- consumer side (single thread) ----

  bool try_pop(T& out) { return ring_.try_pop(out); }

  /// Drains everything currently published into `out` (appended).
  /// Returns the number of elements taken.
  std::size_t drain(std::vector<T>& out) {
    std::size_t n = 0;
    T v;
    while (ring_.try_pop(v)) {
      out.push_back(std::move(v));
      ++n;
    }
    return n;
  }

  bool consumer_empty() const { return ring_.consumer_empty(); }

  /// Reads the publish epoch. seq_cst on purpose: reading a counter
  /// value w makes every publish counted in w visible to subsequent ring
  /// reads (slot store happens-before the counter bump which
  /// happens-before this load), so "epoch then emptiness check" cannot
  /// miss an element that was already counted.
  std::uint32_t park_epoch() const {
    return ding_.load(std::memory_order_seq_cst);
  }

  /// Advertises the consumer as parked and re-reads the epoch. Returns
  /// true when the commit stands (the caller may sleep via park_wait);
  /// false when a publish slipped in — retry the drain instead. The
  /// re-read is the load the Dekker argument needs; the kSkipParkRecheck
  /// mutant drops it.
  bool commit_park(std::uint32_t w) {
    parked_.store(true, std::memory_order_seq_cst);
    PC_YIELD("lane.park");
    if constexpr (Mutant != LaneMutant::kSkipParkRecheck) {
      if (ding_.load(std::memory_order_seq_cst) != w) {
        parked_.store(false, std::memory_order_seq_cst);
        return false;
      }
    }
    return true;
  }

  /// Sleeps until the publish epoch moves past w. Only after a
  /// commit_park(w) that returned true. A publish that arrives between
  /// the commit and the futex wait bumps the epoch first, so the wait
  /// returns immediately — no lost wakeup.
  void park_wait(std::uint32_t w) {
#if defined(PATHCOPY_MODELCHECK)
    // atomic::wait would block the OS thread outside the virtual
    // scheduler's control; spin with yields instead.
    while (ding_.load(std::memory_order_seq_cst) == w) {
      PC_YIELD("lane.park");
      std::this_thread::yield();
    }
#else
    ding_.wait(w);
#endif
    parked_.store(false, std::memory_order_seq_cst);
  }

  // ---- stop side (one thread, once) ----

  /// Sets the stop bit (later producers are refused), waits out every
  /// in-flight producer, then pushes `poison` through the ring itself:
  /// FIFO guarantees every submitted element precedes it and the stop
  /// bit guarantees nothing follows, so the consumer exits exactly after
  /// the last real element.
  void request_stop(const T& poison) {
    state_.fetch_or(kStopBit, std::memory_order_seq_cst);
    while ((state_.load(std::memory_order_acquire) & ~kStopBit) != 0) {
      PC_YIELD("lane.stop");
      std::this_thread::yield();
    }
    while (!ring_.try_push(poison)) {
      // Full ring: the consumer is awake and draining; wait for space.
      PC_YIELD("lane.stop");
      std::this_thread::yield();
    }
    publish_ding();
  }

  bool stopping() const {
    return (state_.load(std::memory_order_acquire) & kStopBit) != 0;
  }

  /// Approximate depth — the rebalancer's pressure probe. Two relaxed
  /// loads, no lock, safe from any thread.
  std::size_t approx_size() const { return ring_.approx_size(); }

  /// Wakeups actually delivered (producer saw parked_). Exposed for the
  /// model-check lost-wakeup assertion; relaxed counter.
  std::uint64_t wakes_sent() const {
    return wakes_sent_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::uint32_t kStopBit = 1u << 31;

  void publish_ding() {
    ding_.fetch_add(1, std::memory_order_seq_cst);
    PC_YIELD("lane.wake");
    if (parked_.load(std::memory_order_seq_cst)) {
      wakes_sent_.fetch_add(1, std::memory_order_relaxed);
      ding_.notify_one();
    }
  }

  MpscRing<T, Mutant> ring_;
  alignas(64) std::atomic<std::uint32_t> state_{0};  // stop bit + in-flight
  alignas(64) std::atomic<std::uint32_t> ding_{0};   // publish epoch
  std::atomic<bool> parked_{false};
  std::atomic<std::uint64_t> wakes_sent_{0};
};

}  // namespace pathcopy::store
