// Rebalancer: distribution-fitted split-point planning + live
// path-copying shard migration for a ShardedMap over a RangeRouter.
//
// A range-partitioned store is only as fast as its hottest shard: under
// a Zipfian or hot-range keyspace the static uniform() split sends most
// of the offered load to one shard, and the S-install-stream scaling
// story collapses back to the single-atom baseline. The Rebalancer
// closes the loop:
//
//   plan     — read the map's KeySketch (a reservoir sample of offered
//              keys), measure the load imbalance under the current
//              epoch's bounds, and — past the threshold — fit new split
//              points at the sample's quantiles
//              (RangeRouter::from_samples), so each shard sees ~equal
//              offered load;
//   migrate  — execute the epoch protocol from router_epoch.hpp:
//              publish + drain (begin_epoch), then extract every key
//              whose owner changed from a pinned source snapshot — the
//              paper's trick doing systems work: a path-copied root IS a
//              free consistent image of the shard, so the extraction
//              runs on an immutable snapshot while non-moving writers
//              proceed — bulk-install the moving ranges into their new
//              owners and erase them from the sources (each a plain
//              execute_batch through the shard's own install path: the
//              sorted sweep batches it, the shard's CAS/combining
//              machinery serializes it against concurrent writers, and
//              an attached ShardExecutor runs it as ordinary lane tasks,
//              FIFO with every other sub-batch bound for that shard),
//              and finally settle the epoch, releasing gated ops.
//
// Safety recap (the full argument lives in router_epoch.hpp): after the
// drain no operation routed by the old topology is in flight, ops on
// moving keys gate until settle, so the extracted snapshot is the
// complete and final content of every moving range — nothing is lost,
// nothing is applied twice, and every per-op outcome is computed against
// a shard that holds exactly the data it owns.
//
// Threading: one Rebalancer per map, driven from one control thread
// (re-entry is serialized by an internal mutex, but plan quality assumes
// a single driver). Create after the map and destroy before it; like a
// Session it holds one reclaimer registration per shard.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "store/executor.hpp"
#include "store/sharded_map.hpp"
#include "util/assert.hpp"

namespace pathcopy::store {

struct RebalanceConfig {
  /// Don't plan off fewer sampled keys than this (quantiles of a tiny
  /// reservoir are noise).
  std::size_t min_samples = 512;
  /// Rebalance when the hottest shard's sampled-load share exceeds this
  /// multiple of the ideal (1/S) share.
  double imbalance_threshold = 1.3;
};

struct RebalanceStats {
  std::uint64_t plans = 0;        // plan() calls that had enough samples
  std::uint64_t migrations = 0;   // executed topology flips
  std::uint64_t keys_moved = 0;   // keys extracted + re-installed
  double last_imbalance = 0.0;    // hottest-shard share multiple at last plan
};

template <class Map>
class Rebalancer {
 public:
  using Uc = typename Map::Backend;
  using Key = typename Map::Key;
  using Value = typename Map::Value;
  using Ctx = typename Map::Ctx;
  using Alloc = typename Map::Alloc;
  using RouterT = typename Map::Router;
  using Epoch = typename Map::Epoch;
  using BatchRequest = typename Map::BatchRequest;
  using OpKind = typename Map::OpKind;

  Rebalancer(Map& map, Alloc& alloc, RebalanceConfig cfg = {})
      : map_(&map), cfg_(cfg) {
    ctxs_.reserve(map.shard_count());
    for (std::size_t s = 0; s < map.shard_count(); ++s) {
      ctxs_.emplace_back(map.shard(s).reclaimer(), alloc);
    }
    // Sampling is opt-in by attachment: sessions start feeding the
    // sketch on their next op, and maps without a Rebalancer never pay.
    map.set_sketch_enabled(true);
  }

  ~Rebalancer() {
    // Detach the sampling too: a map whose Rebalancer is gone should not
    // keep feeding a reservoir nobody will read.
    map_->set_sketch_enabled(false);
  }

  Rebalancer(const Rebalancer&) = delete;
  Rebalancer& operator=(const Rebalancer&) = delete;

  /// Fits new split points to the sketch when the sampled load is
  /// imbalanced past the threshold. nullopt: not enough samples, load
  /// already balanced, or the fit reproduces the current bounds.
  std::optional<RouterT> plan() {
    std::vector<Key> samples = map_->sketch().sorted_sample();
    if (samples.size() < cfg_.min_samples) return std::nullopt;
    ++stats_.plans;
    const Epoch* e = map_->current_epoch();
    const std::size_t shards = map_->shard_count();
    std::vector<std::size_t> load(shards, 0);
    for (const Key& k : samples) ++load[e->router(k, shards)];
    std::size_t max_load = 0;
    for (const std::size_t l : load) max_load = std::max(max_load, l);
    const double ideal =
        static_cast<double>(samples.size()) / static_cast<double>(shards);
    stats_.last_imbalance = static_cast<double>(max_load) / ideal;
    if (stats_.last_imbalance < cfg_.imbalance_threshold) return std::nullopt;
    RouterT fitted =
        RouterT::from_samples(std::span<const Key>(samples), shards);
    if (fitted.bounds() == e->router.bounds()) return std::nullopt;
    return fitted;
  }

  /// Executes one live migration to `next` (publish → drain → extract →
  /// install → erase → settle). Blocks until the flip is settled.
  void migrate_to(RouterT next) {
    const std::lock_guard<std::mutex> lock(mu_);
    Epoch* e = map_->begin_epoch(std::move(next));
    std::uint64_t moved = 0;
    if constexpr (RouterT::kOrderPreserving) {
      migrate_ranges(e, moved);
    } else {
      migrate_generic(e, moved);
    }
    map_->settle_epoch(e);
    stats_.migrations += 1;
    stats_.keys_moved += moved;
    // Forget the pre-flip traffic: the next plan should be fitted to
    // what the store sees under the new topology.
    map_->sketch().reset();
  }

  /// plan() + migrate_to() in one step; true when a migration ran.
  bool maybe_rebalance() {
    std::optional<RouterT> next = plan();
    if (!next.has_value()) return false;
    migrate_to(std::move(*next));
    return true;
  }

  const RebalanceStats& stats() const noexcept { return stats_; }

  /// Folds the per-shard migration counters into a stats accumulator
  /// (anything with add(shard, OpStats), e.g. ShardStatsBoard).
  template <class Board>
  void fold_into(Board& board) const {
    for (std::size_t s = 0; s < ctxs_.size(); ++s) {
      board.add(s, ctxs_[s].stats);
    }
  }

 private:
  /// Range-router migration: one source shard at a time, pipelined
  /// extract → install → erase, releasing parked traffic as early as the
  /// range algebra allows. Sources are processed in ascending shard (=
  /// key) order; destination d is complete — nothing further can move
  /// into it — as soon as every source overlapping its new range has
  /// been processed, i.e. once hi_new(d) <= hi_old(s). Under a skew fit
  /// that shape is decisive: the hot head's narrow destinations all draw
  /// from the first source shard, so the bulk of the parked offered load
  /// resumes after one shard's scan, while the single cold destination
  /// absorbing the resident mass fills in the background behind its
  /// ascending watermark. Erasing each source right after its extraction
  /// both spreads the erase work and runs it while the affected traffic
  /// is parked anyway.
  void migrate_ranges(Epoch* e, std::uint64_t& moved) {
    const std::size_t shards = map_->shard_count();
    const std::vector<Key>& old_b = e->prev->router.bounds();
    const std::vector<Key>& new_b = e->router.bounds();
    std::vector<std::vector<BatchRequest>> per_dest(shards);
    std::vector<BatchRequest> erases;
    for (std::size_t s = 0; s < shards; ++s) {
      for (auto& v : per_dest) v.clear();
      erases.clear();
      {
        // The pinned root is a free consistent image of the shard; after
        // the drain its moving ranges are frozen, so this snapshot holds
        // their complete final content even while non-moving writers
        // keep installing. In-order traversal keeps every slice sorted.
        const auto view = map_->shard(s).pin_versioned(ctxs_[s]);
        const auto collect = [&](const Key& k, const Value& v) {
          const std::size_t owner = e->router(k, shards);
          if (owner == s) return;
          per_dest[owner].push_back(BatchRequest{OpKind::kInsert, k, v});
          erases.push_back(BatchRequest{OpKind::kErase, k, std::nullopt});
          ++moved;
        };
        // Source s's moving keys are at most two contiguous intervals —
        // [lo_old, lo_new) lost leftward, [hi_new, hi_old) lost
        // rightward (shard 0 has no left edge, the last shard no right
        // edge) — so a structure with ranged traversal is scanned in
        // O(moved + log n), not O(resident). Ascending order across and
        // within the two calls keeps every slice sorted. Structures
        // without for_each_range fall back to the full scan, where
        // `collect`'s owner check does the filtering.
        if constexpr (requires(const Key& k) {
                        view.snapshot.for_each_range(k, k, collect);
                      }) {
          if (s > 0 && key_less(old_b[s - 1], new_b[s - 1])) {
            view.snapshot.for_each_range(old_b[s - 1], new_b[s - 1], collect);
          }
          if (s + 1 < shards && key_less(new_b[s], old_b[s])) {
            view.snapshot.for_each_range(new_b[s], old_b[s], collect);
          }
        } else {
          view.snapshot.for_each(collect);
        }
      }
      for (std::size_t d = 0; d < shards; ++d) {
        if (per_dest[d].empty()) continue;
        ctxs_[d].stats.mig_keys_in += per_dest[d].size();
        install_slice(d, per_dest[d], e);
      }
      // Destinations no later source can reach are complete.
      for (std::size_t d = 0; d < shards; ++d) {
        if (e->is_ready(d)) continue;
        const bool complete =
            d + 1 == shards
                ? s + 1 == shards
                : s + 1 == shards || !key_less(old_b[s], new_b[d]);
        if (complete) e->set_ready(d);
      }
      if (!erases.empty()) {
        ctxs_[s].stats.mig_keys_out += erases.size();
        run_chunked(s, erases, nullptr);
      }
    }
  }

  /// Generic-router fallback (no range algebra to pipeline with): full
  /// extraction, per-destination sorted installs, then the erases.
  void migrate_generic(Epoch* e, std::uint64_t& moved) {
    const std::size_t shards = map_->shard_count();
    std::vector<std::vector<BatchRequest>> incoming(shards);
    std::vector<std::vector<BatchRequest>> outgoing(shards);
    for (std::size_t s = 0; s < shards; ++s) {
      const auto view = map_->shard(s).pin_versioned(ctxs_[s]);
      view.snapshot.for_each([&](const Key& k, const Value& v) {
        const std::size_t owner = e->router(k, shards);
        if (owner == s) return;
        incoming[owner].push_back(BatchRequest{OpKind::kInsert, k, v});
        outgoing[s].push_back(BatchRequest{OpKind::kErase, k, std::nullopt});
        ++moved;
      });
    }
    const auto by_key = [](const BatchRequest& a, const BatchRequest& b) {
      return key_less(a.key, b.key);
    };
    for (auto& slice : incoming) {
      std::sort(slice.begin(), slice.end(), by_key);
    }
    // Smallest destinations first, each behind its watermark.
    std::vector<std::size_t> order;
    for (std::size_t d = 0; d < shards; ++d) {
      if (incoming[d].empty()) {
        e->set_ready(d);
      } else {
        order.push_back(d);
      }
    }
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return incoming[a].size() < incoming[b].size();
    });
    for (const std::size_t d : order) {
      ctxs_[d].stats.mig_keys_in += incoming[d].size();
      install_slice(d, incoming[d], e);
      e->set_ready(d);
    }
    for (std::size_t s = 0; s < shards; ++s) {
      if (outgoing[s].empty()) continue;
      ctxs_[s].stats.mig_keys_out += outgoing[s].size();
      run_chunked(s, outgoing[s], nullptr);
    }
  }

  static bool key_less(const Key& a, const Key& b) {
    if constexpr (requires { typename Uc::Structure::KeyCompare; }) {
      return typename Uc::Structure::KeyCompare{}(a, b);
    } else {
      return std::less<Key>{}(a, b);
    }
  }

  /// Keys installed per watermark bump: small enough that parked traffic
  /// resumes every few milliseconds as the big cold-destination install
  /// advances, large enough that the bulk ingest path still amortizes.
  static constexpr std::size_t kWatermarkChunk = 8192;

  /// Runs one shard's migration batch (key-sorted, key-unique) through
  /// its install path: as a lane task on `exec` when non-null (FIFO with
  /// client sub-batches, no stop-the-world; `ticket` joined by the
  /// caller), synchronously from this thread otherwise (returns true).
  /// `exec` is the caller's one-time snapshot of the map's executor —
  /// re-reading it here could see an executor attached mid-migration and
  /// enqueue a task whose null ticket the caller would never join.
  /// Either way the backend's bulk ingest_sorted path carries the batch
  /// when available — giant sorted sweeps, a few CASes — with
  /// execute_batch as the generic fallback.
  bool run_shard_batch(ShardExecutor<Uc>* exec, std::size_t s,
                       std::span<const BatchRequest> reqs, bool* results,
                       BatchTicket* ticket) {
    if (exec != nullptr) {
      typename ShardExecutor<Uc>::Task task;
      task.reqs = reqs;
      task.results = results;
      task.ticket = ticket;
      task.sorted_unique = true;
      if (exec->submit(s, task)) return false;
      // Stopping executor: run the batch ourselves, settle the slot.
    }
    Uc& uc = map_->shard(s);
    const std::span<bool> out(results, reqs.size());
    if constexpr (requires { uc.ingest_sorted(ctxs_[s], reqs, out); }) {
      uc.ingest_sorted(ctxs_[s], reqs, out);
    } else {
      uc.execute_batch(ctxs_[s], reqs, out);
    }
    if (ticket != nullptr) ticket->complete_one();
    return true;
  }

  /// Every migration op must land — inserts into territory the
  /// destination never owned, erases of keys the pinned snapshot proved
  /// present, with the moving ranges unreachable to clients meanwhile —
  /// which the debug build asserts.
  static void assert_all_landed(std::span<const BatchRequest> reqs,
                                const bool* results) {
#ifndef NDEBUG
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      PC_DASSERT(results[i],
                 "migration op was a no-op: a moving key escaped the "
                 "freeze or was double-applied");
    }
#else
    (void)reqs;
    (void)results;
#endif
  }

  /// Installs one destination's (possibly partial — one source's worth)
  /// incoming slice, advancing its watermark chunk by chunk so parked
  /// traffic resumes progressively. Does NOT set the ready bit: the
  /// caller knows when no further source can contribute.
  void install_slice(std::size_t d, std::vector<BatchRequest>& slice,
                     Epoch* e) {
    run_chunked(d, slice, e);
  }

  /// Applies `reqs` (key-sorted, key-unique) to `shard` in
  /// kWatermarkChunk-sized pieces through run_shard_batch. With a
  /// non-null `e` the pieces are an incoming install for destination
  /// `shard` and the watermark advances after each one; null = erase
  /// sweep, no watermark.
  void run_chunked(std::size_t shard, std::vector<BatchRequest>& reqs,
                   Epoch* e) {
    const auto results = std::make_unique<bool[]>(
        std::min(reqs.size(), kWatermarkChunk));
    BatchTicket ticket;
    ShardExecutor<Uc>* const exec = map_->executor();
    std::size_t off = 0;
    while (off < reqs.size()) {
      const std::size_t n = std::min(kWatermarkChunk, reqs.size() - off);
      const std::span<const BatchRequest> chunk(reqs.data() + off, n);
      if (exec != nullptr) {
        ticket.arm(1);
        run_shard_batch(exec, shard, chunk, results.get(), &ticket);
        ticket.join();
      } else {
        run_shard_batch(exec, shard, chunk, results.get(), nullptr);
      }
      assert_all_landed(chunk, results.get());
      off += n;
      if (e != nullptr) {
        if constexpr (Epoch::kHasWatermark) {
          e->advance_watermark(shard, chunk.back().key);
        }
      }
    }
  }

  Map* map_;
  RebalanceConfig cfg_;
  std::vector<Ctx> ctxs_;
  RebalanceStats stats_;
  std::mutex mu_;
};

}  // namespace pathcopy::store
