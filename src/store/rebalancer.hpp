// Rebalancer: distribution-fitted planning + live path-copying shard
// migration for a ShardedMap — over a RangeRouter (whole-topology
// quantile fits, PR 5) or a TabletRouter (tablet-delta plans and
// budget-throttled continuous moves, PR 6).
//
// A range-partitioned store is only as fast as its hottest shard: under
// a Zipfian or hot-range keyspace the static uniform() split sends most
// of the offered load to one shard, and the S-install-stream scaling
// story collapses back to the single-atom baseline. The Rebalancer
// closes the loop:
//
//   plan     — read the map's KeySketch (a reservoir sample of offered
//              keys), measure the load imbalance under the current
//              epoch's topology, and — past the threshold — fit a new
//              one. RangeRouter: new split points at the sample's
//              quantiles. TabletRouter: split hot tablets at quantile
//              cuts (a boundary-only change: zero keys move), then
//              greedily *reassign* whole tablets from hot to cold
//              shards — cold tablets keep their owner, so only the hot
//              head's resident keys pay migration.
//   tick     — the continuous mode (tablet tables only): one small step
//              per call — split the hottest tablet, or move exactly one
//              tablet to the coldest shard — admission-controlled by a
//              MigrationThrottle (keys-moved-per-interval budget) and
//              deferred outright while client ops are parking or lanes
//              are deep. Steady-state traffic never stalls behind a
//              whole-store re-fit; balance is reached as a stream of
//              cheap single-tablet flips.
//   migrate  — execute the epoch protocol from router_epoch.hpp:
//              publish + drain (begin_epoch), then extract every key
//              whose owner changed from a pinned source snapshot — the
//              paper's trick doing systems work: a path-copied root IS a
//              free consistent image of the shard, so the extraction
//              runs on an immutable snapshot while non-moving writers
//              proceed — bulk-install the moving segments into their new
//              owners and erase them from the sources (each a plain
//              batch through the shard's own install path), and finally
//              settle the epoch, releasing gated ops.
//
// Safety recap (the full argument lives in router_epoch.hpp): after the
// drain no operation routed by the old topology is in flight, ops on
// moving keys gate until their destination is ready, so the extracted
// snapshot is the complete and final content of every moving segment —
// nothing is lost, nothing is applied twice, and every per-op outcome is
// computed against a shard that holds exactly the data it owns.
//
// Threading: one Rebalancer per map, driven from one control thread
// (re-entry is serialized by an internal mutex, but plan quality assumes
// a single driver). Create after the map and destroy before it; like a
// Session it holds one reclaimer registration per shard.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "store/executor.hpp"
#include "store/shard_stats.hpp"
#include "store/sharded_map.hpp"
#include "store/tablet_router.hpp"
#include "util/assert.hpp"

namespace pathcopy::store {

/// A router exposing a tablet table (TabletRouter's surface): planning
/// switches from whole-topology quantile fits to tablet deltas.
template <class R>
concept TabletTable = requires(const R r) {
  { r.tablet_count() } -> std::convertible_to<std::size_t>;
  { r.owners() } -> std::convertible_to<std::vector<std::size_t>>;
};

struct RebalanceConfig {
  /// Don't plan off fewer sampled keys than this (quantiles of a tiny
  /// reservoir are noise).
  std::size_t min_samples = 512;
  /// Rebalance when the hottest shard's sampled-load share exceeds this
  /// multiple of the ideal (1/S) share.
  double imbalance_threshold = 1.3;

  // ----- tablet planning (TabletTable routers only) -----

  /// Cap on table growth: at most this many tablets per shard on
  /// average before splits stop and a coalesce pass is tried instead.
  std::size_t max_tablets_per_shard = 16;
  /// Don't carve a tablet represented by fewer sampled keys than this
  /// (the cut position would be noise).
  std::size_t min_split_samples = 32;
  /// tick() moves a whole tablet when its load fits the coldest shard's
  /// deficit within this factor; hotter tablets are split first so the
  /// eventual move is right-sized.
  double move_fit = 1.25;

  // ----- continuous-mode migration throttle -----

  /// At most this many resident keys may start moving per interval.
  std::uint64_t budget_keys = 32 * 1024;
  std::chrono::milliseconds budget_interval{50};
  /// tick() defers while any executor lane is deeper than this (client
  /// sub-batches are stacking up; a migration would stall them more).
  std::size_t max_lane_depth = 8;
};

struct RebalanceStats {
  std::uint64_t plans = 0;        // plan()/tick() calls that had enough samples
  std::uint64_t migrations = 0;   // executed topology flips (all kinds)
  std::uint64_t splits = 0;       // boundary-only flips (zero keys moved)
  std::uint64_t assignment_moves = 0;  // single-tablet continuous moves
  std::uint64_t keys_moved = 0;   // keys extracted + re-installed
  std::uint64_t budget_deferrals = 0;    // tick()s the throttle held back
  std::uint64_t pressure_deferrals = 0;  // tick()s client pressure held back
  std::uint64_t peak_interval_keys = 0;  // most keys moved in one interval
  double last_imbalance = 0.0;    // hottest-shard share multiple at last plan
};

/// Keys-moved-per-interval admission meter for continuous migration.
/// The bucket holds `budget_keys` tokens and refills *discretely* at
/// interval boundaries, so the *admitted estimates* inside one interval
/// never exceed what one full bucket grants — the per-interval bound
/// the CI smoke asserts (peak_interval_est). One exception keeps
/// progress possible: a full bucket admits even an over-budget move (a
/// tablet bigger than the whole budget could otherwise never migrate),
/// counted in oversize_escapes. The actual keys moved are tracked too
/// (peak_interval_keys) and may run past the estimate by whatever the
/// tablet gained between planning and the pinned extraction — reported
/// honestly, but not a policy violation.
class MigrationThrottle {
 public:
  using Clock = std::chrono::steady_clock;

  MigrationThrottle(std::uint64_t budget_keys,
                    std::chrono::milliseconds interval)
      : budget_(budget_keys),
        interval_(interval),
        tokens_(budget_keys),
        boundary_(Clock::now()) {}

  /// May a move of ~`estimated_keys` start now? A true return commits
  /// the caller to the move (tick() migrates immediately after), so the
  /// admitted estimate is accounted here — it is the policy-side window
  /// the CI smoke asserts against, immune to the plan-to-extraction
  /// drift of the actual key count.
  bool admit(std::uint64_t estimated_keys) {
    roll();
    const bool ok = tokens_ >= estimated_keys || tokens_ == budget_;
    if (ok) {
      if (estimated_keys > tokens_) ++oversize_escapes_;
      est_window_ += estimated_keys;
      est_peak_ = std::max(est_peak_, est_window_);
    }
    return ok;
  }

  /// Accounts a move that ran: drains tokens and tracks the window sum.
  void charge(std::uint64_t actual_keys) {
    roll();
    tokens_ -= std::min(tokens_, actual_keys);
    window_keys_ += actual_keys;
    peak_ = std::max(peak_, window_keys_);
  }

  std::uint64_t peak_interval_keys() const noexcept { return peak_; }
  /// Most *admitted estimate* keys in one interval. Exceeds the budget
  /// only via the full-bucket oversize escape; actual keys moved
  /// (peak_interval_keys) may additionally drift past the estimate by
  /// whatever the tablet gained between planning and the pinned
  /// extraction.
  std::uint64_t peak_interval_est() const noexcept { return est_peak_; }
  std::uint64_t oversize_escapes() const noexcept { return oversize_escapes_; }
  std::uint64_t budget_keys() const noexcept { return budget_; }

 private:
  void roll() {
    const Clock::time_point now = Clock::now();
    if (now - boundary_ >= interval_) {
      tokens_ = budget_;
      window_keys_ = 0;
      est_window_ = 0;
      boundary_ = now;
    }
  }

  const std::uint64_t budget_;
  const std::chrono::milliseconds interval_;
  std::uint64_t tokens_;
  std::uint64_t window_keys_ = 0;
  std::uint64_t est_window_ = 0;
  std::uint64_t peak_ = 0;
  std::uint64_t est_peak_ = 0;
  std::uint64_t oversize_escapes_ = 0;
  Clock::time_point boundary_;
};

/// What one continuous-rebalancing step did.
enum class TickResult {
  kIdle,              // balanced, or not enough samples
  kSplit,             // boundary-only flip (split or coalesce), zero keys
  kMove,              // one tablet migrated to the coldest shard
  kDeferredBudget,    // a move was due but the throttle held it
  kDeferredPressure,  // client ops parking / lanes deep; try later
};

template <class Map>
class Rebalancer {
 public:
  using Uc = typename Map::Backend;
  using Key = typename Map::Key;
  using Value = typename Map::Value;
  using Structure = typename Map::Structure;
  using Ctx = typename Map::Ctx;
  using Alloc = typename Map::Alloc;
  using RouterT = typename Map::Router;
  using Epoch = typename Map::Epoch;
  using BatchRequest = typename Map::BatchRequest;
  using OpKind = typename Map::OpKind;

  Rebalancer(Map& map, Alloc& alloc, RebalanceConfig cfg = {})
      : map_(&map),
        cfg_(cfg),
        throttle_(cfg.budget_keys, cfg.budget_interval) {
    ctxs_.reserve(map.shard_count());
    for (std::size_t s = 0; s < map.shard_count(); ++s) {
      ctxs_.emplace_back(map.shard(s).reclaimer(), alloc);
    }
    // Sampling is opt-in by attachment: sessions start feeding the
    // sketch on their next op, and maps without a Rebalancer never pay.
    map.set_sketch_enabled(true);
    last_parked_ = map.parked_waits();
  }

  ~Rebalancer() {
    // Detach the sampling too: a map whose Rebalancer is gone should not
    // keep feeding a reservoir nobody will read.
    map_->set_sketch_enabled(false);
  }

  Rebalancer(const Rebalancer&) = delete;
  Rebalancer& operator=(const Rebalancer&) = delete;

  /// Fits a new topology to the sketch when the sampled load is
  /// imbalanced past the threshold. nullopt: not enough samples, load
  /// already balanced, or the fit reproduces the current topology.
  std::optional<RouterT> plan() {
    if constexpr (TabletTable<RouterT>) {
      return plan_tablets();
    } else {
      return plan_range();
    }
  }

  /// Executes one live migration to `next` (publish → drain → extract →
  /// install → erase → settle). Blocks until the flip is settled.
  void migrate_to(RouterT next) {
    flip_to(std::move(next));
    // Forget the pre-flip traffic: the next plan should be fitted to
    // what the store sees under the new topology.
    map_->sketch().reset();
  }

  /// plan() + migrate_to() in one step; true when a migration ran.
  bool maybe_rebalance() {
    std::optional<RouterT> next = plan();
    if (!next.has_value()) return false;
    migrate_to(std::move(*next));
    return true;
  }

  /// One continuous-rebalancing step (tablet tables only): defer under
  /// client pressure, else split the hottest tablet down to the coldest
  /// shard's deficit (zero keys), else move exactly one tablet there —
  /// if the throttle's key budget admits it. Call periodically from a
  /// control thread; each call does at most one cheap flip.
  TickResult tick()
    requires TabletTable<RouterT>
  {
    if (under_pressure()) {
      ++stats_.pressure_deferrals;
      return TickResult::kDeferredPressure;
    }
    const std::vector<Key> samples = map_->sketch().sorted_sample();
    if (samples.size() < cfg_.min_samples) return TickResult::kIdle;
    const Epoch* e = map_->current_epoch();
    const std::size_t shards = map_->shard_count();
    const RouterT& cur = e->router;
    const std::vector<std::size_t> loads =
        tablet_loads(cur, std::span<const Key>(samples));
    std::vector<std::size_t> shard_load(shards, 0);
    for (std::size_t t = 0; t < loads.size(); ++t) {
      shard_load[cur.owner(t)] += loads[t];
    }
    ++stats_.plans;
    std::size_t h = 0, c = 0;
    for (std::size_t s = 1; s < shards; ++s) {
      if (shard_load[s] > shard_load[h]) h = s;
      if (shard_load[s] < shard_load[c]) c = s;
    }
    const double ideal =
        static_cast<double>(samples.size()) / static_cast<double>(shards);
    stats_.last_imbalance = static_cast<double>(shard_load[h]) / ideal;
    if (stats_.last_imbalance < cfg_.imbalance_threshold) {
      // Steady state: age the reservoir so the next plan is fitted to
      // the *current* workload. A full reservoir over a long run
      // freezes — the replacement probability decays with the offered
      // count — and a frozen sketch would blend every past hotspot into
      // a phantom balanced load while the live one goes unserved.
      map_->sketch().decay(1, 2);
      return TickResult::kIdle;
    }
    // Hottest tablet on the hottest shard.
    std::size_t t_hot = loads.size();
    for (std::size_t t = 0; t < loads.size(); ++t) {
      if (cur.owner(t) != h) continue;
      if (t_hot == loads.size() || loads[t] > loads[t_hot]) t_hot = t;
    }
    if (t_hot == loads.size() || loads[t_hot] == 0) return TickResult::kIdle;
    // Right-size before moving: a tablet much hotter than the coldest
    // shard's deficit would just relocate the hotspot, so carve a
    // deficit-sized piece first (boundary-only, zero keys migrated).
    const std::size_t want = static_cast<std::size_t>(
        std::max(1.0, ideal - static_cast<double>(shard_load[c])));
    const std::size_t max_tablets = cfg_.max_tablets_per_shard * shards;
    if (static_cast<double>(loads[t_hot]) >
        static_cast<double>(want) * cfg_.move_fit) {
      if (cur.tablet_count() + 2 > max_tablets) {
        const RouterT merged = cur.coalesced();
        if (merged.tablet_count() < cur.tablet_count()) {
          flip_to(merged);
          ++stats_.splits;
          after_flip();
          return TickResult::kSplit;
        }
      } else {
        const std::vector<Key> cuts =
            carve_cuts(cur, t_hot, std::span<const Key>(samples), want);
        if (!cuts.empty()) {
          flip_to(cur.with_split(t_hot, std::span<const Key>(cuts)));
          ++stats_.splits;
          after_flip();
          return TickResult::kSplit;
        }
      }
    }
    // Whole-tablet move — only if it strictly improves the hot/cold pair
    // (an unsplittable heavy tablet that fits nowhere stays put).
    if (shard_load[c] + loads[t_hot] >= shard_load[h]) {
      return TickResult::kIdle;
    }
    const std::uint64_t est = estimate_resident(cur, t_hot);
    if (!throttle_.admit(est)) {
      ++stats_.budget_deferrals;
      return TickResult::kDeferredBudget;
    }
    const std::uint64_t before = stats_.keys_moved;
    flip_to(cur.with_owner(t_hot, c));
    throttle_.charge(stats_.keys_moved - before);
    stats_.peak_interval_keys = throttle_.peak_interval_keys();
    ++stats_.assignment_moves;
    after_flip();
    return TickResult::kMove;
  }

  const RebalanceStats& stats() const noexcept { return stats_; }
  const MigrationThrottle& throttle() const noexcept { return throttle_; }

  /// Board-ready roll-up of this rebalancer's run (see shard_stats.hpp).
  RebalanceSummary summary() const {
    RebalanceSummary s;
    s.migrations = stats_.migrations;
    s.splits = stats_.splits;
    s.assignment_moves = stats_.assignment_moves;
    s.keys_moved = stats_.keys_moved;
    s.budget_deferrals = stats_.budget_deferrals;
    s.pressure_deferrals = stats_.pressure_deferrals;
    s.peak_interval_keys = throttle_.peak_interval_keys();
    s.peak_interval_est = throttle_.peak_interval_est();
    s.oversize_escapes = throttle_.oversize_escapes();
    s.budget_keys = throttle_.budget_keys();
    if constexpr (TabletTable<RouterT>) {
      s.tablets_per_shard =
          map_->router().tablets_per_shard(map_->shard_count());
    }
    return s;
  }

  /// Folds the per-shard migration counters into a stats accumulator
  /// (anything with add(shard, OpStats), e.g. ShardStatsBoard).
  template <class Board>
  void fold_into(Board& board) const {
    for (std::size_t s = 0; s < ctxs_.size(); ++s) {
      board.add(s, ctxs_[s].stats);
    }
  }

 private:
  /// Does the backing structure support pruned half-open traversal? With
  /// it a tablet segment is extracted in O(moved + log n); without it
  /// migration falls back to the filtering full scan.
  static constexpr bool kRangedExtract =
      requires(const Structure s, const Key& k,
               void (*f)(const Key&, const Value&)) {
        s.for_each_range(k, k, f);
      };

  /// The flip engine shared by migrate_to and tick: publish + drain,
  /// run the router-appropriate migration, settle. Does NOT touch the
  /// sketch — migrate_to resets it (whole-topology re-fit), tick decays
  /// it (a single-tablet move invalidates little of the evidence).
  void flip_to(RouterT next) {
    const std::lock_guard<std::mutex> lock(mu_);
    Epoch* e = map_->begin_epoch(std::move(next));
    std::uint64_t moved = 0;
    if constexpr (TabletTable<RouterT>) {
      if constexpr (kRangedExtract && std::integral<Key>) {
        migrate_tablets(e, moved);
      } else {
        migrate_generic(e, moved);
      }
    } else if constexpr (RouterT::kOrderPreserving) {
      migrate_ranges(e, moved);
    } else {
      migrate_generic(e, moved);
    }
    map_->settle_epoch(e);
    stats_.migrations += 1;
    stats_.keys_moved += moved;
  }

  /// Post-flip bookkeeping for tick(): age the sketch (the offered
  /// distribution is a property of the workload, not the topology — keep
  /// half the evidence instead of cold-restarting before every small
  /// move) and re-baseline the parked-wait counter so the parks our own
  /// flip caused don't read as client pressure next tick.
  void after_flip() {
    map_->sketch().decay(1, 2);
    last_parked_ = map_->parked_waits();
  }

  /// Client backpressure probe: ops parked on a gate since the last
  /// look, or any executor lane deeper than the configured cap. The
  /// lane probe is two relaxed loads on the ring indices — no lock, so
  /// probing every tick never serializes against submitting clients.
  bool under_pressure() {
    const std::uint64_t parked = map_->parked_waits();
    const bool rising = parked != last_parked_;
    last_parked_ = parked;
    if (rising) return true;
    if (ShardExecutor<Uc>* exec = map_->executor(); exec != nullptr) {
      for (std::size_t s = 0; s < map_->shard_count(); ++s) {
        if (exec->queue_depth(s) > cfg_.max_lane_depth) return true;
      }
    }
    return false;
  }

  // ----- planning: RangeRouter (whole-topology quantile fit) -----

  std::optional<RouterT> plan_range() {
    std::vector<Key> samples = map_->sketch().sorted_sample();
    if (samples.size() < cfg_.min_samples) return std::nullopt;
    ++stats_.plans;
    const Epoch* e = map_->current_epoch();
    const std::size_t shards = map_->shard_count();
    std::vector<std::size_t> load(shards, 0);
    for (const Key& k : samples) ++load[e->router(k, shards)];
    std::size_t max_load = 0;
    for (const std::size_t l : load) max_load = std::max(max_load, l);
    const double ideal =
        static_cast<double>(samples.size()) / static_cast<double>(shards);
    stats_.last_imbalance = static_cast<double>(max_load) / ideal;
    if (stats_.last_imbalance < cfg_.imbalance_threshold) return std::nullopt;
    RouterT fitted =
        RouterT::from_samples(std::span<const Key>(samples), shards);
    if (fitted.bounds() == e->router.bounds()) return std::nullopt;
    return fitted;
  }

  // ----- planning: TabletRouter (split hot head + sticky assignment) --

  /// Whole-plan tablet fit: refine tablets that alone exceed twice the
  /// per-piece cap, then greedily reassign whole tablets hot → cold.
  /// Cold tablets keep their owner, so the resulting flip migrates only
  /// the tablets whose assignment actually changed — under a hot-head
  /// skew that is the hot head's resident mass, not the whole store.
  std::optional<RouterT> plan_tablets() {
    std::vector<Key> samples = map_->sketch().sorted_sample();
    if (samples.size() < cfg_.min_samples) return std::nullopt;
    ++stats_.plans;
    const Epoch* e = map_->current_epoch();
    const std::size_t shards = map_->shard_count();
    RouterT cur = e->router;
    {
      const std::vector<std::size_t> loads =
          tablet_loads(cur, std::span<const Key>(samples));
      std::vector<std::size_t> shard_load(shards, 0);
      for (std::size_t t = 0; t < loads.size(); ++t) {
        shard_load[cur.owner(t)] += loads[t];
      }
      std::size_t max_load = 0;
      for (const std::size_t l : shard_load) max_load = std::max(max_load, l);
      const double ideal =
          static_cast<double>(samples.size()) / static_cast<double>(shards);
      stats_.last_imbalance = static_cast<double>(max_load) / ideal;
      if (stats_.last_imbalance < cfg_.imbalance_threshold) {
        return std::nullopt;
      }
    }
    // Refinement pass: no tablet should alone carry more than twice the
    // piece cap (~half a shard's ideal share). Freshly cut pieces are
    // already near the cap, so the loop skips over them.
    const std::size_t piece_cap = std::max<std::size_t>(
        cfg_.min_split_samples, samples.size() / (2 * shards));
    const std::size_t max_tablets = cfg_.max_tablets_per_shard * shards;
    for (std::size_t t = 0; t < cur.tablet_count(); ++t) {
      if (cur.tablet_count() >= max_tablets) break;
      const auto [first, last] =
          tablet_slice(cur, t, std::span<const Key>(samples));
      if (last - first <= 2 * piece_cap) continue;
      const std::vector<Key> cuts = quantile_cuts(
          cur, t, std::span<const Key>(samples), piece_cap, max_tablets);
      if (cuts.empty()) continue;
      cur = cur.with_split(t, std::span<const Key>(cuts));
      t += cuts.size();
    }
    // Sticky assignment: start from the current owners and move the
    // biggest improving tablet off the hottest shard until balanced.
    const std::vector<std::size_t> loads =
        tablet_loads(cur, std::span<const Key>(samples));
    std::vector<std::size_t> owners = cur.owners();
    std::vector<std::size_t> shard_load(shards, 0);
    for (std::size_t t = 0; t < loads.size(); ++t) {
      shard_load[owners[t]] += loads[t];
    }
    const double ideal =
        static_cast<double>(samples.size()) / static_cast<double>(shards);
    for (std::size_t guard = 0; guard < owners.size() * shards; ++guard) {
      std::size_t h = 0, c = 0;
      for (std::size_t s = 1; s < shards; ++s) {
        if (shard_load[s] > shard_load[h]) h = s;
        if (shard_load[s] < shard_load[c]) c = s;
      }
      if (static_cast<double>(shard_load[h]) <
          ideal * cfg_.imbalance_threshold) {
        break;
      }
      std::size_t best = owners.size();
      for (std::size_t t = 0; t < owners.size(); ++t) {
        if (owners[t] != h || loads[t] == 0) continue;
        if (shard_load[c] + loads[t] >= shard_load[h]) continue;
        if (best == owners.size() || loads[t] > loads[best]) best = t;
      }
      if (best == owners.size()) break;
      owners[best] = c;
      shard_load[h] -= loads[best];
      shard_load[c] += loads[best];
    }
    RouterT next(cur.bounds(), std::move(owners));
    if (next == e->router) return std::nullopt;
    return next;
  }

  /// Sample-count load of every tablet (samples sorted ascending).
  static std::vector<std::size_t> tablet_loads(const RouterT& r,
                                               std::span<const Key> samples) {
    const std::vector<Key>& b = r.bounds();
    std::vector<std::size_t> loads(r.tablet_count(), 0);
    std::size_t prev = 0;
    for (std::size_t j = 0; j < b.size(); ++j) {
      const std::size_t pos = static_cast<std::size_t>(
          std::lower_bound(samples.begin(), samples.end(), b[j], key_less) -
          samples.begin());
      loads[j] = pos - prev;
      prev = pos;
    }
    loads[b.size()] = samples.size() - prev;
    return loads;
  }

  /// [first, last) index range of tablet t's samples.
  static std::pair<std::size_t, std::size_t> tablet_slice(
      const RouterT& r, std::size_t t, std::span<const Key> samples) {
    const Key* lo = r.tablet_lo(t);
    const Key* hi = r.tablet_hi(t);
    const std::size_t first =
        lo == nullptr
            ? 0
            : static_cast<std::size_t>(
                  std::lower_bound(samples.begin(), samples.end(), *lo,
                                   key_less) -
                  samples.begin());
    const std::size_t last =
        hi == nullptr
            ? samples.size()
            : static_cast<std::size_t>(
                  std::lower_bound(samples.begin(), samples.end(), *hi,
                                   key_less) -
                  samples.begin());
    return {first, std::max(first, last)};
  }

  /// Equal-load quantile cuts refining tablet t into ~piece_cap-sample
  /// pieces (the whole-plan refinement). Duplicate quantiles are bumped
  /// past the previous cut, from_samples-style; cuts that run out of
  /// tablet interior are dropped.
  std::vector<Key> quantile_cuts(const RouterT& r, std::size_t t,
                                 std::span<const Key> samples,
                                 std::size_t piece_cap,
                                 std::size_t max_tablets) const {
    const auto [first, last] = tablet_slice(r, t, samples);
    const std::size_t cnt = last - first;
    std::size_t pieces = cnt / piece_cap;
    pieces = std::min(pieces, max_tablets - r.tablet_count() + 1);
    if (pieces < 2) return {};
    const Key* lo = r.tablet_lo(t);
    const Key* hi = r.tablet_hi(t);
    std::vector<Key> cuts;
    cuts.reserve(pieces - 1);
    for (std::size_t p = 1; p < pieces; ++p) {
      Key q = samples[first + p * cnt / pieces];
      const Key* floor = cuts.empty() ? lo : &cuts.back();
      if (floor != nullptr && !key_less(*floor, q)) {
        if (*floor == std::numeric_limits<Key>::max()) break;
        q = static_cast<Key>(*floor + 1);
      }
      if (hi != nullptr && !key_less(q, *hi)) break;
      cuts.push_back(q);
    }
    return cuts;
  }

  /// The cut(s) carving a ~`want`-sample piece out of tablet t, centered
  /// on the tablet's sample mass: a piece dense in samples spans little
  /// keyspace, so the carved tablet drags few cold resident keys along
  /// when it later moves. Empty when the tablet is too thinly sampled or
  /// has no interior key to cut at (a single heavy key cannot be split).
  std::vector<Key> carve_cuts(const RouterT& r, std::size_t t,
                              std::span<const Key> samples,
                              std::size_t want) const {
    const auto [first, last] = tablet_slice(r, t, samples);
    const std::size_t cnt = last - first;
    if (cnt < cfg_.min_split_samples) return {};
    want = std::clamp<std::size_t>(want, 1, cnt - 1);
    const std::size_t j = (cnt - want) / 2;
    const Key c1 = samples[first + j];
    const Key c2 = samples[first + j + want];
    const Key* lo = r.tablet_lo(t);
    const Key* hi = r.tablet_hi(t);
    std::vector<Key> cuts;
    if (lo == nullptr || key_less(*lo, c1)) cuts.push_back(c1);
    const Key* floor = cuts.empty() ? lo : &cuts.back();
    if ((hi == nullptr || key_less(c2, *hi)) &&
        (floor == nullptr || key_less(*floor, c2))) {
      cuts.push_back(c2);
    }
    return cuts;
  }

  /// Resident-key cost of moving tablet t — exact via count_range when
  /// the structure has it, the whole shard's size (a conservative
  /// overestimate) otherwise. Runs on the owner's current snapshot.
  std::uint64_t estimate_resident(const RouterT& r, std::size_t t) {
    const std::size_t s = r.owner(t);
    return map_->shard(s).read(
        ctxs_[s], [&](auto snap) -> std::uint64_t {
          if constexpr (std::integral<Key> &&
                        requires { snap.count_range(Key{}, Key{}); }) {
            const Key lo = r.tablet_lo(t) != nullptr
                               ? *r.tablet_lo(t)
                               : std::numeric_limits<Key>::min();
            if (const Key* hp = r.tablet_hi(t)) {
              return snap.count_range(lo, *hp);
            }
            const Key mx = std::numeric_limits<Key>::max();
            return snap.count_range(lo, mx) + (snap.contains(mx) ? 1 : 0);
          } else {
            return snap.size();
          }
        });
  }

  // ----- migration executors -----

  /// Tablet migration: diff the two tables into maximal moving segments
  /// (ascending key order — empty for a pure split/coalesce), then per
  /// segment: pin the source, extract the segment's slice via the
  /// structure's pruned range traversal (O(moved + log n)), install it
  /// into the destination behind its watermark, and erase it from the
  /// source. A destination is ready the moment its last incoming
  /// segment lands — per-tablet readiness instead of range algebra, so
  /// unrelated traffic resumes segment by segment.
  void migrate_tablets(Epoch* e, std::uint64_t& moved)
    requires TabletTable<RouterT> && std::integral<Key>
  {
    const std::size_t shards = map_->shard_count();
    const std::vector<TabletSegment<Key>> segs =
        RouterT::diff(e->prev->router, e->router);
    std::vector<std::size_t> incoming(shards, 0);
    for (const TabletSegment<Key>& sg : segs) ++incoming[sg.dst];
    for (std::size_t d = 0; d < shards; ++d) {
      if (incoming[d] == 0) e->set_ready(d);
    }
    std::vector<BatchRequest> slice;
    std::vector<BatchRequest> erases;
    for (const TabletSegment<Key>& sg : segs) {
      slice.clear();
      erases.clear();
      {
        // The pinned root is a free consistent image of the shard; after
        // the drain the moving segment is frozen, so this snapshot holds
        // its complete final content even while non-moving writers keep
        // installing. In-order traversal keeps the slice sorted.
        const auto view = map_->shard(sg.src).pin_versioned(ctxs_[sg.src]);
        const auto collect = [&](const Key& k, const Value& v) {
          slice.push_back(BatchRequest{OpKind::kInsert, k, v});
          erases.push_back(BatchRequest{OpKind::kErase, k, std::nullopt});
          ++moved;
        };
        const Key lo =
            sg.lo.has_value() ? *sg.lo : std::numeric_limits<Key>::min();
        if (sg.hi.has_value()) {
          view.snapshot.for_each_range(lo, *sg.hi, collect);
        } else {
          // Half-open traversal cannot name "past the maximum key", so
          // sweep to max and pick up max itself separately.
          const Key mx = std::numeric_limits<Key>::max();
          view.snapshot.for_each_range(lo, mx, collect);
          if (const Value* v = view.snapshot.find(mx)) collect(mx, *v);
        }
      }
      if (!slice.empty()) {
        ctxs_[sg.dst].stats.mig_keys_in += slice.size();
        install_slice(sg.dst, slice, e);
      }
      if (--incoming[sg.dst] == 0) e->set_ready(sg.dst);
      if (!erases.empty()) {
        ctxs_[sg.src].stats.mig_keys_out += erases.size();
        run_chunked(sg.src, erases, nullptr);
      }
    }
  }

  /// Range-router migration: one source shard at a time, pipelined
  /// extract → install → erase, releasing parked traffic as early as the
  /// range algebra allows. Sources are processed in ascending shard (=
  /// key) order; destination d is complete — nothing further can move
  /// into it — as soon as every source overlapping its new range has
  /// been processed, i.e. once hi_new(d) <= hi_old(s). Under a skew fit
  /// that shape is decisive: the hot head's narrow destinations all draw
  /// from the first source shard, so the bulk of the parked offered load
  /// resumes after one shard's scan, while the single cold destination
  /// absorbing the resident mass fills in the background behind its
  /// ascending watermark. Erasing each source right after its extraction
  /// both spreads the erase work and runs it while the affected traffic
  /// is parked anyway.
  void migrate_ranges(Epoch* e, std::uint64_t& moved) {
    const std::size_t shards = map_->shard_count();
    const std::vector<Key>& old_b = e->prev->router.bounds();
    const std::vector<Key>& new_b = e->router.bounds();
    std::vector<std::vector<BatchRequest>> per_dest(shards);
    std::vector<BatchRequest> erases;
    for (std::size_t s = 0; s < shards; ++s) {
      for (auto& v : per_dest) v.clear();
      erases.clear();
      {
        // Same snapshot argument as migrate_tablets above.
        const auto view = map_->shard(s).pin_versioned(ctxs_[s]);
        const auto collect = [&](const Key& k, const Value& v) {
          const std::size_t owner = e->router(k, shards);
          if (owner == s) return;
          per_dest[owner].push_back(BatchRequest{OpKind::kInsert, k, v});
          erases.push_back(BatchRequest{OpKind::kErase, k, std::nullopt});
          ++moved;
        };
        // Source s's moving keys are at most two contiguous intervals —
        // [lo_old, lo_new) lost leftward, [hi_new, hi_old) lost
        // rightward (shard 0 has no left edge, the last shard no right
        // edge) — so a structure with ranged traversal is scanned in
        // O(moved + log n), not O(resident). Ascending order across and
        // within the two calls keeps every slice sorted. Structures
        // without for_each_range fall back to the full scan, where
        // `collect`'s owner check does the filtering.
        if constexpr (requires(const Key& k) {
                        view.snapshot.for_each_range(k, k, collect);
                      }) {
          if (s > 0 && key_less(old_b[s - 1], new_b[s - 1])) {
            view.snapshot.for_each_range(old_b[s - 1], new_b[s - 1], collect);
          }
          if (s + 1 < shards && key_less(new_b[s], old_b[s])) {
            view.snapshot.for_each_range(new_b[s], old_b[s], collect);
          }
        } else {
          view.snapshot.for_each(collect);
        }
      }
      for (std::size_t d = 0; d < shards; ++d) {
        if (per_dest[d].empty()) continue;
        ctxs_[d].stats.mig_keys_in += per_dest[d].size();
        install_slice(d, per_dest[d], e);
      }
      // Destinations no later source can reach are complete.
      for (std::size_t d = 0; d < shards; ++d) {
        if (e->is_ready(d)) continue;
        const bool complete =
            d + 1 == shards
                ? s + 1 == shards
                : s + 1 == shards || !key_less(old_b[s], new_b[d]);
        if (complete) e->set_ready(d);
      }
      if (!erases.empty()) {
        ctxs_[s].stats.mig_keys_out += erases.size();
        run_chunked(s, erases, nullptr);
      }
    }
  }

  /// Generic fallback (no range structure to extract with): full
  /// extraction, per-destination sorted installs, then the erases.
  void migrate_generic(Epoch* e, std::uint64_t& moved) {
    const std::size_t shards = map_->shard_count();
    std::vector<std::vector<BatchRequest>> incoming(shards);
    std::vector<std::vector<BatchRequest>> outgoing(shards);
    for (std::size_t s = 0; s < shards; ++s) {
      const auto view = map_->shard(s).pin_versioned(ctxs_[s]);
      view.snapshot.for_each([&](const Key& k, const Value& v) {
        const std::size_t owner = e->router(k, shards);
        if (owner == s) return;
        incoming[owner].push_back(BatchRequest{OpKind::kInsert, k, v});
        outgoing[s].push_back(BatchRequest{OpKind::kErase, k, std::nullopt});
        ++moved;
      });
    }
    const auto by_key = [](const BatchRequest& a, const BatchRequest& b) {
      return key_less(a.key, b.key);
    };
    for (auto& slice : incoming) {
      std::sort(slice.begin(), slice.end(), by_key);
    }
    // Smallest destinations first, each behind its watermark.
    std::vector<std::size_t> order;
    for (std::size_t d = 0; d < shards; ++d) {
      if (incoming[d].empty()) {
        e->set_ready(d);
      } else {
        order.push_back(d);
      }
    }
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return incoming[a].size() < incoming[b].size();
    });
    for (const std::size_t d : order) {
      ctxs_[d].stats.mig_keys_in += incoming[d].size();
      install_slice(d, incoming[d], e);
      e->set_ready(d);
    }
    for (std::size_t s = 0; s < shards; ++s) {
      if (outgoing[s].empty()) continue;
      ctxs_[s].stats.mig_keys_out += outgoing[s].size();
      run_chunked(s, outgoing[s], nullptr);
    }
  }

  static bool key_less(const Key& a, const Key& b) {
    if constexpr (requires { typename Uc::Structure::KeyCompare; }) {
      return typename Uc::Structure::KeyCompare{}(a, b);
    } else {
      return std::less<Key>{}(a, b);
    }
  }

  /// Keys installed per watermark bump: small enough that parked traffic
  /// resumes every few milliseconds as the big cold-destination install
  /// advances, large enough that the bulk ingest path still amortizes.
  static constexpr std::size_t kWatermarkChunk = 8192;

  /// Runs one shard's migration batch (key-sorted, key-unique) through
  /// its install path: as a lane task on `exec` when non-null (FIFO with
  /// client sub-batches, no stop-the-world; `ticket` joined by the
  /// caller), synchronously from this thread otherwise (returns true).
  /// `exec` is the caller's one-time snapshot of the map's executor —
  /// re-reading it here could see an executor attached mid-migration and
  /// enqueue a task whose null ticket the caller would never join.
  /// Either way the backend's bulk ingest_sorted path carries the batch
  /// when available — giant sorted sweeps, a few CASes — with
  /// execute_batch as the generic fallback.
  bool run_shard_batch(ShardExecutor<Uc>* exec, std::size_t s,
                       std::span<const BatchRequest> reqs, bool* results,
                       BatchTicket* ticket) {
    if (exec != nullptr) {
      typename ShardExecutor<Uc>::Task task;
      task.reqs = reqs;
      task.results = results;
      task.ticket = ticket;
      task.sorted_unique = true;
      if (exec->submit(s, task)) return false;
      // Stopping executor: run the batch ourselves, settle the slot.
    }
    Uc& uc = map_->shard(s);
    const std::span<bool> out(results, reqs.size());
    if constexpr (requires { uc.ingest_sorted(ctxs_[s], reqs, out); }) {
      uc.ingest_sorted(ctxs_[s], reqs, out);
    } else {
      uc.execute_batch(ctxs_[s], reqs, out);
    }
    if (ticket != nullptr) ticket->complete_one();
    return true;
  }

  /// Every migration op must land — inserts into territory the
  /// destination never owned, erases of keys the pinned snapshot proved
  /// present, with the moving ranges unreachable to clients meanwhile —
  /// which the debug build asserts.
  static void assert_all_landed(std::span<const BatchRequest> reqs,
                                const bool* results) {
#ifndef NDEBUG
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      PC_DASSERT(results[i],
                 "migration op was a no-op: a moving key escaped the "
                 "freeze or was double-applied");
    }
#else
    (void)reqs;
    (void)results;
#endif
  }

  /// Installs one destination's (possibly partial — one segment's worth)
  /// incoming slice, advancing its watermark chunk by chunk so parked
  /// traffic resumes progressively. Does NOT set the ready bit: the
  /// caller knows when no further segment can contribute.
  void install_slice(std::size_t d, std::vector<BatchRequest>& slice,
                     Epoch* e) {
    run_chunked(d, slice, e);
  }

  /// Applies `reqs` (key-sorted, key-unique) to `shard` in
  /// kWatermarkChunk-sized pieces through run_shard_batch. With a
  /// non-null `e` the pieces are an incoming install for destination
  /// `shard` and the watermark advances after each one; null = erase
  /// sweep, no watermark.
  void run_chunked(std::size_t shard, std::vector<BatchRequest>& reqs,
                   Epoch* e) {
    const auto results = std::make_unique<bool[]>(
        std::min(reqs.size(), kWatermarkChunk));
    BatchTicket ticket;
    ShardExecutor<Uc>* const exec = map_->executor();
    std::size_t off = 0;
    while (off < reqs.size()) {
      const std::size_t n = std::min(kWatermarkChunk, reqs.size() - off);
      const std::span<const BatchRequest> chunk(reqs.data() + off, n);
      if (exec != nullptr) {
        ticket.arm(1);
        run_shard_batch(exec, shard, chunk, results.get(), &ticket);
        ticket.join();
      } else {
        run_shard_batch(exec, shard, chunk, results.get(), nullptr);
      }
      assert_all_landed(chunk, results.get());
      off += n;
      if (e != nullptr) {
        if constexpr (Epoch::kHasWatermark) {
          e->advance_watermark(shard, chunk.back().key);
        }
      }
    }
  }

  Map* map_;
  RebalanceConfig cfg_;
  std::vector<Ctx> ctxs_;
  RebalanceStats stats_;
  MigrationThrottle throttle_;
  std::uint64_t last_parked_ = 0;
  std::mutex mu_;
};

}  // namespace pathcopy::store
