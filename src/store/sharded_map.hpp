// ShardedMap: an ordered map partitioned across S independent universal-
// construction instances.
//
// The paper's UC funnels every update through one Read/CAS register; PR 1
// widened what one CAS can carry (sorted batch-apply), and this layer
// multiplies the registers themselves. Each shard is a full UC — its own
// root atom, reclaimer domain, and version counter — so S shards give S
// concurrent install streams and S times the batch-formation opportunity
// (a shard's combiner gathers only its own keyspace slice, which is a
// denser, more local stream — the regime where the sorted sweep wins).
//
// The map is written purely against the UniversalConstruction concept
// (core/universal.hpp): any backend modeling it — the plain Atom, the
// CombiningAtom, future ones — plugs in unchanged, which is how the test
// suite and bench_sharded sweep backend × shard-count from one harness.
//
// Layering (see src/store/README.md):
//
//   ShardedMap / Session      routing, batch splitting, cross-shard reads
//        │  UniversalConstruction concept
//   Atom / CombiningAtom      install path, helping, version publication
//        │  path-copying structure API
//   Treap / AvlTree / ...     split/merge/join sweeps over immutable nodes
//
// Consistency model: each shard is linearizable on its own. Cross-shard
// reads (size, ordered iteration, read_cut) observe one vector-clock-
// consistent cut: every shard is pinned via the concept's versioned-read
// surface and the pins are validated/re-taken until one instant lies
// inside every shard's stability window (store/version_vector.hpp has
// the full argument). Cross-shard *writes* remain independent installs —
// a multi-shard batch is not atomic across shards; see
// src/store/README.md for exactly what is and is not linearizable.
//
// Ingest pipeline: a ShardExecutor (store/executor.hpp) may be attached
// to the map, after which Session::execute_batch / seed_sorted scatter
// per-shard sub-batches into the per-shard worker queues and join on a
// ticket — S concurrent install streams instead of a sequential shard
// walk. Executor-less maps keep the synchronous path unchanged.
//
// Routing epochs: the router lives in a published RouterEpoch
// (store/router_epoch.hpp), read once per operation/batch, so a
// Rebalancer (store/rebalancer.hpp) can replace the split points while
// sessions run: publish + drain (per-session epoch marks), live-migrate
// the moving ranges off pinned snapshots, settle. Ops on mid-flip moving
// keys park until their new owner holds their data; everything else —
// and everything always, on maps that never rebalance — pays one atomic
// announce per op. Sessions also feed the map's KeySketch (offered-key
// reservoir) that rebalancing plans are fitted to.
//
// Threading model: the map and its shards are shared; each worker thread
// owns one Session (per-shard reclaimer registrations + announcement
// slots + stats). Sessions must not outlive the map. Combining backends
// never recycle announcement slots, so at most MaxThreads sessions may
// ever be created against one map (executor workers consume none of that
// budget: they drive execute_batch/seed_sorted, which use the request
// sentinel slot, and never call register_slot).
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "core/stats.hpp"
#include "core/universal.hpp"
#include "store/executor.hpp"
#include "store/key_sketch.hpp"
#include "store/router.hpp"
#include "store/router_epoch.hpp"
#include "store/version_vector.hpp"
#include "util/assert.hpp"
#include "util/modelcheck.hpp"

namespace pathcopy::store {

template <core::UniversalConstruction Uc,
          class RouterT = HashRouter<typename Uc::Key>>
  requires RouterFor<RouterT, typename Uc::Key>
class ShardedMap {
 public:
  using Key = typename Uc::Key;
  using Value = typename Uc::Value;
  using Structure = typename Uc::Structure;
  using Smr = typename Uc::SmrType;
  using Alloc = typename Uc::AllocType;
  using Ctx = typename Uc::Ctx;
  using OpKind = typename Uc::OpKind;
  using BatchRequest = typename Uc::BatchRequest;
  using ReadOutcome = typename Uc::ReadOutcome;
  using Router = RouterT;
  using Backend = Uc;
  using Epoch = RouterEpoch<RouterT, Key>;

  /// `alloc` is the allocator view used to build the shards' initial
  /// (empty) versions; its retire backend must outlive the map, like for
  /// a single UC. Each shard gets its own reclaimer domain.
  ShardedMap(std::size_t shards, Alloc& alloc, RouterT router = RouterT{}) {
    PC_ASSERT(shards >= 1, "ShardedMap needs at least one shard");
    PC_ASSERT(router.compatible(shards),
              "router incompatible with this shard count");
    epoch_.store(new Epoch(1, std::move(router), nullptr, true, shards),
                 std::memory_order_release);
    shards_.reserve(shards);
    for (std::size_t i = 0; i < shards; ++i) {
      shards_.push_back(std::make_unique<ShardRec>(alloc));
    }
  }

  ShardedMap(const ShardedMap&) = delete;
  ShardedMap& operator=(const ShardedMap&) = delete;

  ~ShardedMap() {
    // Epochs are retained on the chain for the map's lifetime (see
    // router_epoch.hpp); free them all here.
    const Epoch* e = epoch_.load(std::memory_order_acquire);
    while (e != nullptr) {
      const Epoch* prev = e->prev;
      delete e;
      e = prev;
    }
  }

  std::size_t shard_count() const noexcept { return shards_.size(); }
  /// The current epoch's router. The reference stays valid for the map's
  /// lifetime (epochs are retained), but a rebalance may supersede it —
  /// sessions route through one coherent epoch per operation instead.
  const RouterT& router() const noexcept { return current_epoch()->router; }
  std::size_t shard_of(const Key& key) const {
    return current_epoch()->router(key, shards_.size());
  }
  Uc& shard(std::size_t i) { return shards_[i]->uc; }

  // ----- routing epochs (store/router_epoch.hpp has the protocol) -----

  const Epoch* current_epoch() const noexcept {
    return epoch_.load(std::memory_order_acquire);
  }

  /// Rebalancer side, step 1+2: publishes `next` as a new unsettled epoch
  /// and drains every session still mid-operation under the old one. On
  /// return the moving key ranges are frozen — ops on them gate until
  /// settle_epoch — and sources can be snapshotted for extraction. Must
  /// not be called while another epoch is still unsettled (one rebalance
  /// at a time; the Rebalancer serializes itself).
  Epoch* begin_epoch(RouterT next) {
    PC_ASSERT(next.compatible(shards_.size()),
              "new router incompatible with this shard count");
    const Epoch* cur = epoch_.load(std::memory_order_acquire);
    PC_ASSERT(cur->is_settled(), "begin_epoch while a flip is in flight");
    Epoch* e =
        new Epoch(cur->seq + 1, std::move(next), cur, false, shards_.size());
    epoch_.store(e, std::memory_order_seq_cst);
    // The publisher half of the Dekker handshake: sessions may announce
    // (and re-read) between our publish and our drain.
    PC_YIELD("epoch.publish");
    marks_.drain_below(e->seq);
    return e;
  }

  /// Rebalancer side, step 4: the migration's installs are done; gated
  /// ops may proceed against the new owners.
  void settle_epoch(Epoch* e) {
    PC_YIELD("epoch.settle");
    e->settled.store(true, std::memory_order_release);
  }

  // ----- offered-load sketch (fed by sessions, read by the Rebalancer) --

  KeySketch<Key>& sketch() noexcept { return sketch_; }
  const KeySketch<Key>& sketch() const noexcept { return sketch_; }

  /// Monotone count of parked-op waits (ops that gated on a mid-flip
  /// moving key, summed over all sessions). The continuous rebalancer
  /// reads the delta across its own flips as a backpressure signal: a
  /// rising count means client traffic is stalling behind migrations and
  /// the next move should wait.
  std::uint64_t parked_waits() const noexcept {
    return parked_waits_.load(std::memory_order_relaxed);
  }

  /// Off by default — maps that never rebalance don't pay for traffic
  /// sampling. The Rebalancer's constructor turns it on (sessions pick
  /// the flag up on their next operation).
  void set_sketch_enabled(bool on) noexcept {
    sketch_enabled_.store(on, std::memory_order_relaxed);
  }
  bool sketch_enabled() const noexcept {
    return sketch_enabled_.load(std::memory_order_relaxed);
  }

  // ----- shard execution pipeline -----
  //
  // ShardExecutor's constructor attaches itself; its stop()/destructor
  // detaches. While attached, every Session routes execute_batch and
  // seed_sorted through the worker queues. Attach before spawning client
  // threads (the pointer is atomic so racing readers are defined, but
  // mid-run attachment changes which thread runs a given install).

  void attach_executor(ShardExecutor<Uc>& exec) {
    PC_ASSERT(executor_.load(std::memory_order_acquire) == nullptr,
              "an executor is already attached to this map");
    executor_.store(&exec, std::memory_order_release);
  }

  void detach_executor() noexcept {
    executor_.store(nullptr, std::memory_order_release);
  }

  ShardExecutor<Uc>* executor() const noexcept {
    return executor_.load(std::memory_order_acquire);
  }

  class Session;

 private:
  /// Declaration order is destruction order in reverse: the UC is torn
  /// down (freeing the final version through the allocator backend)
  /// before its reclaimer drains.
  struct ShardRec {
    Smr smr;
    Uc uc;
    explicit ShardRec(Alloc& alloc) : uc(smr, alloc) {}
  };

  std::vector<std::unique_ptr<ShardRec>> shards_;
  std::atomic<const Epoch*> epoch_{nullptr};
  EpochMarkRegistry marks_;
  KeySketch<Key> sketch_;
  std::atomic<std::uint64_t> parked_waits_{0};
  std::atomic<bool> sketch_enabled_{false};
  std::atomic<ShardExecutor<Uc>*> executor_{nullptr};
};

/// Per-thread handle on a ShardedMap: one reclaimer registration, one
/// announcement slot, and one OpStats per shard. Create on the owning
/// thread, do not share, destroy before the map.
template <core::UniversalConstruction Uc, class RouterT>
  requires RouterFor<RouterT, typename Uc::Key>
class ShardedMap<Uc, RouterT>::Session {
 public:
  Session(ShardedMap& map, Alloc& alloc)
      : map_(&map), mark_slot_(map.marks_.acquire()) {
    const std::size_t n = map.shard_count();
    ctxs_.reserve(n);
    slots_.reserve(n);
    split_.resize(n);
    sketch_buf_.reserve(kSketchFlush);
    for (std::size_t i = 0; i < n; ++i) {
      ctxs_.emplace_back(map.shards_[i]->smr, alloc);
      slots_.push_back(map.shards_[i]->uc.register_slot());
    }
  }

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;
  Session(Session&& o) noexcept
      : map_(o.map_),
        ctxs_(std::move(o.ctxs_)),
        slots_(std::move(o.slots_)),
        mark_slot_(o.mark_slot_),
        sketch_buf_(std::move(o.sketch_buf_)),
        split_(std::move(o.split_)),
        sub_reqs_by_shard_(std::move(o.sub_reqs_by_shard_)),
        sub_results_(std::move(o.sub_results_)),
        sub_results_cap_(o.sub_results_cap_) {
    o.map_ = nullptr;  // the source no longer owns the mark slot
  }

  ~Session() {
    if (map_ == nullptr) return;  // moved-from
    flush_sketch();
    map_->marks_.release(mark_slot_);
  }

  // ----- point operations (routed to the owning shard) -----
  //
  // Every op routes through one coherent RouterEpoch: the session
  // announces the epoch in its mark slot (so a topology flip drains
  // behind in-flight ops), and an op whose key is mid-migration — its
  // owner differs between the flipping epochs — retries until the epoch
  // settles and the data has arrived at the new owner. Non-moving keys
  // (and all keys on settled epochs, i.e. always outside a rebalance)
  // pay only the announce handshake.

  bool insert(const Key& key, const Value& value) {
    record_key(key);
    const Epoch* e = epoch_enter_for(key);
    const EpochExit scope{this};
    const std::size_t s = e->router(key, map_->shard_count());
    return map_->shards_[s]->uc.insert(ctxs_[s], slots_[s], key, value);
  }

  bool erase(const Key& key) {
    record_key(key);
    const Epoch* e = epoch_enter_for(key);
    const EpochExit scope{this};
    const std::size_t s = e->router(key, map_->shard_count());
    return map_->shards_[s]->uc.erase(ctxs_[s], slots_[s], key);
  }

  bool contains(const Key& key) {
    record_key(key);
    const Epoch* e = epoch_enter_for(key);
    const EpochExit scope{this};
    const std::size_t s = e->router(key, map_->shard_count());
    return map_->shards_[s]->uc.read(
        ctxs_[s], [&](auto snapshot) { return snapshot.contains(key); });
  }

  std::optional<Value> find(const Key& key) {
    record_key(key);
    const Epoch* e = epoch_enter_for(key);
    const EpochExit scope{this};
    const std::size_t s = e->router(key, map_->shard_count());
    return map_->shards_[s]->uc.read(
        ctxs_[s], [&](auto snapshot) -> std::optional<Value> {
          const Value* v = snapshot.find(key);
          return v == nullptr ? std::nullopt : std::optional<Value>(*v);
        });
  }

  /// Batched point lookup: out[i] answers keys[i] (an empty optional
  /// means absent). Client keys may arrive unsorted and with duplicates;
  /// the session splits them into per-shard key-sorted, key-unique probe
  /// lists, resolves each shard's list against ONE pinned snapshot of
  /// that shard (the descent-sharing sweep — no combiner, no version
  /// bump, no allocation on the shard), and scatters the answers back.
  /// With an executor attached, probes ride the shard lanes as read
  /// tasks and coalesce with other sessions' probes (see
  /// ShardExecutor::exec_read_merged); otherwise shards are probed
  /// synchronously from this thread.
  ///
  /// Snapshot semantics: each SHARD's answers come from one snapshot;
  /// keys on different shards may observe different instants (like a
  /// sequence of find() calls, and unlike read_cut). Not re-entrant —
  /// the probe scratch is session state, shared with execute_batch.
  void multi_get(std::span<const Key> keys, std::span<ReadOutcome> out) {
    PC_ASSERT(out.size() >= keys.size(), "multi_get outcome span too small");
    PC_DASSERT(!in_batch_,
               "Session::multi_get re-entered or nested in execute_batch; "
               "sessions are single-owner and their scratch is not "
               "re-entrant");
    in_batch_ = true;
    struct BatchScope {
      bool* flag;
      ~BatchScope() { *flag = false; }
    } scope{&in_batch_};
    if (map_->sketch_enabled()) {
      for (const Key& k : keys) record_key(k);
    }
    // One coherent epoch for the whole probe: every key waits until its
    // route is stable, so no probe reads a mid-migration shard that does
    // not yet hold its data.
    const Epoch* e = epoch_enter_for_range(
        keys.begin(), keys.end(), [](const Key& k) -> const Key& { return k; });
    const EpochExit escope{this};
    const std::size_t n_shards = map_->shard_count();
    split_probe(e, keys);
    if (ShardExecutor<Uc>* exec = map_->executor(); exec != nullptr) {
      scatter_and_join(
          *exec, [&](std::size_t s) { return !rsplit_[s].empty(); },
          [&](std::size_t s) {
            typename ShardExecutor<Uc>::Task task;
            task.keys = std::span<const Key>(probe_keys_by_shard_[s]);
            task.read_scatter = rsplit_[s].data();
            task.read_results = out.data();
            return task;
          },
          [&](std::size_t s) { run_probe_sync(s, out); });
    } else {
      for (std::size_t s = 0; s < n_shards; ++s) {
        if (rsplit_[s].empty()) continue;
        run_probe_sync(s, out);
      }
    }
    // Duplicate client keys were dropped from the probe lists (they must
    // be strictly increasing); every duplicate copies its first
    // occurrence's answer — same snapshot, same value.
    for (const auto& [dst, src] : dup_fixups_) out[dst] = out[src];
  }

  /// Runs f on an immutable snapshot of the shard owning `key` — the
  /// single-shard window where reads stay fully linearizable.
  template <class F>
  decltype(auto) read_shard_of(const Key& key, F&& f) {
    const Epoch* e = epoch_enter_for(key);
    const EpochExit scope{this};
    const std::size_t s = e->router(key, map_->shard_count());
    return map_->shards_[s]->uc.read(ctxs_[s], std::forward<F>(f));
  }

  // ----- cross-shard composed reads (vector-clock-consistent cuts) -----

  /// Runs f on a ConsistentCut of the whole store: every shard pinned,
  /// versions converged to one stable vector clock, so f observes the S
  /// snapshots as they simultaneously were at one instant (see
  /// store/version_vector.hpp). f receives `const ConsistentCut<Uc>&`;
  /// the pins are dropped when read_cut returns, so f must not retain
  /// snapshot references past its return. Retries are charged to the
  /// moving shard's cut_retries counter (surfaced by ShardStatsBoard).
  ///
  /// Not re-entrant: the cut engine is session scratch, so f must not
  /// call another composed read (size/items/for_each_ordered/read_cut)
  /// on the SAME session — the nested collect would drop the outer
  /// cut's pins from under f. Debug builds assert, mirroring the
  /// execute_batch scratch guard.
  template <class F>
  decltype(auto) read_cut(F&& f) {
    PC_DASSERT(!in_cut_,
               "Session::read_cut re-entered (nested composed read on the "
               "same session); the cut scratch is shared per session");
    in_cut_ = true;
    struct CutScope {
      bool* flag;
      ~CutScope() { *flag = false; }
    } cut_scope{&in_cut_};
    // The cut engine is session scratch: collect() reuses its vectors'
    // capacity, so steady-state composed reads allocate nothing. The
    // releaser drops the S reclaimer guards as soon as f returns
    // (holding them past the call would stall reclamation), whatever f
    // returns.
    // The epoch probe ties the cut to the routing topology: it refuses
    // to stabilize while a rebalance is migrating (when a moving key
    // transiently exists in two shards) and restarts if the topology
    // flipped inside the pin window — a cut is wholly-before or
    // wholly-after a rebalance, never mixed. Cuts hold no epoch mark:
    // their snapshots are pin-protected, and the probe — not the drain —
    // is what orders them against flips.
    cut_scratch_.collect(
        map_->shard_count(),
        [&](std::size_t s) -> Uc& { return map_->shards_[s]->uc; },
        [&](std::size_t s) -> Ctx& { return ctxs_[s]; },
        [&](std::size_t s) { ++ctxs_[s].stats.cut_retries; },
        [&]() -> const void* {
          const Epoch* e = map_->epoch_.load(std::memory_order_seq_cst);
          return e->is_settled() ? e : nullptr;
        },
        [&] {
          // An epoch-driven restart re-pins every shard, so it is a cut
          // retry of all S participants — not shard-0 activity (the
          // per-shard epoch_retries column stays op-gate-only).
          for (Ctx& ctx : ctxs_) ++ctx.stats.cut_retries;
        });
    for (std::size_t s = 0; s < ctxs_.size(); ++s) {
      ++ctxs_[s].stats.cut_reads;
    }
    struct Releaser {
      ConsistentCut<Uc>* cut;
      ~Releaser() { cut->release(); }
    } releaser{&cut_scratch_};
    return std::forward<F>(f)(std::as_const(cut_scratch_));
  }

  /// Total size over one consistent cut: the sum the cut's clock vouches
  /// for — all addends belong to the same instant.
  std::size_t size() {
    return read_cut([](const ConsistentCut<Uc>& cut) {
      std::size_t total = 0;
      for (std::size_t s = 0; s < cut.shards(); ++s) {
        total += cut.snapshot(s).size();
      }
      return total;
    });
  }

  /// Ordered in-order visit of (key, value) across every shard, all
  /// shards read at one consistent cut. With an order-preserving router
  /// this is per-shard traversal in shard order; otherwise per-shard
  /// items are collected (still under the cut's pins) and k-way merged.
  template <class F>
  void for_each_ordered(F&& f) {
    read_cut([&](const ConsistentCut<Uc>& cut) {
      if constexpr (RouterT::kOrderPreserving) {
        for (std::size_t s = 0; s < cut.shards(); ++s) {
          cut.snapshot(s).for_each(f);
        }
      } else {
        std::vector<std::vector<std::pair<Key, Value>>> parts;
        parts.reserve(cut.shards());
        for (std::size_t s = 0; s < cut.shards(); ++s) {
          parts.push_back(cut.snapshot(s).items());
        }
        merge_ordered(parts, f);
      }
      return 0;
    });
  }

  std::vector<std::pair<Key, Value>> items() {
    std::vector<std::pair<Key, Value>> out;
    for_each_ordered([&](const Key& k, const Value& v) {
      out.emplace_back(k, v);
    });
    return out;
  }

  /// Bounded ordered range read: appends up to `limit` (key, value)
  /// pairs from [lo, hi) in global key order onto `out`; returns the
  /// number emitted. All shards are read at ONE consistent cut (the
  /// vector-clock pins of read_cut), so the result is a true prefix of
  /// the range as it simultaneously existed — under any router,
  /// including mid-rebalance tablet topologies (a cut never observes a
  /// flipping epoch). With an order-preserving router shards are
  /// consumed in shard order with the limit threaded through; otherwise
  /// every owning shard scans up to `limit` (which of its hits survive
  /// the global cutoff is unknowable shard-locally) and a bounded k-way
  /// merge keeps the first `limit` overall.
  std::size_t scan(const Key& lo, const Key& hi, std::size_t limit,
                   std::vector<std::pair<Key, Value>>& out) {
    if (limit == 0) return 0;
    return read_cut([&](const ConsistentCut<Uc>& cut) -> std::size_t {
      if constexpr (RouterT::kOrderPreserving) {
        std::size_t emitted = 0;
        for (std::size_t s = 0; s < cut.shards() && emitted < limit; ++s) {
          emitted += cut.snapshot(s).scan(lo, hi, limit - emitted, out);
        }
        return emitted;
      } else {
        std::vector<std::vector<std::pair<Key, Value>>> parts(cut.shards());
        for (std::size_t s = 0; s < cut.shards(); ++s) {
          cut.snapshot(s).scan(lo, hi, limit, parts[s]);
        }
        std::vector<std::size_t> head(parts.size(), 0);
        std::size_t emitted = 0;
        while (emitted < limit) {
          std::size_t best = parts.size();
          for (std::size_t s = 0; s < parts.size(); ++s) {
            if (head[s] == parts[s].size()) continue;
            if (best == parts.size() ||
                key_less(parts[s][head[s]].first,
                         parts[best][head[best]].first)) {
              best = s;
            }
          }
          if (best == parts.size()) break;
          out.push_back(parts[best][head[best]]);
          ++head[best];
          ++emitted;
        }
        return emitted;
      }
    });
  }

  // ----- batch ingest (split across shards) -----

  /// Splits a client batch into per-shard, key-sorted sub-batches (stable
  /// on the original order, so same-key chains keep their issue order and
  /// per-op semantics survive the reorder — ops on distinct keys commute,
  /// and same-key ops always land on the same shard), feeds each shard's
  /// install path, and scatters the per-op results back into
  /// `results_out` aligned with `reqs`. With an executor attached the
  /// sub-batches go through the per-shard worker queues concurrently and
  /// this call joins on their ticket; otherwise shards are visited
  /// synchronously from this thread.
  ///
  /// Not re-entrant: the split index and sub-batch storage live in
  /// session scratch (reused across calls, and referenced by in-flight
  /// executor tasks until the join) — a session is a single-owner handle,
  /// so a second execute_batch on the same session before the first
  /// returned would silently corrupt both. Debug builds assert.
  void execute_batch(std::span<const BatchRequest> reqs,
                     std::span<bool> results_out) {
    PC_ASSERT(results_out.size() >= reqs.size(),
              "execute_batch result span too small");
    PC_DASSERT(!in_batch_,
               "Session::execute_batch re-entered; sessions are single-owner "
               "and their batch scratch is not re-entrant");
    in_batch_ = true;
    // Scope guard, not a trailing store: an exception mid-batch (e.g. a
    // scratch vector's bad_alloc) must not leave the session permanently
    // "in batch" and turn every later call into a phantom re-entry abort.
    struct BatchScope {
      bool* flag;
      ~BatchScope() { *flag = false; }
    } scope{&in_batch_};
    if (map_->sketch_enabled()) {
      for (const BatchRequest& r : reqs) record_key(r.key);
    }
    // One coherent epoch for the whole batch (the mark is held through
    // the join, so an in-flight async scatter drains any topology flip
    // behind it).
    const Epoch* e = epoch_enter_for_batch(reqs);
    const EpochExit escope{this};
    ShardExecutor<Uc>* exec = map_->executor();
    const std::size_t n_shards = map_->shard_count();
    if (exec != nullptr) {
      execute_batch_async(*exec, e, reqs, results_out);
    } else if (n_shards == 1) {
      map_->shards_[0]->uc.execute_batch(ctxs_[0], reqs, results_out);
    } else {
      split_batch(e, reqs);
      for (std::size_t s = 0; s < n_shards; ++s) {
        if (split_[s].empty()) continue;
        run_sub_batch_sync(s, results_out);
      }
    }
  }

  /// Single-writer bulk load of strictly increasing (key, value) pairs:
  /// partitions the run into per-shard slices (each still sorted) and
  /// seeds every non-empty shard in one install — all shards in parallel
  /// when an executor is attached.
  template <class It>
  void seed_sorted(It first, It last) {
    const Epoch* e = epoch_enter_for_seed(first, last);
    const EpochExit escope{this};
    std::vector<std::vector<std::pair<Key, Value>>> parts(map_->shard_count());
    for (It it = first; it != last; ++it) {
      parts[e->router(it->first, map_->shard_count())].push_back(*it);
    }
    if (ShardExecutor<Uc>* exec = map_->executor(); exec != nullptr) {
      // parts is local, so the helper's join happens before it dies.
      scatter_and_join(
          *exec, [&](std::size_t s) { return !parts[s].empty(); },
          [&](std::size_t s) {
            typename ShardExecutor<Uc>::Task task;
            task.seed = &parts[s];
            return task;
          },
          [&](std::size_t s) {
            map_->shards_[s]->uc.seed_sorted(ctxs_[s], parts[s].begin(),
                                             parts[s].end());
          });
      return;
    }
    for (std::size_t s = 0; s < parts.size(); ++s) {
      if (parts[s].empty()) continue;
      map_->shards_[s]->uc.seed_sorted(ctxs_[s], parts[s].begin(),
                                       parts[s].end());
    }
  }

  // ----- stats -----

  const core::OpStats& shard_stats(std::size_t s) const {
    return ctxs_[s].stats;
  }

  /// Whole-store roll-up of this session's counters.
  core::OpStats stats() const {
    core::OpStats total;
    for (const Ctx& ctx : ctxs_) total += ctx.stats;
    return total;
  }

  /// Folds this session into a cross-thread accumulator (anything with
  /// add(shard, OpStats) — see store/shard_stats.hpp).
  template <class Board>
  void fold_into(Board& board) const {
    for (std::size_t s = 0; s < ctxs_.size(); ++s) {
      board.add(s, ctxs_[s].stats);
    }
  }

 private:
  static bool key_less(const Key& a, const Key& b) {
    if constexpr (requires { typename Structure::KeyCompare; }) {
      return typename Structure::KeyCompare{}(a, b);
    } else {
      return std::less<Key>{}(a, b);
    }
  }

  // ----- routing-epoch protocol (session side; see router_epoch.hpp) ---

  /// Announces the current epoch in this session's mark slot and
  /// confirms the pointer did not move across the announce (the Dekker
  /// handshake begin_epoch's drain pairs with). The mark stays published
  /// until epoch_exit().
  const Epoch* epoch_announce() {
    for (;;) {
      const Epoch* e = map_->epoch_.load(std::memory_order_acquire);
      EpochMarkRegistry::announce(mark_slot_, e->seq);
      if (map_->epoch_.load(std::memory_order_seq_cst) == e) return e;
      // The epoch moved under the announce; the mark may name a stale
      // epoch — re-announce against the new one.
    }
  }

  void epoch_exit() { EpochMarkRegistry::clear(mark_slot_); }

  struct EpochExit {
    Session* sess;
    ~EpochExit() { sess->epoch_exit(); }
  };

  /// One parked wait: a few polite yields, then short sleeps — parked
  /// ops must not starve the very migration they are waiting on (on a
  /// core-constrained host a spin loop would).
  static void gate_backoff(unsigned& spins) {
    // Parked-op release point: under the model checker this is where a
    // gated op waits for the migration's ready/settle stores.
    PC_YIELD("gate.park");
    if (spins++ < 8) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }

  /// True when `key`'s route under `e` is safe to execute now: the epoch
  /// is settled, the key did not move at the flip, or its new owner has
  /// already installed its incoming slice at least through `key` (the
  /// per-destination ready bit or watermark — the stale source copy is
  /// unreachable because every post-drain op routes by the new bounds,
  /// so the op observes complete, exact state for its key).
  bool key_route_stable(const Epoch* e, const Key& key) const {
    const std::size_t shards = map_->shard_count();
    return e->is_settled() || !e->moves(key, shards) ||
           e->is_ready_for(e->router(key, shards), key, &Session::key_less);
  }

  /// Enters an epoch under which `key`'s owner is stable. A mid-flip
  /// moving key's op parks here (mark cleared, so it never blocks the
  /// drain) until the migration lands its destination's data.
  const Epoch* epoch_enter_for(const Key& key) {
    unsigned spins = 0;
    for (;;) {
      const Epoch* e = epoch_announce();
      if (key_route_stable(e, key)) return e;
      epoch_exit();
      ++ctxs_[e->router(key, map_->shard_count())].stats.epoch_retries;
      map_->parked_waits_.fetch_add(1, std::memory_order_relaxed);
      gate_backoff(spins);
    }
  }

  /// Range form of the gate — one loop shared by the batch and seed
  /// entry points: the whole client batch waits until every key it
  /// touches routes stably, so one batch splits under one topology with
  /// every sub-batch's destination already holding its data. `key_of`
  /// projects an element to its key.
  template <class It, class Proj>
  const Epoch* epoch_enter_for_range(It first, It last, Proj&& key_of) {
    unsigned spins = 0;
    for (;;) {
      const Epoch* e = epoch_announce();
      if (e->is_settled()) return e;
      const Key* parked = nullptr;
      for (It it = first; it != last; ++it) {
        const Key& k = key_of(*it);
        if (!key_route_stable(e, k)) {
          parked = &k;
          break;
        }
      }
      if (parked == nullptr) return e;
      epoch_exit();
      ++ctxs_[e->router(*parked, map_->shard_count())].stats.epoch_retries;
      map_->parked_waits_.fetch_add(1, std::memory_order_relaxed);
      gate_backoff(spins);
    }
  }

  const Epoch* epoch_enter_for_batch(std::span<const BatchRequest> reqs) {
    return epoch_enter_for_range(
        reqs.begin(), reqs.end(),
        [](const BatchRequest& r) -> const Key& { return r.key; });
  }

  template <class It>
  const Epoch* epoch_enter_for_seed(It first, It last) {
    return epoch_enter_for_range(
        first, last, [](const auto& item) -> const Key& { return item.first; });
  }

  // ----- offered-load sketch feed -----

  /// Buffers one offered key; flushed into the map's KeySketch every
  /// kSketchFlush keys (and on session destruction), so the hot path
  /// never takes the sketch mutex.
  void record_key(const Key& key) {
    if (!map_->sketch_enabled()) return;
    sketch_buf_.push_back(key);
    if (sketch_buf_.size() >= kSketchFlush) flush_sketch();
  }

  void flush_sketch() {
    if (sketch_buf_.empty()) return;
    map_->sketch_.offer(std::span<const Key>(sketch_buf_));
    sketch_buf_.clear();
  }

  /// Routes reqs into split_ (client indices per shard, key-sorted
  /// stably) and materializes the per-shard sub-batches in
  /// sub_reqs_by_shard_. split_[s] doubles as the scatter map: sub-op j
  /// of shard s answers client op split_[s][j].
  void split_batch(const Epoch* e, std::span<const BatchRequest> reqs) {
    for (auto& idx : split_) idx.clear();
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      split_[e->router(reqs[i].key, map_->shard_count())].push_back(i);
    }
    sub_reqs_by_shard_.resize(map_->shard_count());
    for (std::size_t s = 0; s < split_.size(); ++s) {
      std::vector<std::size_t>& idx = split_[s];
      std::vector<BatchRequest>& sub = sub_reqs_by_shard_[s];
      sub.clear();
      if (idx.empty()) continue;
      std::stable_sort(idx.begin(), idx.end(),
                       [&](std::size_t a, std::size_t b) {
                         return key_less(reqs[a].key, reqs[b].key);
                       });
      sub.reserve(idx.size());
      for (const std::size_t i : idx) sub.push_back(reqs[i]);
    }
  }

  /// Routes probe keys into rsplit_ (client indices per shard, key-sorted
  /// and DEDUPLICATED — probe lists must be strictly increasing) and
  /// materializes the per-shard key lists. rsplit_[s] doubles as the
  /// scatter map; dropped duplicates are recorded in dup_fixups_ as
  /// (duplicate index, kept index) pairs to settle after the probes.
  void split_probe(const Epoch* e, std::span<const Key> keys) {
    rsplit_.resize(map_->shard_count());
    probe_keys_by_shard_.resize(map_->shard_count());
    for (auto& idx : rsplit_) idx.clear();
    dup_fixups_.clear();
    for (std::size_t i = 0; i < keys.size(); ++i) {
      rsplit_[e->router(keys[i], map_->shard_count())].push_back(i);
    }
    for (std::size_t s = 0; s < rsplit_.size(); ++s) {
      std::vector<std::size_t>& idx = rsplit_[s];
      std::vector<Key>& probe = probe_keys_by_shard_[s];
      probe.clear();
      if (idx.empty()) continue;
      std::stable_sort(idx.begin(), idx.end(),
                       [&](std::size_t a, std::size_t b) {
                         return key_less(keys[a], keys[b]);
                       });
      std::size_t w = 0;
      for (std::size_t j = 0; j < idx.size(); ++j) {
        if (w > 0 && !key_less(keys[idx[w - 1]], keys[idx[j]])) {
          dup_fixups_.emplace_back(idx[j], idx[w - 1]);
        } else {
          idx[w++] = idx[j];
        }
      }
      idx.resize(w);
      probe.reserve(w);
      for (const std::size_t i : idx) probe.push_back(keys[i]);
    }
  }

  /// Probes shard s's already-split key list synchronously on this
  /// thread and scatters the answers — the executor-less path, and the
  /// fallback for a submit that raced a stop().
  void run_probe_sync(std::size_t s, std::span<ReadOutcome> out) {
    std::vector<std::size_t>& idx = rsplit_[s];
    probe_results_.clear();
    probe_results_.resize(idx.size());
    map_->shards_[s]->uc.multi_get(
        ctxs_[s], std::span<const Key>(probe_keys_by_shard_[s]),
        std::span<ReadOutcome>(probe_results_));
    for (std::size_t j = 0; j < idx.size(); ++j) {
      out[idx[j]] = std::move(probe_results_[j]);
    }
  }

  /// Runs shard s's already-split sub-batch synchronously on this thread
  /// and scatters its results — the executor-less path, and the fallback
  /// for a submit that raced a stop().
  void run_sub_batch_sync(std::size_t s, std::span<bool> results_out) {
    std::vector<std::size_t>& idx = split_[s];
    if (sub_results_cap_ < idx.size()) {
      sub_results_ = std::make_unique<bool[]>(idx.size());
      sub_results_cap_ = idx.size();
    }
    map_->shards_[s]->uc.execute_batch(
        ctxs_[s], std::span<const BatchRequest>(sub_reqs_by_shard_[s]),
        std::span<bool>(sub_results_.get(), idx.size()));
    for (std::size_t j = 0; j < idx.size(); ++j) {
      results_out[idx[j]] = sub_results_[j];
    }
  }

  /// The one home of the scatter/join protocol: arms a ticket for every
  /// shard with work, submits make_task(s) to each, and joins. A submit
  /// refused by a stopping executor is run synchronously via run_sync(s)
  /// and its ticket slot settled by this thread — callers never drop ops
  /// or block on a lane that will not drain them. All storage the tasks
  /// reference must outlive the join (it happens before this returns).
  template <class HasWork, class MakeTask, class RunSync>
  void scatter_and_join(ShardExecutor<Uc>& exec, HasWork&& has_work,
                        MakeTask&& make_task, RunSync&& run_sync) {
    BatchTicket ticket;
    const std::size_t n = map_->shard_count();
    unsigned pending = 0;
    for (std::size_t s = 0; s < n; ++s) {
      if (has_work(s)) ++pending;
    }
    if (pending == 0) return;
    ticket.arm(pending);
    for (std::size_t s = 0; s < n; ++s) {
      if (!has_work(s)) continue;
      typename ShardExecutor<Uc>::Task task = make_task(s);
      task.ticket = &ticket;
      if (!exec.submit(s, task)) {
        run_sync(s);
        ticket.complete_one();
      }
    }
    ticket.join();
  }

  /// Scatters the split batch into the executor's per-shard queues and
  /// joins. Workers write each result straight into results_out through
  /// the split_ scatter map; the ticket's completion happens-before
  /// join() returns, so no second client-side pass is needed.
  void execute_batch_async(ShardExecutor<Uc>& exec, const Epoch* e,
                           std::span<const BatchRequest> reqs,
                           std::span<bool> results_out) {
    using Task = typename ShardExecutor<Uc>::Task;
    // Even a 1-shard map goes through split_batch: the sub-batches come
    // out stably key-sorted, which is what makes them `presorted` —
    // eligible for the executor's cross-ticket coalescing merge.
    split_batch(e, reqs);
    scatter_and_join(
        exec, [&](std::size_t s) { return !split_[s].empty(); },
        [&](std::size_t s) {
          Task task;
          task.reqs = std::span<const BatchRequest>(sub_reqs_by_shard_[s]);
          task.scatter = split_[s].data();
          task.results = results_out.data();
          task.presorted = true;
          return task;
        },
        [&](std::size_t s) { run_sub_batch_sync(s, results_out); });
    // split_/sub_reqs_by_shard_ stayed untouched until the join above.
  }

  /// S-way merge over per-shard sorted runs; S is small (tens), so a
  /// linear head scan beats heap bookkeeping.
  template <class F>
  static void merge_ordered(
      std::vector<std::vector<std::pair<Key, Value>>>& parts, F&& f) {
    std::vector<std::size_t> head(parts.size(), 0);
    for (;;) {
      std::size_t best = parts.size();
      for (std::size_t s = 0; s < parts.size(); ++s) {
        if (head[s] == parts[s].size()) continue;
        if (best == parts.size() ||
            key_less(parts[s][head[s]].first, parts[best][head[best]].first)) {
          best = s;
        }
      }
      if (best == parts.size()) return;
      const auto& [k, v] = parts[best][head[best]];
      f(k, v);
      ++head[best];
    }
  }

  /// Keys buffered per session before one locked flush into the sketch.
  static constexpr std::size_t kSketchFlush = 256;

  ShardedMap* map_;
  std::vector<Ctx> ctxs_;
  std::vector<unsigned> slots_;
  // This session's EpochMarkRegistry slot (stable address; returned to
  // the registry's free list on destruction).
  EpochMarkRegistry::Slot* mark_slot_ = nullptr;
  std::vector<Key> sketch_buf_;  // offered keys awaiting a sketch flush
  // Batch-split scratch, reused across execute_batch calls and referenced
  // by in-flight executor tasks until their ticket joins — which is why
  // execute_batch is not re-entrant (in_batch_ asserts in debug builds).
  std::vector<std::vector<std::size_t>> split_;
  std::vector<std::vector<BatchRequest>> sub_reqs_by_shard_;
  std::unique_ptr<bool[]> sub_results_;
  std::size_t sub_results_cap_ = 0;
  // Probe-split scratch (multi_get), same lifetime contract as the batch
  // scratch above: referenced by in-flight read tasks until the join.
  std::vector<std::vector<std::size_t>> rsplit_;
  std::vector<std::vector<Key>> probe_keys_by_shard_;
  std::vector<ReadOutcome> probe_results_;
  std::vector<std::pair<std::size_t, std::size_t>> dup_fixups_;
  bool in_batch_ = false;
  bool in_cut_ = false;
  // Consistent-cut scratch (pins dropped before read_cut returns; only
  // vector capacity persists between calls) — shared per session, hence
  // the read_cut re-entrancy assert.
  ConsistentCut<Uc> cut_scratch_;
};

}  // namespace pathcopy::store
