// ShardedMap: an ordered map partitioned across S independent universal-
// construction instances.
//
// The paper's UC funnels every update through one Read/CAS register; PR 1
// widened what one CAS can carry (sorted batch-apply), and this layer
// multiplies the registers themselves. Each shard is a full UC — its own
// root atom, reclaimer domain, and version counter — so S shards give S
// concurrent install streams and S times the batch-formation opportunity
// (a shard's combiner gathers only its own keyspace slice, which is a
// denser, more local stream — the regime where the sorted sweep wins).
//
// The map is written purely against the UniversalConstruction concept
// (core/universal.hpp): any backend modeling it — the plain Atom, the
// CombiningAtom, future ones — plugs in unchanged, which is how the test
// suite and bench_sharded sweep backend × shard-count from one harness.
//
// Layering (see src/store/README.md):
//
//   ShardedMap / Session      routing, batch splitting, cross-shard reads
//        │  UniversalConstruction concept
//   Atom / CombiningAtom      install path, helping, version publication
//        │  path-copying structure API
//   Treap / AvlTree / ...     split/merge/join sweeps over immutable nodes
//
// Consistency model: each shard is linearizable on its own. Cross-shard
// reads (size, ordered iteration) compose independently-pinned per-shard
// snapshots — every shard's contribution is a real version of that shard,
// but the S pins are not atomic with each other. Snapshot-consistent
// cross-shard reads are a ROADMAP follow-on (composing the per-shard
// version counters into a vector clock).
//
// Threading model: the map and its shards are shared; each worker thread
// owns one Session (per-shard reclaimer registrations + announcement
// slots + stats). Sessions must not outlive the map. Combining backends
// never recycle announcement slots, so at most MaxThreads sessions may
// ever be created against one map.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "core/stats.hpp"
#include "core/universal.hpp"
#include "store/router.hpp"
#include "util/assert.hpp"

namespace pathcopy::store {

template <core::UniversalConstruction Uc,
          class RouterT = HashRouter<typename Uc::Key>>
  requires RouterFor<RouterT, typename Uc::Key>
class ShardedMap {
 public:
  using Key = typename Uc::Key;
  using Value = typename Uc::Value;
  using Structure = typename Uc::Structure;
  using Smr = typename Uc::SmrType;
  using Alloc = typename Uc::AllocType;
  using Ctx = typename Uc::Ctx;
  using OpKind = typename Uc::OpKind;
  using BatchRequest = typename Uc::BatchRequest;
  using Router = RouterT;

  /// `alloc` is the allocator view used to build the shards' initial
  /// (empty) versions; its retire backend must outlive the map, like for
  /// a single UC. Each shard gets its own reclaimer domain.
  ShardedMap(std::size_t shards, Alloc& alloc, RouterT router = RouterT{})
      : router_(std::move(router)) {
    PC_ASSERT(shards >= 1, "ShardedMap needs at least one shard");
    PC_ASSERT(router_.compatible(shards),
              "router incompatible with this shard count");
    shards_.reserve(shards);
    for (std::size_t i = 0; i < shards; ++i) {
      shards_.push_back(std::make_unique<ShardRec>(alloc));
    }
  }

  ShardedMap(const ShardedMap&) = delete;
  ShardedMap& operator=(const ShardedMap&) = delete;

  std::size_t shard_count() const noexcept { return shards_.size(); }
  const RouterT& router() const noexcept { return router_; }
  std::size_t shard_of(const Key& key) const {
    return router_(key, shards_.size());
  }
  Uc& shard(std::size_t i) { return shards_[i]->uc; }

  class Session;

 private:
  /// Declaration order is destruction order in reverse: the UC is torn
  /// down (freeing the final version through the allocator backend)
  /// before its reclaimer drains.
  struct ShardRec {
    Smr smr;
    Uc uc;
    explicit ShardRec(Alloc& alloc) : uc(smr, alloc) {}
  };

  std::vector<std::unique_ptr<ShardRec>> shards_;
  RouterT router_;
};

/// Per-thread handle on a ShardedMap: one reclaimer registration, one
/// announcement slot, and one OpStats per shard. Create on the owning
/// thread, do not share, destroy before the map.
template <core::UniversalConstruction Uc, class RouterT>
  requires RouterFor<RouterT, typename Uc::Key>
class ShardedMap<Uc, RouterT>::Session {
 public:
  Session(ShardedMap& map, Alloc& alloc) : map_(&map) {
    const std::size_t n = map.shard_count();
    ctxs_.reserve(n);
    slots_.reserve(n);
    split_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      ctxs_.emplace_back(map.shards_[i]->smr, alloc);
      slots_.push_back(map.shards_[i]->uc.register_slot());
    }
  }

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;
  Session(Session&&) noexcept = default;

  // ----- point operations (routed to the owning shard) -----

  bool insert(const Key& key, const Value& value) {
    const std::size_t s = map_->shard_of(key);
    return map_->shards_[s]->uc.insert(ctxs_[s], slots_[s], key, value);
  }

  bool erase(const Key& key) {
    const std::size_t s = map_->shard_of(key);
    return map_->shards_[s]->uc.erase(ctxs_[s], slots_[s], key);
  }

  bool contains(const Key& key) {
    const std::size_t s = map_->shard_of(key);
    return map_->shards_[s]->uc.read(
        ctxs_[s], [&](auto snapshot) { return snapshot.contains(key); });
  }

  std::optional<Value> find(const Key& key) {
    const std::size_t s = map_->shard_of(key);
    return map_->shards_[s]->uc.read(
        ctxs_[s], [&](auto snapshot) -> std::optional<Value> {
          const Value* v = snapshot.find(key);
          return v == nullptr ? std::nullopt : std::optional<Value>(*v);
        });
  }

  /// Runs f on an immutable snapshot of the shard owning `key` — the
  /// single-shard window where reads stay fully linearizable.
  template <class F>
  decltype(auto) read_shard_of(const Key& key, F&& f) {
    const std::size_t s = map_->shard_of(key);
    return map_->shards_[s]->uc.read(ctxs_[s], std::forward<F>(f));
  }

  // ----- cross-shard composed reads -----

  /// Sum of per-shard sizes; each addend is linearizable, the sum is not
  /// atomic across shards (see the consistency note in the header).
  std::size_t size() {
    std::size_t total = 0;
    for (std::size_t s = 0; s < map_->shard_count(); ++s) {
      total += map_->shards_[s]->uc.size(ctxs_[s]);
    }
    return total;
  }

  /// Ordered in-order visit of (key, value) across every shard. With an
  /// order-preserving router this is per-shard traversal in shard order;
  /// otherwise per-shard snapshots are collected and k-way merged.
  template <class F>
  void for_each_ordered(F&& f) {
    if constexpr (RouterT::kOrderPreserving) {
      for (std::size_t s = 0; s < map_->shard_count(); ++s) {
        map_->shards_[s]->uc.read(ctxs_[s], [&](auto snapshot) {
          snapshot.for_each(f);
          return 0;
        });
      }
    } else {
      std::vector<std::vector<std::pair<Key, Value>>> parts = snapshot_items();
      merge_ordered(parts, f);
    }
  }

  std::vector<std::pair<Key, Value>> items() {
    std::vector<std::pair<Key, Value>> out;
    for_each_ordered([&](const Key& k, const Value& v) {
      out.emplace_back(k, v);
    });
    return out;
  }

  // ----- batch ingest (split across shards) -----

  /// Splits a client batch into per-shard, key-sorted sub-batches (stable
  /// on the original order, so same-key chains keep their issue order and
  /// per-op semantics survive the reorder — ops on distinct keys commute,
  /// and same-key ops always land on the same shard), feeds each shard's
  /// install path, and scatters the per-op results back into
  /// `results_out` aligned with `reqs`.
  void execute_batch(std::span<const BatchRequest> reqs,
                     std::span<bool> results_out) {
    PC_ASSERT(results_out.size() >= reqs.size(),
              "execute_batch result span too small");
    const std::size_t n_shards = map_->shard_count();
    if (n_shards == 1) {
      map_->shards_[0]->uc.execute_batch(ctxs_[0], reqs, results_out);
      return;
    }
    for (auto& idx : split_) idx.clear();
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      split_[map_->shard_of(reqs[i].key)].push_back(i);
    }
    for (std::size_t s = 0; s < n_shards; ++s) {
      std::vector<std::size_t>& idx = split_[s];
      if (idx.empty()) continue;
      std::stable_sort(idx.begin(), idx.end(),
                       [&](std::size_t a, std::size_t b) {
                         return key_less(reqs[a].key, reqs[b].key);
                       });
      sub_reqs_.clear();
      for (const std::size_t i : idx) sub_reqs_.push_back(reqs[i]);
      if (sub_results_cap_ < idx.size()) {
        sub_results_ = std::make_unique<bool[]>(idx.size());
        sub_results_cap_ = idx.size();
      }
      map_->shards_[s]->uc.execute_batch(
          ctxs_[s], std::span<const BatchRequest>(sub_reqs_),
          std::span<bool>(sub_results_.get(), idx.size()));
      for (std::size_t j = 0; j < idx.size(); ++j) {
        results_out[idx[j]] = sub_results_[j];
      }
    }
  }

  /// Single-writer bulk load of strictly increasing (key, value) pairs:
  /// partitions the run into per-shard slices (each still sorted) and
  /// seeds every non-empty shard in one install.
  template <class It>
  void seed_sorted(It first, It last) {
    std::vector<std::vector<std::pair<Key, Value>>> parts(map_->shard_count());
    for (It it = first; it != last; ++it) {
      parts[map_->shard_of(it->first)].push_back(*it);
    }
    for (std::size_t s = 0; s < parts.size(); ++s) {
      if (parts[s].empty()) continue;
      map_->shards_[s]->uc.seed_sorted(ctxs_[s], parts[s].begin(),
                                       parts[s].end());
    }
  }

  // ----- stats -----

  const core::OpStats& shard_stats(std::size_t s) const {
    return ctxs_[s].stats;
  }

  /// Whole-store roll-up of this session's counters.
  core::OpStats stats() const {
    core::OpStats total;
    for (const Ctx& ctx : ctxs_) total += ctx.stats;
    return total;
  }

  /// Folds this session into a cross-thread accumulator (anything with
  /// add(shard, OpStats) — see store/shard_stats.hpp).
  template <class Board>
  void fold_into(Board& board) const {
    for (std::size_t s = 0; s < ctxs_.size(); ++s) {
      board.add(s, ctxs_[s].stats);
    }
  }

 private:
  static bool key_less(const Key& a, const Key& b) {
    if constexpr (requires { typename Structure::KeyCompare; }) {
      return typename Structure::KeyCompare{}(a, b);
    } else {
      return std::less<Key>{}(a, b);
    }
  }

  std::vector<std::vector<std::pair<Key, Value>>> snapshot_items() {
    std::vector<std::vector<std::pair<Key, Value>>> parts;
    parts.reserve(map_->shard_count());
    for (std::size_t s = 0; s < map_->shard_count(); ++s) {
      parts.push_back(map_->shards_[s]->uc.read(ctxs_[s], [](auto snapshot) {
        return snapshot.items();
      }));
    }
    return parts;
  }

  /// S-way merge over per-shard sorted runs; S is small (tens), so a
  /// linear head scan beats heap bookkeeping.
  template <class F>
  static void merge_ordered(
      std::vector<std::vector<std::pair<Key, Value>>>& parts, F&& f) {
    std::vector<std::size_t> head(parts.size(), 0);
    for (;;) {
      std::size_t best = parts.size();
      for (std::size_t s = 0; s < parts.size(); ++s) {
        if (head[s] == parts[s].size()) continue;
        if (best == parts.size() ||
            key_less(parts[s][head[s]].first, parts[best][head[best]].first)) {
          best = s;
        }
      }
      if (best == parts.size()) return;
      const auto& [k, v] = parts[best][head[best]];
      f(k, v);
      ++head[best];
    }
  }

  ShardedMap* map_;
  std::vector<Ctx> ctxs_;
  std::vector<unsigned> slots_;
  // Batch-split scratch, reused across execute_batch calls.
  std::vector<std::vector<std::size_t>> split_;
  std::vector<BatchRequest> sub_reqs_;
  std::unique_ptr<bool[]> sub_results_;
  std::size_t sub_results_cap_ = 0;
};

}  // namespace pathcopy::store
