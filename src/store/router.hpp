// Routers: pluggable keyspace-partitioning policies for the store layer.
//
// A router maps (key, shard_count) -> shard index. Two policies cover the
// two regimes the sharded bench sweeps:
//
//   * HashRouter  — splitmix64-finalized hash, modulo shards. Spreads any
//     key distribution (including contiguous and hot-range keys) evenly,
//     at the price of destroying key locality: a client batch of nearby
//     keys scatters across shards, so per-shard sub-batches share little
//     spine. Order is not preserved across shard indices, so ordered
//     cross-shard iteration needs a k-way merge.
//   * RangeRouter — explicit sorted split points; shard i owns the
//     half-open interval [bounds[i-1], bounds[i]). Preserves both order
//     (shard index is monotone in the key, so ordered iteration is plain
//     concatenation) and locality (a clustered batch lands on one shard's
//     sorted-sweep install path), at the price of skew under non-uniform
//     key distributions.
//
// RouterFor is the contract ShardedMap checks: routing, a shard-count
// compatibility probe (range routers are built for one specific count),
// and the kOrderPreserving flag that picks the iteration strategy.
#pragma once

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <span>
#include <vector>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace pathcopy::store {

/// The routing contract. kOrderPreserving == true promises monotonicity:
/// k1 < k2 implies shard(k1) <= shard(k2).
template <class R, class K>
concept RouterFor = requires(const R r, const K& key, std::size_t shards) {
  { r(key, shards) } -> std::convertible_to<std::size_t>;
  { r.compatible(shards) } -> std::convertible_to<bool>;
  { R::kOrderPreserving } -> std::convertible_to<bool>;
};

template <class K, class Hash = std::hash<K>>
struct HashRouter {
  static constexpr bool kOrderPreserving = false;

  /// std::hash of an integer is the identity on common implementations;
  /// the mix64 finalizer keeps contiguous keys from striping predictably.
  std::size_t operator()(const K& key, std::size_t shards) const {
    return static_cast<std::size_t>(
        util::mix64(static_cast<std::uint64_t>(Hash{}(key))) % shards);
  }

  bool compatible(std::size_t shards) const { return shards >= 1; }
};

template <class K, class Cmp = std::less<K>>
class RangeRouter {
 public:
  static constexpr bool kOrderPreserving = true;

  /// No split points: routes everything to shard 0 (single-shard maps).
  RangeRouter() = default;

  /// bounds must be strictly increasing; a router with B bounds serves
  /// exactly B + 1 shards.
  explicit RangeRouter(std::vector<K> bounds) : bounds_(std::move(bounds)) {
    Cmp cmp;
    for (std::size_t i = 1; i < bounds_.size(); ++i) {
      PC_ASSERT(cmp(bounds_[i - 1], bounds_[i]),
                "RangeRouter bounds must be strictly increasing");
    }
  }

  /// Equal-width split of [lo, hi) into `shards` intervals. The interval
  /// arithmetic runs in unsigned 64-bit (two's-complement wrap makes
  /// hi - lo the true width for any signed lo < hi), so full-range key
  /// spaces split without signed overflow.
  static RangeRouter uniform(K lo, K hi, std::size_t shards)
    requires std::integral<K>
  {
    PC_ASSERT(shards >= 1 && lo < hi, "uniform needs shards >= 1 and lo < hi");
    const std::uint64_t width =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo);
    PC_ASSERT(width >= shards, "uniform needs at least one key per shard");
    std::vector<K> bounds;
    bounds.reserve(shards - 1);
    for (std::size_t i = 1; i < shards; ++i) {
      // floor(width * i / shards) without the 128-bit product: the
      // remainder term re-adds what the truncated quotient dropped.
      const std::uint64_t off =
          width / shards * i + width % shards * i / shards;
      bounds.push_back(
          static_cast<K>(static_cast<std::uint64_t>(lo) + off));
    }
    return RangeRouter{std::move(bounds)};
  }

  /// Quantile-fitted split of a *sampled key distribution*: bound i is the
  /// i/shards-quantile of `sorted_samples`, so each shard sees ~the same
  /// share of the offered load the sample was drawn from — the constructor
  /// the Rebalancer uses to turn a KeySketch reservoir into a topology,
  /// and usable standalone for statically fitting a known workload.
  /// Duplicate quantiles (a heavy hitter spanning several quantile slots)
  /// are resolved by bumping each bound just past the previous one, which
  /// keeps the bounds strictly increasing at the price of some near-empty
  /// shards — the honest rendering of "one key carries > 1/S of the load".
  static RangeRouter from_samples(std::span<const K> sorted_samples,
                                  std::size_t shards)
    requires std::integral<K>
  {
    PC_ASSERT(shards >= 1, "from_samples needs shards >= 1");
    PC_ASSERT(!sorted_samples.empty() || shards == 1,
              "from_samples needs a non-empty sample");
    std::vector<K> bounds;
    bounds.reserve(shards - 1);
    const std::size_t n = sorted_samples.size();
    for (std::size_t i = 1; i < shards; ++i) {
      K q = sorted_samples[i * n / shards];
      if (!bounds.empty() && q <= bounds.back()) {
        PC_ASSERT(bounds.back() < std::numeric_limits<K>::max(),
                  "sample quantiles saturate the key type");
        q = bounds.back() + 1;
      }
      bounds.push_back(q);
    }
    return RangeRouter{std::move(bounds)};
  }

  std::size_t operator()(const K& key, std::size_t shards) const {
    PC_DASSERT(compatible(shards), "router built for a different shard count");
    (void)shards;
    // First bound strictly greater than key = index of the owning shard;
    // keys below every bound go to shard 0, keys at or above the last
    // bound to the last shard.
    std::size_t lo = 0, hi = bounds_.size();
    Cmp cmp;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (cmp(key, bounds_[mid])) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    return lo;
  }

  bool compatible(std::size_t shards) const {
    return bounds_.size() + 1 == shards;
  }

  const std::vector<K>& bounds() const noexcept { return bounds_; }

 private:
  std::vector<K> bounds_;
};

}  // namespace pathcopy::store
