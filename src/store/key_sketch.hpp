// KeySketch: a uniform reservoir sample of the store's offered key
// traffic — the distribution model the Rebalancer fits split points to.
//
// Quantile fitting needs an unbiased sample of the keys *operations
// target* (offered load), not of the keys *present* (stored mass): a
// Zipfian workload hammers a handful of keys that occupy a sliver of the
// keyspace, and balancing stored bytes would leave the hot shard as hot
// as before. Classic reservoir sampling (Vitter's algorithm R) over the
// op stream gives exactly that: after N offered keys, every offered key
// is in the reservoir with probability R/N, so the reservoir's empirical
// quantiles converge on the offered distribution's quantiles.
//
// Hot-path cost is kept off the sessions: each Session buffers keys
// locally (plain vector, no atomics) and flushes a few hundred at a time
// through offer(), which takes the sketch mutex once per flush. At the
// bench's op rates that is one brief lock every ~256 ops per thread.
//
// reset() forgets the stream — the Rebalancer calls it after a migration
// so the next plan is fitted to post-flip traffic rather than to a stale
// mixture (a moving hotspot would otherwise drag its history behind it).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace pathcopy::store {

template <class K>
class KeySketch {
 public:
  explicit KeySketch(std::size_t reservoir = 4096,
                     std::uint64_t seed = 0x5ce7cb9151ab3645ULL)
      : capacity_(reservoir), rng_(seed) {
    sample_.reserve(capacity_);
  }

  /// Folds one session's buffered keys into the reservoir.
  void offer(std::span<const K> keys) {
    const std::lock_guard<std::mutex> lock(mu_);
    for (const K& k : keys) {
      ++offered_;
      if (sample_.size() < capacity_) {
        sample_.push_back(k);
      } else {
        const std::uint64_t j = rng_.below(offered_);
        if (j < capacity_) sample_[static_cast<std::size_t>(j)] = k;
      }
    }
  }

  /// Keys offered since construction / the last reset().
  std::uint64_t offered() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return offered_;
  }

  /// A sorted copy of the current reservoir (the Rebalancer's input).
  std::vector<K> sorted_sample() const {
    std::vector<K> out;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      out = sample_;
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  /// Forgets the stream (reservoir and count).
  void reset() {
    const std::lock_guard<std::mutex> lock(mu_);
    sample_.clear();
    offered_ = 0;
  }

  /// Ages the stream instead of forgetting it: keeps each reservoir
  /// entry with probability num/den and scales the offered count by the
  /// same factor. The continuous rebalancer calls this after a
  /// single-tablet flip — the offered distribution is a property of the
  /// workload, not of the topology, so most of the sample is still
  /// valid; full reset() would force a cold re-fill before every small
  /// move, while decay keeps half the evidence and still lets a moving
  /// hotspot wash out of the reservoir within a few flips.
  void decay(std::uint64_t num, std::uint64_t den) {
    const std::lock_guard<std::mutex> lock(mu_);
    std::size_t kept = 0;
    for (std::size_t i = 0; i < sample_.size(); ++i) {
      if (rng_.below(den) < num) sample_[kept++] = sample_[i];
    }
    sample_.resize(kept);
    offered_ = offered_ * num / den;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<K> sample_;
  std::uint64_t offered_ = 0;
  util::Xoshiro256 rng_;
};

}  // namespace pathcopy::store
