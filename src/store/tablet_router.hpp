// TabletRouter: a sorted tablet table — the keyspace as T half-open
// intervals, each *assigned* to a shard, with any number of tablets per
// shard.
//
// RangeRouter ties topology to placement: shard i owns exactly one
// contiguous interval, so rebalancing a skewed load must re-draw every
// boundary and physically re-pack the cold mass (PR 5 moved ~90% of
// resident keys to fix a Zipf hot head). A tablet table decouples the
// two, Bigtable-style: the *boundaries* say where intervals start, the
// *assignment* says who serves them. Balancing then becomes
//
//   * split   — refine a hot tablet's boundaries. Owners are unchanged,
//               so the routing function is pointwise identical: the flip
//               migrates ZERO keys (the diff below is empty).
//   * reassign— hand one tablet to another shard. Only that tablet's
//               resident keys move; every other tablet — in particular
//               the whole cold mass — stays put.
//
// The router satisfies RouterFor and slots into ShardedMap / RouterEpoch
// / ConsistentCut unchanged. kOrderPreserving is false: two tablets of
// one shard may straddle another shard's tablet, so shard index is not
// monotone in the key and ordered iteration uses the k-way merge path
// (each shard's *own* slice is still sorted — a tablet reassignment
// still travels as one sorted ingest unit).
//
// diff() is the migration planner's primitive: walking two tables'
// merged boundaries yields the minimal set of moving segments (maximal
// key intervals whose owner changed, with source and destination), in
// ascending key order — which is exactly the order the per-destination
// migration watermarks need.
#pragma once

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace pathcopy::store {

/// One maximal interval whose owner changes between two tablet tables.
/// nullopt bounds mean "unbounded on that side" (the first tablet has no
/// lower bound, the last no upper bound). Keys in [lo, hi) move from
/// shard `src` to shard `dst`.
template <class K>
struct TabletSegment {
  std::optional<K> lo;
  std::optional<K> hi;
  std::size_t src = 0;
  std::size_t dst = 0;
};

template <class K, class Cmp = std::less<K>>
class TabletRouter {
 public:
  static constexpr bool kOrderPreserving = false;

  /// One unbounded tablet on shard 0 (single-shard maps).
  TabletRouter() : owners_(1, 0) {}

  /// T-1 strictly increasing boundaries + T owners: tablet t covers
  /// [bounds[t-1], bounds[t]) and routes to owners[t].
  TabletRouter(std::vector<K> bounds, std::vector<std::size_t> owners)
      : bounds_(std::move(bounds)), owners_(std::move(owners)) {
    PC_ASSERT(owners_.size() == bounds_.size() + 1,
              "a tablet table with B bounds has exactly B + 1 tablets");
    Cmp cmp;
    for (std::size_t i = 1; i < bounds_.size(); ++i) {
      PC_ASSERT(cmp(bounds_[i - 1], bounds_[i]),
                "tablet bounds must be strictly increasing");
    }
  }

  /// Equal-width tablets over [lo, hi), tablet i owned by shard i —
  /// routes identically to RangeRouter::uniform, as the seed topology a
  /// rebalancer refines. Same unsigned-width arithmetic (full-range key
  /// spaces split without signed overflow).
  static TabletRouter uniform(K lo, K hi, std::size_t shards)
    requires std::integral<K>
  {
    PC_ASSERT(shards >= 1 && lo < hi, "uniform needs shards >= 1 and lo < hi");
    const std::uint64_t width =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo);
    PC_ASSERT(width >= shards, "uniform needs at least one key per shard");
    std::vector<K> bounds;
    std::vector<std::size_t> owners;
    bounds.reserve(shards - 1);
    owners.reserve(shards);
    for (std::size_t i = 1; i < shards; ++i) {
      const std::uint64_t off = width / shards * i + width % shards * i / shards;
      bounds.push_back(static_cast<K>(static_cast<std::uint64_t>(lo) + off));
      owners.push_back(i - 1);
    }
    owners.push_back(shards - 1);
    return TabletRouter{std::move(bounds), std::move(owners)};
  }

  std::size_t operator()(const K& key, std::size_t shards) const {
    PC_DASSERT(compatible(shards), "router references an unknown shard");
    (void)shards;
    return owners_[tablet_of(key)];
  }

  /// Compatible with any shard count that covers every assignment.
  bool compatible(std::size_t shards) const {
    for (const std::size_t o : owners_) {
      if (o >= shards) return false;
    }
    return true;
  }

  /// Index of the tablet containing `key` (first bound strictly greater
  /// than key, same search as RangeRouter).
  std::size_t tablet_of(const K& key) const {
    std::size_t lo = 0, hi = bounds_.size();
    Cmp cmp;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (cmp(key, bounds_[mid])) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    return lo;
  }

  std::size_t tablet_count() const noexcept { return owners_.size(); }
  std::size_t owner(std::size_t t) const { return owners_[t]; }
  const std::vector<K>& bounds() const noexcept { return bounds_; }
  const std::vector<std::size_t>& owners() const noexcept { return owners_; }

  /// Tablet t's lower/upper boundary; nullptr = unbounded on that side.
  const K* tablet_lo(std::size_t t) const {
    return t == 0 ? nullptr : &bounds_[t - 1];
  }
  const K* tablet_hi(std::size_t t) const {
    return t + 1 == owners_.size() ? nullptr : &bounds_[t];
  }

  /// Tablet counts per shard (the ShardStatsBoard's tablets/shard row).
  std::vector<std::size_t> tablets_per_shard(std::size_t shards) const {
    std::vector<std::size_t> counts(shards, 0);
    for (const std::size_t o : owners_) {
      PC_ASSERT(o < shards, "tablet assigned past the shard count");
      ++counts[o];
    }
    return counts;
  }

  /// Copy with tablet t reassigned to `shard` — the single-tablet move
  /// the continuous rebalancer flips one at a time.
  TabletRouter with_owner(std::size_t t, std::size_t shard) const {
    PC_ASSERT(t < owners_.size(), "with_owner on an unknown tablet");
    TabletRouter next = *this;
    next.owners_[t] = shard;
    return next;
  }

  /// Copy with tablet t split at `cuts` (strictly increasing, strictly
  /// inside t's interval). Every piece keeps t's owner, so the result
  /// routes pointwise identically to *this: a split-only flip migrates
  /// zero keys.
  TabletRouter with_split(std::size_t t, std::span<const K> cuts) const {
    PC_ASSERT(t < owners_.size(), "with_split on an unknown tablet");
    PC_ASSERT(!cuts.empty(), "with_split needs at least one cut");
    Cmp cmp;
    for (std::size_t i = 1; i < cuts.size(); ++i) {
      PC_ASSERT(cmp(cuts[i - 1], cuts[i]),
                "split cuts must be strictly increasing");
    }
    if (const K* lo = tablet_lo(t)) {
      PC_ASSERT(cmp(*lo, cuts.front()), "split cut at or below the tablet");
    }
    if (const K* hi = tablet_hi(t)) {
      PC_ASSERT(cmp(cuts.back(), *hi), "split cut at or above the tablet");
    }
    TabletRouter next;
    next.bounds_.clear();
    next.owners_.clear();
    next.bounds_.reserve(bounds_.size() + cuts.size());
    next.owners_.reserve(owners_.size() + cuts.size());
    for (std::size_t i = 0; i < owners_.size(); ++i) {
      next.owners_.push_back(owners_[i]);
      if (i == t) {
        for (const K& c : cuts) {
          next.bounds_.push_back(c);
          next.owners_.push_back(owners_[t]);
        }
      }
      if (i + 1 < owners_.size()) next.bounds_.push_back(bounds_[i]);
    }
    return next;
  }

  /// Copy with adjacent same-owner tablets merged — routes pointwise
  /// identically; keeps the table from growing without bound as the
  /// hotspot moves and old refinements go cold.
  TabletRouter coalesced() const {
    TabletRouter next;
    next.bounds_.clear();
    next.owners_.clear();
    next.owners_.push_back(owners_[0]);
    for (std::size_t i = 1; i < owners_.size(); ++i) {
      if (owners_[i] == next.owners_.back()) continue;
      next.bounds_.push_back(bounds_[i - 1]);
      next.owners_.push_back(owners_[i]);
    }
    return next;
  }

  bool operator==(const TabletRouter& o) const {
    return bounds_ == o.bounds_ && owners_ == o.owners_;
  }

  /// The minimal moving set between two tables: maximal key intervals
  /// whose owner differs, in ascending key order. Walks the merged
  /// boundary list once — each elementary interval (between two adjacent
  /// boundaries of either table) has one owner per table; consecutive
  /// elementary intervals moving src→dst coalesce into one segment.
  /// Empty iff the tables route pointwise identically (in particular for
  /// any pure split/coalesce).
  static std::vector<TabletSegment<K>> diff(const TabletRouter& from,
                                            const TabletRouter& to) {
    std::vector<TabletSegment<K>> segs;
    Cmp cmp;
    const std::vector<K>& a = from.bounds_;
    const std::vector<K>& b = to.bounds_;
    std::size_t i = 0, j = 0;  // next unconsumed boundary in a / b
    std::optional<K> cur_lo;   // lower edge of the current elementary interval
    bool prev_moved = false;   // did the previous elementary interval move?
    const auto emit = [&](std::optional<K> hi) {
      const std::size_t src = from.owners_[i];
      const std::size_t dst = to.owners_[j];
      if (src != dst) {
        if (prev_moved && segs.back().src == src && segs.back().dst == dst) {
          segs.back().hi = hi;  // adjacent, same move: extend
        } else {
          segs.push_back(TabletSegment<K>{cur_lo, hi, src, dst});
        }
        prev_moved = true;
      } else {
        prev_moved = false;
      }
      cur_lo = hi;
    };
    while (i < a.size() || j < b.size()) {
      const bool take_a =
          i < a.size() && (j >= b.size() || !cmp(b[j], a[i]));
      const bool take_b =
          j < b.size() && (i >= a.size() || !cmp(a[i], b[j]));
      emit(take_a ? a[i] : b[j]);
      if (take_a) ++i;
      if (take_b) ++j;
    }
    emit(std::nullopt);
    return segs;
  }

 private:
  std::vector<K> bounds_;
  std::vector<std::size_t> owners_;
};

}  // namespace pathcopy::store
