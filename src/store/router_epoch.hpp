// RouterEpoch + EpochMarkRegistry: versioned routing topologies for the
// store layer, and the quiescence protocol that makes flipping them safe
// while writers run.
//
// A ShardedMap used to hold one immutable router for its whole lifetime;
// rebalancing requires *replacing* the split points while sessions are
// mid-traffic. The unit of replacement is the RouterEpoch: an immutable
// record {sequence number, router, predecessor} published behind one
// atomic pointer on the map. A session reads exactly one epoch per
// operation (or per client batch), so every routing decision inside one
// op is made against one coherent topology — there is no instant at
// which half a batch routes by the old bounds and half by the new.
//
// The migration protocol layered on top (store/rebalancer.hpp drives it,
// ShardedMap::begin_epoch/settle_epoch implement the map side):
//
//   1. PUBLISH  — install epoch E+1 (settled = false). From now on every
//      op routes by the new bounds; ops whose key *moves* (old owner !=
//      new owner) gate on `settled` and retry until the migration is
//      done. Ops on non-moving keys — the vast majority — proceed at
//      full speed: both topologies agree on their owner.
//   2. DRAIN    — wait until no session is still executing an op it
//      routed under epoch E. Sessions announce the epoch they route by
//      in a per-session mark slot (store mark, then re-read the epoch
//      pointer; the seq_cst store/load pair is the classic Dekker
//      handshake against the publisher's store/load of the same two
//      locations), so the drain is a bounded wait for in-flight ops,
//      never for idle sessions (idle slots hold 0). After the drain, the
//      moving key ranges are frozen: new ops on them gate, old ops on
//      them have completed.
//   3. MIGRATE  — the frozen ranges are extracted from pinned source
//      snapshots and batch-installed into their new owners, then erased
//      from the sources (plain installs through each shard's UC, i.e.
//      serialized with concurrent non-moving writes by the shard's own
//      CAS/combining machinery, and routed through the ShardExecutor
//      lanes when one is attached). Readiness is per destination: as
//      soon as shard d's incoming slice is fully installed, `ready[d]`
//      flips and ops on keys moving INTO d proceed — they route to d,
//      which now holds everything it owns, while the stale source copies
//      are unreachable (every post-drain op routes by the new bounds).
//      This matters enormously for skew fits: the hot shards' ranges are
//      narrow (few resident keys, tiny installs, ready in moments) while
//      the one cold shard absorbing the bulk of the resident mass can
//      keep installing in the background without stalling hot traffic.
//   4. SETTLE   — after the sources' moved ranges are erased, `settled`
//      flips (release); gates stop checking entirely, and consistent
//      cuts — which refuse unsettled epochs because the both-copies
//      state during step 3 would let a cut double-count — resume.
//
// Why no op is lost and every outcome is exact: an op either completed
// before the drain (its effect is part of the extracted snapshot and
// migrates), or it began after the publish, in which case it routes by
// the new bounds — and if its key is moving it waits for the data to
// arrive before executing. At no point do two live copies of a moving
// key exist as far as any operation can observe: consistent cuts
// additionally refuse to stabilize while an epoch is unsettled
// (store/version_vector.hpp), so the transient both-copies state during
// step 3 is invisible to composed reads too.
//
// Epoch records are retained on a chain and freed by the map's
// destructor: they are a few dozen bytes plus the split-point vector,
// rebalances are rare (seconds apart, not microseconds), and retaining
// them makes `router()` references and late epoch reads trivially safe
// without dragging the node reclaimers into the control plane.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/align.hpp"
#include "util/assert.hpp"
#include "util/modelcheck.hpp"

namespace pathcopy::store {

/// One immutable routing topology (plus the mutable migration-progress
/// atomics). `prev` both chains retirement and defines the moving set: a
/// key moves in this epoch iff its owner under `prev->router` differs
/// from its owner under `router`.
template <class RouterT, class K>
struct RouterEpoch {
  /// Watermarks need an atomically publishable key; maps with exotic key
  /// types degrade to all-or-nothing per-destination readiness.
  static constexpr bool kHasWatermark = std::is_trivially_copyable_v<K>;

  /// Per-destination migration progress. `done` — the whole incoming
  /// slice is installed. The watermark refines that for the one big
  /// destination a skew fit produces: the migration installs a slice in
  /// ascending key order and publishes "installed up to `mark`" as it
  /// goes, so ops on moving keys at or below the watermark resume while
  /// the tail is still landing.
  struct ReadyState {
    std::atomic<bool> done{false};
    std::atomic<bool> has_mark{false};
    std::conditional_t<kHasWatermark, std::atomic<K>, char> mark{};
  };

  std::uint64_t seq;            // 1 for the construction epoch, then +1
  RouterT router;               // the topology of this epoch
  const RouterEpoch* prev;      // predecessor (nullptr for the first)
  std::atomic<bool> settled;    // false while this epoch's migration runs
  std::vector<ReadyState> ready;

  RouterEpoch(std::uint64_t s, RouterT r, const RouterEpoch* p, bool ok,
              std::size_t shards)
      : seq(s), router(std::move(r)), prev(p), settled(ok), ready(shards) {
    for (auto& b : ready) b.done.store(ok, std::memory_order_relaxed);
  }

  bool is_settled() const noexcept {
    return settled.load(std::memory_order_acquire);
  }

  bool is_ready(std::size_t shard) const noexcept {
    return ready[shard].done.load(std::memory_order_acquire);
  }

  void set_ready(std::size_t shard) noexcept {
    PC_YIELD("epoch.ready");
    ready[shard].done.store(true, std::memory_order_release);
  }

  /// Publishes "shard's incoming slice installed through `key`". Only
  /// the migrating thread calls this, with ascending keys.
  void advance_watermark(std::size_t shard, const K& key) noexcept
    requires(kHasWatermark)
  {
    ready[shard].mark.store(key, std::memory_order_release);
    ready[shard].has_mark.store(true, std::memory_order_release);
  }

  /// True when ops on `key` moving into `shard` may proceed: the slice
  /// is fully installed, or installed at least through `key`. `le` is
  /// the caller's key comparison (le(a, b) == a-not-greater-than-b).
  template <class LessFn>
  bool is_ready_for(std::size_t shard, const K& key, LessFn&& less) const {
    const ReadyState& r = ready[shard];
    if (r.done.load(std::memory_order_acquire)) return true;
    if constexpr (kHasWatermark) {
      if (r.has_mark.load(std::memory_order_acquire)) {
        const K mark = r.mark.load(std::memory_order_acquire);
        return !less(mark, key);  // key <= mark
      }
    }
    return false;
  }

  /// Did `key` change owner at this flip? Only meaningful while the
  /// epoch is unsettled (afterwards the data has arrived and the answer
  /// no longer gates anything).
  bool moves(const K& key, std::size_t shards) const {
    return prev != nullptr && prev->router(key, shards) != router(key, shards);
  }
};

/// The session-side half of the drain: per-session mark slots. A slot
/// holds 0 when its session is between operations and the sequence
/// number of the epoch the session routes by while an operation is in
/// flight. The publisher drains by waiting, per slot, for "0 or >= the
/// new sequence" — which can only regress to an *older* epoch if a
/// session announced a stale pointer, and the announce protocol (store
/// mark, re-read epoch pointer, retry on mismatch) excludes exactly
/// that.
///
/// The registry grows on demand (no session cap): sessions hold stable
/// Slot pointers and touch the mutex only at construction/destruction;
/// the hot announce/clear path is lock-free on the session's own cache
/// line. A drain iterates a locked snapshot of the slots — safe to miss
/// slots acquired after the snapshot, because such an acquisition
/// happens-after the drain's lock, which happens-after the epoch
/// publish (same thread), so the new session's first announce can only
/// ever name the already-published epoch or a newer one.
class EpochMarkRegistry {
 public:
  struct alignas(util::kCacheLine) Slot {
    std::atomic<std::uint64_t> mark{0};
  };

  /// Claims a mark slot (session construction — cold path).
  Slot* acquire() {
    const std::lock_guard<std::mutex> lock(mu_);
    if (free_.empty()) {
      slots_.push_back(std::make_unique<Slot>());
      free_.push_back(slots_.back().get());
    }
    Slot* s = free_.back();
    free_.pop_back();
    s->mark.store(0, std::memory_order_relaxed);
    return s;
  }

  /// Returns a slot (session destruction). The slot must be idle.
  void release(Slot* s) {
    s->mark.store(0, std::memory_order_seq_cst);
    const std::lock_guard<std::mutex> lock(mu_);
    free_.push_back(s);
  }

  /// Announce side, step 1: publish the epoch sequence this session is
  /// about to route by. The caller must re-read the epoch pointer after
  /// this (seq_cst on both sides) and re-announce if it moved.
  static void announce(Slot* s, std::uint64_t seq) {
    // Between the caller's epoch-pointer read and the mark store: a
    // publisher that runs entirely inside this gap sees an idle slot,
    // drains past it, and the mark lands too late — the hole the
    // caller's re-read exists to close, made explorable here.
    PC_YIELD("epoch.mark");
    s->mark.store(seq, std::memory_order_seq_cst);
    // Between the mark store and the caller's epoch-pointer re-read: the
    // publisher's symmetric store/load may interleave here (the Dekker
    // window the model checker explores).
    PC_YIELD("epoch.announce");
  }

  static void clear(Slot* s) {
    s->mark.store(0, std::memory_order_release);
  }

  /// Publisher side: blocks until no session is mid-operation under an
  /// epoch older than `seq`. One pass suffices — a slot seen idle (or
  /// new enough) can only ever re-announce the already-published epoch
  /// or a newer one (header comment covers slots added mid-drain).
  void drain_below(std::uint64_t seq) {
    scratch_.clear();
    {
      const std::lock_guard<std::mutex> lock(mu_);
      for (const auto& s : slots_) scratch_.push_back(s.get());
    }
    for (Slot* s : scratch_) {
      for (;;) {
        PC_YIELD("epoch.drain");
        const std::uint64_t m = s->mark.load(std::memory_order_seq_cst);
        if (m == 0 || m >= seq) break;
        std::this_thread::yield();
      }
    }
  }

 private:
  std::mutex mu_;
  std::vector<std::unique_ptr<Slot>> slots_;  // stable addresses, only grows
  std::vector<Slot*> free_;
  std::vector<Slot*> scratch_;  // drain-side; one drain at a time
};

}  // namespace pathcopy::store
