// ShardExecutor: the store layer's shard execution pipeline.
//
// Before this, a ShardedMap client drove its S shards *sequentially* —
// split the batch, then visit shard 0, shard 1, ... from the client
// thread, each install finishing before the next begins. The executor
// turns that into a pipeline: one worker thread per shard, each owning a
// bounded lock-free MPSC ring (src/store/shard_lane.hpp), its own
// reclaimer registration, and its own allocator view. Clients scatter
// per-shard sub-batches into the lanes and receive a join ticket;
// workers run the shards' install paths concurrently and scatter per-op
// results straight back into the client's result span before completing
// the ticket.
//
// The pipeline is lock-free end to end:
//
//   * submit is one fetch_add on the lane gate, one CAS + one release
//     store into the ring, and one fetch_add on the publish counter — no
//     mutex, no syscall unless the worker advertised itself parked;
//   * workers spin briefly (adaptive budget) then park on a C++20
//     atomic wait, so a hot lane never syscalls and an idle one sleeps;
//   * the join ticket is a plain atomic countdown (see BatchTicket).
//
// And it coalesces: on each wakeup the worker drains the ENTIRE lane
// into a local run and k-way-merges every drained ticket's key-sorted
// sub-batch into one mega-batch, which the backend's execute_sorted
// entry collapses (cross-ticket same-key chains included) and installs
// with ONE root CAS — a backed-up lane does one sorted install for N
// tickets instead of N. Per-op outcomes are back-filled exactly per
// ticket: the merge is stable by (key, drain order, in-task order), so
// every key sees its ops in submission order and cross-key ops commute —
// results are identical to executing the drained tasks one by one.
// Seed tasks and the Rebalancer's sorted_unique migration tasks are
// never coalesced; they execute in place as barriers in the drain order.
//
// Threading/ownership contract:
//   * construct over a ShardedMap (any map exposing shard_count() /
//     shard(s)); the constructor spawns the workers and attaches itself
//     to the map, so Sessions route execute_batch/seed_sorted through it
//     automatically;
//   * the alloc factory runs once on each worker thread and may return
//     either a fresh per-worker allocator by value (ThreadCache) or a
//     reference to a shared thread-safe one (MallocAlloc). Whatever
//     backs it must outlive the *map* (retired nodes free through the
//     allocator's retire backend long after the worker exits);
//   * submitted spans must stay valid until the task's ticket completes
//     (Session keeps them in per-session scratch and joins before
//     returning);
//   * a full lane blocks submit (backpressure) rather than running the
//     sub-batch synchronously — an earlier task may still sit in the
//     ring, and per-shard FIFO versus queued migration barriers must
//     hold. The ring cannot stay full: workers only park empty lanes;
//   * stop() detaches from the map, then runs the lane's
//     drain-then-park-poison protocol: set the stop gate, wait out
//     in-flight submitters, push a poison task through the ring (FIFO
//     puts it after every accepted task; the gate lets nothing follow),
//     and join. A submit that loses the race returns false and the
//     client runs that sub-batch synchronously (Session settles the
//     ticket slot itself), so nothing is dropped and nothing aborts.
//     *Destruction* is different: like any object, the executor must not
//     be destroyed while another thread may still call into it — the
//     race-tolerant shutdown is stop()-then-quiesce-then-destroy.
//
// Completion of a task happens-before the submitting client's join()
// return (acquire/release on the ticket's atomic countdown), so result
// writes by workers need no further synchronization.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "core/stats.hpp"
#include "core/universal.hpp"
#include "store/shard_lane.hpp"
#include "util/assert.hpp"
#include "util/modelcheck.hpp"

namespace pathcopy::store {

/// Join handle for one scattered client batch: arm() it with the number
/// of sub-batches about to be submitted, then join() blocks until every
/// worker completed its share. Reusable sequentially; not shareable
/// between concurrent client calls.
///
/// Wait-free on the worker side: complete_one is one fetch_sub plus (on
/// the last completion) one notify_all. Destroy-after-join carries the
/// same contract as std::latch: the final completer may still be inside
/// notify_all when join() returns, but notify_all touches only the
/// atomic's address (a futex wake, no dereference), which is exactly the
/// guarantee latch implementations rely on.
class BatchTicket {
 public:
  BatchTicket() = default;
  BatchTicket(const BatchTicket&) = delete;
  BatchTicket& operator=(const BatchTicket&) = delete;

  /// Must be called before the first submit referencing this ticket —
  /// workers only ever count down, so arming up front cannot race a
  /// completion past zero.
  void arm(unsigned subbatches) {
    PC_ASSERT(pending_.load(std::memory_order_relaxed) == 0,
              "ticket re-armed while a join is outstanding");
    pending_.store(subbatches, std::memory_order_relaxed);
  }

  /// Worker side: one sub-batch done. The acq_rel countdown makes the
  /// worker's result writes visible to the joiner's acquire load.
  void complete_one() {
    const std::uint32_t left =
        pending_.fetch_sub(1, std::memory_order_acq_rel);
    PC_ASSERT(left > 0, "ticket completed more often than armed");
    if (left == 1) pending_.notify_all();
  }

  /// Client side: blocks until every armed sub-batch completed. Spins
  /// briefly (sub-batches usually finish within a scheduling quantum)
  /// before falling back to the futex wait.
  void join() {
    for (unsigned k = 0; k < kJoinSpins; ++k) {
      if (pending_.load(std::memory_order_acquire) == 0) return;
      std::this_thread::yield();
    }
    for (;;) {
      const std::uint32_t p = pending_.load(std::memory_order_acquire);
      if (p == 0) return;
#if defined(PATHCOPY_MODELCHECK)
      // A futex wait would block the OS thread outside the virtual
      // scheduler's control; keep yielding instead.
      PC_YIELD("ticket.join");
      std::this_thread::yield();
#else
      pending_.wait(p, std::memory_order_acquire);
#endif
    }
  }

  bool done() const {
    return pending_.load(std::memory_order_acquire) == 0;
  }

 private:
  static constexpr unsigned kJoinSpins = 64;
  std::atomic<std::uint32_t> pending_{0};
};

template <core::UniversalConstruction Uc>
class ShardExecutor {
 public:
  using Key = typename Uc::Key;
  using Value = typename Uc::Value;
  using BatchRequest = typename Uc::BatchRequest;
  using ReadOutcome = typename Uc::ReadOutcome;
  using Ctx = typename Uc::Ctx;
  using SeedItems = std::vector<std::pair<Key, Value>>;

  /// One unit of shard work. Exactly one of {reqs, seed, read_results} is
  /// meaningful: a batch task runs the backend over `reqs` and writes op
  /// i's result to results[scatter[i]] (or results[i] when scatter is
  /// null); a seed task bulk-loads `*seed` through uc.seed_sorted; a READ
  /// task (read_results != nullptr) resolves the key-sorted probe span
  /// `keys` against one pinned root, writing keys[i]'s answer to
  /// read_results[read_scatter[i]] (or read_results[i]). All referenced
  /// storage is client-owned and must outlive the ticket.
  ///
  /// sorted_unique marks a control-plane batch (migration install/erase)
  /// whose reqs are key-sorted and key-unique: the worker routes it
  /// through the backend's bulk ingest_sorted path when it has one and
  /// never coalesces it — it is a barrier in the lane's FIFO.
  ///
  /// presorted marks a client sub-batch whose reqs are stably key-sorted
  /// (same-key requests in submission order) — Session's split_batch
  /// emits exactly that. Only presorted tasks are eligible for
  /// cross-ticket coalescing; an unsorted task executes alone.
  ///
  /// Read tasks coalesce unconditionally (the worker re-sorts the merged
  /// probe, so per-task ordering is presentation only): every read task
  /// drained by one wakeup is folded into a single mega-probe resolved
  /// against ONE pinned root — see exec_read_merged for why hoisting
  /// later read tickets over drained-but-unexecuted writes stays
  /// linearizable.
  struct Task {
    std::span<const BatchRequest> reqs;
    const std::size_t* scatter = nullptr;
    bool* results = nullptr;
    const SeedItems* seed = nullptr;
    std::span<const Key> keys;  // read task: probe keys
    const std::size_t* read_scatter = nullptr;
    ReadOutcome* read_results = nullptr;  // non-null marks a read task
    BatchTicket* ticket = nullptr;
    bool sorted_unique = false;
    bool presorted = false;
    bool poison = false;  // internal: stop() sentinel, never submitted
    bool read_done = false;  // internal: absorbed by an earlier merged sweep
    std::chrono::steady_clock::time_point enqueued;  // sampled; see submit
  };

  struct Options {
    /// Per-lane ring capacity (power of two). Deep enough that
    /// backpressure only engages on a genuinely backed-up shard.
    std::size_t lane_capacity = 256;
    /// Spawn workers parked until resume() — tests use this to force a
    /// backlog deterministically and watch one wakeup coalesce it.
    bool start_paused = false;
  };

  /// Every kSampleEvery-th submit per lane stamps a latency sample
  /// (power of two). Public so reports can state the sampling rate next
  /// to the sampled task-us figures.
  static constexpr std::uint32_t kSampleEvery = 64;

  /// Spawns one worker per shard and attaches to the map. `Map` is any
  /// ShardedMap instantiation over this Uc; `AllocFactory` is invoked
  /// once on each worker thread (see the header contract).
  template <class Map, class AllocFactory>
  ShardExecutor(Map& map, AllocFactory factory, Options opts = {})
      : paused_(opts.start_paused) {
    const std::size_t n = map.shard_count();
    PC_ASSERT(n >= 1, "executor over an empty map");
    lanes_.reserve(n);
    for (std::size_t s = 0; s < n; ++s) {
      lanes_.push_back(std::make_unique<LaneBox>(opts.lane_capacity));
    }
    workers_.reserve(n);
    try {
      for (std::size_t s = 0; s < n; ++s) {
        workers_.emplace_back(
            [this, s, &uc = map.shard(s), factory]() mutable {
              run_worker(s, uc, factory);
            });
      }
    } catch (...) {
      // A failed spawn (e.g. std::system_error at the thread limit) must
      // not unwind past joinable threads — that is std::terminate. Poison
      // and join whatever already started, then surface the exception.
      stopped_ = true;
      poison_and_join();
      throw;
    }
    map.attach_executor(*this);
    detach_ = [&map] { map.detach_executor(); };
  }

  ShardExecutor(const ShardExecutor&) = delete;
  ShardExecutor& operator=(const ShardExecutor&) = delete;

  ~ShardExecutor() { stop(); }

  std::size_t shard_count() const noexcept { return lanes_.size(); }

  /// Releases workers spawned with Options::start_paused.
  void resume() {
    if (paused_.exchange(false, std::memory_order_seq_cst)) {
      paused_.notify_all();
    }
  }

  /// Enqueues one task on a shard's lane. FIFO per shard: two tasks
  /// submitted to the same shard (by any threads, in a determinable
  /// order) are applied to that shard's UC in submission order. Blocks
  /// through full-ring backpressure. Returns false — nothing enqueued —
  /// when the lane is already stopping: a client that raced stop() past
  /// the map's detach must run the sub-batch itself (Session does
  /// exactly that), so stop() is safe to call while batches are in
  /// flight.
  ///
  /// Latency is sampled, not measured per task: every kSampleEvery-th
  /// submit to a lane stamps `enqueued` and the worker folds only those
  /// into exec_task_ns/exec_task_samples. A steady_clock read per submit
  /// would be the most expensive instruction on this path.
  [[nodiscard]] bool submit(std::size_t shard, Task task) {
    PC_ASSERT(shard < lanes_.size(), "submit to an unknown shard");
    PC_ASSERT(!task.poison, "poison is internal to stop()");
    // The stop/submit race the model checker drives lives between here
    // and the lane's stop gate.
    PC_YIELD("exec.submit");
    LaneBox& box = *lanes_[shard];
    if ((box.sample_tick.fetch_add(1, std::memory_order_relaxed) &
         (kSampleEvery - 1)) == 0) {
      task.enqueued = std::chrono::steady_clock::now();
    }
    return box.lane.push_wait(task);
  }

  /// Detaches from the map, poisons every lane (drain-then-park-poison:
  /// stop gate, quiesce in-flight submitters, poison through the ring),
  /// joins the workers. Idempotent; called by the destructor. Tasks
  /// already submitted are still fully executed and their tickets
  /// completed — shutdown drains, it does not drop.
  void stop() {
    if (stopped_) return;
    stopped_ = true;
    if (detach_) detach_();
    PC_YIELD("exec.stop");
    poison_and_join();
  }

  /// Instantaneous submission-lane depth of one shard — a control-plane
  /// pressure probe (the continuous rebalancer backs off when client
  /// sub-batches are stacking up). Two relaxed loads on the ring
  /// indices; safe from any thread, cheap enough for hot probing.
  std::size_t queue_depth(std::size_t s) const {
    PC_ASSERT(s < lanes_.size(), "queue_depth of an unknown shard");
    return lanes_[s]->lane.approx_size();
  }

  /// A shard worker's counters (install stats + wake/park/coalescing
  /// accounting). Meaningful once stop() returned; workers publish on
  /// exit and join() makes the writes visible.
  const core::OpStats& shard_stats(std::size_t s) const {
    PC_ASSERT(stopped_, "shard_stats before stop()");
    return lanes_[s]->final_stats;
  }

  /// Folds every worker's counters into a ShardStatsBoard-compatible
  /// accumulator (anything with add(shard, OpStats)).
  template <class Board>
  void fold_into(Board& board) const {
    for (std::size_t s = 0; s < lanes_.size(); ++s) {
      board.add(s, shard_stats(s));
    }
  }

 private:
  static constexpr unsigned kSpinMin = 16;
  static constexpr unsigned kSpinMax = 512;

  /// Per-shard lane plus executor-side bookkeeping. Heap-allocated once:
  /// atomics are neither movable nor copyable, and workers hold stable
  /// pointers.
  struct LaneBox {
    explicit LaneBox(std::size_t cap) : lane(cap) {}
    ShardLane<Task> lane;
    std::atomic<std::uint32_t> sample_tick{0};
    core::OpStats final_stats;  // worker writes before exit; read post-join
  };

  static constexpr bool kHasExecuteSorted = requires(
      Uc& uc, Ctx& ctx, std::span<const BatchRequest> reqs,
      std::span<bool> out) { uc.execute_sorted(ctx, reqs, out); };

  static bool key_less(const Key& a, const Key& b) {
    if constexpr (requires { typename Uc::Structure::KeyCompare; }) {
      return typename Uc::Structure::KeyCompare{}(a, b);
    } else {
      return a < b;
    }
  }

  void poison_and_join() {
    resume();  // parked-paused workers must run to drain
    Task poison;
    poison.poison = true;
    for (auto& box : lanes_) box->lane.request_stop(poison);
    for (std::thread& w : workers_) w.join();
  }

  /// A task the coalescer may merge: a presorted client sub-batch.
  /// Seeds and sorted_unique migrations are barriers; unsorted tasks
  /// (direct executor users) execute alone.
  static bool coalescible(const Task& t) {
    return t.seed == nullptr && !t.sorted_unique && !t.poison &&
           t.read_results == nullptr && t.presorted;
  }

  static bool is_read(const Task& t) { return t.read_results != nullptr; }

  void wait_unpaused() {
    while (paused_.load(std::memory_order_seq_cst)) {
#if defined(PATHCOPY_MODELCHECK)
      PC_YIELD("exec.pause");
      std::this_thread::yield();
#else
      paused_.wait(true, std::memory_order_seq_cst);
#endif
    }
  }

  /// Adaptive spin-then-park. The epoch read precedes the emptiness
  /// check on purpose: reading the publish counter makes every counted
  /// publish visible, and commit_park's re-read catches every later one
  /// — between them no publish can slip past a parking worker (the
  /// Dekker argument in shard_lane.hpp).
  void idle_wait(ShardLane<Task>& lane, core::OpStats& st,
                 unsigned& spin_budget) {
    for (unsigned k = 0; k < spin_budget; ++k) {
      if (!lane.consumer_empty()) {
        st.exec_spin_wakes += 1;
        spin_budget = std::min(spin_budget * 2, kSpinMax);
        return;
      }
      std::this_thread::yield();  // single-core hosts: let producers run
    }
    const std::uint32_t w = lane.park_epoch();
    if (!lane.consumer_empty()) {
      st.exec_spin_wakes += 1;
      return;
    }
    if (!lane.commit_park(w)) {
      st.exec_spin_wakes += 1;
      return;
    }
    st.exec_parks += 1;
    lane.park_wait(w);
    // A park means the spin budget was wasted watching an idle lane.
    spin_budget = std::max(spin_budget / 2, kSpinMin);
  }

  /// Runs one non-coalesced task (seed / migration / unsorted batch).
  void exec_single(Uc& uc, Ctx& ctx, const Task& task,
                   std::unique_ptr<bool[]>& scratch,
                   std::size_t& scratch_cap) {
    if (task.seed != nullptr) {
      uc.seed_sorted(ctx, task.seed->begin(), task.seed->end());
    } else if (task.scatter == nullptr) {
      const std::span<bool> out(task.results, task.reqs.size());
      if constexpr (requires { uc.ingest_sorted(ctx, task.reqs, out); }) {
        if (task.sorted_unique) {
          uc.ingest_sorted(ctx, task.reqs, out);
        } else {
          uc.execute_batch(ctx, task.reqs, out);
        }
      } else {
        uc.execute_batch(ctx, task.reqs, out);
      }
    } else {
      const std::size_t n = task.reqs.size();
      if (scratch_cap < n) {
        scratch = std::make_unique<bool[]>(n);
        scratch_cap = n;
      }
      uc.execute_batch(ctx, task.reqs, std::span<bool>(scratch.get(), n));
      for (std::size_t i = 0; i < n; ++i) {
        task.results[task.scatter[i]] = scratch[i];
      }
    }
  }

  /// Folds one finished task into the stats and completes its ticket.
  /// `finished` is taken once per drain group, not per task.
  static void finish_task(core::OpStats& st, const Task& task,
                          std::chrono::steady_clock::time_point finished) {
    st.exec_tasks += 1;
    if (task.enqueued != std::chrono::steady_clock::time_point{}) {
      st.exec_task_samples += 1;
      st.exec_task_ns += static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(finished -
                                                               task.enqueued)
              .count());
    }
    if (task.ticket != nullptr) task.ticket->complete_one();
  }

  /// Coalesces run[first, last): k-way-merges the tasks' key-sorted
  /// request spans into one mega-batch (stable by key, then drain order,
  /// then in-task order — i.e. exactly submission order per key), hands
  /// it to the backend's execute_sorted in one go, and scatters each
  /// op's outcome back through its own task's scatter map. Cross-key ops
  /// commute, so the outcomes equal running the tasks one by one.
  void exec_coalesced(Uc& uc, Ctx& ctx, std::span<Task> tasks,
                      std::vector<std::pair<std::uint32_t, std::uint32_t>>&
                          morder,
                      std::vector<BatchRequest>& merged,
                      std::unique_ptr<bool[]>& mout,
                      std::size_t& mout_cap) {
    morder.clear();
    std::size_t total = 0;
    for (std::uint32_t t = 0; t < tasks.size(); ++t) {
      total += tasks[t].reqs.size();
    }
    morder.reserve(total);
    for (std::uint32_t t = 0; t < tasks.size(); ++t) {
      for (std::uint32_t i = 0;
           i < static_cast<std::uint32_t>(tasks[t].reqs.size()); ++i) {
        morder.emplace_back(t, i);
      }
    }
    // Each task's span is already key-sorted, so a stable sort of the
    // concatenation by key IS the k-way merge.
    std::stable_sort(morder.begin(), morder.end(),
                     [&](const auto& a, const auto& b) {
                       return key_less(tasks[a.first].reqs[a.second].key,
                                       tasks[b.first].reqs[b.second].key);
                     });
    merged.clear();
    merged.reserve(total);
    for (const auto& [t, i] : morder) merged.push_back(tasks[t].reqs[i]);
    if (mout_cap < total) {
      mout = std::make_unique<bool[]>(total);
      mout_cap = total;
    }
    const std::span<bool> out(mout.get(), total);
    uc.execute_sorted(ctx, std::span<const BatchRequest>(merged), out);
    for (std::size_t m = 0; m < total; ++m) {
      const auto [t, i] = morder[m];
      const Task& task = tasks[t];
      task.results[task.scatter != nullptr ? task.scatter[i] : i] = out[m];
    }
    ctx.stats.exec_coalesced_installs += 1;
    ctx.stats.exec_coalesced_tasks += tasks.size();
  }

  /// Cross-ticket READ coalescing: gathers every not-yet-handled read
  /// task in run[first, end), k-way-merges their key-sorted probe spans
  /// into one deduplicated mega-probe, resolves it with ONE uc.multi_get
  /// (one pin, one descent-sharing sweep), scatters each key's answer
  /// back through its own task's scatter map, and completes all absorbed
  /// tickets. The write-side analogue is exec_coalesced — pin-once
  /// instead of install-once.
  ///
  /// Hoisting reads over drained writes is linearizable: every task in
  /// this drain is still incomplete, so no read's submitter can have
  /// observed any drained write's completion — the sweep's pin (taken at
  /// the FIRST read's dequeue position, after every write ahead of it in
  /// FIFO has executed) is a valid linearization point for all absorbed
  /// reads, and reads have no effect for later drained writes to miss.
  void exec_read_merged(Uc& uc, Ctx& ctx, std::vector<Task>& run,
                        std::size_t first,
                        std::vector<std::pair<std::uint32_t, std::uint32_t>>&
                            morder,
                        std::vector<Key>& mkeys, std::vector<std::size_t>& midx,
                        std::vector<ReadOutcome>& mouts) {
    morder.clear();
    std::size_t ntasks = 0;
    bool any_sampled = false;
    for (std::uint32_t t = static_cast<std::uint32_t>(first);
         t < run.size(); ++t) {
      if (!is_read(run[t]) || run[t].read_done) continue;
      ++ntasks;
      any_sampled = any_sampled ||
                    run[t].enqueued != std::chrono::steady_clock::time_point{};
      for (std::uint32_t i = 0;
           i < static_cast<std::uint32_t>(run[t].keys.size()); ++i) {
        morder.emplace_back(t, i);
      }
    }
    // Each task's probe span is already key-sorted, so a stable sort of
    // the concatenation IS the k-way merge; cross-ticket duplicates land
    // adjacent and collapse onto one mega-probe slot.
    std::stable_sort(morder.begin(), morder.end(),
                     [&](const auto& a, const auto& b) {
                       return key_less(run[a.first].keys[a.second],
                                       run[b.first].keys[b.second]);
                     });
    mkeys.clear();
    midx.clear();
    midx.reserve(morder.size());
    for (const auto& [t, i] : morder) {
      const Key& k = run[t].keys[i];
      if (mkeys.empty() || key_less(mkeys.back(), k)) mkeys.push_back(k);
      midx.push_back(mkeys.size() - 1);
    }
    mouts.clear();
    mouts.resize(mkeys.size());
    // The model checker's read-drain window: pin -> merged sweep ->
    // scatter. An install may land on either side of the pin; the sweep
    // must answer every key from the one root it pinned.
    PC_YIELD("exec.read.sweep");
    uc.multi_get(ctx, std::span<const Key>(mkeys),
                 std::span<ReadOutcome>(mouts));
    PC_YIELD("exec.read.scatter");
    for (std::size_t m = 0; m < morder.size(); ++m) {
      const auto [t, i] = morder[m];
      const Task& task = run[t];
      task.read_results[task.read_scatter != nullptr ? task.read_scatter[i]
                                                     : i] = mouts[midx[m]];
    }
    ctx.stats.exec_read_sweeps += 1;
    ctx.stats.exec_read_tasks += ntasks;
    const auto finished = any_sampled ? std::chrono::steady_clock::now()
                                      : std::chrono::steady_clock::time_point{};
    for (std::size_t t = first; t < run.size(); ++t) {
      if (!is_read(run[t]) || run[t].read_done) continue;
      run[t].read_done = true;
      finish_task(ctx.stats, run[t], finished);
    }
  }

  template <class AllocFactory>
  void run_worker(std::size_t s, Uc& uc, AllocFactory& factory) {
    // decltype(auto): the factory may hand back a per-worker allocator by
    // value (guaranteed elision, so non-movable ThreadCache works) or a
    // reference to a shared thread-safe one.
    decltype(auto) alloc = factory();
    Ctx ctx(uc.reclaimer(), alloc);
    std::unique_ptr<bool[]> scratch;
    std::size_t scratch_cap = 0;
    std::unique_ptr<bool[]> mout;
    std::size_t mout_cap = 0;
    std::vector<Task> run;
    std::vector<BatchRequest> merged;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> morder;
    std::vector<Key> mkeys;
    std::vector<std::size_t> midx;
    std::vector<ReadOutcome> mouts;
    LaneBox& box = *lanes_[s];
    ShardLane<Task>& lane = box.lane;
    unsigned spin_budget = kSpinMin;
    wait_unpaused();
    bool poisoned = false;
    while (!poisoned) {
      run.clear();
      lane.drain(run);
      if (run.empty()) {
        idle_wait(lane, ctx.stats, spin_budget);
        continue;
      }
      ctx.stats.exec_wakes += 1;
      std::size_t i = 0;
      while (i < run.size()) {
        if (run[i].poison) {
          // The stop gate admits nothing after the poison.
          PC_DASSERT(i + 1 == run.size(), "task drained after poison");
          poisoned = true;
          break;
        }
        if (run[i].read_done) {  // absorbed by an earlier merged sweep
          ++i;
          continue;
        }
        if (is_read(run[i])) {
          // First unhandled read of this drain: merge EVERY read ticket
          // in the run (including those queued behind writes) into one
          // sweep against the root current right here.
          exec_read_merged(uc, ctx, run, i, morder, mkeys, midx, mouts);
          ++i;
          continue;
        }
        std::size_t j = i + 1;
        if constexpr (kHasExecuteSorted) {
          if (coalescible(run[i])) {
            while (j < run.size() && coalescible(run[j])) ++j;
          }
        }
        if (j - i > 1) {
          if constexpr (kHasExecuteSorted) {  // always true when j-i > 1
            exec_coalesced(uc, ctx, std::span<Task>(&run[i], j - i), morder,
                           merged, mout, mout_cap);
          }
        } else {
          exec_single(uc, ctx, run[i], scratch, scratch_cap);
        }
        bool any_sampled = false;
        for (std::size_t t = i; t < j && !any_sampled; ++t) {
          any_sampled =
              run[t].enqueued != std::chrono::steady_clock::time_point{};
        }
        const auto finished = any_sampled
                                  ? std::chrono::steady_clock::now()
                                  : std::chrono::steady_clock::time_point{};
        for (std::size_t t = i; t < j; ++t) {
          finish_task(ctx.stats, run[t], finished);
        }
        i = j;
      }
    }
    box.final_stats = ctx.stats;
  }

  std::vector<std::unique_ptr<LaneBox>> lanes_;
  std::vector<std::thread> workers_;
  std::function<void()> detach_;
  std::atomic<bool> paused_{false};
  bool stopped_ = false;  // main-thread lifecycle flag, not shared
};

}  // namespace pathcopy::store
