// ShardExecutor: the store layer's shard execution pipeline.
//
// Before this, a ShardedMap client drove its S shards *sequentially* —
// split the batch, then visit shard 0, shard 1, ... from the client
// thread, each install finishing before the next begins. The executor
// turns that into a pipeline: one worker thread per shard, each owning an
// MPSC submission queue, its own reclaimer registration, and its own
// allocator view. Clients scatter per-shard sub-batches into the queues
// and receive a join ticket; workers run the shards' install paths
// concurrently and scatter per-op results straight back into the
// client's result span before completing the ticket. S shards now mean S
// genuinely concurrent install streams even for a single client — and a
// shard's worker is also a natural combining funnel: every sub-batch
// from every client lands on the one thread that shard's CombiningAtom
// sees, so batches stack up in its queue instead of contending on the
// root CAS.
//
// Threading/ownership contract:
//   * construct over a ShardedMap (any map exposing shard_count() /
//     shard(s)); the constructor spawns the workers and attaches itself
//     to the map, so Sessions route execute_batch/seed_sorted through it
//     automatically;
//   * the alloc factory runs once on each worker thread and may return
//     either a fresh per-worker allocator by value (ThreadCache) or a
//     reference to a shared thread-safe one (MallocAlloc). Whatever
//     backs it must outlive the *map* (retired nodes free through the
//     allocator's retire backend long after the worker exits);
//   * submitted spans must stay valid until the task's ticket completes
//     (Session keeps them in per-session scratch and joins before
//     returning);
//   * stop() detaches from the map, lets every worker drain its queue,
//     and joins the threads; the destructor stops implicitly. Declare the
//     executor after the map so it stops first. An explicit stop() may
//     race in-flight client batches: a submit that loses the race returns
//     false and the client runs that sub-batch synchronously (Session
//     settles the ticket slot itself), so nothing is dropped and nothing
//     aborts. *Destruction* is different: like any object, the executor
//     must not be destroyed while another thread may still call into it —
//     the race-tolerant shutdown is stop()-then-quiesce-then-destroy (or
//     quiesce clients first and let RAII do both).
//
// Completion of a task happens-before the submitting client's join()
// return (mutex + condition variable in the ticket), so result writes by
// workers need no further synchronization.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "core/stats.hpp"
#include "core/universal.hpp"
#include "util/assert.hpp"
#include "util/modelcheck.hpp"

namespace pathcopy::store {

/// Join handle for one scattered client batch: arm() it with the number
/// of sub-batches about to be submitted, then join() blocks until every
/// worker completed its share. Reusable sequentially; not shareable
/// between concurrent client calls.
class BatchTicket {
 public:
  BatchTicket() = default;
  BatchTicket(const BatchTicket&) = delete;
  BatchTicket& operator=(const BatchTicket&) = delete;

  /// Must be called before the first submit referencing this ticket —
  /// workers only ever count down, so arming up front cannot race a
  /// completion into negative territory.
  void arm(unsigned subbatches) {
    const std::lock_guard<std::mutex> lock(mu_);
    PC_ASSERT(pending_ == 0, "ticket re-armed while a join is outstanding");
    pending_ = subbatches;
  }

  /// Worker side: one sub-batch done (its result writes precede this).
  /// The notify happens under the lock on purpose: the joiner's wait can
  /// only return after re-acquiring the mutex, i.e. after this worker has
  /// fully left the condition variable — which is what makes destroying
  /// the ticket right after join() safe.
  void complete_one() {
    const std::lock_guard<std::mutex> lock(mu_);
    PC_ASSERT(pending_ > 0, "ticket completed more often than armed");
    if (--pending_ == 0) cv_.notify_all();
  }

  /// Client side: blocks until every armed sub-batch completed.
  void join() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return pending_ == 0; });
  }

  bool done() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return pending_ == 0;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  unsigned pending_ = 0;
};

template <core::UniversalConstruction Uc>
class ShardExecutor {
 public:
  using Key = typename Uc::Key;
  using Value = typename Uc::Value;
  using BatchRequest = typename Uc::BatchRequest;
  using Ctx = typename Uc::Ctx;
  using SeedItems = std::vector<std::pair<Key, Value>>;

  /// One unit of shard work. Exactly one of {reqs, seed} is meaningful:
  /// a batch task runs uc.execute_batch over `reqs` and writes op i's
  /// result to results[scatter[i]] (or results[i] when scatter is null);
  /// a seed task bulk-loads `*seed` through uc.seed_sorted. All referenced
  /// storage is client-owned and must outlive the ticket.
  ///
  /// sorted_unique marks a control-plane batch (migration install/erase)
  /// whose reqs are key-sorted and key-unique: the worker routes it
  /// through the backend's bulk ingest_sorted path when it has one —
  /// giant sorted sweeps, a few CASes — and execute_batch otherwise.
  struct Task {
    std::span<const BatchRequest> reqs;
    const std::size_t* scatter = nullptr;
    bool* results = nullptr;
    const SeedItems* seed = nullptr;
    BatchTicket* ticket = nullptr;
    bool sorted_unique = false;
    std::chrono::steady_clock::time_point enqueued;
  };

  /// Spawns one worker per shard and attaches to the map. `Map` is any
  /// ShardedMap instantiation over this Uc; `AllocFactory` is invoked
  /// once on each worker thread (see the header contract).
  template <class Map, class AllocFactory>
  ShardExecutor(Map& map, AllocFactory factory) {
    const std::size_t n = map.shard_count();
    PC_ASSERT(n >= 1, "executor over an empty map");
    lanes_.reserve(n);
    for (std::size_t s = 0; s < n; ++s) {
      lanes_.push_back(std::make_unique<Lane>());
    }
    workers_.reserve(n);
    try {
      for (std::size_t s = 0; s < n; ++s) {
        workers_.emplace_back(
            [this, s, &uc = map.shard(s), factory]() mutable {
              run_worker(s, uc, factory);
            });
      }
    } catch (...) {
      // A failed spawn (e.g. std::system_error at the thread limit) must
      // not unwind past joinable threads — that is std::terminate. Wake
      // and join whatever already started, then surface the exception.
      stopped_ = true;
      for (auto& lane : lanes_) {
        const std::lock_guard<std::mutex> lock(lane->mu);
        lane->stopping = true;
        lane->cv.notify_all();
      }
      for (std::thread& w : workers_) w.join();
      throw;
    }
    map.attach_executor(*this);
    detach_ = [&map] { map.detach_executor(); };
  }

  ShardExecutor(const ShardExecutor&) = delete;
  ShardExecutor& operator=(const ShardExecutor&) = delete;

  ~ShardExecutor() { stop(); }

  std::size_t shard_count() const noexcept { return lanes_.size(); }

  /// Enqueues one task on a shard's lane. FIFO per shard: two tasks
  /// submitted to the same shard (by any threads, in a determinable
  /// order) are applied to that shard's UC in submission order. Returns
  /// false — nothing enqueued — when the lane is already stopping: a
  /// client that raced stop() past the map's detach must run the
  /// sub-batch itself (Session does exactly that), so stop() is safe to
  /// call while batches are in flight.
  [[nodiscard]] bool submit(std::size_t shard, Task task) {
    PC_ASSERT(shard < lanes_.size(), "submit to an unknown shard");
    // Before the lane lock (never inside it — a paused logical thread
    // must not hold a lock the stop() thread needs): the stop/submit
    // race the model checker drives lives between here and the
    // `lane.stopping` check below.
    PC_YIELD("exec.submit");
    task.enqueued = std::chrono::steady_clock::now();
    Lane& lane = *lanes_[shard];
    const std::lock_guard<std::mutex> lock(lane.mu);
    if (lane.stopping) return false;
    lane.q.push_back(task);
    lane.cv.notify_one();  // under the lock: see BatchTicket::complete_one
    return true;
  }

  /// Detaches from the map, drains every queue, joins the workers.
  /// Idempotent; called by the destructor. Tasks already submitted are
  /// still fully executed and their tickets completed — shutdown drains,
  /// it does not drop.
  void stop() {
    if (stopped_) return;
    stopped_ = true;
    if (detach_) detach_();
    PC_YIELD("exec.stop");
    for (auto& lane : lanes_) {
      const std::lock_guard<std::mutex> lock(lane->mu);
      lane->stopping = true;
      lane->cv.notify_all();
    }
    for (std::thread& w : workers_) w.join();
  }

  /// Instantaneous submission-queue depth of one shard's lane — a
  /// control-plane pressure probe (the continuous rebalancer backs off
  /// when client sub-batches are stacking up). Takes the lane lock; not
  /// for hot paths.
  std::size_t queue_depth(std::size_t s) const {
    PC_ASSERT(s < lanes_.size(), "queue_depth of an unknown shard");
    Lane& lane = *lanes_[s];
    const std::lock_guard<std::mutex> lock(lane.mu);
    return lane.q.size();
  }

  /// A shard worker's counters (install stats + queue depth / latency).
  /// Meaningful once stop() returned; workers publish on exit.
  const core::OpStats& shard_stats(std::size_t s) const {
    PC_ASSERT(stopped_, "shard_stats before stop()");
    return lanes_[s]->final_stats;
  }

  /// Folds every worker's counters into a ShardStatsBoard-compatible
  /// accumulator (anything with add(shard, OpStats)).
  template <class Board>
  void fold_into(Board& board) const {
    for (std::size_t s = 0; s < lanes_.size(); ++s) {
      board.add(s, shard_stats(s));
    }
  }

 private:
  /// Per-shard submission lane. Heap-allocated once: mutexes and cvs are
  /// neither movable nor copyable, and workers hold stable pointers.
  struct Lane {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Task> q;
    bool stopping = false;
    core::OpStats final_stats;  // written by the worker on exit, under mu
  };

  template <class AllocFactory>
  void run_worker(std::size_t s, Uc& uc, AllocFactory& factory) {
    // decltype(auto): the factory may hand back a per-worker allocator by
    // value (guaranteed elision, so non-movable ThreadCache works) or a
    // reference to a shared thread-safe one.
    decltype(auto) alloc = factory();
    Ctx ctx(uc.reclaimer(), alloc);
    std::unique_ptr<bool[]> scratch;
    std::size_t scratch_cap = 0;
    Lane& lane = *lanes_[s];
    for (;;) {
      Task task;
      std::size_t depth;
      {
        std::unique_lock<std::mutex> lock(lane.mu);
        lane.cv.wait(lock, [&] { return !lane.q.empty() || lane.stopping; });
        if (lane.q.empty()) break;  // stopping and fully drained
        task = lane.q.front();
        lane.q.pop_front();
        depth = lane.q.size();
      }
      if (task.seed != nullptr) {
        uc.seed_sorted(ctx, task.seed->begin(), task.seed->end());
      } else if (task.scatter == nullptr) {
        const std::span<bool> out(task.results, task.reqs.size());
        if constexpr (requires { uc.ingest_sorted(ctx, task.reqs, out); }) {
          if (task.sorted_unique) {
            uc.ingest_sorted(ctx, task.reqs, out);
          } else {
            uc.execute_batch(ctx, task.reqs, out);
          }
        } else {
          uc.execute_batch(ctx, task.reqs, out);
        }
      } else {
        const std::size_t n = task.reqs.size();
        if (scratch_cap < n) {
          scratch = std::make_unique<bool[]>(n);
          scratch_cap = n;
        }
        uc.execute_batch(ctx, task.reqs, std::span<bool>(scratch.get(), n));
        for (std::size_t i = 0; i < n; ++i) {
          task.results[task.scatter[i]] = scratch[i];
        }
      }
      ctx.stats.exec_tasks += 1;
      ctx.stats.exec_queue_depth_sum += depth;
      ctx.stats.exec_task_ns += static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - task.enqueued)
              .count());
      if (task.ticket != nullptr) task.ticket->complete_one();
    }
    const std::lock_guard<std::mutex> lock(lane.mu);
    lane.final_stats = ctx.stats;
  }

  std::vector<std::unique_ptr<Lane>> lanes_;
  std::vector<std::thread> workers_;
  std::function<void()> detach_;
  bool stopped_ = false;  // main-thread lifecycle flag, not shared
};

}  // namespace pathcopy::store
