// Per-shard OpStats roll-up for the store layer.
//
// Each Session owns plain per-shard counters (one OpStats per shard, no
// atomics on the hot path). At the end of a run every worker folds its
// session into a ShardStatsBoard — a mutex-guarded, per-shard accumulator
// — and the bench/report side reads per-shard and whole-store totals from
// one place. This is the sharded analogue of bench_util's
// OpStatsAccumulator, kept in src/store because the per-shard breakdown
// (which shard absorbed the installs, where the CAS failures concentrate,
// who formed batches) is store-layer vocabulary, not bench plumbing.
#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <utility>
#include <vector>

#include "core/stats.hpp"
#include "util/assert.hpp"

namespace pathcopy::store {

/// One-shot roll-up of a Rebalancer run, printed as a footer under the
/// per-shard table. tablets_per_shard is empty on non-tablet routers;
/// the counters separate cheap flips (splits: boundary refinements that
/// move zero keys; assignment moves: single-tablet reassignments) from
/// the keys they carried, and surface how often the migration throttle
/// held a planned move back (budget exhausted vs client backpressure).
/// peak_interval_keys is the most keys moved inside one throttle
/// interval; peak_interval_est is the admitted-estimate window the
/// budget actually bounds (and what CI asserts — actuals may drift
/// past the estimate while writers run between plan and extraction).
struct RebalanceSummary {
  std::vector<std::size_t> tablets_per_shard;
  std::uint64_t migrations = 0;
  std::uint64_t splits = 0;
  std::uint64_t assignment_moves = 0;
  std::uint64_t keys_moved = 0;
  std::uint64_t budget_deferrals = 0;
  std::uint64_t pressure_deferrals = 0;
  std::uint64_t peak_interval_keys = 0;
  std::uint64_t peak_interval_est = 0;
  std::uint64_t oversize_escapes = 0;
  std::uint64_t budget_keys = 0;  // the configured per-interval cap
};

class ShardStatsBoard {
 public:
  explicit ShardStatsBoard(std::size_t shards) : per_shard_(shards) {}

  /// Folds one thread's per-shard counters in. Called once per worker at
  /// the end of its run (not per-op), so the lock is cold.
  void add(std::size_t shard, const core::OpStats& s) {
    PC_ASSERT(shard < per_shard_.size(), "shard index out of range");
    const std::lock_guard<std::mutex> lock(mu_);
    per_shard_[shard] += s;
  }

  /// Folds a whole Session (anything exposing shard_stats(i)).
  template <class Session>
  void add_session(const Session& session) {
    for (std::size_t i = 0; i < per_shard_.size(); ++i) {
      add(i, session.shard_stats(i));
    }
  }

  std::size_t shards() const noexcept { return per_shard_.size(); }

  core::OpStats shard(std::size_t i) const {
    const std::lock_guard<std::mutex> lock(mu_);
    return per_shard_[i];
  }

  core::OpStats total() const {
    const std::lock_guard<std::mutex> lock(mu_);
    core::OpStats t;
    for (const core::OpStats& s : per_shard_) t += s;
    return t;
  }

  /// Attaches a Rebalancer roll-up; print() renders it as a footer.
  void set_rebalance_summary(RebalanceSummary s) {
    const std::lock_guard<std::mutex> lock(mu_);
    rebalance_ = std::move(s);
    have_rebalance_ = true;
  }

  /// Wall-clock length of the measured run; lets print() turn the read
  /// counter into reads/s. Optional — unset, the rate column shows 0.
  void set_elapsed_seconds(double s) {
    const std::lock_guard<std::mutex> lock(mu_);
    elapsed_s_ = s;
  }

  /// Two per-shard tables, each kept under 120 columns.
  ///
  /// WRITE section: installs, retry pressure, batch formation, the
  /// executor pipeline ("tkt/wake": mean tickets a worker wakeup
  /// absorbed — above 1 means backed-up lanes coalesce tickets into
  /// shared installs; "task-us": mean submit-to-completion latency over
  /// the *sampled* tasks — zero on executor-less runs). "batched%" is
  /// the share of installs that went through the sorted-sweep path.
  /// "mig-in"/"mig-out" are the keys a Rebalancer moved into/out of the
  /// shard; "recycled" is the failed-install recycling loop.
  ///
  /// READ section (printed only when the run read at all): "reads" counts
  /// every probe key and per-key read; "reads/s" needs
  /// set_elapsed_seconds. "rd-batch%" is the share of reads resolved by a
  /// batched multi_get probe, "mean-probe" the mean keys per probe sweep,
  /// "rd-tkt/wake" the mean read TICKETS absorbed per merged executor
  /// read sweep (above 1 = cross-ticket read coalescing), "saved-nodes"
  /// the per-key-descent node visits the shared sweeps avoided.
  /// "cut-retry" is consistent-cut pressure (re-pins because the shard's
  /// version moved mid-validation); "epo-wait" counts ops/cuts that
  /// parked on a migrating topology.
  void print(std::FILE* out) const {
    std::fprintf(out,
                 "%6s  %10s  %9s  %11s  %9s  %10s  %8s  %8s  %7s  %7s  %8s\n",
                 "shard", "installs", "noops", "cas-fail/op", "batched%",
                 "mean batch", "tkt/wake", "task-us", "mig-in", "mig-out",
                 "recycled");
    core::OpStats t;
    for (std::size_t i = 0; i < per_shard_.size(); ++i) {
      const core::OpStats s = shard(i);
      t += s;
      print_row(out, i, s);
    }
    std::fprintf(out,
                 "%6s  %10llu  %9llu  %11.3f  %8.1f%%  %10.2f  %8.2f  "
                 "%8.1f  %7llu  %7llu  %8llu\n",
                 "total", static_cast<unsigned long long>(t.updates),
                 static_cast<unsigned long long>(t.noop_updates),
                 t.failure_ratio(), batched_pct(t), t.mean_batch_size(),
                 t.tickets_per_wake(), t.mean_task_us(),
                 static_cast<unsigned long long>(t.mig_keys_in),
                 static_cast<unsigned long long>(t.mig_keys_out),
                 static_cast<unsigned long long>(t.recycled_nodes));
    if (t.reads > 0) {
      double elapsed = 0.0;
      {
        const std::lock_guard<std::mutex> lock(mu_);
        elapsed = elapsed_s_;
      }
      std::fprintf(out,
                   "%6s  %11s  %10s  %9s  %10s  %11s  %11s  %9s  %8s\n",
                   "shard", "reads", "reads/s", "rd-batch%", "mean-probe",
                   "rd-tkt/wake", "saved-nodes", "cut-retry", "epo-wait");
      for (std::size_t i = 0; i < per_shard_.size(); ++i) {
        print_read_row(out, i, shard(i), elapsed);
      }
      print_read_total(out, t, elapsed);
    }
    if (t.exec_wakes > 0) {
      std::fprintf(
          out,
          "executor: %llu wakes (%llu spin-caught, %llu parked), "
          "%llu coalesced installs absorbed %llu tickets; "
          "%llu read sweeps absorbed %llu read tickets; "
          "task-us over %llu sampled tasks\n",
          static_cast<unsigned long long>(t.exec_wakes),
          static_cast<unsigned long long>(t.exec_spin_wakes),
          static_cast<unsigned long long>(t.exec_parks),
          static_cast<unsigned long long>(t.exec_coalesced_installs),
          static_cast<unsigned long long>(t.exec_coalesced_tasks),
          static_cast<unsigned long long>(t.exec_read_sweeps),
          static_cast<unsigned long long>(t.exec_read_tasks),
          static_cast<unsigned long long>(t.exec_task_samples));
    }
    RebalanceSummary reb;
    bool have = false;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      reb = rebalance_;
      have = have_rebalance_;
    }
    if (!have) return;
    std::fprintf(out,
                 "rebalance: %llu flips (%llu splits, %llu moves), "
                 "%llu keys moved, deferrals budget=%llu pressure=%llu, "
                 "peak interval keys=%llu (est %llu, escapes %llu)/%llu\n",
                 static_cast<unsigned long long>(reb.migrations),
                 static_cast<unsigned long long>(reb.splits),
                 static_cast<unsigned long long>(reb.assignment_moves),
                 static_cast<unsigned long long>(reb.keys_moved),
                 static_cast<unsigned long long>(reb.budget_deferrals),
                 static_cast<unsigned long long>(reb.pressure_deferrals),
                 static_cast<unsigned long long>(reb.peak_interval_keys),
                 static_cast<unsigned long long>(reb.peak_interval_est),
                 static_cast<unsigned long long>(reb.oversize_escapes),
                 static_cast<unsigned long long>(reb.budget_keys));
    if (!reb.tablets_per_shard.empty()) {
      std::fprintf(out, "tablets/shard:");
      for (const std::size_t c : reb.tablets_per_shard) {
        std::fprintf(out, " %zu", c);
      }
      std::fprintf(out, "\n");
    }
  }

 private:
  static double batched_pct(const core::OpStats& s) {
    return s.updates == 0 ? 0.0
                          : 100.0 * static_cast<double>(s.batched_installs) /
                                static_cast<double>(s.updates);
  }

  static void print_row(std::FILE* out, std::size_t i,
                        const core::OpStats& s) {
    std::fprintf(out,
                 "%6zu  %10llu  %9llu  %11.3f  %8.1f%%  %10.2f  %8.2f  "
                 "%8.1f  %7llu  %7llu  %8llu\n",
                 i, static_cast<unsigned long long>(s.updates),
                 static_cast<unsigned long long>(s.noop_updates),
                 s.failure_ratio(), batched_pct(s), s.mean_batch_size(),
                 s.tickets_per_wake(), s.mean_task_us(),
                 static_cast<unsigned long long>(s.mig_keys_in),
                 static_cast<unsigned long long>(s.mig_keys_out),
                 static_cast<unsigned long long>(s.recycled_nodes));
  }

  static void print_read_row(std::FILE* out, std::size_t i,
                             const core::OpStats& s, double elapsed) {
    std::fprintf(out,
                 "%6zu  %11llu  %10.0f  %8.1f%%  %10.2f  %11.2f  %11llu  "
                 "%9llu  %8llu\n",
                 i, static_cast<unsigned long long>(s.reads),
                 elapsed > 0.0 ? static_cast<double>(s.reads) / elapsed : 0.0,
                 100.0 * s.read_batched_share(), s.mean_read_batch(),
                 s.read_tickets_per_wake(),
                 static_cast<unsigned long long>(s.probe_nodes_saved),
                 static_cast<unsigned long long>(s.cut_retries),
                 static_cast<unsigned long long>(s.epoch_retries));
  }

  static void print_read_total(std::FILE* out, const core::OpStats& t,
                               double elapsed) {
    std::fprintf(out,
                 "%6s  %11llu  %10.0f  %8.1f%%  %10.2f  %11.2f  %11llu  "
                 "%9llu  %8llu\n",
                 "total", static_cast<unsigned long long>(t.reads),
                 elapsed > 0.0 ? static_cast<double>(t.reads) / elapsed : 0.0,
                 100.0 * t.read_batched_share(), t.mean_read_batch(),
                 t.read_tickets_per_wake(),
                 static_cast<unsigned long long>(t.probe_nodes_saved),
                 static_cast<unsigned long long>(t.cut_retries),
                 static_cast<unsigned long long>(t.epoch_retries));
  }

  mutable std::mutex mu_;
  std::vector<core::OpStats> per_shard_;
  RebalanceSummary rebalance_;
  bool have_rebalance_ = false;
  double elapsed_s_ = 0.0;
};

}  // namespace pathcopy::store
