// VersionVector + ConsistentCut: vector-clock-consistent cross-shard
// reads for the store layer.
//
// A ShardedMap is S independent universal constructions; each publishes
// its own monotone version counter. A naive composed read pins S
// snapshots one after another, so the S contributions may belong to
// moments arbitrarily far apart — real per-shard versions, but no single
// instant at which the whole store looked like that. The cut protocol
// here repairs that:
//
//   1. pin every shard (pin_versioned: snapshot + version label + root
//      token, guard held);
//   2. with ALL pins held, re-probe every shard; a shard whose current
//      root token differs from its pinned token moved — drop only that
//      pin and re-pin it;
//   3. repeat until one full validation pass sees every shard unmoved.
//
// Why this is a true consistent cut: a pinned root cannot be freed, so
// its address cannot be recycled, and no install ever republishes an
// existing root — hence "current token == pinned token" means the shard
// has been on that exact version continuously since the pin. In the
// final round every (re-)pin happens before every validation probe, so
// the instant between the last pin and the first probe lies inside every
// shard's stability window: at that instant the store's contents were
// exactly the S pinned snapshots. The token comparison is the ABA-free
// form of "did the version move" (see the concept note in
// core/universal.hpp); the version labels are the reported clock.
//
// No token is recyclable. The CombiningAtom's token is its VersionRec;
// the plain Atom's empty versions carry tagged sentinel tokens (a fresh
// sentinel per erase-to-empty install — core/atom.hpp), so every install
// on every backend publishes a never-before-current address and the
// token comparison alone is exact. The protocol's earlier shape — a
// nullptr empty token cross-checked against the version counter — had a
// real ABA: two installs whose counter bumps were both still in flight
// at probe time (each parked between its root CAS and its fetch_add)
// left both token and counter looking untouched, certifying a cut that
// matched no instant. tests/test_model_check.cpp reproduces that as a
// deterministic schedule against the legacy Atom and shows the sentinel
// representation closes it.
//
// Progress: each failed validation implies some shard installed a new
// version — retries are bounded by system-wide write progress, the same
// progress class as the Atom's CAS retry loop. The per-round work between
// pin and validation is S pointer loads (traversal happens after the cut
// is established, on the still-pinned immutable snapshots), so the window
// is tiny and convergence under write load is fast in practice.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "core/universal.hpp"
#include "util/assert.hpp"
#include "util/modelcheck.hpp"

namespace pathcopy::store {

namespace detail_vv {
/// Default epoch probe for stores without routing epochs: one fixed
/// non-null identity, so the epoch checks in collect() always pass.
struct StableEpochProbe {
  const void* operator()() const noexcept {
    static const char kStable = 0;
    return &kStable;
  }
};
struct NoopHook {
  void operator()() const noexcept {}
};
}  // namespace detail_vv

/// One version label per shard — the clock a consistent cut reports.
class VersionVector {
 public:
  VersionVector() = default;
  explicit VersionVector(std::size_t shards) : v_(shards, 0) {}

  /// Reset to `shards` zeroed components, reusing capacity (the cut
  /// engine's steady state allocates nothing).
  void assign(std::size_t shards) { v_.assign(shards, 0); }

  std::size_t size() const noexcept { return v_.size(); }
  std::uint64_t operator[](std::size_t s) const { return v_[s]; }
  std::uint64_t& operator[](std::size_t s) { return v_[s]; }

  bool operator==(const VersionVector&) const = default;

  /// Component-wise <=: this clock is no later than `o` on every shard.
  /// Successive cuts taken by one session are totally ordered under this
  /// (shard versions only grow), which is what the monotonicity tests
  /// assert.
  bool dominated_by(const VersionVector& o) const {
    PC_ASSERT(v_.size() == o.v_.size(), "clock width mismatch");
    for (std::size_t s = 0; s < v_.size(); ++s) {
      if (v_[s] > o.v_[s]) return false;
    }
    return true;
  }

  const std::vector<std::uint64_t>& values() const noexcept { return v_; }

 private:
  std::vector<std::uint64_t> v_;
};

/// The cut engine: pins every shard of a map and converges to one stable
/// vector clock. Owns the S reclaimer guards for its lifetime, so the
/// snapshots it exposes stay valid until the cut is destroyed (or
/// release()d). Create on the reading thread; not shareable.
template <core::UniversalConstruction Uc>
class ConsistentCut {
 public:
  using Structure = typename Uc::Structure;
  using View = typename Uc::VersionedView;

  /// Runs the pin / validate / re-pin loop. `shard_at(s)` yields the
  /// shard UC, `ctx_at(s)` the caller's per-shard context, `on_retry(s)`
  /// is invoked each time shard s moved and had to be re-pinned (stats
  /// hook). Any previously held pins are released first.
  ///
  /// `epoch_probe` ties the cut to the store's routing topology
  /// (store/router_epoch.hpp): it returns an opaque identity of the
  /// current *settled* epoch, or nullptr while a topology flip's
  /// migration is in flight. The probe brackets the pin window — once
  /// before the first pin of a round, once after token stability — and
  /// the cut only completes when both observations name the same settled
  /// epoch. That is what makes a cut wholly-before or wholly-after any
  /// rebalance, never a mixture: during a migration the store transiently
  /// holds a moving key in both its old and new shard, and a cut that
  /// stabilized there would double-count; refusing to stabilize on an
  /// unsettled epoch (and restarting from scratch when the epoch pointer
  /// moved inside the window, `on_epoch_retry` counting it) excludes
  /// exactly that state. Maps without rebalancing pass the default
  /// always-stable probe and lose nothing.
  template <class ShardAt, class CtxAt, class OnRetry,
            class EpochProbe = detail_vv::StableEpochProbe,
            class OnEpochRetry = detail_vv::NoopHook>
  void collect(std::size_t shards, ShardAt&& shard_at, CtxAt&& ctx_at,
               OnRetry&& on_retry, EpochProbe&& epoch_probe = {},
               OnEpochRetry&& on_epoch_retry = {}) {
    pins_.clear();
    pins_.resize(shards);
    retries_ = 0;
    for (;;) {
      PC_YIELD("cut.epoch");
      const void* e0 = epoch_probe();
      if (e0 == nullptr) {
        // Topology flip in flight: both-copies states exist right now.
        for (auto& p : pins_) p.reset();
        on_epoch_retry();
        std::this_thread::yield();
        continue;
      }
      for (;;) {
        for (std::size_t s = 0; s < shards; ++s) {
          if (!pins_[s].has_value()) {
            PC_YIELD("cut.pin");
            pins_[s].emplace(shard_at(s).pin_versioned(ctx_at(s)));
          }
        }
        // All pins held: one probe pass. Every probe runs after every pin,
        // which is what puts one instant inside all stability windows.
        // Tokens are never republished (header comment), so token
        // inequality is exactly "the shard moved since the pin".
        bool stable = true;
        for (std::size_t s = 0; s < shards; ++s) {
          PC_YIELD("cut.probe");
          const bool moved = shard_at(s).root_token() != pins_[s]->token;
          if (moved) {
            pins_[s].reset();
            ++retries_;
            on_retry(s);
            stable = false;
          }
        }
        if (stable) break;
      }
      // Tokens stable — now the epoch must not have moved inside the
      // window (and must still be settled), or the snapshots straddle a
      // topology flip and the whole cut restarts.
      if (epoch_probe() == e0) {
        epoch_token_ = e0;
        break;
      }
      for (auto& p : pins_) p.reset();
      on_epoch_retry();
    }
    clock_.assign(shards);
    for (std::size_t s = 0; s < shards; ++s) {
      clock_[s] = pins_[s]->version;
    }
  }

  std::size_t shards() const noexcept { return pins_.size(); }

  /// The pinned snapshot of shard s — valid while the cut holds its pins.
  const Structure& snapshot(std::size_t s) const {
    PC_DASSERT(pins_[s].has_value(), "snapshot of an unpinned shard");
    return pins_[s]->snapshot;
  }

  std::uint64_t version(std::size_t s) const { return clock_[s]; }
  const VersionVector& clock() const noexcept { return clock_; }

  /// Identity of the settled routing epoch the cut was taken under (the
  /// value the epoch probe returned); the default probe's sentinel for
  /// epoch-less stores. Two cuts with equal tokens saw one topology.
  const void* epoch_token() const noexcept { return epoch_token_; }

  /// Re-pins performed before the clock stabilized (0 when no writer
  /// raced the cut).
  std::uint64_t retries() const noexcept { return retries_; }

  /// Drops every guard; snapshots become invalid.
  void release() { pins_.clear(); }

 private:
  std::vector<std::optional<View>> pins_;
  VersionVector clock_;
  std::uint64_t retries_ = 0;
  const void* epoch_token_ = nullptr;
};

}  // namespace pathcopy::store
