// Shared helpers for the test suite.
#pragma once

#include <vector>

#include "alloc/malloc_alloc.hpp"
#include "core/builder.hpp"
#include "reclaim/retired.hpp"

namespace pathcopy::test {

/// Standalone builder session for constructing persistent values outside
/// an Atom: commit the attempt and free the superseded nodes immediately
/// (safe single-threaded — there are no concurrent readers in tests that
/// use this).
template <class Alloc>
void commit_and_free(core::Builder<Alloc>& b) {
  b.seal();
  std::vector<reclaim::Retired> retired = b.commit();
  reclaim::run_all(retired);
}

/// Applies one structural update outside an Atom: f(builder) -> new value.
/// Superseded nodes are freed immediately.
template <class Alloc, class F>
auto apply(Alloc& alloc, F&& f) {
  core::Builder<Alloc> b(alloc);
  auto result = f(b);
  commit_and_free(b);
  return result;
}

}  // namespace pathcopy::test
