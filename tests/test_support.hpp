// Shared helpers for the test suite.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <span>
#include <utility>
#include <vector>

#include "alloc/arena_alloc.hpp"
#include "alloc/malloc_alloc.hpp"
#include "core/builder.hpp"
#include "persist/batch.hpp"
#include "reclaim/retired.hpp"
#include "util/rng.hpp"

namespace pathcopy::test {

/// Standalone builder session for constructing persistent values outside
/// an Atom: commit the attempt and free the superseded nodes immediately
/// (safe single-threaded — there are no concurrent readers in tests that
/// use this).
template <class Alloc>
void commit_and_free(core::Builder<Alloc>& b) {
  b.seal();
  std::vector<reclaim::Retired> retired = b.commit();
  reclaim::run_all(retired);
}

/// Applies one structural update outside an Atom: f(builder) -> new value.
/// Superseded nodes are freed immediately.
template <class Alloc, class F>
auto apply(Alloc& alloc, F&& f) {
  core::Builder<Alloc> b(alloc);
  auto result = f(b);
  commit_and_free(b);
  return result;
}

// ----- shared sorted-batch oracle harness -----
//
// The property every SupportsSortedBatch structure is held to, written
// once and instantiated per structure (DS = persist::X<int64, int64>):
// a key-sorted, key-unique batch applied in one sweep must leave exactly
// the contents of applying the ops one at a time, report the per-op
// outcomes the point API would return, keep the structure's own
// invariants (check_invariants audits the discipline-specific contract:
// treap heap order, AVL heights, red/black, weight balance, B-tree
// occupancy/depth, external-BST leaf/router separation), and share the
// whole version on an all-noop batch — same root, zero allocations.

/// Key patterns for batch generation: uniform over the whole key range
/// vs clustered runs (a few tight key neighborhoods), the regime where
/// the shared spine actually pays.
enum class BatchKeyPattern { kUniform, kClustered };

template <class DS>
typename DS::BatchOp batch_ins(std::int64_t k, std::int64_t v) {
  return typename DS::BatchOp{DS::BatchOpKind::kInsert, k, v};
}
template <class DS>
typename DS::BatchOp batch_era(std::int64_t k) {
  return typename DS::BatchOp{DS::BatchOpKind::kErase, k, std::nullopt};
}
template <class DS>
typename DS::BatchOp batch_asg(std::int64_t k, std::int64_t v) {
  return typename DS::BatchOp{DS::BatchOpKind::kAssign, k, v};
}

/// All-noop and empty batches must return the very same version without
/// allocating a single node.
template <class DS>
void batch_oracle_noop_shares_root() {
  alloc::Arena a;
  DS t;
  for (const std::int64_t k : {10, 20, 30}) {
    t = apply(a, [&](auto& b) { return t.insert(b, k, k * 10); });
  }
  {
    core::Builder<alloc::Arena> b(a);
    std::vector<typename DS::BatchOutcome> out;
    DS t2 = t.apply_sorted_batch(b, {}, out);
    EXPECT_EQ(t2.root_ptr(), t.root_ptr());
    EXPECT_EQ(b.fresh_count(), 0u);
    b.rollback();
  }
  {
    core::Builder<alloc::Arena> b(a);
    // Inserts of present keys + erases of absent keys: nothing changes,
    // and the whole version is shared (no copies at all).
    std::vector<typename DS::BatchOp> ops{
        batch_ins<DS>(10, 99), batch_era<DS>(15), batch_ins<DS>(30, 99),
        batch_era<DS>(40)};
    std::vector<typename DS::BatchOutcome> out(ops.size());
    DS t2 = t.apply_sorted_batch(b, ops, out);
    EXPECT_EQ(t2.root_ptr(), t.root_ptr());
    EXPECT_EQ(b.fresh_count(), 0u);
    for (const auto o : out) EXPECT_EQ(o, DS::BatchOutcome::kNoop);
    EXPECT_EQ(*t2.find(10), 100);  // set-style insert kept the old value
    b.rollback();
  }
  {
    // Deep tree: the zero-alloc guarantee must hold through interior
    // levels (a multi-node B-tree, rotated BSTs), not just a tiny root.
    std::vector<std::pair<std::int64_t, std::int64_t>> items;
    for (std::int64_t k = 0; k < 512; ++k) items.emplace_back(k * 2, k);
    DS big = apply(a, [&](auto& b) {
      return DS::from_sorted(b, items.begin(), items.end());
    });
    core::Builder<alloc::Arena> b(a);
    std::vector<typename DS::BatchOp> ops;
    for (std::int64_t k = 1; k < 1024; k += 38) {
      ops.push_back(batch_era<DS>(k));  // odd keys: all absent
    }
    for (std::int64_t k = 0; k < 1024; k += 34) {
      ops.push_back(batch_ins<DS>(k, -1));  // even keys: all present
    }
    std::sort(ops.begin(), ops.end(),
              [](const typename DS::BatchOp& x, const typename DS::BatchOp& y) {
                return x.key < y.key;
              });
    std::vector<typename DS::BatchOutcome> out(ops.size());
    DS big2 = big.apply_sorted_batch(b, ops, out);
    EXPECT_EQ(big2.root_ptr(), big.root_ptr());
    EXPECT_EQ(b.fresh_count(), 0u);
    for (const auto o : out) EXPECT_EQ(o, DS::BatchOutcome::kNoop);
    b.rollback();
  }
}

/// Deterministic outcome/content spot check over all three op kinds.
template <class DS>
void batch_oracle_outcomes() {
  alloc::Arena a;
  DS t;
  for (const std::int64_t k : {10, 20, 30}) {
    t = apply(a, [&](auto& b) { return t.insert(b, k, k * 10); });
  }
  std::vector<typename DS::BatchOp> ops{
      batch_ins<DS>(5, 55), batch_era<DS>(10), batch_asg<DS>(20, 2000),
      batch_asg<DS>(25, 2500), batch_ins<DS>(30, 999)};
  std::vector<typename DS::BatchOutcome> out(ops.size());
  DS t2 = apply(a, [&](auto& b) { return t.apply_sorted_batch(b, ops, out); });
  EXPECT_EQ(out[0], DS::BatchOutcome::kInserted);
  EXPECT_EQ(out[1], DS::BatchOutcome::kErased);
  EXPECT_EQ(out[2], DS::BatchOutcome::kAssigned);
  EXPECT_EQ(out[3], DS::BatchOutcome::kInserted);  // assign on absent key
  EXPECT_EQ(out[4], DS::BatchOutcome::kNoop);
  EXPECT_EQ(t2.size(), 4u);
  EXPECT_EQ(*t2.find(5), 55);
  EXPECT_FALSE(t2.contains(10));
  EXPECT_EQ(*t2.find(20), 2000);
  EXPECT_EQ(*t2.find(25), 2500);
  EXPECT_EQ(*t2.find(30), 300);
  EXPECT_TRUE(t2.check_invariants());
}

/// Randomized rounds: sorted unique batches of mixed kinds against a
/// random starting set, checked against sequential per-op application
/// (contents + outcomes) and the structure's invariant audit. `extra`
/// receives (batch_result, sequential_result) for structure-specific
/// checks — the treap adds canonical-shape equality there.
template <class DS, class Extra>
void batch_oracle_random(std::uint64_t seed, int rounds,
                         BatchKeyPattern pattern, Extra&& extra) {
  util::Xoshiro256 rng(seed);
  for (int round = 0; round < rounds; ++round) {
    // Arena allocator: individual frees are no-ops, so the batch and the
    // sequential reference can both be applied to the same starting
    // version (each superseding its copy of the spine) without
    // invalidating the other.
    alloc::Arena a;
    {
      const std::int64_t key_range =
          1 + static_cast<std::int64_t>(rng.range(0, 400));
      // Clustered batches draw from a few tight neighborhoods of the key
      // space instead of the whole range.
      std::vector<std::int64_t> cluster_bases;
      for (int c = 0; c < 4; ++c) {
        cluster_bases.push_back(rng.range(0, key_range));
      }
      const auto gen_key = [&]() -> std::int64_t {
        if (pattern == BatchKeyPattern::kUniform) {
          return rng.range(0, key_range);
        }
        const auto base = cluster_bases[rng.below(cluster_bases.size())];
        return base + rng.range(0, 12);
      };

      DS t;
      for (int i = 0; i < 120; ++i) {
        const std::int64_t k = rng.range(0, key_range);
        t = apply(a, [&](auto& b) { return t.insert(b, k, k * 7); });
      }

      std::vector<typename DS::BatchOp> ops;
      const int batch_size = 1 + static_cast<int>(rng.range(0, 40));
      std::set<std::int64_t> used;
      for (int i = 0; i < batch_size; ++i) {
        const std::int64_t k = gen_key();
        if (!used.insert(k).second) continue;
        const auto roll = rng.range(0, 2);
        if (roll == 0) {
          ops.push_back(batch_ins<DS>(k, k * 100 + 1));
        } else if (roll == 1) {
          ops.push_back(batch_era<DS>(k));
        } else {
          ops.push_back(batch_asg<DS>(k, k * 100 + 2));
        }
      }
      std::sort(ops.begin(), ops.end(),
                [](const typename DS::BatchOp& x,
                   const typename DS::BatchOp& y) { return x.key < y.key; });

      std::vector<typename DS::BatchOutcome> out(ops.size());
      DS batch = apply(
          a, [&](auto& b) { return t.apply_sorted_batch(b, ops, out); });
      ASSERT_TRUE(batch.check_invariants()) << "round " << round;

      // Sequential reference + expected outcomes from per-op semantics.
      DS seq = t;
      for (std::size_t i = 0; i < ops.size(); ++i) {
        const typename DS::BatchOp& op = ops[i];
        const bool was_present = seq.contains(op.key);
        seq = apply(a, [&](auto& b) {
          switch (op.kind) {
            case DS::BatchOpKind::kInsert:
              return seq.insert(b, op.key, *op.value);
            case DS::BatchOpKind::kErase:
              return seq.erase(b, op.key);
            default:
              return seq.insert_or_assign(b, op.key, *op.value);
          }
        });
        typename DS::BatchOutcome expect;
        switch (op.kind) {
          case DS::BatchOpKind::kInsert:
            expect = was_present ? DS::BatchOutcome::kNoop
                                 : DS::BatchOutcome::kInserted;
            break;
          case DS::BatchOpKind::kErase:
            expect = was_present ? DS::BatchOutcome::kErased
                                 : DS::BatchOutcome::kNoop;
            break;
          default:
            expect = was_present ? DS::BatchOutcome::kAssigned
                                 : DS::BatchOutcome::kInserted;
            break;
        }
        ASSERT_EQ(out[i], expect) << "round " << round << " op " << i;
      }
      ASSERT_EQ(batch.items(), seq.items()) << "round " << round;
      extra(batch, seq);
    }
  }
}

template <class DS>
void batch_oracle_random(std::uint64_t seed, int rounds,
                         BatchKeyPattern pattern) {
  batch_oracle_random<DS>(seed, rounds, pattern, [](const DS&, const DS&) {});
}

// ----- shared read-path oracle harnesses (PR 10) -----

/// get_sorted_batch must answer exactly like per-key find() — present and
/// absent keys alike — and its ReadProbeStats must be internally
/// consistent: the per-key counterfactual can never be cheaper than the
/// shared sweep, and a batch of B > 1 clustered keys must actually share
/// descent (strictly positive savings on a non-trivial tree).
template <class DS>
void read_batch_oracle_random(std::uint64_t seed, int rounds,
                              BatchKeyPattern pattern) {
  util::Xoshiro256 rng(seed);
  for (int round = 0; round < rounds; ++round) {
    alloc::Arena a;
    const std::int64_t key_range =
        64 + static_cast<std::int64_t>(rng.range(0, 400));
    std::vector<std::int64_t> cluster_bases;
    for (int c = 0; c < 4; ++c) {
      cluster_bases.push_back(rng.range(0, key_range));
    }
    const auto gen_key = [&]() -> std::int64_t {
      if (pattern == BatchKeyPattern::kUniform) {
        return rng.range(0, key_range);
      }
      const auto base = cluster_bases[rng.below(cluster_bases.size())];
      return base + rng.range(0, 12);
    };

    DS t;
    for (int i = 0; i < 150; ++i) {
      const std::int64_t k = rng.range(0, key_range);
      t = apply(a, [&](auto& b) { return t.insert(b, k, k * 7); });
    }

    std::set<std::int64_t> used;
    const int batch_size = 1 + static_cast<int>(rng.range(0, 48));
    for (int i = 0; i < batch_size; ++i) used.insert(gen_key());
    const std::vector<std::int64_t> keys(used.begin(), used.end());

    std::vector<typename DS::ReadOutcome> out(keys.size());
    const persist::ReadProbeStats st = t.get_sorted_batch(
        std::span<const std::int64_t>(keys),
        std::span<typename DS::ReadOutcome>(out));
    for (std::size_t i = 0; i < keys.size(); ++i) {
      const std::int64_t* v = t.find(keys[i]);
      ASSERT_EQ(out[i].present(), v != nullptr)
          << "round " << round << " key " << keys[i];
      if (v != nullptr) {
        ASSERT_EQ(*out[i].value, *v) << "round " << round << " key "
                                     << keys[i];
      }
    }
    ASSERT_GE(st.per_key_nodes, st.nodes_visited) << "round " << round;
    if (keys.size() > 1 && t.size() > 8 &&
        pattern == BatchKeyPattern::kClustered) {
      EXPECT_GT(st.nodes_saved(), 0u) << "round " << round;
    }
  }
}

/// for_each_range / count_range / bounded scan oracle, shared by the
/// PR 6 (AVL, B-tree) and PR 10 (red-black, weight-balanced, external
/// BST) range ports: random windows against a std::set reference, plus
/// the boundary windows (empty [k,k), singleton [k,k+1)) and the
/// scan-limit prefix property.
template <class DS>
void range_oracle_random(std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  alloc::Arena a;
  DS t;
  std::set<std::int64_t> oracle;
  for (int i = 0; i < 600; ++i) {
    const std::int64_t k = rng.range(0, 1000);
    oracle.insert(k);
    t = apply(a, [&](auto& b) { return t.insert(b, k, k * 3); });
  }
  ASSERT_EQ(t.size(), oracle.size());

  const auto window_oracle = [&](std::int64_t lo, std::int64_t hi) {
    std::vector<std::pair<std::int64_t, std::int64_t>> want;
    for (auto it = oracle.lower_bound(lo); it != oracle.end() && *it < hi;
         ++it) {
      want.emplace_back(*it, *it * 3);
    }
    return want;
  };
  const auto check_window = [&](std::int64_t lo, std::int64_t hi) {
    const auto want = window_oracle(lo, hi);
    std::vector<std::pair<std::int64_t, std::int64_t>> got;
    t.for_each_range(lo, hi, [&](const std::int64_t& k,
                                 const std::int64_t& v) {
      got.emplace_back(k, v);
    });
    ASSERT_EQ(got, want) << "window [" << lo << ", " << hi << ")";
    if constexpr (requires { t.count_range(lo, hi); }) {
      ASSERT_EQ(t.count_range(lo, hi), want.size())
          << "window [" << lo << ", " << hi << ")";
    }
    // scan with a limit must emit exactly the first `limit` hits.
    const std::size_t limit = rng.below(want.size() + 3);
    std::vector<std::pair<std::int64_t, std::int64_t>> scanned;
    const std::size_t emitted = t.scan(lo, hi, limit, scanned);
    const std::size_t expect = std::min(limit, want.size());
    ASSERT_EQ(emitted, expect);
    ASSERT_EQ(scanned.size(), expect);
    for (std::size_t i = 0; i < expect; ++i) {
      ASSERT_EQ(scanned[i], want[i]) << "scan hit " << i;
    }
  };

  for (int w = 0; w < 200; ++w) {
    std::int64_t lo = rng.range(-20, 1020);
    std::int64_t hi = rng.range(-20, 1020);
    if (hi < lo) std::swap(lo, hi);
    check_window(lo, hi);
  }
  const std::int64_t k = *oracle.begin();
  check_window(k, k);      // empty half-open window
  check_window(k, k + 1);  // singleton window
}

/// from_sorted round-trip: bulk build of a strictly increasing run must
/// iterate back exactly and satisfy the structure's invariants; empty
/// and singleton runs degrade gracefully.
template <class DS>
void from_sorted_roundtrip() {
  alloc::Arena a;
  std::vector<std::pair<std::int64_t, std::int64_t>> items;
  for (std::int64_t k = 0; k < 1000; k += 3) items.emplace_back(k, k * 10);
  DS t = apply(
      a, [&](auto& b) { return DS::from_sorted(b, items.begin(), items.end()); });
  EXPECT_EQ(t.size(), items.size());
  EXPECT_TRUE(t.check_invariants());
  EXPECT_EQ(t.items(), items);

  std::vector<std::pair<std::int64_t, std::int64_t>> none;
  DS t0 = apply(
      a, [&](auto& b) { return DS::from_sorted(b, none.begin(), none.end()); });
  EXPECT_TRUE(t0.empty());

  std::vector<std::pair<std::int64_t, std::int64_t>> one{{7, 70}};
  DS t1 = apply(
      a, [&](auto& b) { return DS::from_sorted(b, one.begin(), one.end()); });
  EXPECT_EQ(t1.size(), 1u);
  EXPECT_EQ(*t1.find(7), 70);
  EXPECT_TRUE(t1.check_invariants());

  // Every size in [0, 64]: balanced packing / leveled coloring must hold
  // at the awkward boundary sizes, not just the friendly ones.
  for (std::int64_t n = 0; n <= 64; ++n) {
    std::vector<std::pair<std::int64_t, std::int64_t>> run;
    for (std::int64_t k = 0; k < n; ++k) run.emplace_back(k * 2, k);
    DS tn = apply(
        a, [&](auto& b) { return DS::from_sorted(b, run.begin(), run.end()); });
    ASSERT_EQ(tn.size(), static_cast<std::size_t>(n));
    ASSERT_TRUE(tn.check_invariants()) << "n = " << n;
    ASSERT_EQ(tn.items(), run) << "n = " << n;
  }
}

}  // namespace pathcopy::test
