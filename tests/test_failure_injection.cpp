// Failure injection: allocation failure at every possible point inside an
// update attempt.
//
// Path copying makes updates naturally transactional — nothing the
// attempt allocated is visible until the root CAS — so an allocation
// failure mid-copy must (a) propagate as bad_alloc, (b) leak nothing once
// the Builder unwinds, and (c) leave the current version untouched and
// fully valid. The FailingAlloc wrapper throws on the Nth allocation;
// tests sweep N across the entire range an operation can allocate, so
// every create<> call site in every structure gets to fail at least once.
#include <gtest/gtest.h>

#include <cstdint>
#include <new>
#include <vector>

#include "alloc/malloc_alloc.hpp"
#include "core/atom.hpp"
#include "core/builder.hpp"
#include "persist/btree.hpp"
#include "persist/hamt.hpp"
#include "persist/rbt.hpp"
#include "persist/treap.hpp"
#include "reclaim/epoch.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace pathcopy {
namespace {

/// Forwards to MallocAlloc but throws std::bad_alloc on allocation number
/// `fail_at` (1-based). Deallocation always succeeds, so unwinding paths
/// can release what was built before the failure.
class FailingAlloc {
 public:
  using RetireBackend = alloc::MallocAlloc::RetireBackend;

  explicit FailingAlloc(alloc::MallocAlloc& base) : base_(&base) {}

  void arm(std::uint64_t fail_at) {
    count_ = 0;
    fail_at_ = fail_at;
  }
  void disarm() { fail_at_ = 0; }
  std::uint64_t allocations() const { return count_; }

  void* allocate(std::size_t bytes, std::size_t align) {
    if (fail_at_ != 0 && ++count_ >= fail_at_) {
      throw std::bad_alloc();
    }
    return base_->allocate(bytes, align);
  }

  void deallocate(void* p, std::size_t bytes, std::size_t align) noexcept {
    base_->deallocate(p, bytes, align);
  }

  RetireBackend* retire_backend() noexcept { return base_->retire_backend(); }

 private:
  alloc::MallocAlloc* base_;
  std::uint64_t count_ = 0;
  std::uint64_t fail_at_ = 0;  // 0 = never fail
};

/// Builds a structure of `n` keys with no failures armed, then returns it.
template <class DS>
DS build(FailingAlloc& a, std::int64_t n, std::uint64_t seed) {
  DS t;
  util::Xoshiro256 rng(seed);
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t k = rng.range(-4 * n, 4 * n);
    t = test::apply(a, [&](auto& b) { return t.insert(b, k, k); });
  }
  return t;
}

/// The core property: for every failure point, the op throws, nothing
/// leaks, and the pre-state is untouched. Returns how many allocations a
/// full successful op makes (to size the sweep).
template <class DS, class Op>
void sweep_failure_points(const char* what, Op&& op) {
  alloc::MallocAlloc base;
  {
    FailingAlloc alloc(base);
    DS t = build<DS>(alloc, 300, 17);
    const std::size_t size_before = t.size();
    const auto live_before = base.stats().live_blocks();
    const void* root_before = t.root_ptr();

    // Measure the op's allocation count on a dry run that we roll back.
    std::uint64_t full_cost = 0;
    {
      core::Builder<FailingAlloc> b(alloc);
      alloc.arm(0);
      (void)op(t, b);
      full_cost = b.stats().created;
      b.rollback();
    }
    ASSERT_GT(full_cost, 0u) << what << ": op must allocate for this sweep";
    ASSERT_EQ(base.stats().live_blocks(), live_before);

    for (std::uint64_t fail_at = 1; fail_at <= full_cost; ++fail_at) {
      {
        core::Builder<FailingAlloc> b(alloc);
        alloc.arm(fail_at);
        bool threw = false;
        try {
          (void)op(t, b);
        } catch (const std::bad_alloc&) {
          threw = true;
        }
        alloc.disarm();
        ASSERT_TRUE(threw) << what << ": failure point " << fail_at << " of "
                           << full_cost;
        b.rollback();  // what the Atom's unwinding does
        // The rolled-back blocks sit in b's recycle bin (they would feed a
        // retry); only the builder's death returns them to the allocator.
      }
      ASSERT_EQ(base.stats().live_blocks(), live_before)
          << what << ": leak at failure point " << fail_at;
      ASSERT_EQ(t.root_ptr(), root_before);
      ASSERT_EQ(t.size(), size_before);
      ASSERT_TRUE(t.check_invariants())
          << what << ": corrupted pre-state at failure point " << fail_at;
    }

    // And the op still succeeds cleanly afterwards.
    DS t2 = test::apply(alloc, [&](auto& b) { return op(t, b); });
    ASSERT_TRUE(t2.check_invariants());
    DS::destroy(t2.root_node(), *base.retire_backend());
  }
  EXPECT_EQ(base.stats().live_blocks(), 0u);
}

struct MixHash {
  std::uint64_t operator()(std::int64_t k) const noexcept {
    std::uint64_t x = static_cast<std::uint64_t>(k) + 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }
};

using Treap = persist::Treap<std::int64_t, std::int64_t>;
using Rbt = persist::RbTree<std::int64_t, std::int64_t>;
using B8 = persist::BTree<std::int64_t, std::int64_t, 8>;
using H = persist::Hamt<std::int64_t, std::int64_t, 6, MixHash>;

TEST(FailureInjection, TreapInsertSurvivesEveryFailurePoint) {
  sweep_failure_points<Treap>("treap insert", [](Treap t, auto& b) {
    return t.insert(b, 999'999, 1);
  });
}

TEST(FailureInjection, TreapEraseSurvivesEveryFailurePoint) {
  // Erase an existing mid-range key (found via a probe insert dry run).
  alloc::MallocAlloc base;
  FailingAlloc alloc(base);
  Treap probe = build<Treap>(alloc, 300, 17);
  const std::int64_t victim = probe.kth(probe.size() / 2)->key;
  Treap::destroy(probe.root_node(), *base.retire_backend());
  sweep_failure_points<Treap>("treap erase", [victim](Treap t, auto& b) {
    return t.erase(b, victim);
  });
}

TEST(FailureInjection, RbtInsertSurvivesEveryFailurePoint) {
  sweep_failure_points<Rbt>("rbt insert", [](Rbt t, auto& b) {
    return t.insert(b, 999'999, 1);
  });
}

TEST(FailureInjection, RbtEraseSurvivesEveryFailurePoint) {
  alloc::MallocAlloc base;
  FailingAlloc alloc(base);
  Rbt probe = build<Rbt>(alloc, 300, 17);
  const std::int64_t victim = probe.kth(probe.size() / 2)->key;
  Rbt::destroy(probe.root_node(), *base.retire_backend());
  sweep_failure_points<Rbt>("rbt erase", [victim](Rbt t, auto& b) {
    return t.erase(b, victim);
  });
}

TEST(FailureInjection, BtreeInsertSurvivesEveryFailurePoint) {
  sweep_failure_points<B8>("btree insert", [](B8 t, auto& b) {
    return t.insert(b, 999'999, 1);
  });
}

TEST(FailureInjection, BtreeEraseSurvivesEveryFailurePoint) {
  alloc::MallocAlloc base;
  FailingAlloc alloc(base);
  B8 probe = build<B8>(alloc, 300, 17);
  const std::int64_t victim = *probe.kth_key(probe.size() / 2);
  B8::destroy(probe.root_node(), *base.retire_backend());
  sweep_failure_points<B8>("btree erase", [victim](B8 t, auto& b) {
    return t.erase(b, victim);
  });
}

TEST(FailureInjection, HamtInsertSurvivesEveryFailurePoint) {
  sweep_failure_points<H>("hamt insert", [](H t, auto& b) {
    return t.insert(b, 999'999, 1);
  });
}

TEST(FailureInjection, BuilderDestructorRollsBackOnUnwind) {
  // If the exception escapes past the Builder itself, its destructor must
  // recycle everything without an explicit rollback() call.
  alloc::MallocAlloc base;
  {
    FailingAlloc alloc(base);
    Treap t = build<Treap>(alloc, 100, 3);
    const auto live_before = base.stats().live_blocks();
    alloc.arm(4);  // fail mid-copy
    try {
      core::Builder<FailingAlloc> b(alloc);
      (void)t.insert(b, 999'999, 1);
      FAIL() << "expected bad_alloc";
    } catch (const std::bad_alloc&) {
      // Builder went out of scope during unwinding.
    }
    alloc.disarm();
    EXPECT_EQ(base.stats().live_blocks(), live_before);
    EXPECT_TRUE(t.check_invariants());
    Treap::destroy(t.root_node(), *base.retire_backend());
  }
  EXPECT_EQ(base.stats().live_blocks(), 0u);
}

TEST(FailureInjection, AtomUpdateSurvivesThrowingAttempt) {
  // An update whose first attempt throws must not poison the Atom: the
  // exception propagates to the caller, the version is unchanged, and a
  // clean retry succeeds.
  alloc::MallocAlloc base;
  {
    FailingAlloc alloc(base);
    reclaim::EpochReclaimer smr;
    core::Atom<Treap, reclaim::EpochReclaimer, FailingAlloc> atom(
        smr, *alloc.retire_backend());
    core::Atom<Treap, reclaim::EpochReclaimer, FailingAlloc>::Ctx ctx(smr,
                                                                      alloc);
    for (std::int64_t k = 0; k < 50; ++k) {
      atom.update(ctx, [k](Treap t, auto& b) { return t.insert(b, k, k); });
    }
    const auto version_before = atom.version();
    alloc.arm(2);
    EXPECT_THROW(atom.update(ctx, [](Treap t, auto& b) {
      return t.insert(b, 777, 7);
    }),
                 std::bad_alloc);
    alloc.disarm();
    EXPECT_EQ(atom.version(), version_before);
    EXPECT_FALSE(atom.read(ctx, [](Treap t) { return t.contains(777); }));
    // Clean retry.
    atom.update(ctx, [](Treap t, auto& b) { return t.insert(b, 777, 7); });
    EXPECT_TRUE(atom.read(ctx, [](Treap t) { return t.contains(777); }));
    EXPECT_TRUE(atom.read(ctx, [](Treap t) { return t.check_invariants(); }));
  }
  EXPECT_EQ(base.stats().live_blocks(), 0u);
}

}  // namespace
}  // namespace pathcopy
