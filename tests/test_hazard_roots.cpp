#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "alloc/malloc_alloc.hpp"
#include "reclaim/hazard_roots.hpp"
#include "reclaim/retired.hpp"

namespace pathcopy {
namespace {

struct Canary {
  explicit Canary(std::atomic<int>* counter) : destroyed(counter) {}
  ~Canary() {
    if (destroyed != nullptr) destroyed->fetch_add(1);
  }
  std::atomic<int>* destroyed;
  std::uint64_t payload = 0xbead5afe0ddba11ULL;
};

template <class Alloc>
const Canary* make_canary(Alloc& a, std::atomic<int>* counter) {
  void* p = a.allocate(sizeof(Canary), alignof(Canary));
  return ::new (p) Canary(counter);
}

std::vector<reclaim::Retired> one_retired(alloc::MallocAlloc& a, const Canary* c) {
  std::vector<reclaim::Retired> v;
  v.push_back(reclaim::make_retired(c, a.retire_backend()));
  return v;
}

TEST(HazardRoots, PinPublishesHazard) {
  reclaim::HazardRootReclaimer smr;
  auto h = smr.register_thread();
  int dummy = 0;
  std::atomic<const void*> root{&dummy};
  std::atomic<std::uint64_t> ver{1};
  auto g = smr.pin(h, root, ver);
  EXPECT_EQ(g.root(), &dummy);
}

TEST(HazardRoots, ProtectedRootBlocksItsBundle) {
  alloc::MallocAlloc a;
  std::atomic<int> destroyed{0};
  reclaim::HazardRootReclaimer smr;
  auto reader = smr.register_thread();
  auto writer = smr.register_thread();

  const Canary* v1_root = make_canary(a, &destroyed);
  std::atomic<const void*> root{v1_root};
  std::atomic<std::uint64_t> ver{1};

  // Reader protects version 1's root (announced era 1).
  auto g = smr.pin(reader, root, ver);

  // Writer installs version 2 and retires version 1's root.
  const Canary* v2_root = make_canary(a, &destroyed);
  root.store(v2_root);
  ver.store(2);
  smr.retire_bundle(writer, 2, v1_root, v2_root, one_retired(a, v1_root));
  smr.drain_all();
  EXPECT_EQ(destroyed.load(), 0);  // hazard on v1_root blocks death=2
  EXPECT_EQ(static_cast<const Canary*>(g.root())->payload, 0xbead5afe0ddba11ULL);

  { auto g2 = std::move(g); }  // drop the hazard
  smr.drain_all();
  EXPECT_EQ(destroyed.load(), 1);

  // Cleanup: retire version 2's root.
  smr.retire_bundle(writer, 3, v2_root, nullptr, one_retired(a, v2_root));
  smr.drain_all();
  EXPECT_EQ(destroyed.load(), 2);
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TEST(HazardRoots, NewRootHazardDoesNotBlockOlderBundles) {
  alloc::MallocAlloc a;
  std::atomic<int> destroyed{0};
  reclaim::HazardRootReclaimer smr;
  auto reader = smr.register_thread();
  auto writer = smr.register_thread();

  const Canary* v1_root = make_canary(a, &destroyed);
  std::atomic<const void*> root{v1_root};
  std::atomic<std::uint64_t> ver{1};

  // Writer replaces the root first...
  const Canary* v2_root = make_canary(a, &destroyed);
  root.store(v2_root);
  ver.store(2);
  smr.retire_bundle(writer, 2, v1_root, v2_root, one_retired(a, v1_root));

  // ...then a reader pins the *new* root. Its announced era is 2, so
  // the version-2 bundle (death 2 <= 2) can be freed.
  auto g = smr.pin(reader, root, ver);
  EXPECT_EQ(g.root(), v2_root);
  smr.drain_all();
  EXPECT_EQ(destroyed.load(), 1);

  { auto g2 = std::move(g); }
  smr.retire_bundle(writer, 3, v2_root, nullptr, one_retired(a, v2_root));
  smr.drain_all();
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TEST(HazardRoots, PinValidationLoopsOnRootChange) {
  // Pin while the root keeps changing: the returned root must always be a
  // value actually present in the register at validation time.
  reclaim::HazardRootReclaimer smr;
  auto h = smr.register_thread();
  int a_val = 0, b_val = 0;
  std::atomic<const void*> root{&a_val};
  std::atomic<std::uint64_t> ver{1};
  std::atomic<bool> stop{false};
  std::thread flipper([&] {
    for (int i = 0; i < 100000; ++i) {
      root.store(i % 2 == 0 ? static_cast<const void*>(&b_val)
                            : static_cast<const void*>(&a_val));
    }
    stop.store(true);
  });
  while (!stop.load()) {
    auto g = smr.pin(h, root, ver);
    ASSERT_TRUE(g.root() == &a_val || g.root() == &b_val);
  }
  flipper.join();
}

TEST(HazardRoots, NullRootIsSafe) {
  reclaim::HazardRootReclaimer smr;
  auto h = smr.register_thread();
  std::atomic<const void*> root{nullptr};
  std::atomic<std::uint64_t> ver{1};
  auto g = smr.pin(h, root, ver);
  EXPECT_EQ(g.root(), nullptr);
}

TEST(HazardRoots, ConcurrentChainStress) {
  // Writers advance a chain of versions; readers pin and dereference.
  alloc::MallocAlloc a;
  std::atomic<int> destroyed{0};
  constexpr int kOps = 4000;
  {
    reclaim::HazardRootReclaimer smr;
    std::atomic<const void*> root{make_canary(a, &destroyed)};
    std::atomic<std::uint64_t> ver{1};
    std::atomic<bool> stop{false};

    std::thread writer([&] {
      auto h = smr.register_thread();
      for (int i = 0; i < kOps; ++i) {
        const Canary* fresh = make_canary(a, &destroyed);
        const void* old = root.load();
        root.store(fresh);
        const std::uint64_t death = ver.fetch_add(1) + 1;
        smr.retire_bundle(h, death, old, fresh,
                          one_retired(a, static_cast<const Canary*>(old)));
      }
      stop.store(true);
    });
    std::vector<std::thread> readers;
    for (int r = 0; r < 3; ++r) {
      readers.emplace_back([&] {
        auto h = smr.register_thread();
        while (!stop.load()) {
          auto g = smr.pin(h, root, ver);
          ASSERT_EQ(static_cast<const Canary*>(g.root())->payload,
                    0xbead5afe0ddba11ULL);
        }
      });
    }
    writer.join();
    for (auto& r : readers) r.join();
    auto h = smr.register_thread();
    const auto* last = static_cast<const Canary*>(root.load());
    smr.retire_bundle(h, ver.load() + 1, last, nullptr, one_retired(a, last));
    smr.drain_all();
  }
  EXPECT_EQ(destroyed.load(), kOps + 1);
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

}  // namespace
}  // namespace pathcopy
